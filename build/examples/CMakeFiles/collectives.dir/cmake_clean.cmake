file(REMOVE_RECURSE
  "CMakeFiles/collectives.dir/collectives.cpp.o"
  "CMakeFiles/collectives.dir/collectives.cpp.o.d"
  "collectives"
  "collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
