file(REMOVE_RECURSE
  "CMakeFiles/overloaded_core.dir/overloaded_core.cpp.o"
  "CMakeFiles/overloaded_core.dir/overloaded_core.cpp.o.d"
  "overloaded_core"
  "overloaded_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overloaded_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
