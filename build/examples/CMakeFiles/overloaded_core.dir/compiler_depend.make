# Empty compiler generated dependencies file for overloaded_core.
# This may be replaced when dependencies are built.
