# Empty compiler generated dependencies file for region_cache_demo.
# This may be replaced when dependencies are built.
