file(REMOVE_RECURSE
  "CMakeFiles/region_cache_demo.dir/region_cache_demo.cpp.o"
  "CMakeFiles/region_cache_demo.dir/region_cache_demo.cpp.o.d"
  "region_cache_demo"
  "region_cache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_cache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
