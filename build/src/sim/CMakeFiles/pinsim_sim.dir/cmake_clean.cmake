file(REMOVE_RECURSE
  "CMakeFiles/pinsim_sim.dir/engine.cpp.o"
  "CMakeFiles/pinsim_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pinsim_sim.dir/log.cpp.o"
  "CMakeFiles/pinsim_sim.dir/log.cpp.o.d"
  "CMakeFiles/pinsim_sim.dir/random.cpp.o"
  "CMakeFiles/pinsim_sim.dir/random.cpp.o.d"
  "CMakeFiles/pinsim_sim.dir/stats.cpp.o"
  "CMakeFiles/pinsim_sim.dir/stats.cpp.o.d"
  "libpinsim_sim.a"
  "libpinsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
