# Empty dependencies file for pinsim_sim.
# This may be replaced when dependencies are built.
