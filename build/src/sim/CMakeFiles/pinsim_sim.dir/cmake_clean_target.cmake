file(REMOVE_RECURSE
  "libpinsim_sim.a"
)
