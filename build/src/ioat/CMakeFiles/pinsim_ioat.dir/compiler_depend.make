# Empty compiler generated dependencies file for pinsim_ioat.
# This may be replaced when dependencies are built.
