file(REMOVE_RECURSE
  "CMakeFiles/pinsim_ioat.dir/dma_engine.cpp.o"
  "CMakeFiles/pinsim_ioat.dir/dma_engine.cpp.o.d"
  "libpinsim_ioat.a"
  "libpinsim_ioat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_ioat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
