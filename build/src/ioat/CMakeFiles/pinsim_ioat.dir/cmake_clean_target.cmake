file(REMOVE_RECURSE
  "libpinsim_ioat.a"
)
