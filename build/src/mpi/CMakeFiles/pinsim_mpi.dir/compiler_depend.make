# Empty compiler generated dependencies file for pinsim_mpi.
# This may be replaced when dependencies are built.
