file(REMOVE_RECURSE
  "CMakeFiles/pinsim_mpi.dir/communicator.cpp.o"
  "CMakeFiles/pinsim_mpi.dir/communicator.cpp.o.d"
  "libpinsim_mpi.a"
  "libpinsim_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
