file(REMOVE_RECURSE
  "libpinsim_mpi.a"
)
