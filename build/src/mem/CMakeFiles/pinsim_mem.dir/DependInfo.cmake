
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cpp" "src/mem/CMakeFiles/pinsim_mem.dir/address_space.cpp.o" "gcc" "src/mem/CMakeFiles/pinsim_mem.dir/address_space.cpp.o.d"
  "/root/repo/src/mem/malloc_sim.cpp" "src/mem/CMakeFiles/pinsim_mem.dir/malloc_sim.cpp.o" "gcc" "src/mem/CMakeFiles/pinsim_mem.dir/malloc_sim.cpp.o.d"
  "/root/repo/src/mem/physical_memory.cpp" "src/mem/CMakeFiles/pinsim_mem.dir/physical_memory.cpp.o" "gcc" "src/mem/CMakeFiles/pinsim_mem.dir/physical_memory.cpp.o.d"
  "/root/repo/src/mem/swap_daemon.cpp" "src/mem/CMakeFiles/pinsim_mem.dir/swap_daemon.cpp.o" "gcc" "src/mem/CMakeFiles/pinsim_mem.dir/swap_daemon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pinsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
