file(REMOVE_RECURSE
  "CMakeFiles/pinsim_mem.dir/address_space.cpp.o"
  "CMakeFiles/pinsim_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/pinsim_mem.dir/malloc_sim.cpp.o"
  "CMakeFiles/pinsim_mem.dir/malloc_sim.cpp.o.d"
  "CMakeFiles/pinsim_mem.dir/physical_memory.cpp.o"
  "CMakeFiles/pinsim_mem.dir/physical_memory.cpp.o.d"
  "CMakeFiles/pinsim_mem.dir/swap_daemon.cpp.o"
  "CMakeFiles/pinsim_mem.dir/swap_daemon.cpp.o.d"
  "libpinsim_mem.a"
  "libpinsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
