# Empty compiler generated dependencies file for pinsim_mem.
# This may be replaced when dependencies are built.
