file(REMOVE_RECURSE
  "libpinsim_mem.a"
)
