# Empty compiler generated dependencies file for pinsim_net.
# This may be replaced when dependencies are built.
