# Empty dependencies file for pinsim_net.
# This may be replaced when dependencies are built.
