file(REMOVE_RECURSE
  "libpinsim_net.a"
)
