file(REMOVE_RECURSE
  "CMakeFiles/pinsim_net.dir/fabric.cpp.o"
  "CMakeFiles/pinsim_net.dir/fabric.cpp.o.d"
  "CMakeFiles/pinsim_net.dir/nic.cpp.o"
  "CMakeFiles/pinsim_net.dir/nic.cpp.o.d"
  "libpinsim_net.a"
  "libpinsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
