file(REMOVE_RECURSE
  "libpinsim_core.a"
)
