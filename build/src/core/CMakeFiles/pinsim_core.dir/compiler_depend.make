# Empty compiler generated dependencies file for pinsim_core.
# This may be replaced when dependencies are built.
