file(REMOVE_RECURSE
  "CMakeFiles/pinsim_core.dir/config.cpp.o"
  "CMakeFiles/pinsim_core.dir/config.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/driver.cpp.o"
  "CMakeFiles/pinsim_core.dir/driver.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/endpoint.cpp.o"
  "CMakeFiles/pinsim_core.dir/endpoint.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/host.cpp.o"
  "CMakeFiles/pinsim_core.dir/host.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/library.cpp.o"
  "CMakeFiles/pinsim_core.dir/library.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/pin_manager.cpp.o"
  "CMakeFiles/pinsim_core.dir/pin_manager.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/region.cpp.o"
  "CMakeFiles/pinsim_core.dir/region.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/region_cache.cpp.o"
  "CMakeFiles/pinsim_core.dir/region_cache.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/report.cpp.o"
  "CMakeFiles/pinsim_core.dir/report.cpp.o.d"
  "CMakeFiles/pinsim_core.dir/wire.cpp.o"
  "CMakeFiles/pinsim_core.dir/wire.cpp.o.d"
  "libpinsim_core.a"
  "libpinsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
