
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/pinsim_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/config.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "src/core/CMakeFiles/pinsim_core.dir/driver.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/driver.cpp.o.d"
  "/root/repo/src/core/endpoint.cpp" "src/core/CMakeFiles/pinsim_core.dir/endpoint.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/endpoint.cpp.o.d"
  "/root/repo/src/core/host.cpp" "src/core/CMakeFiles/pinsim_core.dir/host.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/host.cpp.o.d"
  "/root/repo/src/core/library.cpp" "src/core/CMakeFiles/pinsim_core.dir/library.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/library.cpp.o.d"
  "/root/repo/src/core/pin_manager.cpp" "src/core/CMakeFiles/pinsim_core.dir/pin_manager.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/pin_manager.cpp.o.d"
  "/root/repo/src/core/region.cpp" "src/core/CMakeFiles/pinsim_core.dir/region.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/region.cpp.o.d"
  "/root/repo/src/core/region_cache.cpp" "src/core/CMakeFiles/pinsim_core.dir/region_cache.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/region_cache.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/pinsim_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/report.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/pinsim_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/pinsim_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pinsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pinsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pinsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pinsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ioat/CMakeFiles/pinsim_ioat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
