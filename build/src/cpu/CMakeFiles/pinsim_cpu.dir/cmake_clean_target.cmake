file(REMOVE_RECURSE
  "libpinsim_cpu.a"
)
