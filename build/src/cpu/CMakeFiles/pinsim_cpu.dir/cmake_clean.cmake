file(REMOVE_RECURSE
  "CMakeFiles/pinsim_cpu.dir/core.cpp.o"
  "CMakeFiles/pinsim_cpu.dir/core.cpp.o.d"
  "CMakeFiles/pinsim_cpu.dir/cpu_model.cpp.o"
  "CMakeFiles/pinsim_cpu.dir/cpu_model.cpp.o.d"
  "libpinsim_cpu.a"
  "libpinsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
