# Empty dependencies file for pinsim_cpu.
# This may be replaced when dependencies are built.
