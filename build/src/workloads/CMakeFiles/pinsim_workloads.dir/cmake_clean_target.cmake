file(REMOVE_RECURSE
  "libpinsim_workloads.a"
)
