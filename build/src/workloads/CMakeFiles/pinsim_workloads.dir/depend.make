# Empty dependencies file for pinsim_workloads.
# This may be replaced when dependencies are built.
