file(REMOVE_RECURSE
  "CMakeFiles/pinsim_workloads.dir/imb.cpp.o"
  "CMakeFiles/pinsim_workloads.dir/imb.cpp.o.d"
  "CMakeFiles/pinsim_workloads.dir/npb_is.cpp.o"
  "CMakeFiles/pinsim_workloads.dir/npb_is.cpp.o.d"
  "CMakeFiles/pinsim_workloads.dir/stencil.cpp.o"
  "CMakeFiles/pinsim_workloads.dir/stencil.cpp.o.d"
  "libpinsim_workloads.a"
  "libpinsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
