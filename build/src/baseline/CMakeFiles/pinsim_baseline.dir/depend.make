# Empty dependencies file for pinsim_baseline.
# This may be replaced when dependencies are built.
