file(REMOVE_RECURSE
  "CMakeFiles/pinsim_baseline.dir/pipelined.cpp.o"
  "CMakeFiles/pinsim_baseline.dir/pipelined.cpp.o.d"
  "CMakeFiles/pinsim_baseline.dir/userspace_regcache.cpp.o"
  "CMakeFiles/pinsim_baseline.dir/userspace_regcache.cpp.o.d"
  "libpinsim_baseline.a"
  "libpinsim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
