
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/pipelined.cpp" "src/baseline/CMakeFiles/pinsim_baseline.dir/pipelined.cpp.o" "gcc" "src/baseline/CMakeFiles/pinsim_baseline.dir/pipelined.cpp.o.d"
  "/root/repo/src/baseline/userspace_regcache.cpp" "src/baseline/CMakeFiles/pinsim_baseline.dir/userspace_regcache.cpp.o" "gcc" "src/baseline/CMakeFiles/pinsim_baseline.dir/userspace_regcache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pinsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pinsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pinsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pinsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ioat/CMakeFiles/pinsim_ioat.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pinsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
