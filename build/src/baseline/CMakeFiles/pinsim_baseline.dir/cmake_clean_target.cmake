file(REMOVE_RECURSE
  "libpinsim_baseline.a"
)
