file(REMOVE_RECURSE
  "CMakeFiles/overlap_miss.dir/overlap_miss.cpp.o"
  "CMakeFiles/overlap_miss.dir/overlap_miss.cpp.o.d"
  "overlap_miss"
  "overlap_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
