# Empty dependencies file for overlap_miss.
# This may be replaced when dependencies are built.
