# Empty dependencies file for fig6_pingpong_pinning.
# This may be replaced when dependencies are built.
