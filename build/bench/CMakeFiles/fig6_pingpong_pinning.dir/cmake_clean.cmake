file(REMOVE_RECURSE
  "CMakeFiles/fig6_pingpong_pinning.dir/fig6_pingpong_pinning.cpp.o"
  "CMakeFiles/fig6_pingpong_pinning.dir/fig6_pingpong_pinning.cpp.o.d"
  "fig6_pingpong_pinning"
  "fig6_pingpong_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pingpong_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
