file(REMOVE_RECURSE
  "CMakeFiles/table1_pinning.dir/table1_pinning.cpp.o"
  "CMakeFiles/table1_pinning.dir/table1_pinning.cpp.o.d"
  "table1_pinning"
  "table1_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
