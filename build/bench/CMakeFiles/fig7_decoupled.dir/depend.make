# Empty dependencies file for fig7_decoupled.
# This may be replaced when dependencies are built.
