file(REMOVE_RECURSE
  "CMakeFiles/fig7_decoupled.dir/fig7_decoupled.cpp.o"
  "CMakeFiles/fig7_decoupled.dir/fig7_decoupled.cpp.o.d"
  "fig7_decoupled"
  "fig7_decoupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_decoupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
