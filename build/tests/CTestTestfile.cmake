# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_task_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_trace_test[1]_include.cmake")
include("/root/repo/build/tests/mem_address_space_test[1]_include.cmake")
include("/root/repo/build/tests/mem_pinning_test[1]_include.cmake")
include("/root/repo/build/tests/mem_malloc_swap_test[1]_include.cmake")
include("/root/repo/build/tests/mem_extra_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_core_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ioat_test[1]_include.cmake")
include("/root/repo/build/tests/core_wire_test[1]_include.cmake")
include("/root/repo/build/tests/core_config_test[1]_include.cmake")
include("/root/repo/build/tests/core_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/core_region_test[1]_include.cmake")
include("/root/repo/build/tests/core_region_cache_test[1]_include.cmake")
include("/root/repo/build/tests/core_pin_manager_test[1]_include.cmake")
include("/root/repo/build/tests/core_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/core_api_test[1]_include.cmake")
include("/root/repo/build/tests/property_transfer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_stress_test[1]_include.cmake")
include("/root/repo/build/tests/core_endpoint_edge_test[1]_include.cmake")
include("/root/repo/build/tests/core_report_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
