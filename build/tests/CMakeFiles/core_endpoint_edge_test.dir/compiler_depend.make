# Empty compiler generated dependencies file for core_endpoint_edge_test.
# This may be replaced when dependencies are built.
