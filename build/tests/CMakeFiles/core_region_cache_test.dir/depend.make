# Empty dependencies file for core_region_cache_test.
# This may be replaced when dependencies are built.
