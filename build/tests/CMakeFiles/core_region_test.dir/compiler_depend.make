# Empty compiler generated dependencies file for core_region_test.
# This may be replaced when dependencies are built.
