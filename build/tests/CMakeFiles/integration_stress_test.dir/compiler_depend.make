# Empty compiler generated dependencies file for integration_stress_test.
# This may be replaced when dependencies are built.
