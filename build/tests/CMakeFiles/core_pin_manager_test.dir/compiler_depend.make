# Empty compiler generated dependencies file for core_pin_manager_test.
# This may be replaced when dependencies are built.
