file(REMOVE_RECURSE
  "CMakeFiles/property_transfer_test.dir/property_transfer_test.cpp.o"
  "CMakeFiles/property_transfer_test.dir/property_transfer_test.cpp.o.d"
  "property_transfer_test"
  "property_transfer_test.pdb"
  "property_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
