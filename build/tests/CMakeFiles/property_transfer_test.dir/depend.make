# Empty dependencies file for property_transfer_test.
# This may be replaced when dependencies are built.
