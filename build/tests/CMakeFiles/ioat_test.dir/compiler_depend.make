# Empty compiler generated dependencies file for ioat_test.
# This may be replaced when dependencies are built.
