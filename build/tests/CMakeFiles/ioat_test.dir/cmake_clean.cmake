file(REMOVE_RECURSE
  "CMakeFiles/ioat_test.dir/ioat_test.cpp.o"
  "CMakeFiles/ioat_test.dir/ioat_test.cpp.o.d"
  "ioat_test"
  "ioat_test.pdb"
  "ioat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
