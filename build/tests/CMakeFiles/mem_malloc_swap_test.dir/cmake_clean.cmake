file(REMOVE_RECURSE
  "CMakeFiles/mem_malloc_swap_test.dir/mem_malloc_swap_test.cpp.o"
  "CMakeFiles/mem_malloc_swap_test.dir/mem_malloc_swap_test.cpp.o.d"
  "mem_malloc_swap_test"
  "mem_malloc_swap_test.pdb"
  "mem_malloc_swap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_malloc_swap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
