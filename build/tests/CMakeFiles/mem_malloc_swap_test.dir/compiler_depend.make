# Empty compiler generated dependencies file for mem_malloc_swap_test.
# This may be replaced when dependencies are built.
