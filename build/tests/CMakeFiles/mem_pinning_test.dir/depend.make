# Empty dependencies file for mem_pinning_test.
# This may be replaced when dependencies are built.
