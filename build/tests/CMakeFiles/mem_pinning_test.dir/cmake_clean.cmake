file(REMOVE_RECURSE
  "CMakeFiles/mem_pinning_test.dir/mem_pinning_test.cpp.o"
  "CMakeFiles/mem_pinning_test.dir/mem_pinning_test.cpp.o.d"
  "mem_pinning_test"
  "mem_pinning_test.pdb"
  "mem_pinning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_pinning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
