// pinlint — repo-native static analysis for the pinsim simulator.
//
// Every number this reproduction publishes (Goglin Tables 1/2, the fig6/fig7
// curves, the perf gate against BENCH_seed.json) assumes the simulator is
// bit-exact under a fixed seed — and alive when the callbacks it queued
// finally fire. The compiler cannot enforce either contract, so this tool
// does. It is deliberately libclang-free — no external dependencies, C++17
// only — because it must build everywhere the simulator builds and run in
// the default CI loop. v2 is structural rather than purely token-stream:
// on top of the tokenizer it builds, per file, a lambda table (capture
// lists + brace-matched body ranges + the enclosing call expression), a
// pointer-symbol table (names declared `T* name`), and, repo-wide, the
// quoted-include graph — which is what the callback-lifetime and layering
// rules need.
//
// Rule pack (see DESIGN.md "Determinism contract & static checks"):
//   D0  suppression hygiene: every `allow(...)` / `unordered-ok(...)`
//       annotation must carry a non-empty reason; a bare escape hatch is
//       itself a diagnostic (and suppresses nothing).
//   D1  no nondeterminism sources outside sim/random: std::random_device,
//       rand()/srand(), wall clocks (system_clock/steady_clock/time()),
//       pointer-value hashing (std::hash<T*>, pointer-keyed unordered
//       containers) and pointer printing ("%p").
//   D2  no iteration (range-for or .begin()) over unordered_map /
//       unordered_set: bucket order is hash- and pointer-dependent and leaks
//       into event scheduling and report text. Annotate provably commutative
//       loops with `// pinlint: unordered-ok(<reason>)`.
//   D3  no raw new/delete/malloc/free outside mem/malloc_sim — simulated
//       process heaps go through MallocSim, host-side ownership through
//       standard containers and smart pointers.
//   D4  counter consistency: every Counters member in core/counters.hpp must
//       be incremented somewhere under src/ and serialized by
//       core/report.cpp (and only declared counters may be serialized).
//   D5  obs::Event kind exhaustiveness: every EventKind enumerator must be
//       rendered by obs/legacy.cpp (the single formatting authority), and
//       every switch over EventKind anywhere must be exhaustive or carry a
//       default label.
//   D6  header hygiene: #pragma once, no `using namespace` in headers, and
//       include-self-sufficiency spot checks for common std:: types.
//   D7  callback lifetime (src/ only): a lambda handed to the engine
//       (`schedule_at`/`schedule_after`) or a work queue (`submit`) that
//       captures `this`, a raw pointer, or anything by reference may fire
//       after the state it references died (MMU-notifier invalidation,
//       restarted pin jobs, crashed tenants — the PR 5/PR 7 ASan UAF
//       class). Such a lambda must revalidate before dereferencing:
//       `find_alive(...)`, a weak-token `.expired()` / `.lock()` check, or
//       a `guarded(...)` wrapper — or carry an owning handle and annotate
//       `// pinlint: allow(D7: <lifetime argument>)` at the capture.
//   D8  TaskTag coverage (src/ only): every `schedule_at`/`schedule_after`
//       call stamps a non-empty TaskTag, keeping the DESIGN §10 dispatch
//       profiler taxonomy exhaustive the same way D5 locks EventKind.
//   D9  include layering: quoted includes must follow the module DAG
//       (sim at the bottom, then obs, then {mem,ioat} and {cpu,net}, then
//       core, then mpi/baseline, then workloads; bench/tests/examples/tools
//       are unconstrained tops). Back-edges and include cycles are errors.
//       `--dot=FILE` renders the observed module graph as Graphviz.
//
// Suppressions:
//   inline   `// pinlint: unordered-ok(<reason>)`  (D2, same or previous line)
//            `// pinlint: allow(D3: <reason>)`     (any rule)
//            — the reason is mandatory (D0): an empty one does not suppress.
//   baseline tools/pinlint/baseline.txt — `path:rule` entries; every entry
//            must still match something (stale entries are an error), so the
//            baseline can only shrink.
//
// Output: `file:line: rule: message` on stdout, optional JSON report
// (--json=FILE), optional SARIF 2.1.0 report (--sarif=FILE), optional
// Graphviz include-module graph (--dot=FILE). Exit 0 clean, 1
// violations/stale baseline, 2 usage error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// --- diagnostics -----------------------------------------------------------

struct Diag {
  std::string file;  // path relative to the scan root
  int line = 0;
  std::string rule;  // "D1".."D6"
  std::string msg;
};

// --- tokenizer -------------------------------------------------------------

enum class Tok : std::uint8_t { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  Tok kind;
  std::string text;
  int line;
};

struct SourceFile {
  fs::path path;        // as opened
  std::string rel;      // relative to root, '/'-separated
  std::vector<Token> tokens;
  std::map<int, std::string> comments;     // line -> comment text on it
  std::set<std::string> includes;          // <...> and "..." include targets
  std::vector<std::pair<int, std::string>> include_list;  // quoted only: line, target
  std::vector<std::pair<int, std::string>> strings;  // line, literal body
  bool pragma_once = false;
  bool is_header = false;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Tokenizes `text`. Comments land in `comments` (for annotation lookup),
// string literal bodies in `strings` (for "%p" detection), preprocessor
// lines are parsed just enough to harvest includes and #pragma once.
void tokenize(const std::string& text, SourceFile& out) {
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto record_comment = [&](int ln, const std::string& body) {
    auto& slot = out.comments[ln];
    if (!slot.empty()) slot += ' ';
    slot += body;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: harvest includes / pragma once, skip the rest
    // (honoring backslash continuations).
    if (c == '#' && at_line_start) {
      std::size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      std::size_t k = j;
      while (k < n && ident_char(text[k])) ++k;
      const std::string directive = text.substr(j, k - j);
      std::size_t end = i;
      while (end < n && text[end] != '\n') {
        if (text[end] == '\\' && end + 1 < n && text[end + 1] == '\n') {
          ++line;
          end += 2;
          continue;
        }
        ++end;
      }
      const std::string rest = text.substr(k, end - k);
      if (directive == "include") {
        const auto lt = rest.find_first_of("<\"");
        if (lt != std::string::npos) {
          const char close = rest[lt] == '<' ? '>' : '"';
          const auto gt = rest.find(close, lt + 1);
          if (gt != std::string::npos) {
            const std::string target = rest.substr(lt + 1, gt - lt - 1);
            out.includes.insert(target);
            // Quoted includes are project-local: they feed the include graph
            // (D9) with the line number the back-edge diagnostic points at.
            if (close == '"') out.include_list.emplace_back(line, target);
          }
        }
      } else if (directive == "pragma" &&
                 rest.find("once") != std::string::npos) {
        out.pragma_once = true;
      }
      i = end;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = i + 2;
      while (end < n && text[end] != '\n') ++end;
      record_comment(line, text.substr(i + 2, end - i - 2));
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = i + 2;
      int start_line = line;
      while (end + 1 < n && !(text[end] == '*' && text[end + 1] == '/')) {
        if (text[end] == '\n') ++line;
        ++end;
      }
      record_comment(start_line, text.substr(i + 2, end - i - 2));
      i = end + 2 > n ? n : end + 2;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string close = ")" + delim + "\"";
      const auto end = text.find(close, j);
      const std::size_t stop = end == std::string::npos ? n : end + close.size();
      const std::string body =
          text.substr(j + 1, (end == std::string::npos ? n : end) - j - 1);
      out.strings.emplace_back(line, body);
      out.tokens.push_back({Tok::kString, body, line});
      for (std::size_t p = i; p < stop; ++p) {
        if (text[p] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') ++line;  // unterminated; be permissive
        body += text[j++];
      }
      out.strings.emplace_back(line, body);
      out.tokens.push_back(
          {quote == '"' ? Tok::kString : Tok::kChar, body, line});
      i = j + 1 > n ? n : j + 1;
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.tokens.push_back({Tok::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Numbers (good enough: digits + ident chars + '.' + quote separators).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       text[j] == '\'')) {
        ++j;
      }
      out.tokens.push_back({Tok::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: greedily join the few multi-char operators we care about.
    static const char* kTwo[] = {"::", "++", "--", "+=", "-=", "->", "<<",
                                 ">>", "==", "!=", "<=", ">=", "&&", "||"};
    std::string p(1, c);
    if (i + 1 < n) {
      const std::string two = text.substr(i, 2);
      for (const char* t : kTwo) {
        if (two == t) {
          p = two;
          break;
        }
      }
    }
    out.tokens.push_back({Tok::kPunct, p, line});
    i += p.size();
  }
}

// --- suppression helpers ---------------------------------------------------

bool has_reason_text(const std::string& s) {
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return true;
  }
  return false;
}

// True if `line` carries a pinlint annotation that suppresses `rule` — on
// the line itself (trailing comment) or in the contiguous run of comment
// lines immediately above it (a multi-line annotation block). D2
// additionally honors the dedicated `unordered-ok(<reason>)` spelling;
// every rule honors `allow(Dk: <reason>)`. A reason is mandatory (D0): a
// reasonless annotation suppresses nothing. The close paren may be missing
// when the reason continues onto the next comment line — the reason just
// has to start on the annotated line.
bool inline_suppressed(const SourceFile& f, const std::string& rule,
                       int line) {
  constexpr int kMaxBlock = 8;  // comment lines walked upward
  for (int ln = line; ln >= 0 && ln > line - kMaxBlock; --ln) {
    const auto it = f.comments.find(ln);
    if (it == f.comments.end()) {
      if (ln == line) continue;  // flagged line itself may have no comment
      break;                     // a code-only line ends the comment block
    }
    const std::string& c = it->second;
    const auto tag = c.find("pinlint:");
    if (tag == std::string::npos) continue;
    const std::string body = c.substr(tag + 8);
    if (rule == "D2") {
      const auto ok = body.find("unordered-ok(");
      if (ok != std::string::npos) {
        const auto open = ok + 13;
        const auto close = body.find(')', open);
        const std::string reason = body.substr(
            open, close == std::string::npos ? std::string::npos
                                             : close - open);
        if (has_reason_text(reason)) return true;
      }
    }
    const auto allow = body.find("allow(");
    if (allow != std::string::npos) {
      const auto open = allow + 6;
      const auto close = body.find(')', open);
      const std::string inner = body.substr(
          open,
          close == std::string::npos ? std::string::npos : close - open);
      const auto rule_at = inner.find(rule);
      if (rule_at != std::string::npos) {
        const auto colon = inner.find(':', rule_at + rule.size());
        if (colon != std::string::npos &&
            has_reason_text(inner.substr(colon + 1))) {
          return true;
        }
      }
    }
  }
  return false;
}

// --- linter ----------------------------------------------------------------

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  bool load_paths(const std::vector<std::string>& paths);
  void run();
  bool write_dot(const std::string& path) const;

  std::vector<Diag>& diags() { return diags_; }
  std::size_t files_scanned() const { return files_.size(); }

 private:
  SourceFile* find_rel(const std::string& rel);
  void add(const SourceFile& f, int line, const char* rule, std::string msg);
  bool load_file(const fs::path& p);

  void check_d0(const SourceFile& f);
  void check_d1(const SourceFile& f);
  void check_d2(const SourceFile& f);
  void check_d3(const SourceFile& f);
  void check_d4();
  void check_d5();
  void check_d6(const SourceFile& f);
  void check_d7(const SourceFile& f);
  void check_d8(const SourceFile& f);
  void check_d9(std::size_t n_files);

  std::set<std::string> unordered_names(const SourceFile& f) const;

  fs::path root_;
  std::vector<SourceFile> files_;
  std::vector<Diag> diags_;
  // Include-module graph observed by D9, for --dot: edge -> #include count,
  // plus the subset of edges that violated the layering matrix.
  std::map<std::pair<std::string, std::string>, int> mod_edges_;
  std::set<std::pair<std::string, std::string>> mod_violations_;
};

bool is_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" ||
         e == ".h" || e == ".hh";
}

bool Linter::load_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "pinlint: cannot read %s\n", p.string().c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  SourceFile f;
  f.path = p;
  std::error_code ec;
  const fs::path rel = fs::relative(p, root_, ec);
  f.rel = (ec ? p : rel).generic_string();
  const std::string ext = p.extension().string();
  f.is_header = ext == ".hpp" || ext == ".h" || ext == ".hh";
  tokenize(ss.str(), f);
  files_.push_back(std::move(f));
  return true;
}

bool Linter::load_paths(const std::vector<std::string>& paths) {
  std::set<std::string> seen;
  bool ok = true;
  for (const std::string& raw : paths) {
    fs::path p = fs::path(raw).is_absolute() ? fs::path(raw) : root_ / raw;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> found;
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && is_source_ext(it->path())) {
          found.push_back(it->path());
        }
      }
      std::sort(found.begin(), found.end());
      for (const auto& q : found) {
        if (seen.insert(q.generic_string()).second && !load_file(q)) ok = false;
      }
    } else if (fs::is_regular_file(p, ec)) {
      if (seen.insert(p.generic_string()).second && !load_file(p)) ok = false;
    } else {
      std::fprintf(stderr, "pinlint: no such file or directory: %s\n",
                   raw.c_str());
      ok = false;
    }
  }
  return ok;
}

SourceFile* Linter::find_rel(const std::string& rel) {
  for (auto& f : files_) {
    if (f.rel == rel) return &f;
  }
  // Not among the scan paths: load it on demand so the cross-file rules
  // (D4/D5) work even when the caller scans a subset.
  const fs::path p = root_ / rel;
  std::error_code ec;
  if (!fs::is_regular_file(p, ec)) return nullptr;
  if (!load_file(p)) return nullptr;
  return &files_.back();
}

void Linter::add(const SourceFile& f, int line, const char* rule,
                 std::string msg) {
  if (inline_suppressed(f, rule, line)) return;
  diags_.push_back({f.rel, line, rule, std::move(msg)});
}

// --- D1: nondeterminism sources --------------------------------------------

void Linter::check_d1(const SourceFile& f) {
  if (f.rel.find("sim/random") != std::string::npos) return;
  const auto& t = f.tokens;

  auto prev_is = [&](std::size_t i, const char* s) {
    return i > 0 && t[i - 1].text == s;
  };
  auto member_access = [&](std::size_t i) {
    return prev_is(i, ".") || prev_is(i, "->");
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;

    // Banned identifiers wherever they appear (std:: or not).
    if (s == "random_device" || s == "system_clock" || s == "steady_clock" ||
        s == "high_resolution_clock" || s == "gettimeofday" ||
        s == "clock_gettime" || s == "timespec_get" || s == "getrandom") {
      add(f, t[i].line, "D1",
          "nondeterminism source '" + s +
              "' — all randomness/time must come from sim::Rng / sim::Time");
      continue;
    }

    // Banned only as a free-function call: rand(), srand(), time(),
    // clock(), drand48(). Member access (e.time, h.clock()) and
    // declarations (`VirtAddr time(...)`) stay legal. An identifier before
    // the name usually means a declaration's return type — but `return` /
    // `co_return` / `case` are call contexts, not types.
    if ((s == "rand" || s == "srand" || s == "time" || s == "clock" ||
         s == "drand48" || s == "random") &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      if (!member_access(i) &&
          (i == 0 || t[i - 1].kind == Tok::kPunct || prev_is(i, "return") ||
           prev_is(i, "co_return") || prev_is(i, "case")) &&
          !prev_is(i, "::")) {
        add(f, t[i].line, "D1",
            "call to '" + s +
                "()' — wall-clock/libc randomness breaks seeded replay; use "
                "sim::Rng or the engine's virtual time");
      }
      continue;
    }

    // Pointer-value hashing: std::hash<T*> and pointer-keyed unordered
    // containers. Pointer values differ across runs (ASLR, allocation
    // order), so any ordering derived from them is nondeterministic.
    if (s == "hash" && i + 1 < t.size() && t[i + 1].text == "<") {
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size() && j < i + 32; ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") {
          if (--depth == 0) break;
        }
        if (t[j].text == "*" && depth == 1) {
          add(f, t[i].line, "D1",
              "std::hash over a pointer type — pointer values are not stable "
              "across runs");
          break;
        }
      }
      continue;
    }
    if ((s == "unordered_map" || s == "unordered_set") && i + 1 < t.size() &&
        t[i + 1].text == "<") {
      // Flag a pointer first template argument (the key type).
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "<" || t[j].text == "(") ++depth;
        if (t[j].text == ">" || t[j].text == ")") {
          if (--depth == 0) break;
        }
        if (depth == 1 && t[j].text == ",") break;  // end of key type
        if (depth == 1 && t[j].text == "*") {
          add(f, t[i].line, "D1",
              "pointer-keyed " + s +
                  " — bucket placement depends on the pointer value; key by "
                  "a stable id instead");
          break;
        }
      }
      continue;
    }
  }

  // Pointer printing: "%p" in a format string renders an address.
  for (const auto& [line, body] : f.strings) {
    if (body.find("%p") != std::string::npos) {
      // Re-check suppression against the literal's line.
      add(f, line, "D1",
          "format string prints a pointer value (\"%p\") — addresses differ "
          "across runs");
    }
  }
}

// --- D2: unordered iteration -----------------------------------------------

// Names declared (in this file) as unordered containers: direct
// declarations, references/pointers, and declarations through a local
// `using Alias = std::unordered_map<...>`.
std::set<std::string> Linter::unordered_names(const SourceFile& f) const {
  std::set<std::string> names;
  std::set<std::string> aliases;
  const auto& t = f.tokens;

  auto harvest_after_template = [&](std::size_t i) -> std::size_t {
    // t[i] is `unordered_map`/`unordered_set` (or an alias, with no template
    // args). Skip <...> if present, then any of `& * const`, then take the
    // identifier if one follows.
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">>") {  // e.g. map<K, set<V>>
          depth -= 2;
          if (depth <= 0) { ++j; break; }
        } else if (t[j].text == ">") {
          if (--depth == 0) { ++j; break; }
        }
      }
    }
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Tok::kIdent) names.insert(t[j].text);
    return j;
  };

  // Pass 1: aliases (`using X = std::unordered_map<...>;`).
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 1].kind == Tok::kIdent &&
        t[i + 2].text == "=") {
      for (std::size_t j = i + 3; j < t.size() && j < i + 8; ++j) {
        if (t[j].text == ";") break;
        if (t[j].text == "unordered_map" || t[j].text == "unordered_set") {
          aliases.insert(t[i + 1].text);
          break;
        }
      }
    }
  }
  // Pass 2: declarations.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "unordered_map" || t[i].text == "unordered_set" ||
        aliases.count(t[i].text) != 0) {
      harvest_after_template(i);
    }
  }
  return names;
}

void Linter::check_d2(const SourceFile& f) {
  std::set<std::string> names = unordered_names(f);
  // A .cpp also sees the unordered members of its paired header (the
  // overwhelmingly common pattern: declared in x.hpp, iterated in x.cpp).
  if (!f.is_header) {
    for (const char* ext : {".hpp", ".h"}) {
      fs::path header = f.path;
      header.replace_extension(ext);
      std::error_code ec;
      if (!fs::is_regular_file(header, ec)) continue;
      const fs::path relp = fs::relative(header, root_, ec);
      SourceFile* hf = find_rel((ec ? header : relp).generic_string());
      if (hf != nullptr) {
        const auto hn = unordered_names(*hf);
        names.insert(hn.begin(), hn.end());
      }
    }
  }
  if (names.empty()) return;

  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for: `for ( decl : expr )` — find the ':' at paren depth 1,
    // then the iterated expression's trailing identifier.
    if (t[i].text == "for" && i + 1 < t.size() && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
        else if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") {
          if (--depth == 0) { close = j; break; }
        } else if (t[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) continue;
      // Trailing identifier of the range expression, ignoring a trailing
      // `()` call and member chains: the name actually being iterated.
      std::size_t j = close - 1;
      while (j > colon && (t[j].text == ")" || t[j].text == "(")) --j;
      if (t[j].kind == Tok::kIdent && names.count(t[j].text) != 0) {
        add(f, t[i].line, "D2",
            "iteration over unordered container '" + t[j].text +
                "' — bucket order can leak into sim state or output; sort "
                "the keys (or use an ordered map), or annotate the loop "
                "`// pinlint: unordered-ok(<why order cannot matter>)`");
      }
      continue;
    }
    // Iterator walk: `name.begin()` for an unordered name. find()/erase()
    // by key are fine; begin() means traversal.
    if (t[i].text == "begin" && i >= 2 && t[i - 1].text == "." &&
        t[i - 2].kind == Tok::kIdent && names.count(t[i - 2].text) != 0 &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      add(f, t[i].line, "D2",
          "iterator traversal of unordered container '" + t[i - 2].text +
              "' — bucket order can leak into sim state or output; sort the "
              "keys first or annotate "
              "`// pinlint: unordered-ok(<why order cannot matter>)`");
    }
  }
}

// --- D3: raw allocation ----------------------------------------------------

void Linter::check_d3(const SourceFile& f) {
  if (f.rel.find("mem/malloc_sim") != std::string::npos) return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    if (s == "new" || s == "delete") {
      // `= delete`, `delete[]` of... any use of the keywords is raw memory
      // management except deleted functions (`= delete`) and
      // `operator new/delete` declarations.
      if (i > 0 && t[i - 1].text == "=") continue;        // = delete / = new?
      if (i > 0 && t[i - 1].text == "operator") continue; // operator new decl
      add(f, t[i].line, "D3",
          "raw '" + s +
              "' — simulated heaps go through mem::MallocSim; host-side "
              "ownership through std containers/smart pointers");
      continue;
    }
    if ((s == "malloc" || s == "calloc" || s == "realloc" || s == "free") &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      // Method calls (heap.malloc, p.heap.free) and declarations
      // (`VirtAddr malloc(std::size_t)`) are the simulator's own API.
      const bool member = i > 0 && (t[i - 1].text == "." ||
                                    t[i - 1].text == "->" ||
                                    t[i - 1].text == "::");
      // Return type directly before the name: `VirtAddr malloc(...)`,
      // `void* malloc(...)`, `VirtAddr& malloc(...)`.
      const bool declaration =
          i > 0 && (t[i - 1].kind == Tok::kIdent || t[i - 1].text == "*" ||
                    t[i - 1].text == "&");
      if (!member && !declaration) {
        add(f, t[i].line, "D3",
            "raw '" + s + "()' — use mem::MallocSim for simulated memory");
      }
    }
  }
}

// --- D4: counter consistency -----------------------------------------------

void Linter::check_d4() {
  SourceFile* counters = find_rel("src/core/counters.hpp");
  SourceFile* report = find_rel("src/core/report.cpp");
  if (counters == nullptr || report == nullptr) return;  // not this repo shape

  // Harvest `std::uint64_t NAME = 0;` members of struct Counters.
  std::vector<std::pair<std::string, int>> members;  // name, line
  const auto& t = counters->tokens;
  std::size_t begin = 0;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "struct" && t[i + 1].text == "Counters") {
      begin = i;
      break;
    }
  }
  int depth = 0;
  for (std::size_t i = begin; i < t.size(); ++i) {
    if (t[i].text == "{") ++depth;
    if (t[i].text == "}") {
      if (--depth == 0) break;
    }
    if (depth == 1 && t[i].text == "uint64_t" && i + 1 < t.size() &&
        t[i + 1].kind == Tok::kIdent && i + 2 < t.size() &&
        (t[i + 2].text == "=" || t[i + 2].text == ";")) {
      members.emplace_back(t[i + 1].text, t[i + 1].line);
    }
  }

  auto mentions = [](const SourceFile& f, const std::string& name) {
    for (const auto& tok : f.tokens) {
      if (tok.kind == Tok::kIdent && tok.text == name) return true;
    }
    return false;
  };
  auto incremented_in = [](const SourceFile& f, const std::string& name) {
    const auto& tk = f.tokens;
    for (std::size_t i = 0; i < tk.size(); ++i) {
      if (tk[i].kind != Tok::kIdent || tk[i].text != name) continue;
      if (i + 1 < tk.size() &&
          (tk[i + 1].text == "+=" || tk[i + 1].text == "++" ||
           tk[i + 1].text == "=")) {
        return true;
      }
      // Passed as an argument (`do_unpin(r, counters_.unpin_ops)`): counts
      // as a write — by-reference counter plumbing is an idiom here.
      if (i + 1 < tk.size() && i > 1 && tk[i - 1].text == "." &&
          (tk[i + 1].text == ")" || tk[i + 1].text == ",")) {
        return true;
      }
      // `++counters_.name` / `++ep->counters().frames_corrupted`: walk back
      // over the object chain (identifiers, member/scope punctuation and
      // call parens) to the prefix operator.
      std::size_t j = i;
      while (j > 0 && (tk[j - 1].kind == Tok::kIdent ||
                       tk[j - 1].text == "." || tk[j - 1].text == "->" ||
                       tk[j - 1].text == "::" || tk[j - 1].text == "(" ||
                       tk[j - 1].text == ")")) {
        --j;
      }
      if (j > 0 && tk[j - 1].text == "++") return true;
    }
    return false;
  };

  for (const auto& [name, line] : members) {
    bool inc = false;
    for (const auto& f : files_) {
      if (f.rel == "src/core/counters.hpp") continue;
      if (f.rel.rfind("src/", 0) == 0 && incremented_in(f, name)) {
        inc = true;
        break;
      }
    }
    if (!inc) {
      diags_.push_back({counters->rel, line, "D4",
                        "counter '" + name +
                            "' is declared but never incremented under src/"});
    }
    if (!mentions(*report, name)) {
      diags_.push_back({counters->rel, line, "D4",
                        "counter '" + name +
                            "' is declared but not serialized by "
                            "core/report.cpp — it can silently rot"});
    }
  }

  // Vice versa: every `c.NAME` the report reads must be a declared counter.
  std::set<std::string> declared;
  for (const auto& [name, line] : members) declared.insert(name);
  const auto& rt = report->tokens;
  for (std::size_t i = 2; i < rt.size(); ++i) {
    if (rt[i].kind == Tok::kIdent && rt[i - 1].text == "." &&
        rt[i - 2].text == "c" && declared.count(rt[i].text) == 0 &&
        rt[i].text != "overlap_miss_rate") {
      diags_.push_back({report->rel, rt[i].line, "D4",
                        "report reads 'c." + rt[i].text +
                            "' which is not a Counters member"});
    }
  }
}

// --- D5: EventKind exhaustiveness ------------------------------------------

void Linter::check_d5() {
  SourceFile* event = find_rel("src/obs/event.hpp");
  if (event == nullptr) return;

  // Harvest the EventKind enumerators.
  std::vector<std::string> kinds;
  const auto& t = event->tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text == "enum" && t[i + 1].text == "class" &&
        t[i + 2].text == "EventKind") {
      std::size_t j = i + 3;
      while (j < t.size() && t[j].text != "{") ++j;
      int depth = 0;
      bool expect_name = true;
      for (; j < t.size(); ++j) {
        if (t[j].text == "{") {
          ++depth;
          expect_name = true;
          continue;
        }
        if (t[j].text == "}") {
          if (--depth == 0) break;
          continue;
        }
        if (depth == 1 && expect_name && t[j].kind == Tok::kIdent) {
          kinds.push_back(t[j].text);
          expect_name = false;
        }
        if (t[j].text == ",") expect_name = true;
      }
      break;
    }
  }
  if (kinds.empty()) return;
  const std::set<std::string> kind_set(kinds.begin(), kinds.end());

  // (a) The single formatting authority must render every kind.
  if (SourceFile* legacy = find_rel("src/obs/legacy.cpp")) {
    std::set<std::string> seen;
    for (const auto& tok : legacy->tokens) {
      if (tok.kind == Tok::kIdent && kind_set.count(tok.text) != 0) {
        seen.insert(tok.text);
      }
    }
    for (const auto& k : kinds) {
      if (seen.count(k) == 0) {
        diags_.push_back({legacy->rel, 1, "D5",
                          "EventKind::" + k +
                              " is never rendered by obs/legacy.cpp — every "
                              "kind needs a legacy string form"});
      }
    }
  }

  // (b) Any switch carrying EventKind case labels must be exhaustive or
  // have a default. Checked across every scanned file.
  for (auto& f : files_) {
    const auto& tk = f.tokens;
    for (std::size_t i = 0; i < tk.size(); ++i) {
      if (tk[i].text != "switch") continue;
      // Find the switch body.
      std::size_t j = i + 1;
      int depth = 0;
      while (j < tk.size() && tk[j].text != "{") ++j;
      std::set<std::string> cases;
      bool has_default = false;
      bool on_eventkind = false;
      for (; j < tk.size(); ++j) {
        if (tk[j].text == "{") ++depth;
        if (tk[j].text == "}") {
          if (--depth == 0) break;
        }
        if (tk[j].text == "default") has_default = true;
        if (tk[j].text == "case" && j + 1 < tk.size()) {
          // case [obs::]EventKind::kX — the label must literally be
          // qualified with EventKind:: (another enum may reuse an
          // enumerator name, e.g. Phase::kRetransmit).
          std::size_t k = j + 1;
          while (k < tk.size() &&
                 (tk[k].kind == Tok::kIdent || tk[k].text == "::") &&
                 tk[k].text != ":") {
            if (tk[k].kind == Tok::kIdent && kind_set.count(tk[k].text) != 0 &&
                k >= 2 && tk[k - 1].text == "::" &&
                tk[k - 2].text == "EventKind") {
              on_eventkind = true;
              cases.insert(tk[k].text);
            }
            ++k;
          }
        }
      }
      if (on_eventkind && !has_default) {
        for (const auto& k : kinds) {
          if (cases.count(k) == 0) {
            diags_.push_back(
                {f.rel, tk[i].line, "D5",
                 "switch over obs::EventKind has no default and does not "
                 "handle EventKind::" + k});
          }
        }
      }
      i = j;
    }
  }
}

// --- D6: header hygiene ----------------------------------------------------

void Linter::check_d6(const SourceFile& f) {
  if (!f.is_header) return;
  if (!f.pragma_once) {
    diags_.push_back(
        {f.rel, 1, "D6", "header is missing '#pragma once'"});
  }
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 1].text == "namespace") {
      add(f, t[i].line, "D6",
          "'using namespace' in a header leaks into every includer");
    }
  }
  // Include-self-sufficiency spot checks: a few unambiguous std:: names
  // whose home header is unique. Transitive includes do not count — the
  // header must stand alone.
  static const std::pair<const char*, const char*> kNeeds[] = {
      {"vector", "vector"},         {"string", "string"},
      {"unordered_map", "unordered_map"},
      {"unordered_set", "unordered_set"},
      {"function", "functional"},   {"unique_ptr", "memory"},
      {"shared_ptr", "memory"},     {"weak_ptr", "memory"},
      {"make_unique", "memory"},    {"make_shared", "memory"},
      {"optional", "optional"},     {"variant", "variant"},
      {"uint8_t", "cstdint"},       {"uint16_t", "cstdint"},
      {"uint32_t", "cstdint"},      {"uint64_t", "cstdint"},
      {"int64_t", "cstdint"},       {"map", "map"},
      {"deque", "deque"},           {"list", "list"},
  };
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i - 1].text != "::" ||
        t[i - 2].text != "std") {
      continue;
    }
    for (const auto& [name, header] : kNeeds) {
      if (t[i].text == name && f.includes.count(header) == 0) {
        add(f, t[i].line, "D6",
            "uses std::" + std::string(name) + " but does not include <" +
                header + "> itself (include-what-you-use)");
        break;
      }
    }
  }
}

// --- D0: suppression hygiene -----------------------------------------------

// Every escape hatch must say why. `allow(D3)` / `allow(D3:)` /
// `unordered-ok()` are themselves diagnostics — and (see inline_suppressed)
// they also suppress nothing, so an empty reason can never silently widen
// the hole it punches.
void Linter::check_d0(const SourceFile& f) {
  for (const auto& [line, text] : f.comments) {
    const auto tag = text.find("pinlint:");
    if (tag == std::string::npos) continue;
    const std::string body = text.substr(tag + 8);
    for (const std::string kind : {"allow(", "unordered-ok("}) {
      std::size_t pos = 0;
      while ((pos = body.find(kind, pos)) != std::string::npos) {
        const std::size_t open = pos + kind.size();
        const auto close = body.find(')', open);
        const std::string inner = body.substr(
            open,
            close == std::string::npos ? std::string::npos : close - open);
        bool ok = false;
        if (kind == "allow(") {
          const auto colon = inner.find(':');
          ok = colon != std::string::npos &&
               has_reason_text(inner.substr(colon + 1));
        } else {
          ok = has_reason_text(inner);
        }
        if (!ok) {
          diags_.push_back(
              {f.rel, line, "D0",
               "suppression '" + kind +
                   ")' carries no reason — write `// pinlint: " +
                   (kind == "allow(" ? std::string("allow(Dk: <why>)")
                                     : std::string("unordered-ok(<why>)")) +
                   "`; a reasonless annotation also suppresses nothing"});
        }
        pos = open;
      }
    }
  }
}

// --- scope machinery: pointer symbols + lambda extraction ------------------

// Names declared in this file as raw pointers (`Type* name`, parameters
// included). File-scoped, not block-scoped — good enough to decide whether
// a lambda capture smuggles a raw pointer, with inline `allow(D7: ...)` as
// the pressure valve for the rare collision.
std::set<std::string> pointer_names(const SourceFile& f) {
  std::set<std::string> out;
  const auto& t = f.tokens;
  auto type_ish = [&](std::size_t i) {
    if (t[i].kind != Tok::kIdent) return false;
    const std::string& s = t[i].text;
    static const std::set<std::string> kBuiltin = {
        "void",     "char",    "short",    "int",      "long",
        "unsigned", "signed",  "float",    "double",   "bool",
        "auto",     "size_t",  "uint8_t",  "uint16_t", "uint32_t",
        "uint64_t", "int8_t",  "int16_t",  "int32_t",  "int64_t",
        "byte",     "uintptr_t"};
    if (kBuiltin.count(s) != 0) return true;
    if (std::isupper(static_cast<unsigned char>(s[0])) != 0) return true;
    if (i > 0 && t[i - 1].text == "::") return true;  // qualified type name
    return false;
  };
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i + 1].text != "*") continue;
    if (!type_ish(i)) continue;  // `a * b` is arithmetic, not a declaration
    std::size_t j = i + 2;
    if (j < t.size() && t[j].text == "const") ++j;  // Type* const name
    if (j >= t.size() || t[j].kind != Tok::kIdent) continue;
    if (j + 1 >= t.size()) continue;
    // A declarator is terminated like one; `Type* name(args)` would be a
    // function declaration, `*name` mid-expression a dereference.
    const std::string& nxt = t[j + 1].text;
    if (nxt == "=" || nxt == ";" || nxt == "," || nxt == ")" || nxt == "{") {
      out.insert(t[j].text);
    }
  }
  return out;
}

struct LambdaInfo {
  int line = 0;                              // line of the '[' introducer
  std::size_t body_begin = 0, body_end = 0;  // token indices of '{' / '}'
  bool cap_this = false;
  bool cap_default_ref = false;              // [&]
  std::vector<std::string> ref_caps;         // [&name]
  std::vector<std::string> ptr_caps;         // raw-pointer captures
  std::string callee;  // nearest enclosing call expression ("" if none)
  bool guarded = false;  // wrapped in a guarded(...) liveness adapter
};

// Walks the token stream with an explicit frame stack (call parens, brace
// scopes, subscripts) and yields every lambda together with its parsed
// capture list and the call expression it is an argument of. `guarded(...)`
// and `std::move/forward` wrappers are transparent: the lambda's callee is
// the call outside them, with `guarded` remembered as a liveness proof.
// The walk into a lambda body happens through the same loop, so a nested
// lambda resolves against its own nearest call, not the outer one (the
// enclosing-call walk stops at any non-paren frame).
std::vector<LambdaInfo> extract_lambdas(const SourceFile& f,
                                        const std::set<std::string>& ptrs) {
  std::vector<LambdaInfo> out;
  const auto& t = f.tokens;
  struct Frame {
    char kind;  // '(' call/group, '{' brace scope, '[' subscript
    std::string callee;
  };
  std::vector<Frame> stack;
  static const std::set<std::string> kNotCallee = {
      "if", "while", "for", "switch", "return", "co_return", "co_await",
      "co_yield", "sizeof", "catch", "alignof", "decltype"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "(") {
      std::string callee;
      if (i > 0 && t[i - 1].kind == Tok::kIdent &&
          kNotCallee.count(t[i - 1].text) == 0) {
        callee = t[i - 1].text;
      }
      stack.push_back({'(', callee});
      continue;
    }
    if (s == "{") {
      stack.push_back({'{', ""});
      continue;
    }
    if (s == ")" || s == "}") {
      const char open = s == ")" ? '(' : '{';
      while (!stack.empty() && stack.back().kind != open) stack.pop_back();
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (s != "[") continue;
    // `a[i]` / `f()[0]` / `"x"[0]` subscripts and `[[attributes]]` are not
    // lambda introducers.
    if (i > 0 &&
        (t[i - 1].kind == Tok::kIdent || t[i - 1].kind == Tok::kNumber ||
         t[i - 1].kind == Tok::kString || t[i - 1].text == "]" ||
         t[i - 1].text == ")")) {
      stack.push_back({'[', ""});
      continue;
    }
    if (i + 1 < t.size() && t[i + 1].text == "[") {
      // Attribute: skip both bracket groups wholesale.
      int depth = 0;
      for (std::size_t j = i; j < t.size(); ++j) {
        if (t[j].text == "[") ++depth;
        else if (t[j].text == "]" && --depth == 0) {
          i = j;
          break;
        }
      }
      continue;
    }

    // Capture list: match to the closing ']'.
    LambdaInfo lam;
    lam.line = t[i].line;
    std::size_t close = 0;
    {
      int depth = 0;
      for (std::size_t j = i; j < t.size(); ++j) {
        const std::string& u = t[j].text;
        if (u == "[" || u == "(" || u == "{") ++depth;
        else if (u == "]" || u == ")" || u == "}") {
          if (--depth == 0) {
            close = j;
            break;
          }
        }
      }
    }
    if (close == 0) continue;

    // Split the capture list at top-level commas and classify each capture.
    std::vector<std::pair<std::size_t, std::size_t>> segs;  // [a, b)
    {
      int depth = 0;
      std::size_t start = i + 1;
      for (std::size_t j = i + 1; j <= close; ++j) {
        const std::string& u = t[j].text;
        if (u == "[" || u == "(" || u == "{") ++depth;
        else if (u == ")" || u == "}" || (u == "]" && j != close)) --depth;
        if ((u == "," && depth == 0) || j == close) {
          if (j > start) segs.emplace_back(start, j);
          start = j + 1;
        }
      }
    }
    for (const auto& [a, b] : segs) {
      if (t[a].text == "this") {
        lam.cap_this = true;
        continue;
      }
      if (t[a].text == "*") continue;  // [*this] copies the object: owning
      if (t[a].text == "&") {
        if (b - a == 1) {
          lam.cap_default_ref = true;
        } else if (t[a + 1].kind == Tok::kIdent) {
          lam.ref_caps.push_back(t[a + 1].text);  // &name / &name = expr
        }
        continue;
      }
      if (t[a].text == "=" && b - a == 1) continue;  // [=]: copies only
      if (t[a].kind != Tok::kIdent) continue;
      const std::string& name = t[a].text;
      if (a + 1 < b && t[a + 1].text == "=") {
        // Init capture `name = expr`: an address-of or a bare pointer name
        // on the right smuggles a raw pointer; anything else (weak_ptr
        // tokens, std::move of owning values, generation counters) copies.
        const std::size_t e = a + 2;
        if (e < b && (t[e].text == "&" || t[e].text == "this" ||
                      (b - e == 1 && t[e].kind == Tok::kIdent &&
                       ptrs.count(t[e].text) != 0))) {
          lam.ptr_caps.push_back(name);
        }
        continue;
      }
      if (ptrs.count(name) != 0) lam.ptr_caps.push_back(name);
    }

    // Body: optional parameter list, optional specifiers, then '{'.
    std::size_t j = close + 1;
    if (j < t.size() && t[j].text == "(") {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        else if (t[j].text == ")" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    bool is_lambda = false;
    for (int guard = 0; j < t.size() && guard < 24; ++j, ++guard) {
      const std::string& u = t[j].text;
      if (u == "{") {
        is_lambda = true;
        break;
      }
      if (u == ";" || u == "," || u == ")" || u == "]" || u == "=") break;
      if (u == "(") {  // noexcept(...)
        int depth = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "(") ++depth;
          else if (t[j].text == ")" && --depth == 0) break;
        }
      }
    }
    if (!is_lambda) {
      i = close;  // e.g. an empty subscript in a type: treat as handled
      continue;
    }
    lam.body_begin = j;
    {
      int depth = 0;
      for (std::size_t k = j; k < t.size(); ++k) {
        if (t[k].text == "{") ++depth;
        else if (t[k].text == "}" && --depth == 0) {
          lam.body_end = k;
          break;
        }
      }
      if (lam.body_end == 0) lam.body_end = t.size() - 1;
    }

    // Nearest enclosing call: skip transparent wrappers, stop at any brace
    // scope (a lambda body or initializer list is a context boundary).
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind != '(') break;
      if (it->callee == "guarded") {
        lam.guarded = true;
        continue;
      }
      if (it->callee.empty() || it->callee == "move" ||
          it->callee == "forward") {
        continue;
      }
      lam.callee = it->callee;
      break;
    }
    out.push_back(std::move(lam));
    i = close;  // params + body flow through the main loop (nested lambdas)
  }
  return out;
}

// --- D7: callback lifetime -------------------------------------------------

// A deferred callback holding `this`, a raw pointer, or a reference may
// fire after its target died — the exact UAF class ASan caught dynamically
// in the pin-chunk-completes-after-endpoint-death and restart-vs-notifier
// races. Escapes: a guarded(...) wrapper, a find_alive()/weak-token
// revalidation inside the body, or an explicit `allow(D7: <argument>)`.
void Linter::check_d7(const SourceFile& f) {
  if (f.rel.rfind("src/", 0) != 0) return;
  static const std::set<std::string> kSinks = {"schedule_at",
                                               "schedule_after", "submit"};
  const std::set<std::string> ptrs = pointer_names(f);
  const auto& t = f.tokens;
  for (const LambdaInfo& lam : extract_lambdas(f, ptrs)) {
    if (kSinks.count(lam.callee) == 0) continue;
    if (lam.guarded) continue;
    std::vector<std::string> risks;
    if (lam.cap_this) risks.push_back("'this'");
    if (lam.cap_default_ref) risks.push_back("capture-default '&'");
    for (const auto& r : lam.ref_caps) risks.push_back("'&" + r + "'");
    for (const auto& p : lam.ptr_caps) {
      risks.push_back("raw pointer '" + p + "'");
    }
    if (risks.empty()) continue;
    bool revalidated = false;
    for (std::size_t k = lam.body_begin;
         k <= lam.body_end && k < t.size(); ++k) {
      if (t[k].kind != Tok::kIdent) continue;
      if (t[k].text == "find_alive") {
        revalidated = true;
        break;
      }
      if ((t[k].text == "expired" || t[k].text == "lock") && k > 0 &&
          (t[k - 1].text == "." || t[k - 1].text == "->") &&
          k + 1 < t.size() && t[k + 1].text == "(") {
        revalidated = true;
        break;
      }
    }
    if (revalidated) continue;
    std::string what = risks[0];
    for (std::size_t r = 1; r < risks.size(); ++r) what += ", " + risks[r];
    add(f, lam.line, "D7",
        "lambda passed to '" + lam.callee + "' captures " + what +
            " without revalidation — a deferred callback can outlive its "
            "target (the PR 5/PR 7 UAF class); revalidate via find_alive()/"
            "a weak-token .expired()/.lock() check, wrap in guarded(...), "
            "or capture an owning handle and annotate "
            "`// pinlint: allow(D7: <lifetime argument>)`");
  }
}

// --- D8: TaskTag coverage --------------------------------------------------

// The DESIGN §10 dispatch profiler is only as exhaustive as its tags:
// an untagged schedule site melts into the "(untagged)" bucket and hides
// from the top-K hot-path report. Same contract shape as D5 for EventKind.
void Linter::check_d8(const SourceFile& f) {
  if (f.rel.rfind("src/", 0) != 0) return;
  // The engine itself declares/forwards the default `TaskTag tag = {}`.
  if (f.rel == "src/sim/engine.hpp" || f.rel == "src/sim/engine.cpp") return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text != "schedule_at" && t[i].text != "schedule_after") continue;
    if (t[i + 1].text != "(") continue;
    // A preceding identifier or `::` means a declaration/definition
    // (`void schedule_at(`, `Engine::schedule_at(`), not a call site.
    if (i > 0 && (t[i - 1].kind == Tok::kIdent || t[i - 1].text == "::")) {
      continue;
    }
    int depth = 0;
    std::size_t close = 0;
    std::vector<std::size_t> commas;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const std::string& u = t[j].text;
      if (u == "(" || u == "[" || u == "{") {
        ++depth;
        continue;
      }
      if (u == ")" || u == "]" || u == "}") {
        if (--depth == 0) {
          close = j;
          break;
        }
        continue;
      }
      if (u == "," && depth == 1) commas.push_back(j);
    }
    if (close == 0) continue;
    const std::size_t nargs = close == i + 2 ? 0 : commas.size() + 1;
    if (nargs < 3) {
      add(f, t[i].line, "D8",
          "'" + t[i].text +
              "' call does not stamp a TaskTag — every schedule site "
              "must carry a {\"component\", \"label\"} tag so the dispatch "
              "profiler taxonomy stays exhaustive (DESIGN §10)");
      continue;
    }
    std::size_t a = commas.back() + 1;
    if (a < close && t[a].text == "TaskTag") ++a;  // explicit TaskTag{...}
    if (a >= close || (close - a == 2 && t[a].text == "{" &&
                       t[a + 1].text == "}")) {
      add(f, t[i].line, "D8",
          "'" + t[i].text +
              "' call stamps an empty TaskTag {} — name the component and "
              "label so the dispatch profiler can attribute the work "
              "(DESIGN §10)");
    }
  }
}

// --- D9: include layering --------------------------------------------------

// The module DAG, bottom-up: sim is the foundation, obs observes it,
// mem/ioat and cpu/net build the machine, core composes them, mpi/baseline
// drive core, workloads sit on mpi. bench/tests/examples/tools are
// unconstrained tops. An entry lists everything a module may include.
const std::map<std::string, std::set<std::string>>& layering_matrix() {
  static const std::map<std::string, std::set<std::string>> kAllowed = [] {
    std::map<std::string, std::set<std::string>> m;
    m["sim"] = {"sim"};
    m["obs"] = {"obs", "sim"};
    m["mem"] = {"mem", "obs", "sim"};
    m["ioat"] = {"ioat", "obs", "sim"};
    m["cpu"] = {"cpu", "mem", "obs", "sim"};
    m["net"] = {"net", "cpu", "mem", "obs", "sim"};
    m["core"] = {"core", "net", "cpu", "mem", "ioat", "obs", "sim"};
    std::set<std::string> over_core = m["core"];
    m["mpi"] = over_core;
    m["mpi"].insert("mpi");
    m["baseline"] = over_core;
    m["baseline"].insert("baseline");
    m["workloads"] = over_core;
    m["workloads"].insert("workloads");
    m["workloads"].insert("mpi");
    return m;
  }();
  return kAllowed;
}

// Graph node for a file: the module under src/, else the top-level
// directory (bench, tests, ...). Constrained iff it is a src/ module the
// matrix knows about.
std::pair<std::string, bool> module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) == 0) {
    const auto slash = rel.find('/', 4);
    if (slash == std::string::npos) return {"src", false};
    const std::string mod = rel.substr(4, slash - 4);
    return {mod, layering_matrix().count(mod) != 0};
  }
  const auto slash = rel.find('/');
  if (slash == std::string::npos) return {"", false};
  return {rel.substr(0, slash), false};
}

void Linter::check_d9(std::size_t n_files) {
  const auto& allowed = layering_matrix();

  // (a) Module back-edges: every quoted include either stays inside the
  // includer's directory (no '/') or names `module/header` — the module
  // must be reachable in the layering matrix.
  for (std::size_t fi = 0; fi < n_files; ++fi) {
    const SourceFile& f = files_[fi];
    const auto [mod, constrained] = module_of(f.rel);
    for (const auto& [line, target] : f.include_list) {
      const auto slash = target.find('/');
      if (slash == std::string::npos) continue;  // sibling include
      const std::string tmod = target.substr(0, slash);
      if (allowed.count(tmod) == 0) continue;  // not a src module path
      if (!mod.empty() && mod != tmod) ++mod_edges_[{mod, tmod}];
      if (!constrained) continue;
      if (allowed.at(mod).count(tmod) == 0) {
        mod_violations_.insert({mod, tmod});
        add(f, line, "D9",
            "include of \"" + target + "\" is a layering back-edge: '" +
                mod + "' may not depend on '" + tmod +
                "' (module DAG: sim < obs < {mem,ioat} < cpu < net < core "
                "< mpi/baseline < workloads)");
      }
    }
  }

  // (b) File-level include cycles among the scanned set. #pragma once
  // makes a cycle compile (one arm sees a truncated view), which is how
  // layering knots start — flag the knot itself, not just back-edges.
  std::map<std::string, std::size_t> index;
  for (std::size_t fi = 0; fi < n_files; ++fi) index[files_[fi].rel] = fi;
  auto resolve = [&](const SourceFile& f,
                     const std::string& target) -> int {
    const auto dir_end = f.rel.rfind('/');
    const std::string sibling =
        dir_end == std::string::npos ? target
                                     : f.rel.substr(0, dir_end + 1) + target;
    for (const std::string& cand :
         {"src/" + target, target, sibling}) {
      const auto it = index.find(cand);
      if (it != index.end()) return static_cast<int>(it->second);
    }
    return -1;
  };
  // edges[fi] = (line, target file index)
  std::vector<std::vector<std::pair<int, std::size_t>>> edges(n_files);
  for (std::size_t fi = 0; fi < n_files; ++fi) {
    for (const auto& [line, target] : files_[fi].include_list) {
      const int to = resolve(files_[fi], target);
      if (to >= 0) edges[fi].emplace_back(line, static_cast<std::size_t>(to));
    }
  }
  std::vector<int> color(n_files, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::size_t> path;
  std::set<std::string> reported;
  std::function<void(std::size_t)> dfs = [&](std::size_t u) {
    color[u] = 1;
    path.push_back(u);
    for (const auto& [line, v] : edges[u]) {
      if (color[v] == 2) continue;
      if (color[v] == 1) {
        // Cycle: path suffix from v to u, closed by this include.
        auto it = std::find(path.begin(), path.end(), v);
        std::vector<std::size_t> cyc(it, path.end());
        // Canonical rotation (smallest rel first) so each knot reports once
        // no matter where DFS entered it.
        std::size_t best = 0;
        for (std::size_t k = 1; k < cyc.size(); ++k) {
          if (files_[cyc[k]].rel < files_[cyc[best]].rel) best = k;
        }
        std::rotate(cyc.begin(), cyc.begin() + best, cyc.end());
        std::string desc;
        for (std::size_t k : cyc) desc += files_[k].rel + " -> ";
        desc += files_[cyc[0]].rel;
        if (reported.insert(desc).second) {
          add(files_[u], line, "D9",
              "include cycle: " + desc +
                  " — break the knot with a forward declaration or by "
                  "hoisting the shared types down a layer");
        }
        continue;
      }
      dfs(v);
    }
    path.pop_back();
    color[u] = 2;
  };
  for (std::size_t fi = 0; fi < n_files; ++fi) {
    if (color[fi] == 0) dfs(fi);
  }
}

// Graphviz rendering of the observed module graph; D9 back-edges in red.
// Written even when the tree is clean — the artifact is the living
// architecture diagram, not just an error dump.
bool Linter::write_dot(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "// pinlint --dot: quoted-include graph at module granularity.\n"
         "// Render with: dot -Tsvg " << path << " -o includes.svg\n"
         "digraph pinsim_includes {\n"
         "  rankdir=BT;\n"
         "  node [shape=box, fontname=\"Helvetica\"];\n";
  std::set<std::string> nodes;
  for (const auto& [edge, count] : mod_edges_) {
    nodes.insert(edge.first);
    nodes.insert(edge.second);
  }
  for (const auto& n : nodes) {
    out << "  \"" << n << "\""
        << (layering_matrix().count(n) != 0 ? "" : " [style=dashed]")
        << ";\n";
  }
  for (const auto& [edge, count] : mod_edges_) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second << "\" [label=\""
        << count << "\"";
    if (mod_violations_.count(edge) != 0) {
      out << ", color=red, penwidth=2.0, fontcolor=red";
    }
    out << "];\n";
  }
  out << "}\n";
  return true;
}

void Linter::run() {
  // Per-file passes run over a stable snapshot (D2 may lazily load paired
  // headers; D4/D5 may lazily load their cross-file anchors).
  const std::size_t n = files_.size();
  for (std::size_t i = 0; i < n; ++i) {
    check_d0(files_[i]);
    check_d1(files_[i]);
    check_d3(files_[i]);
    check_d6(files_[i]);
    check_d7(files_[i]);
    check_d8(files_[i]);
  }
  for (std::size_t i = 0; i < n; ++i) check_d2(files_[i]);
  check_d9(n);
  check_d4();
  check_d5();

  std::sort(diags_.begin(), diags_.end(), [](const Diag& a, const Diag& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.msg < b.msg;
  });
  diags_.erase(std::unique(diags_.begin(), diags_.end(),
                           [](const Diag& a, const Diag& b) {
                             return a.file == b.file && a.line == b.line &&
                                    a.rule == b.rule && a.msg == b.msg;
                           }),
               diags_.end());
}

// --- baseline --------------------------------------------------------------

// Baseline format: one `path:rule` per line ('#' comments). A diagnostic
// matching an entry is suppressed; an entry matching nothing is itself an
// error, so the file can only shrink.
struct Baseline {
  std::vector<std::pair<std::string, std::string>> entries;  // path, rule
  std::vector<bool> used;
};

bool load_baseline(const std::string& path, Baseline& b) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back())) != 0) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])) != 0) {
      ++start;
    }
    line.erase(0, start);
    if (line.empty()) continue;
    const auto colon = line.rfind(':');
    if (colon == std::string::npos) continue;
    b.entries.emplace_back(line.substr(0, colon), line.substr(colon + 1));
  }
  b.used.assign(b.entries.size(), false);
  return true;
}

// --- output ----------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// SARIF 2.1.0 — the minimal subset CI dashboards and code-scanning UIs
// ingest: one run, one driver with per-rule metadata, one result per live
// diagnostic (plus one per stale baseline entry under the synthetic
// "stale-baseline" rule). Written even when clean: an empty `results` array
// is itself the machine-readable "nothing to see".
void write_sarif(std::ostream& out, const std::vector<Diag>& live,
                 const std::vector<std::string>& stale) {
  static const std::pair<const char*, const char*> kRules[] = {
      {"D0", "suppression annotations must carry a non-empty reason"},
      {"D1", "no nondeterminism sources outside sim/random"},
      {"D2", "no iteration over unordered containers"},
      {"D3", "no raw allocation outside mem/malloc_sim"},
      {"D4", "every counter must be incremented and serialized"},
      {"D5", "EventKind handling must be exhaustive"},
      {"D6", "header hygiene: pragma once, no using-namespace, IWYU"},
      {"D7", "deferred callbacks must revalidate captured state"},
      {"D8", "every schedule site must stamp a TaskTag"},
      {"D9", "quoted includes must follow the module layering DAG"},
      {"stale-baseline", "baseline entry no longer matches any diagnostic"},
  };
  out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"pinlint\",\"version\":\"2.0.0\",\"rules\":[";
  bool first = true;
  for (const auto& [id, text] : kRules) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << id << "\",\"shortDescription\":{\"text\":\""
        << json_escape(text) << "\"}}";
  }
  out << "]}},\"results\":[";
  first = true;
  for (const Diag& d : live) {
    if (!first) out << ",";
    first = false;
    out << "{\"ruleId\":\"" << d.rule
        << "\",\"level\":\"error\",\"message\":{\"text\":\""
        << json_escape(d.msg) << "\"},\"locations\":[{\"physicalLocation\":{"
        << "\"artifactLocation\":{\"uri\":\"" << json_escape(d.file)
        << "\"},\"region\":{\"startLine\":" << d.line << "}}}]}";
  }
  for (const std::string& s : stale) {
    const auto colon = s.rfind(':');
    const std::string file =
        colon == std::string::npos ? s : s.substr(0, colon);
    if (!first) out << ",";
    first = false;
    out << "{\"ruleId\":\"stale-baseline\",\"level\":\"error\","
           "\"message\":{\"text\":\"baseline entry '"
        << json_escape(s)
        << "' no longer matches any diagnostic — delete it (the baseline "
           "only shrinks)\"},\"locations\":[{\"physicalLocation\":{"
           "\"artifactLocation\":{\"uri\":\""
        << json_escape(file) << "\"},\"region\":{\"startLine\":1}}}]}";
  }
  out << "]}]}\n";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: pinlint [--root=DIR] [--baseline=FILE] [--json=FILE]\n"
      "               [--sarif=FILE] [--dot=FILE] [--quiet] PATH...\n"
      "  PATHs (files or directories, relative to --root) are scanned for\n"
      "  *.cpp/*.hpp; diagnostics print as file:line: rule: message.\n"
      "  --sarif writes a SARIF 2.1.0 report, --dot the quoted-include\n"
      "  module graph as Graphviz (both written even when clean).\n"
      "  Exit: 0 clean, 1 violations or stale baseline entries, 2 usage.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string json_path;
  std::string sarif_path;
  std::string dot_path;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--dot=", 0) == 0) {
      dot_path = arg.substr(6);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "pinlint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  Linter linter{fs::path(root)};
  if (!linter.load_paths(paths)) return 2;
  linter.run();

  Baseline baseline;
  if (!baseline_path.empty() && !load_baseline(baseline_path, baseline)) {
    std::fprintf(stderr, "pinlint: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }

  std::vector<Diag> live;
  for (const Diag& d : linter.diags()) {
    bool suppressed = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      if (baseline.entries[i].first == d.file &&
          baseline.entries[i].second == d.rule) {
        baseline.used[i] = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) live.push_back(d);
  }
  std::vector<std::string> stale;
  for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
    if (!baseline.used[i]) {
      stale.push_back(baseline.entries[i].first + ":" +
                      baseline.entries[i].second);
    }
  }

  if (!quiet) {
    for (const Diag& d : live) {
      std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                  d.msg.c_str());
    }
    for (const std::string& s : stale) {
      std::printf("%s: stale-baseline: entry no longer matches any "
                  "diagnostic — delete it (the baseline only shrinks)\n",
                  s.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"files_scanned\":" << linter.files_scanned()
        << ",\"violations\":[";
    bool first = true;
    for (const Diag& d : live) {
      if (!first) out << ",";
      first = false;
      out << "{\"file\":\"" << json_escape(d.file) << "\",\"line\":" << d.line
          << ",\"rule\":\"" << d.rule << "\",\"message\":\""
          << json_escape(d.msg) << "\"}";
    }
    out << "],\"stale_baseline\":[";
    first = true;
    for (const std::string& s : stale) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(s) << "\"";
    }
    out << "],\"count\":" << live.size() << "}\n";
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::fprintf(stderr, "pinlint: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    write_sarif(out, live, stale);
  }

  if (!dot_path.empty() && !linter.write_dot(dot_path)) {
    std::fprintf(stderr, "pinlint: cannot write %s\n", dot_path.c_str());
    return 2;
  }

  if (!live.empty() || !stale.empty()) {
    if (!quiet) {
      std::printf("pinlint: %zu violation(s), %zu stale baseline entr%s\n",
                  live.size(), stale.size(), stale.size() == 1 ? "y" : "ies");
    }
    return 1;
  }
  if (!quiet) {
    std::printf("pinlint: clean (%zu files)\n", linter.files_scanned());
  }
  return 0;
}
