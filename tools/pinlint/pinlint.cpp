// pinlint — repo-native static analysis for the pinsim simulator.
//
// Every number this reproduction publishes (Goglin Tables 1/2, the fig6/fig7
// curves, the perf gate against BENCH_seed.json) assumes the simulator is
// bit-exact under a fixed seed. The compiler cannot enforce that contract,
// so this tool does. It is deliberately token/AST-lite — no libclang, no
// external dependencies, C++17 only — because it must build everywhere the
// simulator builds and run in the default CI loop.
//
// Rule pack (see DESIGN.md "Determinism contract & static checks"):
//   D1  no nondeterminism sources outside sim/random: std::random_device,
//       rand()/srand(), wall clocks (system_clock/steady_clock/time()),
//       pointer-value hashing (std::hash<T*>, pointer-keyed unordered
//       containers) and pointer printing ("%p").
//   D2  no iteration (range-for or .begin()) over unordered_map /
//       unordered_set: bucket order is hash- and pointer-dependent and leaks
//       into event scheduling and report text. Annotate provably commutative
//       loops with `// pinlint: unordered-ok(<reason>)`.
//   D3  no raw new/delete/malloc/free outside mem/malloc_sim — simulated
//       process heaps go through MallocSim, host-side ownership through
//       standard containers and smart pointers.
//   D4  counter consistency: every Counters member in core/counters.hpp must
//       be incremented somewhere under src/ and serialized by
//       core/report.cpp (and only declared counters may be serialized).
//   D5  obs::Event kind exhaustiveness: every EventKind enumerator must be
//       rendered by obs/legacy.cpp (the single formatting authority), and
//       every switch over EventKind anywhere must be exhaustive or carry a
//       default label.
//   D6  header hygiene: #pragma once, no `using namespace` in headers, and
//       include-self-sufficiency spot checks for common std:: types.
//
// Suppressions:
//   inline   `// pinlint: unordered-ok(<reason>)`  (D2, same or previous line)
//            `// pinlint: allow(D3: <reason>)`     (any rule)
//   baseline tools/pinlint/baseline.txt — `path:rule` entries; every entry
//            must still match something (stale entries are an error), so the
//            baseline can only shrink.
//
// Output: `file:line: rule: message` on stdout, optional JSON report
// (--json=FILE). Exit 0 clean, 1 violations/stale baseline, 2 usage error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// --- diagnostics -----------------------------------------------------------

struct Diag {
  std::string file;  // path relative to the scan root
  int line = 0;
  std::string rule;  // "D1".."D6"
  std::string msg;
};

// --- tokenizer -------------------------------------------------------------

enum class Tok : std::uint8_t { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  Tok kind;
  std::string text;
  int line;
};

struct SourceFile {
  fs::path path;        // as opened
  std::string rel;      // relative to root, '/'-separated
  std::vector<Token> tokens;
  std::map<int, std::string> comments;     // line -> comment text on it
  std::set<std::string> includes;          // <...> and "..." include targets
  std::vector<std::pair<int, std::string>> strings;  // line, literal body
  bool pragma_once = false;
  bool is_header = false;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Tokenizes `text`. Comments land in `comments` (for annotation lookup),
// string literal bodies in `strings` (for "%p" detection), preprocessor
// lines are parsed just enough to harvest includes and #pragma once.
void tokenize(const std::string& text, SourceFile& out) {
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto record_comment = [&](int ln, const std::string& body) {
    auto& slot = out.comments[ln];
    if (!slot.empty()) slot += ' ';
    slot += body;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: harvest includes / pragma once, skip the rest
    // (honoring backslash continuations).
    if (c == '#' && at_line_start) {
      std::size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      std::size_t k = j;
      while (k < n && ident_char(text[k])) ++k;
      const std::string directive = text.substr(j, k - j);
      std::size_t end = i;
      while (end < n && text[end] != '\n') {
        if (text[end] == '\\' && end + 1 < n && text[end + 1] == '\n') {
          ++line;
          end += 2;
          continue;
        }
        ++end;
      }
      const std::string rest = text.substr(k, end - k);
      if (directive == "include") {
        const auto lt = rest.find_first_of("<\"");
        if (lt != std::string::npos) {
          const char close = rest[lt] == '<' ? '>' : '"';
          const auto gt = rest.find(close, lt + 1);
          if (gt != std::string::npos) {
            out.includes.insert(rest.substr(lt + 1, gt - lt - 1));
          }
        }
      } else if (directive == "pragma" &&
                 rest.find("once") != std::string::npos) {
        out.pragma_once = true;
      }
      i = end;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = i + 2;
      while (end < n && text[end] != '\n') ++end;
      record_comment(line, text.substr(i + 2, end - i - 2));
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = i + 2;
      int start_line = line;
      while (end + 1 < n && !(text[end] == '*' && text[end + 1] == '/')) {
        if (text[end] == '\n') ++line;
        ++end;
      }
      record_comment(start_line, text.substr(i + 2, end - i - 2));
      i = end + 2 > n ? n : end + 2;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string close = ")" + delim + "\"";
      const auto end = text.find(close, j);
      const std::size_t stop = end == std::string::npos ? n : end + close.size();
      const std::string body =
          text.substr(j + 1, (end == std::string::npos ? n : end) - j - 1);
      out.strings.emplace_back(line, body);
      out.tokens.push_back({Tok::kString, body, line});
      for (std::size_t p = i; p < stop; ++p) {
        if (text[p] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') ++line;  // unterminated; be permissive
        body += text[j++];
      }
      out.strings.emplace_back(line, body);
      out.tokens.push_back(
          {quote == '"' ? Tok::kString : Tok::kChar, body, line});
      i = j + 1 > n ? n : j + 1;
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.tokens.push_back({Tok::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Numbers (good enough: digits + ident chars + '.' + quote separators).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       text[j] == '\'')) {
        ++j;
      }
      out.tokens.push_back({Tok::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: greedily join the few multi-char operators we care about.
    static const char* kTwo[] = {"::", "++", "--", "+=", "-=", "->", "<<",
                                 ">>", "==", "!=", "<=", ">=", "&&", "||"};
    std::string p(1, c);
    if (i + 1 < n) {
      const std::string two = text.substr(i, 2);
      for (const char* t : kTwo) {
        if (two == t) {
          p = two;
          break;
        }
      }
    }
    out.tokens.push_back({Tok::kPunct, p, line});
    i += p.size();
  }
}

// --- suppression helpers ---------------------------------------------------

// True if `line` (or the line above) carries a pinlint annotation that
// suppresses `rule`. D2 additionally honors the dedicated
// `unordered-ok(<reason>)` spelling; every rule honors
// `allow(Dk: <reason>)`. A reason is mandatory — an empty `()` is ignored.
bool inline_suppressed(const SourceFile& f, const std::string& rule,
                       int line) {
  for (int ln : {line, line - 1}) {
    const auto it = f.comments.find(ln);
    if (it == f.comments.end()) continue;
    const std::string& c = it->second;
    const auto tag = c.find("pinlint:");
    if (tag == std::string::npos) continue;
    const std::string body = c.substr(tag + 8);
    if (rule == "D2") {
      const auto ok = body.find("unordered-ok(");
      if (ok != std::string::npos) {
        const auto close = body.find(')', ok + 13);
        if (close != std::string::npos && close > ok + 13) return true;
      }
    }
    const auto allow = body.find("allow(");
    if (allow != std::string::npos && body.find(rule, allow) != std::string::npos) {
      const auto close = body.find(')', allow);
      if (close != std::string::npos) return true;
    }
  }
  return false;
}

// --- linter ----------------------------------------------------------------

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  bool load_paths(const std::vector<std::string>& paths);
  void run();

  std::vector<Diag>& diags() { return diags_; }
  std::size_t files_scanned() const { return files_.size(); }

 private:
  SourceFile* find_rel(const std::string& rel);
  void add(const SourceFile& f, int line, const char* rule, std::string msg);
  bool load_file(const fs::path& p);

  void check_d1(const SourceFile& f);
  void check_d2(const SourceFile& f);
  void check_d3(const SourceFile& f);
  void check_d4();
  void check_d5();
  void check_d6(const SourceFile& f);

  std::set<std::string> unordered_names(const SourceFile& f) const;

  fs::path root_;
  std::vector<SourceFile> files_;
  std::vector<Diag> diags_;
};

bool is_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" ||
         e == ".h" || e == ".hh";
}

bool Linter::load_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "pinlint: cannot read %s\n", p.string().c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  SourceFile f;
  f.path = p;
  std::error_code ec;
  const fs::path rel = fs::relative(p, root_, ec);
  f.rel = (ec ? p : rel).generic_string();
  const std::string ext = p.extension().string();
  f.is_header = ext == ".hpp" || ext == ".h" || ext == ".hh";
  tokenize(ss.str(), f);
  files_.push_back(std::move(f));
  return true;
}

bool Linter::load_paths(const std::vector<std::string>& paths) {
  std::set<std::string> seen;
  bool ok = true;
  for (const std::string& raw : paths) {
    fs::path p = fs::path(raw).is_absolute() ? fs::path(raw) : root_ / raw;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> found;
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && is_source_ext(it->path())) {
          found.push_back(it->path());
        }
      }
      std::sort(found.begin(), found.end());
      for (const auto& q : found) {
        if (seen.insert(q.generic_string()).second && !load_file(q)) ok = false;
      }
    } else if (fs::is_regular_file(p, ec)) {
      if (seen.insert(p.generic_string()).second && !load_file(p)) ok = false;
    } else {
      std::fprintf(stderr, "pinlint: no such file or directory: %s\n",
                   raw.c_str());
      ok = false;
    }
  }
  return ok;
}

SourceFile* Linter::find_rel(const std::string& rel) {
  for (auto& f : files_) {
    if (f.rel == rel) return &f;
  }
  // Not among the scan paths: load it on demand so the cross-file rules
  // (D4/D5) work even when the caller scans a subset.
  const fs::path p = root_ / rel;
  std::error_code ec;
  if (!fs::is_regular_file(p, ec)) return nullptr;
  if (!load_file(p)) return nullptr;
  return &files_.back();
}

void Linter::add(const SourceFile& f, int line, const char* rule,
                 std::string msg) {
  if (inline_suppressed(f, rule, line)) return;
  diags_.push_back({f.rel, line, rule, std::move(msg)});
}

// --- D1: nondeterminism sources --------------------------------------------

void Linter::check_d1(const SourceFile& f) {
  if (f.rel.find("sim/random") != std::string::npos) return;
  const auto& t = f.tokens;

  auto prev_is = [&](std::size_t i, const char* s) {
    return i > 0 && t[i - 1].text == s;
  };
  auto member_access = [&](std::size_t i) {
    return prev_is(i, ".") || prev_is(i, "->");
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;

    // Banned identifiers wherever they appear (std:: or not).
    if (s == "random_device" || s == "system_clock" || s == "steady_clock" ||
        s == "high_resolution_clock" || s == "gettimeofday" ||
        s == "clock_gettime" || s == "timespec_get" || s == "getrandom") {
      add(f, t[i].line, "D1",
          "nondeterminism source '" + s +
              "' — all randomness/time must come from sim::Rng / sim::Time");
      continue;
    }

    // Banned only as a free-function call: rand(), srand(), time(),
    // clock(), drand48(). Member access (e.time, h.clock()) and
    // declarations (`VirtAddr time(...)`) stay legal. An identifier before
    // the name usually means a declaration's return type — but `return` /
    // `co_return` / `case` are call contexts, not types.
    if ((s == "rand" || s == "srand" || s == "time" || s == "clock" ||
         s == "drand48" || s == "random") &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      if (!member_access(i) &&
          (i == 0 || t[i - 1].kind == Tok::kPunct || prev_is(i, "return") ||
           prev_is(i, "co_return") || prev_is(i, "case")) &&
          !prev_is(i, "::")) {
        add(f, t[i].line, "D1",
            "call to '" + s +
                "()' — wall-clock/libc randomness breaks seeded replay; use "
                "sim::Rng or the engine's virtual time");
      }
      continue;
    }

    // Pointer-value hashing: std::hash<T*> and pointer-keyed unordered
    // containers. Pointer values differ across runs (ASLR, allocation
    // order), so any ordering derived from them is nondeterministic.
    if (s == "hash" && i + 1 < t.size() && t[i + 1].text == "<") {
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size() && j < i + 32; ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") {
          if (--depth == 0) break;
        }
        if (t[j].text == "*" && depth == 1) {
          add(f, t[i].line, "D1",
              "std::hash over a pointer type — pointer values are not stable "
              "across runs");
          break;
        }
      }
      continue;
    }
    if ((s == "unordered_map" || s == "unordered_set") && i + 1 < t.size() &&
        t[i + 1].text == "<") {
      // Flag a pointer first template argument (the key type).
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "<" || t[j].text == "(") ++depth;
        if (t[j].text == ">" || t[j].text == ")") {
          if (--depth == 0) break;
        }
        if (depth == 1 && t[j].text == ",") break;  // end of key type
        if (depth == 1 && t[j].text == "*") {
          add(f, t[i].line, "D1",
              "pointer-keyed " + s +
                  " — bucket placement depends on the pointer value; key by "
                  "a stable id instead");
          break;
        }
      }
      continue;
    }
  }

  // Pointer printing: "%p" in a format string renders an address.
  for (const auto& [line, body] : f.strings) {
    if (body.find("%p") != std::string::npos) {
      // Re-check suppression against the literal's line.
      add(f, line, "D1",
          "format string prints a pointer value (\"%p\") — addresses differ "
          "across runs");
    }
  }
}

// --- D2: unordered iteration -----------------------------------------------

// Names declared (in this file) as unordered containers: direct
// declarations, references/pointers, and declarations through a local
// `using Alias = std::unordered_map<...>`.
std::set<std::string> Linter::unordered_names(const SourceFile& f) const {
  std::set<std::string> names;
  std::set<std::string> aliases;
  const auto& t = f.tokens;

  auto harvest_after_template = [&](std::size_t i) -> std::size_t {
    // t[i] is `unordered_map`/`unordered_set` (or an alias, with no template
    // args). Skip <...> if present, then any of `& * const`, then take the
    // identifier if one follows.
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">>") {  // e.g. map<K, set<V>>
          depth -= 2;
          if (depth <= 0) { ++j; break; }
        } else if (t[j].text == ">") {
          if (--depth == 0) { ++j; break; }
        }
      }
    }
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Tok::kIdent) names.insert(t[j].text);
    return j;
  };

  // Pass 1: aliases (`using X = std::unordered_map<...>;`).
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 1].kind == Tok::kIdent &&
        t[i + 2].text == "=") {
      for (std::size_t j = i + 3; j < t.size() && j < i + 8; ++j) {
        if (t[j].text == ";") break;
        if (t[j].text == "unordered_map" || t[j].text == "unordered_set") {
          aliases.insert(t[i + 1].text);
          break;
        }
      }
    }
  }
  // Pass 2: declarations.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "unordered_map" || t[i].text == "unordered_set" ||
        aliases.count(t[i].text) != 0) {
      harvest_after_template(i);
    }
  }
  return names;
}

void Linter::check_d2(const SourceFile& f) {
  std::set<std::string> names = unordered_names(f);
  // A .cpp also sees the unordered members of its paired header (the
  // overwhelmingly common pattern: declared in x.hpp, iterated in x.cpp).
  if (!f.is_header) {
    for (const char* ext : {".hpp", ".h"}) {
      fs::path header = f.path;
      header.replace_extension(ext);
      std::error_code ec;
      if (!fs::is_regular_file(header, ec)) continue;
      const fs::path relp = fs::relative(header, root_, ec);
      SourceFile* hf = find_rel((ec ? header : relp).generic_string());
      if (hf != nullptr) {
        const auto hn = unordered_names(*hf);
        names.insert(hn.begin(), hn.end());
      }
    }
  }
  if (names.empty()) return;

  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for: `for ( decl : expr )` — find the ':' at paren depth 1,
    // then the iterated expression's trailing identifier.
    if (t[i].text == "for" && i + 1 < t.size() && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
        else if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") {
          if (--depth == 0) { close = j; break; }
        } else if (t[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) continue;
      // Trailing identifier of the range expression, ignoring a trailing
      // `()` call and member chains: the name actually being iterated.
      std::size_t j = close - 1;
      while (j > colon && (t[j].text == ")" || t[j].text == "(")) --j;
      if (t[j].kind == Tok::kIdent && names.count(t[j].text) != 0) {
        add(f, t[i].line, "D2",
            "iteration over unordered container '" + t[j].text +
                "' — bucket order can leak into sim state or output; sort "
                "the keys (or use an ordered map), or annotate the loop "
                "`// pinlint: unordered-ok(<why order cannot matter>)`");
      }
      continue;
    }
    // Iterator walk: `name.begin()` for an unordered name. find()/erase()
    // by key are fine; begin() means traversal.
    if (t[i].text == "begin" && i >= 2 && t[i - 1].text == "." &&
        t[i - 2].kind == Tok::kIdent && names.count(t[i - 2].text) != 0 &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      add(f, t[i].line, "D2",
          "iterator traversal of unordered container '" + t[i - 2].text +
              "' — bucket order can leak into sim state or output; sort the "
              "keys first or annotate "
              "`// pinlint: unordered-ok(<why order cannot matter>)`");
    }
  }
}

// --- D3: raw allocation ----------------------------------------------------

void Linter::check_d3(const SourceFile& f) {
  if (f.rel.find("mem/malloc_sim") != std::string::npos) return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    if (s == "new" || s == "delete") {
      // `= delete`, `delete[]` of... any use of the keywords is raw memory
      // management except deleted functions (`= delete`) and
      // `operator new/delete` declarations.
      if (i > 0 && t[i - 1].text == "=") continue;        // = delete / = new?
      if (i > 0 && t[i - 1].text == "operator") continue; // operator new decl
      add(f, t[i].line, "D3",
          "raw '" + s +
              "' — simulated heaps go through mem::MallocSim; host-side "
              "ownership through std containers/smart pointers");
      continue;
    }
    if ((s == "malloc" || s == "calloc" || s == "realloc" || s == "free") &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      // Method calls (heap.malloc, p.heap.free) and declarations
      // (`VirtAddr malloc(std::size_t)`) are the simulator's own API.
      const bool member = i > 0 && (t[i - 1].text == "." ||
                                    t[i - 1].text == "->" ||
                                    t[i - 1].text == "::");
      // Return type directly before the name: `VirtAddr malloc(...)`,
      // `void* malloc(...)`, `VirtAddr& malloc(...)`.
      const bool declaration =
          i > 0 && (t[i - 1].kind == Tok::kIdent || t[i - 1].text == "*" ||
                    t[i - 1].text == "&");
      if (!member && !declaration) {
        add(f, t[i].line, "D3",
            "raw '" + s + "()' — use mem::MallocSim for simulated memory");
      }
    }
  }
}

// --- D4: counter consistency -----------------------------------------------

void Linter::check_d4() {
  SourceFile* counters = find_rel("src/core/counters.hpp");
  SourceFile* report = find_rel("src/core/report.cpp");
  if (counters == nullptr || report == nullptr) return;  // not this repo shape

  // Harvest `std::uint64_t NAME = 0;` members of struct Counters.
  std::vector<std::pair<std::string, int>> members;  // name, line
  const auto& t = counters->tokens;
  std::size_t begin = 0;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "struct" && t[i + 1].text == "Counters") {
      begin = i;
      break;
    }
  }
  int depth = 0;
  for (std::size_t i = begin; i < t.size(); ++i) {
    if (t[i].text == "{") ++depth;
    if (t[i].text == "}") {
      if (--depth == 0) break;
    }
    if (depth == 1 && t[i].text == "uint64_t" && i + 1 < t.size() &&
        t[i + 1].kind == Tok::kIdent && i + 2 < t.size() &&
        (t[i + 2].text == "=" || t[i + 2].text == ";")) {
      members.emplace_back(t[i + 1].text, t[i + 1].line);
    }
  }

  auto mentions = [](const SourceFile& f, const std::string& name) {
    for (const auto& tok : f.tokens) {
      if (tok.kind == Tok::kIdent && tok.text == name) return true;
    }
    return false;
  };
  auto incremented_in = [](const SourceFile& f, const std::string& name) {
    const auto& tk = f.tokens;
    for (std::size_t i = 0; i < tk.size(); ++i) {
      if (tk[i].kind != Tok::kIdent || tk[i].text != name) continue;
      if (i + 1 < tk.size() &&
          (tk[i + 1].text == "+=" || tk[i + 1].text == "++" ||
           tk[i + 1].text == "=")) {
        return true;
      }
      // Passed as an argument (`do_unpin(r, counters_.unpin_ops)`): counts
      // as a write — by-reference counter plumbing is an idiom here.
      if (i + 1 < tk.size() && i > 1 && tk[i - 1].text == "." &&
          (tk[i + 1].text == ")" || tk[i + 1].text == ",")) {
        return true;
      }
      // `++counters_.name` / `++ep->counters().frames_corrupted`: walk back
      // over the object chain (identifiers, member/scope punctuation and
      // call parens) to the prefix operator.
      std::size_t j = i;
      while (j > 0 && (tk[j - 1].kind == Tok::kIdent ||
                       tk[j - 1].text == "." || tk[j - 1].text == "->" ||
                       tk[j - 1].text == "::" || tk[j - 1].text == "(" ||
                       tk[j - 1].text == ")")) {
        --j;
      }
      if (j > 0 && tk[j - 1].text == "++") return true;
    }
    return false;
  };

  for (const auto& [name, line] : members) {
    bool inc = false;
    for (const auto& f : files_) {
      if (f.rel == "src/core/counters.hpp") continue;
      if (f.rel.rfind("src/", 0) == 0 && incremented_in(f, name)) {
        inc = true;
        break;
      }
    }
    if (!inc) {
      diags_.push_back({counters->rel, line, "D4",
                        "counter '" + name +
                            "' is declared but never incremented under src/"});
    }
    if (!mentions(*report, name)) {
      diags_.push_back({counters->rel, line, "D4",
                        "counter '" + name +
                            "' is declared but not serialized by "
                            "core/report.cpp — it can silently rot"});
    }
  }

  // Vice versa: every `c.NAME` the report reads must be a declared counter.
  std::set<std::string> declared;
  for (const auto& [name, line] : members) declared.insert(name);
  const auto& rt = report->tokens;
  for (std::size_t i = 2; i < rt.size(); ++i) {
    if (rt[i].kind == Tok::kIdent && rt[i - 1].text == "." &&
        rt[i - 2].text == "c" && declared.count(rt[i].text) == 0 &&
        rt[i].text != "overlap_miss_rate") {
      diags_.push_back({report->rel, rt[i].line, "D4",
                        "report reads 'c." + rt[i].text +
                            "' which is not a Counters member"});
    }
  }
}

// --- D5: EventKind exhaustiveness ------------------------------------------

void Linter::check_d5() {
  SourceFile* event = find_rel("src/obs/event.hpp");
  if (event == nullptr) return;

  // Harvest the EventKind enumerators.
  std::vector<std::string> kinds;
  const auto& t = event->tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text == "enum" && t[i + 1].text == "class" &&
        t[i + 2].text == "EventKind") {
      std::size_t j = i + 3;
      while (j < t.size() && t[j].text != "{") ++j;
      int depth = 0;
      bool expect_name = true;
      for (; j < t.size(); ++j) {
        if (t[j].text == "{") {
          ++depth;
          expect_name = true;
          continue;
        }
        if (t[j].text == "}") {
          if (--depth == 0) break;
          continue;
        }
        if (depth == 1 && expect_name && t[j].kind == Tok::kIdent) {
          kinds.push_back(t[j].text);
          expect_name = false;
        }
        if (t[j].text == ",") expect_name = true;
      }
      break;
    }
  }
  if (kinds.empty()) return;
  const std::set<std::string> kind_set(kinds.begin(), kinds.end());

  // (a) The single formatting authority must render every kind.
  if (SourceFile* legacy = find_rel("src/obs/legacy.cpp")) {
    std::set<std::string> seen;
    for (const auto& tok : legacy->tokens) {
      if (tok.kind == Tok::kIdent && kind_set.count(tok.text) != 0) {
        seen.insert(tok.text);
      }
    }
    for (const auto& k : kinds) {
      if (seen.count(k) == 0) {
        diags_.push_back({legacy->rel, 1, "D5",
                          "EventKind::" + k +
                              " is never rendered by obs/legacy.cpp — every "
                              "kind needs a legacy string form"});
      }
    }
  }

  // (b) Any switch carrying EventKind case labels must be exhaustive or
  // have a default. Checked across every scanned file.
  for (auto& f : files_) {
    const auto& tk = f.tokens;
    for (std::size_t i = 0; i < tk.size(); ++i) {
      if (tk[i].text != "switch") continue;
      // Find the switch body.
      std::size_t j = i + 1;
      int depth = 0;
      while (j < tk.size() && tk[j].text != "{") ++j;
      std::set<std::string> cases;
      bool has_default = false;
      bool on_eventkind = false;
      for (; j < tk.size(); ++j) {
        if (tk[j].text == "{") ++depth;
        if (tk[j].text == "}") {
          if (--depth == 0) break;
        }
        if (tk[j].text == "default") has_default = true;
        if (tk[j].text == "case" && j + 1 < tk.size()) {
          // case [obs::]EventKind::kX — the label must literally be
          // qualified with EventKind:: (another enum may reuse an
          // enumerator name, e.g. Phase::kRetransmit).
          std::size_t k = j + 1;
          while (k < tk.size() &&
                 (tk[k].kind == Tok::kIdent || tk[k].text == "::") &&
                 tk[k].text != ":") {
            if (tk[k].kind == Tok::kIdent && kind_set.count(tk[k].text) != 0 &&
                k >= 2 && tk[k - 1].text == "::" &&
                tk[k - 2].text == "EventKind") {
              on_eventkind = true;
              cases.insert(tk[k].text);
            }
            ++k;
          }
        }
      }
      if (on_eventkind && !has_default) {
        for (const auto& k : kinds) {
          if (cases.count(k) == 0) {
            diags_.push_back(
                {f.rel, tk[i].line, "D5",
                 "switch over obs::EventKind has no default and does not "
                 "handle EventKind::" + k});
          }
        }
      }
      i = j;
    }
  }
}

// --- D6: header hygiene ----------------------------------------------------

void Linter::check_d6(const SourceFile& f) {
  if (!f.is_header) return;
  if (!f.pragma_once) {
    diags_.push_back(
        {f.rel, 1, "D6", "header is missing '#pragma once'"});
  }
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 1].text == "namespace") {
      add(f, t[i].line, "D6",
          "'using namespace' in a header leaks into every includer");
    }
  }
  // Include-self-sufficiency spot checks: a few unambiguous std:: names
  // whose home header is unique. Transitive includes do not count — the
  // header must stand alone.
  static const std::pair<const char*, const char*> kNeeds[] = {
      {"vector", "vector"},         {"string", "string"},
      {"unordered_map", "unordered_map"},
      {"unordered_set", "unordered_set"},
      {"function", "functional"},   {"unique_ptr", "memory"},
      {"shared_ptr", "memory"},     {"weak_ptr", "memory"},
      {"make_unique", "memory"},    {"make_shared", "memory"},
      {"optional", "optional"},     {"variant", "variant"},
      {"uint8_t", "cstdint"},       {"uint16_t", "cstdint"},
      {"uint32_t", "cstdint"},      {"uint64_t", "cstdint"},
      {"int64_t", "cstdint"},       {"map", "map"},
      {"deque", "deque"},           {"list", "list"},
  };
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i - 1].text != "::" ||
        t[i - 2].text != "std") {
      continue;
    }
    for (const auto& [name, header] : kNeeds) {
      if (t[i].text == name && f.includes.count(header) == 0) {
        add(f, t[i].line, "D6",
            "uses std::" + std::string(name) + " but does not include <" +
                header + "> itself (include-what-you-use)");
        break;
      }
    }
  }
}

void Linter::run() {
  // Per-file passes run over a stable snapshot (D2 may lazily load paired
  // headers; D4/D5 may lazily load their cross-file anchors).
  const std::size_t n = files_.size();
  for (std::size_t i = 0; i < n; ++i) {
    check_d1(files_[i]);
    check_d3(files_[i]);
    check_d6(files_[i]);
  }
  for (std::size_t i = 0; i < n; ++i) check_d2(files_[i]);
  check_d4();
  check_d5();

  std::sort(diags_.begin(), diags_.end(), [](const Diag& a, const Diag& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.msg < b.msg;
  });
  diags_.erase(std::unique(diags_.begin(), diags_.end(),
                           [](const Diag& a, const Diag& b) {
                             return a.file == b.file && a.line == b.line &&
                                    a.rule == b.rule && a.msg == b.msg;
                           }),
               diags_.end());
}

// --- baseline --------------------------------------------------------------

// Baseline format: one `path:rule` per line ('#' comments). A diagnostic
// matching an entry is suppressed; an entry matching nothing is itself an
// error, so the file can only shrink.
struct Baseline {
  std::vector<std::pair<std::string, std::string>> entries;  // path, rule
  std::vector<bool> used;
};

bool load_baseline(const std::string& path, Baseline& b) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back())) != 0) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])) != 0) {
      ++start;
    }
    line.erase(0, start);
    if (line.empty()) continue;
    const auto colon = line.rfind(':');
    if (colon == std::string::npos) continue;
    b.entries.emplace_back(line.substr(0, colon), line.substr(colon + 1));
  }
  b.used.assign(b.entries.size(), false);
  return true;
}

// --- output ----------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: pinlint [--root=DIR] [--baseline=FILE] [--json=FILE] "
      "[--quiet] PATH...\n"
      "  PATHs (files or directories, relative to --root) are scanned for\n"
      "  *.cpp/*.hpp; diagnostics print as file:line: rule: message.\n"
      "  Exit: 0 clean, 1 violations or stale baseline entries, 2 usage.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "pinlint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  Linter linter{fs::path(root)};
  if (!linter.load_paths(paths)) return 2;
  linter.run();

  Baseline baseline;
  if (!baseline_path.empty() && !load_baseline(baseline_path, baseline)) {
    std::fprintf(stderr, "pinlint: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }

  std::vector<Diag> live;
  for (const Diag& d : linter.diags()) {
    bool suppressed = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      if (baseline.entries[i].first == d.file &&
          baseline.entries[i].second == d.rule) {
        baseline.used[i] = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) live.push_back(d);
  }
  std::vector<std::string> stale;
  for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
    if (!baseline.used[i]) {
      stale.push_back(baseline.entries[i].first + ":" +
                      baseline.entries[i].second);
    }
  }

  if (!quiet) {
    for (const Diag& d : live) {
      std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                  d.msg.c_str());
    }
    for (const std::string& s : stale) {
      std::printf("%s: stale-baseline: entry no longer matches any "
                  "diagnostic — delete it (the baseline only shrinks)\n",
                  s.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"files_scanned\":" << linter.files_scanned()
        << ",\"violations\":[";
    bool first = true;
    for (const Diag& d : live) {
      if (!first) out << ",";
      first = false;
      out << "{\"file\":\"" << json_escape(d.file) << "\",\"line\":" << d.line
          << ",\"rule\":\"" << d.rule << "\",\"message\":\""
          << json_escape(d.msg) << "\"}";
    }
    out << "],\"stale_baseline\":[";
    first = true;
    for (const std::string& s : stale) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(s) << "\"";
    }
    out << "],\"count\":" << live.size() << "}\n";
  }

  if (!live.empty() || !stale.empty()) {
    if (!quiet) {
      std::printf("pinlint: %zu violation(s), %zu stale baseline entr%s\n",
                  live.size(), stale.size(), stale.size() == 1 ? "y" : "ies");
    }
    return 1;
  }
  if (!quiet) {
    std::printf("pinlint: clean (%zu files)\n", linter.files_scanned());
  }
  return 0;
}
