// pinlint fixture: every D1 nondeterminism source in one file. Never
// compiled — scanned by tests/pinlint_test only.
#include <cstdio>
#include <unordered_map>

struct Foo {
  int x;
};

std::unordered_map<Foo*, int> g_by_ptr;  // pointer-keyed: bucket order = ASLR

void nondeterminism() {
  std::random_device rd;  // hardware entropy breaks seeded replay
  (void)rd;
  int r = rand();
  long now = time(nullptr);
  (void)r;
  (void)now;
}

int returned_rand() {
  return rand();  // call context: `return` must not read as a declaration
}

unsigned long hash_ptr(Foo* f) {
  std::hash<Foo*> h;  // pointer value hashing
  return h(f);
}

void print_ptr(Foo* f) {
  std::printf("%p\n", static_cast<void*>(f));  // prints an address
}
