// pinlint fixture: header hygiene violations — no #pragma once, a
// using-namespace, and a std::vector use without including <vector>.
// Never compiled.
#include <cstddef>

using namespace std;

inline std::vector<int> make_list() {
  return {};
}
