// pinlint fixture: the increment side of the D4 contract. Never compiled.
#include "counters.hpp"

void bump(Counters& c) {
  ++c.pin_ops;
  c.never_serialized += 2;
}
