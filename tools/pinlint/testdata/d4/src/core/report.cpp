// pinlint fixture: the serialization side of the D4 contract — reads one
// counter that does not exist. Never compiled.
#include "counters.hpp"

unsigned long serialize(const Counters& c) {
  return c.pin_ops + c.never_incremented + c.bogus_counter;
}
