#pragma once

#include <cstdint>

struct Counters {
  std::uint64_t pin_ops = 0;            // incremented + serialized: clean
  std::uint64_t never_incremented = 0;  // serialized but nothing bumps it
  std::uint64_t never_serialized = 0;   // bumped but absent from the report
};
