// pinlint fixture: a defaultless switch over EventKind that misses kC —
// the D5 exhaustiveness rule. Never compiled.
#include "obs/event.hpp"

int weight(EventKind k) {
  switch (k) {
    case EventKind::kA:
      return 1;
    case EventKind::kB:
      return 2;
  }
  return 0;
}
