// pinlint fixture: a flight-recorder-style per-kind compact encoder whose
// defaultless switch misses kC — D5 keeps compaction tables in lock-step
// with the enum so a new kind cannot silently encode as zeroes. Never
// compiled.
#include "obs/event.hpp"

struct CompactEvent {
  int a = 0;
};

CompactEvent compact_encode(EventKind k) {
  CompactEvent ce;
  switch (k) {
    case EventKind::kA:
      ce.a = 1;
      break;
    case EventKind::kB:
      ce.a = 2;
      break;
  }
  return ce;
}
