#pragma once

enum class EventKind { kA, kB, kC };
