// pinlint fixture: the formatting authority renders kA and kB but forgot
// kC. The switch itself has a default, so only the rendering rule fires
// here. Never compiled.
#include "event.hpp"

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kA:
      return "a";
    case EventKind::kB:
      return "b";
    default:
      return "?";
  }
}
