// Fixture: TaskTag coverage (D8). Every schedule site must stamp a
// non-empty {"component", "label"} tag; untagged or empty-tagged work
// melts into the profiler's "(untagged)" bucket and hides from the top-K
// hot-path report.
#include <functional>

namespace fx {

struct Engine {
  using Callback = std::function<void()>;
  struct Tag {
    const char* component;
    const char* label;
  };
  void schedule_at(long t, Callback cb, Tag tag = {});
  void schedule_after(long d, Callback cb, Tag tag = {});
};

inline void drive(Engine& eng, int hits) {
  // FIRES: no TaskTag argument at all.
  eng.schedule_at(10, [hits] { (void)hits; });
  // FIRES: an empty TaskTag {}.
  eng.schedule_after(5, [hits] { (void)hits; }, {});
  // OK: braced tag.
  eng.schedule_after(5, [hits] { (void)hits; }, {"core", "drive"});
  // OK: explicitly typed tag.
  eng.schedule_at(20, [hits] { (void)hits; }, Engine::Tag{"core", "drive"});
  // pinlint: allow(D8: fixture exercises the untagged legacy path)
  eng.schedule_at(30, [hits] { (void)hits; });
}

}  // namespace fx
