#pragma once

#include <unordered_map>

struct Table {
  std::unordered_map<int, int> cells;
  int sum() const;
};

int first_value(const Table& t);
