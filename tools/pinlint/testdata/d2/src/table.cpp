// pinlint fixture: D2 unordered iteration, including through the paired
// header's member declaration. Never compiled.
#include "table.hpp"

int Table::sum() const {
  int total = 0;
  for (const auto& [k, v] : cells) total += v;  // range-for over unordered
  return total;
}

int first_value(const Table& t) {
  auto it = t.cells.begin();  // iterator traversal: bucket order
  return it == t.cells.end() ? 0 : it->second;
}
