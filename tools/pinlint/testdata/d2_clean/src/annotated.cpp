// pinlint fixture: the same unordered-iteration shapes as d2, every one
// carrying the annotation that makes the order provably irrelevant. Must
// scan clean. Never compiled.
#include <unordered_map>

int sum_annotated() {
  std::unordered_map<int, int> cells;
  cells[1] = 2;
  int total = 0;
  // pinlint: unordered-ok(addition is commutative)
  for (const auto& [k, v] : cells) total += v;
  return total;
}

int count_allowed(std::unordered_map<int, int>& m) {
  int n = 0;
  for (auto it = m.begin(); it != m.end(); ++it) ++n;  // pinlint: allow(D2: counting only)
  return n;
}
