#pragma once

// Fixture: core legitimately depends on mem and sim — but mem/pinner.hpp
// reaches back up into core, closing an include cycle through this header.
#include "mem/pinner.hpp"
#include "sim/engine.hpp"

namespace fx::core {

struct Library {
  fx::mem::Pinner pinner;
};

}  // namespace fx::core
