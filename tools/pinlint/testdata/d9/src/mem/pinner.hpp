#pragma once

// Fixture: a mem-layer component reaching up into core — the D9 back-edge
// (mem may only depend on mem, obs, sim), which also closes a cycle.
#include "core/library.hpp"
#include "sim/engine.hpp"

namespace fx::mem {

struct Pinner {
  fx::sim::Engine* eng = nullptr;
};

}  // namespace fx::mem
