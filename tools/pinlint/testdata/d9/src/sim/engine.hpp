#pragma once

// Fixture bottom layer: sim depends on nothing.
namespace fx::sim {

struct Engine {
  long now = 0;
};

}  // namespace fx::sim
