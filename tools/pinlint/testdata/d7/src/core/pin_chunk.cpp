// Fixture: deferred-callback lifetime (D7), modeled on the PR 7 ASan UAF
// where a pin-chunk completion fired after its endpoint died. Every lambda
// below goes to a scheduler sink; only the ones that revalidate (weak
// token, find_alive) or carry an explicit allow pass.
#include <functional>
#include <memory>

namespace fx {

struct Engine {
  using Callback = std::function<void()>;
  struct Tag {
    const char* component;
    const char* label;
  };
  void schedule_after(long delay, Callback cb, Tag tag);
};

struct Chunk {
  int pages = 0;
};

struct Endpoint {
  Engine& eng;
  int pinned = 0;
  std::shared_ptr<void> alive = std::make_shared<int>(0);

  Chunk* find_alive(int id);
  std::function<void()> guarded(std::function<void()> f);

  void pin_chunk_bad(Chunk* c) {
    // FIRES: captures `this` and a raw Chunk* with no revalidation — the
    // endpoint (or the chunk) can die before the completion runs.
    eng.schedule_after(
        5, [this, c] { pinned += c->pages; }, {"core", "pin_chunk"});
  }

  void pin_chunk_ref(Chunk& c) {
    // FIRES: reference capture of caller-owned state.
    eng.schedule_after(
        5, [&c, this] { pinned += c.pages; }, {"core", "pin_chunk"});
  }

  void pin_chunk_weak(Chunk c) {
    // OK: weak-token revalidation before touching members.
    eng.schedule_after(
        5,
        [this, c, w = std::weak_ptr<void>(alive)] {
          if (w.expired()) return;
          pinned += c.pages;
        },
        {"core", "pin_chunk"});
  }

  void pin_chunk_revalidated(int id) {
    // OK: find_alive() lookup inside the body.
    eng.schedule_after(
        5,
        [this, id] {
          Chunk* c = find_alive(id);
          if (c == nullptr) return;
          pinned += c->pages;
        },
        {"core", "pin_chunk"});
  }

  void pin_chunk_wrapped(Chunk c) {
    // OK: the guarded(...) adapter owns the liveness check.
    eng.schedule_after(5, guarded([this, c] { pinned += c.pages; }),
                       {"core", "pin_chunk"});
  }

  void pin_chunk_allowed(Chunk c) {
    eng.schedule_after(
        5,
        // pinlint: allow(D7: fixture endpoint outlives the engine by design)
        [this, c] { pinned += c.pages; }, {"core", "pin_chunk"});
  }
};

}  // namespace fx
