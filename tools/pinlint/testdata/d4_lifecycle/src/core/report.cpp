// pinlint fixture: the serialization side — every lifecycle counter lands in
// the report, including one nothing ever increments. Never compiled.
#include "counters.hpp"

unsigned long serialize(const Counters& c) {
  return c.lifecycle_crashes + c.lifecycle_restarts +
         c.lifecycle_reclaimed_pages + c.fenced_stale_frames +
         c.heartbeat_timeouts + c.stale_epoch_probes;
}
