#pragma once

#include <cstdint>

// pinlint fixture: the lifecycle counters' D4 shape. A crash-history counter
// is *stamped* from the driver's slot state on restart (plain `=`), not
// bumped in place — D4 must accept that as an increment site. Never compiled.
struct Counters {
  std::uint64_t lifecycle_crashes = 0;          // stamped via '='
  std::uint64_t lifecycle_restarts = 0;         // stamped via '='
  std::uint64_t lifecycle_reclaimed_pages = 0;  // '=' stamp and '+=' sweep
  std::uint64_t fenced_stale_frames = 0;        // classic '++'
  std::uint64_t heartbeat_timeouts = 0;         // classic '++'
  std::uint64_t stale_epoch_probes = 0;  // serialized but nothing bumps it
};
