// pinlint fixture: increment sites for the lifecycle counters — the
// restart-time stamping idiom ('=' from slot history) plus the in-place
// forms. Never compiled.
#include "counters.hpp"

void stamp_from_slot_history(Counters& c, unsigned long crashes,
                             unsigned long restarts, unsigned long pages) {
  c.lifecycle_crashes = crashes;
  c.lifecycle_restarts = restarts;
  c.lifecycle_reclaimed_pages = pages;
}

void on_fenced_frame(Counters& c) { ++c.fenced_stale_frames; }

void on_peer_death(Counters& c) { ++c.heartbeat_timeouts; }

void on_reclaim_sweep(Counters& c, unsigned long pages) {
  c.lifecycle_reclaimed_pages += pages;
}
