// Fixture: suppression hygiene (D0). An escape hatch without a reason is
// itself a diagnostic — and it also suppresses nothing, so the underlying
// rule still fires alongside it.
#include <unordered_map>

namespace fx {

inline int* leak_a() {
  // pinlint: allow(D3)
  return new int(1);  // D0 on the annotation + D3 still fires
}

inline int* leak_b() {
  // pinlint: allow(D3:)
  return new int(2);  // D0 + D3
}

inline int sum(const std::unordered_map<int, int>& m) {
  std::unordered_map<int, int> copy = m;
  int s = 0;
  // pinlint: unordered-ok()
  for (const auto& [k, v] : copy) s += v;  // D0 + D2
  return s;
}

inline int* ok() {
  // pinlint: allow(D3: fixture-owned allocation, freed by the caller)
  return new int(3);  // properly suppressed, no D0
}

}  // namespace fx
