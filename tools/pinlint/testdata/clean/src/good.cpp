// pinlint fixture: idiomatic deterministic code — must scan clean.
// Never compiled.
#include "good.hpp"

namespace demo {

std::uint64_t Ledger::total() const {
  std::uint64_t sum = 0;
  for (const auto& [k, v] : entries) sum += v;
  return sum;
}

std::vector<std::uint32_t> keys(const Ledger& l) {
  std::vector<std::uint32_t> out;
  out.reserve(l.entries.size());
  for (const auto& [k, v] : l.entries) out.push_back(k);
  return out;
}

}  // namespace demo
