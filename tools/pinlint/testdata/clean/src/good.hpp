#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace demo {

/// Ordered by key: iteration order is part of the contract.
struct Ledger {
  std::map<std::uint32_t, std::uint64_t> entries;
  [[nodiscard]] std::uint64_t total() const;
};

std::vector<std::uint32_t> keys(const Ledger& l);

}  // namespace demo
