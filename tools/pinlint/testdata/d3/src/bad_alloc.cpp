// pinlint fixture: D3 raw allocation, plus one inline-allowed call and the
// simulator-API shapes that must NOT fire. Never compiled.
#include <cstdlib>

struct Widget {
  int x;
  Widget(const Widget&) = delete;  // `= delete` is not a deallocation
};

struct Heap {
  void* malloc(unsigned long n);  // declaration: the simulator's own API
};

Widget* make() {
  return new Widget();
}

void destroy(Widget* w) {
  delete w;
}

void* grab() {
  void* p = malloc(64);
  return p;
}

void drop(void* p) {
  free(p);
}

void* simulated(Heap& heap) {
  return heap.malloc(64);  // member call: MallocSim idiom, not libc
}

void* sanctioned() {
  void* p = malloc(32);  // pinlint: allow(D3: C-API interop shim)
  return p;
}
