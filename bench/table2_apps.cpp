// Table 2: execution-time improvement brought by the pinning cache or the
// overlapped pinning on the Intel MPI Benchmarks and NPB IS, 4 processes on
// 2 nodes sharing the 10G NICs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workloads/imb.hpp"
#include "workloads/npb_is.hpp"

namespace {

using namespace pinsim;

// IMB runs with one rank per node ("between 2 nodes"); NPB IS uses the
// paper's is.C.4 layout of 4 processes over the 2 nodes.
double imb_time_us(const cpu::CpuModel& cpu, core::StackConfig stack,
                   const std::string& name, std::size_t bytes, int iters) {
  bench::Cluster cluster(cpu, stack, /*nranks=*/2, /*ioat=*/false, 49152);
  workloads::ImbSuite::Config cfg;
  cfg.iterations = iters;
  workloads::ImbSuite imb(*cluster.comm, cfg);
  return imb.run(name, bytes).avg_usec;
}

double is_time_us(const cpu::CpuModel& cpu, core::StackConfig stack,
                  std::size_t keys, int iters) {
  bench::Cluster cluster(cpu, stack, /*nranks=*/4, /*ioat=*/false, 49152);
  workloads::IsConfig cfg;
  cfg.total_keys = keys;
  cfg.iterations = iters;
  auto r = workloads::run_is(*cluster.comm, cfg);
  if (!r.verified) std::printf("  !! IS verification FAILED\n");
  return sim::to_usec(r.elapsed);
}

double improvement(double base, double other) {
  return (1.0 - other / base) * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Table 2: pinning cache / overlapped pinning improvement, IMB + NPB IS",
      "Goglin, CAC/IPDPS'09, Table 2 (%% execution-time improvement over "
      "regular pinning, 4 ranks on 2 nodes)");
  std::printf("cpu model: %s\n\n", opt.cpu->name.c_str());

  struct PaperRow {
    const char* app;
    double cache_pct;
    double overlap_pct;
  };
  const PaperRow paper[] = {
      {"SendRecv", 8.4, 5.5},   {"Allgatherv", 7.5, 6.8},
      {"Bcast", 4.4, 2.0},      {"Reduce", 7.6, 0.2},
      {"Allreduce", 2.2, -0.6}, {"Reduce_scatter", 7.9, -0.8},
      {"Exchange", -1.4, -2.7},
  };

  const int iters = opt.quick ? 4 : 8;
  const std::size_t bytes = 1024 * 1024;

  std::printf("%-16s | %12s %12s | %12s %12s\n", "Application",
              "cache(paper)", "ovl(paper)", "cache(ours)", "ovl(ours)");
  for (const auto& row : paper) {
    const double t_reg = imb_time_us(*opt.cpu, core::regular_pinning_config(),
                                     row.app, bytes, iters);
    const double t_cache = imb_time_us(
        *opt.cpu, core::pinning_cache_config(), row.app, bytes, iters);
    const double t_ovl = imb_time_us(
        *opt.cpu, core::overlapped_pinning_config(), row.app, bytes, iters);
    std::printf("IMB %-12s | %11.1f%% %11.1f%% | %11.1f%% %11.1f%%\n",
                row.app, row.cache_pct, row.overlap_pct,
                improvement(t_reg, t_cache), improvement(t_reg, t_ovl));
  }

  {
    const std::size_t keys = opt.quick ? (std::size_t{1} << 19)
                                       : (std::size_t{1} << 21);
    const int is_iters = opt.quick ? 3 : 10;
    const double t_reg =
        is_time_us(*opt.cpu, core::regular_pinning_config(), keys, is_iters);
    const double t_cache =
        is_time_us(*opt.cpu, core::pinning_cache_config(), keys, is_iters);
    const double t_ovl = is_time_us(
        *opt.cpu, core::overlapped_pinning_config(), keys, is_iters);
    std::printf("%-16s | %11.1f%% %11.1f%% | %11.1f%% %11.1f%%\n",
                "NPB is (scaled)", 4.2, 1.9, improvement(t_reg, t_cache),
                improvement(t_reg, t_ovl));
  }

  if (!opt.trace_out.empty()) {
    // Instrumented rerun of the pattern overlapping helps most: SendRecv at
    // 1 MB under overlapped pinning, 2 ranks between the nodes.
    bench::Cluster cluster(*opt.cpu, core::overlapped_pinning_config(),
                           /*nranks=*/2, /*with_ioat=*/false, 49152);
    bench::ObsRig rig(cluster, opt.trace_out + ".trace.json");
    workloads::ImbSuite::Config cfg;
    cfg.iterations = iters;
    workloads::ImbSuite imb(*cluster.comm, cfg);
    (void)imb.run("SendRecv", bytes);
    const int violations = rig.finish();
    rig.write_report(opt.trace_out + ".report.json");
    std::printf("\ntrace: %s.trace.json report: %s.report.json%s\n",
                opt.trace_out.c_str(), opt.trace_out.c_str(),
                violations == 0 ? "" : "  INVARIANT VIOLATIONS");
    std::printf("%s", rig.digest().c_str());
    if (violations != 0) return 1;
  }

  std::printf(
      "\nShape check vs paper: the cache helps every reuse-heavy kernel by\n"
      "several percent; overlapping helps the blocking-dominated patterns\n"
      "(SendRecv, Allgatherv) most, and can be neutral-to-negative where\n"
      "the collective already overlaps internally (Allreduce,\n"
      "Reduce_scatter, Exchange).\n");
  return 0;
}
