// Pressure soak: PingPong driven through escalating *memory-subsystem* fault
// stages — injected get_user_pages failures, bursty denial episodes, a tight
// pinned-page quota forcing LRU shedding and chunk-shrunk frontiers, and
// notifier storms (swap sweeps, migrations, COW breaks) against in-flight
// transfers — asserting bit-exact end-to-end payload delivery at every stage.
// A final starvation probe pins under a zero quota and demands a graceful
// ok=false abort (never a hang), then full recovery once the quota returns.
// Exits non-zero on the first integrity failure, so it doubles as a ctest
// entry (`pressure_soak --quick`) and as a target for the ASan+UBSan preset.
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "mem/pressure.hpp"
#include "sim/task.hpp"

namespace {

using namespace pinsim;

constexpr std::size_t kNoQuota = std::numeric_limits<std::size_t>::max();

std::vector<std::byte> pattern(std::size_t n, std::uint32_t salt) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 2654435761u + salt) >> 13);
  }
  return v;
}

struct Stage {
  const char* label;
  mem::PressurePlan plan;
  std::size_t quota = kNoQuota;  // per-host pinned-page quota
};

std::vector<Stage> stages() {
  std::vector<Stage> out;
  out.push_back({"clean", {}, kNoQuota});

  mem::PressurePlan fail;
  fail.pin_fail = 0.10;
  out.push_back({"pin failures 10%", fail, kNoQuota});

  mem::PressurePlan bursty;
  bursty.pin_fail = 0.05;
  bursty.burst_enter = 0.02;
  bursty.burst_exit = 0.25;
  bursty.burst_fail = 1.0;
  out.push_back({"bursty (Gilbert-Elliott) denial episodes", bursty, kNoQuota});

  // 512 kB messages span 128 pages; a 160-page quota cannot hold the cached
  // send region and the active receive region together, so every iteration
  // sheds the LRU region and shrinks chunks to the remaining headroom.
  mem::PressurePlan squeeze;
  squeeze.pin_fail = 0.05;
  out.push_back({"tight quota (160 pages) + pin failures 5%", squeeze, 160});

  mem::PressurePlan storm;
  storm.pin_fail = 0.02;
  storm.sweep = 0.8;
  storm.sweep_pages = 16;
  storm.migrate = 0.5;
  storm.migrate_pages = 4;
  storm.cow = 0.4;
  storm.cow_pages = 2;
  storm.storm_period = 20 * sim::kMicrosecond;
  out.push_back({"notifier storms (sweep/migrate/cow) + pin failures 2%",
                 storm, kNoQuota});
  return out;
}

/// Short protocol + pin-retry timeouts: the soak injects thousands of faults
/// and the paper's 1 s pessimistic timers would stretch one stage to hours
/// of simulated time.
core::StackConfig soak_stack() {
  core::StackConfig stack = core::overlapped_cache_config();
  stack.protocol.retransmit_timeout = 300 * sim::kMicrosecond;
  stack.protocol.retransmit_backoff_max = 10 * sim::kMillisecond;
  stack.protocol.pull_retry_timeout = 300 * sim::kMicrosecond;
  stack.pinning.pin_retry_backoff = 30 * sim::kMicrosecond;
  stack.pinning.pin_retry_backoff_max = 2 * sim::kMillisecond;
  stack.pinning.pin_retry_budget = 32;
  return stack;
}

/// Wires one PressureInjector per host: pin-denial gate on the host's
/// physical memory, storms watching every process address space on it.
struct PressureRig {
  PressureRig(bench::Cluster& cluster, const Stage& st) {
    for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
      auto inj = std::make_unique<mem::PressureInjector>(0x9e550e + h);
      inj->set_plan(st.plan);
      cluster.hosts[h]->memory().set_pressure(inj.get());
      cluster.hosts[h]->memory().set_pin_quota(st.quota);
      injectors.push_back(std::move(inj));
    }
    for (int r = 0; cluster.comm && r < cluster.comm->size(); ++r) {
      auto& p = cluster.comm->process(r);
      injectors[static_cast<std::size_t>(r % 2)]->watch(&p.as);
    }
    if (st.plan.storms()) {
      for (auto& inj : injectors) inj->start_storm(cluster.eng);
    }
    hosts = &cluster.hosts;
  }

  ~PressureRig() {
    for (std::size_t h = 0; h < injectors.size(); ++h) {
      injectors[h]->stop_storm();
      (*hosts)[h]->memory().set_pressure(nullptr);
      (*hosts)[h]->memory().set_pin_quota(kNoQuota);
    }
  }

  mem::PressureInjector::Stats total() const {
    mem::PressureInjector::Stats t;
    for (auto& inj : injectors) {
      const auto& s = inj->stats();
      t.pin_attempts += s.pin_attempts;
      t.pins_denied += s.pins_denied;
      t.burst_denied += s.burst_denied;
      t.storm_ticks += s.storm_ticks;
      t.swept_pages += s.swept_pages;
      t.migrated_pages += s.migrated_pages;
      t.cow_breaks += s.cow_breaks;
    }
    return t;
  }

  std::vector<std::unique_ptr<mem::PressureInjector>> injectors;
  const std::vector<std::unique_ptr<core::Host>>* hosts = nullptr;
};

// --- PingPong under pressure -------------------------------------------------

struct PingPongCtx {
  mpi::Communicator* comm = nullptr;
  std::size_t size = 0;
  int iters = 0;
  mem::VirtAddr src0{}, echo0{}, dst1{};
  std::vector<std::byte> expect;
  int mismatches = 0;
  int failed_ops = 0;
};

sim::Task<> pingpong_rank(PingPongCtx& ctx, int rank) {
  for (int i = 0; i < ctx.iters; ++i) {
    if (rank == 0) {
      const auto s1 =
          co_await ctx.comm->send(0, 1, i, ctx.src0, ctx.size);
      const auto s2 =
          co_await ctx.comm->recv(0, 1, 1000 + i, ctx.echo0, ctx.size);
      if (!s1.ok || !s2.ok) {
        ++ctx.failed_ops;
        continue;  // a failed op must report itself — silent loss is a bug
      }
      std::vector<std::byte> got(ctx.size);
      ctx.comm->process(0).as.read(ctx.echo0, got);
      if (got != ctx.expect) ++ctx.mismatches;
    } else {
      const auto r1 = co_await ctx.comm->recv(1, 0, i, ctx.dst1, ctx.size);
      const auto r2 =
          co_await ctx.comm->send(1, 0, 1000 + i, ctx.dst1, ctx.size);
      if (!r1.ok || !r2.ok) ++ctx.failed_ops;
    }
  }
}

/// Round-trips patterned buffers (eager- and rendezvous-sized) under one
/// pressure stage, verifying the echoed payload after every iteration.
/// Returns mismatches + unexpectedly failed operations + invariant
/// violations. A non-empty `tag` attaches the observability rig and writes
/// `<tag>.trace.json` / `<tag>.report.json`.
int run_pingpong(const Stage& st, const bench::Options& opt,
                 const std::string& tag) {
  bench::Cluster cluster(*opt.cpu, soak_stack(), /*nranks=*/2,
                         /*with_ioat=*/false);
  std::unique_ptr<bench::ObsRig> obs;
  if (!tag.empty()) {
    obs = std::make_unique<bench::ObsRig>(cluster, tag + ".trace.json");
  }
  PressureRig rig(cluster, st);
  if (obs) {
    for (auto& inj : rig.injectors) inj->set_bus(&obs->bus);
  }

  int bad = 0;
  const std::size_t sizes[] = {2048, 64 * 1024, 512 * 1024};
  for (std::size_t size : sizes) {
    PingPongCtx ctx;
    ctx.comm = cluster.comm.get();
    ctx.size = size;
    ctx.iters = opt.quick ? 3 : 8;
    auto& p0 = cluster.comm->process(0);
    auto& p1 = cluster.comm->process(1);
    ctx.src0 = p0.heap.malloc(size);
    ctx.echo0 = p0.heap.malloc(size);
    ctx.dst1 = p1.heap.malloc(size);
    ctx.expect = pattern(size, static_cast<std::uint32_t>(size));
    p0.as.write(ctx.src0, ctx.expect);

    mpi::run_ranks(cluster.eng, 2,
                   [&ctx](int rank) { return pingpong_rank(ctx, rank); });
    if (ctx.mismatches + ctx.failed_ops != 0) {
      std::printf("  %s: %d mismatch(es), %d failed op(s)\n",
                  bench::human_size(size).c_str(), ctx.mismatches,
                  ctx.failed_ops);
    }
    bad += ctx.mismatches + ctx.failed_ops;
  }

  const auto is = rig.total();
  core::Counters total;
  for (int r = 0; r < 2; ++r) {
    const auto& c = cluster.comm->process(r).lib.counters();
    total.pins_denied += c.pins_denied;
    total.pin_retries += c.pin_retries;
    total.pin_retry_exhausted += c.pin_retry_exhausted;
    total.pin_chunk_shrinks += c.pin_chunk_shrinks;
    total.pressure_unpins += c.pressure_unpins;
    total.notifier_invalidations += c.notifier_invalidations;
    total.repins += c.repins;
    total.overlap_misses += c.overlap_misses;
    total.aborts += c.aborts;
    total.retry_exhausted += c.retry_exhausted;
    total.pin_failures += c.pin_failures;
  }
  std::printf(
      "  injector: attempts=%llu denied=%llu+%llu sweeps=%llu migr=%llu "
      "cow=%llu\n"
      "  endpoint: denied=%llu retries=%llu exhausted=%llu shrinks=%llu "
      "shed=%llu inval=%llu repins=%llu misses=%llu aborts=%llu "
      "proto_rex=%llu pinfail=%llu  -> %s\n",
      static_cast<unsigned long long>(is.pin_attempts),
      static_cast<unsigned long long>(is.pins_denied),
      static_cast<unsigned long long>(is.burst_denied),
      static_cast<unsigned long long>(is.swept_pages),
      static_cast<unsigned long long>(is.migrated_pages),
      static_cast<unsigned long long>(is.cow_breaks),
      static_cast<unsigned long long>(total.pins_denied),
      static_cast<unsigned long long>(total.pin_retries),
      static_cast<unsigned long long>(total.pin_retry_exhausted),
      static_cast<unsigned long long>(total.pin_chunk_shrinks),
      static_cast<unsigned long long>(total.pressure_unpins),
      static_cast<unsigned long long>(total.notifier_invalidations),
      static_cast<unsigned long long>(total.repins),
      static_cast<unsigned long long>(total.overlap_misses),
      static_cast<unsigned long long>(total.aborts),
      static_cast<unsigned long long>(total.retry_exhausted),
      static_cast<unsigned long long>(total.pin_failures),
      bad == 0 ? "bit-exact" : "CORRUPTED/FAILED");

  if (st.quota != kNoQuota && bad == 0) {
    static bool printed = false;
    if (!printed) {
      printed = true;
      std::printf("\n--- run report, rank 0 (stage: %s) ---\n%s\n", st.label,
                  core::format_report(cluster.comm->process(0),
                                      *cluster.hosts[0])
                      .c_str());
    }
  }
  // Stage boundary: the engine's structural invariants must survive the
  // pressure barrage before the next stage reuses the pattern.
  if (obs != nullptr && !obs->check_engine()) {
    std::printf("  pingpong: ENGINE SELF-CHECK FAILED (see flight dump)\n");
    ++bad;
  } else if (std::string why;
             obs == nullptr && !cluster.eng.self_check(&why)) {
    std::printf("  pingpong: ENGINE SELF-CHECK FAILED: %s\n", why.c_str());
    ++bad;
  }
  if (obs) {
    for (auto& inj : rig.injectors) inj->set_bus(nullptr);
    const int violations = obs->finish();
    obs->write_report(tag + ".report.json");
    if (violations != 0) {
      std::printf("  pingpong: %d INVARIANT VIOLATION(S)\n", violations);
    }
    bad += violations;
  }
  return bad;
}

// --- Starvation probe --------------------------------------------------------

struct ProbeCtx {
  mpi::Communicator* comm = nullptr;
  std::size_t size = 0;
  int tag = 0;
  mem::VirtAddr src0{}, dst1{};
  core::Status send_st{}, recv_st{};
};

sim::Task<> probe_rank(ProbeCtx& ctx, int rank) {
  if (rank == 0) {
    ctx.send_st = co_await ctx.comm->send(0, 1, ctx.tag, ctx.src0, ctx.size);
  } else {
    ctx.recv_st = co_await ctx.comm->recv(1, 0, ctx.tag, ctx.dst1, ctx.size);
  }
}

/// The acceptance bar: a rendezvous transfer into a host whose pinned-page
/// quota is zero must end with ok=false on both sides — no hang, no silent
/// corruption — with the denial visible in the pressure counters; and the
/// *same* buffers must transfer bit-exact once the quota is lifted (kFailed
/// is retryable).
int run_starvation_probe(const bench::Options& opt) {
  std::printf("stage: starvation probe (receiver quota 0)\n");
  bench::Cluster cluster(*opt.cpu, soak_stack(), /*nranks=*/2,
                         /*with_ioat=*/false);
  const std::size_t size = 512 * 1024;  // rendezvous-sized: must pin to land
  auto& p0 = cluster.comm->process(0);
  auto& p1 = cluster.comm->process(1);

  ProbeCtx ctx;
  ctx.comm = cluster.comm.get();
  ctx.size = size;
  ctx.tag = 1;
  ctx.src0 = p0.heap.malloc(size);
  ctx.dst1 = p1.heap.malloc(size);
  const auto expect = pattern(size, 0x5047);
  p0.as.write(ctx.src0, expect);

  cluster.hosts[1]->memory().set_pin_quota(0);  // receiver starved
  mpi::run_ranks(cluster.eng, 2,
                 [&ctx](int rank) { return probe_rank(ctx, rank); });

  const auto& c1 = p1.lib.counters();
  int bad = 0;
  if (ctx.send_st.ok || ctx.recv_st.ok) {
    std::printf("  FAIL: starved transfer reported success (send ok=%d recv "
                "ok=%d)\n",
                ctx.send_st.ok, ctx.recv_st.ok);
    ++bad;
  }
  if (c1.pins_denied == 0 || c1.pin_retry_exhausted == 0) {
    std::printf("  FAIL: starvation not visible in counters (denied=%llu "
                "exhausted=%llu)\n",
                static_cast<unsigned long long>(c1.pins_denied),
                static_cast<unsigned long long>(c1.pin_retry_exhausted));
    ++bad;
  }
  std::printf("  starved: send ok=%d recv ok=%d denied=%llu retries=%llu "
              "exhausted=%llu aborts=%llu\n",
              ctx.send_st.ok, ctx.recv_st.ok,
              static_cast<unsigned long long>(c1.pins_denied),
              static_cast<unsigned long long>(c1.pin_retries),
              static_cast<unsigned long long>(c1.pin_retry_exhausted),
              static_cast<unsigned long long>(c1.aborts));

  // Pressure lifts: the same declared-but-failed region must repin on
  // demand and the retry must be bit-exact.
  cluster.hosts[1]->memory().set_pin_quota(kNoQuota);
  ctx.tag = 2;
  ctx.send_st = core::Status{};
  ctx.recv_st = core::Status{};
  mpi::run_ranks(cluster.eng, 2,
                 [&ctx](int rank) { return probe_rank(ctx, rank); });
  std::vector<std::byte> got(size);
  p1.as.read(ctx.dst1, got);
  const bool exact = got == expect;
  if (!ctx.send_st.ok || !ctx.recv_st.ok || !exact) {
    std::printf("  FAIL: post-starvation retry (send ok=%d recv ok=%d "
                "bit-exact=%d)\n",
                ctx.send_st.ok, ctx.recv_st.ok, exact);
    ++bad;
  } else {
    std::printf("  recovered: retry bit-exact, failed_resets=%llu\n",
                static_cast<unsigned long long>(c1.pin_fail_resets));
  }
  if (std::string why; !cluster.eng.self_check(&why)) {
    std::printf("  probe: ENGINE SELF-CHECK FAILED: %s\n", why.c_str());
    ++bad;
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Pressure soak: graceful degradation under memory-subsystem chaos",
      "paper §3.1 unpin-under-pressure / repin-on-demand, generalized to pin "
      "denial, quotas and notifier storms");

  int failures = 0;
  int sidx = 0;
  for (const Stage& st : stages()) {
    std::printf("stage: %s\n", st.label);
    std::string tag;
    if (!opt.trace_out.empty()) {
      tag = opt.trace_out + "-s" + std::to_string(sidx) + "-pingpong";
    }
    failures += run_pingpong(st, opt, tag);
    ++sidx;
  }
  failures += run_starvation_probe(opt);

  if (failures != 0) {
    std::printf("\nFAIL: %d corrupted/failed transfer(s)\n", failures);
    return 1;
  }
  std::printf("\nall stages bit-exact, starvation handled gracefully\n");
  return 0;
}
