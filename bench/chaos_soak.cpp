// Chaos soak: PingPong and Alltoallv driven through escalating network fault
// stages (clean, independent loss, loss+corruption+duplication+reordering,
// Gilbert-Elliott bursty loss on top), asserting bit-exact end-to-end payload
// delivery at every stage. Exits non-zero on the first integrity failure, so
// it doubles as a ctest entry (`chaos_soak --quick`) and as the target for
// the ASan+UBSan preset.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "net/fault.hpp"
#include "sim/task.hpp"

namespace {

using namespace pinsim;

std::vector<std::byte> pattern(std::size_t n, std::uint32_t salt) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 2654435761u + salt) >> 13);
  }
  return v;
}

struct Stage {
  const char* label;
  net::FaultPlan plan;
};

std::vector<Stage> stages() {
  std::vector<Stage> out;
  out.push_back({"clean", {}});

  net::FaultPlan loss;
  loss.loss = 0.02;
  out.push_back({"loss 2%", loss});

  net::FaultPlan mixed;
  mixed.loss = 0.05;
  mixed.corrupt = 0.02;
  mixed.duplicate = 0.02;
  mixed.reorder = 0.05;
  out.push_back({"loss 5% + corrupt/dup/reorder", mixed});

  net::FaultPlan bursty = mixed;
  bursty.loss = 0.01;
  bursty.burst_enter = 0.02;
  bursty.burst_exit = 0.25;
  bursty.burst_loss = 1.0;
  out.push_back({"bursty (Gilbert-Elliott) + corrupt/dup/reorder", bursty});
  return out;
}

/// Fault-tolerant protocol settings: the 1 s paper default would make a soak
/// under 5% loss take minutes of simulated time per message.
core::StackConfig soak_stack() {
  core::StackConfig stack = core::overlapped_cache_config();
  stack.protocol.retransmit_timeout = 300 * sim::kMicrosecond;
  stack.protocol.retransmit_backoff_max = 10 * sim::kMillisecond;
  stack.protocol.pull_retry_timeout = 300 * sim::kMicrosecond;
  return stack;
}

// --- PingPong ----------------------------------------------------------------

struct PingPongCtx {
  mpi::Communicator* comm = nullptr;
  std::size_t size = 0;
  int iters = 0;
  mem::VirtAddr src0{}, echo0{}, dst1{};
  std::vector<std::byte> expect;
  int mismatches = 0;
};

sim::Task<> pingpong_rank(PingPongCtx& ctx, int rank) {
  for (int i = 0; i < ctx.iters; ++i) {
    if (rank == 0) {
      (void)co_await ctx.comm->send(0, 1, i, ctx.src0, ctx.size);
      (void)co_await ctx.comm->recv(0, 1, 1000 + i, ctx.echo0, ctx.size);
      std::vector<std::byte> got(ctx.size);
      ctx.comm->process(0).as.read(ctx.echo0, got);
      if (got != ctx.expect) ++ctx.mismatches;
    } else {
      (void)co_await ctx.comm->recv(1, 0, i, ctx.dst1, ctx.size);
      (void)co_await ctx.comm->send(1, 0, 1000 + i, ctx.dst1, ctx.size);
    }
  }
}

/// Round-trips patterned buffers (eager- and rendezvous-sized) and verifies
/// the echoed payload after every iteration. Returns mismatch + invariant
/// violation count. A non-empty `tag` attaches the observability rig and
/// writes `<tag>.trace.json` / `<tag>.report.json`.
int run_pingpong(const Stage& st, const bench::Options& opt,
                 const std::string& tag) {
  bench::Cluster cluster(*opt.cpu, soak_stack(), /*nranks=*/2,
                         /*with_ioat=*/false);
  cluster.fabric->faults().set_plan(st.plan);
  std::unique_ptr<bench::ObsRig> rig;
  if (!tag.empty()) {
    rig = std::make_unique<bench::ObsRig>(cluster, tag + ".trace.json");
  }

  int mismatches = 0;
  const std::size_t sizes[] = {2048, 64 * 1024, 512 * 1024};
  for (std::size_t size : sizes) {
    PingPongCtx ctx;
    ctx.comm = cluster.comm.get();
    ctx.size = size;
    ctx.iters = opt.quick ? 3 : 8;
    auto& p0 = cluster.comm->process(0);
    auto& p1 = cluster.comm->process(1);
    ctx.src0 = p0.heap.malloc(size);
    ctx.echo0 = p0.heap.malloc(size);
    ctx.dst1 = p1.heap.malloc(size);
    ctx.expect = pattern(size, static_cast<std::uint32_t>(size));
    p0.as.write(ctx.src0, ctx.expect);

    mpi::run_ranks(cluster.eng, 2,
                   [&ctx](int rank) { return pingpong_rank(ctx, rank); });
    mismatches += ctx.mismatches;
  }

  const auto& fs = cluster.fabric->faults().stats();
  std::printf(
      "  pingpong: frames=%llu drops=%llu burst_drops=%llu corrupt=%llu "
      "dups=%llu reorders=%llu  -> %s\n",
      static_cast<unsigned long long>(fs.frames_seen),
      static_cast<unsigned long long>(fs.drops),
      static_cast<unsigned long long>(fs.burst_drops),
      static_cast<unsigned long long>(fs.corruptions),
      static_cast<unsigned long long>(fs.duplicates),
      static_cast<unsigned long long>(fs.reorders),
      mismatches == 0 ? "bit-exact" : "CORRUPTED");
  // Stage boundary: the engine's structural invariants must survive the
  // fault barrage before the next stage reuses the pattern.
  if (rig != nullptr && !rig->check_engine()) {
    std::printf("  pingpong: ENGINE SELF-CHECK FAILED (see flight dump)\n");
    ++mismatches;
  } else if (std::string why;
             rig == nullptr && !cluster.eng.self_check(&why)) {
    std::printf("  pingpong: ENGINE SELF-CHECK FAILED: %s\n", why.c_str());
    ++mismatches;
  }
  int violations = 0;
  if (rig) {
    violations = rig->finish();
    rig->write_report(tag + ".report.json");
    if (violations != 0) {
      std::printf("  pingpong: %d INVARIANT VIOLATION(S)\n", violations);
    }
  }
  return mismatches + violations;
}

// --- Alltoallv ---------------------------------------------------------------

constexpr int kA2avRanks = 4;

std::size_t a2av_block(int from, int to) {
  // Mix of eager- and rendezvous-sized blocks.
  constexpr std::size_t kSizes[] = {8 * 1024, 40 * 1024, 96 * 1024};
  return kSizes[static_cast<std::size_t>(from + to) % 3];
}

struct A2avCtx {
  mpi::Communicator* comm = nullptr;
  std::vector<mem::VirtAddr> send, recv;
  std::vector<std::vector<std::size_t>> counts, displs;
};

sim::Task<> a2av_rank(A2avCtx& ctx, int rank) {
  const auto r = static_cast<std::size_t>(rank);
  // Symmetric pattern: rank i sends counts[i][j] to j and receives
  // counts[j][i] from j.
  std::vector<std::size_t> rcounts, rdispls;
  std::size_t off = 0;
  for (int j = 0; j < kA2avRanks; ++j) {
    rcounts.push_back(a2av_block(j, rank));
    rdispls.push_back(off);
    off += rcounts.back();
  }
  co_await ctx.comm->alltoallv(rank, ctx.send[r], ctx.counts[r],
                               ctx.displs[r], ctx.recv[r], rcounts, rdispls);
}

/// All-to-all with per-pair patterned blocks; every received block must be
/// bit-exact. Returns mismatch + invariant violation count.
int run_alltoallv(const Stage& st, const bench::Options& opt,
                  const std::string& tag) {
  bench::Cluster cluster(*opt.cpu, soak_stack(), kA2avRanks,
                         /*with_ioat=*/false);
  cluster.fabric->faults().set_plan(st.plan);
  std::unique_ptr<bench::ObsRig> rig;
  if (!tag.empty()) {
    rig = std::make_unique<bench::ObsRig>(cluster, tag + ".trace.json");
  }

  int mismatches = 0;
  const int rounds = opt.quick ? 2 : 5;
  for (int round = 0; round < rounds; ++round) {
    A2avCtx ctx;
    ctx.comm = cluster.comm.get();
    ctx.counts.resize(kA2avRanks);
    ctx.displs.resize(kA2avRanks);
    for (int i = 0; i < kA2avRanks; ++i) {
      auto& p = cluster.comm->process(i);
      std::size_t send_total = 0, recv_total = 0;
      for (int j = 0; j < kA2avRanks; ++j) {
        ctx.counts[static_cast<std::size_t>(i)].push_back(a2av_block(i, j));
        ctx.displs[static_cast<std::size_t>(i)].push_back(send_total);
        send_total += a2av_block(i, j);
        recv_total += a2av_block(j, i);
      }
      ctx.send.push_back(p.heap.malloc(send_total));
      ctx.recv.push_back(p.heap.malloc(recv_total));
      for (int j = 0; j < kA2avRanks; ++j) {
        p.as.write(ctx.send.back() +
                       ctx.displs[static_cast<std::size_t>(i)]
                                 [static_cast<std::size_t>(j)],
                   pattern(a2av_block(i, j),
                           static_cast<std::uint32_t>(
                               (round * 64 + i * 8 + j) * 7919)));
      }
    }

    mpi::run_ranks(cluster.eng, kA2avRanks,
                   [&ctx](int rank) { return a2av_rank(ctx, rank); });

    for (int i = 0; i < kA2avRanks; ++i) {
      auto& p = cluster.comm->process(i);
      std::size_t off = 0;
      for (int j = 0; j < kA2avRanks; ++j) {
        const std::size_t n = a2av_block(j, i);
        std::vector<std::byte> got(n);
        p.as.read(ctx.recv[static_cast<std::size_t>(i)] + off, got);
        if (got != pattern(n, static_cast<std::uint32_t>(
                                  (round * 64 + j * 8 + i) * 7919))) {
          ++mismatches;
        }
        off += n;
      }
    }
  }

  const auto& fs = cluster.fabric->faults().stats();
  core::Counters total;
  for (int i = 0; i < kA2avRanks; ++i) {
    const auto& c = cluster.comm->process(i).lib.counters();
    total.frames_corrupted += c.frames_corrupted;
    total.checksum_drops += c.checksum_drops;
    total.duplicates_suppressed += c.duplicates_suppressed;
    total.retransmit_timeouts += c.retransmit_timeouts;
    total.retry_exhausted += c.retry_exhausted;
  }
  std::printf(
      "  alltoallv: frames=%llu drops=%llu+%llu corrupt=%llu dups=%llu "
      "reorders=%llu | endpoint: checksum_drops=%llu dup_suppressed=%llu "
      "timeouts=%llu retry_exhausted=%llu  -> %s\n",
      static_cast<unsigned long long>(fs.frames_seen),
      static_cast<unsigned long long>(fs.drops),
      static_cast<unsigned long long>(fs.burst_drops),
      static_cast<unsigned long long>(fs.corruptions),
      static_cast<unsigned long long>(fs.duplicates),
      static_cast<unsigned long long>(fs.reorders),
      static_cast<unsigned long long>(total.checksum_drops),
      static_cast<unsigned long long>(total.duplicates_suppressed),
      static_cast<unsigned long long>(total.retransmit_timeouts),
      static_cast<unsigned long long>(total.retry_exhausted),
      mismatches == 0 ? "bit-exact" : "CORRUPTED");

  if (st.plan.corrupt > 0 && mismatches == 0) {
    // Show the fault counters flowing into the standard run report once.
    static bool printed = false;
    if (!printed) {
      printed = true;
      std::printf("\n--- run report, rank 0 (stage: %s) ---\n%s\n", st.label,
                  core::format_report(cluster.comm->process(0),
                                      *cluster.hosts[0])
                      .c_str());
    }
  }
  if (rig != nullptr && !rig->check_engine()) {
    std::printf("  alltoallv: ENGINE SELF-CHECK FAILED (see flight dump)\n");
    ++mismatches;
  } else if (std::string why;
             rig == nullptr && !cluster.eng.self_check(&why)) {
    std::printf("  alltoallv: ENGINE SELF-CHECK FAILED: %s\n", why.c_str());
    ++mismatches;
  }
  int violations = 0;
  if (rig) {
    violations = rig->finish();
    rig->write_report(tag + ".report.json");
    if (violations != 0) {
      std::printf("  alltoallv: %d INVARIANT VIOLATION(S)\n", violations);
    }
  }
  return mismatches + violations;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Chaos soak: MXoE retransmission hardening under injected faults",
      "paper §3.3 drop-and-retransmit recovery, generalized to loss, bursty "
      "loss, corruption, duplication and reordering");

  int failures = 0;
  int sidx = 0;
  for (const Stage& st : stages()) {
    std::printf("stage: %s\n", st.label);
    std::string base;
    if (!opt.trace_out.empty()) {
      base = opt.trace_out + "-s" + std::to_string(sidx);
    }
    failures += run_pingpong(st, opt, base.empty() ? base : base + "-pingpong");
    failures +=
        run_alltoallv(st, opt, base.empty() ? base : base + "-alltoallv");
    ++sidx;
  }
  if (failures != 0) {
    std::printf("\nFAIL: %d corrupted payload(s) or invariant violation(s)\n",
                failures);
    return 1;
  }
  std::printf("\nall stages bit-exact\n");
  return 0;
}
