// §4.3 "Overlap Impact Discussion": how often does a packet arrive before
// its page is pinned, and what happens when the receive bottom halves
// exhaust the core the pinning needs?
//
//  (a) normal load: overlap-miss probability (paper: < 1 packet in 10^4);
//  (b) a core overloaded by interrupt processing: throughput collapse
//      (paper: from ~1 GB/s down to ~50 MB/s);
//  (c) the mitigation the paper was evaluating: synchronously pre-pinning
//      a few pages before the initiating message.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/stats.hpp"

namespace {

using namespace pinsim;

/// Synthetic interrupt flood: keeps `core` busy at bottom-half priority for
/// `busy` out of every `period` nanoseconds — the "interrupts bound to a
/// single core" overload of §4.3, injected deterministically.
struct InterruptFlood {
  InterruptFlood(sim::Engine& eng, cpu::Core& core, sim::Time busy,
                 sim::Time period)
      : eng_(eng), core_(core), busy_(busy), period_(period) {}

  void start() {
    if (busy_ == 0) return;
    tick();
  }
  void stop() { stopped_ = true; }

 private:
  void tick() {
    if (stopped_) return;
    core_.consume(cpu::Priority::kBottomHalf, busy_);
    eng_.schedule_after(period_, [this] { tick(); });
  }

  sim::Engine& eng_;
  cpu::Core& core_;
  sim::Time busy_;
  sim::Time period_;
  bool stopped_ = false;
};

struct RunResult {
  double mb_per_sec = 0.0;
  double miss_rate = 0.0;
  std::uint64_t misses = 0;
  std::uint64_t accesses = 0;
  std::uint64_t rerequests = 0;
  std::uint64_t timeouts = 0;
};

/// Streams `count` one-way messages of `bytes` through the overlapped
/// (non-cached) path while a flood of the given duty cycle occupies the
/// receiver's core — which is also the NIC interrupt core. A non-empty
/// `trace_prefix` attaches the observability rig (traces + report + slow-
/// message digest; `*violations` receives the invariant verdict).
RunResult stream(const cpu::CpuModel& cpu, double duty, std::size_t bytes,
                 int count, std::size_t prepin_pages,
                 const std::string& trace_prefix = std::string(),
                 int* violations = nullptr) {
  core::StackConfig stack = core::overlapped_pinning_config();
  stack.pinning.sync_prepin_pages = prepin_pages;
  // The §4.3 pathology needs "interrupts bound to a single core": disable
  // flow steering so every bottom half lands on core 0.
  stack.protocol.distribute_interrupts = false;
  bench::Cluster cluster(cpu, stack, /*nranks=*/0, /*ioat=*/false);
  std::unique_ptr<bench::ObsRig> rig;
  if (!trace_prefix.empty()) {
    rig = std::make_unique<bench::ObsRig>(cluster,
                                          trace_prefix + ".trace.json");
  }
  auto& sender = cluster.hosts[0]->spawn_process();  // core 1 of host A
  // The receiver shares core 0 with the interrupt handling (the §4.3 setup).
  auto& receiver = cluster.hosts[1]->spawn_process_on(0);
  auto& eng = cluster.eng;

  const sim::Time period = 100 * sim::kMicrosecond;
  InterruptFlood flood(eng, cluster.hosts[1]->core(0),
                       static_cast<sim::Time>(duty * static_cast<double>(period)),
                       period);
  flood.start();

  const auto src = sender.heap.malloc(bytes);
  // Rotate buffers so every message needs a fresh pin on both sides.
  std::vector<mem::VirtAddr> dsts;
  for (int i = 0; i < 4; ++i) dsts.push_back(receiver.heap.malloc(bytes));

  const sim::Time t0 = eng.now();
  bool done_send = false;
  bool done_recv = false;
  sim::spawn(eng, [](core::Host::Process& p, core::EndpointAddr to,
                     mem::VirtAddr buf, std::size_t n, int k,
                     bool& flag) -> sim::Task<> {
    for (int i = 0; i < k; ++i) (void)co_await p.lib.send(to, 0x7, buf, n);
    flag = true;
  }(sender, receiver.addr(), src, bytes, count, done_send));
  sim::spawn(eng, [](core::Host::Process& p, std::vector<mem::VirtAddr> bufs,
                     std::size_t n, int k, bool& flag) -> sim::Task<> {
    for (int i = 0; i < k; ++i) {
      (void)co_await p.lib.recv(0x7, ~std::uint64_t{0},
                                bufs[static_cast<std::size_t>(i) % bufs.size()],
                                n);
    }
    flag = true;
  }(receiver, dsts, bytes, count, done_recv));

  while ((!done_send || !done_recv) && eng.step()) {
  }
  eng.rethrow_task_failures();
  flood.stop();

  if (rig != nullptr) {
    const int v = rig->finish();
    if (violations != nullptr) *violations = v;
    rig->write_report(trace_prefix + ".report.json");
    std::printf("\ntrace: %s.trace.json report: %s.report.json%s\n",
                trace_prefix.c_str(), trace_prefix.c_str(),
                v == 0 ? "" : "  INVARIANT VIOLATIONS");
    std::printf("%s", rig->digest().c_str());
  }

  RunResult r;
  const auto& cs = sender.lib.counters();
  const auto& cr = receiver.lib.counters();
  r.accesses = cs.region_accesses + cr.region_accesses;
  r.misses = cs.overlap_misses + cr.overlap_misses;
  r.miss_rate = r.accesses == 0
                    ? 0.0
                    : static_cast<double>(r.misses) /
                          static_cast<double>(r.accesses);
  r.rerequests = cr.pull_rerequests;
  r.timeouts = cs.retransmit_timeouts + cr.retransmit_timeouts;
  const sim::Time elapsed = eng.now() - t0;
  if (elapsed > 0) {
    r.mb_per_sec = static_cast<double>(bytes) * count / 1e6 /
                   sim::to_seconds(elapsed);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Section 4.3: overlap misses under normal and overloaded receive load",
      "Goglin, CAC/IPDPS'09, §4.3 (miss probability < 1e-4 under regular "
      "load; 1 GB/s -> ~50 MB/s collapse when the core is exhausted)");
  std::printf("cpu model: %s\n\n", opt.cpu->name.c_str());

  const std::size_t bytes = 1024 * 1024;
  const int count = opt.quick ? 6 : 12;

  std::printf("%-28s %10s %12s %14s %12s %10s\n", "scenario", "MB/s",
              "miss rate", "misses/total", "rerequests", "timeouts");
  struct Row {
    const char* label;
    double duty;
    std::size_t prepin;
  };
  // Beyond ~99% duty the bottom-half queue never drains and pinning starves
  // outright (throughput -> one pull-retry period per window); the paper's
  // observed range ends around there.
  const Row rows[] = {
      {"idle core (normal load)", 0.0, 0},
      {"50% interrupt load", 0.50, 0},
      {"90% interrupt load", 0.90, 0},
      {"95% interrupt load", 0.95, 0},
      {"99% interrupt load", 0.99, 0},
      {"90% + pre-pin 64 pages", 0.90, 64},
      {"99% + pre-pin 64 pages", 0.99, 64},
  };
  double baseline = 0.0;
  for (const auto& row : rows) {
    const auto r = stream(*opt.cpu, row.duty, bytes, count, row.prepin);
    if (baseline == 0.0) baseline = r.mb_per_sec;
    std::printf("%-28s %10.1f %12.2e %8llu/%-8llu %9llu %9llu\n", row.label,
                r.mb_per_sec, r.miss_rate,
                static_cast<unsigned long long>(r.misses),
                static_cast<unsigned long long>(r.accesses),
                static_cast<unsigned long long>(r.rerequests),
                static_cast<unsigned long long>(r.timeouts));
  }
  if (!opt.trace_out.empty()) {
    // Instrumented rerun of the 90%-duty row: pulls outrun pin frontiers,
    // so the critical-path digest attributes real pin_stall/retransmit time
    // and the Chrome trace shows the overlap-miss chains.
    int violations = 0;
    (void)stream(*opt.cpu, 0.90, bytes, count, 0, opt.trace_out,
                 &violations);
    if (violations != 0) return 1;
  }
  std::printf(
      "\nShape check vs paper: essentially no misses on an idle core, and a\n"
      "collapse of one to two orders of magnitude once bottom halves\n"
      "monopolize the core the receiver pins from. Pre-pinning a few pages\n"
      "trims the wasted retransmissions (the mitigation §4.3 evaluates).\n");
  return 0;
}
