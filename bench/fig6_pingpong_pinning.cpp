// Figure 6: IMB PingPong throughput on top of Open-MX depending on the
// pinning cache being enabled — {Open-MX, Open-MX + I/OAT} x {pin once per
// communication, permanent pinning}, message sizes 64 kB .. 16 MB.
//
// Run with --cpu=opteron265 to reproduce the §4.1 claim that the pinning
// penalty grows to ~20% on slower processors.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workloads/imb.hpp"

namespace {

using namespace pinsim;

double pingpong_mibps(const cpu::CpuModel& cpu, core::StackConfig stack,
                      bool ioat, std::size_t bytes, int iters) {
  stack.protocol.use_ioat = ioat;
  bench::Cluster cluster(cpu, stack, /*nranks=*/2, ioat);
  workloads::ImbSuite::Config cfg;
  cfg.iterations = iters;
  workloads::ImbSuite imb(*cluster.comm, cfg);
  return imb.pingpong(bytes).mib_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Figure 6: IMB PingPong throughput vs pinning policy",
      "Goglin, CAC/IPDPS'09, Fig. 6 (MiB/s; pin-once-per-communication vs "
      "permanent pinning, with and without I/OAT)");
  std::printf("cpu model: %s (%.2f GHz)\n\n", opt.cpu->name.c_str(),
              opt.cpu->ghz);

  struct Config {
    const char* label;
    core::StackConfig stack;
    bool ioat;
  };
  const Config configs[] = {
      {"OMX pin/comm", core::regular_pinning_config(), false},
      {"OMX permanent", core::permanent_pinning_config(), false},
      {"OMX+IOAT pin/comm", core::regular_pinning_config(), true},
      {"OMX+IOAT permanent", core::permanent_pinning_config(), true},
  };

  const int iters = opt.quick ? 4 : 10;
  if (opt.csv) {
    bench::csv_header("bytes", {"omx_pin_per_comm", "omx_permanent",
                                "ioat_pin_per_comm", "ioat_permanent"});
  } else {
    std::printf("%-8s", "size");
    for (const auto& c : configs) std::printf(" %18s", c.label);
    std::printf(" %10s\n", "perm/comm");
  }

  for (std::size_t bytes : bench::figure_sizes(opt.quick)) {
    std::vector<double> vals;
    for (const auto& c : configs) {
      vals.push_back(pingpong_mibps(*opt.cpu, c.stack, c.ioat, bytes, iters));
    }
    if (opt.csv) {
      bench::csv_row(bytes, vals);
      continue;
    }
    std::printf("%-8s", bench::human_size(bytes).c_str());
    for (double v : vals) std::printf(" %18.1f", v);
    // The paper's headline: the relative cost of per-communication pinning.
    std::printf(" %9.1f%%\n", (vals[1] / vals[0] - 1.0) * 100.0);
  }
  if (!opt.trace_out.empty()) {
    // Instrumented rerun of the pin-per-communication case at 1 MB: the
    // Chrome trace shows every pin span nested under its rendezvous.
    bench::Cluster cluster(*opt.cpu, core::regular_pinning_config(),
                           /*nranks=*/2, /*with_ioat=*/false);
    bench::ObsRig rig(cluster, opt.trace_out + ".trace.json");
    workloads::ImbSuite::Config cfg;
    cfg.iterations = iters;
    workloads::ImbSuite imb(*cluster.comm, cfg);
    (void)imb.pingpong(1024 * 1024);
    const bool engine_ok = rig.check_engine();
    const int violations = rig.finish();
    rig.write_report(opt.trace_out + ".report.json");
    std::printf("\ntrace: %s.trace.json report: %s.report.json%s\n",
                opt.trace_out.c_str(), opt.trace_out.c_str(),
                violations == 0 ? "" : "  INVARIANT VIOLATIONS");
    std::printf("%s", rig.digest().c_str());
    if (violations != 0 || !engine_ok) return 1;
  }
  if (opt.csv) return 0;
  std::printf(
      "\nShape check vs paper: permanent pinning above pin-per-communication\n"
      "by ~5%% on the Xeon E5460 and up to ~20%% on the Opteron 265\n"
      "(--cpu=opteron265); I/OAT at or above the CPU-copy curves.\n");
  return 0;
}
