// Ablations for the design choices DESIGN.md calls out:
//  (1) driver-level overlap vs the MPICH-GM-style chunked registration
//      pipeline (paper §5);
//  (2) region-cache capacity vs application working set (LRU behaviour,
//      §3.2);
//  (3) kernel MMU-notifier invalidation vs user-space symbol interception:
//      hook overhead and the stale-translation hazard (§2.1/§5).
#include <cstdio>
#include <vector>

#include "baseline/pipelined.hpp"
#include "baseline/userspace_regcache.hpp"
#include "bench_util.hpp"
#include "workloads/imb.hpp"

namespace {

using namespace pinsim;

sim::Time chunked_transfer(const cpu::CpuModel& cpu, std::size_t len,
                           std::size_t chunk) {
  bench::Cluster c(cpu, core::regular_pinning_config(), 2, false);
  auto& pa = *c.comm->process(0).lib.endpoint().driver().endpoint(0);
  (void)pa;
  auto& sender = c.comm->process(0);
  auto& receiver = c.comm->process(1);
  const auto src = sender.heap.malloc(len);
  const auto dst = receiver.heap.malloc(len);
  sim::spawn(c.eng, [](core::Library& lib, core::EndpointAddr to,
                       mem::VirtAddr buf, std::size_t n,
                       std::size_t ch) -> sim::Task<> {
    (void)co_await baseline::chunked_send(lib, to, 500, buf, n, ch);
  }(sender.lib, receiver.addr(), src, len, chunk));
  sim::spawn(c.eng, [](core::Library& lib, mem::VirtAddr buf, std::size_t n,
                       std::size_t ch) -> sim::Task<> {
    (void)co_await baseline::chunked_recv(lib, 500, buf, n, ch);
  }(receiver.lib, dst, len, chunk));
  c.eng.run();
  c.eng.rethrow_task_failures();
  return c.eng.now();
}

sim::Time overlapped_transfer(const cpu::CpuModel& cpu, std::size_t len,
                              const std::string& trace_prefix =
                                  std::string()) {
  bench::Cluster c(cpu, core::overlapped_pinning_config(), 2, false);
  std::unique_ptr<bench::ObsRig> rig;
  if (!trace_prefix.empty()) {
    rig = std::make_unique<bench::ObsRig>(c, trace_prefix + ".trace.json");
  }
  auto& sender = c.comm->process(0);
  auto& receiver = c.comm->process(1);
  const auto src = sender.heap.malloc(len);
  const auto dst = receiver.heap.malloc(len);
  sim::spawn(c.eng, [](core::Library& lib, core::EndpointAddr to,
                       mem::VirtAddr buf, std::size_t n) -> sim::Task<> {
    (void)co_await lib.send(to, 500, buf, n);
  }(sender.lib, receiver.addr(), src, len));
  sim::spawn(c.eng, [](core::Library& lib, mem::VirtAddr buf,
                       std::size_t n) -> sim::Task<> {
    (void)co_await lib.recv(500, ~std::uint64_t{0}, buf, n);
  }(receiver.lib, dst, len));
  c.eng.run();
  c.eng.rethrow_task_failures();
  if (rig != nullptr) {
    const int violations = rig->finish();
    rig->write_report(trace_prefix + ".report.json");
    std::printf("   trace: %s.trace.json report: %s.report.json%s\n",
                trace_prefix.c_str(), trace_prefix.c_str(),
                violations == 0 ? "" : "  INVARIANT VIOLATIONS");
    std::printf("%s", rig->digest().c_str());
  }
  return c.eng.now();
}

void pipeline_ablation(const bench::Options& opt) {
  std::printf("-- (1) chunked registration pipeline vs driver overlap --\n");
  const std::size_t len = opt.quick ? 2 * 1024 * 1024 : 8 * 1024 * 1024;
  const sim::Time ours = overlapped_transfer(*opt.cpu, len, opt.trace_out);
  std::printf("   %zu MB transfer, driver-level overlap: %.1f us\n",
              len / (1024 * 1024), sim::to_usec(ours));
  std::printf("   %-14s %12s %12s\n", "chunk", "time us", "vs overlap");
  for (std::size_t chunk : {64 * 1024, 128 * 1024, 256 * 1024, 1024 * 1024}) {
    const sim::Time t = chunked_transfer(*opt.cpu, len, chunk);
    std::printf("   %-14s %12.1f %+11.1f%%\n",
                bench::human_size(chunk).c_str(), sim::to_usec(t),
                (static_cast<double>(t) / static_cast<double>(ours) - 1.0) *
                    100.0);
  }
  std::printf(
      "   (the pipeline pays per-chunk rendezvous handshakes and puts the\n"
      "    first chunk's pin on the critical path; §5)\n\n");
}

void cache_capacity_ablation(const bench::Options& opt) {
  std::printf("-- (2) region cache capacity vs working set --\n");
  std::printf("   %-10s %-12s %10s %10s %10s %12s\n", "capacity", "buffers",
              "hits", "misses", "evictions", "pingpong us");
  const std::size_t buffers = 4;  // working set: 4 send + 4 recv regions
  for (std::size_t capacity : {2ull, 4ull, 8ull, 16ull}) {
    core::StackConfig stack = core::pinning_cache_config();
    stack.cache.capacity = capacity;
    bench::Cluster c(*opt.cpu, stack, 2, false, 65536);
    workloads::ImbSuite::Config cfg;
    cfg.iterations = opt.quick ? 16 : 32;
    cfg.buffer_rotation = buffers;
    workloads::ImbSuite imb(*c.comm, cfg);
    const auto r = imb.pingpong(1024 * 1024);
    const auto& st = c.comm->process(0).lib.cache().stats();
    std::printf("   %-10zu %-12zu %10llu %10llu %10llu %12.1f\n", capacity,
                buffers, static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.evictions), r.avg_usec);
  }
  std::printf(
      "   (once the LRU capacity covers the working set the misses and\n"
      "    evictions stop and the cache behaves like permanent pinning)\n\n");
}

void interception_ablation() {
  std::printf("-- (3) kernel notifiers vs user-space symbol interception --\n");
  mem::PhysicalMemory pm(4096);
  mem::AddressSpace as(pm);
  mem::MallocSim heap(as);

  // Hook overhead: an allocation-churny application phase.
  {
    baseline::UserspaceRegCache cache(as);
    baseline::HookedHeap hooked(heap, cache, /*hooks_active=*/true);
    std::vector<mem::VirtAddr> ptrs;
    for (int i = 0; i < 10000; ++i) {
      const auto p = hooked.malloc(64 + (i % 32) * 16);
      if (i % 2 == 1) {
        hooked.free(p);  // short-lived temporary
      } else {
        ptrs.push_back(p);
      }
    }
    for (mem::VirtAddr p : ptrs) hooked.free(p);
    std::printf(
        "   interception hooks fired %llu times for 0 communication "
        "buffers\n   (kernel notifier invalidations for the same run: 0)\n",
        static_cast<unsigned long long>(cache.stats().hook_calls));
  }

  // Stale-translation hazard with interception unavailable.
  {
    baseline::UserspaceRegCache cache(as);
    baseline::HookedHeap unhooked(heap, cache, /*hooks_active=*/false);
    const auto p = unhooked.malloc(256 * 1024);
    std::vector<std::byte> gen1(8, std::byte{0x11});
    as.write(p, gen1);
    (void)cache.get(p, 256 * 1024);
    unhooked.free(p);
    const auto q = unhooked.malloc(256 * 1024);
    std::vector<std::byte> gen2(8, std::byte{0x22});
    as.write(q, gen2);
    auto frames = cache.get(q, 256 * 1024);
    std::vector<std::byte> wire(8);
    cache.dma_read(frames, 0, wire);
    const bool corrupted = wire != gen2;
    std::printf(
        "   static-link/custom-allocator scenario: transfer read %s data\n",
        corrupted ? "STALE (generation-1)" : "fresh");
    std::printf(
        "   (the MMU-notifier design cannot hit this: the kernel always\n"
        "    sees the munmap; see ProtocolTest.FreeDuringIdle... test)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header("Ablations: overlap vs chunked pipeline, cache "
                      "capacity, interception reliability",
                      "Goglin, CAC/IPDPS'09, §3.2, §5 discussion");
  pipeline_ablation(opt);
  cache_capacity_ablation(opt);
  interception_ablation();
  return 0;
}
