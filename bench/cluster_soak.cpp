// Cluster soak: the multi-tenant rack-scale acceptance bench. 16 hosts (two
// racks of 8 on a switched `net::Topology` with shared uplinks and bounded
// per-port egress queues) each run 16 tenant processes — 256 endpoints
// competing pairwise across racks, collapsing onto one incast hub, and
// finally soaking under composed frame loss, pin-denial pressure and
// process crash/restart cycles.
//
// What it proves, beyond the two-host soaks:
//  * congestion loss (bounded switch queues overflowing under incast) is
//    accounted separately from fault loss and the protocol recovers from
//    both;
//  * the per-host pin quota is arbitrated across tenants: the fair-share
//    floor and weighted LRU shedding keep pin denials from starving any
//    single process (reported as a Jain fairness index over per-tenant
//    completions and denials);
//  * the whole thing is deterministic at cluster scale: every stage runs
//    twice under one seed and the two JSON run reports (256 endpoint
//    sections plus the fairness digest) must compare byte-identical.
//
// Exits non-zero on payload corruption, invariant violations, a stalled
// pump, missing congestion/arbitration activity, or a determinism mismatch,
// so `cluster_soak --quick` doubles as a ctest entry and an ASan target;
// the full run (>= 1M messages) lives in the soak tier.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mem/pressure.hpp"
#include "net/fault.hpp"
#include "net/watchdog.hpp"
#include "sim/lifecycle.hpp"

namespace {

using namespace pinsim;

constexpr std::uint64_t kMasterSeed = 0xc1a5'7e25;

constexpr std::size_t kHosts = 16;          // two racks of 8
constexpr std::size_t kNodesPerRack = 8;
constexpr std::size_t kProcsPerHost = 16;   // 256 endpoints total
constexpr std::size_t kEndpoints = kHosts * kProcsPerHost;
constexpr std::size_t kEager = 2048;
constexpr std::size_t kRendezvous = 64 * 1024;  // 16 pages
constexpr std::size_t kPinQuota = 160;  // pages/host: 16 tenants must share

std::vector<std::byte> pattern(std::size_t n, std::uint32_t salt) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 2654435761u + salt) >> 13);
  }
  return v;
}

enum class Pattern { kUniform, kIncast };

struct Stage {
  const char* label;
  Pattern pattern;
  int rounds_full;
  int rounds_quick;
  std::size_t downlink_queue;
  net::FaultPlan faults;
  bool pressure = false;   // pin-denial pressure on one victim host
  bool lifecycle = false;  // seeded crash/restart of two tenant slots
};

std::vector<Stage> stages() {
  std::vector<Stage> out;
  out.push_back({"uniform pairwise, intra+cross rack", Pattern::kUniform,
                 1200, 50, 64, {}, false, false});
  // A shallow hub downlink queue so 240-into-1 must overflow it.
  out.push_back({"incast: 240 tenants into one hub", Pattern::kIncast,
                 500, 50, 16, {}, false, false});
  net::FaultPlan loss;
  loss.loss = 0.01;
  out.push_back({"composed: 1% loss + pressure + crash/restart",
                 Pattern::kUniform, 500, 40, 64, loss, true, true});
  return out;
}

/// Short protocol timers, a bounded retry budget and a contended pin quota:
/// a denial must resolve through the arbiter (or abort) well inside a pump
/// window, not after the paper's 1 s pessimistic timeout.
core::StackConfig soak_stack() {
  core::StackConfig stack = core::overlapped_cache_config();
  stack.protocol.retransmit_timeout = 300 * sim::kMicrosecond;
  stack.protocol.retransmit_backoff_max = 2 * sim::kMillisecond;
  stack.protocol.retry_budget = 12;
  stack.protocol.pull_retry_timeout = 300 * sim::kMicrosecond;
  // Abandoned pulls (sender aborted mid-rendezvous) must abort well inside
  // one pump stall window: 24 ticks x 300 us ~= 7 ms of silence.
  stack.protocol.pull_stall_budget = 24;
  stack.pinning.pin_retry_backoff = 30 * sim::kMicrosecond;
  stack.pinning.pin_retry_backoff_max = 1 * sim::kMillisecond;
  stack.pinning.pin_retry_budget = 16;
  return stack;
}

struct Flight {
  std::uint32_t sender = 0;   // endpoint index
  std::uint32_t receiver = 0;
  std::size_t size = 0;
  sim::Time posted = 0;
  bool counted = false;            // both requests posted successfully
  std::uint64_t s_epoch = 0;       // victim-slot crash epochs at post time:
  std::uint64_t r_epoch = 0;       // a bump means the owning library died
  mem::VirtAddr rcv{};
  core::RequestPtr send, recv;
  std::vector<std::byte> expect;
};

struct StageResult {
  int failures = 0;
  std::string report;  // byte-compared across the determinism pair
  std::uint64_t posted = 0;
  std::uint64_t ok_pairs = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t canceled = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t skipped_dead = 0;
  std::uint64_t congestion_dropped = 0;
  std::uint64_t fault_dropped = 0;
  std::uint64_t arb_requests = 0;
  std::uint64_t arb_grants = 0;
  std::uint64_t arb_sheds = 0;
  double jain_ok = 0.0;
  double p99_spread = 0.0;
};

double jain_index(const std::vector<std::uint64_t>& xs) {
  double sum = 0.0, sq = 0.0;
  for (std::uint64_t x : xs) {
    const double v = static_cast<double>(x);
    sum += v;
    sq += v * v;
  }
  if (sq == 0.0) return 1.0;  // nobody got anything: trivially fair
  return (sum * sum) / (static_cast<double>(xs.size()) * sq);
}

sim::Time p99_of(std::vector<sim::Time>& xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  return xs[(99 * (xs.size() - 1)) / 100];
}

StageResult run_stage(const Stage& st, const bench::Options& opt,
                      std::uint64_t seed, const std::string& tag) {
  StageResult res;

  net::Topology::Config tc;
  tc.nodes_per_rack = kNodesPerRack;
  tc.uplinks_per_rack = 2;
  tc.downlink_queue_frames = st.downlink_queue;
  tc.uplink_queue_frames = 128;
  tc.link.seed = seed ^ 0x70b0u;
  bench::Cluster cluster(*opt.cpu, soak_stack(), tc, kHosts,
                         /*cores=*/kProcsPerHost + 1,
                         /*memory_frames=*/4096);
  sim::Engine& eng = cluster.eng;

  // Tenants: 16 processes per host, all arbitrating one pin quota that is
  // far below their aggregate rendezvous working set (16 tenants * 32 pages
  // cached vs 160 allowed), so fair-share shedding must do real work.
  for (auto& h : cluster.hosts) {
    h->enable_pin_arbitration();
    h->memory().set_pin_quota(kPinQuota);
    for (std::size_t p = 0; p < kProcsPerHost; ++p) h->spawn_process();
  }
  const auto ep = [&cluster](std::size_t e) -> core::Host::Process& {
    return cluster.hosts[e / kProcsPerHost]->process(e % kProcsPerHost);
  };
  const auto ep_alive = [&cluster](std::size_t e) {
    return cluster.hosts[e / kProcsPerHost]->process_alive(e % kProcsPerHost);
  };

  // Per-endpoint persistent buffers (re-carved on restart: a killed
  // process's address space dies with it).
  struct EpBuf {
    mem::VirtAddr snd{}, rcv{};
  };
  std::vector<EpBuf> bufs(kEndpoints);
  const auto carve = [&](std::size_t e) {
    bufs[e].snd = ep(e).heap.malloc(kRendezvous);
    bufs[e].rcv = ep(e).heap.malloc(kRendezvous);
  };
  for (std::size_t e = 0; e < kEndpoints; ++e) carve(e);

  // Incast hub slots: one 2 kB landing buffer per remote sender.
  std::vector<mem::VirtAddr> hub_rcv;
  if (st.pattern == Pattern::kIncast) {
    for (std::size_t s = 0; s < kEndpoints - kProcsPerHost; ++s) {
      hub_rcv.push_back(ep(0).heap.malloc(kEager));
    }
  }

  // Node-liveness watchdogs on the hosts involved in the lifecycle stage
  // (victims' hosts and one observer per rack) — before the rig, so the
  // observability bus reaches their heartbeat traffic too.
  if (st.lifecycle) {
    const std::size_t pairs[2][2] = {{0, 1}, {8, 9}};
    for (const auto& pr : pairs) {
      for (int side = 0; side < 2; ++side) {
        net::Watchdog::Config wc;
        wc.seed = (seed ^ 0x4deadu) + pr[static_cast<std::size_t>(side)];
        core::Host& self = *cluster.hosts[pr[static_cast<std::size_t>(side)]];
        core::Host& peer =
            *cluster.hosts[pr[static_cast<std::size_t>(1 - side)]];
        self.enable_watchdog(wc).add_peer(peer.nic().node_id());
        self.watchdog()->start();
      }
    }
  }

  bench::ObsRig obs(cluster,
                    tag.empty() ? std::string() : tag + ".trace.json");
  cluster.fabric->faults().set_plan(st.faults);

  std::unique_ptr<mem::PressureInjector> pressure;
  if (st.pressure) {
    pressure = std::make_unique<mem::PressureInjector>(seed ^ 0x9e55u);
    mem::PressurePlan pp;
    pp.pin_fail = 0.03;
    pressure->set_plan(pp);
    pressure->set_bus(&obs.bus);
    cluster.hosts[1]->memory().set_pressure(pressure.get());
  }

  // Crash/restart two tenant slots, one per rack: (host 1, proc 0) and
  // (host 9, proc 0). Their buffers are re-carved on every restart, and a
  // per-victim crash epoch lets the pump recognize request handles whose
  // owning library died — those are dropped, not awaited (the dead
  // incarnation's unmatched requests never complete).
  std::array<std::uint64_t, 2> crash_epoch{0, 0};
  const auto victim_of = [](std::size_t e) -> int {
    if (e == 1 * kProcsPerHost) return 0;
    if (e == 9 * kProcsPerHost) return 1;
    return -1;
  };
  std::unique_ptr<sim::LifecycleInjector> inj;
  sim::LifecycleInjector::Plan lp;
  if (st.lifecycle) {
    lp.seed = seed;
    lp.victims = 2;
    lp.uptime_min = 150 * sim::kMicrosecond;
    lp.uptime_max = 500 * sim::kMicrosecond;
    lp.downtime_min = 60 * sim::kMicrosecond;
    lp.downtime_max = 200 * sim::kMicrosecond;
    lp.max_crashes = opt.quick ? 8 : 40;
    inj = std::make_unique<sim::LifecycleInjector>(eng, lp);
    sim::LifecycleInjector::Hooks hooks;
    const auto victim_host = [](std::size_t v) { return v == 0 ? 1u : 9u; };
    hooks.crash = [&cluster, &crash_epoch, victim_host](std::size_t v) {
      core::Host& h = *cluster.hosts[victim_host(v)];
      if (h.process_alive(0)) {
        ++crash_epoch[v];
        h.kill_process(0);
      }
    };
    hooks.restart = [&cluster, &carve, victim_host](std::size_t v) {
      const std::size_t hidx = victim_host(v);
      core::Host& h = *cluster.hosts[hidx];
      if (!h.process_alive(0)) {
        h.restart_process(0);
        carve(hidx * kProcsPerHost);
      }
    };
    inj->set_hooks(hooks);
    inj->start();
  }

  const sim::Time kSlice = 20 * sim::kMicrosecond;
  const sim::Time kStuck = 25 * sim::kMillisecond;
  const int rounds = opt.quick ? st.rounds_quick : st.rounds_full;

  std::vector<std::vector<sim::Time>> lat(kEndpoints);  // per-tenant
  std::vector<std::uint64_t> ok_by_ep(kEndpoints, 0);
  std::vector<Flight> flights;
  flights.reserve(kEndpoints);

  for (int r = 0; r < rounds && res.failures == 0; ++r) {
    flights.clear();
    const auto post_pair = [&](std::size_t se, std::size_t re,
                               std::size_t size, mem::VirtAddr rcv_buf) {
      Flight f;
      f.sender = static_cast<std::uint32_t>(se);
      f.receiver = static_cast<std::uint32_t>(re);
      f.size = size;
      f.posted = eng.now();
      f.rcv = rcv_buf;
      if (const int vs = victim_of(se); vs >= 0) {
        f.s_epoch = crash_epoch[static_cast<std::size_t>(vs)];
      }
      if (const int vr = victim_of(re); vr >= 0) {
        f.r_epoch = crash_epoch[static_cast<std::size_t>(vr)];
      }
      f.expect = pattern(size, static_cast<std::uint32_t>(r) * 65536u +
                                   static_cast<std::uint32_t>(se));
      const std::uint64_t match =
          (static_cast<std::uint64_t>(r) << 32) | se;
      try {
        ep(se).as.write(bufs[se].snd, f.expect);
        f.recv = ep(re).lib.irecv(match, ~0ull, rcv_buf, size);
        f.send = ep(se).lib.isend(ep(re).addr(), match, bufs[se].snd, size);
        f.counted = true;
        ++res.posted;
      } catch (const core::PeerDeadError&) {
        // Raced a death declaration: cancel whatever half-posted, but keep
        // the flight alive — the library references the request until its
        // (possibly deferred) completion, so the handle must survive until
        // the reap path sees it completed.
        ++res.skipped_dead;
        if (f.recv && !f.recv->completed()) ep(re).lib.cancel(*f.recv);
        if (!f.recv && !f.send) return;
      }
      flights.push_back(std::move(f));
    };

    if (st.pattern == Pattern::kUniform) {
      // Pair hosts by XOR mask, alternating intra-rack (^1, ^3) and
      // cross-rack (^8, ^11) rounds; process index is preserved, so every
      // endpoint sends one message and receives one message per round.
      static constexpr std::size_t kMasks[4] = {1, 8, 3, 11};
      const std::size_t hmask = kMasks[static_cast<std::size_t>(r) % 4];
      for (std::size_t e = 0; e < kEndpoints; ++e) {
        const std::size_t h = e / kProcsPerHost, p = e % kProcsPerHost;
        const std::size_t partner = (h ^ hmask) * kProcsPerHost + p;
        if (!ep_alive(e) || !ep_alive(partner)) {
          ++res.skipped_dead;
          continue;
        }
        const std::size_t size =
            ((static_cast<std::size_t>(r) + e) % 8 == 0) ? kRendezvous
                                                         : kEager;
        post_pair(e, partner, size, bufs[partner].rcv);
      }
    } else {
      // Everyone outside the hub's host blasts endpoint (host 0, proc 0).
      std::size_t slot = 0;
      for (std::size_t e = kProcsPerHost; e < kEndpoints; ++e, ++slot) {
        post_pair(e, 0, kEager, hub_rcv[slot]);
      }
    }

    // Drain the round: time-sliced windows until every request resolves.
    sim::Time stuck_at = eng.now() + kStuck;
    int cancel_passes = 0;
    while (true) {
      bool all_done = true;
      for (Flight& f : flights) {
        // Handles owned by a crashed incarnation are dead weight: the
        // library that created them is gone (crash_soak drops these the
        // same way).
        if (const int vs = victim_of(f.sender);
            vs >= 0 && f.send &&
            crash_epoch[static_cast<std::size_t>(vs)] != f.s_epoch) {
          f.send.reset();
        }
        if (const int vr = victim_of(f.receiver);
            vr >= 0 && f.recv &&
            crash_epoch[static_cast<std::size_t>(vr)] != f.r_epoch) {
          f.recv.reset();
        }
        if ((f.send && !f.send->completed()) ||
            (f.recv && !f.recv->completed())) {
          all_done = false;
        }
      }
      if (all_done) break;
      if (eng.now() > stuck_at) {
        if (++cancel_passes > 2) {
          std::printf("  FAIL: pump stalled in round %d at t=%llu\n", r,
                      static_cast<unsigned long long>(eng.now()));
          for (const Flight& f : flights) {
            const bool sp = f.send && !f.send->completed();
            const bool rp = f.recv && !f.recv->completed();
            if (sp || rp) {
              std::printf("    stuck %u->%u size=%zu pending:%s%s "
                          "alive(s=%d,r=%d)\n",
                          f.sender, f.receiver, f.size, sp ? " send" : "",
                          rp ? " recv" : "", ep_alive(f.sender) ? 1 : 0,
                          ep_alive(f.receiver) ? 1 : 0);
            }
          }
          ++res.failures;
          break;
        }
        // Reclaim whatever a dead peer or a loss burst orphaned.
        for (Flight& f : flights) {
          if (f.send && !f.send->completed() && ep_alive(f.sender) &&
              ep(f.sender).lib.cancel(*f.send)) {
            ++res.canceled;
          }
          if (f.recv && !f.recv->completed() && ep_alive(f.receiver) &&
              ep(f.receiver).lib.cancel(*f.recv)) {
            ++res.canceled;
          }
        }
        stuck_at = eng.now() + kStuck;
      }
      eng.run_until(eng.now() + kSlice);
    }
    if (res.failures != 0) break;

    for (Flight& f : flights) {
      if (!f.counted) continue;  // half-posted against a dead peer
      const bool sok = f.send && f.send->status().ok;
      const bool rok = f.recv && f.recv->status().ok;
      if (sok && rok) {
        ++res.ok_pairs;
        ++ok_by_ep[f.sender];
        lat[f.sender].push_back(eng.now() - f.posted);
      } else {
        ++res.failed_ops;  // expected under loss/crashes; never silent
      }
      if (rok && ep_alive(f.receiver)) {
        std::vector<std::byte> got(f.size);
        ep(f.receiver).as.read(f.rcv, got);
        if (std::memcmp(got.data(), f.expect.data(), f.size) != 0) {
          std::size_t first = 0;
          while (first < f.size && got[first] == f.expect[first]) ++first;
          std::printf("  CORRUPT: round=%d %u->%u size=%zu sok=%d "
                      "first_bad=%zu\n",
                      r, f.sender, f.receiver, f.size, sok ? 1 : 0, first);
          ++res.mismatches;
        }
      }
    }
  }

  // Let the lifecycle schedule finish so both victims end the stage alive
  // (the report section set must match across the determinism pair).
  if (inj) {
    const sim::Time drain_deadline = eng.now() + sim::kSecond;
    while (!(inj->stats().crashes >= lp.max_crashes && inj->quiescent()) &&
           eng.now() < drain_deadline) {
      eng.run_until(eng.now() + kSlice);
    }
    if (inj->stats().restarts != inj->stats().crashes) {
      std::printf("  FAIL: lifecycle schedule incomplete "
                  "(crashes=%llu restarts=%llu)\n",
                  static_cast<unsigned long long>(inj->stats().crashes),
                  static_cast<unsigned long long>(inj->stats().restarts));
      ++res.failures;
    }
  }

  if (!obs.check_engine()) {
    std::printf("  FAIL: engine self-check (see flight dump)\n");
    ++res.failures;
  }
  if (res.ok_pairs == 0) {
    std::printf("  FAIL: no exchange ever completed\n");
    ++res.failures;
  }
  if (res.mismatches != 0) {
    std::printf("  FAIL: %llu corrupted payload(s)\n",
                static_cast<unsigned long long>(res.mismatches));
    ++res.failures;
  }

  // Per-tenant fairness digest. Everything here is simulation-derived, so
  // it byte-compares across the determinism pair like the rest of the
  // report.
  std::vector<std::uint64_t> denied_by_ep(kEndpoints, 0);
  std::uint64_t floor_protected = 0;
  for (std::size_t e = 0; e < kEndpoints; ++e) {
    if (!ep_alive(e)) continue;
    const core::Counters& c = ep(e).lib.counters();
    denied_by_ep[e] = c.pins_denied;
    res.arb_requests += c.tenant_arb_requests;
    res.arb_grants += c.tenant_arb_grants;
    res.arb_sheds += c.tenant_sheds_suffered;
    floor_protected += c.tenant_floor_protected;
  }
  res.jain_ok = jain_index(ok_by_ep);
  const double jain_denied = jain_index(denied_by_ep);
  sim::Time p99_min = 0, p99_max = 0;
  for (std::size_t e = 0; e < kEndpoints; ++e) {
    if (lat[e].size() < 8) continue;  // too few samples to rank
    const sim::Time p = p99_of(lat[e]);
    if (p99_min == 0 || p < p99_min) p99_min = p;
    if (p > p99_max) p99_max = p;
  }
  res.p99_spread = p99_min > 0 ? static_cast<double>(p99_max) /
                                     static_cast<double>(p99_min)
                               : 1.0;
  res.congestion_dropped = cluster.topo->congestion_dropped();
  res.fault_dropped = cluster.topo->fault_dropped();

  if (pressure) {
    pressure->set_bus(nullptr);
    cluster.hosts[1]->memory().set_pressure(nullptr);
  }
  const int violations = obs.finish();
  if (violations != 0) {
    std::printf("  %d INVARIANT VIOLATION(S)\n", violations);
    res.failures += violations;
  }

  char digest[512];
  std::snprintf(
      digest, sizeof digest,
      "\"tenant_fairness\":{\"tenants\":%zu,\"jain_ok_pairs\":%.6f,"
      "\"jain_pin_denials\":%.6f,\"p99_spread_ratio\":%.6f,"
      "\"arb_requests\":%llu,\"arb_grants\":%llu,\"arb_sheds\":%llu,"
      "\"floor_protected\":%llu,\"fault_dropped\":%llu,"
      "\"congestion_dropped\":%llu},",
      kEndpoints, res.jain_ok, jain_denied, res.p99_spread,
      static_cast<unsigned long long>(res.arb_requests),
      static_cast<unsigned long long>(res.arb_grants),
      static_cast<unsigned long long>(res.arb_sheds),
      static_cast<unsigned long long>(floor_protected),
      static_cast<unsigned long long>(res.fault_dropped),
      static_cast<unsigned long long>(res.congestion_dropped));
  res.report = obs.json_report();
  res.report.insert(1, digest);
  if (!tag.empty()) {
    std::FILE* f = std::fopen((tag + ".report.json").c_str(), "w");
    if (f != nullptr) {
      std::fwrite(res.report.data(), 1, res.report.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
  return res;
}

void print_stage(const StageResult& r) {
  std::printf(
      "  traffic: posted=%llu ok=%llu failed=%llu canceled=%llu "
      "dead_skips=%llu -> %s\n"
      "  fabric:  congestion_dropped=%llu fault_dropped=%llu\n"
      "  tenants: arb_requests=%llu grants=%llu sheds=%llu "
      "jain_ok=%.4f p99_spread=%.2fx\n",
      static_cast<unsigned long long>(r.posted),
      static_cast<unsigned long long>(r.ok_pairs),
      static_cast<unsigned long long>(r.failed_ops),
      static_cast<unsigned long long>(r.canceled),
      static_cast<unsigned long long>(r.skipped_dead),
      r.mismatches == 0 ? "bit-exact" : "CORRUPTED",
      static_cast<unsigned long long>(r.congestion_dropped),
      static_cast<unsigned long long>(r.fault_dropped),
      static_cast<unsigned long long>(r.arb_requests),
      static_cast<unsigned long long>(r.arb_grants),
      static_cast<unsigned long long>(r.arb_sheds), r.jain_ok, r.p99_spread);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Cluster soak: rack-scale multi-tenant fabric with pin arbitration",
      "paper §5 scaled out: N nodes behind shared switch ports, per-host "
      "pin quotas arbitrated across tenant processes");

  int failures = 0;
  std::uint64_t total_posted = 0;
  std::uint64_t total_arb = 0;
  int sidx = 0;
  for (const Stage& st : stages()) {
    std::printf("stage: %s (%zu endpoints)\n", st.label, kEndpoints);
    const std::uint64_t seed =
        kMasterSeed + static_cast<std::uint64_t>(sidx) * 0x9e3779b9u;

    // Determinism pair: identical seed, no tracing (wall-clock metrics are
    // trace-only and would differ) — the reports must match byte for byte.
    StageResult a = run_stage(st, opt, seed, "");
    StageResult b = run_stage(st, opt, seed, "");
    print_stage(a);
    if (a.report != b.report) {
      std::printf("  FAIL: determinism mismatch (%zu vs %zu bytes)\n",
                  a.report.size(), b.report.size());
      ++failures;
    }
    failures += a.failures + b.failures;
    total_posted += a.posted + b.posted;
    total_arb += a.arb_requests;

    if (st.pattern == Pattern::kIncast && a.congestion_dropped == 0) {
      std::printf("  FAIL: incast never overflowed a switch queue — "
                  "congestion accounting untested\n");
      ++failures;
    }

    if (!opt.trace_out.empty()) {
      const std::string tag = opt.trace_out + "-s" + std::to_string(sidx);
      if (opt.quick) {
        // Instrumented third run: Chrome trace + archived report. Full-length
        // traces would be multi-GB, so the soak tier archives the untraced
        // report instead.
        StageResult c = run_stage(st, opt, seed, tag);
        failures += c.failures;
      } else {
        std::FILE* f = std::fopen((tag + ".report.json").c_str(), "w");
        if (f != nullptr) {
          std::fwrite(a.report.data(), 1, a.report.size(), f);
          std::fputc('\n', f);
          std::fclose(f);
        }
      }
    }
    ++sidx;
  }

  const std::uint64_t msg_floor = opt.quick ? 60'000 : 1'000'000;
  if (total_posted < msg_floor) {
    std::printf("\nFAIL: only %llu messages posted (acceptance needs >= "
                "%llu)\n",
                static_cast<unsigned long long>(total_posted),
                static_cast<unsigned long long>(msg_floor));
    ++failures;
  }
  if (total_arb == 0) {
    std::printf("\nFAIL: the pin arbiter never fired — the quota was never "
                "contended across tenants\n");
    ++failures;
  }

  if (failures != 0) {
    std::printf("\nFAIL: %d cluster-soak failure(s)\n", failures);
    return 1;
  }
  std::printf("\n%llu messages across %zu endpoints: reports byte-identical, "
              "congestion and fault loss attributed separately, pin quota "
              "arbitrated fairly\n",
              static_cast<unsigned long long>(total_posted), kEndpoints);
  return 0;
}
