// Table 1: base and per-page overhead of the Open-MX pinning+unpinning and
// the corresponding pinning throughput, for all four processors.
//
// Method matches how such numbers are measured on real hardware: time whole
// pin+unpin passes over regions of increasing page counts on an otherwise
// idle core, then least-squares fit cost(pages) = base + per_page * pages.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pin_manager.hpp"
#include "cpu/core.hpp"
#include "cpu/cpu_model.hpp"
#include "mem/physical_memory.hpp"
#include "obs/relay.hpp"
#include "sim/stats.hpp"

namespace {

using namespace pinsim;

struct Measured {
  double base_us = 0.0;
  double per_page_ns = 0.0;
  double gbps = 0.0;
};

/// A non-empty `trace_prefix` wires a hand-rolled obs rig (there is no
/// Cluster here — the bench drives a bare PinManager): Chrome trace of the
/// pin spans, metrics time series and invariant checking over the pin state
/// machine.
Measured measure(const cpu::CpuModel& model,
                 const std::string& trace_prefix = std::string()) {
  sim::Engine eng;
  mem::PhysicalMemory pm(40000);
  mem::AddressSpace as(pm);
  cpu::Core core(eng, "bench");
  core::Counters counters;
  core::PinningConfig cfg;  // on-demand, synchronous

  obs::Bus bus(eng);
  obs::InvariantChecker checker;
  obs::MetricsSampler metrics;
  std::unique_ptr<obs::ChromeTraceWriter> chrome;
  obs::Relay relay;
  if (!trace_prefix.empty()) {
    chrome = std::make_unique<obs::ChromeTraceWriter>(trace_prefix +
                                                      ".trace.json");
    bus.attach(&checker);
    bus.attach(&metrics);
    bus.attach(chrome.get());
    relay.set_bus(&bus);
  }

  core::PinManager mgr(eng, core, model, cfg, counters, &relay);

  std::vector<double> pages;
  std::vector<double> cost_ns;
  for (std::size_t npages : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u,
                             1024u, 2048u, 4096u, 8192u}) {
    const auto addr = as.mmap(npages * mem::kPageSize);
    core::Region region(1, as, {core::Segment{addr, npages * mem::kPageSize}});
    mgr.register_region(region);

    const sim::Time t0 = eng.now();
    bool pinned = false;
    mgr.ensure_pinned(region, [&](bool ok) { pinned = ok; });
    eng.run();
    mgr.unpin(region);
    eng.run();  // the unpin cost is charged asynchronously
    const sim::Time t1 = eng.now();
    if (!pinned) std::abort();

    pages.push_back(static_cast<double>(npages));
    cost_ns.push_back(static_cast<double>(t1 - t0));
    mgr.unregister_region(region);
    as.munmap(addr, npages * mem::kPageSize);
  }

  if (!trace_prefix.empty()) {
    bus.finalize();
    if (!checker.ok()) std::fprintf(stderr, "%s", checker.report().c_str());
    std::string report = "{\"metrics\":" + metrics.json();
    char tail[64];
    std::snprintf(tail, sizeof tail, ",\"invariant_violations\":%llu}\n",
                  static_cast<unsigned long long>(checker.violation_count()));
    report += tail;
    const std::string path = trace_prefix + ".report.json";
    if (std::FILE* f = std::fopen(path.c_str(), "w"); f != nullptr) {
      std::fwrite(report.data(), 1, report.size(), f);
      std::fclose(f);
    }
    std::printf("\ntrace: %s.trace.json report: %s.report.json%s\n",
                trace_prefix.c_str(), trace_prefix.c_str(),
                checker.ok() ? "" : "  INVARIANT VIOLATIONS");
  }

  const auto fit = sim::fit_line(pages, cost_ns);
  Measured m;
  m.base_us = fit.intercept / 1000.0;
  m.per_page_ns = fit.slope;
  m.gbps = static_cast<double>(mem::kPageSize) / fit.slope;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Table 1: Open-MX pin+unpin overhead per processor",
      "Goglin, CAC/IPDPS'09, Table 1 (base us, ns/page, pinning GB/s)");

  struct PaperRow {
    const char* name;
    double ghz, base_us, per_page_ns, gbps;
  };
  const PaperRow paper[] = {
      {"opteron265", 1.8, 4.2, 720, 5.5},
      {"opteron8347", 1.9, 2.2, 330, 12.0},
      {"xeon-e5435", 2.33, 2.3, 250, 16.0},
      {"xeon-e5460", 3.16, 1.3, 150, 26.5},
  };

  std::printf("%-12s %5s | %10s %12s %9s | %10s %12s %9s\n", "Processor",
              "GHz", "base us", "ns/page", "GB/s", "base us", "ns/page",
              "GB/s");
  std::printf("%-12s %5s | %33s | %33s\n", "", "", "----------- paper ------",
              "--------- measured -----");
  for (const auto& row : paper) {
    const auto& model = pinsim::cpu::cpu_model_by_name(row.name);
    const Measured m = measure(model);
    std::printf("%-12s %5.2f | %10.1f %12.0f %9.1f | %10.1f %12.0f %9.1f\n",
                row.name, row.ghz, row.base_us, row.per_page_ns, row.gbps,
                m.base_us, m.per_page_ns, m.gbps);
  }
  if (!opt.trace_out.empty()) {
    // Instrumented rerun on the configured CPU model: every pin/unpin pass
    // shows up as an async span in the Chrome trace, the pinned-page gauge
    // as a sawtooth in the metrics series.
    (void)measure(*opt.cpu, opt.trace_out);
  }
  std::printf(
      "\nNote: the GB/s column is the asymptotic per-page pinning rate\n"
      "(page size / ns-per-page); the paper's column amortizes some base\n"
      "cost, hence the few-percent offset.\n");
  return 0;
}
