#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/host.hpp"
#include "core/report.hpp"
#include "mpi/communicator.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "obs/bus.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/invariants.hpp"
#include "obs/latency.hpp"
#include "obs/lifecycle.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/engine.hpp"

namespace pinsim::bench {

/// A 2-host testbed like the paper's: two machines of the same CPU model on
/// a 10G Ethernet fabric, `nranks` processes spread round-robin.
struct Cluster {
  Cluster(const cpu::CpuModel& cpu, core::StackConfig stack, int nranks,
          bool with_ioat, std::size_t memory_frames = 32768) {
    fabric = std::make_unique<net::Fabric>(eng);
    core::Host::Config hc;
    hc.cpu = cpu;
    hc.with_ioat = with_ioat;
    hc.memory_frames = memory_frames;
    for (int h = 0; h < 2; ++h) {
      hc.name = h == 0 ? "hostA" : "hostB";
      hosts.push_back(std::make_unique<core::Host>(eng, *fabric, hc, stack));
    }
    if (nranks > 0) {
      std::vector<core::Host::Process*> procs;
      for (int r = 0; r < nranks; ++r) {
        procs.push_back(
            &hosts[static_cast<std::size_t>(r % 2)]->spawn_process());
      }
      comm = std::make_unique<mpi::Communicator>(procs);
    }
  }

  /// Cluster-scale variant: `num_hosts` machines on a rack `Topology`
  /// instead of the ideal two-host fabric. Processes are NOT spawned —
  /// cluster benches place tenants themselves. `cores` counts the worker
  /// cores (core 0 stays the interrupt core), so a host can run
  /// `cores - 1` processes off the interrupt path.
  Cluster(const cpu::CpuModel& cpu, core::StackConfig stack,
          net::Topology::Config tc, std::size_t num_hosts, std::size_t cores,
          std::size_t memory_frames) {
    auto t = std::make_unique<net::Topology>(eng, tc);
    topo = t.get();
    fabric = std::move(t);
    core::Host::Config hc;
    hc.cpu = cpu;
    hc.cores = cores;
    hc.memory_frames = memory_frames;
    for (std::size_t h = 0; h < num_hosts; ++h) {
      hc.name = "host" + std::to_string(h);
      hosts.push_back(std::make_unique<core::Host>(eng, *fabric, hc, stack));
    }
  }

  sim::Engine eng;
  std::unique_ptr<net::Fabric> fabric;
  net::Topology* topo = nullptr;  // non-null on the cluster-scale ctor
  std::vector<std::unique_ptr<core::Host>> hosts;
  std::unique_ptr<mpi::Communicator> comm;
};

/// Minimal CLI: --cpu=<model>, --quick and --csv are shared by all benches.
/// --trace-out=<prefix> turns on the observability rig: Chrome traces land
/// at <prefix>*.trace.json and the machine-readable run report at
/// <prefix>.report.json.
struct Options {
  const cpu::CpuModel* cpu = &cpu::xeon_e5460();
  bool quick = false;
  bool csv = false;  // machine-readable rows for plotting
  std::string trace_out;  // empty = observability rig off

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--cpu=", 0) == 0) {
        o.cpu = &cpu::cpu_model_by_name(arg.substr(6));
      } else if (arg == "--quick") {
        o.quick = true;
      } else if (arg == "--csv") {
        o.csv = true;
      } else if (arg.rfind("--trace-out=", 0) == 0) {
        o.trace_out = arg.substr(12);
      } else if (arg == "--help" || arg == "-h") {
        std::printf("options: --cpu=<%s> --quick --csv --trace-out=<prefix>\n",
                    [] {
                      std::string s;
                      for (const auto& m : cpu::all_cpu_models()) {
                        if (!s.empty()) s += "|";
                        s += m.name;
                      }
                      return s;
                    }()
                        .c_str());
        std::exit(0);
      }
    }
    return o;
  }
};

/// Observability rig for one Cluster run: invariant checker, latency
/// recorder, critical-path analyzer, metrics sampler and flight recorder
/// are always attached, and a dispatch profiler installs on the engine; a
/// Chrome-trace writer joins (and the profiler starts capturing wall-clock
/// self time) when `trace_path` is non-empty. Declare it AFTER the Cluster.
///
/// Teardown order: endpoints emit pin-unpin events from their destructors,
/// so the bus must outlive the hosts — `finish()` detaches everything first
/// and benches should call it before the Cluster dies; the destructor is
/// the backstop. Getting this wrong is no longer silent UB: the Bus
/// destructor aborts with a diagnostic while emitters are still registered
/// (obs/bus.hpp).
struct ObsRig {
  explicit ObsRig(Cluster& c, const std::string& trace_path = std::string())
      : cluster(&c),
        bus(c.eng),
        flight(flight_config(trace_path)),
        profiler(/*wall_clock=*/!trace_path.empty()) {
    bus.attach(&checker);
    bus.attach(&latency);
    bus.attach(&critical_path);
    bus.attach(&metrics);
    bus.attach(&lifecycle);
    bus.attach(&flight);
    // Post-mortem trigger: an invariant violation dumps the flight ring.
    checker.set_violation_hook([this](const obs::InvariantChecker::Violation&
                                          v) {
      flight.dump("invariant: " + v.message);
    });
    profiler.attach(c.eng);
    if (!trace_path.empty()) {
      chrome = std::make_unique<obs::ChromeTraceWriter>(trace_path);
      bus.attach(chrome.get());
      flame_path = flight_config(trace_path).dump_prefix + ".flame.json";
      // Wall-clock throughput is measured only on instrumented runs: the
      // determinism suite byte-compares json_report() output, and a wall
      // clock in that path would make the report machine-dependent.
      wall_metrics = true;
      // pinlint: allow(D1: wall-clock throughput metric, never in sim state)
      wall_start = std::chrono::steady_clock::now();
      events_start = c.eng.processed();
      sim_start = c.eng.now();
    }
    for (auto& h : c.hosts) {
      h->driver().set_bus(&bus);
      if (h->dma() != nullptr) {
        h->dma()->set_bus(&bus);
        h->dma()->set_identity(h->nic().node_id());
      }
    }
    c.fabric->faults().set_bus(&bus);
    c.fabric->set_bus(&bus);  // link up/down lifecycle events
  }

  ObsRig(const ObsRig&) = delete;
  ObsRig& operator=(const ObsRig&) = delete;

  ~ObsRig() {
    if (!finished) detach();
  }

  /// Flushes every sink (writing the Chrome trace if any), writes the flame
  /// profile on instrumented runs, prints the invariant report to stderr on
  /// failure and detaches from the cluster.
  /// Returns the number of invariant violations (0 = clean).
  int finish() {
    if (!finished) {
      bus.finalize();
      if (!checker.ok()) {
        std::fprintf(stderr, "%s", checker.report().c_str());
      }
      if (!flame_path.empty()) {
        profiler.write_speedscope(flame_path, flame_path);
      }
      detach();
      finished = true;
    }
    return static_cast<int>(checker.violation_count());
  }

  /// Engine sanity gate for bench end-of-run: runs Engine::self_check and,
  /// on failure, dumps the flight-recorder window and reports why. Returns
  /// true when the engine state is consistent.
  bool check_engine() {
    std::string why;
    if (cluster->eng.self_check(&why)) return true;
    std::fprintf(stderr, "engine self-check failed: %s\n", why.c_str());
    flight.dump("engine self-check: " + why);
    return false;
  }

  /// One JSON object for the whole run: per-endpoint protocol counters plus
  /// the latency/size histograms.
  [[nodiscard]] std::string json_report() {
    std::string out = "{\"endpoints\":[";
    bool first = true;
    for (auto& h : cluster->hosts) {
      for (std::size_t i = 0; i < h->process_count(); ++i) {
        if (!h->process_alive(i)) continue;  // killed, not yet restarted
        if (!first) out += ',';
        first = false;
        out += core::format_json_report(h->process(i), *h);
      }
    }
    out += "],\"histograms\":";
    out += latency.json();
    out += ",\"critical_path\":";
    out += critical_path.json();
    out += ",\"metrics\":";
    out += metrics.json();
    out += ",\"lifecycle\":";
    out += lifecycle.json();
    // Deterministic on untraced runs (dispatch counts, sim lag, ring
    // counters); wall-clock fields join only when wall_metrics is on.
    out += ",\"profile\":";
    out += profiler.json();
    out += ",\"flight\":";
    out += flight.json();
    if (wall_metrics) {
      // pinlint: allow(D1: wall-clock throughput metric, never in sim state)
      const auto now = std::chrono::steady_clock::now();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(now - wall_start).count();
      const auto events = cluster->eng.processed() - events_start;
      const auto sim_ns =
          static_cast<std::uint64_t>(cluster->eng.now() - sim_start);
      const double eps =
          wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms / 1000.0)
                        : 0.0;
      const double ns_per_ms =
          wall_ms > 0.0 ? static_cast<double>(sim_ns) / wall_ms : 0.0;
      char tp[256];
      std::snprintf(tp, sizeof tp,
                    ",\"throughput\":{\"events\":%llu,\"wall_ms\":%.3f,"
                    "\"events_per_sec\":%.1f,\"sim_ns_per_wall_ms\":%.1f}",
                    static_cast<unsigned long long>(events), wall_ms, eps,
                    ns_per_ms);
      out += tp;
    }
    char tail[64];
    std::snprintf(tail, sizeof tail, ",\"invariant_violations\":%llu}",
                  static_cast<unsigned long long>(checker.violation_count()));
    out += tail;
    return out;
  }

  /// Human-readable top-K slowest-message digest ("why was this slow").
  /// Meaningful after `finish()`; safe to print any time.
  [[nodiscard]] std::string digest() const { return critical_path.digest(); }

  /// Writes `json_report()` to `path`; returns false (with a warning) on
  /// I/O failure — a failed report dump must never fail the run.
  bool write_report(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write run report %s\n",
                   path.c_str());
      return false;
    }
    const std::string body = json_report();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

  Cluster* cluster;
  obs::Bus bus;
  obs::InvariantChecker checker;
  obs::LatencyRecorder latency;
  obs::CriticalPathAnalyzer critical_path;
  obs::MetricsSampler metrics;
  obs::LifecycleRecorder lifecycle;
  obs::FlightRecorder flight;
  obs::Profiler profiler;
  std::unique_ptr<obs::ChromeTraceWriter> chrome;
  std::string flame_path;  // written at finish() on instrumented runs
  bool finished = false;
  // Wall-clock throughput baseline (instrumented runs only, see ctor).
  bool wall_metrics = false;
  // pinlint: allow(D1: wall-clock throughput metric, never in sim state)
  std::chrono::steady_clock::time_point wall_start{};
  std::uint64_t events_start = 0;
  sim::Time sim_start = 0;

 private:
  /// Flight dumps land next to the Chrome trace: "<tag>.trace.json" yields
  /// "<tag>-<n>.flight.json"; untraced runs use the cwd "flight" prefix.
  static obs::FlightRecorder::Config flight_config(
      const std::string& trace_path) {
    obs::FlightRecorder::Config fc;
    if (!trace_path.empty()) {
      const std::string suffix = ".trace.json";
      fc.dump_prefix =
          trace_path.size() > suffix.size() &&
                  trace_path.compare(trace_path.size() - suffix.size(),
                                     suffix.size(), suffix) == 0
              ? trace_path.substr(0, trace_path.size() - suffix.size())
              : trace_path;
    }
    return fc;
  }

  void detach() {
    profiler.detach();
    checker.set_violation_hook(nullptr);
    for (auto& h : cluster->hosts) {
      h->driver().set_bus(nullptr);
      if (h->dma() != nullptr) h->dma()->set_bus(nullptr);
    }
    cluster->fabric->faults().set_bus(nullptr);
    cluster->fabric->set_bus(nullptr);
  }
};

/// Emits one CSV row (series name per column) for gnuplot/matplotlib.
inline void csv_row(std::size_t bytes, const std::vector<double>& values) {
  std::printf("%zu", bytes);
  for (double v : values) std::printf(",%.2f", v);
  std::printf("\n");
}

inline void csv_header(const char* first,
                       const std::vector<std::string>& series) {
  std::printf("%s", first);
  for (const auto& s : series) std::printf(",%s", s.c_str());
  std::printf("\n");
}

/// The message sizes of Figures 6-7 (64 kB .. 16 MB, the rendezvous regime).
inline std::vector<std::size_t> figure_sizes(bool quick) {
  if (quick) return {64 * 1024, 1024 * 1024, 16 * 1024 * 1024};
  return {64 * 1024,        128 * 1024,       256 * 1024,
          512 * 1024,       1024 * 1024,      2 * 1024 * 1024,
          4 * 1024 * 1024,  8 * 1024 * 1024,  16 * 1024 * 1024};
}

inline std::string human_size(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%zuMB", bytes / (1024 * 1024));
  } else {
    std::snprintf(buf, sizeof buf, "%zukB", bytes / 1024);
  }
  return buf;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("    reproduces: %s\n\n", paper_ref);
}

}  // namespace pinsim::bench
