// google-benchmark wall-clock microbenchmarks of the simulator's hot paths.
// These are not paper results; they keep the infrastructure honest (a
// simulated 16 MB PingPong sweep is only useful if the event loop and the
// memory paths are fast enough to run thousands of them).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/region.hpp"
#include "core/wire.hpp"
#include "mem/address_space.hpp"
#include "mem/physical_memory.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace {

using namespace pinsim;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  sim::Engine eng;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      eng.schedule_after(static_cast<sim::Time>(i % 7), [&sink] { ++sink; });
    }
    eng.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EngineScheduleDispatch);

/// Million-event scheduler torture: the timing-wheel acceptance workload.
/// Bursts of schedules over three horizons (most short like protocol RTOs,
/// some medium like retry backoffs, a few far like soak deadlines), ~30%
/// cancelled before firing, interleaved with bounded run_until windows —
/// the mix the endpoint tables generate at steady state. Throughput is
/// items/s over scheduled events.
void BM_EngineMillionEventTorture(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Rng rng(42);
    std::uint64_t fired = 0;
    std::vector<sim::Engine::EventId> batch;
    constexpr int kTotal = 1'000'000;
    int scheduled = 0;
    while (scheduled < kTotal) {
      batch.clear();
      for (int i = 0; i < 64 && scheduled < kTotal; ++i, ++scheduled) {
        const std::uint64_t pick = rng.next_below(100);
        sim::Time delay;
        if (pick < 70) {
          delay = 1 + static_cast<sim::Time>(rng.next_below(2000));
        } else if (pick < 95) {
          delay = 2000 + static_cast<sim::Time>(rng.next_below(198'000));
        } else {
          delay = static_cast<sim::Time>(rng.next_below(1'000'000'000));
        }
        batch.push_back(eng.schedule_after(delay, [&fired] { ++fired; }));
      }
      for (const auto& id : batch) {
        if (rng.next_below(100) < 30) eng.cancel(id);
      }
      eng.run_until(eng.now() + 5000);
    }
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_EngineMillionEventTorture)->Unit(benchmark::kMillisecond);

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::spawn(eng, [](sim::Engine& e) -> sim::Task<> {
      for (int i = 0; i < 512; ++i) co_await sim::delay(e, 10);
    }(eng));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_CoroutineDelayChain);

void BM_PageFaultAndWrite(benchmark::State& state) {
  mem::PhysicalMemory pm(80000);
  std::vector<std::byte> data(64 * 1024, std::byte{0x5a});
  for (auto _ : state) {
    mem::AddressSpace as(pm);
    const auto addr = as.mmap(64 * 1024);
    as.write(addr, data);
    benchmark::DoNotOptimize(as.resident_pages());
  }
  state.SetBytesProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_PageFaultAndWrite);

void BM_PinUnpinRange(benchmark::State& state) {
  mem::PhysicalMemory pm(80000);
  mem::AddressSpace as(pm);
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const auto addr = as.mmap(bytes);
  as.touch(addr, bytes);
  for (auto _ : state) {
    auto frames = as.pin_range(addr, bytes);
    mem::VirtAddr va = addr;
    for (auto f : frames) {
      as.unpin_page(va, f);
      va += mem::kPageSize;
    }
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_PinUnpinRange)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_RegionCopyInOut(benchmark::State& state) {
  mem::PhysicalMemory pm(80000);
  mem::AddressSpace as(pm);
  const std::size_t bytes = 256 * 1024;
  const auto addr = as.mmap(bytes);
  core::Region region(1, as, {core::Segment{addr, bytes}});
  std::vector<mem::FrameId> frames;
  for (std::size_t i = 0; i < region.page_count(); ++i) {
    frames.push_back(as.pin_page(region.page_va_at(i)));
  }
  region.commit_pins(frames);
  std::vector<std::byte> buf(8192, std::byte{0x11});
  for (auto _ : state) {
    for (std::size_t off = 0; off + buf.size() <= bytes; off += buf.size()) {
      benchmark::DoNotOptimize(region.copy_in(off, buf));
      benchmark::DoNotOptimize(region.copy_out(off, buf));
    }
  }
  state.SetBytesProcessed(state.iterations() * 2 * static_cast<int64_t>(bytes));
  for (auto& [va, f] : region.take_all_pins()) as.unpin_page(va, f);
}
BENCHMARK(BM_RegionCopyInOut);

void BM_WireEncodeDecode(benchmark::State& state) {
  core::Packet p;
  core::PullReplyBody body;
  body.handle = 7;
  body.offset = 123456;
  body.data.assign(8192, std::byte{0x42});
  p.body = std::move(body);
  for (auto _ : state) {
    auto wire = core::encode(p);
    auto q = core::decode(wire);
    benchmark::DoNotOptimize(q);
  }
  state.SetBytesProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_WireEncodeDecode);

/// With --trace-out=PREFIX, one instrumented simulated 1 MB rendezvous runs
/// after the wall-clock benchmarks so even this bench can emit a Chrome
/// trace and run report (exercising the same rig as the paper figures).
int instrumented_rendezvous(const std::string& prefix) {
  bench::Cluster c(cpu::xeon_e5460(), core::overlapped_pinning_config(), 2,
                   /*with_ioat=*/false);
  bench::ObsRig rig(c, prefix + ".trace.json");
  auto& sender = c.comm->process(0);
  auto& receiver = c.comm->process(1);
  const std::size_t len = 1024 * 1024;
  const auto src = sender.heap.malloc(len);
  const auto dst = receiver.heap.malloc(len);
  sim::spawn(c.eng, [](core::Library& lib, core::EndpointAddr to,
                       mem::VirtAddr buf, std::size_t n) -> sim::Task<> {
    (void)co_await lib.send(to, 500, buf, n);
  }(sender.lib, receiver.addr(), src, len));
  sim::spawn(c.eng, [](core::Library& lib, mem::VirtAddr buf,
                       std::size_t n) -> sim::Task<> {
    (void)co_await lib.recv(500, ~std::uint64_t{0}, buf, n);
  }(receiver.lib, dst, len));
  c.eng.run();
  c.eng.rethrow_task_failures();
  const bool engine_ok = rig.check_engine();
  const int violations = rig.finish();
  rig.write_report(prefix + ".report.json");
  std::printf("trace: %s.trace.json report: %s.report.json%s\n",
              prefix.c_str(), prefix.c_str(),
              violations == 0 ? "" : "  INVARIANT VIOLATIONS");
  std::printf("%s", rig.digest().c_str());
  return violations == 0 && engine_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --trace-out= before google-benchmark sees it (it rejects flags it
  // does not know).
  std::string trace_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_out.empty()) return instrumented_rendezvous(trace_out);
  return 0;
}
