// Figure 7: impact of overlapped pinning and pinning cache on IMB PingPong
// throughput — Regular / Overlapped / Pinning Cache / Overlapped Cache.
//
// The second table is the §4.2 discussion case: the application does NOT
// reuse its buffers (we rotate through several), so the cache cannot help
// and only overlapping hides the pinning cost.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workloads/imb.hpp"

namespace {

using namespace pinsim;

double pingpong_mibps(const cpu::CpuModel& cpu, core::StackConfig stack,
                      std::size_t bytes, int iters, std::size_t rotation) {
  bench::Cluster cluster(cpu, stack, /*nranks=*/2, /*ioat=*/false,
                         /*memory_frames=*/rotation > 1 ? 65536 : 32768);
  workloads::ImbSuite::Config cfg;
  cfg.iterations = iters;
  cfg.buffer_rotation = rotation;
  workloads::ImbSuite imb(*cluster.comm, cfg);
  return imb.pingpong(bytes).mib_per_sec;
}

struct Config {
  const char* label;
  core::StackConfig stack;
};

void sweep(const cpu::CpuModel& cpu, bool quick, std::size_t rotation,
           bool csv) {
  Config configs[] = {
      {"Regular", core::regular_pinning_config()},
      {"Overlapped", core::overlapped_pinning_config()},
      {"Cache", core::pinning_cache_config()},
      {"Overlap+Cache", core::overlapped_cache_config()},
      // §6 long-term idea (QsNet): no pinning at all, as an upper bound.
      {"NoPin-ideal", core::qsnet_ideal_config()},
  };
  if (rotation > 1) {
    // "No reuse": the buffer working set must exceed the cache, otherwise
    // the LRU still serves hits after the first round.
    for (auto& c : configs) c.stack.cache.capacity = rotation / 2;
  }
  const int iters = quick ? 4 : 10;
  if (csv) {
    bench::csv_header("bytes", {"regular", "overlapped", "cache",
                                "overlap_cache", "nopin_ideal"});
  } else {
    std::printf("%-8s", "size");
    for (const auto& c : configs) std::printf(" %14s", c.label);
    std::printf(" %12s %12s\n", "ovl/reg", "cache/reg");
  }
  for (std::size_t bytes : bench::figure_sizes(quick)) {
    std::vector<double> vals;
    for (const auto& c : configs) {
      vals.push_back(pingpong_mibps(cpu, c.stack, bytes, iters, rotation));
    }
    if (csv) {
      bench::csv_row(bytes, vals);
      continue;
    }
    std::printf("%-8s", bench::human_size(bytes).c_str());
    for (double v : vals) std::printf(" %14.1f", v);
    std::printf(" %11.1f%% %11.1f%%\n", (vals[1] / vals[0] - 1.0) * 100.0,
                (vals[2] / vals[0] - 1.0) * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Figure 7: overlapped pinning and pinning cache vs regular pinning",
      "Goglin, CAC/IPDPS'09, Fig. 7 (IMB PingPong MiB/s)");
  std::printf("cpu model: %s (%.2f GHz)\n", opt.cpu->name.c_str(),
              opt.cpu->ghz);

  std::printf("\n-- buffers reused every iteration (IMB default) --\n");
  sweep(*opt.cpu, opt.quick, /*rotation=*/1, opt.csv);

  std::printf(
      "\n-- no buffer reuse (rotating 4 buffers; cache cannot help, only\n"
      "   overlap hides the pinning --\n");
  sweep(*opt.cpu, opt.quick, /*rotation=*/4, opt.csv);

  if (!opt.trace_out.empty()) {
    // Instrumented rerun of Overlap+Cache at 1 MB with rotating buffers:
    // every pull races its pin job, so the Chrome trace shows the
    // overlap-miss retransmission chains the recipe in EXPERIMENTS.md walks.
    bench::Cluster cluster(*opt.cpu, core::overlapped_cache_config(),
                           /*nranks=*/2, /*with_ioat=*/false,
                           /*memory_frames=*/65536);
    bench::ObsRig rig(cluster, opt.trace_out + ".trace.json");
    workloads::ImbSuite::Config cfg;
    cfg.iterations = opt.quick ? 4 : 10;
    cfg.buffer_rotation = 4;
    workloads::ImbSuite imb(*cluster.comm, cfg);
    (void)imb.pingpong(1024 * 1024);
    const bool engine_ok = rig.check_engine();
    const int violations = rig.finish();
    rig.write_report(opt.trace_out + ".report.json");
    std::printf("\ntrace: %s.trace.json report: %s.report.json%s\n",
                opt.trace_out.c_str(), opt.trace_out.c_str(),
                violations == 0 ? "" : "  INVARIANT VIOLATIONS");
    std::printf("%s", rig.digest().c_str());
    if (violations != 0 || !engine_ok) return 1;
  }
  std::printf(
      "\nShape check vs paper: Cache and Overlap+Cache track permanent\n"
      "pinning; Overlapped alone recovers the same ~5%% (Xeon) that the\n"
      "cache does, and remains the only winner when buffers are not\n"
      "reused.\n");
  return 0;
}
