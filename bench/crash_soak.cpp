// Crash soak: SIGKILL-style process deaths mid-transfer, composed with frame
// loss, pin-denial pressure, link flaps and NIC resets — the lifecycle-fault
// acceptance bench. A survivor process exchanges eager- and rendezvous-sized
// messages with a victim that a seeded LifecycleInjector kills and restarts
// on engine timers; a pinned "bystander" process on the victim's host keeps
// the non-tenant pinned-page baseline nonzero so the kLifeCrash reclaim
// proof (pinned_after == baseline, checked by the invariant rig) actually
// bites. Node liveness runs through the watchdog/heartbeat layer: dead peers
// fail outstanding requests (Status::peer_dead), new sends fail fast with
// PeerDeadError, and restarted incarnations are fenced by epoch.
//
// The bench cannot use the coroutine Communicator — a coroutine blocked on a
// request owned by a killed process would never resume. Instead it pumps
// nonblocking Library requests from time-sliced run_until() windows, drops
// the victim-side request handles once the kill is observed (the library's
// liveness guard makes queued submissions no-ops), and cancels survivor-side
// requests that outlive the retry budget.
//
// Every stage runs twice under one master seed and the two JSON run reports
// must compare byte-identical — the determinism acceptance test. Exits
// non-zero on invariant violations, payload corruption, a stalled pump, or a
// determinism mismatch, so it doubles as a ctest entry (`crash_soak
// --quick`, >= 100 crash/restart cycles) and as an ASan+UBSan target.
#include <cstdio>
#include <cstring>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mem/pressure.hpp"
#include "net/fault.hpp"
#include "net/watchdog.hpp"
#include "obs/lifecycle.hpp"
#include "sim/lifecycle.hpp"

namespace {

using namespace pinsim;

constexpr std::uint64_t kMasterSeed = 0xc4a5'11fe;

std::vector<std::byte> pattern(std::size_t n, std::uint32_t salt) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 2654435761u + salt) >> 13);
  }
  return v;
}

struct Stage {
  const char* label;
  net::FaultPlan faults;
  bool pressure = false;       // pin-denial pressure on the victim's host
  double flap_prob = 0.0;      // per-crash chance to also flap a link
  double nic_reset_prob = 0.0; // per-crash chance to also reset a NIC
};

std::vector<Stage> stages() {
  std::vector<Stage> out;
  out.push_back({"crash/restart only", {}, false, 0.0, 0.0});

  net::FaultPlan loss;
  loss.loss = 0.02;
  out.push_back({"crashes + 2% frame loss", loss, false, 0.0, 0.0});

  net::FaultPlan thin;
  thin.loss = 0.01;
  out.push_back({"crashes + 1% loss + pin pressure", thin, true, 0.0, 0.0});

  out.push_back({"crashes + loss + pressure + flaps + NIC resets", thin, true,
                 0.35, 0.25});
  return out;
}

/// Short protocol timers and a small retry budget: a send into a dead peer
/// must resolve (peer_dead or retry_exhausted) well inside one victim
/// downtime window, not after the paper's 1 s pessimistic timeout.
core::StackConfig soak_stack() {
  core::StackConfig stack = core::overlapped_cache_config();
  stack.protocol.retransmit_timeout = 300 * sim::kMicrosecond;
  stack.protocol.retransmit_backoff_max = 2 * sim::kMillisecond;
  stack.protocol.retry_budget = 12;
  stack.protocol.pull_retry_timeout = 300 * sim::kMicrosecond;
  stack.pinning.pin_retry_backoff = 30 * sim::kMicrosecond;
  stack.pinning.pin_retry_backoff_max = 1 * sim::kMillisecond;
  stack.pinning.pin_retry_budget = 16;
  return stack;
}

/// One survivor<->victim exchange in flight. The victim-side handles are
/// dropped as soon as a kill is observed; the survivor-side handles live
/// until their requests complete (the endpoint still references them).
struct Flight {
  std::uint32_t cycle = 0;
  std::size_t size = 0;
  sim::Time posted = 0;
  std::size_t slot = 0;             // survivor buffer-ring index
  std::uint64_t born_restarts = 0;  // victim incarnation marker
  mem::VirtAddr v_src{}, v_dst{};   // victim buffers (freed if same life)
  core::RequestPtr s_send, s_recv;  // survivor side
  core::RequestPtr v_send, v_recv;  // victim side
  std::vector<std::byte> expect;    // victim->survivor payload
};

struct StageResult {
  int failures = 0;
  std::string report;  // byte-compared across the determinism pair
  sim::LifecycleInjector::Stats life;
  obs::LifecycleRecorder::Totals rec;
  net::Watchdog::Stats wd;
  std::uint64_t ok_pairs = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t peer_dead_fast = 0;  // PeerDeadError / dead-window skips
  std::uint64_t canceled = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t fenced = 0;
  std::uint64_t hb_timeouts = 0;
  std::uint64_t reclaimed = 0;
};

StageResult run_stage(const Stage& st, const bench::Options& opt,
                      std::size_t crash_target, std::uint64_t seed,
                      const std::string& tag) {
  StageResult res;
  bench::Cluster cluster(*opt.cpu, soak_stack(), /*nranks=*/0,
                         /*with_ioat=*/false);
  sim::Engine& eng = cluster.eng;
  core::Host& hostA = *cluster.hosts[0];
  core::Host& hostB = *cluster.hosts[1];
  core::Host::Process& surv = hostA.spawn_process();
  hostB.spawn_process();  // the victim: hostB process slot 0
  core::Host::Process& byst = hostB.spawn_process();

  // Watchdogs before the rig so ObsRig's set_bus reaches them too.
  net::Watchdog::Config wc;
  wc.seed = seed ^ 0x4dead;
  hostA.enable_watchdog(wc).add_peer(hostB.nic().node_id());
  wc.seed = (seed ^ 0x4dead) + 1;
  hostB.enable_watchdog(wc).add_peer(hostA.nic().node_id());
  hostA.watchdog()->start();
  hostB.watchdog()->start();

  bench::ObsRig obs(cluster, tag.empty() ? std::string() : tag + ".trace.json");
  cluster.fabric->faults().set_plan(st.faults);

  std::unique_ptr<mem::PressureInjector> pressure;
  if (st.pressure) {
    pressure = std::make_unique<mem::PressureInjector>(seed ^ 0x9e55);
    mem::PressurePlan pp;
    pp.pin_fail = 0.05;
    pressure->set_plan(pp);
    pressure->set_bus(&obs.bus);
    hostB.memory().set_pressure(pressure.get());
  }

  const sim::Time kSlice = 20 * sim::kMicrosecond;

  // Bystander warm-up: one rendezvous send leaves its region pinned in the
  // bystander's cache, so the victim host's non-tenant baseline is nonzero
  // and the per-crash reclaim proof cannot pass vacuously.
  {
    const std::size_t n = 256 * 1024;
    const mem::VirtAddr src = byst.heap.malloc(n);
    const mem::VirtAddr dst = surv.heap.malloc(n);
    byst.as.write(src, pattern(n, 0xb57));
    core::RequestPtr r = surv.lib.irecv(0xb00, ~0ull, dst, n);
    core::RequestPtr s = byst.lib.isend(surv.addr(), 0xb00, src, n);
    const sim::Time warm_deadline = eng.now() + 100 * sim::kMillisecond;
    while (!(r->completed() && s->completed()) && eng.now() < warm_deadline) {
      eng.run_until(eng.now() + kSlice);
    }
    if (!r->completed() || !s->completed() || !r->status().ok ||
        !s->status().ok) {
      std::printf("  FAIL: bystander warm-up did not complete\n");
      ++res.failures;
    }
  }

  sim::LifecycleInjector::Plan lp;
  lp.seed = seed;
  lp.victims = 1;
  lp.uptime_min = 150 * sim::kMicrosecond;
  lp.uptime_max = 500 * sim::kMicrosecond;
  lp.downtime_min = 60 * sim::kMicrosecond;   // > one pump slice, so every
  lp.downtime_max = 200 * sim::kMicrosecond;  // death window is observed
  lp.ports = (st.flap_prob > 0.0 || st.nic_reset_prob > 0.0) ? 2 : 0;
  lp.flap_prob = st.flap_prob;
  lp.flap_min = 30 * sim::kMicrosecond;
  lp.flap_max = 120 * sim::kMicrosecond;
  lp.nic_reset_prob = st.nic_reset_prob;
  lp.max_crashes = crash_target;
  sim::LifecycleInjector inj(eng, lp);
  sim::LifecycleInjector::Hooks hooks;
  hooks.crash = [&hostB](std::size_t) {
    if (hostB.process_alive(0)) hostB.kill_process(0);
  };
  hooks.restart = [&hostB](std::size_t) {
    if (!hostB.process_alive(0)) hostB.restart_process(0);
  };
  hooks.link = [&cluster](std::size_t port, bool up) {
    cluster.fabric->set_port_up(static_cast<net::NodeId>(port), up);
  };
  hooks.nic_reset = [&cluster](std::size_t port) {
    cluster.hosts[port]->nic().reset();
  };
  inj.set_hooks(hooks);
  inj.start();

  // Survivor buffer ring: bounded, reused, so a 100-crash soak does not grow
  // the survivor's address space without bound.
  constexpr std::size_t kWindow = 4;
  const std::size_t kMaxMsg = 96 * 1024;
  struct SlotBuf {
    mem::VirtAddr snd{}, rcv{};
    bool busy = false;
  };
  std::vector<SlotBuf> bufs(kWindow);
  for (SlotBuf& b : bufs) {
    b.snd = surv.heap.malloc(kMaxMsg);
    b.rcv = surv.heap.malloc(kMaxMsg);
  }

  const sim::Time kStuck = 3 * sim::kMillisecond;
  const sim::Time deadline = eng.now() + 5 * sim::kSecond;
  std::list<Flight> flights;
  std::uint32_t cycle = 0;

  while (true) {
    const bool done_injecting =
        inj.stats().crashes >= lp.max_crashes && inj.quiescent();
    if (done_injecting && flights.empty()) break;
    if (eng.now() > deadline) {
      std::printf("  FAIL: pump stalled (%zu flight(s) stuck at t=%llu)\n",
                  flights.size(), static_cast<unsigned long long>(eng.now()));
      ++res.failures;
      break;
    }
    eng.run_until(eng.now() + kSlice);

    const bool victim_alive = hostB.process_alive(0);
    if (!victim_alive) {
      // Kill observed: the dead incarnation's requests were either completed
      // by fail_all_inflight or will never run (library liveness guard), so
      // the handles can be dropped without waiting.
      for (Flight& f : flights) {
        f.v_send.reset();
        f.v_recv.reset();
      }
    }

    for (auto it = flights.begin(); it != flights.end();) {
      Flight& f = *it;
      if (f.v_send && f.v_send->completed()) f.v_send.reset();
      if (f.v_recv && f.v_recv->completed()) f.v_recv.reset();
      const bool ssd = !f.s_send || f.s_send->completed();
      const bool srd = !f.s_recv || f.s_recv->completed();
      if (!ssd || !srd || f.v_send || f.v_recv) {
        // A request whose counterpart died unmatched (or a send stuck behind
        // a dead peer's retry ladder) is reclaimed through the public cancel
        // path — on either side: a victim recv can outlive a survivor send
        // that exhausted its retries during a loss burst.
        if (eng.now() - f.posted > kStuck) {
          if (!ssd && surv.lib.cancel(*f.s_send)) ++res.canceled;
          if (!srd && surv.lib.cancel(*f.s_recv)) ++res.canceled;
          if (victim_alive) {
            core::Host::Process& vict = hostB.process(0);
            if (f.v_send && vict.lib.cancel(*f.v_send)) ++res.canceled;
            if (f.v_recv && vict.lib.cancel(*f.v_recv)) ++res.canceled;
          }
          f.posted = eng.now();  // re-arm instead of spamming cancels
        }
        ++it;
        continue;
      }
      const bool sok = f.s_send && f.s_send->status().ok;
      const bool rok = f.s_recv && f.s_recv->status().ok;
      if (sok && rok) {
        ++res.ok_pairs;
      } else {
        ++res.failed_ops;  // expected under crashes; never silent
      }
      if (rok) {
        std::vector<std::byte> got(f.size);
        surv.as.read(bufs[f.slot].rcv, got);
        if (std::memcmp(got.data(), f.expect.data(), f.size) != 0) {
          ++res.mismatches;
        }
      }
      if (victim_alive && inj.stats().restarts == f.born_restarts) {
        core::Host::Process& vict = hostB.process(0);
        vict.heap.free(f.v_src);
        vict.heap.free(f.v_dst);
      }
      bufs[f.slot].busy = false;
      it = flights.erase(it);
    }

    if (done_injecting || !victim_alive || flights.size() >= kWindow) continue;
    // The watchdog already declared one side dead: a post now would just
    // fail fast, so count the dead window and wait for revival.
    if (hostA.driver().peer_dead(hostB.nic().node_id()) ||
        hostB.driver().peer_dead(hostA.nic().node_id())) {
      ++res.peer_dead_fast;
      continue;
    }
    std::size_t slot = kWindow;
    for (std::size_t s = 0; s < kWindow; ++s) {
      if (!bufs[s].busy) {
        slot = s;
        break;
      }
    }
    if (slot == kWindow) continue;

    core::Host::Process& vict = hostB.process(0);
    Flight f;
    f.cycle = cycle;
    f.size = (cycle % 2 == 0) ? 2048 : kMaxMsg;  // eager / rendezvous mix
    f.posted = eng.now();
    f.slot = slot;
    f.born_restarts = inj.stats().restarts;
    f.expect = pattern(f.size, cycle * 2 + 1);
    const std::uint64_t a_match = 0x0100'0000'0000ull | cycle;  // surv->vict
    const std::uint64_t b_match = 0x0200'0000'0000ull | cycle;  // vict->surv
    bufs[slot].busy = true;
    try {
      f.v_dst = vict.heap.malloc(f.size);
      f.v_src = vict.heap.malloc(f.size);
      vict.as.write(f.v_src, f.expect);
      f.v_recv = vict.lib.irecv(a_match, ~0ull, f.v_dst, f.size);
      f.v_send = vict.lib.isend(surv.addr(), b_match, f.v_src, f.size);
      surv.as.write(bufs[slot].snd, pattern(f.size, cycle * 2));
      f.s_recv = surv.lib.irecv(b_match, ~0ull, bufs[slot].rcv, f.size);
      f.s_send = surv.lib.isend(vict.addr(), a_match, bufs[slot].snd, f.size);
    } catch (const core::PeerDeadError&) {
      // Raced a death declaration inside this slice: whatever half-posted
      // is canceled and the flight drains through the normal reap path.
      ++res.peer_dead_fast;
      if (f.v_recv && !f.v_recv->completed()) vict.lib.cancel(*f.v_recv);
      if (f.v_send && !f.v_send->completed()) vict.lib.cancel(*f.v_send);
      if (f.s_recv && !f.s_recv->completed()) surv.lib.cancel(*f.s_recv);
    }
    flights.push_back(std::move(f));
    ++cycle;
  }

  // Stage boundary: the engine's own structural invariants must hold after
  // hundreds of kill/restart/flap events. A failure dumps the flight
  // recorder's window for the post-mortem.
  if (!obs.check_engine()) {
    std::printf("  FAIL: engine self-check (see flight dump)\n");
    ++res.failures;
  }

  if (inj.stats().crashes != crash_target ||
      inj.stats().restarts != inj.stats().crashes) {
    std::printf("  FAIL: lifecycle schedule incomplete (crashes=%llu "
                "restarts=%llu target=%zu)\n",
                static_cast<unsigned long long>(inj.stats().crashes),
                static_cast<unsigned long long>(inj.stats().restarts),
                crash_target);
    ++res.failures;
  }
  if (res.ok_pairs == 0) {
    std::printf("  FAIL: no exchange ever completed between crashes\n");
    ++res.failures;
  }
  if (res.mismatches != 0) {
    std::printf("  FAIL: %llu corrupted payload(s)\n",
                static_cast<unsigned long long>(res.mismatches));
    ++res.failures;
  }

  res.life = inj.stats();
  res.wd = hostA.watchdog()->stats();
  const core::Counters& sc = surv.lib.counters();
  res.fenced = sc.fenced_stale_frames;
  res.hb_timeouts = sc.heartbeat_timeouts;
  if (hostB.process_alive(0)) {
    const core::Counters& vc = hostB.process(0).lib.counters();
    res.fenced += vc.fenced_stale_frames;
    res.reclaimed = vc.lifecycle_reclaimed_pages;
    if (vc.lifecycle_crashes != res.life.crashes ||
        vc.lifecycle_restarts != res.life.restarts) {
      std::printf("  FAIL: slot lifecycle counters diverge from the injector "
                  "(crashes %llu!=%llu or restarts %llu!=%llu)\n",
                  static_cast<unsigned long long>(vc.lifecycle_crashes),
                  static_cast<unsigned long long>(res.life.crashes),
                  static_cast<unsigned long long>(vc.lifecycle_restarts),
                  static_cast<unsigned long long>(res.life.restarts));
      ++res.failures;
    }
  }

  if (pressure) {
    pressure->set_bus(nullptr);
    hostB.memory().set_pressure(nullptr);
  }
  res.rec = obs.lifecycle.totals();
  const int violations = obs.finish();
  if (violations != 0) {
    std::printf("  %d INVARIANT VIOLATION(S)\n", violations);
    res.failures += violations;
  }
  res.report = obs.json_report();
  if (!tag.empty()) obs.write_report(tag + ".report.json");
  return res;
}

void print_stage(const StageResult& r) {
  std::printf(
      "  lifecycle: crashes=%llu restarts=%llu flaps=%llu nic_resets=%llu "
      "reclaimed_pages=%llu\n"
      "  watchdog:  deaths=%llu revivals=%llu beats=%llu/%llu  fenced=%llu "
      "hb_timeouts=%llu\n"
      "  traffic:   ok_pairs=%llu failed=%llu dead_windows=%llu "
      "canceled=%llu  -> %s\n",
      static_cast<unsigned long long>(r.life.crashes),
      static_cast<unsigned long long>(r.life.restarts),
      static_cast<unsigned long long>(r.life.flaps),
      static_cast<unsigned long long>(r.life.nic_resets),
      static_cast<unsigned long long>(r.rec.reclaimed_pages),
      static_cast<unsigned long long>(r.wd.deaths),
      static_cast<unsigned long long>(r.wd.revivals),
      static_cast<unsigned long long>(r.wd.beats_heard),
      static_cast<unsigned long long>(r.wd.beats_sent),
      static_cast<unsigned long long>(r.fenced),
      static_cast<unsigned long long>(r.hb_timeouts),
      static_cast<unsigned long long>(r.ok_pairs),
      static_cast<unsigned long long>(r.failed_ops),
      static_cast<unsigned long long>(r.peer_dead_fast),
      static_cast<unsigned long long>(r.canceled),
      r.mismatches == 0 ? "bit-exact" : "CORRUPTED");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::print_header(
      "Crash soak: kill/restart lifecycle faults with pin-state recovery",
      "paper §3.2 MMU-notifier teardown as the recovery path for a dying "
      "process, plus watchdog liveness and epoch fencing");

  // >= 100 seeded crash/restart cycles even in quick mode, spread over the
  // four compositions.
  const std::size_t crash_target = opt.quick ? 30 : 100;

  int failures = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t total_reclaimed = 0;
  int sidx = 0;
  for (const Stage& st : stages()) {
    std::printf("stage: %s\n", st.label);
    const std::uint64_t seed =
        kMasterSeed + static_cast<std::uint64_t>(sidx) * 0x9e3779b9u;

    // Determinism pair: identical seed, no tracing (wall-clock metrics are
    // trace-only and would differ) — the reports must match byte for byte.
    StageResult a = run_stage(st, opt, crash_target, seed, "");
    StageResult b = run_stage(st, opt, crash_target, seed, "");
    print_stage(a);
    if (a.report != b.report) {
      std::printf("  FAIL: determinism mismatch (%zu vs %zu bytes)\n",
                  a.report.size(), b.report.size());
      ++failures;
    }
    failures += a.failures + b.failures;
    total_crashes += a.life.crashes;
    total_reclaimed += a.rec.reclaimed_pages;

    // Optional third, instrumented run: Chrome trace + report archive.
    if (!opt.trace_out.empty()) {
      const std::string tag = opt.trace_out + "-s" + std::to_string(sidx);
      StageResult c = run_stage(st, opt, crash_target, seed, tag);
      failures += c.failures;
    }
    ++sidx;
  }

  if (total_crashes < 100) {
    std::printf("\nFAIL: only %llu crash cycles (acceptance needs >= 100)\n",
                static_cast<unsigned long long>(total_crashes));
    ++failures;
  }
  if (total_reclaimed == 0) {
    std::printf("\nFAIL: no pinned page was ever reclaimed by a crash — the "
                "soak never killed a process mid-transfer\n");
    ++failures;
  }

  if (failures != 0) {
    std::printf("\nFAIL: %d lifecycle failure(s)\n", failures);
    return 1;
  }
  std::printf("\n%llu crash cycles: reports byte-identical, every pinned page "
              "reclaimed, no invariant violations\n",
              static_cast<unsigned long long>(total_crashes));
  return 0;
}
