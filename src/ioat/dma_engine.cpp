#include "ioat/dma_engine.hpp"

#include <stdexcept>
#include <utility>

namespace pinsim::ioat {

DmaEngine::DmaEngine(sim::Engine& eng, Config cfg) : eng_(eng), cfg_(cfg) {
  if (cfg_.bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("DMA bandwidth must be positive");
  }
}

sim::Time DmaEngine::transfer_time(std::size_t bytes) const noexcept {
  const double bytes_per_ns = cfg_.bandwidth_gbps;  // GB/s == bytes/ns
  return cfg_.setup_cost +
         static_cast<sim::Time>(static_cast<double>(bytes) / bytes_per_ns +
                                0.5);
}

bool DmaEngine::copy(std::size_t bytes, sim::UniqueFunction perform,
                     sim::UniqueFunction done) {
  if (queue_.size() >= cfg_.max_queue) {
    ++stats_.rejected;
    return false;
  }
  queue_.push_back(Request{bytes, std::move(perform), std::move(done)});
  if (!busy_) pump();
  return true;
}

void DmaEngine::pump() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request req = std::move(queue_.front());
  queue_.pop_front();
  const sim::Time t = transfer_time(req.bytes);
  stats_.busy += t;
  ++stats_.copies;
  stats_.bytes += req.bytes;
  eng_.schedule_after(
      t,
      // pinlint: allow(D7: the DMA engine is host hardware owned by Driver
      // for the life of the engine; completions land on live channel state)
      [this, r = std::move(req)]() mutable {
        if (r.perform) r.perform();
        if (relay_.active()) {
          obs::Event e;
          e.kind = obs::EventKind::kDmaCopy;
          e.node = node_;
          e.len = r.bytes;
          relay_.emit(e);
        }
        if (r.done) r.done();
        pump();
      },
      {"ioat", "dma_done"});
}

}  // namespace pinsim::ioat
