#pragma once

#include <cstdint>
#include <deque>

#include "obs/event.hpp"
#include "obs/relay.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace pinsim::ioat {

/// Intel I/OAT DMA copy engine analogue (Grover & Leech, the copy-offload
/// hardware Open-MX uses on the receive path).
///
/// One channel: copy requests queue and execute back to back, each costing a
/// fixed descriptor setup plus bytes/bandwidth. The crucial property the
/// paper exploits is that the *CPU* is free while a copy is in flight —
/// callers only charge the small submit cost to their core and get a
/// completion callback here. The actual byte movement is performed by the
/// `perform` closure at completion time, so data lands exactly when the
/// simulated hardware would have written it.
class DmaEngine {
 public:
  struct Config {
    double bandwidth_gbps = 3.2;            // sustained copy bandwidth
    sim::Time setup_cost = 300;             // descriptor write, per request
    std::size_t max_queue = 4096;           // outstanding descriptors
  };

  struct Stats {
    std::uint64_t copies = 0;
    std::uint64_t bytes = 0;
    std::uint64_t rejected = 0;  // queue overflow
    sim::Time busy = 0;
  };

  DmaEngine(sim::Engine& eng, Config cfg);
  explicit DmaEngine(sim::Engine& eng) : DmaEngine(eng, Config()) {}

  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  /// Queues a copy of `bytes`. When the channel reaches it and the transfer
  /// time elapses, `perform` runs (move the real bytes there), then `done`.
  /// Returns false and drops the request if the descriptor ring is full —
  /// callers fall back to a CPU copy.
  bool copy(std::size_t bytes, sim::UniqueFunction perform,
            sim::UniqueFunction done);

  /// Attaches a typed event bus; completed copies are emitted as kDmaCopy.
  void set_bus(obs::Bus* bus) noexcept { relay_.set_bus(bus); }

  /// Node this engine belongs to, stamped on emitted events.
  void set_identity(std::uint32_t node) noexcept { node_ = node; }

  [[nodiscard]] bool idle() const noexcept { return !busy_ && queue_.empty(); }
  [[nodiscard]] bool full() const noexcept {
    return queue_.size() >= cfg_.max_queue;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::Time transfer_time(std::size_t bytes) const noexcept;

 private:
  struct Request {
    std::size_t bytes;
    sim::UniqueFunction perform;
    sim::UniqueFunction done;
  };

  void pump();

  sim::Engine& eng_;
  Config cfg_;
  std::deque<Request> queue_;
  bool busy_ = false;
  Stats stats_;
  obs::Relay relay_;
  std::uint32_t node_ = 0;
};

}  // namespace pinsim::ioat
