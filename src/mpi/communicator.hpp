#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/host.hpp"
#include "core/library.hpp"
#include "mpi/datatypes.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace pinsim::mpi {

/// A minimal MPI over the Open-MX stack: blocking/nonblocking point-to-point
/// and the seven collectives the paper's Table 2 evaluates, implemented with
/// the standard algorithms Open MPI's basic/tuned modules used at the time
/// (binomial broadcast/reduce, recursive-doubling allreduce, ring
/// allgatherv, recursive-halving reduce-scatter).
///
/// Every rank runs as a coroutine; operations take the caller's rank
/// explicitly (there is no thread-local rank in a discrete-event world).
class Communicator {
 public:
  explicit Communicator(std::vector<core::Host::Process*> ranks);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] core::Host::Process& process(int rank) {
    return *ranks_.at(static_cast<std::size_t>(rank));
  }

  // --- point to point --------------------------------------------------------

  [[nodiscard]] core::RequestPtr isend(int me, int dest, int tag,
                                       mem::VirtAddr buf, std::size_t len);
  [[nodiscard]] core::RequestPtr irecv(int me, int src, int tag,
                                       mem::VirtAddr buf, std::size_t len);

  [[nodiscard]] sim::Task<core::Status> send(int me, int dest, int tag,
                                             mem::VirtAddr buf,
                                             std::size_t len);
  [[nodiscard]] sim::Task<core::Status> recv(int me, int src, int tag,
                                             mem::VirtAddr buf,
                                             std::size_t len);

  /// Simultaneous send+recv (the IMB SendRecv/Exchange building block).
  [[nodiscard]] sim::Task<> sendrecv(int me, int dest, mem::VirtAddr sendbuf,
                                     std::size_t sendlen, int src,
                                     mem::VirtAddr recvbuf,
                                     std::size_t recvlen, int tag);

  /// Waits for a set of requests (MPI_Waitall).
  [[nodiscard]] static sim::Task<> wait_all(
      std::vector<core::RequestPtr> reqs);

  // --- collectives -----------------------------------------------------------
  // All ranks must call each collective in the same order (MPI semantics);
  // an internal per-rank sequence number keeps successive collectives from
  // matching each other's traffic.

  [[nodiscard]] sim::Task<> barrier(int me);

  [[nodiscard]] sim::Task<> bcast(int me, int root, mem::VirtAddr buf,
                                  std::size_t len);

  /// Element-wise reduction of `count` elements into recvbuf at `root`.
  /// sendbuf and recvbuf must not alias.
  [[nodiscard]] sim::Task<> reduce(int me, int root, mem::VirtAddr sendbuf,
                                   mem::VirtAddr recvbuf, std::size_t count,
                                   Datatype dt, Op op);

  [[nodiscard]] sim::Task<> allreduce(int me, mem::VirtAddr sendbuf,
                                      mem::VirtAddr recvbuf, std::size_t count,
                                      Datatype dt, Op op);

  /// Ring allgatherv: rank i contributes `counts[i]` bytes; the full
  /// concatenation lands in recvbuf at displacements `displs`.
  [[nodiscard]] sim::Task<> allgatherv(int me, mem::VirtAddr sendbuf,
                                       mem::VirtAddr recvbuf,
                                       std::vector<std::size_t> counts,
                                       std::vector<std::size_t> displs);

  /// Reduce-scatter with equal blocks of `count_per_rank` elements.
  [[nodiscard]] sim::Task<> reduce_scatter(int me, mem::VirtAddr sendbuf,
                                           mem::VirtAddr recvbuf,
                                           std::size_t count_per_rank,
                                           Datatype dt, Op op);

  /// Linear alltoallv (the NPB IS communication pattern).
  [[nodiscard]] sim::Task<> alltoallv(int me, mem::VirtAddr sendbuf,
                                      std::vector<std::size_t> send_counts,
                                      std::vector<std::size_t> send_displs,
                                      mem::VirtAddr recvbuf,
                                      std::vector<std::size_t> recv_counts,
                                      std::vector<std::size_t> recv_displs);

  /// Regular alltoall: `block` bytes to (and from) every rank.
  [[nodiscard]] sim::Task<> alltoall(int me, mem::VirtAddr sendbuf,
                                     mem::VirtAddr recvbuf, std::size_t block);

  /// Linear gatherv to `root`: rank i contributes counts[i] bytes, landing
  /// at displs[i] in root's recvbuf.
  [[nodiscard]] sim::Task<> gatherv(int me, int root, mem::VirtAddr sendbuf,
                                    std::size_t sendlen, mem::VirtAddr recvbuf,
                                    std::vector<std::size_t> counts,
                                    std::vector<std::size_t> displs);

  /// Linear scatterv from `root`.
  [[nodiscard]] sim::Task<> scatterv(int me, int root, mem::VirtAddr sendbuf,
                                     std::vector<std::size_t> counts,
                                     std::vector<std::size_t> displs,
                                     mem::VirtAddr recvbuf,
                                     std::size_t recvlen);

  /// Inclusive prefix reduction along the rank chain (MPI_Scan).
  [[nodiscard]] sim::Task<> scan(int me, mem::VirtAddr sendbuf,
                                 mem::VirtAddr recvbuf, std::size_t count,
                                 Datatype dt, Op op);

  /// Charges `bytes` of memory-bound compute to the rank's core at user
  /// priority and waits for it. Public so workloads can model their local
  /// computation phases (histogramming, sorting, ...).
  [[nodiscard]] sim::Task<> compute(int me, std::size_t bytes);

 private:
  struct RankState {
    std::uint32_t coll_seq = 0;
    // Persistent temp buffers for reductions, per slot: (addr, size).
    std::vector<std::pair<mem::VirtAddr, std::size_t>> scratch;
  };

  /// Match word: [16 bits collective-context][16 bits src rank][32 bits tag].
  [[nodiscard]] static std::uint64_t make_match(std::uint32_t ctx, int src,
                                                int tag) noexcept;

  [[nodiscard]] core::Library& lib(int rank) {
    return ranks_.at(static_cast<std::size_t>(rank))->lib;
  }
  [[nodiscard]] core::EndpointAddr addr(int rank) const {
    return ranks_.at(static_cast<std::size_t>(rank))->ep.addr();
  }
  [[nodiscard]] sim::Engine& engine() {
    return ranks_.front()->ep.driver().engine();
  }

  /// Allocates (lazily, and caches) a per-rank scratch buffer of `len`.
  [[nodiscard]] mem::VirtAddr scratch(int me, std::size_t slot,
                                      std::size_t len);

  /// Element-wise `accum op= data` on `count` elements, reading both through
  /// the rank's page table.
  void apply_op(int me, mem::VirtAddr accum, mem::VirtAddr data,
                std::size_t count, Datatype dt, Op op);

  [[nodiscard]] sim::Task<core::Status> send_ctx(int me, int dest,
                                                 std::uint32_t ctx, int tag,
                                                 mem::VirtAddr buf,
                                                 std::size_t len);
  [[nodiscard]] sim::Task<core::Status> recv_ctx(int me, int src,
                                                 std::uint32_t ctx, int tag,
                                                 mem::VirtAddr buf,
                                                 std::size_t len);

  std::vector<core::Host::Process*> ranks_;
  std::vector<RankState> state_;
};

/// Spawns `fn(rank)` for every rank and runs the engine until all finish.
/// Rethrows the first failure. Returns the simulated duration.
sim::Time run_ranks(sim::Engine& eng, int nranks,
                    const std::function<sim::Task<>(int)>& fn);

}  // namespace pinsim::mpi
