#include "mpi/communicator.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace pinsim::mpi {

namespace {

template <typename T>
void apply_typed(std::byte* accum, const std::byte* data, std::size_t count,
                 Op op) {
  for (std::size_t i = 0; i < count; ++i) {
    T a;
    T b;
    std::memcpy(&a, accum + i * sizeof(T), sizeof(T));
    std::memcpy(&b, data + i * sizeof(T), sizeof(T));
    switch (op) {
      case Op::kSum:
        a = static_cast<T>(a + b);
        break;
      case Op::kMax:
        a = a > b ? a : b;
        break;
      case Op::kMin:
        a = a < b ? a : b;
        break;
    }
    std::memcpy(accum + i * sizeof(T), &a, sizeof(T));
  }
}

[[nodiscard]] bool is_power_of_two(int n) noexcept {
  return n > 0 && (n & (n - 1)) == 0;
}

}  // namespace

Communicator::Communicator(std::vector<core::Host::Process*> ranks)
    : ranks_(std::move(ranks)), state_(ranks_.size()) {
  if (ranks_.empty()) throw std::invalid_argument("empty communicator");
}

std::uint64_t Communicator::make_match(std::uint32_t ctx, int src,
                                       int tag) noexcept {
  return (static_cast<std::uint64_t>(ctx) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(src + 1))
          << 32) |
         static_cast<std::uint32_t>(tag);
}

// --- point to point ------------------------------------------------------------

core::RequestPtr Communicator::isend(int me, int dest, int tag,
                                     mem::VirtAddr buf, std::size_t len) {
  return lib(me).isend(addr(dest), make_match(0, me, tag), buf, len);
}

core::RequestPtr Communicator::irecv(int me, int src, int tag,
                                     mem::VirtAddr buf, std::size_t len) {
  (void)me;
  return lib(me).irecv(make_match(0, src, tag), ~std::uint64_t{0}, buf, len);
}

sim::Task<core::Status> Communicator::send(int me, int dest, int tag,
                                           mem::VirtAddr buf,
                                           std::size_t len) {
  return lib(me).send(addr(dest), make_match(0, me, tag), buf, len);
}

sim::Task<core::Status> Communicator::recv(int me, int src, int tag,
                                           mem::VirtAddr buf,
                                           std::size_t len) {
  return lib(me).recv(make_match(0, src, tag), ~std::uint64_t{0}, buf, len);
}

sim::Task<core::Status> Communicator::send_ctx(int me, int dest,
                                               std::uint32_t ctx, int tag,
                                               mem::VirtAddr buf,
                                               std::size_t len) {
  return lib(me).send(addr(dest), make_match(ctx, me, tag), buf, len);
}

sim::Task<core::Status> Communicator::recv_ctx(int me, int src,
                                               std::uint32_t ctx, int tag,
                                               mem::VirtAddr buf,
                                               std::size_t len) {
  return lib(me).recv(make_match(ctx, src, tag), ~std::uint64_t{0}, buf, len);
}

sim::Task<> Communicator::sendrecv(int me, int dest, mem::VirtAddr sendbuf,
                                   std::size_t sendlen, int src,
                                   mem::VirtAddr recvbuf, std::size_t recvlen,
                                   int tag) {
  auto rreq = irecv(me, src, tag, recvbuf, recvlen);
  auto sreq = isend(me, dest, tag, sendbuf, sendlen);
  co_await sreq->wait();
  co_await rreq->wait();
}

sim::Task<> Communicator::wait_all(std::vector<core::RequestPtr> reqs) {
  for (auto& r : reqs) co_await r->wait();
}

// --- helpers ---------------------------------------------------------------------

sim::Task<> Communicator::compute(int me, std::size_t bytes) {
  auto& p = process(me);
  const sim::Time cost = p.ep.driver().cpu().copy_cost(2 * bytes);
  sim::Gate gate(engine());
  // pinlint: allow(D7: the gate lives in this coroutine frame, and the
  // frame is pinned right here by the co_await until the callback opens it)
  p.core.submit(cpu::Priority::kUser, cost, [&gate] { gate.open(); });
  co_await gate.wait();
}

mem::VirtAddr Communicator::scratch(int me, std::size_t slot,
                                    std::size_t len) {
  auto& sc = state_[static_cast<std::size_t>(me)].scratch;
  if (sc.size() <= slot) sc.resize(slot + 1, {0, 0});
  auto& [addr, size] = sc[slot];
  if (size < len) {
    if (size != 0) process(me).heap.free(addr);
    addr = process(me).heap.malloc(len);
    size = len;
  }
  return addr;
}

void Communicator::apply_op(int me, mem::VirtAddr accum, mem::VirtAddr data,
                            std::size_t count, Datatype dt, Op op) {
  const std::size_t bytes = count * datatype_size(dt);
  std::vector<std::byte> a(bytes);
  std::vector<std::byte> b(bytes);
  auto& as = process(me).as;
  as.read(accum, a);
  as.read(data, b);
  switch (dt) {
    case Datatype::kByte:
      apply_typed<std::uint8_t>(a.data(), b.data(), count, op);
      break;
    case Datatype::kInt32:
      apply_typed<std::int32_t>(a.data(), b.data(), count, op);
      break;
    case Datatype::kFloat:
      apply_typed<float>(a.data(), b.data(), count, op);
      break;
    case Datatype::kDouble:
      apply_typed<double>(a.data(), b.data(), count, op);
      break;
  }
  as.write(accum, a);
}

namespace {
/// Copies `len` bytes between two buffers of the same address space through
/// the page table (the local-copy part of collectives).
void local_copy(core::Host::Process& p, mem::VirtAddr dst, mem::VirtAddr src,
                std::size_t len) {
  if (len == 0 || dst == src) return;
  std::vector<std::byte> tmp(len);
  p.as.read(src, tmp);
  p.as.write(dst, tmp);
}
}  // namespace

// --- collectives -------------------------------------------------------------------

sim::Task<> Communicator::barrier(int me) {
  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const int n = size();
  // Dissemination barrier: log2(n) rounds of 0-byte messages.
  for (int step = 1; step < n; step <<= 1) {
    const int to = (me + step) % n;
    const int from = (me - step + n) % n;
    auto rreq = lib(me).irecv(make_match(ctx, from, step), ~std::uint64_t{0},
                              0, 0);
    auto sreq = lib(me).isend(addr(to), make_match(ctx, me, step), 0, 0);
    co_await sreq->wait();
    co_await rreq->wait();
  }
}

sim::Task<> Communicator::bcast(int me, int root, mem::VirtAddr buf,
                                std::size_t len) {
  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const int n = size();
  const int relrank = (me - root + n) % n;

  // Binomial tree (MPICH/Open MPI basic algorithm).
  int mask = 1;
  while (mask < n) {
    if (relrank & mask) {
      const int src = (relrank - mask + root + n) % n;
      (void)co_await recv_ctx(me, src, ctx, 0, buf, len);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relrank + mask < n) {
      const int dst = (relrank + mask + root) % n;
      (void)co_await send_ctx(me, dst, ctx, 0, buf, len);
    }
    mask >>= 1;
  }
}

sim::Task<> Communicator::reduce(int me, int root, mem::VirtAddr sendbuf,
                                 mem::VirtAddr recvbuf, std::size_t count,
                                 Datatype dt, Op op) {
  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const int n = size();
  const std::size_t bytes = count * datatype_size(dt);
  const int relrank = (me - root + n) % n;

  // Accumulator: recvbuf at root, scratch elsewhere.
  const mem::VirtAddr accum =
      me == root ? recvbuf : scratch(me, 0, std::max<std::size_t>(bytes, 16));
  const mem::VirtAddr inbox = scratch(me, 1, std::max<std::size_t>(bytes, 16));
  local_copy(process(me), accum, sendbuf, bytes);
  co_await compute(me, bytes);

  int mask = 1;
  while (mask < n) {
    if (relrank & mask) {
      const int dst = ((relrank & ~mask) + root) % n;
      (void)co_await send_ctx(me, dst, ctx, 1, accum, bytes);
      break;
    }
    const int src_rel = relrank | mask;
    if (src_rel < n) {
      const int src = (src_rel + root) % n;
      (void)co_await recv_ctx(me, src, ctx, 1, inbox, bytes);
      apply_op(me, accum, inbox, count, dt, op);
      co_await compute(me, bytes);
    }
    mask <<= 1;
  }
}

sim::Task<> Communicator::allreduce(int me, mem::VirtAddr sendbuf,
                                    mem::VirtAddr recvbuf, std::size_t count,
                                    Datatype dt, Op op) {
  const int n = size();
  const std::size_t bytes = count * datatype_size(dt);

  if (!is_power_of_two(n)) {
    // Fallback: reduce to 0 then broadcast.
    co_await reduce(me, 0, sendbuf, recvbuf, count, dt, op);
    co_await bcast(me, 0, recvbuf, bytes);
    co_return;
  }

  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const mem::VirtAddr inbox = scratch(me, 2, std::max<std::size_t>(bytes, 16));
  local_copy(process(me), recvbuf, sendbuf, bytes);
  co_await compute(me, bytes);

  // Recursive doubling.
  for (int mask = 1; mask < n; mask <<= 1) {
    const int partner = me ^ mask;
    auto rreq = lib(me).irecv(make_match(ctx, partner, mask),
                              ~std::uint64_t{0}, inbox, bytes);
    auto sreq =
        lib(me).isend(addr(partner), make_match(ctx, me, mask), recvbuf, bytes);
    co_await sreq->wait();
    co_await rreq->wait();
    apply_op(me, recvbuf, inbox, count, dt, op);
    co_await compute(me, bytes);
  }
}

sim::Task<> Communicator::allgatherv(int me, mem::VirtAddr sendbuf,
                                     mem::VirtAddr recvbuf,
                                     std::vector<std::size_t> counts,
                                     std::vector<std::size_t> displs) {
  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const int n = size();
  assert(counts.size() == static_cast<std::size_t>(n));
  assert(displs.size() == static_cast<std::size_t>(n));

  const auto my = static_cast<std::size_t>(me);
  local_copy(process(me), recvbuf + displs[my], sendbuf, counts[my]);
  co_await compute(me, counts[my]);
  if (n == 1) co_return;

  // Ring: in step s, forward the block received in step s-1 to the right
  // and receive a new block from the left.
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const auto send_block = static_cast<std::size_t>((me - step + n) % n);
    const auto recv_block = static_cast<std::size_t>((me - step - 1 + n) % n);
    auto rreq = lib(me).irecv(make_match(ctx, left, step), ~std::uint64_t{0},
                              recvbuf + displs[recv_block],
                              counts[recv_block]);
    auto sreq = lib(me).isend(addr(right), make_match(ctx, me, step),
                              recvbuf + displs[send_block],
                              counts[send_block]);
    co_await sreq->wait();
    co_await rreq->wait();
  }
}

sim::Task<> Communicator::reduce_scatter(int me, mem::VirtAddr sendbuf,
                                         mem::VirtAddr recvbuf,
                                         std::size_t count_per_rank,
                                         Datatype dt, Op op) {
  const int n = size();
  const std::size_t block = count_per_rank * datatype_size(dt);
  const std::size_t total = block * static_cast<std::size_t>(n);

  if (!is_power_of_two(n)) {
    // Fallback: reduce the full vector to 0, then scatter.
    const std::uint32_t ctx0 = state_[static_cast<std::size_t>(me)].coll_seq;
    (void)ctx0;
    const mem::VirtAddr full = scratch(me, 3, total);
    co_await reduce(me, 0, sendbuf, full, count_per_rank * static_cast<std::size_t>(n),
                    dt, op);
    const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
    if (me == 0) {
      for (int r = 1; r < n; ++r) {
        (void)co_await send_ctx(me, r, ctx, 2,
                                full + block * static_cast<std::size_t>(r),
                                block);
      }
      local_copy(process(me), recvbuf, full, block);
    } else {
      (void)co_await recv_ctx(me, 0, ctx, 2, recvbuf, block);
    }
    co_return;
  }

  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  // Recursive halving over a working copy of the whole vector.
  const mem::VirtAddr work = scratch(me, 3, total);
  const mem::VirtAddr inbox = scratch(me, 4, total / 2 + 16);
  local_copy(process(me), work, sendbuf, total);
  co_await compute(me, total);

  std::size_t lo = 0;
  std::size_t hi = static_cast<std::size_t>(n);
  for (int pow = n / 2; pow >= 1; pow /= 2) {
    const int partner = me ^ pow;
    const std::size_t mid = (lo + hi) / 2;
    const bool keep_low = me < partner;
    const std::size_t send_off = (keep_low ? mid : lo) * block;
    const std::size_t send_len = (keep_low ? hi - mid : mid - lo) * block;
    const std::size_t keep_off = (keep_low ? lo : mid) * block;
    const std::size_t keep_len = (keep_low ? mid - lo : hi - mid) * block;

    auto rreq = lib(me).irecv(make_match(ctx, partner, pow), ~std::uint64_t{0},
                              inbox, keep_len);
    auto sreq = lib(me).isend(addr(partner), make_match(ctx, me, pow),
                              work + send_off, send_len);
    co_await sreq->wait();
    co_await rreq->wait();
    apply_op(me, work + keep_off, inbox, keep_len / datatype_size(dt), dt, op);
    co_await compute(me, keep_len);
    if (keep_low) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  assert(lo == static_cast<std::size_t>(me) && hi == lo + 1);
  local_copy(process(me), recvbuf, work + lo * block, block);
  co_await compute(me, block);
}

sim::Task<> Communicator::alltoallv(int me, mem::VirtAddr sendbuf,
                                    std::vector<std::size_t> send_counts,
                                    std::vector<std::size_t> send_displs,
                                    mem::VirtAddr recvbuf,
                                    std::vector<std::size_t> recv_counts,
                                    std::vector<std::size_t> recv_displs) {
  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const int n = size();
  const auto my = static_cast<std::size_t>(me);

  std::vector<core::RequestPtr> reqs;
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    const auto ri = static_cast<std::size_t>(r);
    reqs.push_back(lib(me).irecv(make_match(ctx, r, 3), ~std::uint64_t{0},
                                 recvbuf + recv_displs[ri], recv_counts[ri]));
  }
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    const auto ri = static_cast<std::size_t>(r);
    reqs.push_back(lib(me).isend(addr(r), make_match(ctx, me, 3),
                                 sendbuf + send_displs[ri], send_counts[ri]));
  }
  local_copy(process(me), recvbuf + recv_displs[my], sendbuf + send_displs[my],
             std::min(send_counts[my], recv_counts[my]));
  co_await compute(me, send_counts[my]);
  for (auto& r : reqs) co_await r->wait();
}

sim::Task<> Communicator::alltoall(int me, mem::VirtAddr sendbuf,
                                   mem::VirtAddr recvbuf, std::size_t block) {
  const auto n = static_cast<std::size_t>(size());
  std::vector<std::size_t> counts(n, block), displs(n);
  for (std::size_t i = 0; i < n; ++i) displs[i] = i * block;
  co_await alltoallv(me, sendbuf, counts, displs, recvbuf, counts, displs);
}

sim::Task<> Communicator::gatherv(int me, int root, mem::VirtAddr sendbuf,
                                  std::size_t sendlen, mem::VirtAddr recvbuf,
                                  std::vector<std::size_t> counts,
                                  std::vector<std::size_t> displs) {
  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const int n = size();
  assert(counts.size() == static_cast<std::size_t>(n));
  if (me == root) {
    std::vector<core::RequestPtr> reqs;
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      const auto ri = static_cast<std::size_t>(r);
      reqs.push_back(lib(me).irecv(make_match(ctx, r, 4), ~std::uint64_t{0},
                                   recvbuf + displs[ri], counts[ri]));
    }
    local_copy(process(me), recvbuf + displs[static_cast<std::size_t>(root)],
               sendbuf, sendlen);
    co_await compute(me, sendlen);
    for (auto& r : reqs) co_await r->wait();
  } else {
    (void)co_await send_ctx(me, root, ctx, 4, sendbuf, sendlen);
  }
}

sim::Task<> Communicator::scatterv(int me, int root, mem::VirtAddr sendbuf,
                                   std::vector<std::size_t> counts,
                                   std::vector<std::size_t> displs,
                                   mem::VirtAddr recvbuf,
                                   std::size_t recvlen) {
  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const int n = size();
  if (me == root) {
    std::vector<core::RequestPtr> reqs;
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      const auto ri = static_cast<std::size_t>(r);
      reqs.push_back(lib(me).isend(addr(r), make_match(ctx, me, 5),
                                   sendbuf + displs[ri], counts[ri]));
    }
    const auto ri = static_cast<std::size_t>(root);
    local_copy(process(me), recvbuf, sendbuf + displs[ri],
               std::min(counts[ri], recvlen));
    co_await compute(me, counts[ri]);
    for (auto& r : reqs) co_await r->wait();
  } else {
    (void)co_await recv_ctx(me, root, ctx, 5, recvbuf, recvlen);
  }
}

sim::Task<> Communicator::scan(int me, mem::VirtAddr sendbuf,
                               mem::VirtAddr recvbuf, std::size_t count,
                               Datatype dt, Op op) {
  const std::uint32_t ctx = ++state_[static_cast<std::size_t>(me)].coll_seq;
  const int n = size();
  const std::size_t bytes = count * datatype_size(dt);

  local_copy(process(me), recvbuf, sendbuf, bytes);
  co_await compute(me, bytes);
  if (me > 0) {
    // Receive the prefix of ranks [0, me) and fold our contribution in.
    const mem::VirtAddr inbox =
        scratch(me, 5, std::max<std::size_t>(bytes, 16));
    (void)co_await recv_ctx(me, me - 1, ctx, 6, inbox, bytes);
    apply_op(me, recvbuf, inbox, count, dt, op);
    co_await compute(me, bytes);
  }
  if (me + 1 < n) {
    (void)co_await send_ctx(me, me + 1, ctx, 6, recvbuf, bytes);
  }
}

// --- runner ------------------------------------------------------------------------

sim::Time run_ranks(sim::Engine& eng, int nranks,
                    const std::function<sim::Task<>(int)>& fn) {
  const sim::Time t0 = eng.now();
  auto done = std::make_shared<std::size_t>(0);
  for (int r = 0; r < nranks; ++r) {
    sim::spawn(eng, [](std::function<sim::Task<>(int)> f, int rank,
                       std::shared_ptr<std::size_t> counter) -> sim::Task<> {
      co_await f(rank);
      ++*counter;
    }(fn, r, done));
  }
  while (*done < static_cast<std::size_t>(nranks) && eng.step()) {
  }
  eng.rethrow_task_failures();
  if (*done < static_cast<std::size_t>(nranks)) {
    throw std::runtime_error("rank programs deadlocked (event queue drained)");
  }
  return eng.now() - t0;
}

}  // namespace pinsim::mpi
