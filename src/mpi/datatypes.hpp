#pragma once

#include <cstddef>
#include <cstdint>

namespace pinsim::mpi {

/// The datatypes the IMB/NPB workloads need.
enum class Datatype { kByte, kInt32, kFloat, kDouble };

[[nodiscard]] constexpr std::size_t datatype_size(Datatype dt) noexcept {
  switch (dt) {
    case Datatype::kByte:
      return 1;
    case Datatype::kInt32:
    case Datatype::kFloat:
      return 4;
    case Datatype::kDouble:
      return 8;
  }
  return 1;
}

enum class Op { kSum, kMax, kMin };

}  // namespace pinsim::mpi
