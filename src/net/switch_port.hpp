#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>

#include "net/frame.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pinsim::net {

/// One egress port of a rack switch: a bounded FIFO queue drained at the
/// port's line rate. Frames are offered by the routing layer (Topology);
/// when a frame finishes clocking out the drain handler fires and routing
/// continues (next switch hop, or the destination NIC).
///
/// The drain order is strict FIFO and all timing comes from engine timers,
/// so a given offered sequence produces the same drain schedule on every
/// run — queue contention is part of the deterministic contract, not a
/// source of noise. Overflow (an offer landing on a full queue) is the
/// congestion-loss signal: the port counts it and refuses the frame; the
/// caller attributes the drop to congestion, not to fault injection.
class SwitchPort {
 public:
  struct Config {
    double bandwidth_gbps = 10.0;  // drain rate, matches the link line rate
    std::size_t queue_frames = 64;  // bounded egress buffer, in frames
  };

  struct Stats {
    std::uint64_t enqueued = 0;        // frames accepted into the queue
    std::uint64_t drained = 0;         // frames fully clocked out
    std::uint64_t overflow_drops = 0;  // offers refused on a full queue
    std::uint64_t max_depth = 0;       // high-water mark (incl. in service)
    sim::Time busy = 0;                // cumulative serialization time
  };

  /// `frame` finished serializing out of the port; `wire` is the
  /// serialization time it occupied the port for.
  using DrainHandler = std::function<void(Frame&&, sim::Time wire)>;

  SwitchPort(sim::Engine& eng, Config cfg);

  SwitchPort(const SwitchPort&) = delete;
  SwitchPort& operator=(const SwitchPort&) = delete;

  void set_drain_handler(DrainHandler h) { drain_ = std::move(h); }

  /// Offers a frame to the egress queue. Returns false — and counts an
  /// overflow drop — when the queue (including the frame in service) is
  /// already at capacity; the frame is lost at this switch.
  bool offer(Frame frame);

  /// Frames held by the port right now: queued plus the one in service.
  [[nodiscard]] std::size_t depth() const noexcept {
    return queue_.size() + (busy_ ? 1 : 0);
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return cfg_.queue_frames;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Time to clock `wire_bytes` out of this port at its line rate.
  [[nodiscard]] sim::Time serialization_time(std::size_t wire_bytes) const;

 private:
  void pump();

  sim::Engine& eng_;
  Config cfg_;
  DrainHandler drain_;
  std::deque<Frame> queue_;  // waiting frames; the in-service one is popped
  bool busy_ = false;
  Stats stats_;
};

}  // namespace pinsim::net
