#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "net/nic.hpp"

namespace pinsim::net {

Fabric::Fabric(sim::Engine& eng, Config cfg)
    : eng_(eng), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("fabric bandwidth must be positive");
  }
}

NodeId Fabric::attach(Nic* nic) {
  assert(nic != nullptr);
  nics_.push_back(nic);
  ingress_free_.push_back(0);
  return static_cast<NodeId>(nics_.size() - 1);
}

sim::Time Fabric::serialization_time(std::size_t wire_bytes) const {
  // Gbit/s -> bytes/ns: 10 Gb/s == 1.25 bytes per ns.
  const double bytes_per_ns = cfg_.bandwidth_gbps / 8.0;
  return static_cast<sim::Time>(static_cast<double>(wire_bytes) /
                                    bytes_per_ns +
                                0.5);
}

void Fabric::transmit(Frame frame) {
  if (frame.dst >= nics_.size()) {
    throw std::invalid_argument("frame to unknown node");
  }
  if (cfg_.drop_probability > 0.0 && rng_.bernoulli(cfg_.drop_probability)) {
    ++dropped_;
    return;
  }
  // The frame starts arriving after the one-way latency, but the ingress
  // port clocks frames in one at a time at line rate.
  const sim::Time wire = serialization_time(frame.wire_bytes());
  const sim::Time start =
      std::max(eng_.now() + cfg_.latency, ingress_free_[frame.dst]);
  const sim::Time done = start + wire;
  ingress_free_[frame.dst] = done;
  ++delivered_;
  eng_.schedule_at(done, [this, f = std::move(frame)]() mutable {
    nics_[f.dst]->deliver(std::move(f));
  });
}

}  // namespace pinsim::net
