#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "net/nic.hpp"

namespace pinsim::net {

Fabric::Fabric(sim::Engine& eng, Config cfg)
    : eng_(eng), cfg_(cfg), rng_(cfg.seed), faults_(cfg.seed ^ 0xfa017u) {
  if (cfg_.bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("fabric bandwidth must be positive");
  }
}

NodeId Fabric::attach(Nic* nic) {
  assert(nic != nullptr);
  nics_.push_back(nic);
  ingress_free_.push_back(0);
  port_up_.push_back(1);
  return static_cast<NodeId>(nics_.size() - 1);
}

void Fabric::set_port_up(NodeId port, bool up) {
  if (port >= port_up_.size()) return;
  if ((port_up_[port] != 0) == up) return;
  port_up_[port] = up ? 1 : 0;
  if (bus_ != nullptr && bus_->active()) {
    obs::Event e;
    e.kind = up ? obs::EventKind::kLifeLinkUp : obs::EventKind::kLifeLinkDown;
    e.node = port;
    bus_->emit(e);
  }
}

sim::Time Fabric::serialization_time(std::size_t wire_bytes) const {
  // Gbit/s -> bytes/ns: 10 Gb/s == 1.25 bytes per ns.
  const double bytes_per_ns = cfg_.bandwidth_gbps / 8.0;
  return static_cast<sim::Time>(static_cast<double>(wire_bytes) /
                                    bytes_per_ns +
                                0.5);
}

bool Fabric::admit(Frame& frame, FaultInjector::Verdict& verdict) {
  if (frame.dst >= nics_.size()) {
    throw std::invalid_argument("frame to unknown node");
  }
  if (!port_up(frame.dst) ||
      (frame.src < port_up_.size() && !port_up(frame.src))) {
    // A downed link loses frames silently, exactly like wire loss: the
    // retransmission machinery (or the watchdog, if it stays down) recovers.
    ++fault_dropped_;
    ++link_down_drops_;
    return false;
  }
  if (cfg_.drop_probability > 0.0 && rng_.bernoulli(cfg_.drop_probability)) {
    ++fault_dropped_;
    return false;
  }
  if (faults_.enabled()) verdict = faults_.inspect(frame);
  if (verdict.drop) {
    ++fault_dropped_;
    return false;
  }
  return true;
}

void Fabric::transmit(Frame frame) {
  FaultInjector::Verdict verdict;
  if (!admit(frame, verdict)) return;
  if (verdict.duplicate) deliver_frame(frame, 0);
  deliver_frame(std::move(frame), verdict.extra_latency);
}

void Fabric::deliver_frame(Frame frame, sim::Time extra_latency) {
  const sim::Time wire = serialization_time(frame.wire_bytes());
  sim::Time done;
  if (extra_latency == 0) {
    // The frame starts arriving after the one-way latency, but the ingress
    // port clocks frames in one at a time at line rate.
    const sim::Time start =
        std::max(eng_.now() + cfg_.latency, ingress_free_[frame.dst]);
    done = start + wire;
    ingress_free_[frame.dst] = done;
  } else {
    // Jittered (reordered) frame: model it as arriving over a different
    // switch path. It does not reserve the ingress port ahead of time —
    // otherwise one long jitter would stall every frame queued behind it.
    done = eng_.now() + cfg_.latency + extra_latency + wire;
  }
  ++delivered_;
  eng_.schedule_at(
      done,
      // pinlint: allow(D7: the fabric is the physical network, constructed
      // before and destroyed after the engine drains; dead destination
      // ports are fenced by the port_up() check below)
      [this, f = std::move(frame)]() mutable {
        if (!port_up(f.dst)) {
          // The link dropped while the frame was in flight.
          --delivered_;
          ++fault_dropped_;
          ++link_down_drops_;
          return;
        }
        nics_[f.dst]->deliver(std::move(f));
      },
      {"net", "fabric_deliver"});
}

void Fabric::deliver_after(Frame frame, sim::Time propagation) {
  ++delivered_;
  eng_.schedule_after(
      propagation,
      // pinlint: allow(D7: the fabric is the physical network, constructed
      // before and destroyed after the engine drains; dead destination
      // ports are fenced by the port_up() check below)
      [this, f = std::move(frame)]() mutable {
        if (!port_up(f.dst)) {
          --delivered_;
          ++fault_dropped_;
          ++link_down_drops_;
          return;
        }
        nics_[f.dst]->deliver(std::move(f));
      },
      {"net", "fabric_propagate"});
}

}  // namespace pinsim::net
