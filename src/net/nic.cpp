#include "net/nic.hpp"

#include <cassert>
#include <utility>

namespace pinsim::net {

Nic::Nic(sim::Engine& eng, Fabric& fabric, cpu::Core& irq_core, Config cfg)
    : eng_(eng), fabric_(fabric), irq_core_(irq_core), cfg_(cfg) {
  node_ = fabric_.attach(this);
}

bool Nic::send(Frame frame) {
  assert(frame.payload.size() <= cfg_.mtu && "frame exceeds MTU");
  frame.src = node_;
  if (tx_queue_.size() >= cfg_.tx_ring) {
    ++stats_.tx_ring_drops;
    return false;
  }
  tx_queue_.push_back(std::move(frame));
  if (!tx_busy_) pump_tx();
  return true;
}

void Nic::pump_tx() {
  if (tx_queue_.empty()) {
    tx_busy_ = false;
    return;
  }
  tx_busy_ = true;
  Frame frame = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  const sim::Time wire = fabric_.serialization_time(frame.wire_bytes());
  ++stats_.tx_frames;
  stats_.tx_bytes += frame.payload.size();
  // The frame leaves the port after its serialization time, then the next
  // queued frame starts clocking out.
  tx_done_ = eng_.schedule_after(
      wire,
      // pinlint: allow(D7: the NIC is host hardware that outlives the
      // engine; reset() cancels the in-flight tx_done_ event)
      [this, f = std::move(frame)]() mutable {
        tx_done_ = {};
        fabric_.transmit(std::move(f));
        pump_tx();
      },
      {"net", "nic_tx"});
}

std::size_t Nic::reset() {
  std::size_t lost = tx_queue_.size();
  tx_queue_.clear();
  if (tx_done_.valid() && eng_.cancel(tx_done_)) {
    ++lost;  // the frame mid-serialization died with the ring
  }
  tx_done_ = {};
  tx_busy_ = false;
  stats_.tx_ring_drops += lost;
  // Queued bottom halves hold frames whose ring slots no longer exist:
  // bump the generation so they drain without reaching the driver.
  stats_.rx_ring_drops += rx_inflight_;
  ++reset_gen_;
  ++resets_;
  return lost;
}

void Nic::deliver(Frame frame) {
  if (rx_inflight_ >= cfg_.rx_ring) {
    // Host too slow to drain the ring: the NIC overwrites, i.e. drops.
    ++stats_.rx_ring_drops;
    return;
  }
  ++rx_inflight_;
  ++stats_.rx_frames;
  stats_.rx_bytes += frame.payload.size();
  // Interrupt: per-frame receive processing charged at bottom-half priority
  // on the steered core (irq core by default), then the driver's handler
  // runs there.
  cpu::Core& core = rx_select_ ? rx_select_(frame) : irq_core_;
  core.submit(cpu::Priority::kBottomHalf, cfg_.rx_frame_overhead,
              // pinlint: allow(D7: the NIC is host hardware that outlives
              // the engine; stale bottom halves from a ring reset are
              // fenced by the generation check below)
              [this, gen = reset_gen_, f = std::move(frame)]() mutable {
                --rx_inflight_;
                // A reset since enqueue wiped this frame's ring slot.
                if (gen != reset_gen_) return;
                if (rx_handler_) rx_handler_(std::move(f));
              });
}

}  // namespace pinsim::net
