#include "net/fault.hpp"

namespace pinsim::net {

void FaultInjector::trace(obs::EventKind kind, const Frame& frame) {
  if (!relay_.active()) return;
  obs::Event e;
  e.kind = kind;
  e.node = frame.src;
  e.peer = frame.dst;
  e.len = frame.payload.size();
  relay_.emit(e);
}

FaultInjector::Verdict FaultInjector::inspect(Frame& frame) {
  Verdict v;
  const auto it = link_plans_.find(link_key(frame.src, frame.dst));
  const FaultPlan& plan = it != link_plans_.end() ? it->second : global_;
  if (!plan.active()) return v;
  ++stats_.frames_seen;

  // Loss stage 1: Gilbert–Elliott bursty channel. The chain steps on every
  // frame of the link so burst lengths are measured in frames, not time.
  if (plan.burst_enter > 0.0) {
    bool& bad = burst_bad_[link_key(frame.src, frame.dst)];
    bad = bad ? !rng_.bernoulli(plan.burst_exit)
              : rng_.bernoulli(plan.burst_enter);
    if (bad && rng_.bernoulli(plan.burst_loss)) {
      ++stats_.burst_drops;
      trace(obs::EventKind::kFaultDrop, frame);
      v.drop = true;
      return v;
    }
  }

  // Loss stage 2: independent loss.
  if (plan.loss > 0.0 && rng_.bernoulli(plan.loss)) {
    ++stats_.drops;
    trace(obs::EventKind::kFaultDrop, frame);
    v.drop = true;
    return v;
  }

  // Corruption: flip bits in place; the frame still travels and the
  // receiver's checksum must reject it.
  if (plan.corrupt > 0.0 && !frame.payload.empty() &&
      rng_.bernoulli(plan.corrupt)) {
    for (int i = 0; i < plan.corrupt_bits; ++i) {
      const std::uint64_t bit = rng_.next_below(frame.payload.size() * 8);
      frame.payload[bit / 8] ^= std::byte{1} << (bit % 8);
    }
    ++stats_.corruptions;
    trace(obs::EventKind::kFaultCorrupt, frame);
    v.corrupted = true;
  }

  if (plan.duplicate > 0.0 && rng_.bernoulli(plan.duplicate)) {
    ++stats_.duplicates;
    trace(obs::EventKind::kFaultDup, frame);
    v.duplicate = true;
  }

  if (plan.reorder > 0.0 && plan.reorder_jitter > 0 &&
      rng_.bernoulli(plan.reorder)) {
    v.extra_latency = 1 + rng_.next_below(plan.reorder_jitter);
    ++stats_.reorders;
    trace(obs::EventKind::kFaultReorder, frame);
  }
  return v;
}

}  // namespace pinsim::net
