#pragma once

#include <cstdint>

#include "net/frame.hpp"
#include "obs/event.hpp"
#include "obs/relay.hpp"
#include "sim/flat_map.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace pinsim::net {

/// One fault recipe. All probabilities are per frame and independent unless
/// noted; a plan with every knob at its default injects nothing.
///
/// The paper's central bet (§3.3) is that a dropped packet is cheap because
/// MXoE retransmission recovers. The FaultInjector exists to make that claim
/// testable under *adversarial* network behaviour, not just overlap misses:
/// random and bursty loss, bit corruption (caught by the frame checksum in
/// core/wire), duplication, and reordering via per-frame jitter.
struct FaultPlan {
  /// Independent (Bernoulli) frame loss.
  double loss = 0.0;

  /// Gilbert–Elliott bursty loss: a two-state Markov channel. Each frame
  /// first steps the chain (good -> bad with `burst_enter`, bad -> good with
  /// `burst_exit`), then drops with probability `burst_loss` while the
  /// channel is in the bad state. `burst_enter == 0` disables the chain.
  double burst_enter = 0.0;
  double burst_exit = 0.25;
  double burst_loss = 1.0;

  /// Probability of flipping `corrupt_bits` random payload bits in a frame
  /// that survived the loss stages. The receiver's checksum must catch it.
  double corrupt = 0.0;
  int corrupt_bits = 3;

  /// Probability of delivering a second copy of the frame.
  double duplicate = 0.0;

  /// Probability of delaying a frame by a uniform extra latency in
  /// (0, reorder_jitter], which lets later frames overtake it.
  double reorder = 0.0;
  sim::Time reorder_jitter = 50 * sim::kMicrosecond;

  [[nodiscard]] bool active() const noexcept {
    return loss > 0.0 || burst_enter > 0.0 || corrupt > 0.0 ||
           duplicate > 0.0 || reorder > 0.0;
  }
};

/// Deterministic per-frame fault injection for the fabric.
///
/// A global plan applies to every link; a per-link plan (keyed by the
/// directed (src, dst) pair) overrides the global one for that direction
/// only. All randomness comes from one seeded sim::Rng, so a run with the
/// same seed and traffic is bit-reproducible. Gilbert–Elliott channel state
/// is kept per directed link regardless of which plan is in force.
class FaultInjector {
 public:
  struct Stats {
    std::uint64_t frames_seen = 0;
    std::uint64_t drops = 0;        // independent-loss drops
    std::uint64_t burst_drops = 0;  // Gilbert–Elliott drops
    std::uint64_t corruptions = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reorders = 0;

    [[nodiscard]] std::uint64_t total_drops() const noexcept {
      return drops + burst_drops;
    }
  };

  /// What the fabric should do with one frame. `corrupt` means the payload
  /// bits have already been flipped in place.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    bool corrupted = false;
    sim::Time extra_latency = 0;
  };

  explicit FaultInjector(std::uint64_t seed = 0xfa017) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void set_plan(FaultPlan plan) noexcept { global_ = plan; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return global_; }

  /// Installs a plan for the directed link src -> dst (overrides the global
  /// plan for that direction).
  void set_link_plan(NodeId src, NodeId dst, FaultPlan plan) {
    link_plans_[link_key(src, dst)] = plan;
  }
  void clear_link_plans() { link_plans_.clear(); }

  /// Attaches a tracer; fault decisions are recorded under the categories
  /// `fault.drop`, `fault.corrupt`, `fault.dup` and `fault.reorder`.
  void set_tracer(sim::Tracer* t) noexcept { relay_.set_tracer(t); }

  /// Attaches a typed event bus; decisions are emitted as kFault* events.
  void set_bus(obs::Bus* bus) noexcept { relay_.set_bus(bus); }

  [[nodiscard]] bool enabled() const noexcept {
    return global_.active() || !link_plans_.empty();
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Decides the fate of one frame about to enter the fabric, flipping
  /// payload bits in place when the verdict is corruption.
  Verdict inspect(Frame& frame);

 private:
  [[nodiscard]] static std::uint64_t link_key(NodeId src, NodeId dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  void trace(obs::EventKind kind, const Frame& frame);

  FaultPlan global_;
  sim::FlatMap<std::uint64_t, FaultPlan> link_plans_;
  // Gilbert–Elliott state per link
  sim::FlatMap<std::uint64_t, bool> burst_bad_;
  sim::Rng rng_;
  obs::Relay relay_;
  Stats stats_;
};

}  // namespace pinsim::net
