#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "cpu/core.hpp"
#include "net/fabric.hpp"
#include "net/frame.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pinsim::net {

/// A 10G Ethernet NIC: transmit ring serialized onto the wire at line rate,
/// receive path raising interrupt work (bottom halves) on a bound core.
///
/// The receive handler runs in bottom-half context on `irq_core` after the
/// per-frame receive overhead has been charged — the "strongly privileged
/// receive processing" whose core-starvation behaviour §4.3 analyses.
class Nic {
 public:
  /// Called in BH context when a frame has been received and charged.
  using RxHandler = std::function<void(Frame&&)>;

  /// Picks the core whose bottom half processes a frame. Default: the irq
  /// core. Installing a selector models RSS/MSI-X flow steering ("one
  /// process per core" with distributed interrupt load); the paper's §4.3
  /// pathology is the non-steered case with everything on one core.
  using RxCoreSelector = std::function<cpu::Core&(const Frame&)>;

  struct Config {
    std::size_t mtu = 9000;          // jumbo frames, as Myri-10G Ethernet
    std::size_t tx_ring = 512;       // frames queued for egress
    std::size_t rx_ring = 512;       // frames awaiting BH processing
    sim::Time rx_frame_overhead = 1000;  // charged per frame on irq core
  };

  struct Stats {
    std::uint64_t tx_frames = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_frames = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_ring_drops = 0;
    std::uint64_t rx_ring_drops = 0;
  };

  Nic(sim::Engine& eng, Fabric& fabric, cpu::Core& irq_core, Config cfg);
  Nic(sim::Engine& eng, Fabric& fabric, cpu::Core& irq_core)
      : Nic(eng, fabric, irq_core, Config()) {}

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] NodeId node_id() const noexcept { return node_; }
  [[nodiscard]] std::size_t mtu() const noexcept { return cfg_.mtu; }

  /// Queues a frame for transmission. Returns false (and counts a drop) if
  /// the TX ring is full — callers treat that like wire loss.
  bool send(Frame frame);

  /// Installs the receive upcall (the Open-MX driver's rx handler).
  void set_rx_handler(RxHandler h) { rx_handler_ = std::move(h); }

  /// Installs RSS-style flow steering (see RxCoreSelector).
  void set_rx_core_selector(RxCoreSelector s) { rx_select_ = std::move(s); }

  /// Fabric-side entry: a frame has finished arriving at this port.
  void deliver(Frame frame);

  /// Hard NIC reset (firmware reload / lifecycle injection): wipes the TX
  /// ring including the frame currently clocking out, and invalidates every
  /// RX frame still waiting for its bottom half — they were sitting in ring
  /// memory the reset just reinitialized. Returns the number of TX frames
  /// lost (counted as tx_ring_drops; RX casualties count as rx_ring_drops).
  std::size_t reset();

  [[nodiscard]] std::uint64_t resets() const noexcept { return resets_; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] cpu::Core& irq_core() noexcept { return irq_core_; }
  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const Fabric& fabric() const noexcept { return fabric_; }

 private:
  void pump_tx();

  sim::Engine& eng_;
  Fabric& fabric_;
  cpu::Core& irq_core_;
  Config cfg_;
  NodeId node_;
  RxHandler rx_handler_;
  RxCoreSelector rx_select_;
  std::deque<Frame> tx_queue_;
  bool tx_busy_ = false;
  sim::Engine::EventId tx_done_{};  // in-flight egress serialization
  std::size_t rx_inflight_ = 0;  // frames in the rx ring awaiting BH
  std::uint64_t reset_gen_ = 0;  // invalidates queued rx bottom halves
  std::uint64_t resets_ = 0;
  Stats stats_;
};

}  // namespace pinsim::net
