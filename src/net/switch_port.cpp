#include "net/switch_port.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pinsim::net {

SwitchPort::SwitchPort(sim::Engine& eng, Config cfg) : eng_(eng), cfg_(cfg) {
  if (cfg_.bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("switch port bandwidth must be positive");
  }
  if (cfg_.queue_frames == 0) {
    throw std::invalid_argument("switch port queue must hold >= 1 frame");
  }
}

sim::Time SwitchPort::serialization_time(std::size_t wire_bytes) const {
  const double bytes_per_ns = cfg_.bandwidth_gbps / 8.0;
  return static_cast<sim::Time>(static_cast<double>(wire_bytes) /
                                    bytes_per_ns +
                                0.5);
}

bool SwitchPort::offer(Frame frame) {
  if (depth() >= cfg_.queue_frames) {
    ++stats_.overflow_drops;
    return false;
  }
  queue_.push_back(std::move(frame));
  ++stats_.enqueued;
  stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth, depth());
  if (!busy_) pump();
  return true;
}

void SwitchPort::pump() {
  if (busy_ || queue_.empty()) return;
  Frame frame = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  const sim::Time wire = serialization_time(frame.wire_bytes());
  stats_.busy += wire;
  eng_.schedule_after(
      wire,
      // pinlint: allow(D7: switch ports are owned by the Topology, which
      // is network hardware constructed before and destroyed after the
      // engine drains)
      [this, wire, f = std::move(frame)]() mutable {
        busy_ = false;
        ++stats_.drained;
        if (drain_) drain_(std::move(f), wire);
        pump();
      },
      {"net", "port_drain"});
}

}  // namespace pinsim::net
