#pragma once

#include <cstdint>
#include <vector>

#include "net/fault.hpp"
#include "net/frame.hpp"
#include "obs/bus.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pinsim::net {

class Nic;

/// The switched Ethernet fabric connecting hosts. Full duplex, one port per
/// NIC; a fixed one-way latency models propagation plus the cut-through
/// switch. The built-in FaultInjector (see net/fault.hpp) exercises the MXoE
/// retransmission machinery under loss, bursty loss, corruption, duplication
/// and reordering; the legacy `drop_probability` knob remains as a shorthand
/// for plain independent loss.
///
/// Delivery into a port is serialized at the port's line rate, so several
/// senders blasting one receiver share its 10 Gb/s ingress — which is what
/// makes the shared-NIC experiments (Table 2 runs several processes per
/// node) behave like the real thing.
///
/// The base class is the paper's two-host cut-through switch; `Topology`
/// (net/topology.hpp) overrides `transmit`/`attach` to route frames through
/// explicit rack switches with bounded per-port egress queues. Loss is
/// attributed by cause: `fault_dropped()` counts injected/link loss,
/// `congestion_dropped()` counts queue-overflow loss (always zero here — the
/// ideal switch has infinite buffers; only a Topology increments it).
class Fabric {
 public:
  struct Config {
    double bandwidth_gbps = 10.0;  // line rate per port, 10G Ethernet
    sim::Time latency = 2 * sim::kMicrosecond;  // NIC->NIC one-way
    double drop_probability = 0.0;              // random loss injection
    std::uint64_t seed = 0xfab51c;
  };

  Fabric(sim::Engine& eng, Config cfg);
  explicit Fabric(sim::Engine& eng) : Fabric(eng, Config()) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  virtual ~Fabric() {
    if (bus_ != nullptr) bus_->unregister_emitter();
  }

  /// Registers a NIC and assigns its node id.
  virtual NodeId attach(Nic* nic);

  /// Hands a fully-serialized frame to the fabric (called by the sending NIC
  /// when egress serialization completes). Applies latency, loss and ingress
  /// port sharing, then delivers to the destination NIC.
  virtual void transmit(Frame frame);

  /// Time to clock `bytes` onto a port at line rate.
  [[nodiscard]] sim::Time serialization_time(std::size_t wire_bytes) const;

  [[nodiscard]] sim::Time latency() const noexcept { return cfg_.latency; }
  [[nodiscard]] std::uint64_t frames_delivered() const noexcept {
    return delivered_;
  }
  /// All losses regardless of cause (fault + congestion).
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return fault_dropped_ + congestion_dropped_;
  }
  /// Fault-attributed loss: injected drops, random loss, downed links.
  [[nodiscard]] std::uint64_t fault_dropped() const noexcept {
    return fault_dropped_;
  }
  /// Congestion-attributed loss: bounded egress queues overflowing under
  /// incast. The ideal point-to-point fabric never congests.
  [[nodiscard]] std::uint64_t congestion_dropped() const noexcept {
    return congestion_dropped_;
  }

  /// The fabric's fault-injection layer. Configure plans on it directly; it
  /// is seeded from Config::seed so runs stay reproducible.
  [[nodiscard]] FaultInjector& faults() noexcept { return faults_; }

  /// Forces a port administratively down (link flap injection): frames to
  /// or from a down port are dropped at the switch, including frames
  /// already past the sender's NIC. Ports start (and new attaches arrive)
  /// up; bringing a port down twice is idempotent.
  void set_port_up(NodeId port, bool up);
  [[nodiscard]] bool port_up(NodeId port) const {
    return port >= port_up_.size() || port_up_[port] != 0;
  }
  [[nodiscard]] std::uint64_t link_down_drops() const noexcept {
    return link_down_drops_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nics_.size();
  }

  /// Lifecycle-event emission point (kLifeLinkDown/Up); optional. The
  /// fabric registers with the bus's teardown-order guard.
  void set_bus(obs::Bus* bus) noexcept {
    if (bus_ == bus) return;
    if (bus_ != nullptr) bus_->unregister_emitter();
    if (bus != nullptr) bus->register_emitter();
    bus_ = bus;
  }

 protected:
  /// The shared admission pipeline: administrative link state, the legacy
  /// drop_probability coin, and the fault injector (which may corrupt the
  /// frame in place). Returns false when the frame was consumed (dropped and
  /// accounted); otherwise fills `verdict` with the duplicate/extra-latency
  /// decisions the caller must honour.
  bool admit(Frame& frame, FaultInjector::Verdict& verdict);

  /// Applies latency/ingress accounting and hands the frame to the NIC.
  void deliver_frame(Frame frame, sim::Time extra_latency);

  /// Final-hop delivery for routed (Topology) frames: the egress queue
  /// already serialized the frame toward `frame.dst`, so this only models
  /// the remaining propagation delay and the in-flight link-down loss.
  void deliver_after(Frame frame, sim::Time propagation);

  sim::Engine& eng_;
  Config cfg_;
  std::vector<Nic*> nics_;
  std::vector<sim::Time> ingress_free_;  // per-port ingress availability
  std::vector<std::uint8_t> port_up_;    // administrative link state
  sim::Rng rng_;
  FaultInjector faults_;
  obs::Bus* bus_ = nullptr;
  std::uint64_t delivered_ = 0;
  std::uint64_t fault_dropped_ = 0;
  std::uint64_t congestion_dropped_ = 0;
  std::uint64_t link_down_drops_ = 0;
};

}  // namespace pinsim::net
