#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "net/switch_port.hpp"
#include "sim/time.hpp"

namespace pinsim::net {

/// N-node rack topology: the cluster-scale generalization of the
/// point-to-point `Fabric`. Nodes attach in rack-major order
/// (`nodes_per_rack` consecutive node ids per rack); each rack has one
/// switch with a bounded-FIFO egress `SwitchPort` per downlink (toward each
/// node) and `uplinks_per_rack` shared uplink ports toward the spine.
///
/// Routing is deterministic:
///  * intra-rack: src NIC -> [hop] -> dst downlink queue -> [link] -> dst;
///  * cross-rack: src NIC -> [hop] -> shared uplink queue (chosen by the
///    flow hash `(src ^ dst) % uplinks_per_rack` of the *source* rack)
///    -> [hop] -> dst rack's downlink queue -> [link] -> dst,
/// where [hop] is `switch_hop_latency` and [link] the base `Config::latency`.
/// The downlink queue replaces the base class's ingress serialization — it
/// is the same wire — so several senders blasting one receiver still share
/// its line rate, now with an explicit bounded buffer in front of it:
/// incast past the buffer is *congestion* loss, counted separately from
/// fault-injected loss (`congestion_dropped()` vs `fault_dropped()`).
///
/// Fault admission (link state, drop_probability, FaultInjector) is shared
/// with the base class, so fault plans compose with congestion unchanged.
/// Reorder-jittered frames model a different switch path and bypass the
/// queues, exactly like the base class's ingress bypass.
class Topology : public Fabric {
 public:
  /// Uplink port ids live here so they can never collide with downlink
  /// ports (which reuse node ids) in events and stats.
  static constexpr std::uint32_t kUplinkPortBase = 0x10000;

  struct Config {
    Fabric::Config link;             // per-port line rate, latency, faults
    std::size_t nodes_per_rack = 8;
    std::size_t uplinks_per_rack = 2;
    std::size_t downlink_queue_frames = 64;
    std::size_t uplink_queue_frames = 128;
    sim::Time switch_hop_latency = 500;  // ns per switch traversal
  };

  Topology(sim::Engine& eng, Config cfg);

  /// Registers a NIC, assigns its node id and creates the node's downlink
  /// egress port (and its rack's uplink ports on first contact).
  NodeId attach(Nic* nic) override;

  /// Routes the frame through the rack switches (see class comment).
  void transmit(Frame frame) override;

  [[nodiscard]] std::size_t rack_of(NodeId node) const noexcept {
    return node / topo_.nodes_per_rack;
  }
  [[nodiscard]] std::size_t rack_count() const noexcept {
    return racks_.size();
  }
  [[nodiscard]] const Config& topology_config() const noexcept {
    return topo_;
  }

  /// Per-port introspection (tests, reports). Downlinks are indexed by node
  /// id; uplinks by (rack, uplink index).
  [[nodiscard]] const SwitchPort& downlink(NodeId node) const {
    return *downlinks_.at(node);
  }
  [[nodiscard]] const SwitchPort& uplink(std::size_t rack,
                                         std::size_t i) const {
    return *racks_.at(rack).uplinks.at(i);
  }

  /// Aggregate time the uplink ports spent serializing frames — the
  /// utilization numerator for the shared spine links.
  [[nodiscard]] sim::Time uplink_busy_time() const;

 private:
  struct Rack {
    std::vector<std::unique_ptr<SwitchPort>> uplinks;
  };

  void ensure_rack(std::size_t rack);
  /// Admission already happened; schedules the switch hops and queue
  /// traversals for one (possibly duplicated) frame.
  void route(Frame frame, sim::Time extra_latency);
  /// Enqueues on `port`; on overflow counts a congestion drop and emits
  /// kNetCongestionDrop. Emits the post-transition queue-depth event.
  void offer_or_drop(SwitchPort& port, std::uint32_t port_id, bool is_uplink,
                     Frame frame);
  void emit_queue_depth(const SwitchPort& port, std::uint32_t port_id,
                        bool is_uplink);
  void emit_port_tx(std::uint32_t port_id, bool is_uplink, sim::Time wire,
                    std::size_t wire_bytes);

  Config topo_;
  std::vector<std::unique_ptr<SwitchPort>> downlinks_;  // one per node
  std::vector<Rack> racks_;
};

}  // namespace pinsim::net
