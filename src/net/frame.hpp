#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pinsim::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// Per-frame Ethernet overhead on the wire: preamble+SFD (8), MAC header
/// (14), FCS (4), inter-frame gap (12).
inline constexpr std::size_t kEthernetOverhead = 38;

/// Minimum Ethernet payload (frames are padded up to this on the wire).
inline constexpr std::size_t kMinPayload = 46;

/// An Ethernet frame in flight. The payload is real bytes: the MXoE layer
/// serializes its packet headers and message data into it, so tests can
/// verify the wire protocol end to end.
struct Frame {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<std::byte> payload;

  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    const std::size_t body =
        payload.size() < kMinPayload ? kMinPayload : payload.size();
    return body + kEthernetOverhead;
  }
};

}  // namespace pinsim::net
