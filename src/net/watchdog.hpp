#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/frame.hpp"
#include "net/nic.hpp"
#include "obs/bus.hpp"
#include "sim/engine.hpp"
#include "sim/flat_map.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pinsim::net {

/// Node-level liveness watchdog: periodic heartbeat frames to every watched
/// peer, a missed-heartbeat threshold that declares a peer dead, and revival
/// when it is heard again. Peers are checked in ascending NodeId order on
/// one engine timer, so timeout ordering is deterministic via the timing
/// wheel; per-beat jitter comes from a seeded stream so two runs of the same
/// seed phase their heartbeats identically.
///
/// Heartbeats are link-level control traffic, not MXoE packets: the first
/// payload byte is a magic tag (`kMagic`, outside the 1..8 PacketType range)
/// so the driver can intercept them before wire decode. Each beat carries an
/// opaque announcement blob (the driver uses it for its per-slot epoch
/// table) protected by an FNV-1a checksum — a corrupted heartbeat is dropped
/// rather than poisoning epoch learning.
///
/// The watchdog is inert until start(): existing single-tenant tests see
/// zero behaviour change.
class Watchdog {
 public:
  /// Payload tag of a heartbeat frame. 0xF5 can never open a real MXoE
  /// packet (encode() writes PacketType 1..8 in byte 0).
  static constexpr std::uint8_t kMagic = 0xf5;

  struct Config {
    sim::Time period = 50 * sim::kMicrosecond;
    sim::Time jitter = 5 * sim::kMicrosecond;  // uniform [0, jitter) per beat
    std::uint32_t miss_threshold = 3;  // silent periods before declared dead
    std::uint64_t seed = 0x4dead;
  };

  struct Stats {
    std::uint64_t beats_sent = 0;
    std::uint64_t beats_heard = 0;
    std::uint64_t corrupt_dropped = 0;
    std::uint64_t deaths = 0;    // peers declared dead on a missed threshold
    std::uint64_t revivals = 0;  // dead peers heard again
  };

  /// alive=false: the peer missed the threshold; alive=true: heard again.
  using PeerStatusHandler = std::function<void(NodeId peer, bool alive)>;
  /// A valid heartbeat arrived from `peer` carrying `blob`.
  using AnnouncementHandler =
      std::function<void(NodeId peer, std::span<const std::byte> blob)>;
  /// Called at each beat to fill the outgoing announcement blob.
  using AnnouncementProvider = std::function<std::vector<std::byte>()>;

  Watchdog(sim::Engine& eng, Nic& nic, Config cfg);
  ~Watchdog() {
    stop();
    if (bus_ != nullptr) bus_->unregister_emitter();
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void set_peer_status_handler(PeerStatusHandler h) {
    on_peer_status_ = std::move(h);
  }
  void set_announcement_handler(AnnouncementHandler h) {
    on_announcement_ = std::move(h);
  }
  void set_announcement_provider(AnnouncementProvider p) {
    announce_ = std::move(p);
  }
  void set_bus(obs::Bus* bus) noexcept {
    if (bus_ == bus) return;
    if (bus_ != nullptr) bus_->unregister_emitter();
    if (bus != nullptr) bus->register_emitter();
    bus_ = bus;
  }

  /// Starts watching `peer`. A peer added while the watchdog runs gets the
  /// full threshold of grace before it can time out.
  void add_peer(NodeId peer);

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// True if `frame` is watchdog control traffic (checks the magic tag
  /// only — cheap enough for every rx frame).
  [[nodiscard]] static bool is_heartbeat(const Frame& frame) noexcept {
    return !frame.payload.empty() &&
           static_cast<std::uint8_t>(frame.payload[0]) == kMagic;
  }

  /// Feed of intercepted heartbeat frames (driver rx path). Works whether
  /// or not the watchdog is started — a stopped watchdog still learns
  /// announcements, it just never declares anyone dead.
  void on_heartbeat(const Frame& frame);

  [[nodiscard]] bool peer_alive(NodeId peer) const;
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  struct PeerState {
    sim::Time last_heard = 0;
    bool dead = false;
    bool heard_once = false;  // grace until the first beat arrives
  };

  void beat();
  void check();
  void arm_beat();
  void arm_check();

  sim::Engine& eng_;
  Nic& nic_;
  Config cfg_;
  sim::Rng rng_;
  PeerStatusHandler on_peer_status_;
  AnnouncementHandler on_announcement_;
  AnnouncementProvider announce_;
  obs::Bus* bus_ = nullptr;
  sim::FlatMap<NodeId, PeerState> peers_;
  sim::Engine::EventId beat_timer_{};
  sim::Engine::EventId check_timer_{};
  sim::Time started_at_ = 0;
  bool running_ = false;
  Stats stats_;
};

}  // namespace pinsim::net
