#include "net/watchdog.hpp"

#include <utility>

namespace pinsim::net {

namespace {

/// FNV-1a over the heartbeat bytes. Not core::frame_checksum — net sits
/// below core in the layer graph — but plenty to reject fault-injector
/// corruption of control traffic.
std::uint32_t hb_checksum(std::span<const std::byte> bytes) noexcept {
  std::uint32_t h = 0x811c9dc5u;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 0x01000193u;
  }
  return h;
}

constexpr std::size_t kHbHeader = 2;   // magic, blob length
constexpr std::size_t kHbTrailer = 4;  // checksum

}  // namespace

Watchdog::Watchdog(sim::Engine& eng, Nic& nic, Config cfg)
    : eng_(eng), nic_(nic), cfg_(cfg), rng_(cfg.seed ^ 0xbea7beafULL) {}

void Watchdog::add_peer(NodeId peer) {
  PeerState& st = peers_[peer];
  st.last_heard = eng_.now();
}

void Watchdog::start() {
  if (running_) return;
  running_ = true;
  started_at_ = eng_.now();
  for (auto& [peer, st] : peers_) {
    (void)peer;
    st.last_heard = eng_.now();
  }
  arm_beat();
  arm_check();
}

void Watchdog::stop() {
  running_ = false;
  if (beat_timer_.valid()) eng_.cancel(beat_timer_);
  if (check_timer_.valid()) eng_.cancel(check_timer_);
  beat_timer_ = {};
  check_timer_ = {};
}

bool Watchdog::peer_alive(NodeId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() || !it->second.dead;
}

void Watchdog::arm_beat() {
  const sim::Time jitter =
      cfg_.jitter == 0
          ? 0
          : static_cast<sim::Time>(
                rng_.next_below(static_cast<std::uint64_t>(cfg_.jitter)));
  beat_timer_ = eng_.schedule_after(
      cfg_.period + jitter,
      // pinlint: allow(D7: ~Watchdog calls stop(), which cancels
      // beat_timer_ before `this` can dangle)
      [this] {
        beat_timer_ = {};
        beat();
      },
      {"net", "wd_beat"});
}

void Watchdog::arm_check() {
  check_timer_ = eng_.schedule_after(
      cfg_.period,
      // pinlint: allow(D7: ~Watchdog calls stop(), which cancels
      // check_timer_ before `this` can dangle)
      [this] {
        check_timer_ = {};
        check();
      },
      {"net", "wd_check"});
}

void Watchdog::beat() {
  if (!running_) return;
  std::vector<std::byte> blob;
  if (announce_) blob = announce_();
  if (blob.size() > 255) blob.resize(255);

  std::vector<std::byte> payload;
  payload.reserve(kHbHeader + blob.size() + kHbTrailer);
  payload.push_back(static_cast<std::byte>(kMagic));
  payload.push_back(static_cast<std::byte>(blob.size()));
  payload.insert(payload.end(), blob.begin(), blob.end());
  const std::uint32_t crc = hb_checksum(payload);
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<std::byte>(crc >> (8 * i)));
  }

  for (const auto& [peer, st] : peers_) {
    (void)st;
    Frame f;
    f.dst = peer;
    f.payload = payload;
    if (nic_.send(std::move(f))) ++stats_.beats_sent;
  }
  arm_beat();
}

void Watchdog::check() {
  if (!running_) return;
  const sim::Time limit =
      cfg_.period * static_cast<sim::Time>(cfg_.miss_threshold);
  for (auto& [peer, st] : peers_) {
    const sim::Time baseline = st.heard_once ? st.last_heard : started_at_;
    if (!st.dead && eng_.now() - baseline > limit) {
      st.dead = true;
      ++stats_.deaths;
      if (bus_ != nullptr && bus_->active()) {
        obs::Event e;
        e.kind = obs::EventKind::kLifePeerDead;
        e.node = nic_.node_id();
        e.peer = peer;
        bus_->emit(e);
      }
      if (on_peer_status_) on_peer_status_(peer, false);
    }
  }
  arm_check();
}

void Watchdog::on_heartbeat(const Frame& frame) {
  const auto& p = frame.payload;
  if (p.size() < kHbHeader + kHbTrailer) {
    ++stats_.corrupt_dropped;
    return;
  }
  const std::size_t blob_len = static_cast<std::uint8_t>(p[1]);
  if (p.size() != kHbHeader + blob_len + kHbTrailer) {
    ++stats_.corrupt_dropped;
    return;
  }
  const std::size_t body = kHbHeader + blob_len;
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < kHbTrailer; ++i) {
    stored |= static_cast<std::uint32_t>(p[body + i]) << (8 * i);
  }
  if (hb_checksum(std::span<const std::byte>(p.data(), body)) != stored) {
    ++stats_.corrupt_dropped;
    return;
  }

  ++stats_.beats_heard;
  auto it = peers_.find(frame.src);
  if (it != peers_.end()) {
    PeerState& st = it->second;
    st.last_heard = eng_.now();
    st.heard_once = true;
    if (st.dead) {
      st.dead = false;
      ++stats_.revivals;
      if (bus_ != nullptr && bus_->active()) {
        obs::Event e;
        e.kind = obs::EventKind::kLifePeerAlive;
        e.node = nic_.node_id();
        e.peer = frame.src;
        bus_->emit(e);
      }
      if (on_peer_status_) on_peer_status_(frame.src, true);
    }
  }
  if (on_announcement_) {
    on_announcement_(frame.src,
                     std::span<const std::byte>(p.data() + kHbHeader,
                                                blob_len));
  }
}

}  // namespace pinsim::net
