#include "net/topology.hpp"

#include <stdexcept>
#include <utility>

#include "net/nic.hpp"

namespace pinsim::net {

namespace {

std::uint32_t uplink_port_id(const Topology::Config& topo, std::size_t rack,
                             std::size_t i) noexcept {
  return Topology::kUplinkPortBase +
         static_cast<std::uint32_t>(rack * topo.uplinks_per_rack + i);
}

}  // namespace

Topology::Topology(sim::Engine& eng, Config cfg)
    : Fabric(eng, cfg.link), topo_(cfg) {
  if (topo_.nodes_per_rack == 0) {
    throw std::invalid_argument("topology needs >= 1 node per rack");
  }
  if (topo_.uplinks_per_rack == 0) {
    throw std::invalid_argument("topology needs >= 1 uplink per rack");
  }
}

NodeId Topology::attach(Nic* nic) {
  const NodeId id = Fabric::attach(nic);
  SwitchPort::Config pc;
  pc.bandwidth_gbps = cfg_.bandwidth_gbps;
  pc.queue_frames = topo_.downlink_queue_frames;
  auto port = std::make_unique<SwitchPort>(eng_, pc);
  SwitchPort* raw = port.get();
  port->set_drain_handler([this, raw, id](Frame&& f, sim::Time wire) {
    emit_port_tx(id, /*is_uplink=*/false, wire, f.wire_bytes());
    emit_queue_depth(*raw, id, /*is_uplink=*/false);
    deliver_after(std::move(f), cfg_.latency);
  });
  downlinks_.push_back(std::move(port));
  ensure_rack(rack_of(id));
  return id;
}

void Topology::ensure_rack(std::size_t rack) {
  while (racks_.size() <= rack) {
    const std::size_t r = racks_.size();
    Rack rk;
    for (std::size_t i = 0; i < topo_.uplinks_per_rack; ++i) {
      SwitchPort::Config pc;
      pc.bandwidth_gbps = cfg_.bandwidth_gbps;
      pc.queue_frames = topo_.uplink_queue_frames;
      auto up = std::make_unique<SwitchPort>(eng_, pc);
      SwitchPort* raw = up.get();
      const std::uint32_t pid = uplink_port_id(topo_, r, i);
      // An uplink drain lands the frame at the destination rack's switch:
      // one more hop, then the destination's downlink queue.
      up->set_drain_handler([this, raw, pid](Frame&& f, sim::Time wire) {
        emit_port_tx(pid, /*is_uplink=*/true, wire, f.wire_bytes());
        emit_queue_depth(*raw, pid, /*is_uplink=*/true);
        eng_.schedule_after(
            topo_.switch_hop_latency,
            // pinlint: allow(D7: the topology is network hardware that
            // outlives the engine; per-port faults drop in offer_or_drop)
            [this, f = std::move(f)]() mutable {
              offer_or_drop(*downlinks_[f.dst], f.dst,
                            /*is_uplink=*/false, std::move(f));
            },
            {"net", "switch_hop"});
      });
      rk.uplinks.push_back(std::move(up));
    }
    racks_.push_back(std::move(rk));
  }
}

void Topology::transmit(Frame frame) {
  FaultInjector::Verdict verdict;
  if (!admit(frame, verdict)) return;
  if (verdict.duplicate) route(frame, 0);
  route(std::move(frame), verdict.extra_latency);
}

void Topology::route(Frame frame, sim::Time extra_latency) {
  const std::size_t src_rack = rack_of(frame.src);
  const std::size_t dst_rack = rack_of(frame.dst);
  if (extra_latency > 0) {
    // Reorder-jittered frame: it took a different path through the switches
    // and does not contend for the egress queues (mirrors the base class's
    // ingress bypass). Charge the full path latency plus its wire time.
    const std::size_t hops = (src_rack == dst_rack) ? 1 : 2;
    const sim::Time wire = serialization_time(frame.wire_bytes());
    deliver_after(std::move(frame),
                  static_cast<sim::Time>(hops) * topo_.switch_hop_latency +
                      extra_latency + wire + cfg_.latency);
    return;
  }
  if (src_rack == dst_rack) {
    eng_.schedule_after(
        topo_.switch_hop_latency,
        // pinlint: allow(D7: the topology is network hardware that
        // outlives the engine; per-port faults drop in offer_or_drop)
        [this, f = std::move(frame)]() mutable {
          offer_or_drop(*downlinks_[f.dst], f.dst,
                        /*is_uplink=*/false, std::move(f));
        },
        {"net", "switch_hop"});
    return;
  }
  // Cross-rack: hash the flow onto one of the source rack's shared uplinks
  // so a given (src, dst) pair always rides the same spine link.
  const std::size_t i =
      static_cast<std::size_t>(frame.src ^ frame.dst) % topo_.uplinks_per_rack;
  SwitchPort* up = racks_[src_rack].uplinks[i].get();
  const std::uint32_t pid = uplink_port_id(topo_, src_rack, i);
  eng_.schedule_after(
      topo_.switch_hop_latency,
      // pinlint: allow(D7: the topology owns its uplink ports and both are
      // network hardware that outlives the engine; racks_ never shrinks)
      [this, up, pid, f = std::move(frame)]() mutable {
        offer_or_drop(*up, pid, /*is_uplink=*/true, std::move(f));
      },
      {"net", "switch_hop"});
}

void Topology::offer_or_drop(SwitchPort& port, std::uint32_t port_id,
                             bool is_uplink, Frame frame) {
  const std::uint32_t dst = frame.dst;
  const std::uint64_t bytes = frame.wire_bytes();
  if (!port.offer(std::move(frame))) {
    ++congestion_dropped_;
    if (bus_ != nullptr && bus_->active()) {
      obs::Event e;
      e.kind = obs::EventKind::kNetCongestionDrop;
      e.node = port_id;
      e.pkt = is_uplink ? 1 : 0;
      e.peer = dst;
      e.len = bytes;
      bus_->emit(e);
    }
    return;
  }
  emit_queue_depth(port, port_id, is_uplink);
}

void Topology::emit_queue_depth(const SwitchPort& port, std::uint32_t port_id,
                                bool is_uplink) {
  if (bus_ == nullptr || !bus_->active()) return;
  obs::Event e;
  e.kind = obs::EventKind::kNetPortQueue;
  e.node = port_id;
  e.pkt = is_uplink ? 1 : 0;
  e.offset = port.depth();
  e.len = port.capacity();
  bus_->emit(e);
}

void Topology::emit_port_tx(std::uint32_t port_id, bool is_uplink,
                            sim::Time wire, std::size_t wire_bytes) {
  if (bus_ == nullptr || !bus_->active()) return;
  obs::Event e;
  e.kind = obs::EventKind::kNetPortTx;
  e.node = port_id;
  e.pkt = is_uplink ? 1 : 0;
  e.offset = static_cast<std::uint64_t>(wire);
  e.len = wire_bytes;
  bus_->emit(e);
}

sim::Time Topology::uplink_busy_time() const {
  sim::Time total = 0;
  for (const Rack& rk : racks_) {
    for (const auto& up : rk.uplinks) total += up->stats().busy;
  }
  return total;
}

}  // namespace pinsim::net
