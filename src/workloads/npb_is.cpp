#include "workloads/npb_is.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"

namespace pinsim::workloads {

namespace {

/// Per-rank buffers and host-side staging for the sort.
struct RankData {
  mem::VirtAddr keys = 0;      // original local keys (regenerated each run)
  mem::VirtAddr send_buf = 0;  // keys partitioned by destination
  mem::VirtAddr recv_buf = 0;  // keys received (then sorted in place)
  mem::VirtAddr cnt_buf = 0;   // local bucket counts (n ints)
  mem::VirtAddr mat_buf = 0;   // all ranks' bucket counts (n*n ints)
  std::size_t n_local = 0;
  std::size_t recv_total = 0;  // keys received in the last iteration
};

std::vector<std::int32_t> read_ints(core::Host::Process& p, mem::VirtAddr a,
                                    std::size_t count) {
  std::vector<std::byte> raw(count * 4);
  p.as.read(a, raw);
  std::vector<std::int32_t> v(count);
  std::memcpy(v.data(), raw.data(), raw.size());
  return v;
}

void write_ints(core::Host::Process& p, mem::VirtAddr a,
                const std::vector<std::int32_t>& v) {
  std::vector<std::byte> raw(v.size() * 4);
  std::memcpy(raw.data(), v.data(), raw.size());
  p.as.write(a, raw);
}

}  // namespace

IsResult run_is(mpi::Communicator& comm, const IsConfig& cfg) {
  const int n = comm.size();
  if (cfg.total_keys % static_cast<std::size_t>(n) != 0) {
    throw std::invalid_argument("total_keys must be divisible by ranks");
  }
  const std::size_t n_local = cfg.total_keys / static_cast<std::size_t>(n);
  const std::size_t key_bytes = n_local * 4;

  std::vector<RankData> data(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& d = data[static_cast<std::size_t>(r)];
    auto& p = comm.process(r);
    d.n_local = n_local;
    d.keys = p.heap.malloc(key_bytes);
    d.send_buf = p.heap.malloc(key_bytes);
    // Uniform keys spread evenly; 2x capacity absorbs the imbalance.
    d.recv_buf = p.heap.malloc(2 * key_bytes);
    d.cnt_buf = p.heap.malloc(static_cast<std::size_t>(n) * 4);
    d.mat_buf =
        p.heap.malloc(static_cast<std::size_t>(n) * static_cast<std::size_t>(n) * 4);

    sim::Rng rng(cfg.seed + static_cast<std::uint64_t>(r) * 7919);
    std::vector<std::int32_t> keys(n_local);
    for (auto& k : keys) {
      k = static_cast<std::int32_t>(rng.next_below(cfg.max_key));
    }
    write_ints(p, d.keys, keys);
  }

  auto& eng = comm.process(0).ep.driver().engine();

  auto dest_of = [&](std::int32_t key) {
    const auto d = static_cast<std::size_t>(
        static_cast<std::uint64_t>(key) * static_cast<std::uint64_t>(n) /
        cfg.max_key);
    return std::min(d, static_cast<std::size_t>(n - 1));
  };

  auto iteration = [&](int me) -> sim::Task<> {
    auto& d = data[static_cast<std::size_t>(me)];
    auto& p = comm.process(me);
    const auto nn = static_cast<std::size_t>(n);

    // 1. Local histogram by destination rank.
    auto keys = read_ints(p, d.keys, d.n_local);
    std::vector<std::int32_t> counts(nn, 0);
    for (auto k : keys) ++counts[dest_of(k)];
    write_ints(p, d.cnt_buf, counts);
    // One streaming pass over the keys (compute() itself doubles the byte
    // count to account for read+write traffic).
    co_await comm.compute(me, key_bytes / 2);

    // 2. Everyone learns the full count matrix (row r = rank r's counts).
    std::vector<std::size_t> cnt_counts(nn, nn * 4);
    std::vector<std::size_t> cnt_displs(nn);
    for (std::size_t i = 0; i < nn; ++i) cnt_displs[i] = i * nn * 4;
    co_await comm.allgatherv(me, d.cnt_buf, d.mat_buf, cnt_counts, cnt_displs);

    // 3. Partition keys into the send buffer, destination-major.
    std::vector<std::size_t> send_counts(nn), send_displs(nn);
    std::size_t acc = 0;
    for (std::size_t r2 = 0; r2 < nn; ++r2) {
      send_displs[r2] = acc * 4;
      send_counts[r2] = static_cast<std::size_t>(counts[r2]) * 4;
      acc += static_cast<std::size_t>(counts[r2]);
    }
    {
      std::vector<std::int32_t> partitioned(d.n_local);
      std::vector<std::size_t> cursor(nn);
      for (std::size_t r2 = 0; r2 < nn; ++r2) cursor[r2] = send_displs[r2] / 4;
      for (auto k : keys) partitioned[cursor[dest_of(k)]++] = k;
      write_ints(p, d.send_buf, partitioned);
    }
    co_await comm.compute(me, key_bytes);  // scatter pass: read + write

    // 4. The big exchange: every rank's bucket flows to its owner.
    auto matrix = read_ints(p, d.mat_buf, nn * nn);
    std::vector<std::size_t> recv_counts(nn), recv_displs(nn);
    std::size_t racc = 0;
    for (std::size_t r2 = 0; r2 < nn; ++r2) {
      recv_displs[r2] = racc * 4;
      recv_counts[r2] = static_cast<std::size_t>(
                            matrix[r2 * nn + static_cast<std::size_t>(me)]) *
                        4;
      racc += recv_counts[r2] / 4;
    }
    d.recv_total = racc;
    if (racc * 4 > 2 * key_bytes) {
      throw std::runtime_error("IS bucket imbalance exceeded buffer slack");
    }
    co_await comm.alltoallv(me, d.send_buf, send_counts, send_displs,
                            d.recv_buf, recv_counts, recv_displs);

    // 5. Local sort of the received keys.
    // NPB IS ranks with a counting sort (two streaming passes), which is
    // what we charge; functionally any sort gives the same bytes.
    auto received = read_ints(p, d.recv_buf, d.recv_total);
    std::sort(received.begin(), received.end());
    write_ints(p, d.recv_buf, received);
    co_await comm.compute(me, racc * 4);
  };

  // Warmup pass (NPB runs an untimed iteration before the timed loop).
  mpi::run_ranks(eng, n, [&](int me) -> sim::Task<> {
    co_await comm.barrier(me);
    co_await iteration(me);
  });

  IsResult result;
  result.total_keys = cfg.total_keys;
  result.iterations = cfg.iterations;
  result.elapsed = mpi::run_ranks(eng, n, [&](int me) -> sim::Task<> {
    for (int i = 0; i < cfg.iterations; ++i) co_await iteration(me);
  });

  // full_verify analogue (untimed): keys sorted locally, boundaries ordered
  // across ranks, and no key lost.
  std::vector<int> ok(static_cast<std::size_t>(n), 0);
  mpi::run_ranks(eng, n, [&](int me) -> sim::Task<> {
    auto& d = data[static_cast<std::size_t>(me)];
    auto& p = comm.process(me);
    auto received = read_ints(p, d.recv_buf, d.recv_total);
    bool sorted = std::is_sorted(received.begin(), received.end());

    // Boundary exchange with the right neighbour.
    const std::int32_t my_max = received.empty() ? -1 : received.back();
    const std::int32_t my_min = received.empty() ? -1 : received.front();
    const auto bmax = p.heap.malloc(16);
    write_ints(p, bmax, {my_max});
    const auto binb = p.heap.malloc(16);
    if (me + 1 < n) (void)co_await comm.send(me, me + 1, 900, bmax, 4);
    if (me > 0) {
      (void)co_await comm.recv(me, me - 1, 900, binb, 4);
      const auto prev_max = read_ints(p, binb, 1)[0];
      if (!received.empty() && prev_max > my_min) sorted = false;
    }

    // Count check.
    const auto cnt = p.heap.malloc(16);
    const auto tot = p.heap.malloc(16);
    write_ints(p, cnt, {static_cast<std::int32_t>(d.recv_total)});
    co_await comm.allreduce(me, cnt, tot, 1, mpi::Datatype::kInt32,
                            mpi::Op::kSum);
    const auto total = read_ints(p, tot, 1)[0];
#ifdef PINSIM_IS_DEBUG
    std::fprintf(stderr,
                 "[is] rank %d sorted=%d recv_total=%zu total=%d min=%d max=%d\n",
                 me, sorted ? 1 : 0, d.recv_total, total, my_min, my_max);
#endif
    ok[static_cast<std::size_t>(me)] =
        sorted && total == static_cast<std::int32_t>(cfg.total_keys) ? 1 : 0;
  });

  result.verified = std::all_of(ok.begin(), ok.end(), [](int v) { return v == 1; });
  return result;
}

}  // namespace pinsim::workloads
