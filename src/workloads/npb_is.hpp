#pragma once

#include <cstddef>
#include <cstdint>

#include "mpi/communicator.hpp"
#include "sim/time.hpp"

namespace pinsim::workloads {

/// NPB IS-like parallel integer sort: the large-message-intensive NAS kernel
/// the paper reports in Table 2 (is.C.4). A real bucket sort runs over real
/// keys — histogram, allreduce of bucket counts, alltoallv of the keys
/// (the large messages that make IS benefit from pinning optimizations),
/// local sort, and a cross-rank verification like NPB's full_verify.
///
/// The problem size is scaled down from class C (2^27 keys) to fit the
/// simulator's default memory; the communication pattern and the
/// message-size regime (MBs per rank pair) are preserved.
struct IsConfig {
  std::size_t total_keys = std::size_t{1} << 22;  // class C is 1<<27
  std::uint32_t max_key = 1u << 19;
  int iterations = 10;
  std::uint64_t seed = 314159;
};

struct IsResult {
  sim::Time elapsed = 0;  // the timed iteration loop only
  bool verified = false;  // keys globally sorted, none lost
  std::size_t total_keys = 0;
  int iterations = 0;
};

[[nodiscard]] IsResult run_is(mpi::Communicator& comm, const IsConfig& cfg);

}  // namespace pinsim::workloads
