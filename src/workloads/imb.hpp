#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "mpi/communicator.hpp"
#include "sim/time.hpp"

namespace pinsim::workloads {

/// Intel MPI Benchmarks-style kernels — the workloads behind the paper's
/// Figures 6-7 (PingPong) and Table 2 (SendRecv, Allgatherv, Broadcast,
/// Reduce, Allreduce, Reduce_scatter, Exchange).
///
/// IMB semantics: buffers are allocated once at the largest size and reused
/// every iteration (which is what makes registration caches shine); the
/// reported time is the average per iteration after a warmup pass.
class ImbSuite {
 public:
  struct Config {
    int iterations = 10;
    int warmup = 1;
    /// When > 1, rotate through this many distinct buffers instead of
    /// reusing one — the "application cannot benefit from the pinning
    /// cache" scenario of §4.2 where only overlap helps.
    std::size_t buffer_rotation = 1;
  };

  struct Result {
    std::string benchmark;
    std::size_t bytes = 0;       // message size parameter
    double avg_usec = 0.0;       // per iteration
    double mib_per_sec = 0.0;    // payload throughput (PingPong convention)
  };

  ImbSuite(mpi::Communicator& comm, Config cfg);
  ImbSuite(mpi::Communicator& comm) : ImbSuite(comm, Config()) {}
  ~ImbSuite();

  ImbSuite(const ImbSuite&) = delete;
  ImbSuite& operator=(const ImbSuite&) = delete;

  /// Rank 0 <-> rank 1 round trips; throughput = bytes / (t_roundtrip / 2).
  Result pingpong(std::size_t bytes);

  /// Ring: every rank sends right and receives from left simultaneously.
  Result sendrecv(std::size_t bytes);

  /// Every rank exchanges with both neighbours (isend x2 + recv x2).
  Result exchange(std::size_t bytes);

  Result allgatherv(std::size_t bytes);
  Result bcast(std::size_t bytes);
  Result reduce(std::size_t bytes);
  Result allreduce(std::size_t bytes);
  Result reduce_scatter(std::size_t bytes);

  /// Runs `name` ("PingPong", "SendRecv", "Allgatherv", "Bcast", "Reduce",
  /// "Allreduce", "Reduce_scatter", "Exchange"); throws on unknown names.
  Result run(const std::string& name, std::size_t bytes);

  [[nodiscard]] static const std::vector<std::string>& benchmark_names();

 private:
  /// Per-rank persistent buffers (IMB allocates once at max size).
  struct Buffers {
    std::vector<mem::VirtAddr> send;  // one per rotation slot
    std::vector<mem::VirtAddr> recv;
    std::size_t capacity = 0;
  };

  /// Ensures each rank has send/recv buffers of at least `send_cap` /
  /// `recv_cap` bytes.
  void reserve(std::size_t send_cap, std::size_t recv_cap);

  [[nodiscard]] mem::VirtAddr sbuf(int rank, int iter) const;
  [[nodiscard]] mem::VirtAddr rbuf(int rank, int iter) const;

  /// Runs `iter_body(rank, iter)` cfg.warmup + cfg.iterations times with a
  /// leading barrier, timing only the measured iterations.
  Result measure(const std::string& name, std::size_t bytes,
                 const std::function<sim::Task<>(int, int)>& iter_body,
                 double throughput_factor);

  mpi::Communicator& comm_;
  Config cfg_;
  std::vector<Buffers> bufs_;  // per rank
};

}  // namespace pinsim::workloads
