#include "workloads/stencil.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"

namespace pinsim::workloads {

namespace {

std::vector<double> read_doubles(core::Host::Process& p, mem::VirtAddr a,
                                 std::size_t count) {
  std::vector<std::byte> raw(count * 8);
  p.as.read(a, raw);
  std::vector<double> v(count);
  std::memcpy(v.data(), raw.data(), raw.size());
  return v;
}

void write_doubles(core::Host::Process& p, mem::VirtAddr a,
                   const std::vector<double>& v) {
  std::vector<std::byte> raw(v.size() * 8);
  std::memcpy(raw.data(), v.data(), raw.size());
  p.as.write(a, raw);
}

/// Serial reference: the same Jacobi sweep over the whole grid.
std::vector<double> reference(std::vector<double> grid, std::size_t nx,
                              std::size_t ny, int iterations) {
  std::vector<double> next(grid.size());
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const double up = y > 0 ? grid[(y - 1) * nx + x] : 0.0;
        const double down = y + 1 < ny ? grid[(y + 1) * nx + x] : 0.0;
        const double left = x > 0 ? grid[y * nx + x - 1] : 0.0;
        const double right = x + 1 < nx ? grid[y * nx + x + 1] : 0.0;
        next[y * nx + x] = 0.25 * (up + down + left + right);
      }
    }
    grid.swap(next);
  }
  return grid;
}

}  // namespace

StencilResult run_stencil(mpi::Communicator& comm, const StencilConfig& cfg) {
  const int n = comm.size();
  const std::size_t nx = cfg.nx;
  const std::size_t local_rows = cfg.rows_per_rank;
  const std::size_t ny = local_rows * static_cast<std::size_t>(n);
  const std::size_t row_bytes = nx * 8;
  if (local_rows < 1 || nx < 2) throw std::invalid_argument("grid too small");

  // Initial grid, shared with the serial reference.
  sim::Rng rng(cfg.seed);
  std::vector<double> init(nx * ny);
  for (auto& v : init) v = static_cast<double>(rng.next_below(1000)) / 10.0;

  // Per-rank slabs: local_rows + 2 ghost rows (top, bottom).
  struct RankData {
    mem::VirtAddr slab = 0;  // (local_rows + 2) * nx doubles
    mem::VirtAddr next = 0;  // scratch slab, same layout
  };
  std::vector<RankData> data(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& d = data[static_cast<std::size_t>(r)];
    auto& p = comm.process(r);
    d.slab = p.heap.malloc((local_rows + 2) * row_bytes);
    d.next = p.heap.malloc((local_rows + 2) * row_bytes);
    // Interior rows come from the shared initial grid; ghosts start zero.
    std::vector<double> rows(init.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(r) * local_rows * nx),
                             init.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     (static_cast<std::size_t>(r) + 1) *
                                     local_rows * nx));
    write_doubles(p, d.slab + row_bytes, rows);
    p.as.fill(d.slab, row_bytes, std::byte{0});
    p.as.fill(d.slab + (local_rows + 1) * row_bytes, row_bytes, std::byte{0});
  }

  auto& eng = comm.process(0).ep.driver().engine();

  auto iteration = [&](int me) -> sim::Task<> {
    auto& d = data[static_cast<std::size_t>(me)];
    auto& p = comm.process(me);
    const int up = me - 1;
    const int down = me + 1;

    // Halo exchange: send my first interior row up, last interior row down;
    // receive into the ghost rows. Blocking sendrecv per direction.
    std::vector<core::RequestPtr> reqs;
    if (up >= 0) {
      reqs.push_back(comm.irecv(me, up, 11, d.slab, row_bytes));
      reqs.push_back(comm.isend(me, up, 12, d.slab + row_bytes, row_bytes));
    }
    if (down < comm.size()) {
      reqs.push_back(comm.irecv(me, down, 12,
                                d.slab + (local_rows + 1) * row_bytes,
                                row_bytes));
      reqs.push_back(
          comm.isend(me, down, 11, d.slab + local_rows * row_bytes, row_bytes));
    }
    for (auto& r : reqs) co_await r->wait();

    // Jacobi sweep over the interior, honouring global boundary rows.
    auto cur = read_doubles(p, d.slab, (local_rows + 2) * nx);
    std::vector<double> nxt((local_rows + 2) * nx, 0.0);
    const std::size_t global_base =
        static_cast<std::size_t>(me) * local_rows;  // global row of slab row 1
    for (std::size_t ly = 1; ly <= local_rows; ++ly) {
      const std::size_t gy = global_base + ly - 1;
      for (std::size_t x = 0; x < nx; ++x) {
        const double up_v = gy > 0 ? cur[(ly - 1) * nx + x] : 0.0;
        const double down_v =
            gy + 1 < local_rows * static_cast<std::size_t>(comm.size())
                ? cur[(ly + 1) * nx + x]
                : 0.0;
        const double left = x > 0 ? cur[ly * nx + x - 1] : 0.0;
        const double right = x + 1 < nx ? cur[ly * nx + x + 1] : 0.0;
        nxt[ly * nx + x] = 0.25 * (up_v + down_v + left + right);
      }
    }
    write_doubles(p, d.next, nxt);
    std::swap(d.slab, d.next);
    // 5-point stencil: ~5 reads + 1 write per cell, memory bound.
    co_await comm.compute(me, 3 * local_rows * row_bytes / 2);
  };

  // Warmup barrier only (the stencil has no separate warmup semantics).
  StencilResult result;
  result.elapsed = mpi::run_ranks(eng, n, [&](int me) -> sim::Task<> {
    co_await comm.barrier(me);
    for (int it = 0; it < cfg.iterations; ++it) co_await iteration(me);
  });

  // Verify against the serial reference.
  const auto expect = reference(init, nx, ny, cfg.iterations);
  bool ok = true;
  double checksum = 0.0;
  for (int r = 0; r < n; ++r) {
    auto& d = data[static_cast<std::size_t>(r)];
    auto got = read_doubles(comm.process(r), d.slab + row_bytes,
                            local_rows * nx);
    for (std::size_t i = 0; i < got.size(); ++i) {
      const std::size_t gidx =
          static_cast<std::size_t>(r) * local_rows * nx + i;
      if (got[i] != expect[gidx]) ok = false;
      checksum += got[i];
    }
  }
  result.verified = ok;
  result.checksum = checksum;
  return result;
}

}  // namespace pinsim::workloads
