#pragma once

#include <cstddef>
#include <cstdint>

#include "mpi/communicator.hpp"
#include "sim/time.hpp"

namespace pinsim::workloads {

/// 2-D Jacobi heat-diffusion stencil with 1-D row decomposition and ghost-row
/// halo exchange — the classic blocking-sendrecv pattern the paper's §5
/// discussion identifies as the prime beneficiary of overlapped pinning
/// (each iteration blocks on its neighbours before computing).
///
/// The computation is real: every rank owns a slab of doubles in simulated
/// memory, exchanges boundary rows each iteration, and applies the 4-point
/// average; the result is verified against a serial reference computation.
struct StencilConfig {
  std::size_t nx = 4096;        // columns (one row = nx doubles)
  std::size_t rows_per_rank = 64;
  int iterations = 10;
  std::uint64_t seed = 1234;
};

struct StencilResult {
  sim::Time elapsed = 0;   // timed iteration loop
  bool verified = false;   // matches the serial reference bit-for-bit
  double checksum = 0.0;
};

[[nodiscard]] StencilResult run_stencil(mpi::Communicator& comm,
                                        const StencilConfig& cfg);

}  // namespace pinsim::workloads
