#include "workloads/imb.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/stats.hpp"

namespace pinsim::workloads {

ImbSuite::ImbSuite(mpi::Communicator& comm, Config cfg)
    : comm_(comm), cfg_(cfg), bufs_(static_cast<std::size_t>(comm.size())) {
  if (cfg_.buffer_rotation == 0) {
    throw std::invalid_argument("buffer_rotation must be >= 1");
  }
}

ImbSuite::~ImbSuite() = default;

void ImbSuite::reserve(std::size_t send_cap, std::size_t recv_cap) {
  for (int r = 0; r < comm_.size(); ++r) {
    auto& b = bufs_[static_cast<std::size_t>(r)];
    const std::size_t cap = std::max(send_cap, recv_cap);
    if (b.capacity >= cap && !b.send.empty()) continue;
    auto& p = comm_.process(r);
    // IMB allocates once at the maximum size and keeps reusing the buffer.
    b.send.clear();
    b.recv.clear();
    for (std::size_t i = 0; i < cfg_.buffer_rotation; ++i) {
      const auto s = p.heap.malloc(cap);
      const auto d = p.heap.malloc(cap);
      p.as.fill(s, cap, std::byte{0x5c});
      p.as.fill(d, cap, std::byte{0});
      b.send.push_back(s);
      b.recv.push_back(d);
    }
    b.capacity = cap;
  }
}

mem::VirtAddr ImbSuite::sbuf(int rank, int iter) const {
  const auto& b = bufs_[static_cast<std::size_t>(rank)];
  return b.send[static_cast<std::size_t>(iter) % b.send.size()];
}

mem::VirtAddr ImbSuite::rbuf(int rank, int iter) const {
  const auto& b = bufs_[static_cast<std::size_t>(rank)];
  return b.recv[static_cast<std::size_t>(iter) % b.recv.size()];
}

ImbSuite::Result ImbSuite::measure(
    const std::string& name, std::size_t bytes,
    const std::function<sim::Task<>(int, int)>& iter_body,
    double throughput_factor) {
  auto& eng = comm_.process(0).ep.driver().engine();
  const int n = comm_.size();

  // Warmup (untimed): faults buffers in, fills caches where enabled.
  mpi::run_ranks(eng, n, [&](int me) -> sim::Task<> {
    co_await comm_.barrier(me);
    for (int w = 0; w < cfg_.warmup; ++w) co_await iter_body(me, w);
  });

  const sim::Time elapsed =
      mpi::run_ranks(eng, n, [&](int me) -> sim::Task<> {
        for (int i = 0; i < cfg_.iterations; ++i) {
          co_await iter_body(me, cfg_.warmup + i);
        }
      });

  Result res;
  res.benchmark = name;
  res.bytes = bytes;
  res.avg_usec = sim::to_usec(elapsed) / cfg_.iterations;
  if (throughput_factor > 0.0 && elapsed > 0) {
    const double per_iter = static_cast<double>(elapsed) /
                            static_cast<double>(cfg_.iterations);
    res.mib_per_sec = throughput_factor * static_cast<double>(bytes) /
                      (1024.0 * 1024.0) /
                      (per_iter / static_cast<double>(sim::kSecond));
  }
  return res;
}

ImbSuite::Result ImbSuite::pingpong(std::size_t bytes) {
  assert(comm_.size() >= 2);
  reserve(bytes, bytes);
  return measure(
      "PingPong", bytes,
      [this, bytes](int me, int iter) -> sim::Task<> {
        if (me == 0) {
          (void)co_await comm_.send(0, 1, 100, sbuf(0, iter), bytes);
          (void)co_await comm_.recv(0, 1, 101, rbuf(0, iter), bytes);
        } else if (me == 1) {
          (void)co_await comm_.recv(1, 0, 100, rbuf(1, iter), bytes);
          (void)co_await comm_.send(1, 0, 101, sbuf(1, iter), bytes);
        }
        co_return;
      },
      /*throughput_factor: bytes/(t/2)*/ 2.0);
}

ImbSuite::Result ImbSuite::sendrecv(std::size_t bytes) {
  reserve(bytes, bytes);
  const int n = comm_.size();
  return measure(
      "SendRecv", bytes,
      [this, bytes, n](int me, int iter) -> sim::Task<> {
        const int right = (me + 1) % n;
        const int left = (me - 1 + n) % n;
        co_await comm_.sendrecv(me, right, sbuf(me, iter), bytes, left,
                                rbuf(me, iter), bytes, 102);
      },
      2.0);
}

ImbSuite::Result ImbSuite::exchange(std::size_t bytes) {
  reserve(bytes, 2 * bytes);
  const int n = comm_.size();
  return measure(
      "Exchange", bytes,
      [this, bytes, n](int me, int iter) -> sim::Task<> {
        const int right = (me + 1) % n;
        const int left = (me - 1 + n) % n;
        auto r1 = comm_.irecv(me, left, 103, rbuf(me, iter), bytes);
        auto r2 = comm_.irecv(me, right, 104, rbuf(me, iter) + bytes, bytes);
        auto s1 = comm_.isend(me, right, 103, sbuf(me, iter), bytes);
        auto s2 = comm_.isend(me, left, 104, sbuf(me, iter), bytes);
        co_await s1->wait();
        co_await s2->wait();
        co_await r1->wait();
        co_await r2->wait();
      },
      4.0);
}

ImbSuite::Result ImbSuite::allgatherv(std::size_t bytes) {
  const auto n = static_cast<std::size_t>(comm_.size());
  reserve(bytes, n * bytes);
  std::vector<std::size_t> counts(n, bytes);
  std::vector<std::size_t> displs(n);
  for (std::size_t i = 0; i < n; ++i) displs[i] = i * bytes;
  return measure(
      "Allgatherv", bytes,
      [this, counts, displs](int me, int iter) -> sim::Task<> {
        co_await comm_.allgatherv(me, sbuf(me, iter), rbuf(me, iter), counts,
                                  displs);
      },
      0.0);
}

ImbSuite::Result ImbSuite::bcast(std::size_t bytes) {
  reserve(bytes, bytes);
  return measure(
      "Bcast", bytes,
      [this, bytes](int me, int iter) -> sim::Task<> {
        co_await comm_.bcast(me, 0, sbuf(me, iter), bytes);
      },
      0.0);
}

ImbSuite::Result ImbSuite::reduce(std::size_t bytes) {
  reserve(bytes, bytes);
  const std::size_t count = bytes / 4;
  return measure(
      "Reduce", bytes,
      [this, count](int me, int iter) -> sim::Task<> {
        co_await comm_.reduce(me, 0, sbuf(me, iter), rbuf(me, iter), count,
                              mpi::Datatype::kFloat, mpi::Op::kSum);
      },
      0.0);
}

ImbSuite::Result ImbSuite::allreduce(std::size_t bytes) {
  reserve(bytes, bytes);
  const std::size_t count = bytes / 4;
  return measure(
      "Allreduce", bytes,
      [this, count](int me, int iter) -> sim::Task<> {
        co_await comm_.allreduce(me, sbuf(me, iter), rbuf(me, iter), count,
                                 mpi::Datatype::kFloat, mpi::Op::kSum);
      },
      0.0);
}

ImbSuite::Result ImbSuite::reduce_scatter(std::size_t bytes) {
  const auto n = static_cast<std::size_t>(comm_.size());
  reserve(bytes, bytes);
  const std::size_t count_per_rank = bytes / 4 / n;
  return measure(
      "Reduce_scatter", bytes,
      [this, count_per_rank](int me, int iter) -> sim::Task<> {
        co_await comm_.reduce_scatter(me, sbuf(me, iter), rbuf(me, iter),
                                      count_per_rank, mpi::Datatype::kFloat,
                                      mpi::Op::kSum);
      },
      0.0);
}

const std::vector<std::string>& ImbSuite::benchmark_names() {
  static const std::vector<std::string> names = {
      "PingPong", "SendRecv",  "Allgatherv",     "Bcast",
      "Reduce",   "Allreduce", "Reduce_scatter", "Exchange"};
  return names;
}

ImbSuite::Result ImbSuite::run(const std::string& name, std::size_t bytes) {
  if (name == "PingPong") return pingpong(bytes);
  if (name == "SendRecv") return sendrecv(bytes);
  if (name == "Allgatherv") return allgatherv(bytes);
  if (name == "Bcast") return bcast(bytes);
  if (name == "Reduce") return reduce(bytes);
  if (name == "Allreduce") return allreduce(bytes);
  if (name == "Reduce_scatter") return reduce_scatter(bytes);
  if (name == "Exchange") return exchange(bytes);
  throw std::invalid_argument("unknown IMB benchmark: " + name);
}

}  // namespace pinsim::workloads
