#pragma once

#include "obs/bus.hpp"
#include "obs/event.hpp"
#include "sim/trace.hpp"

namespace pinsim::obs {

/// The per-component emission point: a Bus pointer for typed sinks plus the
/// legacy sim::Tracer pointer, either of which may be null. Components own a
/// Relay (or hold a pointer to one with a stable address) and emit typed
/// events through it; the relay renders the legacy string form for the
/// tracer so every pre-existing `Tracer`-based test and tool keeps working.
///
/// A relay registers itself with the bus it points at and unregisters when
/// repointed or destroyed, feeding the Bus teardown-order guard: destroying
/// a bus that a live relay still targets aborts with a diagnostic instead
/// of leaving a dangling pointer. Move-only — a copy would double-count its
/// registration.
class Relay {
 public:
  Relay() = default;
  Relay(const Relay&) = delete;
  Relay& operator=(const Relay&) = delete;
  Relay(Relay&& o) noexcept : bus_(o.bus_), tracer_(o.tracer_) {
    o.bus_ = nullptr;
    o.tracer_ = nullptr;
  }
  Relay& operator=(Relay&& o) noexcept {
    if (this != &o) {
      if (bus_ != nullptr) bus_->unregister_emitter();
      bus_ = o.bus_;
      tracer_ = o.tracer_;
      o.bus_ = nullptr;
      o.tracer_ = nullptr;
    }
    return *this;
  }
  ~Relay() {
    if (bus_ != nullptr) bus_->unregister_emitter();
  }

  void set_bus(Bus* b) noexcept {
    if (bus_ == b) return;
    if (bus_ != nullptr) bus_->unregister_emitter();
    if (b != nullptr) b->register_emitter();
    bus_ = b;
  }
  void set_tracer(sim::Tracer* t) noexcept { tracer_ = t; }
  [[nodiscard]] Bus* bus() const noexcept { return bus_; }
  [[nodiscard]] sim::Tracer* tracer() const noexcept { return tracer_; }

  [[nodiscard]] bool active() const noexcept {
    return tracer_ != nullptr || (bus_ != nullptr && bus_->active());
  }

  void emit(const Event& e) const;

 private:
  Bus* bus_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
};

}  // namespace pinsim::obs
