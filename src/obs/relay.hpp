#pragma once

#include "obs/bus.hpp"
#include "obs/event.hpp"
#include "sim/trace.hpp"

namespace pinsim::obs {

/// The per-component emission point: a Bus pointer for typed sinks plus the
/// legacy sim::Tracer pointer, either of which may be null. Components own a
/// Relay (or hold a pointer to one with a stable address) and emit typed
/// events through it; the relay renders the legacy string form for the
/// tracer so every pre-existing `Tracer`-based test and tool keeps working.
class Relay {
 public:
  void set_bus(Bus* b) noexcept { bus_ = b; }
  void set_tracer(sim::Tracer* t) noexcept { tracer_ = t; }
  [[nodiscard]] Bus* bus() const noexcept { return bus_; }
  [[nodiscard]] sim::Tracer* tracer() const noexcept { return tracer_; }

  [[nodiscard]] bool active() const noexcept {
    return tracer_ != nullptr || (bus_ != nullptr && bus_->active());
  }

  void emit(const Event& e) const;

 private:
  Bus* bus_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
};

}  // namespace pinsim::obs
