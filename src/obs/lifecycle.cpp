#include "obs/lifecycle.hpp"

#include "obs/json.hpp"

namespace pinsim::obs {

void LifecycleRecorder::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kLifeCrash: {
      ++totals_.crashes;
      totals_.reclaimed_pages += e.region;
      auto& w = slots_[slot_key(e)];
      w.crashed_at = e.time;
      w.down = true;
      w.awaiting_completion = false;
      break;
    }
    case EventKind::kLifeRestart: {
      ++totals_.restarts;
      auto& w = slots_[slot_key(e)];
      if (w.down) {
        totals_.restart_delay_ns +=
            static_cast<std::uint64_t>(e.time - w.crashed_at);
      }
      w.down = false;
      w.restarted_at = e.time;
      w.awaiting_completion = true;
      break;
    }
    case EventKind::kLifeLinkDown:
      ++totals_.link_downs;
      break;
    case EventKind::kLifeNicReset:
      ++totals_.nic_resets;
      break;
    case EventKind::kLifePeerDead:
      ++totals_.peer_deaths;
      break;
    case EventKind::kLifeFence:
      ++totals_.fenced_frames;
      break;
    case EventKind::kSendDone:
    case EventKind::kRecvDone: {
      auto it = slots_.find(slot_key(e));
      if (it != slots_.end() && it->second.awaiting_completion &&
          !it->second.down) {
        totals_.recovery_ns +=
            static_cast<std::uint64_t>(e.time - it->second.restarted_at);
        ++totals_.recoveries;
        it->second.awaiting_completion = false;
      }
      break;
    }
    default:
      break;
  }
}

std::string LifecycleRecorder::json() const {
  auto field = [](const char* name, std::uint64_t v) {
    return json_str(name) + ":" + json_num(v);
  };
  std::string out = "{";
  out += field("crashes", totals_.crashes);
  out += "," + field("restarts", totals_.restarts);
  out += "," + field("link_downs", totals_.link_downs);
  out += "," + field("nic_resets", totals_.nic_resets);
  out += "," + field("peer_deaths", totals_.peer_deaths);
  out += "," + field("fenced_frames", totals_.fenced_frames);
  out += "," + field("reclaimed_pages", totals_.reclaimed_pages);
  out += "," + field("restart_delay_ns", totals_.restart_delay_ns);
  out += "," + field("recovery_ns", totals_.recovery_ns);
  out += "," + field("recoveries", totals_.recoveries);
  out += "}";
  return out;
}

}  // namespace pinsim::obs
