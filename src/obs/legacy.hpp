#pragma once

#include <string>

#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "sim/trace.hpp"

namespace pinsim::obs {

/// Renders a typed event into the legacy (category, detail) string pair the
/// pre-obs stack used to format at every call site. The categories and
/// details for kinds that existed before the typed bus are byte-identical to
/// the old output (tests assert on them); new kinds get new dotted
/// categories that do not collide with any asserted prefix.
struct LegacyStrings {
  std::string category;
  std::string detail;
};

[[nodiscard]] LegacyStrings legacy_strings(const Event& e);

/// One-line human rendering (violation windows, debug dumps).
[[nodiscard]] std::string describe(const Event& e);

/// The old string API kept as one sink: adapts a Bus to a sim::Tracer.
class TracerSink final : public Sink {
 public:
  explicit TracerSink(sim::Tracer& tracer) : tracer_(tracer) {}

  void on_event(const Event& e) override {
    LegacyStrings s = legacy_strings(e);
    tracer_.record(std::move(s.category), std::move(s.detail));
  }

 private:
  sim::Tracer& tracer_;
};

}  // namespace pinsim::obs
