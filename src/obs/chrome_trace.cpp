#include "obs/chrome_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <set>

#include "obs/legacy.hpp"

namespace pinsim::obs {

namespace {

// Sender-side identity of a rendezvous chain, used as the flow/async id so
// every hop of one transfer shares an arc (same key the critical-path
// analyzer stitches chains with).
std::uint64_t send_flow_id(std::uint32_t node, std::uint8_t ep,
                           std::uint32_t seq) {
  return chain_key(node, ep, seq);
}

void append_common(std::string& out, const Event& e, const char* name,
                   const char* cat, const char* ph) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                "\"pid\":%u,\"tid\":%u,\"ts\":%.3f",
                name, cat, ph, e.node, static_cast<unsigned>(e.ep),
                static_cast<double>(e.time) / 1000.0);
  out += buf;
}

void append_id(std::string& out, std::uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, ",\"id\":\"0x%" PRIx64 "\"", id);
  out += buf;
}

void append_args(std::string& out, const Event& e) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                ",\"args\":{\"peer\":%u,\"peer_ep\":%u,\"region\":%u,"
                "\"seq\":%u,\"offset\":%" PRIu64 ",\"len\":%" PRIu64 "%s%s%s"
                "}}",
                e.peer, static_cast<unsigned>(e.peer_ep), e.region, e.seq,
                e.offset, e.len, e.label != nullptr ? ",\"label\":\"" : "",
                e.label != nullptr ? e.label : "",
                e.label != nullptr ? "\"" : "");
  out += buf;
}

void append_flow(std::string& out, const Event& e, const char* ph,
                 std::uint64_t id) {
  append_common(out, e, "rndv", "flow", ph);
  append_id(out, id);
  if (ph[0] == 't') out += ",\"bp\":\"e\"";
  out += "},\n";
}

}  // namespace

std::string ChromeTraceWriter::render() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

  // Track naming metadata: one process per node, one thread per endpoint.
  std::set<std::uint32_t> nodes;
  std::set<std::pair<std::uint32_t, std::uint8_t>> eps;
  for (const Event& e : events_) {
    nodes.insert(e.node);
    eps.insert({e.node, e.ep});
  }
  char buf[192];
  for (std::uint32_t n : nodes) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"node %u\"}},\n",
                  n, n);
    out += buf;
  }
  for (const auto& [n, ep] : eps) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":%u,\"args\":{\"name\":\"endpoint %u\"}},\n",
                  n, static_cast<unsigned>(ep), static_cast<unsigned>(ep));
    out += buf;
  }

  for (const Event& e : events_) {
    const char* name = event_kind_name(e.kind);
    switch (e.kind) {
      // Async spans: pin jobs (id = region) and transfers (id = chain).
      case EventKind::kPinStart:
        append_common(out, e, "pin", "pin", "b");
        append_id(out, send_flow_id(e.node, e.ep, e.region) | (1ull << 63));
        append_args(out, e);
        out += ",\n";
        break;
      case EventKind::kPinDone:
      case EventKind::kPinFail:
        append_common(out, e, "pin", "pin", "e");
        append_id(out, send_flow_id(e.node, e.ep, e.region) | (1ull << 63));
        append_args(out, e);
        out += ",\n";
        break;
      case EventKind::kRndvPost:
      case EventKind::kEagerPost:
        append_common(out, e, "send", "proto", "b");
        append_id(out, send_flow_id(e.node, e.ep, e.seq));
        append_args(out, e);
        out += ",\n";
        if (e.kind == EventKind::kRndvPost) {
          append_flow(out, e, "s", send_flow_id(e.node, e.ep, e.seq));
        }
        break;
      case EventKind::kSendDone:
      case EventKind::kSendAbort:
        append_common(out, e, "send", "proto", "e");
        append_id(out, send_flow_id(e.node, e.ep, e.seq));
        append_args(out, e);
        out += ",\n";
        append_flow(out, e, "f", send_flow_id(e.node, e.ep, e.seq));
        break;
      case EventKind::kPullStart:
        // The pull knows the sender-side chain: peer endpoint + sender seq
        // travel in the event, binding the receive to the rendezvous arc.
        append_common(out, e, "pull", "proto", "b");
        append_id(out, send_flow_id(e.peer, e.peer_ep,
                                    static_cast<std::uint32_t>(e.offset)) |
                           (1ull << 62));
        append_args(out, e);
        out += ",\n";
        append_flow(out, e, "t",
                    send_flow_id(e.peer, e.peer_ep,
                                 static_cast<std::uint32_t>(e.offset)));
        break;
      case EventKind::kRecvDone:
      case EventKind::kRecvAbort:
        append_common(out, e, "pull", "proto", "e");
        append_id(out, send_flow_id(e.peer, e.peer_ep,
                                    static_cast<std::uint32_t>(e.offset)) |
                           (1ull << 62));
        append_args(out, e);
        out += ",\n";
        break;
      case EventKind::kRetransmit:
        append_common(out, e, name, "proto", "i");
        out += ",\"s\":\"t\"";
        append_args(out, e);
        out += ",\n";
        append_flow(out, e, "t", send_flow_id(e.node, e.ep, e.seq));
        break;
      case EventKind::kPullRetry:
        append_common(out, e, name, "proto", "i");
        out += ",\"s\":\"t\"";
        append_args(out, e);
        out += ",\n";
        append_flow(out, e, "t",
                    send_flow_id(e.peer, e.peer_ep,
                                 static_cast<std::uint32_t>(e.offset)));
        break;
      default:
        append_common(out, e, name, "event", "i");
        out += ",\"s\":\"t\"";
        append_args(out, e);
        out += ",\n";
        break;
    }
  }

  // Trailing sentinel instant keeps the array well-formed after the last
  // comma without tracking "first element" state above. Stamped at the last
  // event's time so the rendered stream stays timestamp-ordered.
  const double end_ts =
      events_.empty() ? 0.0 : static_cast<double>(events_.back().time) / 1000.0;
  char tail[96];
  std::snprintf(tail, sizeof tail,
                "{\"name\":\"trace_end\",\"ph\":\"i\",\"pid\":0,\"tid\":0,"
                "\"ts\":%.3f,\"s\":\"g\"}\n]}\n",
                end_ts);
  out += tail;
  return out;
}

void ChromeTraceWriter::finalize() {
  if (written_ || path_.empty()) return;
  written_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write chrome trace to %s\n",
                 path_.c_str());
    return;
  }
  const std::string body = render();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace pinsim::obs
