#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace pinsim::obs {

/// Every event kind the stack emits. One enum across layers so sinks can
/// switch on it without string matching; the legacy string tracer derives
/// its dotted categories from these (see legacy.hpp).
enum class EventKind : std::uint8_t {
  // Wire / driver.
  kPktTx,            // frame handed to the NIC
  kPktRx,            // frame decoded and dispatched to an endpoint
  kPktChecksumDrop,  // CRC mismatch, frame dropped
  kPktMalformed,     // undecodable frame dropped

  // Send-side protocol lifecycle.
  kEagerPost,   // eager send posted (seq, len)
  kRndvPost,    // rendezvous send posted (seq, region, len)
  kSendDone,    // send completed ok (eager ack or notify)
  kSendAbort,   // send failed/aborted
  kRetransmit,  // send retransmission timer fired (offset = retry count)

  // Receive-side pull lifecycle.
  kPullStart,     // pull transfer created (seq = handle, offset = sender seq)
  kPullBlockReq,  // PULL for one block (offset, len)
  kPullRetry,     // stalled pull re-requested (len = stall ticks)
  kRecvDone,      // pull transfer completed ok
  kRecvAbort,     // pull transfer aborted

  // Overlap misses (paper §3.3) and data movement.
  kOverlapMissSend,  // sender could not serve a pull from unpinned pages
  kOverlapMissRecv,  // receiver dropped a reply landing on unpinned pages
  kCopyIn,           // bytes landed in a pinned region (region, offset, len)
  kCopyOut,          // bytes served from a pinned region
  kDmaCopy,          // I/OAT channel finished a copy (len = bytes)

  // Pin state machine (offset = pinned frontier in pages, len = total pages).
  kPinReset,       // failed region reset for retry
  kPinStart,       // pin job started
  kPinPages,       // chunk committed, frontier advanced
  kPinShrink,      // chunk shrunk to quota headroom
  kPinRetry,       // transient denial, backing off
  kPinRestart,     // invalidated mid-pin, restarting
  kPinInvalidate,  // MMU notifier truncated the frontier (seq = cut slot)
  kPinDone,        // fully pinned
  kPinFail,        // pin job failed
  kPinShed,        // pins shed under memory pressure
  kPinUnpin,       // all pins released

  // Memory-pressure injection.
  kPressureDeny,
  kPressureSweep,
  kPressureMigrate,
  kPressureCow,

  // Network fault injection.
  kFaultDrop,
  kFaultCorrupt,
  kFaultDup,
  kFaultReorder,

  // Component lifecycle (crash/restart injection, PR 7). For kLifeCrash,
  // `offset` is the host's pinned-page count after the reclaim sweep,
  // `len` the expected non-tenant baseline (the invariant checker proves
  // offset == len), `region` the pages the sweep reclaimed from the dying
  // tenant, and `seq` the dying incarnation's epoch.
  kLifeCrash,     // process killed; pins reclaimed via the notifier sweep
  kLifeRestart,   // process restarted (seq = new epoch)
  kLifeLinkDown,  // fabric port forced down (node = port)
  kLifeLinkUp,    // fabric port restored
  kLifeNicReset,  // NIC rings wiped mid-transfer (len = tx frames dropped)
  kLifePeerDead,  // watchdog declared a peer dead (peer = node)
  kLifePeerAlive, // watchdog heard the peer again
  kLifeFence,     // stale-epoch frame fenced at the driver (seq = frame epoch)

  // Cluster switch fabric (net/topology.hpp). `node` is the switch port id
  // (downlink ports share the destination node's id, uplink ports live in
  // a disjoint id range), `pkt` is 1 on uplink ports. For kNetPortQueue,
  // `offset` is the queue depth after the transition and `len` the port's
  // capacity (the invariant checker asserts offset <= len). For kNetPortTx,
  // `offset` is the serialization time in ns and `len` the wire bytes. For
  // kNetCongestionDrop, `peer` is the frame's destination node and `len`
  // its wire bytes.
  kNetPortQueue,       // egress queue depth changed (enqueue or drain)
  kNetPortTx,          // frame finished clocking out of a switch port
  kNetCongestionDrop,  // bounded egress queue overflowed; frame lost
};

[[nodiscard]] const char* event_kind_name(EventKind k) noexcept;

/// Sender-side identity of one message chain: every hop of a rendezvous or
/// eager transfer — post, pulls, retransmissions, completion — shares the
/// (origin node, origin endpoint, send seq) triple. The Chrome-trace writer
/// uses it as the flow/async id; the critical-path analyzer as the chain
/// key. Receiver-side events name the same chain through (peer, peer_ep,
/// sender seq).
[[nodiscard]] inline std::uint64_t chain_key(std::uint32_t node,
                                             std::uint8_t ep,
                                             std::uint32_t seq) noexcept {
  return (static_cast<std::uint64_t>(node) << 40) |
         (static_cast<std::uint64_t>(ep) << 32) | seq;
}

/// One observed event: a small POD stamped with simulated time by the Bus.
/// Field meaning is per-kind (documented on the enum); unused fields stay 0.
/// `label` must point at a string with static storage duration (packet type
/// names, literal reasons) — sinks may keep events past the emitting call.
struct Event {
  sim::Time time = 0;
  EventKind kind = EventKind::kPktTx;
  std::uint8_t ep = 0;        // emitting endpoint id
  std::uint8_t peer_ep = 0;   // remote endpoint id (wire events)
  std::uint8_t pkt = 0;       // PacketType as integer (wire events)
  std::uint32_t node = 0;     // emitting node
  std::uint32_t peer = 0;     // remote node
  std::uint32_t region = 0;   // region id (pin/copy events)
  std::uint32_t seq = 0;      // send seq / pull handle / invalidation cut
  std::uint64_t offset = 0;   // byte offset / pinned frontier / retry count
  std::uint64_t len = 0;      // byte length / total pages
  const char* label = nullptr;
};

}  // namespace pinsim::obs
