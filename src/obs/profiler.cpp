#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "obs/json.hpp"

namespace pinsim::obs {

namespace {

// Wall-clock self time is host-noise profiling data; it is only rendered
// into reports on instrumented runs, outside the byte-compared determinism
// surface (DESIGN.md §10).
std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // pinlint: allow(D1: wall-clock profiling, never in sim state)
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr const char* kUntaggedComponent = "other";
constexpr const char* kUntaggedLabel = "untagged";

}  // namespace

Profiler::Slot& Profiler::slot_for(const sim::TaskTag& tag) {
  TagKey key{tag.component, tag.label};
  auto [it, inserted] = index_.try_emplace(key, slots_.size());
  if (inserted) {
    Slot s;
    s.component = tag.component == nullptr ? kUntaggedComponent
                                           : tag.component;
    s.label = tag.label == nullptr ? kUntaggedLabel : tag.label;
    slots_.push_back(s);
  }
  return slots_[it->second];
}

void Profiler::on_dispatch_begin(const sim::TaskTag& tag,
                                 sim::Time scheduled_at, sim::Time now) {
  Slot& s = slot_for(tag);
  ++s.dispatches;
  ++total_dispatches_;
  if (now > scheduled_at) {
    s.sim_lag += static_cast<std::uint64_t>(now - scheduled_at);
  }
  cur_ = static_cast<std::size_t>(&s - slots_.data());
  if (wall_clock_) cur_start_ns_ = wall_now_ns();
}

void Profiler::on_dispatch_end(const sim::TaskTag& tag) {
  (void)tag;
  if (cur_ == SIZE_MAX) return;
  if (wall_clock_) {
    const std::uint64_t end = wall_now_ns();
    if (end > cur_start_ns_) slots_[cur_].self_ns += end - cur_start_ns_;
  }
  cur_ = SIZE_MAX;
}

std::vector<Profiler::TagStats> Profiler::stats() const {
  // Merge by rendered name: the same literal tag can reach the profiler
  // through different addresses across translation units. An ordered map
  // gives the byte-stable name sort for free.
  std::map<std::string, TagStats> merged;
  for (const Slot& s : slots_) {
    std::string name = std::string(s.component) + "/" + s.label;
    TagStats& t = merged[name];
    t.name = name;
    t.dispatches += s.dispatches;
    t.sim_lag_ns += s.sim_lag;
    t.self_ns += s.self_ns;
  }
  std::vector<TagStats> out;
  out.reserve(merged.size());
  for (auto& [name, t] : merged) out.push_back(std::move(t));
  return out;
}

std::string Profiler::json(std::size_t top_k) const {
  const std::vector<TagStats> tags = stats();
  std::string out = "{\"total_dispatches\":" + json_num(total_dispatches_);
  out += ",\"tags\":[";
  bool first = true;
  for (const TagStats& t : tags) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json_str(t.name);
    out += ",\"dispatches\":" + json_num(t.dispatches);
    out += ",\"sim_lag_ns\":" + json_num(t.sim_lag_ns);
    if (wall_clock_) {
      // pinlint: allow(D1: wall-clock fields appear only on instrumented
      // runs, which are excluded from determinism byte-compares)
      const double self_ms = static_cast<double>(t.self_ns) / 1e6;
      out += ",\"self_ms\":" + json_num(self_ms);
      if (t.self_ns > 0) {
        out += ",\"events_per_sec\":" +
               json_num(static_cast<double>(t.dispatches) * 1e9 /
                        static_cast<double>(t.self_ns));
      }
    }
    out += "}";
  }
  out += "]";
  if (wall_clock_ && !tags.empty()) {
    std::vector<const TagStats*> hot;
    hot.reserve(tags.size());
    for (const TagStats& t : tags) hot.push_back(&t);
    std::sort(hot.begin(), hot.end(),
              [](const TagStats* a, const TagStats* b) {
                if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
                return a->name < b->name;
              });
    if (hot.size() > top_k) hot.resize(top_k);
    out += ",\"top\":[";
    for (std::size_t i = 0; i < hot.size(); ++i) {
      if (i != 0) out += ",";
      out += json_str(hot[i]->name);
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string Profiler::speedscope_json(std::string_view name) const {
  const std::vector<TagStats> tags = stats();
  std::string frames;
  std::string samples;
  std::string weights;
  double total = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const TagStats& t = tags[i];
    const double w = wall_clock_ ? static_cast<double>(t.self_ns) / 1e6
                                 : static_cast<double>(t.dispatches);
    if (!first) {
      frames += ",";
      samples += ",";
      weights += ",";
    }
    first = false;
    frames += "{\"name\":" + json_str(t.name) + "}";
    samples += "[" + json_num(static_cast<std::uint64_t>(i)) + "]";
    weights += json_num(w);
    total += w;
  }
  std::string out =
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\"";
  out += ",\"shared\":{\"frames\":[" + frames + "]}";
  out += ",\"profiles\":[{\"type\":\"sampled\"";
  out += ",\"name\":" + json_str(name);
  out += ",\"unit\":";
  out += wall_clock_ ? "\"milliseconds\"" : "\"none\"";
  out += ",\"startValue\":0,\"endValue\":" + json_num(total);
  out += ",\"samples\":[" + samples + "]";
  out += ",\"weights\":[" + weights + "]}]}";
  return out;
}

bool Profiler::write_speedscope(const std::string& path,
                                std::string_view name) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write flame profile to %s\n",
                 path.c_str());
    return false;
  }
  const std::string body = speedscope_json(name);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write on %s\n", path.c_str());
  return ok;
}

}  // namespace pinsim::obs
