#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace pinsim::obs {

/// Always-on post-mortem ring: a fixed-capacity sink that keeps the most
/// recent events in a compact per-kind encoding and, when something dies —
/// an invariant violation, a protocol abort, a watchdog death declaration,
/// an Engine::self_check failure — dumps the window as a Chrome-trace
/// loadable `.flight.json` plus a human-readable text digest on stderr.
///
/// Cheap enough to leave attached on every bench run: on_event is a switch
/// plus a 48-byte ring store, no allocation past the constructor.
///
/// Determinism contract (DESIGN.md §10): recorded/dropped/dump-attempt
/// counters and the rendered JSON are pure functions of the event stream.
/// Dump *attempts* are counted even when the file-write cap or an I/O error
/// suppresses the actual write, so report counters never depend on disk
/// state.
class FlightRecorder final : public Sink {
 public:
  struct Config {
    std::size_t capacity = 4096;  // ring entries (rounded up to >= 16)
    std::size_t max_dumps = 4;    // files written per recorder lifetime
    std::string dump_prefix = "flight";  // <prefix>-<n>.flight.json
    bool auto_dump_on_abort = true;      // kSendAbort/kRecvAbort/kLifePeerDead
  };

  FlightRecorder();
  explicit FlightRecorder(Config cfg);

  void on_event(const Event& e) override;

  /// Post-mortem dump: writes `<prefix>-<attempt>.flight.json` and prints
  /// the text digest to stderr. Returns the path written, or "" when the
  /// dump cap suppressed the write or the write failed. Always bumps the
  /// attempt counter.
  std::string dump(std::string_view reason);

  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t dump_attempts() const noexcept {
    return dump_attempts_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return held_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  /// The `.flight.json` body (Chrome Trace Event JSON): one "i" instant per
  /// held event, oldest first, plus metadata (reason, counters).
  [[nodiscard]] std::string render(std::string_view reason) const;

  /// Short text digest: the last `tail` events, one line each.
  [[nodiscard]] std::string digest(std::string_view reason,
                                   std::size_t tail = 16) const;

  /// The `"flight"` report section (all-deterministic counters).
  [[nodiscard]] std::string json() const;

 private:
  /// One ring entry: the generic identity fields every kind carries plus
  /// three per-kind argument words picked by compact_encode(). 48 bytes vs
  /// the 64-byte Event (drops the label pointer and the unused per-kind
  /// fields rather than storing every field for every kind).
  struct CompactEvent {
    sim::Time time = 0;
    std::uint64_t a = 0;  // per-kind args; names via compact_arg_names()
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint32_t node = 0;
    EventKind kind = EventKind::kPktTx;
    std::uint8_t ep = 0;
  };

  /// Per-kind field selection. Exhaustive over EventKind (pinlint D5).
  [[nodiscard]] static CompactEvent compact_encode(const Event& e) noexcept;

  /// Names for CompactEvent::a/b/c per kind; null when the slot is unused.
  /// Exhaustive over EventKind (pinlint D5).
  static void compact_arg_names(EventKind k, const char*& a, const char*& b,
                                const char*& c) noexcept;

  void append_entry_json(std::string& out, const CompactEvent& ce) const;
  void for_each_held(const std::function<void(const CompactEvent&)>& fn) const;

  std::size_t cap_;
  std::size_t max_dumps_;
  std::string dump_prefix_;
  bool auto_dump_on_abort_;
  std::vector<CompactEvent> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t held_ = 0;  // entries stored (== cap_ once wrapped)
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dump_attempts_ = 0;
  bool dumping_ = false;  // re-entrancy guard for auto-dump
};

}  // namespace pinsim::obs
