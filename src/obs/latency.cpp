#include "obs/latency.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace pinsim::obs {

namespace {

void record_open(std::unordered_map<std::uint64_t, sim::Time>& open,
                 std::uint64_t k, sim::Time t) {
  open[k] = t;  // a re-post overwrites: latency measured from the last start
}

void record_close(std::unordered_map<std::uint64_t, sim::Time>& open,
                  std::uint64_t k, sim::Time t, sim::LogHistogram& h) {
  auto it = open.find(k);
  if (it == open.end()) return;
  h.add(static_cast<double>(t - it->second));
  open.erase(it);
}

std::string histogram_json(const sim::LogHistogram& h) {
  std::string out = "{";
  out += "\"count\":" + json_num(h.count());
  out += ",\"min\":" + json_num(h.min());
  out += ",\"max\":" + json_num(h.max());
  out += ",\"mean\":" + json_num(h.mean());
  out += ",\"p50\":" + json_num(h.p50());
  out += ",\"p95\":" + json_num(h.p95());
  out += ",\"p99\":" + json_num(h.p99());
  out += ",\"buckets\":[";
  bool first = true;
  for (const auto& b : h.nonempty_buckets()) {
    if (!first) out += ",";
    first = false;
    out += "{\"lo\":" + json_num(b.lo) + ",\"hi\":" + json_num(b.hi) +
           ",\"count\":" + json_num(b.count) + "}";
  }
  out += "]}";
  return out;
}

void summary_line(std::string& out, const char* what,
                  const sim::LogHistogram& h, const char* unit) {
  if (h.count() == 0) return;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "  %-14s n=%llu p50=%.1f%s p95=%.1f%s p99=%.1f%s max=%.1f%s\n",
                what, static_cast<unsigned long long>(h.count()), h.p50(), unit,
                h.p95(), unit, h.p99(), unit, h.max(), unit);
  out += buf;
}

}  // namespace

void LatencyRecorder::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kPinStart:
      record_open(pin_open_, key(e, e.region), e.time);
      break;
    case EventKind::kPinDone:
      record_close(pin_open_, key(e, e.region), e.time, pin_);
      break;
    case EventKind::kPinFail:
      pin_open_.erase(key(e, e.region));
      break;
    case EventKind::kEagerPost:
    case EventKind::kRndvPost:
      record_open(send_open_, key(e, e.seq), e.time);
      sizes_.add(static_cast<double>(e.len));
      break;
    case EventKind::kSendDone:
      record_close(send_open_, key(e, e.seq), e.time, send_);
      break;
    case EventKind::kSendAbort:
      send_open_.erase(key(e, e.seq));
      break;
    case EventKind::kPullStart:
      record_open(pull_open_, key(e, e.seq), e.time);
      break;
    case EventKind::kRecvDone:
      record_close(pull_open_, key(e, e.seq), e.time, pull_);
      break;
    case EventKind::kRecvAbort:
      pull_open_.erase(key(e, e.seq));
      break;
    default:
      break;
  }
}

std::string LatencyRecorder::summary() const {
  std::string out;
  summary_line(out, "pin (ns)", pin_, "");
  summary_line(out, "send (ns)", send_, "");
  summary_line(out, "pull (ns)", pull_, "");
  summary_line(out, "msg size (B)", sizes_, "");
  if (out.empty()) out = "  (no latency samples)\n";
  return out;
}

std::string LatencyRecorder::json() const {
  std::string out = "{";
  out += "\"pin_latency_ns\":" + histogram_json(pin_);
  out += ",\"send_latency_ns\":" + histogram_json(send_);
  out += ",\"pull_latency_ns\":" + histogram_json(pull_);
  out += ",\"message_size_bytes\":" + histogram_json(sizes_);
  out += "}";
  return out;
}

}  // namespace pinsim::obs
