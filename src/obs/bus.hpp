#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "sim/engine.hpp"

namespace pinsim::obs {

/// The typed event bus: emitters hand it POD events, the bus stamps the
/// simulated time and fans out to every attached sink synchronously. With no
/// sinks attached `active()` is false and emitters skip event construction,
/// so an uninstrumented run pays one pointer compare per site.
///
/// Teardown-order guard: emitters that keep a Bus pointer register via
/// register_emitter() (obs::Relay does this automatically; raw Bus* holders
/// like net::Fabric do it in set_bus). The destructor aborts with a
/// diagnostic if any emitter is still registered — the old silent contract
/// ("the bus must outlive every component that emits into it, or be
/// detached first") now fails loudly instead of as a dangling pointer.
class Bus {
 public:
  explicit Bus(sim::Engine& eng) : eng_(eng) {}

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  ~Bus() {
    if (emitters_ != 0) {
      std::fprintf(
          stderr,
          "obs: Bus destroyed with %zu emitter(s) still attached.\n"
          "     Components must set_bus(nullptr) (or be destroyed) before\n"
          "     their bus — see bench::ObsRig::detach().\n",
          emitters_);
      std::abort();
    }
  }

  /// Emitter registration, used by the teardown-order guard above.
  void register_emitter() noexcept { ++emitters_; }
  void unregister_emitter() noexcept {
    if (emitters_ > 0) --emitters_;
  }
  [[nodiscard]] std::size_t emitters() const noexcept { return emitters_; }

  void attach(Sink* s) {
    if (s != nullptr && std::find(sinks_.begin(), sinks_.end(), s) ==
                            sinks_.end()) {
      sinks_.push_back(s);
    }
  }
  void detach(Sink* s) {
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), s), sinks_.end());
  }

  [[nodiscard]] bool active() const noexcept { return !sinks_.empty(); }

  void emit(Event e) {
    e.time = eng_.now();
    for (Sink* s : sinks_) s->on_event(e);
  }

  /// Run end: flush every sink (idempotent per attach — callers run it once).
  void finalize() {
    for (Sink* s : sinks_) s->finalize();
  }

 private:
  sim::Engine& eng_;
  std::vector<Sink*> sinks_;
  std::size_t emitters_ = 0;
};

}  // namespace pinsim::obs
