#pragma once

#include <algorithm>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "sim/engine.hpp"

namespace pinsim::obs {

/// The typed event bus: emitters hand it POD events, the bus stamps the
/// simulated time and fans out to every attached sink synchronously. With no
/// sinks attached `active()` is false and emitters skip event construction,
/// so an uninstrumented run pays one pointer compare per site.
class Bus {
 public:
  explicit Bus(sim::Engine& eng) : eng_(eng) {}

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  void attach(Sink* s) {
    if (s != nullptr && std::find(sinks_.begin(), sinks_.end(), s) ==
                            sinks_.end()) {
      sinks_.push_back(s);
    }
  }
  void detach(Sink* s) {
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), s), sinks_.end());
  }

  [[nodiscard]] bool active() const noexcept { return !sinks_.empty(); }

  void emit(Event e) {
    e.time = eng_.now();
    for (Sink* s : sinks_) s->on_event(e);
  }

  /// Run end: flush every sink (idempotent per attach — callers run it once).
  void finalize() {
    for (Sink* s : sinks_) s->finalize();
  }

 private:
  sim::Engine& eng_;
  std::vector<Sink*> sinks_;
};

}  // namespace pinsim::obs
