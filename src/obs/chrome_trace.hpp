#pragma once

#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace pinsim::obs {

/// Collects the event stream and writes a Chrome Trace Event JSON file (the
/// `chrome://tracing` / Perfetto "traceEvents" array format) at finalize.
///
/// Layout: one track per (node, endpoint) pair — pid = node, tid = endpoint.
/// Pin jobs and pull transfers render as async spans ("b"/"e"), everything
/// else as instants. Flow arrows tie each rendezvous chain together:
/// rndv post (s) -> pull start (t) -> retransmissions/pull retries (t) ->
/// send completion (f), keyed by the sender-side (node, ep, seq) triple, so
/// an overlap-miss retransmission chain reads as one connected arc.
class ChromeTraceWriter final : public Sink {
 public:
  explicit ChromeTraceWriter(std::string path) : path_(std::move(path)) {}

  void on_event(const Event& e) override { events_.push_back(e); }

  /// Writes the trace file. Returns silently on I/O failure after printing
  /// a warning (a failed trace dump must never fail the run it observed).
  void finalize() override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }

  /// The serialized JSON (also what finalize writes); exposed for tests.
  [[nodiscard]] std::string render() const;

 private:
  std::string path_;
  std::vector<Event> events_;
  bool written_ = false;
};

}  // namespace pinsim::obs
