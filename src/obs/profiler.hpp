#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"

namespace pinsim::obs {

/// Dispatch-level self-profiler: installs itself as the engine's
/// sim::DispatchObserver and accumulates, per sim::TaskTag, the number of
/// dispatches, the summed schedule->dispatch simulated-time lag, and (when
/// wall-clock capture is enabled) the handler's wall-clock self time.
///
/// Determinism contract (DESIGN.md §10): dispatch counts and sim-time lag
/// are pure functions of the event schedule and are safe to emit on any
/// run. Wall-clock self time and the rates derived from it are host noise;
/// json() only includes them when the profiler was built with
/// `wall_clock = true`, which bench::ObsRig enables solely on traced
/// (instrumented) runs — the same rule as its "throughput" section.
///
/// Tags are keyed by their string pointers on the hot path (one hash of two
/// pointers per dispatch); slots for identical strings reaching the profiler
/// through different literal addresses are merged by name in stats(), which
/// also sorts by name so report output is byte-stable.
class Profiler final : public sim::DispatchObserver {
 public:
  struct TagStats {
    std::string name;              // "component/label"
    std::uint64_t dispatches = 0;  // handlers run under this tag
    std::uint64_t sim_lag_ns = 0;  // sum of dispatch-time minus schedule-time
    std::uint64_t self_ns = 0;     // wall-clock self time (0 when disabled)
  };

  explicit Profiler(bool wall_clock = false) : wall_clock_(wall_clock) {}

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
  ~Profiler() override { detach(); }

  /// Installs this profiler on `eng`. At most one observer per engine; a
  /// previously installed observer is replaced.
  void attach(sim::Engine& eng) {
    detach();
    eng_ = &eng;
    eng.set_dispatch_observer(this);
  }

  /// Uninstalls from the engine (only if still the active observer).
  void detach() {
    if (eng_ != nullptr && eng_->dispatch_observer() == this) {
      eng_->set_dispatch_observer(nullptr);
    }
    eng_ = nullptr;
  }

  void on_dispatch_begin(const sim::TaskTag& tag, sim::Time scheduled_at,
                         sim::Time now) override;
  void on_dispatch_end(const sim::TaskTag& tag) override;

  [[nodiscard]] bool wall_clock() const noexcept { return wall_clock_; }
  [[nodiscard]] std::uint64_t total_dispatches() const noexcept {
    return total_dispatches_;
  }

  /// Per-tag stats, merged by name and sorted by name (deterministic).
  [[nodiscard]] std::vector<TagStats> stats() const;

  /// The `"profile"` report section: `{"total_dispatches":N,"tags":[...]}`.
  /// Each tag entry carries name/dispatches/sim_lag_ns always, plus
  /// self_ms/events_per_sec when wall-clock capture is on. `top_k` bounds a
  /// wall-clock-ranked `"top"` array (omitted entirely when disabled).
  [[nodiscard]] std::string json(std::size_t top_k = 10) const;

  /// Speedscope-compatible flame JSON ("sampled" profile, one frame per
  /// tag). Weights are wall-clock self milliseconds when captured, dispatch
  /// counts otherwise.
  [[nodiscard]] std::string speedscope_json(std::string_view name) const;

  /// Writes speedscope_json to `path`. Returns false (after a stderr
  /// warning) on I/O failure; never throws — a failed flame dump must not
  /// fail the run it profiled.
  bool write_speedscope(const std::string& path, std::string_view name) const;

 private:
  struct Slot {
    const char* component = nullptr;
    const char* label = nullptr;
    std::uint64_t dispatches = 0;
    std::uint64_t sim_lag = 0;
    std::uint64_t self_ns = 0;
  };

  struct TagKey {
    const char* component;
    const char* label;
    bool operator==(const TagKey& o) const noexcept {
      return component == o.component && label == o.label;
    }
  };
  struct TagKeyHash {
    std::size_t operator()(const TagKey& k) const noexcept {
      const auto a = reinterpret_cast<std::uintptr_t>(k.component);
      const auto b = reinterpret_cast<std::uintptr_t>(k.label);
      return static_cast<std::size_t>(
          (a ^ (b * 0x9e3779b97f4a7c15ULL)) >> 3);
    }
  };

  Slot& slot_for(const sim::TaskTag& tag);

  sim::Engine* eng_ = nullptr;
  bool wall_clock_ = false;
  std::uint64_t total_dispatches_ = 0;
  std::vector<Slot> slots_;
  std::unordered_map<TagKey, std::size_t, TagKeyHash> index_;
  // In-flight dispatch: slot index (never a pointer — slots_ may realloc)
  // and the wall-clock timestamp at on_dispatch_begin.
  std::size_t cur_ = SIZE_MAX;
  std::uint64_t cur_start_ns_ = 0;
};

}  // namespace pinsim::obs
