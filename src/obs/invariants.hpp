#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace pinsim::obs {

/// Online protocol/pin-state-machine validator. Attached to a Bus, it keeps
/// a shadow model per (node, endpoint, region|seq|handle) and flags any
/// event stream that a correct stack could never produce:
///
///  * no copy touches a page above the pinned frontier (DMA-on-unpinned);
///  * pins never survive an MMU invalidation of their range — after a
///    kPinInvalidate the frontier must sit at or below the cut slot;
///  * the pin frontier only advances; it retreats only through
///    invalidate/unpin/shed/fail events;
///  * every rendezvous/eager send terminates in completion or clean abort,
///    and every pull transfer in done or abort (checked at finalize);
///  * retransmission retry counts are strictly monotonic per request;
///  * a crash sweep (kLifeCrash) returns the host's pinned-page count
///    exactly to the pre-crash non-tenant baseline — no leaks, no
///    double-unpins — and retires the dead incarnation's shadow state;
///  * a bounded switch-port queue never reports a depth above its capacity
///    (kNetPortQueue carries depth in `offset`, capacity in `len`).
///
/// Violations carry the offending event plus a window of the events leading
/// up to it, so a failing soak prints the interleaving, not just a boolean.
class InvariantChecker final : public Sink {
 public:
  struct Violation {
    std::string message;
    Event event;
    std::vector<Event> window;  // the events leading up to `event`
  };

  explicit InvariantChecker(std::size_t page_bytes = 4096)
      : page_bytes_(page_bytes == 0 ? 4096 : page_bytes) {}

  void on_event(const Event& e) override;

  /// End-of-stream checks: any send/pull still open is an orphan.
  void finalize() override;

  [[nodiscard]] bool ok() const noexcept { return violation_count_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return violation_count_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }

  /// Human-readable report of every stored violation and its event window.
  [[nodiscard]] std::string report() const;

  /// Called synchronously from violate() with the stored violation (only
  /// for the first kMaxStored — later ones are counted, not stored). The
  /// flight recorder hooks this to dump its window post-mortem.
  void set_violation_hook(std::function<void(const Violation&)> hook) {
    violation_hook_ = std::move(hook);
  }

 private:
  static constexpr std::size_t kWindow = 64;        // events kept per violation
  static constexpr std::size_t kMaxStored = 32;     // violations kept verbatim

  struct RegionModel {
    std::uint64_t pinned = 0;  // shadow frontier, in pages
    std::uint64_t total = 0;
  };

  void violate(const Event& e, std::string message);
  void on_pin_event(const Event& e);
  /// Forgets every shadow model owned by (node, ep) — called on kLifeCrash,
  /// where the next incarnation legitimately reuses ids from 1.
  void drop_endpoint_state(std::uint32_t node, std::uint8_t ep);

  [[nodiscard]] static std::uint64_t key(std::uint32_t node, std::uint8_t ep,
                                         std::uint32_t id) noexcept {
    return (static_cast<std::uint64_t>(node) << 40) |
           (static_cast<std::uint64_t>(ep) << 32) |
           static_cast<std::uint64_t>(id);
  }

  std::size_t page_bytes_;
  std::unordered_map<std::uint64_t, RegionModel> regions_;
  std::unordered_map<std::uint64_t, Event> open_sends_;
  std::unordered_map<std::uint64_t, Event> open_pulls_;
  std::unordered_map<std::uint64_t, std::uint64_t> send_retries_;
  std::deque<Event> window_;
  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::function<void(const Violation&)> violation_hook_;
};

}  // namespace pinsim::obs
