#pragma once

#include "obs/event.hpp"

namespace pinsim::obs {

/// A consumer of typed events. Attached to a Bus; `on_event` runs inline at
/// emission (keep it cheap), `finalize` runs once when the run ends — write
/// files, run end-of-stream checks.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& e) = 0;
  virtual void finalize() {}
};

}  // namespace pinsim::obs
