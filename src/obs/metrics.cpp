#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace pinsim::obs {

void MetricsSampler::push_sample(sim::Time boundary) {
  Sample s;
  s.t = boundary;
  s.pinned_pages = pinned_pages_;
  s.inflight_pin_jobs = static_cast<std::uint32_t>(pin_jobs_.size());
  s.open_sends = static_cast<std::uint32_t>(sends_.size());
  s.open_pulls = static_cast<std::uint32_t>(pulls_.size());
  s.port_queue_depth = port_queue_depth_;
  s.overlap_misses = overlap_misses_;
  s.retransmits = retransmits_;
  s.copied_bytes = copied_bytes_;
  s.pressure_denials = pressure_denials_;
  s.congestion_drops = congestion_drops_;
  s.uplink_busy_ns = uplink_busy_ns_;
  overlap_misses_ = 0;
  retransmits_ = 0;
  copied_bytes_ = 0;
  pressure_denials_ = 0;
  congestion_drops_ = 0;
  uplink_busy_ns_ = 0;
  dirty_ = false;
  samples_.push_back(s);
  if (samples_.size() >= max_samples_) compact();
}

void MetricsSampler::compact() {
  // Merge adjacent pairs: counters sum over the doubled interval, gauges
  // are step functions so the later edge's value stands.
  std::size_t w = 0;
  for (std::size_t i = 0; i + 1 < samples_.size(); i += 2) {
    Sample m = samples_[i + 1];
    m.overlap_misses += samples_[i].overlap_misses;
    m.retransmits += samples_[i].retransmits;
    m.copied_bytes += samples_[i].copied_bytes;
    m.pressure_denials += samples_[i].pressure_denials;
    m.congestion_drops += samples_[i].congestion_drops;
    m.uplink_busy_ns += samples_[i].uplink_busy_ns;
    samples_[w++] = m;
  }
  if (samples_.size() % 2 != 0) samples_[w++] = samples_.back();
  samples_.resize(w);
  interval_ *= 2;
  ++compactions_;
}

void MetricsSampler::roll_to(sim::Time t) {
  if (!started_) {
    started_ = true;
    // Align the first boundary past the first event so time 0 streams do
    // not emit an empty leading sample.
    next_ = (t / interval_ + 1) * interval_;
    return;
  }
  if (t < next_) return;
  push_sample(next_);
  next_ += interval_;
  if (t >= next_) {
    // Idle gap: every skipped interval is identical (zero counters, carried
    // gauges), so one flat sample at the last boundary before t says it all.
    next_ += ((t - next_) / interval_) * interval_;
    push_sample(next_);
    next_ += interval_;
  }
}

void MetricsSampler::on_event(const Event& e) {
  roll_to(e.time);
  dirty_ = true;
  switch (e.kind) {
    // Pin frontier gauge: every pin event carries the region's pinned page
    // count in `offset` at emission time, so the gauge just mirrors it.
    case EventKind::kPinStart:
      pin_jobs_.insert(chain_key(e.node, e.ep, e.region));
      [[fallthrough]];
    case EventKind::kPinPages:
    case EventKind::kPinShrink:
    case EventKind::kPinInvalidate:
    case EventKind::kPinShed:
    case EventKind::kPinReset:
    case EventKind::kPinUnpin: {
      const std::uint64_t key = chain_key(e.node, e.ep, e.region);
      std::uint64_t& f = frontiers_[key];
      pinned_pages_ += e.offset - f;  // unsigned wrap cancels on shrink
      f = e.offset;
      break;
    }
    case EventKind::kPinDone:
    case EventKind::kPinFail: {
      const std::uint64_t key = chain_key(e.node, e.ep, e.region);
      pin_jobs_.erase(key);
      std::uint64_t& f = frontiers_[key];
      pinned_pages_ += e.offset - f;
      f = e.offset;
      break;
    }

    case EventKind::kRndvPost:
    case EventKind::kEagerPost:
      sends_.insert(chain_key(e.node, e.ep, e.seq));
      break;
    case EventKind::kSendDone:
    case EventKind::kSendAbort:
      sends_.erase(chain_key(e.node, e.ep, e.seq));
      break;

    case EventKind::kPullStart:
      pulls_.insert(chain_key(e.node, e.ep, e.seq));
      break;
    case EventKind::kRecvDone:
    case EventKind::kRecvAbort:
      pulls_.erase(chain_key(e.node, e.ep, e.seq));
      break;

    case EventKind::kOverlapMissSend:
    case EventKind::kOverlapMissRecv:
      ++overlap_misses_;
      break;
    case EventKind::kRetransmit:
    case EventKind::kPullRetry:
      ++retransmits_;
      break;
    case EventKind::kCopyIn:
      copied_bytes_ += e.len;
      break;
    case EventKind::kPressureDeny:
      ++pressure_denials_;
      break;

    // Switch-port gauge: every kNetPortQueue carries the port's absolute
    // depth in `offset`, so the cluster-wide gauge mirrors the per-port
    // deltas the same way the pin frontier gauge does.
    case EventKind::kNetPortQueue: {
      std::uint64_t& d = port_depths_[e.node];
      port_queue_depth_ += e.offset - d;  // unsigned wrap cancels on drain
      d = e.offset;
      break;
    }
    case EventKind::kNetPortTx:
      if (e.pkt != 0) uplink_busy_ns_ += e.offset;
      break;
    case EventKind::kNetCongestionDrop:
      ++congestion_drops_;
      break;

    default:
      break;
  }
}

void MetricsSampler::finalize() {
  if (dirty_) {
    push_sample(next_);
    next_ += interval_;
  }
}

std::string MetricsSampler::json() const {
  std::string out = "{";
  out += "\"interval_ns\":" + json_num(interval_);
  out += ",\"compactions\":" +
         json_num(static_cast<std::uint64_t>(compactions_));
  out += ",\"count\":" + json_num(static_cast<std::uint64_t>(samples_.size()));
  const auto column = [&](const char* name, auto get) {
    out += ",\"";
    out += name;
    out += "\":[";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      if (i != 0) out += ",";
      out += json_num(static_cast<std::uint64_t>(get(samples_[i])));
    }
    out += "]";
  };
  column("t_ns", [](const Sample& s) { return s.t; });
  column("pinned_pages", [](const Sample& s) { return s.pinned_pages; });
  column("inflight_pin_jobs",
         [](const Sample& s) { return s.inflight_pin_jobs; });
  column("open_sends", [](const Sample& s) { return s.open_sends; });
  column("open_pulls", [](const Sample& s) { return s.open_pulls; });
  column("overlap_misses", [](const Sample& s) { return s.overlap_misses; });
  column("retransmits", [](const Sample& s) { return s.retransmits; });
  column("copied_bytes", [](const Sample& s) { return s.copied_bytes; });
  column("pressure_denials",
         [](const Sample& s) { return s.pressure_denials; });
  column("port_queue_depth",
         [](const Sample& s) { return s.port_queue_depth; });
  column("congestion_drops",
         [](const Sample& s) { return s.congestion_drops; });
  column("uplink_busy_ns", [](const Sample& s) { return s.uplink_busy_ns; });
  out += "}";
  return out;
}

}  // namespace pinsim::obs
