#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "sim/stats.hpp"

namespace pinsim::obs {

/// Streams the event bus into log-bucketed latency/size histograms:
///
///  * pin latency      — kPinStart -> kPinDone, per (node, ep, region);
///  * send latency     — kRndvPost/kEagerPost -> kSendDone (successes only);
///  * pull latency     — kPullStart -> kRecvDone;
///  * message sizes    — bytes of every posted send.
///
/// All values are nanoseconds of simulated time (sizes in bytes). The
/// summaries feed the benches' human output; `json()` feeds the machine
/// report the soaks archive.
class LatencyRecorder final : public Sink {
 public:
  LatencyRecorder()
      : pin_(100.0), send_(100.0), pull_(100.0), sizes_(1.0) {}

  void on_event(const Event& e) override;

  [[nodiscard]] const sim::LogHistogram& pin_latency() const noexcept {
    return pin_;
  }
  [[nodiscard]] const sim::LogHistogram& send_latency() const noexcept {
    return send_;
  }
  [[nodiscard]] const sim::LogHistogram& pull_latency() const noexcept {
    return pull_;
  }
  [[nodiscard]] const sim::LogHistogram& message_sizes() const noexcept {
    return sizes_;
  }

  /// Human-readable p50/p95/p99 lines (empty histograms skipped).
  [[nodiscard]] std::string summary() const;

  /// `{"pin_latency_ns":{...},"send_latency_ns":{...},...}` with counts,
  /// percentiles and the occupied log buckets.
  [[nodiscard]] std::string json() const;

 private:
  [[nodiscard]] static std::uint64_t key(const Event& e,
                                         std::uint32_t id) noexcept {
    return (static_cast<std::uint64_t>(e.node) << 40) |
           (static_cast<std::uint64_t>(e.ep) << 32) |
           static_cast<std::uint64_t>(id);
  }

  sim::LogHistogram pin_, send_, pull_, sizes_;
  std::unordered_map<std::uint64_t, sim::Time> pin_open_;
  std::unordered_map<std::uint64_t, sim::Time> send_open_;
  std::unordered_map<std::uint64_t, sim::Time> pull_open_;
};

}  // namespace pinsim::obs
