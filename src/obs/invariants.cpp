#include "obs/invariants.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/legacy.hpp"

namespace pinsim::obs {

void InvariantChecker::violate(const Event& e, std::string message) {
  ++violation_count_;
  if (violations_.size() < kMaxStored) {
    Violation v;
    v.message = std::move(message);
    v.event = e;
    v.window.assign(window_.begin(), window_.end());
    violations_.push_back(std::move(v));
    if (violation_hook_) violation_hook_(violations_.back());
  }
}

void InvariantChecker::on_pin_event(const Event& e) {
  RegionModel& m = regions_[key(e.node, e.ep, e.region)];
  switch (e.kind) {
    case EventKind::kPinStart:
      // A job may resume a partially-pinned region (or the checker attached
      // late): sync the shadow frontier, no check.
      m.pinned = e.offset;
      m.total = e.len;
      break;
    case EventKind::kPinPages:
      if (e.offset < m.pinned) {
        violate(e, "pin frontier moved backwards without an invalidation (" +
                       std::to_string(m.pinned) + " -> " +
                       std::to_string(e.offset) + " pages)");
      }
      m.pinned = e.offset;
      m.total = e.len;
      break;
    case EventKind::kPinDone:
      if (e.offset != e.len) {
        violate(e, "pin.done with a partial frontier (" +
                       std::to_string(e.offset) + "/" +
                       std::to_string(e.len) + " pages)");
      }
      m.pinned = e.offset;
      m.total = e.len;
      break;
    case EventKind::kPinInvalidate:
      // Pages at or above the cut slot had their translations invalidated;
      // a frontier still covering them means pinned pages survived an MMU
      // invalidation of their range — the paper's §3.1 contract broken.
      if (e.offset > e.seq) {
        violate(e, "pins survived an MMU invalidation: frontier " +
                       std::to_string(e.offset) + " pages past cut slot " +
                       std::to_string(e.seq));
      }
      m.pinned = e.offset;
      m.total = e.len;
      break;
    case EventKind::kPinUnpin:
    case EventKind::kPinShed:
      m.pinned = 0;
      break;
    default:
      // Informational pin events (reset/retry/shrink/restart/fail) carry
      // the frontier at emission time; keep the shadow in sync.
      m.pinned = e.offset;
      m.total = e.len;
      break;
  }
}

void InvariantChecker::on_event(const Event& e) {
  window_.push_back(e);
  if (window_.size() > kWindow) window_.pop_front();

  switch (e.kind) {
    case EventKind::kPinReset:
    case EventKind::kPinStart:
    case EventKind::kPinPages:
    case EventKind::kPinShrink:
    case EventKind::kPinRetry:
    case EventKind::kPinRestart:
    case EventKind::kPinInvalidate:
    case EventKind::kPinDone:
    case EventKind::kPinFail:
    case EventKind::kPinShed:
    case EventKind::kPinUnpin:
      on_pin_event(e);
      break;

    case EventKind::kCopyIn:
    case EventKind::kCopyOut: {
      auto it = regions_.find(key(e.node, e.ep, e.region));
      if (it == regions_.end() || e.len == 0) break;  // unpinned-mode/unknown
      // Region pages may cover fewer than page_bytes_ (unaligned segments),
      // so byte/page_bytes_ is a lower bound on the slot index: flagging
      // only when even the lower bound escapes the frontier is sound.
      const std::uint64_t last_page = (e.offset + e.len - 1) / page_bytes_;
      if (last_page >= it->second.pinned) {
        violate(e, std::string(e.kind == EventKind::kCopyIn ? "copy-in"
                                                            : "copy-out") +
                       " touches unpinned page " + std::to_string(last_page) +
                       " (frontier " + std::to_string(it->second.pinned) +
                       " pages)");
      }
      break;
    }

    case EventKind::kEagerPost:
    case EventKind::kRndvPost: {
      auto [it, inserted] = open_sends_.emplace(key(e.node, e.ep, e.seq), e);
      (void)it;
      if (!inserted) {
        violate(e, "send seq " + std::to_string(e.seq) +
                       " reposted while still open");
      }
      break;
    }
    case EventKind::kSendDone:
    case EventKind::kSendAbort:
      if (open_sends_.erase(key(e.node, e.ep, e.seq)) == 0) {
        violate(e, "send completion for seq " + std::to_string(e.seq) +
                       " that was never posted");
      }
      break;

    case EventKind::kRetransmit: {
      std::uint64_t& last = send_retries_[key(e.node, e.ep, e.seq)];
      if (e.offset <= last) {
        violate(e, "retry budget for seq " + std::to_string(e.seq) +
                       " not monotonically consumed (" +
                       std::to_string(last) + " -> " +
                       std::to_string(e.offset) + ")");
      }
      last = e.offset;
      break;
    }

    case EventKind::kPullStart: {
      auto [it, inserted] = open_pulls_.emplace(key(e.node, e.ep, e.seq), e);
      (void)it;
      if (!inserted) {
        violate(e, "pull handle " + std::to_string(e.seq) + " reused while "
                                                            "still open");
      }
      break;
    }
    case EventKind::kRecvDone:
    case EventKind::kRecvAbort:
      if (open_pulls_.erase(key(e.node, e.ep, e.seq)) == 0) {
        violate(e, "pull completion for handle " + std::to_string(e.seq) +
                       " that was never started");
      }
      break;

    case EventKind::kLifeCrash:
      // The crash sweep must return the host's pinned-page count exactly to
      // the pre-crash non-tenant baseline: anything above leaked pins,
      // anything below double-unpinned a bystander.
      if (e.offset > e.len) {
        violate(e, "crashed endpoint leaked pinned pages: " +
                       std::to_string(e.offset) + " pinned after the sweep, "
                       "baseline " + std::to_string(e.len));
      } else if (e.offset < e.len) {
        violate(e, "crash sweep unpinned bystander pages: " +
                       std::to_string(e.offset) + " pinned after the sweep, "
                       "baseline " + std::to_string(e.len));
      }
      // The incarnation is gone; its ids (regions, seqs, handles) restart
      // from 1 in the next one. Stale shadow models would turn that reuse
      // into false violations, and its open sends/pulls were either failed
      // (events already seen) or died with it — not orphans to report.
      drop_endpoint_state(e.node, e.ep);
      break;

    case EventKind::kNetPortQueue:
      // A bounded egress queue can never report more frames than it holds:
      // depth above capacity means the switch accounting double-counted.
      if (e.offset > e.len) {
        violate(e, "switch port queue depth above capacity (" +
                       std::to_string(e.offset) + "/" +
                       std::to_string(e.len) + " frames)");
      }
      break;

    default:
      break;
  }
}

void InvariantChecker::drop_endpoint_state(std::uint32_t node,
                                           std::uint8_t ep) {
  const std::uint64_t prefix =
      (static_cast<std::uint64_t>(node) << 8) | ep;
  auto drop = [prefix](auto& map) {
    // pinlint: unordered-ok(pure erase by key predicate, no observable order)
    for (auto it = map.begin(); it != map.end();) {
      if ((it->first >> 32) == prefix) {
        it = map.erase(it);
      } else {
        ++it;
      }
    }
  };
  drop(regions_);
  drop(open_sends_);
  drop(open_pulls_);
  drop(send_retries_);
}

void InvariantChecker::finalize() {
  // Violations land in report() text, so emit them in key order — bucket
  // order would make the report differ between bit-identical runs.
  std::vector<std::uint64_t> keys;
  keys.reserve(open_sends_.size());
  // pinlint: unordered-ok(keys collected then sorted below)
  for (const auto& [k, e] : open_sends_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t k : keys) {
    const Event& e = open_sends_.at(k);
    violate(e, "orphaned rendezvous: send seq " + std::to_string(e.seq) +
                   " never completed or aborted");
  }
  open_sends_.clear();

  keys.clear();
  keys.reserve(open_pulls_.size());
  // pinlint: unordered-ok(keys collected then sorted below)
  for (const auto& [k, e] : open_pulls_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t k : keys) {
    const Event& e = open_pulls_.at(k);
    violate(e, "orphaned pull: handle " + std::to_string(e.seq) +
                   " never completed or aborted");
  }
  open_pulls_.clear();
}

std::string InvariantChecker::report() const {
  if (ok()) return "invariants: ok\n";
  std::string out = "invariants: " + std::to_string(violation_count_) +
                    " violation(s)\n";
  for (const Violation& v : violations_) {
    out += "VIOLATION: " + v.message + "\n  at " + describe(v.event) + "\n";
    if (!v.window.empty()) {
      out += "  last " + std::to_string(v.window.size()) + " events:\n";
      for (const Event& w : v.window) out += "    " + describe(w) + "\n";
    }
  }
  if (violation_count_ > violations_.size()) {
    out += "  (" + std::to_string(violation_count_ - violations_.size()) +
           " further violations not stored)\n";
  }
  return out;
}

}  // namespace pinsim::obs
