#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"

namespace pinsim::obs {

namespace {

// Pin jobs are identified like pin spans in the Chrome trace: the region id
// takes the seq slot of the chain key.
std::uint64_t pin_key(std::uint32_t node, std::uint8_t ep,
                      std::uint32_t region) {
  return chain_key(node, ep, region);
}

}  // namespace

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kSenderPin: return "sender_pin";
    case Phase::kHandshake: return "rndv_handshake";
    case Phase::kPinStall: return "pin_stall";
    case Phase::kRetransmit: return "retransmit";
    case Phase::kTransfer: return "transfer";
    case Phase::kCompletion: return "completion";
  }
  return "?";
}

Phase CriticalPathAnalyzer::Breakdown::dominant() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kPhaseCount; ++i) {
    if (phase_ns[i] > phase_ns[best]) best = i;
  }
  return static_cast<Phase>(best);
}

void CriticalPathAnalyzer::transition(Chain& c, sim::Time now, Phase next) {
  if (c.in_handshake) {
    // Leaving the handshake splits its span into pin-blocked and pure
    // round-trip time; everything else is a plain bucket flip.
    const sim::Time span = now - c.since;
    if (c.pin_open) {
      c.sender_pin += now - c.pin_since;
      c.pin_open = false;  // past the handshake, an overlapped pin is free
    }
    const sim::Time pin = std::min(c.sender_pin, span);
    c.rec.phase_ns[static_cast<std::size_t>(Phase::kSenderPin)] += pin;
    c.rec.phase_ns[static_cast<std::size_t>(Phase::kHandshake)] += span - pin;
    c.in_handshake = false;
  } else {
    c.rec.phase_ns[static_cast<std::size_t>(c.cur)] += now - c.since;
  }
  c.cur = next;
  c.since = now;
}

void CriticalPathAnalyzer::close(Chain& c, std::uint64_t key, sim::Time now,
                                 bool aborted) {
  transition(c, now, c.cur);
  c.rec.end = now;
  c.rec.aborted = aborted;
  if (aborted) {
    ++aborted_count_;
  } else {
    ++completed_count_;
    latency_total_ += c.rec.total();
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      phase_totals_[i] += c.rec.phase_ns[i];
    }
    if (completed_.size() < max_records_) {
      completed_.push_back(c.rec);
    } else {
      ++dropped_records_;
    }
    // Top-K slowest, kept sorted and exact regardless of record drops.
    const auto pos = std::upper_bound(
        slowest_.begin(), slowest_.end(), c.rec,
        [](const Breakdown& a, const Breakdown& b) {
          return a.total() > b.total();
        });
    if (pos != slowest_.end() || slowest_.size() < top_k_) {
      slowest_.insert(pos, c.rec);
      if (slowest_.size() > top_k_) slowest_.pop_back();
    }
  }
  open_.erase(key);
}

void CriticalPathAnalyzer::on_pin_event(const Event& e) {
  const std::uint64_t pk = pin_key(e.node, e.ep, e.region);
  switch (e.kind) {
    case EventKind::kPinStart: {
      pins_open_.insert(pk);
      // pinlint: unordered-ok(independent per-chain field updates, no emission)
      for (auto& [k, c] : open_) {
        if (c.in_handshake && !c.pin_open && c.rec.rndv &&
            c.rec.node == e.node && c.rec.ep == e.ep && c.region == e.region) {
          c.pin_open = true;
          c.pin_since = e.time;
        }
      }
      break;
    }
    case EventKind::kPinDone:
    case EventKind::kPinFail: {
      pins_open_.erase(pk);
      // pinlint: unordered-ok(independent per-chain field updates, no emission)
      for (auto& [k, c] : open_) {
        if (c.pin_open && c.rec.node == e.node && c.rec.ep == e.ep &&
            c.region == e.region) {
          c.sender_pin += e.time - c.pin_since;
          c.pin_open = false;
        }
      }
      break;
    }
    case EventKind::kPinRestart: {
      // pinlint: unordered-ok(independent per-chain counter bumps, no emission)
      for (auto& [k, c] : open_) {
        if (c.rec.node == e.node && c.rec.ep == e.ep && c.region == e.region) {
          ++c.rec.pin_restarts;
        }
      }
      break;
    }
    default:
      break;
  }
}

CriticalPathAnalyzer::Chain* CriticalPathAnalyzer::resolve_receiver(
    const Event& e) {
  // Receiver-local events carry the pull handle in `seq`; the handle was
  // bound to the sender-side chain at kPullStart.
  const auto hit = pulls_.find(chain_key(e.node, e.ep, e.seq));
  if (hit == pulls_.end()) return nullptr;
  const auto it = open_.find(hit->second);
  return it == open_.end() ? nullptr : &it->second;
}

void CriticalPathAnalyzer::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kRndvPost:
    case EventKind::kEagerPost: {
      Chain c;
      c.rec.node = e.node;
      c.rec.ep = e.ep;
      c.rec.seq = e.seq;
      c.rec.rndv = e.kind == EventKind::kRndvPost;
      c.rec.bytes = e.len;
      c.rec.start = e.time;
      c.since = e.time;
      c.region = e.region;
      if (c.rec.rndv) {
        c.cur = Phase::kHandshake;
        c.in_handshake = true;
        // A pin job already running on this region (pre-pin, region reuse)
        // blocks the handshake from the very start.
        if (pins_open_.count(pin_key(e.node, e.ep, e.region)) != 0) {
          c.pin_open = true;
          c.pin_since = e.time;
        }
      } else {
        c.cur = Phase::kTransfer;
        c.in_handshake = false;
      }
      open_[chain_key(e.node, e.ep, e.seq)] = c;
      break;
    }

    case EventKind::kPullStart: {
      // Receiver names the sender chain via (peer, peer_ep, sender seq in
      // `offset`) and binds its local handle to it for later events.
      const std::uint64_t ck = chain_key(
          e.peer, e.peer_ep, static_cast<std::uint32_t>(e.offset));
      pulls_[chain_key(e.node, e.ep, e.seq)] = ck;
      if (auto it = open_.find(ck); it != open_.end()) {
        transition(it->second, e.time, Phase::kTransfer);
      }
      break;
    }

    case EventKind::kOverlapMissSend: {
      const auto it = open_.find(chain_key(e.node, e.ep, e.seq));
      if (it != open_.end() && !it->second.in_handshake) {
        ++it->second.rec.overlap_misses;
        transition(it->second, e.time, Phase::kPinStall);
      }
      break;
    }
    case EventKind::kOverlapMissRecv: {
      if (Chain* c = resolve_receiver(e); c != nullptr && !c->in_handshake) {
        ++c->rec.overlap_misses;
        transition(*c, e.time, Phase::kPinStall);
      }
      break;
    }

    case EventKind::kRetransmit: {
      const auto it = open_.find(chain_key(e.node, e.ep, e.seq));
      if (it != open_.end()) {
        ++it->second.rec.retransmits;
        // Pin stalls keep the blame: the retransmission is the mechanism,
        // the unpinned page is the cause. Handshake retransmits just widen
        // the handshake.
        if (it->second.cur == Phase::kTransfer) {
          transition(it->second, e.time, Phase::kRetransmit);
        }
      }
      break;
    }
    case EventKind::kPullRetry: {
      if (Chain* c = resolve_receiver(e); c != nullptr) {
        ++c->rec.pull_retries;
        if (c->cur == Phase::kTransfer) {
          transition(*c, e.time, Phase::kRetransmit);
        }
      }
      break;
    }

    // Bytes moving again ends a stall: flip back to transfer.
    case EventKind::kCopyOut: {
      const auto it = open_.find(chain_key(e.node, e.ep, e.seq));
      if (it != open_.end() && (it->second.cur == Phase::kPinStall ||
                                it->second.cur == Phase::kRetransmit)) {
        transition(it->second, e.time, Phase::kTransfer);
      }
      break;
    }
    case EventKind::kCopyIn: {
      if (Chain* c = resolve_receiver(e);
          c != nullptr &&
          (c->cur == Phase::kPinStall || c->cur == Phase::kRetransmit)) {
        transition(*c, e.time, Phase::kTransfer);
      }
      break;
    }

    case EventKind::kRecvDone:
    case EventKind::kRecvAbort: {
      const std::uint64_t ck = chain_key(
          e.peer, e.peer_ep, static_cast<std::uint32_t>(e.offset));
      if (e.kind == EventKind::kRecvDone) {
        if (auto it = open_.find(ck); it != open_.end()) {
          transition(it->second, e.time, Phase::kCompletion);
        }
      }
      pulls_.erase(chain_key(e.node, e.ep, e.seq));
      break;
    }

    case EventKind::kSendDone:
    case EventKind::kSendAbort: {
      const std::uint64_t ck = chain_key(e.node, e.ep, e.seq);
      if (auto it = open_.find(ck); it != open_.end()) {
        close(it->second, ck, e.time, e.kind == EventKind::kSendAbort);
      }
      break;
    }

    case EventKind::kPinStart:
    case EventKind::kPinDone:
    case EventKind::kPinFail:
    case EventKind::kPinRestart:
      on_pin_event(e);
      break;

    default:
      break;
  }
}

void CriticalPathAnalyzer::finalize() {
  orphaned_count_ += open_.size();
  open_.clear();
  pulls_.clear();
  pins_open_.clear();
}

std::string CriticalPathAnalyzer::json() const {
  std::string out = "{";
  out += "\"completed\":" + json_num(completed_count_);
  out += ",\"aborted\":" + json_num(aborted_count_);
  out += ",\"orphaned\":" + json_num(orphaned_count_);
  out += ",\"dropped_records\":" + json_num(dropped_records_);
  out += ",\"latency_total_ns\":" + json_num(latency_total_);
  out += ",\"phase_totals_ns\":{";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (i != 0) out += ",";
    out += json_str(phase_name(static_cast<Phase>(i))) + ":" +
           json_num(phase_totals_[i]);
  }
  out += "}";

  const auto message = [](const Breakdown& b) {
    std::string m = "{";
    m += "\"node\":" + json_num(static_cast<std::uint64_t>(b.node));
    m += ",\"ep\":" + json_num(static_cast<std::uint64_t>(b.ep));
    m += ",\"seq\":" + json_num(static_cast<std::uint64_t>(b.seq));
    m += ",\"rndv\":";
    m += b.rndv ? "true" : "false";
    m += ",\"bytes\":" + json_num(b.bytes);
    m += ",\"start_ns\":" + json_num(b.start);
    m += ",\"end_ns\":" + json_num(b.end);
    m += ",\"total_ns\":" + json_num(b.total());
    m += ",\"dominant\":" + json_str(phase_name(b.dominant()));
    m += ",\"phases_ns\":{";
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (i != 0) m += ",";
      m += json_str(phase_name(static_cast<Phase>(i))) + ":" +
           json_num(b.phase_ns[i]);
    }
    m += "}";
    m += ",\"overlap_misses\":" +
         json_num(static_cast<std::uint64_t>(b.overlap_misses));
    m += ",\"retransmits\":" +
         json_num(static_cast<std::uint64_t>(b.retransmits));
    m += ",\"pull_retries\":" +
         json_num(static_cast<std::uint64_t>(b.pull_retries));
    m += ",\"pin_restarts\":" +
         json_num(static_cast<std::uint64_t>(b.pin_restarts));
    m += "}";
    return m;
  };

  out += ",\"slowest\":[";
  for (std::size_t i = 0; i < slowest_.size(); ++i) {
    if (i != 0) out += ",";
    out += message(slowest_[i]);
  }
  out += "],\"messages\":[";
  for (std::size_t i = 0; i < completed_.size(); ++i) {
    if (i != 0) out += ",";
    out += message(completed_[i]);
  }
  out += "]}";
  return out;
}

std::string CriticalPathAnalyzer::digest() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "critical-path: %llu completed, %llu aborted, %llu orphaned\n",
                static_cast<unsigned long long>(completed_count_),
                static_cast<unsigned long long>(aborted_count_),
                static_cast<unsigned long long>(orphaned_count_));
  out += buf;
  if (completed_count_ != 0) {
    out += "  aggregate phase share:";
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const double pct =
          latency_total_ == 0
              ? 0.0
              : 100.0 * static_cast<double>(phase_totals_[i]) /
                    static_cast<double>(latency_total_);
      std::snprintf(buf, sizeof buf, " %s=%.1f%%",
                    phase_name(static_cast<Phase>(i)), pct);
      out += buf;
    }
    out += "\n";
  }
  if (!slowest_.empty()) out += "  slowest messages (why was this slow):\n";
  for (std::size_t i = 0; i < slowest_.size(); ++i) {
    const Breakdown& b = slowest_[i];
    std::snprintf(buf, sizeof buf,
                  "  #%zu node%u:ep%u seq=%u %lluB total=%.1fus"
                  " dominant=%s |",
                  i + 1, b.node, static_cast<unsigned>(b.ep), b.seq,
                  static_cast<unsigned long long>(b.bytes),
                  static_cast<double>(b.total()) / 1000.0,
                  phase_name(b.dominant()));
    out += buf;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      if (b.phase_ns[p] == 0) continue;
      std::snprintf(buf, sizeof buf, " %s=%.1fus",
                    phase_name(static_cast<Phase>(p)),
                    static_cast<double>(b.phase_ns[p]) / 1000.0);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, " (misses=%u retx=%u retries=%u)\n",
                  b.overlap_misses, b.retransmits, b.pull_retries);
    out += buf;
  }
  return out;
}

}  // namespace pinsim::obs
