#pragma once

#include <cstdint>
#include <string>

#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "sim/flat_map.hpp"

namespace pinsim::obs {

/// Aggregates the component-lifecycle event stream (kLife*) into recovery
/// metrics: how often each class of fault fired, how long restarts took, and
/// how long after a restart the first successful completion landed — the
/// "recovery time" the robustness PR is graded on. Sim-time only, so the
/// section is part of the byte-identical determinism surface.
class LifecycleRecorder final : public Sink {
 public:
  struct Totals {
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t link_downs = 0;
    std::uint64_t nic_resets = 0;
    std::uint64_t peer_deaths = 0;
    std::uint64_t fenced_frames = 0;
    std::uint64_t reclaimed_pages = 0;  // sum over crashes of pins reclaimed
    // Sim-ns accumulators; divide by the matching count for the mean.
    std::uint64_t restart_delay_ns = 0;   // crash -> restart
    std::uint64_t recovery_ns = 0;        // restart -> first completion
    std::uint64_t recoveries = 0;         // restarts with a completion seen
  };

  void on_event(const Event& e) override;

  [[nodiscard]] const Totals& totals() const noexcept { return totals_; }

  /// One JSON object for the report ("lifecycle" section).
  [[nodiscard]] std::string json() const;

 private:
  // Per-(node, ep) slot being watched: crash time until the restart lands,
  // then restart time until the first kSendDone/kRecvDone on that slot.
  struct SlotWatch {
    sim::Time crashed_at = 0;
    sim::Time restarted_at = 0;
    bool down = false;
    bool awaiting_completion = false;
  };

  static std::uint64_t slot_key(const Event& e) noexcept {
    return (static_cast<std::uint64_t>(e.node) << 8) | e.ep;
  }

  Totals totals_;
  sim::FlatMap<std::uint64_t, SlotWatch> slots_;
};

}  // namespace pinsim::obs
