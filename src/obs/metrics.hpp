#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace pinsim::obs {

/// Periodic sim-time sampler: turns the event stream into a compact time
/// series of gauges (carry-forward step functions) and per-interval counters
/// (reset at each boundary), so pressure/fault soaks show *dynamics* instead
/// of end-state totals.
///
/// No engine coupling: sampling is driven by event timestamps. Each incoming
/// event first closes any interval boundaries it crossed (one sample per
/// boundary, at most two per gap — a closing sample with the interval's
/// counters, then a flat carry-forward sample at the last boundary before
/// the event if the stream went idle), then mutates the state. When the
/// series hits `max_samples` it compacts by merging adjacent pairs (gauges
/// keep the later value, counters sum, timestamp keeps the later edge) and
/// doubles the interval, so memory stays bounded on arbitrarily long runs.
class MetricsSampler final : public Sink {
 public:
  struct Sample {
    sim::Time t = 0;  // interval end (exclusive): covers (prev.t, t]
    // Gauges (value at t).
    std::uint64_t pinned_pages = 0;    // sum of region pin frontiers
    std::uint32_t inflight_pin_jobs = 0;
    std::uint32_t open_sends = 0;      // posted, not yet done/aborted
    std::uint32_t open_pulls = 0;      // started, not yet done/aborted
    std::uint64_t port_queue_depth = 0;  // frames across all switch ports
    // Counters (events inside the interval ending at t).
    std::uint32_t overlap_misses = 0;
    std::uint32_t retransmits = 0;     // send retransmits + pull retries
    std::uint64_t copied_bytes = 0;    // kCopyIn payload landed
    std::uint32_t pressure_denials = 0;
    std::uint32_t congestion_drops = 0;  // switch queue overflows
    std::uint64_t uplink_busy_ns = 0;    // uplink serialization time spent
  };

  explicit MetricsSampler(sim::Time interval = 50 * sim::kMicrosecond,
                          std::size_t max_samples = 512)
      : interval_(interval == 0 ? 1 : interval),
        max_samples_(max_samples < 4 ? 4 : max_samples) {}

  void on_event(const Event& e) override;

  /// Flushes the trailing partial interval (if it saw any events).
  void finalize() override;

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  /// Current interval width — doubles on each compaction.
  [[nodiscard]] sim::Time interval() const noexcept { return interval_; }
  [[nodiscard]] std::uint32_t compactions() const noexcept {
    return compactions_;
  }

  /// Columnar `{"interval_ns":...,"t_ns":[...],"pinned_pages":[...],...}` —
  /// compact enough to inline into the run report.
  [[nodiscard]] std::string json() const;

 private:
  void roll_to(sim::Time t);
  void push_sample(sim::Time boundary);
  void compact();

  sim::Time interval_;
  std::size_t max_samples_;
  sim::Time next_ = 0;        // end of the interval being accumulated
  bool started_ = false;
  bool dirty_ = false;        // events seen since the last pushed sample

  // Gauge state.
  std::unordered_map<std::uint64_t, std::uint64_t> frontiers_;  // region->pages
  std::uint64_t pinned_pages_ = 0;
  std::unordered_set<std::uint64_t> pin_jobs_;
  std::unordered_set<std::uint64_t> sends_;
  std::unordered_set<std::uint64_t> pulls_;
  std::unordered_map<std::uint32_t, std::uint64_t> port_depths_;  // port->depth
  std::uint64_t port_queue_depth_ = 0;  // running sum over port_depths_

  // Counter accumulators for the open interval.
  std::uint32_t overlap_misses_ = 0;
  std::uint32_t retransmits_ = 0;
  std::uint64_t copied_bytes_ = 0;
  std::uint32_t pressure_denials_ = 0;
  std::uint32_t congestion_drops_ = 0;
  std::uint64_t uplink_busy_ns_ = 0;

  std::vector<Sample> samples_;
  std::uint32_t compactions_ = 0;
};

}  // namespace pinsim::obs
