#include "obs/flight_recorder.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace pinsim::obs {

FlightRecorder::FlightRecorder() : FlightRecorder(Config{}) {}

FlightRecorder::FlightRecorder(Config cfg)
    : cap_(cfg.capacity < 16 ? 16 : cfg.capacity),
      max_dumps_(cfg.max_dumps),
      dump_prefix_(std::move(cfg.dump_prefix)),
      auto_dump_on_abort_(cfg.auto_dump_on_abort) {
  ring_.resize(cap_);
}

// Per-kind compaction: keep the three argument words a post-mortem reader
// actually needs, per the field documentation on EventKind. Exhaustive so
// pinlint D5 forces an update when a kind is added.
FlightRecorder::CompactEvent FlightRecorder::compact_encode(
    const Event& e) noexcept {
  CompactEvent ce;
  ce.time = e.time;
  ce.kind = e.kind;
  ce.node = e.node;
  ce.ep = e.ep;
  switch (e.kind) {
    case EventKind::kPktTx:
    case EventKind::kPktRx:
    case EventKind::kPktChecksumDrop:
    case EventKind::kPktMalformed:
      ce.a = e.peer;  // remote node
      ce.b = e.pkt;   // packet type
      ce.c = e.len;
      break;
    case EventKind::kEagerPost:
    case EventKind::kRndvPost:
    case EventKind::kSendDone:
    case EventKind::kSendAbort:
      ce.a = e.seq;
      ce.b = e.peer;
      ce.c = e.len;
      break;
    case EventKind::kRetransmit:
      ce.a = e.seq;
      ce.b = e.peer;
      ce.c = e.offset;  // retry count
      break;
    case EventKind::kPullStart:
    case EventKind::kPullRetry:
    case EventKind::kRecvDone:
    case EventKind::kRecvAbort:
      ce.a = e.seq;     // pull handle
      ce.b = e.offset;  // sender seq
      ce.c = e.len;
      break;
    case EventKind::kPullBlockReq:
    case EventKind::kCopyIn:
    case EventKind::kCopyOut:
      ce.a = e.region;
      ce.b = e.offset;
      ce.c = e.len;
      break;
    case EventKind::kOverlapMissSend:
    case EventKind::kOverlapMissRecv:
      ce.a = e.region;
      ce.b = e.offset;
      ce.c = e.len;
      break;
    case EventKind::kDmaCopy:
      ce.a = e.len;  // bytes copied
      break;
    case EventKind::kPinReset:
    case EventKind::kPinStart:
    case EventKind::kPinPages:
    case EventKind::kPinShrink:
    case EventKind::kPinRetry:
    case EventKind::kPinRestart:
    case EventKind::kPinDone:
    case EventKind::kPinFail:
    case EventKind::kPinShed:
    case EventKind::kPinUnpin:
      ce.a = e.region;
      ce.b = e.offset;  // pinned frontier, pages
      ce.c = e.len;     // total pages
      break;
    case EventKind::kPinInvalidate:
      ce.a = e.region;
      ce.b = e.seq;  // invalidation cut slot
      ce.c = e.len;
      break;
    case EventKind::kPressureDeny:
    case EventKind::kPressureSweep:
    case EventKind::kPressureMigrate:
    case EventKind::kPressureCow:
      ce.a = e.region;
      ce.b = e.offset;
      ce.c = e.len;
      break;
    case EventKind::kFaultDrop:
    case EventKind::kFaultCorrupt:
    case EventKind::kFaultDup:
    case EventKind::kFaultReorder:
      ce.a = e.peer;
      ce.b = e.pkt;
      ce.c = e.len;
      break;
    case EventKind::kLifeCrash:
      ce.a = e.offset;  // pinned pages after sweep
      ce.b = e.len;     // expected baseline
      ce.c = e.seq;     // dying epoch
      break;
    case EventKind::kLifeRestart:
    case EventKind::kLifeFence:
      ce.a = e.seq;  // epoch
      break;
    case EventKind::kLifeLinkDown:
    case EventKind::kLifeLinkUp:
      break;  // node alone identifies the port
    case EventKind::kLifeNicReset:
      ce.a = e.len;  // tx frames dropped
      break;
    case EventKind::kLifePeerDead:
    case EventKind::kLifePeerAlive:
      ce.a = e.peer;
      break;
    case EventKind::kNetPortQueue:
      ce.a = e.pkt;     // 1 on uplink ports
      ce.b = e.offset;  // depth
      ce.c = e.len;     // capacity
      break;
    case EventKind::kNetPortTx:
      ce.a = e.pkt;
      ce.b = e.offset;  // serialization ns
      ce.c = e.len;     // wire bytes
      break;
    case EventKind::kNetCongestionDrop:
      ce.a = e.pkt;
      ce.b = e.peer;  // frame destination
      ce.c = e.len;   // wire bytes
      break;
  }
  return ce;
}

// Argument names matching compact_encode's per-kind slot choices, for the
// rendered JSON. Exhaustive so pinlint D5 keeps it in lock-step with the
// encoder above.
void FlightRecorder::compact_arg_names(EventKind k, const char*& a,
                                       const char*& b,
                                       const char*& c) noexcept {
  a = b = c = nullptr;
  switch (k) {
    case EventKind::kPktTx:
    case EventKind::kPktRx:
    case EventKind::kPktChecksumDrop:
    case EventKind::kPktMalformed:
      a = "peer";
      b = "pkt";
      c = "len";
      break;
    case EventKind::kEagerPost:
    case EventKind::kRndvPost:
    case EventKind::kSendDone:
    case EventKind::kSendAbort:
      a = "seq";
      b = "peer";
      c = "len";
      break;
    case EventKind::kRetransmit:
      a = "seq";
      b = "peer";
      c = "retries";
      break;
    case EventKind::kPullStart:
    case EventKind::kPullRetry:
    case EventKind::kRecvDone:
    case EventKind::kRecvAbort:
      a = "handle";
      b = "sender_seq";
      c = "len";
      break;
    case EventKind::kPullBlockReq:
    case EventKind::kCopyIn:
    case EventKind::kCopyOut:
    case EventKind::kOverlapMissSend:
    case EventKind::kOverlapMissRecv:
      a = "region";
      b = "offset";
      c = "len";
      break;
    case EventKind::kDmaCopy:
      a = "bytes";
      break;
    case EventKind::kPinReset:
    case EventKind::kPinStart:
    case EventKind::kPinPages:
    case EventKind::kPinShrink:
    case EventKind::kPinRetry:
    case EventKind::kPinRestart:
    case EventKind::kPinDone:
    case EventKind::kPinFail:
    case EventKind::kPinShed:
    case EventKind::kPinUnpin:
      a = "region";
      b = "frontier_pages";
      c = "total_pages";
      break;
    case EventKind::kPinInvalidate:
      a = "region";
      b = "cut_slot";
      c = "total_pages";
      break;
    case EventKind::kPressureDeny:
    case EventKind::kPressureSweep:
    case EventKind::kPressureMigrate:
    case EventKind::kPressureCow:
      a = "region";
      b = "offset";
      c = "len";
      break;
    case EventKind::kFaultDrop:
    case EventKind::kFaultCorrupt:
    case EventKind::kFaultDup:
    case EventKind::kFaultReorder:
      a = "peer";
      b = "pkt";
      c = "len";
      break;
    case EventKind::kLifeCrash:
      a = "pinned_after_sweep";
      b = "baseline";
      c = "epoch";
      break;
    case EventKind::kLifeRestart:
    case EventKind::kLifeFence:
      a = "epoch";
      break;
    case EventKind::kLifeLinkDown:
    case EventKind::kLifeLinkUp:
      break;
    case EventKind::kLifeNicReset:
      a = "tx_dropped";
      break;
    case EventKind::kLifePeerDead:
    case EventKind::kLifePeerAlive:
      a = "peer";
      break;
    case EventKind::kNetPortQueue:
      a = "uplink";
      b = "depth";
      c = "capacity";
      break;
    case EventKind::kNetPortTx:
      a = "uplink";
      b = "serialization_ns";
      c = "wire_bytes";
      break;
    case EventKind::kNetCongestionDrop:
      a = "uplink";
      b = "dst";
      c = "wire_bytes";
      break;
  }
}

void FlightRecorder::on_event(const Event& e) {
  if (held_ == cap_) ++dropped_;
  ring_[head_] = compact_encode(e);
  head_ = (head_ + 1) % cap_;
  if (held_ < cap_) ++held_;
  ++recorded_;
  if (auto_dump_on_abort_ && !dumping_ &&
      (e.kind == EventKind::kSendAbort || e.kind == EventKind::kRecvAbort ||
       e.kind == EventKind::kLifePeerDead)) {
    std::string reason = "auto: ";
    reason += event_kind_name(e.kind);
    dump(reason);
  }
}

void FlightRecorder::for_each_held(
    const std::function<void(const CompactEvent&)>& fn) const {
  const std::size_t start = held_ == cap_ ? head_ : 0;
  for (std::size_t i = 0; i < held_; ++i) {
    fn(ring_[(start + i) % cap_]);
  }
}

void FlightRecorder::append_entry_json(std::string& out,
                                       const CompactEvent& ce) const {
  const char* an = nullptr;
  const char* bn = nullptr;
  const char* cn = nullptr;
  compact_arg_names(ce.kind, an, bn, cn);
  out += "{\"name\":" + json_str(event_kind_name(ce.kind));
  out += ",\"ph\":\"i\",\"s\":\"t\"";
  // Chrome trace ts is in microseconds; keep ns precision as a fraction.
  out += ",\"ts\":" + json_num(static_cast<double>(ce.time) / 1000.0);
  out += ",\"pid\":" + json_num(static_cast<std::uint64_t>(ce.node));
  out += ",\"tid\":" + json_num(static_cast<std::uint64_t>(ce.ep));
  out += ",\"args\":{\"t_ns\":" + json_num(static_cast<std::uint64_t>(ce.time));
  if (an != nullptr) {
    out += ",";
    out += json_str(an) + ":" + json_num(ce.a);
  }
  if (bn != nullptr) {
    out += ",";
    out += json_str(bn) + ":" + json_num(ce.b);
  }
  if (cn != nullptr) {
    out += ",";
    out += json_str(cn) + ":" + json_num(ce.c);
  }
  out += "}}";
}

std::string FlightRecorder::render(std::string_view reason) const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for_each_held([&](const CompactEvent& ce) {
    if (!first) out += ",";
    first = false;
    append_entry_json(out, ce);
  });
  out += "],\"metadata\":{\"reason\":" + json_str(reason);
  out += ",\"recorded\":" + json_num(recorded_);
  out += ",\"dropped\":" + json_num(dropped_);
  out += ",\"window\":" + json_num(static_cast<std::uint64_t>(held_));
  out += "}}";
  return out;
}

std::string FlightRecorder::digest(std::string_view reason,
                                   std::size_t tail) const {
  std::string out = "flight recorder: ";
  out += reason;
  out += "\n  window: last " + json_num(static_cast<std::uint64_t>(held_)) +
         " of " + json_num(recorded_) + " events\n";
  std::vector<CompactEvent> last;
  last.reserve(held_);
  for_each_held([&](const CompactEvent& ce) { last.push_back(ce); });
  const std::size_t begin = last.size() > tail ? last.size() - tail : 0;
  for (std::size_t i = begin; i < last.size(); ++i) {
    const CompactEvent& ce = last[i];
    const char* an = nullptr;
    const char* bn = nullptr;
    const char* cn = nullptr;
    compact_arg_names(ce.kind, an, bn, cn);
    out += "  t=" + json_num(static_cast<std::uint64_t>(ce.time));
    out += " n" + json_num(static_cast<std::uint64_t>(ce.node));
    out += "/e" + json_num(static_cast<std::uint64_t>(ce.ep));
    out += " ";
    out += event_kind_name(ce.kind);
    if (an != nullptr) out += std::string(" ") + an + "=" + json_num(ce.a);
    if (bn != nullptr) out += std::string(" ") + bn + "=" + json_num(ce.b);
    if (cn != nullptr) out += std::string(" ") + cn + "=" + json_num(ce.c);
    out += "\n";
  }
  return out;
}

std::string FlightRecorder::dump(std::string_view reason) {
  ++dump_attempts_;
  if (dump_attempts_ > max_dumps_) return "";
  dumping_ = true;
  const std::string path =
      dump_prefix_ + "-" + json_num(dump_attempts_) + ".flight.json";
  const std::string body = render(reason);
  std::fputs(digest(reason).c_str(), stderr);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write flight dump to %s\n",
                 path.c_str());
    dumping_ = false;
    return "";
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  dumping_ = false;
  if (!ok) {
    std::fprintf(stderr, "obs: short write on %s\n", path.c_str());
    return "";
  }
  std::fprintf(stderr, "  dump: %s\n", path.c_str());
  return path;
}

std::string FlightRecorder::json() const {
  std::string out = "{\"capacity\":" +
                    json_num(static_cast<std::uint64_t>(cap_));
  out += ",\"recorded\":" + json_num(recorded_);
  out += ",\"dropped\":" + json_num(dropped_);
  out += ",\"dump_attempts\":" + json_num(dump_attempts_);
  out += "}";
  return out;
}

}  // namespace pinsim::obs
