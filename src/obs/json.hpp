#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace pinsim::obs {

/// Tiny JSON emission helpers — enough for the run reports and histograms
/// this repo writes, with zero dependencies. Callers compose objects by
/// string concatenation; these keep escaping and number formatting correct.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] inline std::string json_str(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

[[nodiscard]] inline std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

[[nodiscard]] inline std::string json_num(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

}  // namespace pinsim::obs
