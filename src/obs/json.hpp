#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace pinsim::obs {

/// Tiny JSON emission helpers — enough for the run reports and histograms
/// this repo writes, with zero dependencies. Callers compose objects by
/// string concatenation; these keep escaping and number formatting correct.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] inline std::string json_str(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

[[nodiscard]] inline std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

[[nodiscard]] inline std::string json_num(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

namespace detail {

/// Recursive-descent JSON value parser used by json_valid(). `i` advances
/// past the value; returns false on any syntax error or when nesting
/// exceeds `depth`.
inline bool json_skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
  return i < s.size();
}

inline bool json_parse_string(std::string_view s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size()) {
    const char c = s[i];
    if (static_cast<unsigned char>(c) < 0x20) return false;
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      ++i;
      if (i >= s.size()) return false;
      const char e = s[i];
      if (e == 'u') {
        if (i + 4 >= s.size()) return false;
        for (int k = 1; k <= 4; ++k) {
          const char h = s[i + static_cast<std::size_t>(k)];
          const bool hex = (h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                           (h >= 'A' && h <= 'F');
          if (!hex) return false;
        }
        i += 4;
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    }
    ++i;
  }
  return false;
}

inline bool json_parse_value(std::string_view s, std::size_t& i, int depth);

inline bool json_parse_number(std::string_view s, std::size_t& i) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  if (i >= s.size()) return false;
  if (s[i] == '0') {
    ++i;
  } else if (s[i] >= '1' && s[i] <= '9') {
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  } else {
    return false;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  }
  return i > start;
}

inline bool json_parse_value(std::string_view s, std::size_t& i, int depth) {
  if (depth <= 0) return false;
  if (!json_skip_ws(s, i)) return false;
  const char c = s[i];
  if (c == '"') return json_parse_string(s, i);
  if (c == '{') {
    ++i;
    if (!json_skip_ws(s, i)) return false;
    if (s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      if (!json_skip_ws(s, i)) return false;
      if (!json_parse_string(s, i)) return false;
      if (!json_skip_ws(s, i) || s[i] != ':') return false;
      ++i;
      if (!json_parse_value(s, i, depth - 1)) return false;
      if (!json_skip_ws(s, i)) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (c == '[') {
    ++i;
    if (!json_skip_ws(s, i)) return false;
    if (s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!json_parse_value(s, i, depth - 1)) return false;
      if (!json_skip_ws(s, i)) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (s.substr(i, 4) == "true") {
    i += 4;
    return true;
  }
  if (s.substr(i, 5) == "false") {
    i += 5;
    return true;
  }
  if (s.substr(i, 4) == "null") {
    i += 4;
    return true;
  }
  return json_parse_number(s, i);
}

}  // namespace detail

/// Minimal JSON well-formedness check: true iff `s` is exactly one valid
/// JSON value (plus surrounding whitespace). Strict enough to reject
/// truncated writes, trailing garbage, and bad escapes; it does not build a
/// document. Used by sinks' self-tests and by CI artifact validation.
[[nodiscard]] inline bool json_valid(std::string_view s) noexcept {
  std::size_t i = 0;
  if (!detail::json_parse_value(s, i, /*depth=*/64)) return false;
  while (i < s.size()) {
    const char c = s[i];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
    ++i;
  }
  return true;
}

}  // namespace pinsim::obs
