#include "obs/legacy.hpp"

#include "obs/relay.hpp"

namespace pinsim::obs {

namespace {

std::string pin_detail(const Event& e) {
  return "region " + std::to_string(e.region) + " " +
         (e.label != nullptr ? e.label : "") + " (" +
         std::to_string(e.offset) + "/" + std::to_string(e.len) + " pages)";
}

std::string frame_detail(const Event& e) {
  return "frame " + std::to_string(e.node) + "->" + std::to_string(e.peer) +
         " (" + std::to_string(e.len) + "B)";
}

}  // namespace

const char* event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kPktTx: return "pkt_tx";
    case EventKind::kPktRx: return "pkt_rx";
    case EventKind::kPktChecksumDrop: return "pkt_checksum_drop";
    case EventKind::kPktMalformed: return "pkt_malformed";
    case EventKind::kEagerPost: return "eager_post";
    case EventKind::kRndvPost: return "rndv_post";
    case EventKind::kSendDone: return "send_done";
    case EventKind::kSendAbort: return "send_abort";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kPullStart: return "pull_start";
    case EventKind::kPullBlockReq: return "pull_block_req";
    case EventKind::kPullRetry: return "pull_retry";
    case EventKind::kRecvDone: return "recv_done";
    case EventKind::kRecvAbort: return "recv_abort";
    case EventKind::kOverlapMissSend: return "overlap_miss_send";
    case EventKind::kOverlapMissRecv: return "overlap_miss_recv";
    case EventKind::kCopyIn: return "copy_in";
    case EventKind::kCopyOut: return "copy_out";
    case EventKind::kDmaCopy: return "dma_copy";
    case EventKind::kPinReset: return "pin_reset";
    case EventKind::kPinStart: return "pin_start";
    case EventKind::kPinPages: return "pin_pages";
    case EventKind::kPinShrink: return "pin_shrink";
    case EventKind::kPinRetry: return "pin_retry";
    case EventKind::kPinRestart: return "pin_restart";
    case EventKind::kPinInvalidate: return "pin_invalidate";
    case EventKind::kPinDone: return "pin_done";
    case EventKind::kPinFail: return "pin_fail";
    case EventKind::kPinShed: return "pin_shed";
    case EventKind::kPinUnpin: return "pin_unpin";
    case EventKind::kPressureDeny: return "pressure_deny";
    case EventKind::kPressureSweep: return "pressure_sweep";
    case EventKind::kPressureMigrate: return "pressure_migrate";
    case EventKind::kPressureCow: return "pressure_cow";
    case EventKind::kFaultDrop: return "fault_drop";
    case EventKind::kFaultCorrupt: return "fault_corrupt";
    case EventKind::kFaultDup: return "fault_dup";
    case EventKind::kFaultReorder: return "fault_reorder";
    case EventKind::kLifeCrash: return "life_crash";
    case EventKind::kLifeRestart: return "life_restart";
    case EventKind::kLifeLinkDown: return "life_link_down";
    case EventKind::kLifeLinkUp: return "life_link_up";
    case EventKind::kLifeNicReset: return "life_nic_reset";
    case EventKind::kLifePeerDead: return "life_peer_dead";
    case EventKind::kLifePeerAlive: return "life_peer_alive";
    case EventKind::kLifeFence: return "life_fence";
    case EventKind::kNetPortQueue: return "net_port_queue";
    case EventKind::kNetPortTx: return "net_port_tx";
    case EventKind::kNetCongestionDrop: return "net_congestion_drop";
  }
  return "unknown";
}

LegacyStrings legacy_strings(const Event& e) {
  const char* label = e.label != nullptr ? e.label : "";
  switch (e.kind) {
    case EventKind::kPktTx:
      return {"pkt.tx",
              std::string(label) + " to node " + std::to_string(e.peer)};
    case EventKind::kPktRx:
      return {"pkt.rx", std::string(label) + " from node " +
                            std::to_string(e.peer) + " ep " +
                            std::to_string(e.peer_ep)};
    case EventKind::kPktChecksumDrop:
      return {"pkt.checksum", ""};
    case EventKind::kPktMalformed:
      return {"pkt.malformed", ""};
    case EventKind::kEagerPost:
      return {"req.eager", "seq " + std::to_string(e.seq) + " len " +
                               std::to_string(e.len) + " to node " +
                               std::to_string(e.peer)};
    case EventKind::kRndvPost:
      return {"req.rndv", "seq " + std::to_string(e.seq) + " len " +
                              std::to_string(e.len) + " to node " +
                              std::to_string(e.peer)};
    case EventKind::kSendDone:
      return {"req.done", "seq " + std::to_string(e.seq)};
    case EventKind::kSendAbort:
      return {"req.abort", "seq " + std::to_string(e.seq)};
    case EventKind::kRetransmit:
      return {"req.retransmit", "seq " + std::to_string(e.seq) + " retry " +
                                    std::to_string(e.offset)};
    case EventKind::kPullStart:
      return {"pull.start", "handle " + std::to_string(e.seq) +
                                " from node " + std::to_string(e.peer) +
                                " len " + std::to_string(e.len)};
    case EventKind::kPullBlockReq:
      return {"pull.block", "handle " + std::to_string(e.seq) + " offset " +
                                std::to_string(e.offset)};
    case EventKind::kPullRetry:
      return {"pull.retry", "handle " + std::to_string(e.seq) + " stall " +
                                std::to_string(e.len)};
    case EventKind::kRecvDone:
      return {"pull.done", "handle " + std::to_string(e.seq)};
    case EventKind::kRecvAbort:
      return {"pull.abort", "handle " + std::to_string(e.seq)};
    case EventKind::kOverlapMissSend:
      return {"pin.miss", "send offset " + std::to_string(e.offset)};
    case EventKind::kOverlapMissRecv:
      return {"pin.miss", "recv offset " + std::to_string(e.offset)};
    case EventKind::kCopyIn:
      return {"copy.in", "region " + std::to_string(e.region) + " offset " +
                             std::to_string(e.offset) + " len " +
                             std::to_string(e.len)};
    case EventKind::kCopyOut:
      return {"copy.out", "region " + std::to_string(e.region) + " offset " +
                              std::to_string(e.offset) + " len " +
                              std::to_string(e.len)};
    case EventKind::kDmaCopy:
      return {"dma.copy", std::to_string(e.len) + "B"};
    case EventKind::kPinReset:
      return {"pin.reset", pin_detail(e)};
    case EventKind::kPinStart:
      return {"pin.start", pin_detail(e)};
    case EventKind::kPinPages:
      return {"pin.pages", pin_detail(e)};
    case EventKind::kPinShrink:
      return {"pin.shrink", pin_detail(e)};
    case EventKind::kPinRetry:
      return {"pin.retry", pin_detail(e)};
    case EventKind::kPinRestart:
      return {"pin.restart", pin_detail(e)};
    case EventKind::kPinInvalidate:
      return {"pin.invalidate", pin_detail(e)};
    case EventKind::kPinDone:
      return {"pin.done", pin_detail(e)};
    case EventKind::kPinFail:
      return {"pin.fail", pin_detail(e)};
    case EventKind::kPinShed:
      return {"pin.shed", pin_detail(e)};
    case EventKind::kPinUnpin:
      return {"pin.unpin", pin_detail(e)};
    case EventKind::kPressureDeny:
      return {"pressure.deny", label};
    case EventKind::kPressureSweep:
      return {"pressure.sweep", label};
    case EventKind::kPressureMigrate:
      return {"pressure.migrate", label};
    case EventKind::kPressureCow:
      return {"pressure.cow", label};
    case EventKind::kFaultDrop:
      return {"fault.drop", frame_detail(e)};
    case EventKind::kFaultCorrupt:
      return {"fault.corrupt", frame_detail(e)};
    case EventKind::kFaultDup:
      return {"fault.dup", frame_detail(e)};
    case EventKind::kFaultReorder:
      return {"fault.reorder", frame_detail(e)};
    case EventKind::kLifeCrash:
      return {"life.crash", "ep " + std::to_string(e.ep) + " epoch " +
                                std::to_string(e.seq) + " reclaimed " +
                                std::to_string(e.region) + " pinned " +
                                std::to_string(e.offset) + "/" +
                                std::to_string(e.len) + " baseline"};
    case EventKind::kLifeRestart:
      return {"life.restart",
              "ep " + std::to_string(e.ep) + " epoch " + std::to_string(e.seq)};
    case EventKind::kLifeLinkDown:
      return {"life.link", "port " + std::to_string(e.node) + " down"};
    case EventKind::kLifeLinkUp:
      return {"life.link", "port " + std::to_string(e.node) + " up"};
    case EventKind::kLifeNicReset:
      return {"life.nic_reset", "node " + std::to_string(e.node) +
                                    " dropped " + std::to_string(e.len) +
                                    " tx frames"};
    case EventKind::kLifePeerDead:
      return {"life.peer", "node " + std::to_string(e.peer) + " dead"};
    case EventKind::kLifePeerAlive:
      return {"life.peer", "node " + std::to_string(e.peer) + " alive"};
    case EventKind::kLifeFence:
      return {"life.fence", "from node " + std::to_string(e.peer) +
                                " stale epoch " + std::to_string(e.seq)};
    case EventKind::kNetPortQueue:
      return {"net.port", std::string(e.pkt != 0 ? "uplink " : "port ") +
                              std::to_string(e.node) + " depth " +
                              std::to_string(e.offset) + "/" +
                              std::to_string(e.len)};
    case EventKind::kNetPortTx:
      return {"net.port", std::string(e.pkt != 0 ? "uplink " : "port ") +
                              std::to_string(e.node) + " tx " +
                              std::to_string(e.len) + "B in " +
                              std::to_string(e.offset) + "ns"};
    case EventKind::kNetCongestionDrop:
      return {"net.congestion", std::string(e.pkt != 0 ? "uplink " : "port ") +
                                    std::to_string(e.node) +
                                    " overflow, frame to node " +
                                    std::to_string(e.peer) + " (" +
                                    std::to_string(e.len) + "B)"};
  }
  return {"unknown", ""};
}

std::string describe(const Event& e) {
  std::string out = "[" + std::to_string(sim::to_usec(e.time)) + "us] " +
                    event_kind_name(e.kind) + " node=" +
                    std::to_string(e.node) + " ep=" + std::to_string(e.ep);
  if (e.peer != 0 || e.peer_ep != 0) {
    out += " peer=" + std::to_string(e.peer) + "." +
           std::to_string(e.peer_ep);
  }
  if (e.region != 0) out += " region=" + std::to_string(e.region);
  if (e.seq != 0) out += " seq=" + std::to_string(e.seq);
  if (e.offset != 0) out += " offset=" + std::to_string(e.offset);
  if (e.len != 0) out += " len=" + std::to_string(e.len);
  if (e.label != nullptr) out += std::string(" \"") + e.label + "\"";
  return out;
}

void Relay::emit(const Event& e) const {
  if (tracer_ != nullptr) {
    LegacyStrings s = legacy_strings(e);
    tracer_->record(std::move(s.category), std::move(s.detail));
  }
  if (bus_ != nullptr && bus_->active()) bus_->emit(e);
}

}  // namespace pinsim::obs
