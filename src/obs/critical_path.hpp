#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace pinsim::obs {

/// Where one message's wall-clock went. The analyzer partitions each chain's
/// end-to-end latency into these phases; by construction they always sum to
/// exactly (end - start), so a slow message can be blamed, not just noticed.
enum class Phase : std::uint8_t {
  kSenderPin,   // handshake time blocked on the sender's own pin job
  kHandshake,   // rendezvous post -> pull start, minus sender-pin time
  kPinStall,    // overlap-miss stalls: pull outran a pin frontier (§3.3)
  kRetransmit,  // stalled on lost frames: retransmission timers / re-pulls
  kTransfer,    // data flowing: wire + copies + DMA queueing
  kCompletion,  // receiver done -> sender completion (notify round trip)
};
inline constexpr std::size_t kPhaseCount = 6;

[[nodiscard]] const char* phase_name(Phase p) noexcept;

/// Reconstructs every rendezvous/eager chain from the typed event stream
/// (stitched with the same sender-side chain_key the Chrome-trace flow
/// arrows use) and attributes its latency to phases with a per-chain state
/// machine:
///
///  * the chain opens at kRndvPost/kEagerPost in kHandshake/kTransfer;
///  * a pin job on the posted region, while still in handshake, accrues
///    kSenderPin (regular pinning pays it, overlapped pinning hides it);
///  * kPullStart flips to kTransfer; overlap misses flip to kPinStall and
///    retransmit/pull-retry timers to kRetransmit until the next byte of
///    progress (copy-in/copy-out) flips back;
///  * kRecvDone flips to kCompletion; kSendDone closes the chain.
///
/// Closed chains land in per-message blame records plus aggregate phase
/// totals; `digest()` renders the top-K slowest as a human-readable "why
/// was this slow" list and `json()` the machine twin for the run report.
class CriticalPathAnalyzer final : public Sink {
 public:
  struct Breakdown {
    std::uint32_t node = 0;  // sender identity (the chain key triple)
    std::uint8_t ep = 0;
    std::uint32_t seq = 0;
    bool rndv = false;
    bool aborted = false;
    std::uint64_t bytes = 0;
    sim::Time start = 0;
    sim::Time end = 0;
    std::array<sim::Time, kPhaseCount> phase_ns{};
    std::uint32_t overlap_misses = 0;
    std::uint32_t retransmits = 0;
    std::uint32_t pull_retries = 0;
    std::uint32_t pin_restarts = 0;

    [[nodiscard]] sim::Time total() const noexcept { return end - start; }
    [[nodiscard]] sim::Time phase(Phase p) const noexcept {
      return phase_ns[static_cast<std::size_t>(p)];
    }
    /// The phase this message spent most of its life in.
    [[nodiscard]] Phase dominant() const noexcept;
  };

  /// `max_records` bounds the verbatim per-message store (aggregates and
  /// the top-K slowest list stay exact past it — see `dropped_records()`).
  explicit CriticalPathAnalyzer(std::size_t max_records = 4096,
                                std::size_t top_k = 8)
      : max_records_(max_records), top_k_(top_k == 0 ? 1 : top_k) {}

  void on_event(const Event& e) override;

  /// End of stream: chains still open are counted as orphaned (the
  /// invariant checker reports them loudly; here they just stay out of the
  /// completed aggregates).
  void finalize() override;

  [[nodiscard]] const std::vector<Breakdown>& completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] const std::vector<Breakdown>& slowest() const noexcept {
    return slowest_;  // sorted, slowest first; at most top_k entries
  }
  [[nodiscard]] std::uint64_t completed_count() const noexcept {
    return completed_count_;
  }
  [[nodiscard]] std::uint64_t aborted_count() const noexcept {
    return aborted_count_;
  }
  [[nodiscard]] std::uint64_t orphaned_count() const noexcept {
    return orphaned_count_;
  }
  [[nodiscard]] std::uint64_t dropped_records() const noexcept {
    return dropped_records_;
  }
  /// Aggregate over every cleanly completed chain.
  [[nodiscard]] sim::Time phase_total(Phase p) const noexcept {
    return phase_totals_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] sim::Time latency_total() const noexcept {
    return latency_total_;
  }

  /// `{"completed":...,"phase_totals_ns":{...},"messages":[...],...}`.
  [[nodiscard]] std::string json() const;

  /// Human-readable top-K "why was this slow" digest (empty-stream safe).
  [[nodiscard]] std::string digest() const;

 private:
  struct Chain {
    Breakdown rec;
    Phase cur = Phase::kHandshake;
    sim::Time since = 0;
    std::uint32_t region = 0;      // sender-side region (rendezvous only)
    bool in_handshake = true;      // sender-pin only accrues here
    bool pin_open = false;         // a pin job for `region` is running
    sim::Time pin_since = 0;
    sim::Time sender_pin = 0;      // accrued pin-blocked handshake time
  };

  void transition(Chain& c, sim::Time now, Phase next);
  void close(Chain& c, std::uint64_t key, sim::Time now, bool aborted);
  void on_pin_event(const Event& e);
  Chain* resolve_receiver(const Event& e);

  std::size_t max_records_;
  std::size_t top_k_;
  std::unordered_map<std::uint64_t, Chain> open_;      // chain key -> state
  std::unordered_map<std::uint64_t, std::uint64_t> pulls_;  // handle -> chain
  std::unordered_set<std::uint64_t> pins_open_;        // running pin jobs
  std::vector<Breakdown> completed_;
  std::vector<Breakdown> slowest_;
  std::array<sim::Time, kPhaseCount> phase_totals_{};
  sim::Time latency_total_ = 0;
  std::uint64_t completed_count_ = 0;
  std::uint64_t aborted_count_ = 0;
  std::uint64_t orphaned_count_ = 0;
  std::uint64_t dropped_records_ = 0;
};

}  // namespace pinsim::obs
