#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

/// C++20 coroutine layer over the event engine.
///
/// The Open-MX driver below stays callback/interrupt-driven (like the real
/// kernel code), but MPI rank programs and workloads read much better as
/// sequential coroutines: `co_await comm.send(...)`, `co_await delay(...)`.
///
/// `Task<T>` is lazy and single-awaiter with symmetric transfer; `spawn()`
/// turns a `Task<void>` into a detached simulation process whose uncaught
/// exceptions are recorded on the Engine (so tests can assert on them)
/// rather than terminating.
namespace pinsim::sim {

template <typename T = void>
class Task;

namespace detail {

struct FinalAwaiter {
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// Lazy coroutine task. The frame is owned by the Task object; awaiting it
/// starts it and resumes the awaiter when it completes.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.error) std::rethrow_exception(p.error);
        assert(p.value && "task finished without a value");
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class TaskTestPeer;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

/// Self-destroying root coroutine used by spawn(). Uncaught exceptions from
/// the spawned task are reported to the engine.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
      return {};
    }
    [[nodiscard]] std::suspend_never final_suspend() const noexcept {
      return {};
    }
    void return_void() const noexcept {}
    [[noreturn]] void unhandled_exception() const noexcept {
      // detached_runner catches everything; reaching this is a logic error.
      std::terminate();
    }
  };
  std::coroutine_handle<promise_type> handle;
};

inline Detached detached_runner(Engine& eng, Task<void> t) {
  try {
    co_await std::move(t);
  } catch (...) {
    eng.report_task_failure(std::current_exception());
  }
}

}  // namespace detail

/// Launches `t` as a detached simulation process. The task starts at the
/// current simulated time, on the next engine dispatch (never synchronously
/// inside the caller).
inline void spawn(Engine& eng, Task<void> t) {
  auto runner = detail::detached_runner(eng, std::move(t));
  eng.schedule_after(0, [h = runner.handle] { h.resume(); },
                     {"sim", "spawn"});
}

/// Awaitable pause for `d` simulated nanoseconds. Always suspends (a zero
/// delay still yields through the event queue, preserving FIFO fairness).
struct DelayAwaiter {
  Engine& eng;
  Time d;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    eng.schedule_after(d, [h] { h.resume(); }, {"sim", "delay"});
  }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline DelayAwaiter delay(Engine& eng, Time d) {
  return DelayAwaiter{eng, d};
}

/// One-shot broadcast event: waiters suspend until open() is called; waiting
/// on an already-open gate does not suspend. Resumptions go through the event
/// queue at the current time (never synchronously inside open()).
class Gate {
 public:
  explicit Gate(Engine& eng) : eng_(&eng) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  void open() {
    if (open_) return;
    open_ = true;
    for (auto h : waiters_) {
      eng_->schedule_after(0, [h] { h.resume(); }, {"sim", "gate"});
    }
    waiters_.clear();
  }

  [[nodiscard]] bool is_open() const noexcept { return open_; }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Gate& g;
      [[nodiscard]] bool await_ready() const noexcept { return g.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        g.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  bool open_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: wait() releases once count_down() has been called
/// `count` times. Used to join fleets of rank coroutines.
class Latch {
 public:
  Latch(Engine& eng, std::size_t count) : gate_(eng), remaining_(count) {
    if (remaining_ == 0) gate_.open();
  }

  void count_down() {
    assert(remaining_ > 0 && "latch underflow");
    if (--remaining_ == 0) gate_.open();
  }

  [[nodiscard]] auto wait() { return gate_.wait(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }

 private:
  Gate gate_;
  std::size_t remaining_;
};

}  // namespace pinsim::sim
