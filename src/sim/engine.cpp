#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>

namespace pinsim::sim {

Engine::EventId Engine::schedule_at(Time when, Callback cb) {
  assert(cb && "scheduling an empty callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{std::max(when, now_), seq, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  pending_seqs_.insert(seq);
  return EventId{seq};
}

bool Engine::cancel(EventId id) {
  if (!id.valid() || pending_seqs_.erase(id.seq) == 0) return false;
  cancelled_.insert(id.seq);
  return true;
}

Engine::Entry Engine::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

bool Engine::step() {
  while (!heap_.empty()) {
    Entry e = pop_top();
    if (cancelled_.erase(e.seq) != 0) continue;  // lazily dropped
    pending_seqs_.erase(e.seq);
    assert(e.when >= now_ && "event queue went backwards");
    now_ = e.when;
    ++processed_;
    e.cb();
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  stopped_ = false;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Engine::run_until(Time deadline) {
  std::size_t n = 0;
  stopped_ = false;
  while (!stopped_) {
    // Peek the next live event without executing it.
    while (!heap_.empty() && cancelled_.count(heap_.front().seq) != 0) {
      Entry dead = pop_top();
      cancelled_.erase(dead.seq);
    }
    if (heap_.empty() || heap_.front().when > deadline) break;
    step();
    ++n;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

void Engine::rethrow_task_failures() const {
  if (!failures_.empty()) std::rethrow_exception(failures_.front());
}

}  // namespace pinsim::sim
