#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace pinsim::sim {

namespace {

/// Wheel level for an event at `when` filed relative to base time `base`.
/// Levels index successive 6-bit fields of the absolute timestamp, so the
/// level is determined by the highest bit in which `when` and `base`
/// differ. Requires `when > base`.
inline int level_for(Time when, Time base) noexcept {
  const std::uint64_t diff = when ^ base;
  return (63 - std::countl_zero(diff)) / 6;
}

}  // namespace

std::uint32_t Engine::alloc_node() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = slab_[idx].next;
    --free_count_;
    return idx;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Engine::free_node(std::uint32_t idx) {
  Node& n = slab_[idx];
  n.seq = 0;  // invalidate outstanding EventIds / due entries for this slot
  n.where = Where::kFree;
  n.prev = kNil;
  n.next = free_head_;
  free_head_ = idx;
  ++free_count_;
}

void Engine::file_node(std::uint32_t idx) {
  Node& n = slab_[idx];
  assert(n.when >= now_ && "filing an event into the past");
  if (n.when == now_) {
    n.where = Where::kDue;
    due_.emplace_back(idx, n.seq);
    return;
  }
  const int lvl = level_for(n.when, now_);
  const int b =
      static_cast<int>((n.when >> (kLevelBits * lvl)) & (kBucketsPerLevel - 1));
  n.level = static_cast<std::uint16_t>(lvl);
  n.bucket = static_cast<std::uint16_t>(b);
  n.where = Where::kWheel;
  Bucket& bk = wheel_[lvl][b];
  n.prev = bk.tail;
  n.next = kNil;
  if (bk.tail != kNil) {
    slab_[bk.tail].next = idx;
  } else {
    bk.head = idx;
  }
  bk.tail = idx;
  occupied_[lvl] |= std::uint64_t{1} << b;
}

void Engine::bucket_unlink(std::uint32_t idx) {
  Node& n = slab_[idx];
  Bucket& bk = wheel_[n.level][n.bucket];
  if (n.prev != kNil) {
    slab_[n.prev].next = n.next;
  } else {
    bk.head = n.next;
  }
  if (n.next != kNil) {
    slab_[n.next].prev = n.prev;
  } else {
    bk.tail = n.prev;
  }
  if (bk.head == kNil) {
    occupied_[n.level] &= ~(std::uint64_t{1} << n.bucket);
  }
}

Engine::EventId Engine::schedule_at(Time when, Callback cb, TaskTag tag) {
  assert(cb && "scheduling an empty callback");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t idx = alloc_node();
  Node& n = slab_[idx];
  n.when = std::max(when, now_);
  n.seq = seq;
  n.cb = std::move(cb);
  n.created = now_;
  n.tag = tag;
  file_node(idx);
  ++live_;
  return EventId{seq, idx + 1};
}

bool Engine::cancel(EventId id) {
  if (!id.valid() || id.slot == 0 || id.slot > slab_.size()) return false;
  const std::uint32_t idx = id.slot - 1;
  Node& n = slab_[idx];
  if (n.seq != id.seq || n.where == Where::kFree) return false;
  if (n.where == Where::kWheel) bucket_unlink(idx);
  // A node in the due batch is freed in place; its (idx, seq) entry fails
  // the generation check at dispatch and is skipped.
  n.cb = Callback{};
  free_node(idx);
  --live_;
  return true;
}

bool Engine::fire_one() {
  while (due_cursor_ < due_.size()) {
    const auto [idx, seq] = due_[due_cursor_++];
    Node& n = slab_[idx];
    if (n.where != Where::kDue || n.seq != seq) continue;  // cancelled
    assert(n.when == now_ && "due batch out of sync with the clock");
    Callback cb = std::move(n.cb);
    const TaskTag tag = n.tag;
    const Time created = n.created;
    free_node(idx);
    --live_;
    ++processed_;
    // Compact the batch before dispatch when this entry exhausted it, so
    // same-time events scheduled by `cb` itself start a fresh batch instead
    // of growing an already-consumed vector forever.
    if (due_cursor_ == due_.size()) {
      due_.clear();
      due_cursor_ = 0;
    }
    if (observer_ != nullptr) {
      observer_->on_dispatch_begin(tag, created, now_);
      cb();
      observer_->on_dispatch_end(tag);
    } else {
      cb();
    }
    return true;
  }
  due_.clear();
  due_cursor_ = 0;
  return false;
}

bool Engine::extract_next(Time limit) {
  assert(due_cursor_ == due_.size() && "extracting with a live due batch");
  for (;;) {
    // Find the occupied bucket with the earliest possible event: per level,
    // the lowest occupied bucket at or after now_'s own bucket (the filing
    // invariant guarantees nothing sits behind it). Its window start is a
    // lower bound on the timestamps it holds — exact at level 0.
    int best_level = -1;
    int best_bucket = 0;
    Time best_time = 0;
    for (int lvl = 0; lvl < kLevels; ++lvl) {
      if (occupied_[lvl] == 0) continue;
      const int shift = kLevelBits * lvl;
      const int cur = static_cast<int>((now_ >> shift) & (kBucketsPerLevel - 1));
      const std::uint64_t ahead =
          occupied_[lvl] & ~((std::uint64_t{1} << cur) - 1);
      assert(ahead == occupied_[lvl] && "wheel bucket behind the clock");
      if (ahead == 0) continue;
      const int b = std::countr_zero(ahead);
      // Window start: now_'s bits above this level's field, the candidate
      // bucket in the field, zeros below — clamped to now_ for the bucket
      // now_ itself is in (its events differ only in lower bits).
      Time wstart;
      if (lvl >= kLevels - 1) {
        wstart = static_cast<Time>(b) << shift;
      } else {
        const Time field_end_mask =
            (Time{1} << (shift + kLevelBits)) - 1;  // bits below next level
        wstart = (now_ & ~field_end_mask) | (static_cast<Time>(b) << shift);
      }
      if (wstart < now_) wstart = now_;
      // Strict-or-equal replacement: on a window-start tie prefer the
      // higher level, which may hold an equal-timestamp event with a lower
      // seq that must cascade down before the batch is extracted.
      if (best_level < 0 || wstart <= best_time) {
        best_level = lvl;
        best_bucket = b;
        best_time = wstart;
      }
    }
    if (best_level < 0) return false;     // wheel empty
    if (best_time > limit) return false;  // nothing due at or before limit

    // Advancing to the window start is safe: no event exists before it.
    now_ = best_time;
    Bucket& bk = wheel_[best_level][best_bucket];
    std::uint32_t idx = bk.head;
    bk.head = bk.tail = kNil;
    occupied_[best_level] &= ~(std::uint64_t{1} << best_bucket);
    if (best_level == 0) {
      // Level-0 buckets hold exactly one timestamp: this is the batch.
      // Cascades may have interleaved arrival order, so sort by seq to keep
      // the (time, seq) dispatch order bit-exact.
      const std::size_t start = due_.size();
      while (idx != kNil) {
        Node& n = slab_[idx];
        assert(n.when == now_);
        const std::uint32_t next = n.next;
        n.where = Where::kDue;
        n.prev = n.next = kNil;
        due_.emplace_back(idx, n.seq);
        idx = next;
      }
      std::sort(due_.begin() + static_cast<std::ptrdiff_t>(start), due_.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      return true;
    }
    // Higher level: cascade the bucket's nodes down (each re-files at a
    // strictly lower level, or into the due batch when when == now_).
    while (idx != kNil) {
      const std::uint32_t next = slab_[idx].next;
      file_node(idx);
      idx = next;
    }
    if (due_cursor_ < due_.size()) {
      // Cascade dropped equal-timestamp events straight into the batch.
      std::sort(due_.begin() + static_cast<std::ptrdiff_t>(due_cursor_),
                due_.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      return true;
    }
  }
}

bool Engine::step() {
  if (fire_one()) return true;
  if (!extract_next(std::numeric_limits<Time>::max())) return false;
  const bool fired = fire_one();
  assert(fired && "extract_next produced an empty batch");
  return fired;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  stopped_ = false;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Engine::run_until(Time deadline) {
  std::size_t n = 0;
  stopped_ = false;
  while (!stopped_) {
    if (now_ <= deadline && fire_one()) {
      ++n;
      continue;
    }
    if (now_ > deadline || !extract_next(deadline)) break;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

bool Engine::self_check(std::string* why) const {
  const auto fail = [why](const char* what) {
    if (why != nullptr) *why = what;
    return false;
  };
  std::size_t wheel_nodes = 0;
  for (int lvl = 0; lvl < kLevels; ++lvl) {
    for (int b = 0; b < kBucketsPerLevel; ++b) {
      const Bucket& bk = wheel_[lvl][b];
      const bool marked = (occupied_[lvl] >> b) & 1;
      if (marked != (bk.head != kNil)) {
        return fail("occupancy bitmap disagrees with bucket list");
      }
      std::uint32_t prev = kNil;
      for (std::uint32_t idx = bk.head; idx != kNil; idx = slab_[idx].next) {
        const Node& node = slab_[idx];
        if (node.where != Where::kWheel) return fail("wheel node not kWheel");
        if (node.level != lvl || node.bucket != b) {
          return fail("node filed in the wrong bucket");
        }
        if (node.prev != prev) return fail("bucket links corrupt");
        if (node.seq == 0 || !node.cb) return fail("dead node in a bucket");
        if (node.when <= now_) return fail("wheel node at or behind now()");
        prev = idx;
        ++wheel_nodes;
      }
      if (bk.tail != prev) return fail("bucket tail stale");
    }
  }
  std::size_t due_nodes = 0;
  for (std::size_t i = due_cursor_; i < due_.size(); ++i) {
    const auto [idx, seq] = due_[i];
    if (idx >= slab_.size()) return fail("due entry out of slab range");
    const Node& node = slab_[idx];
    if (node.where == Where::kDue && node.seq == seq) ++due_nodes;
  }
  std::size_t due_total = 0;
  std::size_t free_listed = 0;
  for (std::size_t i = 0; i < slab_.size(); ++i) {
    if (slab_[i].where == Where::kDue) ++due_total;
    if (slab_[i].where == Where::kFree) ++free_listed;
  }
  if (due_total != due_nodes) return fail("due node without a batch entry");
  std::size_t free_walk = 0;
  for (std::uint32_t idx = free_head_; idx != kNil; idx = slab_[idx].next) {
    if (slab_[idx].where != Where::kFree) return fail("live node on free list");
    ++free_walk;
    if (free_walk > slab_.size()) return fail("free list cycle");
  }
  if (free_walk != free_count_ || free_listed != free_count_) {
    return fail("free-list accounting drifted");
  }
  if (wheel_nodes + due_nodes != live_) {
    return fail("pending() disagrees with live queue occupancy");
  }
  if (wheel_nodes + due_nodes + free_count_ != slab_.size()) {
    return fail("slab nodes leaked");
  }
  return true;
}

void Engine::rethrow_task_failures() const {
  if (!failures_.empty()) std::rethrow_exception(failures_.front());
}

}  // namespace pinsim::sim
