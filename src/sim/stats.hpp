#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

/// Small statistics helpers shared by benchmarks and tests.
namespace pinsim::sim {

/// Streaming mean/variance/min/max (Welford's algorithm); O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample collector with percentile queries (keeps all samples).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }

  [[nodiscard]] double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  /// q in [0,1]; nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double q) const {
    if (xs_.empty()) return 0.0;
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto idx = static_cast<std::size_t>(pos + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  [[nodiscard]] double min() const {
    return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
  }
  [[nodiscard]] double max() const {
    return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return xs_;
  }

 private:
  std::vector<double> xs_;
};

/// Log-bucketed histogram with percentile queries; O(buckets) memory no
/// matter how many samples stream in, so soaks and the obs latency sinks can
/// run it over millions of events. Bucket i (i >= 1) covers
/// [min_value * growth^(i-1), min_value * growth^i); bucket 0 catches
/// everything below min_value. Percentiles interpolate linearly inside the
/// bucket and clamp to the exact observed min/max, so p100 == max() always.
class LogHistogram {
 public:
  struct Bucket {
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
  };

  explicit LogHistogram(double min_value = 1.0, double growth = 2.0,
                        std::size_t max_buckets = 64)
      : min_value_(min_value > 0.0 ? min_value : 1.0),
        growth_(growth > 1.0 ? growth : 2.0),
        counts_(max_buckets < 2 ? 2 : max_buckets, 0) {}

  void add(double x) {
    ++count_;
    sum_ += x;
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    ++counts_[bucket_index(x)];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// q in [0,1]. Walks the cumulative counts and interpolates within the
  /// landing bucket; exact at the extremes.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p95() const { return percentile(0.95); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

  /// Occupied buckets, in value order (for exporters and plotting).
  [[nodiscard]] std::vector<Bucket> nonempty_buckets() const;

 private:
  [[nodiscard]] std::size_t bucket_index(double x) const noexcept {
    if (x < min_value_) return 0;
    const auto i = static_cast<std::size_t>(
        std::log(x / min_value_) / std::log(growth_)) + 1;
    return std::min(i, counts_.size() - 1);
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept {
    return i == 0 ? 0.0 : min_value_ * std::pow(growth_, static_cast<double>(i - 1));
  }
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept {
    return min_value_ * std::pow(growth_, static_cast<double>(i));
  }

  double min_value_;
  double growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Converts (bytes, duration) into the MiB/s figures the paper plots.
[[nodiscard]] inline double mib_per_sec(std::uint64_t bytes, Time elapsed) {
  if (elapsed == 0) return 0.0;
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) /
         to_seconds(elapsed);
}

[[nodiscard]] inline double gb_per_sec(std::uint64_t bytes, Time elapsed) {
  if (elapsed == 0) return 0.0;
  return (static_cast<double>(bytes) / 1e9) / to_seconds(elapsed);
}

/// Least-squares fit y = a + b*x; used to recover base/per-page pin costs the
/// way the paper's Table 1 reports them.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};

[[nodiscard]] LinearFit fit_line(const std::vector<double>& x,
                                 const std::vector<double>& y);

}  // namespace pinsim::sim
