#include "sim/log.hpp"

#include <cstdio>

namespace pinsim::sim {

namespace {
LogLevel g_level = LogLevel::kOff;

constexpr const char* level_tag(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::kError:
      return "ERR ";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kTrace:
      return "TRC ";
    default:
      return "????";
  }
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel lvl) noexcept { g_level = lvl; }

namespace detail {
void log_line(LogLevel lvl, Time now, std::string_view component,
              std::string_view text) {
  std::fprintf(stderr, "[%12.3f us] %s %-12.*s %.*s\n", to_usec(now),
               level_tag(lvl), static_cast<int>(component.size()),
               component.data(), static_cast<int>(text.size()), text.data());
}
}  // namespace detail

}  // namespace pinsim::sim
