#pragma once

#include <cstddef>
#include <cstdio>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pinsim::sim {

/// One traced event: what happened, when, and where.
struct TraceRecord {
  Time time = 0;
  std::string category;  // dotted, e.g. "pkt.rx", "pin.commit"
  std::string detail;
};

/// Bounded structured trace of simulation events.
///
/// Debugging a pinning/protocol interleaving from printf output is
/// miserable; attach a Tracer to a Driver (see Driver::set_tracer) and the
/// stack records packet arrivals/departures, pin progress, invalidations
/// and overlap misses with simulated timestamps. The buffer is a ring: old
/// records fall off, `dropped()` says how many.
class Tracer {
 public:
  explicit Tracer(Engine& eng, std::size_t capacity = 65536)
      : eng_(eng), capacity_(capacity == 0 ? 1 : capacity) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record(std::string category, std::string detail) {
    if (records_.size() == capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(
        TraceRecord{eng_.now(), std::move(category), std::move(detail)});
  }

  [[nodiscard]] const std::deque<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool warned_dropped() const noexcept { return warned_dropped_; }

  /// Resize the ring (see core::TraceConfig). Shrinking trims the oldest
  /// records, which counts them as dropped like any other ring overflow.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    while (records_.size() > capacity_) {
      records_.pop_front();
      ++dropped_;
    }
  }

  /// Records whose category starts with `prefix`, in time order.
  [[nodiscard]] std::vector<const TraceRecord*> filter(
      std::string_view prefix) const {
    warn_if_dropped("filter");
    std::vector<const TraceRecord*> out;
    for (const auto& r : records_) {
      if (r.category.size() >= prefix.size() &&
          std::string_view(r.category).substr(0, prefix.size()) == prefix) {
        out.push_back(&r);
      }
    }
    return out;
  }

  /// Index of the first record matching (category prefix, detail substring),
  /// or npos. Lets tests assert event ordering.
  [[nodiscard]] std::size_t find_first(std::string_view category_prefix,
                                       std::string_view detail_part = "") const {
    warn_if_dropped("find_first");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const auto& r = records_[i];
      if (r.category.size() >= category_prefix.size() &&
          std::string_view(r.category).substr(0, category_prefix.size()) ==
              category_prefix &&
          r.detail.find(detail_part) != std::string::npos) {
        return i;
      }
    }
    return static_cast<std::size_t>(-1);
  }

  void dump(std::ostream& os) const {
    for (const auto& r : records_) {
      os << '[' << to_usec(r.time) << "us] " << r.category << ' ' << r.detail
         << '\n';
    }
  }

  void clear() {
    records_.clear();
    dropped_ = 0;
    warned_dropped_ = false;
  }

 private:
  // Queries on a ring that has wrapped can silently miss the events a test
  // is looking for; surface that once per overflow instead of returning a
  // quietly incomplete answer.
  void warn_if_dropped(const char* what) const {
    if (dropped_ == 0 || warned_dropped_) return;
    warned_dropped_ = true;
    std::fprintf(stderr,
                 "sim::Tracer::%s: ring overflowed, %zu oldest records "
                 "dropped; results may be incomplete (capacity %zu)\n",
                 what, dropped_, capacity_);
  }

  Engine& eng_;
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  std::size_t dropped_ = 0;
  mutable bool warned_dropped_ = false;
};

}  // namespace pinsim::sim
