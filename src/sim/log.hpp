#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

#include "sim/time.hpp"

/// Minimal leveled logger. Off by default so benchmark output stays clean;
/// tests and examples flip the level when tracing protocol behaviour.
namespace pinsim::sim {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kTrace = 3 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

namespace detail {
void log_line(LogLevel lvl, Time now, std::string_view component,
              std::string_view text);

template <typename... Args>
void log(LogLevel lvl, Time now, std::string_view component, Args&&... args) {
  if (static_cast<int>(lvl) > static_cast<int>(log_level())) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(lvl, now, component, os.str());
}
}  // namespace detail

template <typename... Args>
void log_error(Time now, std::string_view component, Args&&... args) {
  detail::log(LogLevel::kError, now, component, std::forward<Args>(args)...);
}

template <typename... Args>
void log_info(Time now, std::string_view component, Args&&... args) {
  detail::log(LogLevel::kInfo, now, component, std::forward<Args>(args)...);
}

template <typename... Args>
void log_trace(Time now, std::string_view component, Args&&... args) {
  detail::log(LogLevel::kTrace, now, component, std::forward<Args>(args)...);
}

}  // namespace pinsim::sim
