#include "sim/random.hpp"

#include <cmath>

namespace pinsim::sim {

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  // Map (0,1]: avoid log(0) by flipping the half-open interval.
  const double u = 1.0 - next_double();
  return -mean * std::log(u);
}

}  // namespace pinsim::sim
