#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace pinsim::sim {

/// Schedule-site identity stamped on a scheduled closure: which component
/// filed it ("net", "pin", "cpu", ...) and what the handler does
/// ("nic_tx", "send_rto", ...) — the EventKind-style taxonomy for engine
/// callbacks. Both strings must have static storage duration (string
/// literals); the engine and any dispatch observer keep only the pointers.
/// A default-constructed tag means "untagged" and is always legal.
struct TaskTag {
  const char* component = nullptr;
  const char* label = nullptr;
  [[nodiscard]] constexpr bool empty() const noexcept {
    return component == nullptr && label == nullptr;
  }
};

/// Hook around every engine dispatch. At most one observer is attached at a
/// time (obs::Profiler in practice); with none attached the hot path pays a
/// single pointer compare. Observers must not destroy the engine or mutate
/// the queue from inside the hooks; scheduling from the observed callback
/// itself is of course fine.
class DispatchObserver {
 public:
  virtual ~DispatchObserver() = default;
  /// Runs immediately before a callback fires. `tag` is the schedule-site
  /// tag (empty for untagged sites), `scheduled_at` the simulated time the
  /// closure was filed, `now` the dispatch time — their difference is the
  /// schedule->dispatch sim-time lag.
  virtual void on_dispatch_begin(const TaskTag& tag, Time scheduled_at,
                                 Time now) = 0;
  /// Runs after the callback returns (skipped if the callback throws; the
  /// exception propagates out of the engine either way).
  virtual void on_dispatch_end(const TaskTag& tag) = 0;
};

/// Discrete-event simulation engine.
///
/// Events are (time, sequence)-ordered: two events scheduled for the same
/// instant fire in scheduling order, which makes every run bit-reproducible.
/// The engine is strictly single-threaded; everything above it (memory, NIC
/// interrupts, the Open-MX driver, MPI ranks) is a state machine or coroutine
/// driven by these callbacks.
///
/// Internally the queue is a hierarchical timing wheel (calendar queue):
/// 11 levels of 64 buckets index successive 6-bit fields of the absolute
/// timestamp, so schedule and cancel are O(1) and dispatch is amortized O(1)
/// with occasional bucket cascades — no per-event heap churn and no hash-set
/// membership tracking on the hot path. Events live in a slab of pooled
/// nodes; an EventId carries the node's slot plus its generation-unique
/// sequence number, so cancellation is one bounds check and one compare
/// instead of a hash lookup. The (time, seq) total order of the former
/// binary-heap scheduler is preserved bit-exactly: same-time events are
/// dispatched in ascending sequence order regardless of which buckets they
/// travelled through.
class Engine {
 public:
  using Callback = UniqueFunction;

  /// Opaque handle for cancelling a scheduled event. `seq` is the globally
  /// unique scheduling sequence number; `slot` locates the slab node so
  /// cancellation needs no lookup structure (the node's own `seq` acts as a
  /// generation tag against slot reuse).
  struct EventId {
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    [[nodiscard]] constexpr bool valid() const noexcept { return seq != 0; }
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `when`. Scheduling in the past fires at
  /// `now()` (the event still runs after the current callback returns).
  /// `tag` names the schedule site for dispatch observers (profilers); it
  /// costs two pointer copies and is invisible to untagged callers.
  EventId schedule_at(Time when, Callback cb, TaskTag tag = {});

  /// Schedules `cb` `delay` nanoseconds from `now()`.
  EventId schedule_after(Time delay, Callback cb, TaskTag tag = {}) {
    return schedule_at(now_ + delay, std::move(cb), tag);
  }

  /// Attaches (or, with nullptr, detaches) the dispatch observer. The
  /// observer must outlive its attachment — detach before destroying it.
  void set_dispatch_observer(DispatchObserver* o) noexcept { observer_ = o; }
  [[nodiscard]] DispatchObserver* dispatch_observer() const noexcept {
    return observer_;
  }

  /// Cancels a pending event. Returns false if it already fired, was already
  /// cancelled, or `id` is invalid. Cancellation is O(1) and eager: the node
  /// is unlinked and recycled immediately, so `pending()` always equals live
  /// queue occupancy (no lazily-dead entries linger).
  bool cancel(EventId id);

  /// Runs the single next event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `stop()` is called. Returns the number of
  /// events processed by this call.
  std::size_t run();

  /// Runs every event with timestamp <= `deadline`, then advances `now()` to
  /// `deadline` (even if idle) — unless `stop()` interrupted the run. A
  /// stopped run returns with `now()` parked at the interrupting event's
  /// timestamp and the remaining due events still queued, so a subsequent
  /// `run_until(deadline)` resumes the unfinished window instead of skipping
  /// it; check `stop_requested()` to distinguish the two outcomes. Returns
  /// events processed.
  std::size_t run_until(Time deadline);

  /// Makes `run()`/`run_until()` return after the current event completes.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stop_requested() const noexcept { return stopped_; }
  void clear_stop() noexcept { stopped_ = false; }

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Exhaustive accounting audit for tests: walks the wheel, the due batch
  /// and the slab free list and cross-checks them against `pending()` and
  /// the occupancy bitmaps. Returns true when consistent; otherwise fills
  /// `why` (if non-null) with the first discrepancy. O(slab size) — not for
  /// hot paths.
  [[nodiscard]] bool self_check(std::string* why = nullptr) const;

  /// Detached coroutines report uncaught exceptions here (see task.hpp)
  /// instead of terminating, so tests can assert on failure paths.
  void report_task_failure(std::exception_ptr e) { failures_.push_back(e); }
  [[nodiscard]] const std::vector<std::exception_ptr>& task_failures()
      const noexcept {
    return failures_;
  }

  /// Rethrows the first recorded detached-task failure, if any. Harnesses call
  /// this after run() so coroutine bugs surface as test failures.
  void rethrow_task_failures() const;

 private:
  static constexpr int kLevelBits = 6;
  static constexpr int kBucketsPerLevel = 1 << kLevelBits;  // 64
  /// 11 levels x 6 bits = 66 bits: every representable timestamp delta maps
  /// to some level, so there is no separate overflow list.
  static constexpr int kLevels = 11;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Where a slab node currently lives.
  enum class Where : std::uint8_t {
    kFree = 0,   // on the free list
    kWheel = 1,  // linked into a wheel bucket
    kDue = 2,    // extracted into the due batch, awaiting dispatch
  };

  struct Node {
    Time when = 0;
    std::uint64_t seq = 0;  // generation tag; 0 = never scheduled/freed
    Callback cb;
    Time created = 0;  // now() at the schedule call (observer lag metric)
    TaskTag tag;       // schedule-site identity for dispatch observers
    std::uint32_t prev = kNil;  // intrusive list links within a bucket
    std::uint32_t next = kNil;  // (free-list chaining reuses `next`)
    std::uint16_t level = 0;
    std::uint16_t bucket = 0;
    Where where = Where::kFree;
  };

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);
  /// Files node `idx` by `when` relative to `now_`: a wheel bucket, or the
  /// due batch when `when == now_`.
  void file_node(std::uint32_t idx);
  void bucket_unlink(std::uint32_t idx);
  /// Advances `now_` to the next event time if it is <= `limit` and moves
  /// that event's whole same-time batch into `due_` (sorted by seq).
  /// Returns false — without firing or overshooting `limit` — otherwise.
  bool extract_next(Time limit);
  /// Dispatches the next live entry of the due batch; false if none.
  bool fire_one();

  std::vector<Node> slab_;
  std::uint32_t free_head_ = kNil;
  std::size_t free_count_ = 0;
  Bucket wheel_[kLevels][kBucketsPerLevel];
  std::uint64_t occupied_[kLevels] = {};
  /// Same-time dispatch batch: (slab index, seq) pairs in ascending seq
  /// order. Entries whose node was cancelled are skipped on dispatch.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> due_;
  std::size_t due_cursor_ = 0;
  std::size_t live_ = 0;
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  DispatchObserver* observer_ = nullptr;
  bool stopped_ = false;
  std::vector<std::exception_ptr> failures_;
};

}  // namespace pinsim::sim
