#pragma once

#include <cstdint>
#include <exception>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace pinsim::sim {

/// Discrete-event simulation engine.
///
/// Events are (time, sequence)-ordered: two events scheduled for the same
/// instant fire in scheduling order, which makes every run bit-reproducible.
/// The engine is strictly single-threaded; everything above it (memory, NIC
/// interrupts, the Open-MX driver, MPI ranks) is a state machine or coroutine
/// driven by these callbacks.
class Engine {
 public:
  using Callback = UniqueFunction;

  /// Opaque handle for cancelling a scheduled event.
  struct EventId {
    std::uint64_t seq = 0;
    [[nodiscard]] constexpr bool valid() const noexcept { return seq != 0; }
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `when`. Scheduling in the past fires at
  /// `now()` (the event still runs after the current callback returns).
  EventId schedule_at(Time when, Callback cb);

  /// Schedules `cb` `delay` nanoseconds from `now()`.
  EventId schedule_after(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns false if it already fired, was already
  /// cancelled, or `id` is invalid. Cancellation is O(1) (lazy: the slot is
  /// skipped when popped).
  bool cancel(EventId id);

  /// Runs the single next event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `stop()` is called. Returns the number of
  /// events processed by this call.
  std::size_t run();

  /// Runs every event with timestamp <= `deadline`, then advances `now()` to
  /// `deadline` (even if idle). Returns events processed.
  std::size_t run_until(Time deadline);

  /// Makes `run()`/`run_until()` return after the current event completes.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stop_requested() const noexcept { return stopped_; }
  void clear_stop() noexcept { stopped_ = false; }

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_seqs_.size();
  }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Detached coroutines report uncaught exceptions here (see task.hpp)
  /// instead of terminating, so tests can assert on failure paths.
  void report_task_failure(std::exception_ptr e) { failures_.push_back(e); }
  [[nodiscard]] const std::vector<std::exception_ptr>& task_failures()
      const noexcept {
    return failures_;
  }

  /// Rethrows the first recorded detached-task failure, if any. Harnesses call
  /// this after run() so coroutine bugs surface as test failures.
  void rethrow_task_failures() const;

 private:
  struct Entry {
    Time when = 0;
    std::uint64_t seq = 0;
    Callback cb;
  };

  // Min-heap on (when, seq). std::priority_queue cannot move the callback out
  // of top(), so we manage the heap manually over a vector.
  static bool later(const Entry& a, const Entry& b) noexcept {
    return a.when != b.when ? a.when > b.when : a.seq > b.seq;
  }

  Entry pop_top();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_seqs_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
  std::vector<std::exception_ptr> failures_;
};

}  // namespace pinsim::sim
