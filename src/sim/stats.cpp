#include "sim/stats.hpp"

#include <cassert>

namespace pinsim::sim {

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return {y.empty() ? 0.0 : y.front(), 0.0};
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return {sy / n, 0.0};
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  return f;
}

}  // namespace pinsim::sim
