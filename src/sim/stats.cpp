#include "sim/stats.hpp"

#include <cassert>

namespace pinsim::sim {

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t next = cum + counts_[i];
    if (static_cast<double>(next) >= target) {
      const double within =
          counts_[i] == 0
              ? 0.0
              : (target - static_cast<double>(cum)) /
                    static_cast<double>(counts_[i]);
      const double lo = bucket_lo(i);
      const double hi = bucket_hi(i);
      const double v = lo + within * (hi - lo);
      return std::min(max_, std::max(min_, v));
    }
    cum = next;
  }
  return max_;
}

std::vector<LogHistogram::Bucket> LogHistogram::nonempty_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back(Bucket{bucket_lo(i), bucket_hi(i), counts_[i]});
  }
  return out;
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return {y.empty() ? 0.0 : y.front(), 0.0};
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return {sy / n, 0.0};
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  return f;
}

}  // namespace pinsim::sim
