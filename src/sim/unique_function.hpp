#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pinsim::sim {

/// Move-only type-erased callable, `void()` signature.
///
/// The event queue stores continuations that own move-only state (coroutine
/// handles, frame payloads, unique_ptrs), which `std::function` cannot hold
/// because it requires copy-constructibility. `std::move_only_function` is
/// C++23; this is the minimal C++20 equivalent the engine needs.
///
/// Callables up to `kInlineSize` bytes are stored inline (no allocation):
/// the scheduler hot path creates and destroys one callback per event, and
/// a per-event heap round-trip dominated its cost before the small-buffer
/// optimization. Larger or potentially-throwing-on-move callables fall back
/// to the heap.
class UniqueFunction {
  /// Sized to fit the simulator's fattest hot-path closures (a pull-reply
  /// copy continuation carrying a DataChunk plus bookkeeping ids).
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = 16;

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      // pinlint: allow(D3: placement new into the inline small-buffer slot)
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      // pinlint: allow(D3: heap fallback for oversized callables)
      storage_.ptr = new D(std::forward<F>(f));
      ops_ = &heap_ops<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() { ops_->invoke(&storage_); }

 private:
  union Storage {
    alignas(kInlineAlign) std::byte buf[kInlineSize];
    void* ptr;
  };

  struct Ops {
    void (*invoke)(Storage*);
    /// Move-construct `dst` from `src` and destroy `src`'s payload.
    void (*relocate)(Storage* dst, Storage* src) noexcept;
    void (*destroy)(Storage*) noexcept;
  };

  template <typename F>
  static constexpr Ops inline_ops = {
      [](Storage* s) { (*std::launder(reinterpret_cast<F*>(s->buf)))(); },
      [](Storage* dst, Storage* src) noexcept {
        F* from = std::launder(reinterpret_cast<F*>(src->buf));
        // pinlint: allow(D3: placement new relocating the inline slot)
        ::new (static_cast<void*>(dst->buf)) F(std::move(*from));
        from->~F();
      },
      [](Storage* s) noexcept {
        std::launder(reinterpret_cast<F*>(s->buf))->~F();
      },
  };

  template <typename F>
  static constexpr Ops heap_ops = {
      [](Storage* s) { (*static_cast<F*>(s->ptr))(); },
      [](Storage* dst, Storage* src) noexcept { dst->ptr = src->ptr; },
      [](Storage* s) noexcept {
        // pinlint: allow(D3: matching delete for the heap fallback)
        delete static_cast<F*>(s->ptr);
      },
  };

  void move_from(UniqueFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  Storage storage_;
  const Ops* ops_ = nullptr;
};

}  // namespace pinsim::sim
