#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace pinsim::sim {

/// Move-only type-erased callable, `void()` signature.
///
/// The event queue stores continuations that own move-only state (coroutine
/// handles, frame payloads, unique_ptrs), which `std::function` cannot hold
/// because it requires copy-constructibility. `std::move_only_function` is
/// C++23; this is the minimal C++20 equivalent the engine needs.
class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  [[nodiscard]] explicit operator bool() const noexcept {
    return impl_ != nullptr;
  }

  void operator()() { impl_->invoke(); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void invoke() = 0;
  };

  template <typename F>
  struct Model final : Concept {
    explicit Model(F&& f) : fn(std::move(f)) {}
    explicit Model(const F& f) : fn(f) {}
    void invoke() override { fn(); }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace pinsim::sim
