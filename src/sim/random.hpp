#pragma once

#include <cassert>
#include <cstdint>
#include <limits>

/// Deterministic PRNG for the simulator (xoshiro256**, SplitMix64-seeded).
/// We avoid <random> engines because their distributions are not guaranteed
/// to produce identical streams across standard libraries, and reproducible
/// experiment output matters more here than statistical sophistication.
namespace pinsim::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero. Uses rejection sampling to
  /// stay unbiased.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound != 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    return span == 0 ? next_u64() : lo + next_below(span);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Exponential variate with the given mean (rate = 1/mean).
  double exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace pinsim::sim
