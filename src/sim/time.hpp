#pragma once

#include <cstdint>

/// Simulated time. The whole simulator counts in integer nanoseconds from the
/// start of the run; 64 bits give ~584 years of simulated time, far beyond any
/// experiment here.
namespace pinsim::sim {

using Time = std::uint64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Converts a floating-point duration to integer nanoseconds (round to
/// nearest). Negative inputs clamp to zero: the engine never travels back in
/// time.
[[nodiscard]] constexpr Time from_seconds(double s) noexcept {
  if (s <= 0.0) return 0;
  return static_cast<Time>(s * static_cast<double>(kSecond) + 0.5);
}

[[nodiscard]] constexpr Time from_usec(double us) noexcept {
  if (us <= 0.0) return 0;
  return static_cast<Time>(us * static_cast<double>(kMicrosecond) + 0.5);
}

[[nodiscard]] constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr double to_usec(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

}  // namespace pinsim::sim
