#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pinsim::sim {

/// Seeded component-level fault injector: kills and restarts processes,
/// flaps links and resets NICs on engine timers.
///
/// The sim layer cannot know what a "process" or "NIC" is, so every action
/// is a caller-supplied hook keyed by a small index (the bench maps victim
/// indices to process slots and port indices to fabric ports). All timing
/// comes from one xoshiro stream seeded at construction and all actions fire
/// from engine timers, so a given (seed, plan) pair produces the same crash
/// schedule on every run — the property the byte-identical-report acceptance
/// test leans on.
///
/// Each victim runs an independent up/down cycle: up for uniform
/// [uptime_min, uptime_max], then `crash`, then down for uniform
/// [downtime_min, downtime_max], then `restart`, repeat until `max_crashes`
/// cycles have started (0 = run until stop()). A crash may additionally flap
/// a random link (probability `flap_prob`, duration uniform in
/// [flap_min, flap_max]) and reset a random NIC (probability
/// `nic_reset_prob`) — the compositions that exercise fencing and watchdog
/// timeouts at the nastiest moment, mid-recovery.
class LifecycleInjector {
 public:
  struct Hooks {
    std::function<void(std::size_t)> crash;        // kill victim slot i
    std::function<void(std::size_t)> restart;      // revive victim slot i
    std::function<void(std::size_t, bool)> link;   // port i up(true)/down
    std::function<void(std::size_t)> nic_reset;    // reset the NIC on port i
  };

  struct Plan {
    std::uint64_t seed = 1;
    std::size_t victims = 1;  // victim slots [0, victims) cycle independently
    Time uptime_min = 200'000;     // ns alive before a crash
    Time uptime_max = 2'000'000;
    Time downtime_min = 50'000;    // ns dead before the restart
    Time downtime_max = 500'000;
    std::size_t ports = 0;         // ports eligible for flaps / NIC resets
    double flap_prob = 0.0;        // per-crash chance to also flap a link
    Time flap_min = 20'000;
    Time flap_max = 200'000;
    double nic_reset_prob = 0.0;   // per-crash chance to also reset a NIC
    std::size_t max_crashes = 0;   // total crash budget; 0 = unbounded
  };

  struct Stats {
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t flaps = 0;       // down/up pairs initiated
    std::uint64_t nic_resets = 0;
  };

  LifecycleInjector(Engine& eng, Plan plan);
  ~LifecycleInjector() { stop(); }

  LifecycleInjector(const LifecycleInjector&) = delete;
  LifecycleInjector& operator=(const LifecycleInjector&) = delete;

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Arms every victim's first crash timer. Idempotent while running.
  void start();

  /// Cancels all pending timers. Victims currently down stay down (the
  /// caller decides whether to restart them); link state is not touched.
  void stop();

  /// True when every victim is up and no link is mid-flap — the safe moment
  /// to take a final report (crashes == restarts, no half-open state).
  [[nodiscard]] bool quiescent() const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }

 private:
  struct VictimState {
    bool down = false;
    Engine::EventId timer{};
  };
  struct PortState {
    bool flapping = false;
    Engine::EventId timer{};
  };

  void arm_crash(std::size_t v);
  void on_crash(std::size_t v);
  void on_restart(std::size_t v);
  void maybe_collateral();
  void flap_link(std::size_t port);

  Engine& eng_;
  Plan plan_;
  Hooks hooks_;
  Rng rng_;
  Stats stats_;
  std::vector<VictimState> victims_;
  std::vector<PortState> ports_;
  std::size_t crashes_started_ = 0;
  bool running_ = false;
};

}  // namespace pinsim::sim
