#include "sim/lifecycle.hpp"

#include <cassert>

namespace pinsim::sim {

LifecycleInjector::LifecycleInjector(Engine& eng, Plan plan)
    : eng_(eng), plan_(plan), rng_(plan.seed ^ 0x11fec7c1eULL) {
  assert(plan_.uptime_min <= plan_.uptime_max);
  assert(plan_.downtime_min <= plan_.downtime_max);
  assert(plan_.flap_min <= plan_.flap_max);
  victims_.resize(plan_.victims);
  ports_.resize(plan_.ports);
}

void LifecycleInjector::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t v = 0; v < victims_.size(); ++v) {
    if (!victims_[v].down) arm_crash(v);
  }
}

void LifecycleInjector::stop() {
  running_ = false;
  for (auto& vs : victims_) {
    if (vs.timer.valid()) eng_.cancel(vs.timer);
    vs.timer = {};
  }
  for (auto& ps : ports_) {
    if (ps.timer.valid()) eng_.cancel(ps.timer);
    ps.timer = {};
    ps.flapping = false;
  }
}

bool LifecycleInjector::quiescent() const {
  for (const auto& vs : victims_) {
    if (vs.down) return false;
  }
  for (const auto& ps : ports_) {
    if (ps.flapping) return false;
  }
  return true;
}

void LifecycleInjector::arm_crash(std::size_t v) {
  if (plan_.max_crashes != 0 && crashes_started_ >= plan_.max_crashes) return;
  ++crashes_started_;
  const Time up = static_cast<Time>(
      rng_.uniform(static_cast<std::uint64_t>(plan_.uptime_min),
                   static_cast<std::uint64_t>(plan_.uptime_max)));
  victims_[v].timer = eng_.schedule_after(
      up,
      // pinlint: allow(D7: ~LifecycleInjector calls stop(), which cancels
      // every victim timer before `this` can dangle)
      [this, v] { on_crash(v); }, {"life", "crash"});
}

void LifecycleInjector::on_crash(std::size_t v) {
  victims_[v].timer = {};
  victims_[v].down = true;
  ++stats_.crashes;
  if (hooks_.crash) hooks_.crash(v);
  maybe_collateral();
  const Time down = static_cast<Time>(
      rng_.uniform(static_cast<std::uint64_t>(plan_.downtime_min),
                   static_cast<std::uint64_t>(plan_.downtime_max)));
  victims_[v].timer = eng_.schedule_after(
      down,
      // pinlint: allow(D7: ~LifecycleInjector calls stop(), which cancels
      // every victim timer before `this` can dangle)
      [this, v] { on_restart(v); }, {"life", "restart"});
}

void LifecycleInjector::on_restart(std::size_t v) {
  victims_[v].timer = {};
  victims_[v].down = false;
  ++stats_.restarts;
  if (hooks_.restart) hooks_.restart(v);
  if (running_) arm_crash(v);
}

void LifecycleInjector::maybe_collateral() {
  if (ports_.empty()) return;
  // Draw both decisions unconditionally so the random stream consumed per
  // crash has a fixed shape — adding a NIC reset to a plan then cannot shift
  // the flap schedule of an otherwise identical run.
  const bool flap = rng_.bernoulli(plan_.flap_prob);
  const bool reset = rng_.bernoulli(plan_.nic_reset_prob);
  const std::size_t flap_port =
      static_cast<std::size_t>(rng_.next_below(ports_.size()));
  const std::size_t reset_port =
      static_cast<std::size_t>(rng_.next_below(ports_.size()));
  if (flap && !ports_[flap_port].flapping) flap_link(flap_port);
  if (reset) {
    ++stats_.nic_resets;
    if (hooks_.nic_reset) hooks_.nic_reset(reset_port);
  }
}

void LifecycleInjector::flap_link(std::size_t port) {
  ports_[port].flapping = true;
  ++stats_.flaps;
  if (hooks_.link) hooks_.link(port, false);
  const Time dur = static_cast<Time>(
      rng_.uniform(static_cast<std::uint64_t>(plan_.flap_min),
                   static_cast<std::uint64_t>(plan_.flap_max)));
  ports_[port].timer = eng_.schedule_after(
      dur,
      // pinlint: allow(D7: ~LifecycleInjector calls stop(), which cancels
      // every port timer before `this` can dangle)
      [this, port] {
        ports_[port].timer = {};
        ports_[port].flapping = false;
        if (hooks_.link) hooks_.link(port, true);
      },
      {"life", "link"});
}

}  // namespace pinsim::sim
