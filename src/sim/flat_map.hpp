#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace pinsim::sim {

/// Sorted-vector associative map for the simulator's hot lookup tables
/// (send/pull requests by sequence id, tracked regions by region id, fault
/// plans by link key).
///
/// The simulator's tables are small (tens of live entries), integer-keyed
/// and lookup-dominated, which is the regime where a contiguous sorted
/// vector beats both `std::map` (pointer-chasing, a node allocation per
/// insert) and `std::unordered_map` (hashing, buckets, and an iteration
/// order the determinism contract then has to launder). Iteration is always
/// in ascending key order, so walking a FlatMap is deterministic by
/// construction — no pinlint D2 `unordered-ok` waiver needed.
///
/// Invalidation contract: insert and erase invalidate iterators AND
/// references to mapped values (elements live in one vector). State that
/// must survive reentrant callbacks while the table mutates must be stored
/// indirectly — e.g. `FlatMap<K, ObjectPool<T>::Ptr>` keeps each T at a
/// stable address while the table itself shifts (see mem/pool.hpp).
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return entries_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  [[nodiscard]] iterator lower_bound(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  [[nodiscard]] iterator find(const K& key) {
    auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  [[nodiscard]] const_iterator find(const K& key) const {
    auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != entries_.end();
  }
  [[nodiscard]] std::size_t count(const K& key) const {
    return contains(key) ? 1 : 0;
  }

  [[nodiscard]] V& at(const K& key) { return find(key)->second; }

  /// Inserts a default-constructed value if the key is absent.
  V& operator[](const K& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.emplace(it, key, V{});
    }
    return it->second;
  }

  /// std::map-compatible emplace of a (key, value) pair; no-op on collision.
  std::pair<iterator, bool> emplace(const K& key, V value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return {it, false};
    return {entries_.emplace(it, key, std::move(value)), true};
  }

  std::size_t erase(const K& key) {
    auto it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return entries_.erase(it); }

 private:
  std::vector<value_type> entries_;
};

/// Sorted-vector set companion to FlatMap, for small membership tables
/// (duplicate-suppression keys, pending fast-retry polls).
template <typename K>
class FlatSet {
 public:
  using iterator = typename std::vector<K>::const_iterator;

  [[nodiscard]] iterator begin() const noexcept { return keys_.begin(); }
  [[nodiscard]] iterator end() const noexcept { return keys_.end(); }
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }
  void clear() noexcept { keys_.clear(); }

  [[nodiscard]] bool contains(const K& key) const {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    return it != keys_.end() && *it == key;
  }
  [[nodiscard]] std::size_t count(const K& key) const {
    return contains(key) ? 1 : 0;
  }

  std::pair<iterator, bool> insert(const K& key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return {it, false};
    return {keys_.insert(it, key), true};
  }

  std::size_t erase(const K& key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return 0;
    keys_.erase(it);
    return 1;
  }

 private:
  std::vector<K> keys_;
};

}  // namespace pinsim::sim
