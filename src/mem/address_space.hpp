#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "mem/mmu_notifier.hpp"
#include "mem/physical_memory.hpp"
#include "mem/types.hpp"

namespace pinsim::mem {

class CowSnapshot;

/// A simulated per-process virtual address space: VMAs, a page table with
/// demand faulting, page pinning (the `get_user_pages` analogue the Open-MX
/// driver calls), MMU notifiers, and the VM events that invalidate
/// translations (munmap, swap-out, migration, COW breaks).
///
/// Memory operations are *functionally* exact (real bytes move through real
/// frames) and take zero simulated time; the CPU model charges time for them
/// separately, which keeps the performance model in one place.
class AddressSpace {
 public:
  struct Stats {
    std::uint64_t minor_faults = 0;  // zero-fill on first touch
    std::uint64_t major_faults = 0;  // swap-ins
    std::uint64_t swap_outs = 0;
    std::uint64_t migrations = 0;
    std::uint64_t cow_breaks = 0;
    std::uint64_t notifier_invalidations = 0;  // invalidate_range calls
    std::uint64_t pins = 0;                    // pages pinned (cumulative)
    std::uint64_t unpins = 0;
  };

  explicit AddressSpace(PhysicalMemory& pm,
                        VirtAddr base = VirtAddr{1} << 32,
                        VirtAddr limit = VirtAddr{1} << 44);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // --- VMA management ------------------------------------------------------

  /// Maps `length` bytes (rounded up to pages) at the lowest free address.
  /// First-fit placement means an munmap/mmap pair of the same size returns
  /// the same address — the buffer-reuse pattern the paper's pinning cache
  /// depends on.
  VirtAddr mmap(std::size_t length);

  /// Maps at a caller-chosen page-aligned address. Throws if it overlaps an
  /// existing mapping.
  VirtAddr mmap_fixed(VirtAddr addr, std::size_t length);

  /// Unmaps every page in [addr, addr+length). Fires MMU notifiers before
  /// tearing translations down. Unmapping a hole is a no-op (like Linux).
  void munmap(VirtAddr addr, std::size_t length);

  /// exit()-style teardown of the whole address space: unmaps every VMA in
  /// address order, firing MMU notifiers before each range's translations
  /// go. This is the crash path the decoupled-pinning design must survive —
  /// a dying process never unpins anything itself; the driver's notifiers
  /// reclaim every pinned page and cancel in-flight pin jobs right here.
  /// The space is reusable afterwards (a restart mmaps from scratch).
  void release_all();

  /// True if every byte of [addr, addr+length) is inside a mapping.
  [[nodiscard]] bool is_mapped(VirtAddr addr, std::size_t length) const;

  [[nodiscard]] std::size_t mapped_bytes() const noexcept {
    return mapped_bytes_;
  }

  /// Snapshot of the VMA list as (start, length) pairs, address-ordered.
  [[nodiscard]] std::vector<std::pair<VirtAddr, std::size_t>> vma_list() const;

  /// Addresses of resident pages with no pins (swap-out candidates).
  [[nodiscard]] std::vector<VirtAddr> resident_unpinned_pages() const;

  // --- kernel-style access (faults pages in on demand) ---------------------

  void write(VirtAddr addr, std::span<const std::byte> src);
  void read(VirtAddr addr, std::span<std::byte> dst);
  void fill(VirtAddr addr, std::size_t len, std::byte value);

  /// Faults in [addr, addr+len) for writing (breaks COW) without copying.
  void touch(VirtAddr addr, std::size_t len);

  // --- pinning (get_user_pages analogue) -----------------------------------

  /// Faults in and pins all pages covering [addr, addr+len); returns one
  /// frame per page, in address order. Pins are per-page and counted; each
  /// pin holds a frame reference, so a pinned frame survives munmap (it
  /// becomes orphaned until unpinned). Throws InvalidAddressError if any page
  /// is outside a mapping — the paper's "declaration succeeds, pinning fails
  /// later at communication time" case.
  [[nodiscard]] std::vector<FrameId> pin_range(VirtAddr addr, std::size_t len);

  /// Pins the single page containing `addr`.
  [[nodiscard]] FrameId pin_page(VirtAddr addr);

  /// Releases one pin taken by pin_range/pin_page. `frame` is what the pin
  /// returned; it is still valid even if the page was unmapped or remapped
  /// since (the pin's reference kept it alive).
  void unpin_page(VirtAddr addr, FrameId frame);

  // --- page queries ---------------------------------------------------------

  [[nodiscard]] bool is_present(VirtAddr addr) const;
  [[nodiscard]] bool is_pinned(VirtAddr addr) const;
  [[nodiscard]] FrameId frame_of(VirtAddr addr) const;
  [[nodiscard]] std::size_t resident_pages() const noexcept {
    return pages_.size();
  }

  // --- VM events that invalidate translations ------------------------------

  /// Writes the page to the swap store and frees its frame. Refuses pinned
  /// or non-present pages (returns false), like Linux reclaim skipping
  /// pages with elevated refcounts.
  bool swap_out(VirtAddr page_va);

  /// Swaps out every eligible page in the range; returns pages reclaimed.
  std::size_t swap_out_range(VirtAddr addr, std::size_t len);

  /// Moves the page to a different physical frame (NUMA balancing /
  /// compaction analogue). Refuses pinned pages.
  bool migrate(VirtAddr page_va);

  /// Fork-style snapshot: shares current frames copy-on-write with the
  /// returned snapshot. Pinned pages are copied eagerly (DMA-visible pages
  /// cannot be made read-only under the device). Pages are faulted in first.
  [[nodiscard]] CowSnapshot cow_snapshot(VirtAddr addr, std::size_t len);

  // --- notifiers ------------------------------------------------------------

  void register_notifier(MmuNotifier* n);
  void unregister_notifier(MmuNotifier* n);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] PhysicalMemory& physical() noexcept { return pm_; }

 private:
  friend class CowSnapshot;

  struct PageEntry {
    FrameId frame = kInvalidFrame;
    std::uint32_t pin_count = 0;
    bool cow = false;  // frame shared with at least one snapshot
  };

  struct Vma {
    std::size_t length = 0;
  };

  /// Fires invalidate_range on all notifiers for [start, end).
  void notify_invalidate(VirtAddr start, VirtAddr end);

  /// Returns the entry for the page containing `addr`, faulting it in.
  /// `for_write` breaks COW. Throws InvalidAddressError outside mappings.
  PageEntry& fault_in(VirtAddr addr, bool for_write);

  [[nodiscard]] bool in_vma(VirtAddr addr) const;

  /// Drops the mapping's reference on a page entry and erases it.
  void teardown_page(std::uint64_t pidx);

  void break_cow(std::uint64_t pidx, PageEntry& e);

  PhysicalMemory& pm_;
  VirtAddr base_;
  VirtAddr limit_;
  std::map<VirtAddr, Vma> vmas_;                        // keyed by start
  std::unordered_map<std::uint64_t, PageEntry> pages_;  // keyed by page index
  std::unordered_map<std::uint64_t, std::vector<std::byte>> swap_store_;
  std::vector<MmuNotifier*> notifiers_;
  std::size_t mapped_bytes_ = 0;
  Stats stats_;
};

/// Holds copy-on-write references to the frames a range contained at snapshot
/// time; reading it later sees the old contents even after the process
/// overwrote the range. Models what fork()/KVM shadow tables need from MMU
/// notifiers.
class CowSnapshot {
 public:
  CowSnapshot(CowSnapshot&&) noexcept;
  CowSnapshot& operator=(CowSnapshot&&) noexcept;
  CowSnapshot(const CowSnapshot&) = delete;
  CowSnapshot& operator=(const CowSnapshot&) = delete;
  ~CowSnapshot();

  /// Reads bytes as they were when the snapshot was taken.
  void read(VirtAddr addr, std::span<std::byte> dst) const;

  [[nodiscard]] VirtAddr start() const noexcept { return start_; }
  [[nodiscard]] std::size_t length() const noexcept { return length_; }

 private:
  friend class AddressSpace;
  CowSnapshot(PhysicalMemory& pm, VirtAddr start, std::size_t length);

  PhysicalMemory* pm_;
  VirtAddr start_;
  std::size_t length_;
  // One frame ref per page of the range, in order.
  std::vector<FrameId> frames_;
};

}  // namespace pinsim::mem
