#include "mem/address_space.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "mem/pressure.hpp"

namespace pinsim::mem {

AddressSpace::AddressSpace(PhysicalMemory& pm, VirtAddr base, VirtAddr limit)
    : pm_(pm), base_(page_ceil(base)), limit_(page_floor(limit)) {
  if (base_ >= limit_) throw std::invalid_argument("empty address range");
}

AddressSpace::~AddressSpace() {
  for (MmuNotifier* n : notifiers_) n->release();
  // pinlint: unordered-ok(frame unref is commutative, no emission)
  for (auto& [pidx, entry] : pages_) pm_.unref(entry.frame);
  pages_.clear();
}

// --- VMA management ---------------------------------------------------------

VirtAddr AddressSpace::mmap(std::size_t length) {
  if (length == 0) throw std::invalid_argument("mmap of zero bytes");
  const std::size_t len = static_cast<std::size_t>(page_ceil(length));
  VirtAddr candidate = base_;
  for (const auto& [start, vma] : vmas_) {
    if (candidate + len <= start) break;  // gap fits
    candidate = std::max(candidate, start + vma.length);
  }
  if (candidate + len > limit_) throw OutOfMemoryError{};
  vmas_.emplace(candidate, Vma{len});
  mapped_bytes_ += len;
  return candidate;
}

VirtAddr AddressSpace::mmap_fixed(VirtAddr addr, std::size_t length) {
  if (length == 0) throw std::invalid_argument("mmap of zero bytes");
  if (page_offset(addr) != 0) throw std::invalid_argument("unaligned mmap");
  const std::size_t len = static_cast<std::size_t>(page_ceil(length));
  if (addr < base_ || addr + len > limit_) throw InvalidAddressError(addr);
  // Reject overlap with any existing VMA.
  auto it = vmas_.upper_bound(addr);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > addr) {
      throw std::invalid_argument("mmap_fixed overlaps existing mapping");
    }
  }
  if (it != vmas_.end() && it->first < addr + len) {
    throw std::invalid_argument("mmap_fixed overlaps existing mapping");
  }
  vmas_.emplace(addr, Vma{len});
  mapped_bytes_ += len;
  return addr;
}

void AddressSpace::munmap(VirtAddr addr, std::size_t length) {
  if (length == 0) return;
  const VirtAddr lo = page_floor(addr);
  const VirtAddr hi = page_ceil(addr + length);

  // Collect overlapping VMAs first; splitting mutates the map.
  std::vector<std::pair<VirtAddr, std::size_t>> overlapping;
  auto it = vmas_.upper_bound(lo);
  if (it != vmas_.begin()) --it;
  for (; it != vmas_.end() && it->first < hi; ++it) {
    if (it->first + it->second.length > lo) {
      overlapping.emplace_back(it->first, it->second.length);
    }
  }

  for (auto [start, len] : overlapping) {
    const VirtAddr cut_lo = std::max(start, lo);
    const VirtAddr cut_hi = std::min(start + len, hi);
    vmas_.erase(start);
    if (start < cut_lo) {
      vmas_.emplace(start, Vma{static_cast<std::size_t>(cut_lo - start)});
    }
    if (cut_hi < start + len) {
      vmas_.emplace(cut_hi, Vma{static_cast<std::size_t>(start + len - cut_hi)});
    }
    mapped_bytes_ -= static_cast<std::size_t>(cut_hi - cut_lo);

    // Linux order: notifier fires before the translations are torn down.
    notify_invalidate(cut_lo, cut_hi);
    for (std::uint64_t pidx = page_index(cut_lo); pidx < page_index(cut_hi);
         ++pidx) {
      if (pages_.count(pidx) != 0) teardown_page(pidx);
      swap_store_.erase(pidx);
    }
  }
}

void AddressSpace::release_all() {
  // vma_list() snapshots address-ordered (start, length) pairs, so the
  // notifier sweep order is deterministic and the map can mutate freely.
  for (const auto& [start, len] : vma_list()) munmap(start, len);
}

bool AddressSpace::is_mapped(VirtAddr addr, std::size_t length) const {
  if (length == 0) return true;
  VirtAddr cur = addr;
  const VirtAddr end = addr + length;
  while (cur < end) {
    auto it = vmas_.upper_bound(cur);
    if (it == vmas_.begin()) return false;
    --it;
    const VirtAddr vma_end = it->first + it->second.length;
    if (cur >= vma_end) return false;
    cur = vma_end;
  }
  return true;
}

std::vector<std::pair<VirtAddr, std::size_t>> AddressSpace::vma_list() const {
  std::vector<std::pair<VirtAddr, std::size_t>> out;
  out.reserve(vmas_.size());
  for (const auto& [start, vma] : vmas_) out.emplace_back(start, vma.length);
  return out;
}

std::vector<VirtAddr> AddressSpace::resident_unpinned_pages() const {
  std::vector<VirtAddr> out;
  out.reserve(pages_.size());
  // pinlint: unordered-ok(result sorted before returning)
  for (const auto& [pidx, entry] : pages_) {
    if (entry.pin_count == 0) out.push_back(page_addr(pidx));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool AddressSpace::in_vma(VirtAddr addr) const {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return false;
  --it;
  return addr < it->first + it->second.length;
}

// --- faulting and access ----------------------------------------------------

AddressSpace::PageEntry& AddressSpace::fault_in(VirtAddr addr, bool for_write) {
  const std::uint64_t pidx = page_index(addr);
  auto it = pages_.find(pidx);
  if (it != pages_.end()) {
    if (for_write && it->second.cow) break_cow(pidx, it->second);
    return it->second;
  }
  if (!in_vma(addr)) throw InvalidAddressError(addr);

  PageEntry entry;
  entry.frame = pm_.alloc();
  auto swapped = swap_store_.find(pidx);
  if (swapped != swap_store_.end()) {
    auto dst = pm_.data(entry.frame);
    std::copy(swapped->second.begin(), swapped->second.end(), dst.begin());
    swap_store_.erase(swapped);
    ++stats_.major_faults;
  } else {
    ++stats_.minor_faults;  // zero-filled by PhysicalMemory::alloc
  }
  return pages_.emplace(pidx, entry).first->second;
}

void AddressSpace::break_cow(std::uint64_t pidx, PageEntry& e) {
  assert(e.cow);
  // The physical page backing this VA is about to change: invalidate first.
  notify_invalidate(page_addr(pidx), page_addr(pidx) + kPageSize);
  const FrameId fresh = pm_.alloc();
  auto src = pm_.data(e.frame);
  auto dst = pm_.data(fresh);
  std::copy(src.begin(), src.end(), dst.begin());
  pm_.unref(e.frame);
  e.frame = fresh;
  e.cow = false;
  ++stats_.cow_breaks;
}

void AddressSpace::write(VirtAddr addr, std::span<const std::byte> src) {
  std::size_t done = 0;
  while (done < src.size()) {
    const VirtAddr va = addr + done;
    PageEntry& e = fault_in(va, /*for_write=*/true);
    const std::size_t off = page_offset(va);
    const std::size_t chunk = std::min(src.size() - done, kPageSize - off);
    auto frame = pm_.data(e.frame);
    std::memcpy(frame.data() + off, src.data() + done, chunk);
    done += chunk;
  }
}

void AddressSpace::read(VirtAddr addr, std::span<std::byte> dst) {
  std::size_t done = 0;
  while (done < dst.size()) {
    const VirtAddr va = addr + done;
    PageEntry& e = fault_in(va, /*for_write=*/false);
    const std::size_t off = page_offset(va);
    const std::size_t chunk = std::min(dst.size() - done, kPageSize - off);
    auto frame = pm_.data(e.frame);
    std::memcpy(dst.data() + done, frame.data() + off, chunk);
    done += chunk;
  }
}

void AddressSpace::fill(VirtAddr addr, std::size_t len, std::byte value) {
  std::size_t done = 0;
  while (done < len) {
    const VirtAddr va = addr + done;
    PageEntry& e = fault_in(va, /*for_write=*/true);
    const std::size_t off = page_offset(va);
    const std::size_t chunk = std::min(len - done, kPageSize - off);
    auto frame = pm_.data(e.frame);
    std::memset(frame.data() + off, static_cast<int>(value), chunk);
    done += chunk;
  }
}

void AddressSpace::touch(VirtAddr addr, std::size_t len) {
  for (VirtAddr va = page_floor(addr); va < addr + len; va += kPageSize) {
    fault_in(va, /*for_write=*/true);
  }
}

// --- pinning ----------------------------------------------------------------

std::vector<FrameId> AddressSpace::pin_range(VirtAddr addr, std::size_t len) {
  if (len == 0) return {};
  std::vector<FrameId> frames;
  frames.reserve(pages_spanned(addr, len));
  const VirtAddr first = page_floor(addr);
  const VirtAddr last = page_floor(addr + len - 1);
  VirtAddr va = first;
  try {
    for (; va <= last; va += kPageSize) {
      frames.push_back(pin_page(va));
    }
  } catch (...) {
    // Unwind partial pins so a failed pin has no side effects.
    VirtAddr undo = first;
    for (FrameId f : frames) {
      unpin_page(undo, f);
      undo += kPageSize;
    }
    throw;
  }
  return frames;
}

FrameId AddressSpace::pin_page(VirtAddr addr) {
  // get_user_pages can fail transiently before it ever walks the page table:
  // under injected memory pressure or when the host's pinned-page quota
  // (RLIMIT_MEMLOCK analogue) is exhausted. Both surface as PinDeniedError,
  // which callers treat like -ENOMEM: reclaim, back off and retry.
  if (PressureInjector* p = pm_.pressure(); p != nullptr && !p->allow_pin()) {
    throw PinDeniedError(PinDeniedError::Reason::kInjected);
  }
  if (pm_.pin_headroom() == 0) {
    pm_.count_quota_denial();
    throw PinDeniedError(PinDeniedError::Reason::kQuota);
  }
  // Pinning is for DMA, i.e. write access: break COW first, like
  // get_user_pages(write=1).
  PageEntry& e = fault_in(addr, /*for_write=*/true);
  ++e.pin_count;
  pm_.ref(e.frame);
  pm_.account_pin(1);
  ++stats_.pins;
  return e.frame;
}

void AddressSpace::unpin_page(VirtAddr addr, FrameId frame) {
  auto it = pages_.find(page_index(addr));
  if (it != pages_.end() && it->second.frame == frame) {
    assert(it->second.pin_count > 0);
    --it->second.pin_count;
  }
  // If the page was unmapped (or remapped to a new frame) meanwhile, the pin
  // reference alone kept the old frame alive; just drop it.
  pm_.unref(frame);
  pm_.account_pin(-1);
  ++stats_.unpins;
}

// --- queries ----------------------------------------------------------------

bool AddressSpace::is_present(VirtAddr addr) const {
  return pages_.count(page_index(addr)) != 0;
}

bool AddressSpace::is_pinned(VirtAddr addr) const {
  auto it = pages_.find(page_index(addr));
  return it != pages_.end() && it->second.pin_count > 0;
}

FrameId AddressSpace::frame_of(VirtAddr addr) const {
  auto it = pages_.find(page_index(addr));
  return it == pages_.end() ? kInvalidFrame : it->second.frame;
}

// --- VM events --------------------------------------------------------------

bool AddressSpace::swap_out(VirtAddr page_va) {
  const std::uint64_t pidx = page_index(page_va);
  auto it = pages_.find(pidx);
  if (it == pages_.end() || it->second.pin_count > 0) return false;

  notify_invalidate(page_addr(pidx), page_addr(pidx) + kPageSize);
  auto src = pm_.data(it->second.frame);
  swap_store_[pidx].assign(src.begin(), src.end());
  pm_.unref(it->second.frame);
  pages_.erase(it);
  ++stats_.swap_outs;
  return true;
}

std::size_t AddressSpace::swap_out_range(VirtAddr addr, std::size_t len) {
  std::size_t reclaimed = 0;
  for (VirtAddr va = page_floor(addr); va < addr + len; va += kPageSize) {
    if (swap_out(va)) ++reclaimed;
  }
  return reclaimed;
}

bool AddressSpace::migrate(VirtAddr page_va) {
  const std::uint64_t pidx = page_index(page_va);
  auto it = pages_.find(pidx);
  if (it == pages_.end() || it->second.pin_count > 0) return false;

  notify_invalidate(page_addr(pidx), page_addr(pidx) + kPageSize);
  const FrameId fresh = pm_.alloc();
  auto src = pm_.data(it->second.frame);
  auto dst = pm_.data(fresh);
  std::copy(src.begin(), src.end(), dst.begin());
  pm_.unref(it->second.frame);
  it->second.frame = fresh;
  it->second.cow = false;  // the copy is private
  ++stats_.migrations;
  return true;
}

CowSnapshot AddressSpace::cow_snapshot(VirtAddr addr, std::size_t len) {
  if (len == 0) throw std::invalid_argument("empty snapshot");
  CowSnapshot snap(pm_, page_floor(addr), len);
  for (VirtAddr va = page_floor(addr); va < addr + len; va += kPageSize) {
    PageEntry& e = fault_in(va, /*for_write=*/false);
    if (e.pin_count > 0) {
      // Pinned pages are DMA targets; copy them eagerly instead of making
      // them copy-on-write under the device.
      const FrameId copy = pm_.alloc();
      auto src = pm_.data(e.frame);
      auto dst = pm_.data(copy);
      std::copy(src.begin(), src.end(), dst.begin());
      snap.frames_.push_back(copy);  // snapshot owns alloc's reference
    } else {
      pm_.ref(e.frame);
      e.cow = true;
      snap.frames_.push_back(e.frame);
    }
  }
  return snap;
}

// --- notifiers --------------------------------------------------------------

void AddressSpace::register_notifier(MmuNotifier* n) {
  assert(n != nullptr);
  notifiers_.push_back(n);
}

void AddressSpace::unregister_notifier(MmuNotifier* n) {
  std::erase(notifiers_, n);
}

void AddressSpace::notify_invalidate(VirtAddr start, VirtAddr end) {
  ++stats_.notifier_invalidations;
  // Iterate over a copy: a callback may unregister its notifier.
  const auto subscribers = notifiers_;
  for (MmuNotifier* n : subscribers) n->invalidate_range(start, end);
}

void AddressSpace::teardown_page(std::uint64_t pidx) {
  auto it = pages_.find(pidx);
  assert(it != pages_.end());
  pm_.unref(it->second.frame);
  pages_.erase(it);
}

// --- CowSnapshot -------------------------------------------------------------

CowSnapshot::CowSnapshot(PhysicalMemory& pm, VirtAddr start, std::size_t length)
    : pm_(&pm), start_(start), length_(length) {}

CowSnapshot::CowSnapshot(CowSnapshot&& other) noexcept
    : pm_(other.pm_),
      start_(other.start_),
      length_(other.length_),
      frames_(std::move(other.frames_)) {
  other.frames_.clear();
  other.pm_ = nullptr;
}

CowSnapshot& CowSnapshot::operator=(CowSnapshot&& other) noexcept {
  if (this != &other) {
    if (pm_ != nullptr) {
      for (FrameId f : frames_) pm_->unref(f);
    }
    pm_ = other.pm_;
    start_ = other.start_;
    length_ = other.length_;
    frames_ = std::move(other.frames_);
    other.frames_.clear();
    other.pm_ = nullptr;
  }
  return *this;
}

CowSnapshot::~CowSnapshot() {
  if (pm_ != nullptr) {
    for (FrameId f : frames_) pm_->unref(f);
  }
}

void CowSnapshot::read(VirtAddr addr, std::span<std::byte> dst) const {
  if (addr < start_ || addr + dst.size() > start_ + length_) {
    throw InvalidAddressError(addr);
  }
  std::size_t done = 0;
  while (done < dst.size()) {
    const VirtAddr va = addr + done;
    const std::size_t slot =
        static_cast<std::size_t>(page_index(va) - page_index(start_));
    const std::size_t off = page_offset(va);
    const std::size_t chunk = std::min(dst.size() - done, kPageSize - off);
    auto frame = pm_->data(frames_[slot]);
    std::memcpy(dst.data() + done, frame.data() + off, chunk);
    done += chunk;
  }
}

}  // namespace pinsim::mem
