#pragma once

#include <cstdint>
#include <vector>

#include "mem/address_space.hpp"
#include "obs/event.hpp"
#include "obs/relay.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace pinsim::mem {

/// One memory-pressure recipe, the `net::FaultPlan` of the VM side. All
/// probabilities are independent unless noted; a plan with every knob at its
/// default injects nothing.
///
/// The paper's §3.1 contract is that the kernel may unpin declared regions
/// under memory pressure and the driver repins on demand at the next
/// communication. The PressureInjector exists to make that contract testable
/// under *adversarial* VM behaviour, not just the occasional swap-out:
/// get_user_pages-style pin denials (random and bursty), and notifier storms
/// — swap-daemon sweeps, page migrations and COW breaks fired into in-flight
/// transfers.
struct PressurePlan {
  /// Independent (Bernoulli) per-page pin denial, the transient -ENOMEM a
  /// loaded allocator returns from get_user_pages.
  double pin_fail = 0.0;

  /// Gilbert–Elliott bursty denial: a two-state Markov channel stepped once
  /// per pin attempt (good -> bad with `burst_enter`, bad -> good with
  /// `burst_exit`); while bad, attempts are denied with `burst_fail`.
  /// Models sustained reclaim episodes rather than isolated failures.
  /// `burst_enter == 0` disables the chain.
  double burst_enter = 0.0;
  double burst_exit = 0.25;
  double burst_fail = 1.0;

  /// Notifier-storm knobs, applied on every storm tick to each watched
  /// address space. `sweep` swaps out up to `sweep_pages` random unpinned
  /// resident pages (an aggressive kswapd pass); `migrate` moves up to
  /// `migrate_pages` pages to fresh frames (NUMA balancing / compaction);
  /// `cow` snapshots-then-writes up to `cow_pages` pages (fork + touch),
  /// breaking COW under any later pin. Each fires MMU notifiers exactly like
  /// the real VM events they model.
  double sweep = 0.0;
  std::size_t sweep_pages = 32;
  double migrate = 0.0;
  std::size_t migrate_pages = 4;
  double cow = 0.0;
  std::size_t cow_pages = 2;
  sim::Time storm_period = 20 * sim::kMicrosecond;

  [[nodiscard]] bool denies_pins() const noexcept {
    return pin_fail > 0.0 || burst_enter > 0.0;
  }
  [[nodiscard]] bool storms() const noexcept {
    return sweep > 0.0 || migrate > 0.0 || cow > 0.0;
  }
  [[nodiscard]] bool active() const noexcept {
    return denies_pins() || storms();
  }
};

/// Deterministic memory-pressure fault injection, mirroring
/// `net::FaultInjector` for the memory subsystem.
///
/// Two attack surfaces:
///  * pin denial — `PhysicalMemory::set_pressure` hooks the injector into
///    `AddressSpace::pin_page`, which consults `allow_pin()` before touching
///    the page table and throws PinDeniedError on refusal;
///  * notifier storms — `start_storm` schedules a periodic tick that drives
///    swap-outs, migrations and COW breaks against every watched address
///    space, each firing the MMU notifiers registered there.
///
/// All randomness comes from one seeded sim::Rng, so a run with the same
/// seed and schedule is bit-reproducible.
class PressureInjector {
 public:
  struct Stats {
    std::uint64_t pin_attempts = 0;
    std::uint64_t pins_denied = 0;   // independent (Bernoulli) denials
    std::uint64_t burst_denied = 0;  // Gilbert–Elliott denials
    std::uint64_t storm_ticks = 0;
    std::uint64_t swept_pages = 0;   // pages swapped out by storms
    std::uint64_t migrated_pages = 0;
    std::uint64_t cow_breaks = 0;

    [[nodiscard]] std::uint64_t total_denied() const noexcept {
      return pins_denied + burst_denied;
    }
  };

  explicit PressureInjector(std::uint64_t seed = 0x9e550e) : rng_(seed) {}
  ~PressureInjector();

  PressureInjector(const PressureInjector&) = delete;
  PressureInjector& operator=(const PressureInjector&) = delete;

  void set_plan(PressurePlan plan) noexcept { plan_ = plan; }
  [[nodiscard]] const PressurePlan& plan() const noexcept { return plan_; }

  /// Address spaces the notifier storms target. Not owned; callers keep them
  /// alive while the injector runs (or call `unwatch`).
  void watch(AddressSpace* as);
  void unwatch(AddressSpace* as);

  /// Pin-denial gate, called by AddressSpace::pin_page for every attempt.
  /// Returns false when the attempt must fail.
  [[nodiscard]] bool allow_pin();

  /// Starts the periodic notifier-storm tick on `eng`.
  void start_storm(sim::Engine& eng);
  void stop_storm();

  /// One synchronous storm pass over all watched address spaces (also used
  /// by tests and the torture harness).
  void storm_once();

  /// Attaches a tracer; decisions are recorded under `pressure.deny`,
  /// `pressure.sweep`, `pressure.migrate` and `pressure.cow`.
  void set_tracer(sim::Tracer* t) noexcept { relay_.set_tracer(t); }

  /// Attaches a typed event bus; decisions are emitted as kPressure* events.
  void set_bus(obs::Bus* bus) noexcept { relay_.set_bus(bus); }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void tick();
  void trace(obs::EventKind kind, const char* what);

  PressurePlan plan_;
  std::vector<AddressSpace*> spaces_;
  sim::Rng rng_;
  obs::Relay relay_;
  Stats stats_;
  bool burst_bad_ = false;  // Gilbert–Elliott channel state
  sim::Engine* eng_ = nullptr;
  bool storming_ = false;
  sim::Engine::EventId pending_{};
};

}  // namespace pinsim::mem
