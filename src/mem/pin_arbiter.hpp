#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/physical_memory.hpp"

namespace pinsim::mem {

/// Cross-tenant pin arbitration over one host's shared pin quota.
///
/// Several processes (tenants) on a multi-tenant host compete for one
/// `PhysicalMemory` pin quota. Without arbitration, whoever pins first wins
/// and a greedy tenant can starve the rest — the classic problem with
/// RLIMIT_MEMLOCK-style per-host accounting. The arbiter adds two policies
/// on top of the raw quota:
///
///  * **fair-share floor**: each tenant is entitled to
///    `weight_i / total_weight` of the quota. A tenant pinned at or above
///    its floor cannot demand headroom from others; a tenant below its
///    floor may.
///  * **weighted LRU shedding**: when an under-floor tenant is denied by
///    the quota, the arbiter asks over-floor tenants — most-over-floor
///    first, normalized by weight — to shed one idle (LRU, unreferenced)
///    region each until a page of headroom appears. Tenants at or below
///    their floor are never shed against their will (floor protection).
///
/// Everything is deterministic: tenants are ranked by exact integer
/// arithmetic with ascending-registration-id tie-breaks, and shedding
/// reuses each tenant's own deterministic LRU walk.
class PinArbiter {
 public:
  /// What the arbiter needs from a tenant (implemented by core::PinManager).
  /// Kept abstract so mem/ stays independent of core/.
  class TenantOps {
   public:
    virtual ~TenantOps() = default;
    /// Pages this tenant currently holds pinned.
    [[nodiscard]] virtual std::size_t arb_pinned_pages() const = 0;
    /// Sheds one idle region's pins (LRU first). Returns false when every
    /// region is busy — the tenant cannot yield anything right now.
    virtual bool arb_shed_idle() = 0;
    /// The arbiter skipped this tenant as a shed victim because it sits at
    /// or below its fair-share floor (accounting hook only).
    virtual void arb_note_floor_protected() = 0;
  };

  struct TenantStats {
    std::uint64_t requests = 0;         // headroom requests made
    std::uint64_t grants = 0;           // requests satisfied by shedding
    std::uint64_t floor_denied = 0;     // refused: requester at/over floor
    std::uint64_t sheds_suffered = 0;   // times picked as the shed victim
  };

  explicit PinArbiter(PhysicalMemory& pm) : pm_(pm) {}

  PinArbiter(const PinArbiter&) = delete;
  PinArbiter& operator=(const PinArbiter&) = delete;

  /// Registers a tenant with a scheduling weight (>= 1). Ids ascend and are
  /// never reused, so registration order fixes all tie-breaks.
  std::uint32_t register_tenant(TenantOps* ops, std::uint32_t weight);

  /// Detaches a dying tenant; its stats slot survives for reporting.
  void unregister_tenant(std::uint32_t id);

  /// An under-quota denial landed on `requester`: try to free headroom by
  /// shedding from over-floor tenants. Returns true when at least one page
  /// of headroom exists on return (the caller's retry will succeed).
  /// Refuses — without shedding anyone — when the requester already holds
  /// its fair share.
  bool request_headroom(TenantOps* requester);

  /// The requester's fair-share floor in pages (weight-proportional slice
  /// of the pin quota). Unlimited quota means an unlimited floor.
  [[nodiscard]] std::size_t fair_floor(std::uint32_t id) const;

  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return live_count_;
  }
  [[nodiscard]] const TenantStats& stats(std::uint32_t id) const {
    return slots_.at(id).stats;
  }
  [[nodiscard]] std::uint64_t total_requests() const noexcept {
    return total_requests_;
  }
  [[nodiscard]] std::uint64_t total_grants() const noexcept {
    return total_grants_;
  }
  [[nodiscard]] std::uint64_t total_sheds() const noexcept {
    return total_sheds_;
  }

 private:
  struct Slot {
    TenantOps* ops = nullptr;  // nullptr once unregistered
    std::uint32_t weight = 1;
    TenantStats stats;
  };

  [[nodiscard]] std::size_t floor_for(const Slot& s) const;

  PhysicalMemory& pm_;
  std::vector<Slot> slots_;  // indexed by tenant id; never shrinks
  std::size_t live_count_ = 0;
  std::uint32_t total_weight_ = 0;
  std::uint64_t total_requests_ = 0;
  std::uint64_t total_grants_ = 0;
  std::uint64_t total_sheds_ = 0;
};

}  // namespace pinsim::mem
