#include "mem/malloc_sim.hpp"

#include <stdexcept>

namespace pinsim::mem {

MallocSim::MallocSim(AddressSpace& as, std::size_t mmap_threshold,
                     std::size_t arena_chunk)
    : as_(as), mmap_threshold_(mmap_threshold), arena_chunk_(arena_chunk) {
  if (mmap_threshold_ == 0 || arena_chunk_ == 0) {
    throw std::invalid_argument("malloc thresholds must be nonzero");
  }
}

VirtAddr MallocSim::malloc(std::size_t n) {
  if (n == 0) throw std::invalid_argument("malloc(0) not modelled");

  if (n >= mmap_threshold_) {
    const VirtAddr p = as_.mmap(n);
    big_.emplace(p, static_cast<std::size_t>(page_ceil(n)));
    ++stats_.mmap_allocs;
    return p;
  }

  const std::size_t cls = size_class(n);
  auto& fl = free_lists_[cls];
  if (!fl.empty()) {
    const VirtAddr p = fl.back();
    fl.pop_back();
    small_.emplace(p, cls);
    ++stats_.reuse_hits;
    return p;
  }

  if (arena_left_ < cls) {
    const std::size_t chunk = std::max(arena_chunk_, cls);
    arena_cur_ = as_.mmap(chunk);
    arena_left_ = static_cast<std::size_t>(page_ceil(chunk));
  }
  const VirtAddr p = arena_cur_;
  arena_cur_ += cls;
  arena_left_ -= cls;
  small_.emplace(p, cls);
  ++stats_.arena_allocs;
  return p;
}

void MallocSim::free(VirtAddr p) {
  if (auto it = big_.find(p); it != big_.end()) {
    as_.munmap(p, it->second);  // fires MMU notifiers
    big_.erase(it);
    ++stats_.frees;
    return;
  }
  if (auto it = small_.find(p); it != small_.end()) {
    free_lists_[it->second].push_back(p);
    small_.erase(it);
    ++stats_.frees;
    return;
  }
  throw std::invalid_argument("free of unknown pointer");
}

std::size_t MallocSim::usable_size(VirtAddr p) const {
  if (auto it = big_.find(p); it != big_.end()) return it->second;
  if (auto it = small_.find(p); it != small_.end()) return it->second;
  throw std::invalid_argument("usable_size of unknown pointer");
}

}  // namespace pinsim::mem
