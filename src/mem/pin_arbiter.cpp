#include "mem/pin_arbiter.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pinsim::mem {

std::uint32_t PinArbiter::register_tenant(TenantOps* ops,
                                          std::uint32_t weight) {
  if (ops == nullptr) {
    throw std::invalid_argument("pin arbiter tenant must not be null");
  }
  if (weight == 0) {
    throw std::invalid_argument("pin arbiter tenant weight must be >= 1");
  }
  Slot s;
  s.ops = ops;
  s.weight = weight;
  slots_.push_back(s);
  ++live_count_;
  total_weight_ += weight;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void PinArbiter::unregister_tenant(std::uint32_t id) {
  Slot& s = slots_.at(id);
  if (s.ops == nullptr) return;
  s.ops = nullptr;
  --live_count_;
  total_weight_ -= s.weight;
}

std::size_t PinArbiter::floor_for(const Slot& s) const {
  const std::size_t quota = pm_.pin_quota();
  if (quota == std::numeric_limits<std::size_t>::max() ||
      total_weight_ == 0) {
    return std::numeric_limits<std::size_t>::max();
  }
  return quota * s.weight / total_weight_;
}

std::size_t PinArbiter::fair_floor(std::uint32_t id) const {
  return floor_for(slots_.at(id));
}

bool PinArbiter::request_headroom(TenantOps* requester) {
  // The requester registered itself, so a linear scan over the (small,
  // ascending-id) slot table finds it deterministically.
  Slot* req = nullptr;
  for (Slot& s : slots_) {
    if (s.ops == requester) {
      req = &s;
      break;
    }
  }
  if (req == nullptr) return false;

  ++req->stats.requests;
  ++total_requests_;

  if (pm_.pin_headroom() > 0) {
    // Someone freed pages between the denial and this call; nothing to do.
    ++req->stats.grants;
    ++total_grants_;
    return true;
  }

  // Fair-share floor: a tenant already holding its entitlement cannot
  // demand pages from anyone else — its own LRU shedding is its problem.
  if (requester->arb_pinned_pages() >= floor_for(*req)) {
    ++req->stats.floor_denied;
    return false;
  }

  // Rank shed candidates by weighted overage (pinned - floor) / weight,
  // largest first; compare by cross-multiplication to stay in exact integer
  // arithmetic. Ascending registration id breaks ties.
  struct Candidate {
    std::uint32_t id;
    std::size_t overage;
    std::uint32_t weight;
  };
  std::vector<Candidate> candidates;
  for (std::uint32_t id = 0; id < slots_.size(); ++id) {
    Slot& s = slots_[id];
    if (s.ops == nullptr || s.ops == requester) continue;
    const std::size_t pinned = s.ops->arb_pinned_pages();
    const std::size_t floor = floor_for(s);
    if (pinned <= floor) {
      // Holding its fair share (or less): protected from shedding.
      if (pinned > 0) {
        s.ops->arb_note_floor_protected();
      }
      continue;
    }
    candidates.push_back({id, pinned - floor, s.weight});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     const auto lhs = static_cast<std::uint64_t>(a.overage) *
                                      b.weight;
                     const auto rhs = static_cast<std::uint64_t>(b.overage) *
                                      a.weight;
                     if (lhs != rhs) return lhs > rhs;
                     return a.id < b.id;
                   });

  for (const Candidate& c : candidates) {
    Slot& victim = slots_[c.id];
    if (!victim.ops->arb_shed_idle()) continue;  // everything busy, next
    ++victim.stats.sheds_suffered;
    ++total_sheds_;
    if (pm_.pin_headroom() > 0) {
      ++req->stats.grants;
      ++total_grants_;
      return true;
    }
  }
  return pm_.pin_headroom() > 0;
}

}  // namespace pinsim::mem
