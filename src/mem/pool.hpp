#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace pinsim::mem {

/// Recycling pool of default-constructed `T` nodes with stable addresses.
///
/// The protocol hot path used to pay one heap allocation per send request,
/// pull transfer and tracked region (map nodes or `make_unique`). The pool
/// hands out the same nodes over and over instead: `acquire()` pops the
/// free list (allocating only on first growth), and dropping the returned
/// `Ptr` resets the node to a default-constructed state and pushes it back.
///
/// Node addresses are stable for the node's whole lease, which is the
/// property the flat tables rely on: a `FlatMap<K, ObjectPool<T>::Ptr>` can
/// shift its vector on insert/erase while callbacks hold `T&` into the
/// pooled nodes (see sim/flat_map.hpp's invalidation contract).
///
/// Lifetime: the pool must outlive every `Ptr` it issued — declare the pool
/// before any member that stores its `Ptr`s, so the container drains first.
/// `T` must be default-constructible and move-assignable (the reset path is
/// `*node = T{}`, which also recycles the node's inner vector capacity on
/// implementations that reuse the left-hand buffer).
///
/// This complements, not duplicates, `mem/malloc_sim`: that models the
/// *simulated* process heap (virtual addresses inside an AddressSpace);
/// this pools the simulator's own host-side bookkeeping objects.
template <typename T>
class ObjectPool {
 public:
  class Releaser {
   public:
    Releaser() = default;
    explicit Releaser(ObjectPool* pool) noexcept : pool_(pool) {}
    void operator()(T* node) const {
      if (pool_ != nullptr) pool_->release(node);
    }

   private:
    ObjectPool* pool_ = nullptr;
  };

  /// Owning lease on a pooled node; returns it to the pool on destruction.
  using Ptr = std::unique_ptr<T, Releaser>;

  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  [[nodiscard]] Ptr acquire() {
    if (free_.empty()) {
      nodes_.push_back(std::make_unique<T>());
      free_.push_back(nodes_.back().get());
    }
    T* node = free_.back();
    free_.pop_back();
    return Ptr(node, Releaser(this));
  }

  /// Nodes currently leased out (for tests / leak accounting).
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return nodes_.size() - free_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return nodes_.size(); }

 private:
  void release(T* node) {
    *node = T{};
    free_.push_back(node);
  }

  std::vector<std::unique_ptr<T>> nodes_;
  std::vector<T*> free_;
};

/// Recycles `std::vector<std::byte>` capacity for frame payloads.
///
/// Every packet on the wire used to allocate its payload vector at encode
/// and free it after decode; under a pull storm that is two heap round
/// trips per frame. The pool keeps a bounded stack of retired buffers and
/// re-issues their capacity. `acquire` always returns a buffer of exactly
/// `size` value-initialized-or-overwritten bytes (`clear()` + `resize()`),
/// so recycled capacity can never leak stale bytes into a new frame.
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  [[nodiscard]] std::vector<std::byte> acquire(std::size_t size) {
    if (free_.empty()) return std::vector<std::byte>(size);
    std::vector<std::byte> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    buf.resize(size);
    return buf;
  }

  /// Like acquire(0) but with capacity reserved for `reserve` bytes.
  [[nodiscard]] std::vector<std::byte> acquire_reserved(std::size_t reserve) {
    std::vector<std::byte> buf = acquire(0);
    buf.reserve(reserve);
    return buf;
  }

  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0) return;  // nothing worth keeping
    if (free_.size() < kMaxRetained) free_.push_back(std::move(buf));
  }

  [[nodiscard]] std::size_t retained() const noexcept { return free_.size(); }

 private:
  /// Bounds idle capacity: enough for a full pull window of in-flight
  /// frames, small enough that a burst cannot pin memory forever.
  static constexpr std::size_t kMaxRetained = 256;

  std::vector<std::vector<std::byte>> free_;
};

}  // namespace pinsim::mem
