#include "mem/swap_daemon.hpp"

#include <algorithm>

namespace pinsim::mem {

SwapDaemon::SwapDaemon(sim::Engine& eng, PhysicalMemory& pm, Config cfg)
    : eng_(eng), pm_(pm), cfg_(cfg), rng_(cfg.seed) {}

void SwapDaemon::watch(AddressSpace* as) { spaces_.push_back(as); }

void SwapDaemon::start() {
  if (running_) return;
  running_ = true;
  pending_ = eng_.schedule_after(
      cfg_.period,
      [this, alive = std::weak_ptr<void>(alive_)] {
        if (alive.expired()) return;
        tick();
      },
      {"mem", "swap_tick"});
}

void SwapDaemon::stop() {
  if (!running_) return;
  running_ = false;
  eng_.cancel(pending_);
}

void SwapDaemon::tick() {
  scan_once();
  if (running_) {
    pending_ = eng_.schedule_after(
        cfg_.period,
        [this, alive = std::weak_ptr<void>(alive_)] {
          if (alive.expired()) return;
          tick();
        },
        {"mem", "swap_tick"});
  }
}

std::size_t SwapDaemon::scan_once() {
  const auto total = static_cast<double>(pm_.total_frames());
  if (static_cast<double>(pm_.used_frames()) < cfg_.high_watermark * total) {
    return 0;
  }
  const auto target =
      static_cast<std::size_t>(cfg_.low_watermark * total);

  // Gather candidates across all watched spaces, then evict in random order
  // until usage reaches the low watermark.
  std::vector<std::pair<AddressSpace*, VirtAddr>> candidates;
  for (AddressSpace* as : spaces_) {
    for (VirtAddr va : as->resident_unpinned_pages()) {
      candidates.emplace_back(as, va);
    }
  }
  // Fisher-Yates with the daemon's own deterministic RNG.
  for (std::size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1], candidates[rng_.next_below(i)]);
  }

  std::size_t reclaimed = 0;
  for (auto& [as, va] : candidates) {
    if (pm_.used_frames() <= target) break;
    if (as->swap_out(va)) ++reclaimed;
  }
  total_reclaimed_ += reclaimed;
  return reclaimed;
}

}  // namespace pinsim::mem
