#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

/// Basic types for the simulated virtual-memory subsystem.
namespace pinsim::mem {

using VirtAddr = std::uint64_t;
using FrameId = std::uint64_t;

inline constexpr std::size_t kPageShift = 12;
inline constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;  // 4 kB
inline constexpr FrameId kInvalidFrame = ~FrameId{0};

[[nodiscard]] constexpr VirtAddr page_floor(VirtAddr a) noexcept {
  return a & ~VirtAddr{kPageSize - 1};
}

[[nodiscard]] constexpr VirtAddr page_ceil(VirtAddr a) noexcept {
  return page_floor(a + kPageSize - 1);
}

[[nodiscard]] constexpr std::uint64_t page_index(VirtAddr a) noexcept {
  return a >> kPageShift;
}

[[nodiscard]] constexpr VirtAddr page_addr(std::uint64_t index) noexcept {
  return index << kPageShift;
}

[[nodiscard]] constexpr std::size_t page_offset(VirtAddr a) noexcept {
  return static_cast<std::size_t>(a & (kPageSize - 1));
}

/// Number of pages spanned by [addr, addr+len).
[[nodiscard]] constexpr std::size_t pages_spanned(VirtAddr addr,
                                                  std::size_t len) noexcept {
  if (len == 0) return 0;
  return static_cast<std::size_t>(page_index(addr + len - 1) -
                                  page_index(addr) + 1);
}

/// Access to an address outside any mapping — the simulated SIGSEGV/-EFAULT.
class InvalidAddressError : public std::runtime_error {
 public:
  explicit InvalidAddressError(VirtAddr addr)
      : std::runtime_error("invalid virtual address 0x" + to_hex(addr)),
        addr_(addr) {}
  [[nodiscard]] VirtAddr addr() const noexcept { return addr_; }

 private:
  static std::string to_hex(VirtAddr a);
  VirtAddr addr_;
};

/// Physical frame pool exhausted.
class OutOfMemoryError : public std::runtime_error {
 public:
  OutOfMemoryError() : std::runtime_error("out of physical frames") {}

 protected:
  explicit OutOfMemoryError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A page pin was refused without the frame pool being exhausted: either the
/// host's pinned-page quota is full (the rlimit/IB_UMEM accounting analogue)
/// or a PressureInjector forced a get_user_pages-style failure. Derives from
/// OutOfMemoryError because callers handle it the same way -ENOMEM from
/// get_user_pages is handled: reclaim, retry or give up — transient, unlike
/// InvalidAddressError.
class PinDeniedError : public OutOfMemoryError {
 public:
  enum class Reason {
    kQuota,     // pinned_pages would exceed the configured quota
    kInjected,  // PressureInjector simulated allocator/LRU contention
  };

  explicit PinDeniedError(Reason r)
      : OutOfMemoryError(r == Reason::kQuota
                             ? "pin denied: pinned-page quota exhausted"
                             : "pin denied: injected memory pressure"),
        reason_(r) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }

 private:
  Reason reason_;
};

}  // namespace pinsim::mem
