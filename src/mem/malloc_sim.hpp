#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/types.hpp"

namespace pinsim::mem {

/// glibc-shaped user allocator over the simulated address space.
///
/// Two behaviours matter to the paper and are modelled faithfully:
///  * allocations at or above `mmap_threshold` get their own mapping and
///    `free()` munmaps it — which is exactly when the kernel (and thus the
///    MMU notifier) learns that a large communication buffer went away;
///  * small/medium allocations come from arena free lists, so a free/malloc
///    pair of the same size class returns the *same address* — the buffer
///    reuse pattern that makes pinning caches profitable.
class MallocSim {
 public:
  struct Stats {
    std::uint64_t mmap_allocs = 0;
    std::uint64_t arena_allocs = 0;
    std::uint64_t reuse_hits = 0;  // served from a free list
    std::uint64_t frees = 0;
  };

  explicit MallocSim(AddressSpace& as,
                     std::size_t mmap_threshold = 128 * 1024,
                     std::size_t arena_chunk = 1024 * 1024);

  MallocSim(const MallocSim&) = delete;
  MallocSim& operator=(const MallocSim&) = delete;

  /// Allocates `n` bytes; never returns 0. Throws std::invalid_argument on
  /// n == 0 (simplification: the simulator has no use for malloc(0)).
  [[nodiscard]] VirtAddr malloc(std::size_t n);

  /// Frees a pointer previously returned by malloc. Large blocks are
  /// munmapped immediately (firing MMU notifiers); small blocks go back on
  /// their free list and keep their mapping.
  void free(VirtAddr p);

  /// Allocation size as rounded by the allocator.
  [[nodiscard]] std::size_t usable_size(VirtAddr p) const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t mmap_threshold() const noexcept {
    return mmap_threshold_;
  }

 private:
  static constexpr std::size_t kGranule = 16;

  [[nodiscard]] static std::size_t size_class(std::size_t n) noexcept {
    return (n + kGranule - 1) / kGranule * kGranule;
  }

  AddressSpace& as_;
  std::size_t mmap_threshold_;
  std::size_t arena_chunk_;

  // Large allocations: address -> mapped length.
  std::unordered_map<VirtAddr, std::size_t> big_;
  // Small allocations: address -> size class; free lists per size class.
  std::unordered_map<VirtAddr, std::size_t> small_;
  std::unordered_map<std::size_t, std::vector<VirtAddr>> free_lists_;
  // Current arena bump region.
  VirtAddr arena_cur_ = 0;
  std::size_t arena_left_ = 0;
  Stats stats_;
};

}  // namespace pinsim::mem
