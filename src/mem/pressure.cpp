#include "mem/pressure.hpp"

#include <algorithm>
#include <string>

namespace pinsim::mem {

PressureInjector::~PressureInjector() { stop_storm(); }

void PressureInjector::watch(AddressSpace* as) { spaces_.push_back(as); }

void PressureInjector::unwatch(AddressSpace* as) {
  spaces_.erase(std::remove(spaces_.begin(), spaces_.end(), as),
                spaces_.end());
}

void PressureInjector::trace(obs::EventKind kind, const char* what) {
  if (!relay_.active()) return;
  obs::Event e;
  e.kind = kind;
  e.label = what;
  relay_.emit(e);
}

bool PressureInjector::allow_pin() {
  ++stats_.pin_attempts;
  // Step the Gilbert–Elliott chain once per attempt, like the network
  // injector steps it per frame: reclaim episodes span many consecutive
  // get_user_pages calls.
  if (plan_.burst_enter > 0.0) {
    if (!burst_bad_) {
      if (rng_.bernoulli(plan_.burst_enter)) burst_bad_ = true;
    } else if (rng_.bernoulli(plan_.burst_exit)) {
      burst_bad_ = false;
    }
    if (burst_bad_ && rng_.bernoulli(plan_.burst_fail)) {
      ++stats_.burst_denied;
      trace(obs::EventKind::kPressureDeny, "burst pin denial");
      return false;
    }
  }
  if (plan_.pin_fail > 0.0 && rng_.bernoulli(plan_.pin_fail)) {
    ++stats_.pins_denied;
    trace(obs::EventKind::kPressureDeny, "pin denial");
    return false;
  }
  return true;
}

void PressureInjector::start_storm(sim::Engine& eng) {
  if (storming_) return;
  eng_ = &eng;
  storming_ = true;
  pending_ = eng_->schedule_after(
      plan_.storm_period,
      // pinlint: allow(D7: ~PressureInjector calls stop_storm(), which
      // cancels the pending tick before `this` can dangle)
      [this] { tick(); }, {"mem", "pressure_tick"});
}

void PressureInjector::stop_storm() {
  if (!storming_) return;
  storming_ = false;
  eng_->cancel(pending_);
}

void PressureInjector::tick() {
  storm_once();
  if (storming_) {
    pending_ = eng_->schedule_after(
        plan_.storm_period,
        // pinlint: allow(D7: re-arm of the storm tick; ~PressureInjector
        // cancels it via stop_storm() before `this` can dangle)
        [this] { tick(); }, {"mem", "pressure_tick"});
  }
}

void PressureInjector::storm_once() {
  ++stats_.storm_ticks;
  for (AddressSpace* as : spaces_) {
    // Aggressive swap-daemon sweep: random unpinned resident pages go to
    // swap mid-transfer. The MMU notifier fires before each page leaves, so
    // pinned DMA targets are invalidated-then-repinned, never torn.
    if (plan_.sweep > 0.0 && rng_.bernoulli(plan_.sweep)) {
      auto victims = as->resident_unpinned_pages();
      for (std::size_t i = victims.size(); i > 1; --i) {
        std::swap(victims[i - 1], victims[rng_.next_below(i)]);
      }
      std::size_t swept = 0;
      for (VirtAddr va : victims) {
        if (swept >= plan_.sweep_pages) break;
        if (as->swap_out(va)) ++swept;
      }
      stats_.swept_pages += swept;
      if (swept > 0) trace(obs::EventKind::kPressureSweep, "swap-daemon sweep");
    }
    // Page migration (NUMA balancing / compaction): same virtual page, new
    // frame. A stale pinned translation would now DMA into a freed frame —
    // exactly what the notifier invalidation must prevent.
    if (plan_.migrate > 0.0 && rng_.bernoulli(plan_.migrate)) {
      auto victims = as->resident_unpinned_pages();
      std::size_t moved = 0;
      while (moved < plan_.migrate_pages && !victims.empty()) {
        const std::size_t i = rng_.next_below(victims.size());
        try {
          if (as->migrate(victims[i])) ++moved;
        } catch (const OutOfMemoryError&) {
          break;  // no frame for the migration target; storm yields
        }
        victims.erase(victims.begin() + static_cast<std::ptrdiff_t>(i));
      }
      stats_.migrated_pages += moved;
      if (moved > 0) trace(obs::EventKind::kPressureMigrate, "page migration");
    }
    // COW churn: snapshot a few pages (fork analogue) and immediately write
    // them, breaking COW. If the page is later pinned, the break replaces
    // the frame under the translation — notifier territory again.
    if (plan_.cow > 0.0 && rng_.bernoulli(plan_.cow)) {
      auto victims = as->resident_unpinned_pages();
      std::size_t broken = 0;
      for (std::size_t n = 0; n < plan_.cow_pages && !victims.empty(); ++n) {
        const std::size_t i = rng_.next_below(victims.size());
        const VirtAddr va = victims[i];
        victims.erase(victims.begin() + static_cast<std::ptrdiff_t>(i));
        try {
          CowSnapshot snap = as->cow_snapshot(va, kPageSize);
          as->touch(va, 1);  // break COW; fires the notifier
          ++broken;
        } catch (const OutOfMemoryError&) {
          break;  // no frame for the private copy; storm yields
        }
      }
      stats_.cow_breaks += broken;
      if (broken > 0) trace(obs::EventKind::kPressureCow, "cow break");
    }
  }
}

}  // namespace pinsim::mem
