#include "mem/physical_memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace pinsim::mem {

std::string InvalidAddressError::to_hex(VirtAddr a) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(a));
  return buf;
}

PhysicalMemory::PhysicalMemory(std::size_t num_frames)
    : bytes_(num_frames * kPageSize), refcounts_(num_frames, 0) {
  free_list_.reserve(num_frames);
  // Hand out low frame ids first (pop from the back).
  for (std::size_t i = num_frames; i-- > 0;) {
    free_list_.push_back(static_cast<FrameId>(i));
  }
}

FrameId PhysicalMemory::alloc() {
  if (free_list_.empty()) throw OutOfMemoryError{};
  const FrameId f = free_list_.back();
  free_list_.pop_back();
  assert(refcounts_[f] == 0);
  refcounts_[f] = 1;
  auto page = data(f);
  std::fill(page.begin(), page.end(), std::byte{0});
  return f;
}

void PhysicalMemory::check_live(FrameId f) const {
  assert(f < refcounts_.size() && "frame id out of range");
  assert(refcounts_[f] > 0 && "operating on a freed frame");
}

void PhysicalMemory::ref(FrameId f) {
  check_live(f);
  ++refcounts_[f];
}

void PhysicalMemory::unref(FrameId f) {
  check_live(f);
  if (--refcounts_[f] == 0) free_list_.push_back(f);
}

std::uint32_t PhysicalMemory::refcount(FrameId f) const {
  assert(f < refcounts_.size());
  return refcounts_[f];
}

std::span<std::byte> PhysicalMemory::data(FrameId f) {
  check_live(f);
  return std::span<std::byte>(bytes_.data() + f * kPageSize, kPageSize);
}

std::span<const std::byte> PhysicalMemory::data(FrameId f) const {
  check_live(f);
  return std::span<const std::byte>(bytes_.data() + f * kPageSize, kPageSize);
}

void PhysicalMemory::account_pin(std::int64_t delta) {
  if (delta < 0) {
    assert(pinned_pages_ >= static_cast<std::size_t>(-delta));
  }
  pinned_pages_ = static_cast<std::size_t>(
      static_cast<std::int64_t>(pinned_pages_) + delta);
}

}  // namespace pinsim::mem
