#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "mem/types.hpp"

namespace pinsim::mem {

class PinArbiter;
class PressureInjector;

/// Physical memory: a pool of reference-counted 4 kB frames holding real
/// bytes.
///
/// Reference counting mirrors the Linux page refcount that makes
/// `get_user_pages` safe: the address-space mapping holds one reference and
/// every pin holds another, so a frame that is unmapped while still pinned
/// stays alive (an "orphaned" frame) until the last pin drops. That is
/// exactly the situation a stale user-space registration cache exploits —
/// and how our tests make its corruption observable.
class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::size_t num_frames);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  /// Allocates a zeroed frame with refcount 1. Throws OutOfMemoryError.
  [[nodiscard]] FrameId alloc();

  /// Increments the reference count of a live frame.
  void ref(FrameId f);

  /// Decrements the reference count; frees the frame when it reaches zero.
  void unref(FrameId f);

  [[nodiscard]] std::uint32_t refcount(FrameId f) const;

  /// Raw bytes of a live frame (the "kernel direct mapping").
  [[nodiscard]] std::span<std::byte> data(FrameId f);
  [[nodiscard]] std::span<const std::byte> data(FrameId f) const;

  [[nodiscard]] std::size_t total_frames() const noexcept {
    return refcounts_.size();
  }
  [[nodiscard]] std::size_t free_frames() const noexcept {
    return free_list_.size();
  }
  [[nodiscard]] std::size_t used_frames() const noexcept {
    return total_frames() - free_frames();
  }

  /// Global pinned-page accounting, used by the driver to decide when to shed
  /// pins under memory pressure (paper §3.1: "if there are too many pinned
  /// pages ... it may also request some unpinning").
  void account_pin(std::int64_t delta);
  [[nodiscard]] std::size_t pinned_pages() const noexcept {
    return pinned_pages_;
  }

  /// Hard cap on pinned pages across the host — the RLIMIT_MEMLOCK /
  /// ib_umem accounting analogue. `pin_page` throws PinDeniedError(kQuota)
  /// above it; the pin manager sheds LRU idle regions and shrinks its chunk
  /// to fit the remaining headroom. Default: unlimited. Shrinking the quota
  /// below the current pinned count does not unpin anything by itself; it
  /// only refuses *new* pins until the count drains below it.
  void set_pin_quota(std::size_t pages) noexcept { pin_quota_ = pages; }
  [[nodiscard]] std::size_t pin_quota() const noexcept { return pin_quota_; }

  /// Pins still allowed under the quota (SIZE_MAX when unlimited).
  [[nodiscard]] std::size_t pin_headroom() const noexcept {
    if (pin_quota_ == std::numeric_limits<std::size_t>::max()) {
      return pin_quota_;
    }
    return pin_quota_ > pinned_pages_ ? pin_quota_ - pinned_pages_ : 0;
  }

  [[nodiscard]] std::uint64_t quota_denials() const noexcept {
    return quota_denials_;
  }
  void count_quota_denial() noexcept { ++quota_denials_; }

  /// Optional memory-pressure fault injector consulted by AddressSpace::
  /// pin_page. Not owned; nullptr disables injection.
  void set_pressure(PressureInjector* p) noexcept { pressure_ = p; }
  [[nodiscard]] PressureInjector* pressure() const noexcept {
    return pressure_;
  }

  /// Optional cross-tenant pin arbiter (mem/pin_arbiter.hpp) consulted by
  /// pin managers when the quota is exhausted. Not owned; nullptr means
  /// every tenant fends for itself (the pre-cluster behaviour).
  void set_arbiter(PinArbiter* a) noexcept { arbiter_ = a; }
  [[nodiscard]] PinArbiter* arbiter() const noexcept { return arbiter_; }

 private:
  void check_live(FrameId f) const;

  std::vector<std::byte> bytes_;
  std::vector<std::uint32_t> refcounts_;  // 0 == free
  std::vector<FrameId> free_list_;
  std::size_t pinned_pages_ = 0;
  std::size_t pin_quota_ = std::numeric_limits<std::size_t>::max();
  std::uint64_t quota_denials_ = 0;
  PressureInjector* pressure_ = nullptr;
  PinArbiter* arbiter_ = nullptr;
};

}  // namespace pinsim::mem
