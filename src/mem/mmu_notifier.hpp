#pragma once

#include "mem/types.hpp"

namespace pinsim::mem {

/// Analogue of the Linux `mmu_notifier` (merged in 2.6.27, the kernel the
/// paper runs on). A subsystem that holds references to user pages registers
/// one per address space; the VM calls `invalidate_range` *before* tearing
/// down translations for [start, end), so the subscriber can drop its pins.
///
/// Invalidations fire on: munmap, swap-out, page migration, and COW breaks —
/// the four events the paper lists as reasons a pinned translation can go
/// stale (§2.1, §3.1).
class MmuNotifier {
 public:
  virtual ~MmuNotifier() = default;

  /// Called synchronously before the VM invalidates [start, end).
  /// The subscriber must assume the physical frames behind this range are
  /// about to change or disappear and release any pins it holds inside it.
  virtual void invalidate_range(VirtAddr start, VirtAddr end) = 0;

  /// Called when the whole address space is being destroyed.
  virtual void release() {}
};

}  // namespace pinsim::mem
