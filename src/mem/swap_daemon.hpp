#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/address_space.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pinsim::mem {

/// kswapd analogue: wakes periodically and, when the frame pool is above the
/// high watermark, swaps out randomly chosen unpinned resident pages until
/// usage drops below the low watermark. Pinned pages are skipped (their
/// refcount protects them), so running this during communication stresses
/// exactly the invariant the paper's pinning exists to guarantee.
class SwapDaemon {
 public:
  struct Config {
    sim::Time period = 100 * sim::kMicrosecond;
    double high_watermark = 0.90;  // start reclaiming above this usage
    double low_watermark = 0.75;   // stop once below this
    std::uint64_t seed = 0xdae0115;
  };

  SwapDaemon(sim::Engine& eng, PhysicalMemory& pm, Config cfg);
  SwapDaemon(sim::Engine& eng, PhysicalMemory& pm)
      : SwapDaemon(eng, pm, Config()) {}
  ~SwapDaemon() { stop(); }
  SwapDaemon(const SwapDaemon&) = delete;
  SwapDaemon& operator=(const SwapDaemon&) = delete;

  /// Address spaces to scan. Not owned; caller keeps them alive while the
  /// daemon runs.
  void watch(AddressSpace* as);

  /// Starts the periodic scan.
  void start();
  void stop();

  /// One synchronous reclaim pass (also used by tests). Returns pages freed.
  std::size_t scan_once();

  [[nodiscard]] std::uint64_t total_reclaimed() const noexcept {
    return total_reclaimed_;
  }

 private:
  void tick();

  sim::Engine& eng_;
  PhysicalMemory& pm_;
  Config cfg_;
  std::vector<AddressSpace*> spaces_;
  sim::Rng rng_;
  bool running_ = false;
  sim::Engine::EventId pending_{};
  std::uint64_t total_reclaimed_ = 0;
  // Liveness token for the periodic tick (D7): a queued tick revalidates
  // through a weak copy, so a daemon destroyed mid-flight (or a missed
  // cancel) degrades to a no-op instead of a use-after-free.
  std::shared_ptr<void> alive_ = std::make_shared<int>(0);
};

}  // namespace pinsim::mem
