#include "baseline/userspace_regcache.hpp"

#include <algorithm>
#include <cstring>

namespace pinsim::baseline {

UserspaceRegCache::UserspaceRegCache(mem::AddressSpace& as, Config cfg)
    : as_(as), cfg_(cfg) {}

UserspaceRegCache::~UserspaceRegCache() { invalidate_all(); }

std::span<const mem::FrameId> UserspaceRegCache::get(mem::VirtAddr addr,
                                                     std::size_t len) {
  ++clock_;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->addr == addr && it->len == len) {
      ++stats_.hits;
      it->last_use = clock_;
      return it->frames;  // possibly stale: nobody told us about a free
    }
  }
  ++stats_.misses;
  Entry e;
  e.addr = addr;
  e.len = len;
  e.frames = as_.pin_range(addr, len);
  e.last_use = clock_;
  entries_.push_back(std::move(e));

  while (entries_.size() > cfg_.capacity) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->last_use < victim->last_use) victim = it;
    }
    ++stats_.evictions;
    drop(victim);
  }
  return entries_.back().frames;
}

void UserspaceRegCache::on_free_hook(mem::VirtAddr addr, std::size_t len) {
  ++stats_.hook_calls;
  const mem::VirtAddr lo = mem::page_floor(addr);
  const mem::VirtAddr hi = mem::page_ceil(addr + len);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const mem::VirtAddr e_lo = mem::page_floor(it->addr);
    const mem::VirtAddr e_hi = mem::page_ceil(it->addr + it->len);
    if (e_lo < hi && lo < e_hi) {
      ++stats_.hook_invalidations;
      auto dead = it++;
      drop(dead);
    } else {
      ++it;
    }
  }
}

void UserspaceRegCache::dma_read(std::span<const mem::FrameId> frames,
                                 std::size_t page_offset,
                                 std::span<std::byte> dst) const {
  std::size_t done = 0;
  std::size_t slot = page_offset / mem::kPageSize;
  std::size_t off = page_offset % mem::kPageSize;
  auto& pm = as_.physical();
  while (done < dst.size()) {
    const std::size_t chunk =
        std::min(dst.size() - done, mem::kPageSize - off);
    auto frame = pm.data(frames[slot]);
    std::memcpy(dst.data() + done, frame.data() + off, chunk);
    done += chunk;
    ++slot;
    off = 0;
  }
}

void UserspaceRegCache::drop(std::list<Entry>::iterator it) {
  mem::VirtAddr va = mem::page_floor(it->addr);
  for (mem::FrameId f : it->frames) {
    as_.unpin_page(va, f);
    va += mem::kPageSize;
  }
  entries_.erase(it);
}

void UserspaceRegCache::invalidate_all() {
  while (!entries_.empty()) drop(entries_.begin());
}

}  // namespace pinsim::baseline
