#include "baseline/pipelined.hpp"

#include <stdexcept>
#include <vector>

namespace pinsim::baseline {

namespace {

sim::Task<core::Status> chunked_send_impl(core::Library& lib,
                                          core::EndpointAddr dest,
                                          std::uint64_t match_base,
                                          mem::VirtAddr buf, std::size_t len,
                                          std::size_t chunk,
                                          std::size_t depth) {
  // Classic sender-side registration pipeline: at most `depth` chunks in
  // flight, so the pin of chunk k+1 overlaps the wire time of chunk k —
  // and nothing more. (MPICH-GM kept the pipeline shallow; that is what
  // the paper's §5 contrasts with driver-level overlap.)
  std::vector<core::RequestPtr> inflight;
  core::Status overall{true, false, len};
  std::uint64_t m = match_base;
  std::size_t off = 0;
  std::size_t drain = 0;
  while (off < len || drain < inflight.size()) {
    while (off < len && inflight.size() - drain < depth) {
      const std::size_t n = std::min(chunk, len - off);
      inflight.push_back(lib.isend(dest, m++, buf + off, n));
      off += n;
    }
    co_await inflight[drain]->wait();
    if (!inflight[drain]->status().ok) overall.ok = false;
    ++drain;
  }
  co_return overall;
}

sim::Task<core::Status> chunked_recv_impl(core::Library& lib,
                                          std::uint64_t match_base,
                                          mem::VirtAddr buf, std::size_t len,
                                          std::size_t chunk,
                                          std::size_t depth) {
  std::vector<core::RequestPtr> inflight;
  core::Status overall{true, false, len};
  std::uint64_t m = match_base;
  std::size_t off = 0;
  std::size_t drain = 0;
  while (off < len || drain < inflight.size()) {
    while (off < len && inflight.size() - drain < depth) {
      const std::size_t n = std::min(chunk, len - off);
      inflight.push_back(lib.irecv(m++, ~std::uint64_t{0}, buf + off, n));
      off += n;
    }
    co_await inflight[drain]->wait();
    if (!inflight[drain]->status().ok) overall.ok = false;
    ++drain;
  }
  co_return overall;
}

}  // namespace

sim::Task<core::Status> chunked_send(core::Library& lib,
                                     core::EndpointAddr dest,
                                     std::uint64_t match_base,
                                     mem::VirtAddr buf, std::size_t len,
                                     std::size_t chunk) {
  if (chunk == 0) throw std::invalid_argument("zero chunk size");
  return chunked_send_impl(lib, dest, match_base, buf, len, chunk,
                           /*depth=*/2);
}

sim::Task<core::Status> chunked_recv(core::Library& lib,
                                     std::uint64_t match_base,
                                     mem::VirtAddr buf, std::size_t len,
                                     std::size_t chunk) {
  if (chunk == 0) throw std::invalid_argument("zero chunk size");
  return chunked_recv_impl(lib, match_base, buf, len, chunk, /*depth=*/2);
}

}  // namespace pinsim::baseline
