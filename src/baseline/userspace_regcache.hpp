#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/malloc_sim.hpp"
#include "mem/types.hpp"

namespace pinsim::baseline {

/// The classic *user-space* registration cache the paper argues against
/// (§2.1, §5): the library caches (address, length) -> pinned translations
/// and relies on intercepting `free`/`munmap` symbols to invalidate them.
///
/// Two failure modes are modelled, matching the paper's criticism:
///  * interception can be unavailable (static linking, custom allocator):
///    frees go unseen, a reallocation at the same address reuses a *stale*
///    translation, and transfers silently read old bytes;
///  * when interception does work, the hook fires on **every** deallocation
///    — including tiny ones that never touch the network (hook_calls
///    counts the overhead the kernel-based scheme avoids).
class UserspaceRegCache {
 public:
  struct Config {
    std::size_t capacity = 64;  // cached registrations (LRU beyond)
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t hook_calls = 0;         // interception invocations
    std::uint64_t hook_invalidations = 0;  // entries actually dropped
  };

  UserspaceRegCache(mem::AddressSpace& as, Config cfg);
  UserspaceRegCache(mem::AddressSpace& as) : UserspaceRegCache(as, Config()) {}
  ~UserspaceRegCache();

  UserspaceRegCache(const UserspaceRegCache&) = delete;
  UserspaceRegCache& operator=(const UserspaceRegCache&) = delete;

  /// Returns pinned frames for [addr, addr+len), from the cache when
  /// possible. This is what the stack would hand the NIC.
  std::span<const mem::FrameId> get(mem::VirtAddr addr, std::size_t len);

  /// The interception hook: called by the wrapped allocator when `free`
  /// IS intercepted. Drops every cached registration overlapping the range.
  void on_free_hook(mem::VirtAddr addr, std::size_t len);

  /// Reads through a translation previously returned by get() — what a NIC
  /// DMA would fetch. If the cache is stale this returns stale bytes, which
  /// is precisely the corruption the test asserts on.
  void dma_read(std::span<const mem::FrameId> frames, std::size_t page_offset,
                std::span<std::byte> dst) const;

  void invalidate_all();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    mem::VirtAddr addr = 0;
    std::size_t len = 0;
    std::vector<mem::FrameId> frames;
    std::uint64_t last_use = 0;
  };

  void drop(std::list<Entry>::iterator it);

  mem::AddressSpace& as_;
  Config cfg_;
  std::list<Entry> entries_;
  std::uint64_t clock_ = 0;
  Stats stats_;
};

/// Allocator wrapper standing in for the intercepted malloc stack. With
/// `hooks_active == false` it behaves like a statically linked binary or a
/// custom allocator: frees bypass the cache's hook entirely.
class HookedHeap {
 public:
  HookedHeap(mem::MallocSim& heap, UserspaceRegCache& cache, bool hooks_active)
      : heap_(heap), cache_(cache), hooks_active_(hooks_active) {}

  [[nodiscard]] mem::VirtAddr malloc(std::size_t n) { return heap_.malloc(n); }

  void free(mem::VirtAddr p) {
    const std::size_t len = heap_.usable_size(p);
    if (hooks_active_) cache_.on_free_hook(p, len);
    heap_.free(p);
  }

 private:
  mem::MallocSim& heap_;
  UserspaceRegCache& cache_;
  bool hooks_active_;
};

}  // namespace pinsim::baseline
