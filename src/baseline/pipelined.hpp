#pragma once

#include <cstddef>
#include <cstdint>

#include "core/library.hpp"
#include "sim/task.hpp"

namespace pinsim::baseline {

/// MPICH-GM / Open MPI-style pipelined registration (paper §5): the large
/// buffer is split into chunks, each sent as its own message, so the pinning
/// of chunk k+1 overlaps the wire time of chunk k.
///
/// Run it under `regular_pinning_config()` — each chunk pins synchronously
/// at submission, which is exactly the old pipeline. The paper's criticism
/// is visible in the measurements: the first chunk's pin sits on the
/// critical path, every chunk pays its own rendezvous round-trip, and the
/// wire carries smaller messages — all of which the driver-level overlap
/// avoids.
///
/// `match_base` reserves `chunks` consecutive match values.
[[nodiscard]] sim::Task<core::Status> chunked_send(
    core::Library& lib, core::EndpointAddr dest, std::uint64_t match_base,
    mem::VirtAddr buf, std::size_t len, std::size_t chunk);

[[nodiscard]] sim::Task<core::Status> chunked_recv(core::Library& lib,
                                                   std::uint64_t match_base,
                                                   mem::VirtAddr buf,
                                                   std::size_t len,
                                                   std::size_t chunk);

}  // namespace pinsim::baseline
