#pragma once

#include <cstdint>

namespace pinsim::core {

/// Per-endpoint instrumentation. The §4.3 overlap-miss probability and the
/// retransmission behaviour reported in the paper are computed from these.
struct Counters {
  // Pinning activity (driver side).
  std::uint64_t pin_ops = 0;            // whole-region pin operations started
  std::uint64_t pages_pinned = 0;
  std::uint64_t unpin_ops = 0;
  std::uint64_t pages_unpinned = 0;
  std::uint64_t repins = 0;             // region pinned again after losing pins
  std::uint64_t notifier_invalidations = 0;  // regions unpinned by MMU notifier
  std::uint64_t pressure_unpins = 0;         // regions unpinned for memory pressure
  std::uint64_t pin_failures = 0;            // region pin ultimately failed

  // Memory-pressure degradation (pin denial, quota, retry/backoff). The
  // acceptance bar for chaos runs: pins_denied and pin_retry_exhausted move,
  // everything still ends in clean completions or ok=false aborts.
  std::uint64_t pins_denied = 0;         // page pins refused (quota/injected)
  std::uint64_t pin_retries = 0;         // chunk retries after a denial
  std::uint64_t pin_retry_exhausted = 0; // regions failed after the budget
  std::uint64_t pin_chunk_shrinks = 0;   // chunks shrunk to the quota headroom
  std::uint64_t pin_fail_resets = 0;     // kFailed regions retried on next use
  std::uint64_t pin_inval_restarts = 0;  // in-flight pin jobs restarted by
                                         // a notifier invalidation

  // Overlapped-pinning behaviour (§4.3).
  std::uint64_t region_accesses = 0;    // packet-driven reads/writes of regions
  std::uint64_t overlap_misses = 0;     // access hit a not-yet-pinned page

  // Protocol.
  std::uint64_t eager_sent = 0;
  std::uint64_t eager_completed = 0;
  std::uint64_t rndv_sent = 0;
  std::uint64_t rndv_received = 0;
  std::uint64_t pulls_sent = 0;
  std::uint64_t pull_replies_sent = 0;
  std::uint64_t notifies_sent = 0;
  std::uint64_t frames_dropped_on_miss = 0;
  std::uint64_t pull_rerequests = 0;     // optimistic gap-driven re-requests
  std::uint64_t retransmit_timeouts = 0;
  std::uint64_t duplicate_frames = 0;
  std::uint64_t aborts = 0;

  // Fault tolerance (frame checksum, duplicate suppression, retry budget).
  std::uint64_t frames_corrupted = 0;      // frames that failed to decode
  std::uint64_t checksum_drops = 0;        // checksum mismatch or bounds abuse
  std::uint64_t duplicates_suppressed = 0; // dup frames discarded side-effect-free
  std::uint64_t retry_exhausted = 0;       // requests given up after the budget

  // Component lifecycle (crash/restart injection). Crash history survives
  // the endpoint: the driver keeps per-slot totals and stamps them into the
  // next incarnation's counters at open_endpoint, so the report after a
  // restart still shows the slot's full story.
  std::uint64_t lifecycle_crashes = 0;       // times this slot was killed
  std::uint64_t lifecycle_restarts = 0;      // times it came back
  std::uint64_t lifecycle_reclaimed_pages = 0;  // pins swept on those crashes
  std::uint64_t fenced_stale_frames = 0;     // stale-epoch frames dropped
  std::uint64_t heartbeat_timeouts = 0;      // peers declared dead by watchdog

  // Cross-tenant pin arbitration (mem/pin_arbiter.hpp): how this tenant
  // fared against the other processes sharing the host's pin quota.
  std::uint64_t tenant_arb_requests = 0;   // headroom requests to the arbiter
  std::uint64_t tenant_arb_grants = 0;     // requests satisfied by shedding
  std::uint64_t tenant_sheds_suffered = 0; // regions shed for another tenant
  std::uint64_t tenant_floor_protected = 0;  // times the fair-share floor
                                             // shielded this tenant's pins

  /// §4.3's headline metric: fraction of packet-driven region accesses that
  /// found their page not pinned yet.
  [[nodiscard]] double overlap_miss_rate() const noexcept {
    return region_accesses == 0 ? 0.0
                                : static_cast<double>(overlap_misses) /
                                      static_cast<double>(region_accesses);
  }
};

}  // namespace pinsim::core
