#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/endpoint.hpp"
#include "core/region_cache.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace pinsim::core {

/// Thrown synchronously (in the caller's context, before anything is
/// submitted) when a send targets a node the watchdog has declared dead.
/// MX semantics for a known-dead peer: fail fast instead of burning the
/// whole retry budget against silence.
class PeerDeadError : public std::runtime_error {
 public:
  explicit PeerDeadError(net::NodeId node)
      : std::runtime_error("isend to a dead peer node"), node_(node) {}
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }

 private:
  net::NodeId node_;
};

/// A user-visible communication request. The owner keeps it alive until it
/// completes; coroutines `co_await req->wait()`.
class Request {
 public:
  explicit Request(sim::Engine& eng) : gate_(eng) {}

  [[nodiscard]] auto wait() { return gate_.wait(); }
  [[nodiscard]] bool completed() const noexcept { return completed_; }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

 private:
  friend class Library;
  enum class Kind { kSend, kRecv };

  void complete(Status st) {
    if (completed_) return;
    status_ = st;
    completed_ = true;
    gate_.open();
  }

  sim::Gate gate_;
  Status status_;
  bool completed_ = false;
  RegionId region_ = kInvalidRegion;
  Kind kind_ = Kind::kSend;
  bool submitted_ = false;         // the driver knows about it
  bool cancel_requested_ = false;  // cancel arrived pre-submission
  std::uint32_t send_seq_ = 0;
  std::uint64_t recv_id_ = 0;
};

using RequestPtr = std::unique_ptr<Request>;

/// The user-space Open-MX library (paper Figure 4): manages the region cache
/// and translates application send/recv calls into endpoint ioctls. It knows
/// which regions *exist*, never which are pinned — that stays in the driver.
class Library {
 public:
  explicit Library(Endpoint& ep);

  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;
  ~Library();

  /// Nonblocking send. Messages up to the eager threshold are copied and
  /// sent eagerly; larger ones go through region declaration (cache) and the
  /// rendezvous protocol.
  [[nodiscard]] RequestPtr isend(EndpointAddr dest, std::uint64_t match,
                                 mem::VirtAddr buf, std::size_t len,
                                 bool blocking_hint = false);

  /// Vectorial (iovec) variant: the message is the concatenation of the
  /// segments; large messages declare one vectorial region (paper §3.2:
  /// "regions may be vectorial").
  [[nodiscard]] RequestPtr isendv(EndpointAddr dest, std::uint64_t match,
                                  std::vector<Segment> segments,
                                  bool blocking_hint = false);

  /// Nonblocking receive. A region is declared (via the cache) when the
  /// posted buffer is large enough to receive rendezvous traffic.
  [[nodiscard]] RequestPtr irecv(std::uint64_t match, std::uint64_t mask,
                                 mem::VirtAddr buf, std::size_t len,
                                 bool blocking_hint = false);

  [[nodiscard]] RequestPtr irecvv(std::uint64_t match, std::uint64_t mask,
                                  std::vector<Segment> segments,
                                  bool blocking_hint = false);

  /// Cancels a pending request (mx_cancel semantics): succeeds for receives
  /// that have not matched and sends that have not hit the wire. On success
  /// the request completes with ok == false. Returns false when it is too
  /// late (the request will complete normally).
  bool cancel(Request& req);

  /// Blocking (coroutine) conveniences.
  [[nodiscard]] sim::Task<Status> send(EndpointAddr dest, std::uint64_t match,
                                       mem::VirtAddr buf, std::size_t len);
  [[nodiscard]] sim::Task<Status> recv(std::uint64_t match, std::uint64_t mask,
                                       mem::VirtAddr buf, std::size_t len);

  [[nodiscard]] Endpoint& endpoint() noexcept { return ep_; }
  [[nodiscard]] EndpointAddr addr() const noexcept { return ep_.addr(); }
  [[nodiscard]] RegionCache& cache() noexcept { return cache_; }
  [[nodiscard]] Counters& counters() noexcept { return ep_.counters(); }

 private:
  /// User-space cost of a cache lookup (the small overhead §4.2 mentions).
  static constexpr sim::Time kCacheLookupCost = 200;

  [[nodiscard]] static std::size_t total_length(
      const std::vector<Segment>& segments) noexcept;

  void submit_send(Request* r, EndpointAddr dest, std::uint64_t match,
                   std::vector<Segment> segments, bool blocking_hint);
  void submit_recv(Request* r, std::uint64_t match, std::uint64_t mask,
                   std::vector<Segment> segments, bool blocking_hint);

  /// Liveness token for submission closures queued on the process core: a
  /// process killed with submissions still queued (crash injection) must not
  /// let them fire into the freed library. Such requests never complete;
  /// their owner drops them after the kill.
  std::shared_ptr<void> alive_ = std::make_shared<char>();

  Endpoint& ep_;
  sim::Engine& eng_;
  RegionCache cache_;
};

}  // namespace pinsim::core
