#include "core/region_cache.hpp"

#include <cassert>
#include <stdexcept>

namespace pinsim::core {

std::size_t RegionCache::KeyHash::operator()(const Key& k) const noexcept {
  std::size_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const Segment& s : k.segments) {
    mix(s.addr);
    mix(s.len);
  }
  return h;
}

RegionCache::RegionCache(CacheConfig cfg, DeclareFn declare,
                         UndeclareFn undeclare)
    : cfg_(cfg), declare_(std::move(declare)), undeclare_(std::move(undeclare)) {
  assert(declare_ && undeclare_);
}

RegionCache::~RegionCache() { clear(); }

RegionId RegionCache::acquire(const std::vector<Segment>& segments) {
  if (segments.empty()) throw std::invalid_argument("empty segment list");
  Key key{segments};

  if (!cfg_.enabled) {
    ++stats_.misses;
    return declare_(segments);  // caller's release() undeclares
  }

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    Entry& e = it->second;
    if (e.in_lru) {
      lru_.erase(e.lru_pos);
      e.in_lru = false;
    }
    ++e.uses;
    return e.id;
  }

  ++stats_.misses;
  const RegionId id = declare_(segments);
  Entry e;
  e.id = id;
  e.uses = 1;
  entries_.emplace(key, e);
  by_id_.emplace(id, std::move(key));
  // A new entry may push us over capacity; evict idle LRU entries.
  evict_down_to(cfg_.capacity);
  return id;
}

void RegionCache::release(RegionId id) {
  if (!cfg_.enabled) {
    undeclare_(id);
    return;
  }
  auto bid = by_id_.find(id);
  if (bid == by_id_.end()) throw std::invalid_argument("release of unknown region");
  auto it = entries_.find(bid->second);
  assert(it != entries_.end());
  Entry& e = it->second;
  assert(e.uses > 0);
  if (--e.uses == 0) {
    lru_.push_front(bid->second);
    e.lru_pos = lru_.begin();
    e.in_lru = true;
    evict_down_to(cfg_.capacity);
  }
}

void RegionCache::evict_down_to(std::size_t target) {
  while (entries_.size() > target && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    assert(it != entries_.end() && it->second.uses == 0);
    ++stats_.evictions;
    undeclare_(it->second.id);
    by_id_.erase(it->second.id);
    entries_.erase(it);
  }
}

void RegionCache::clear() { evict_down_to(0); }

}  // namespace pinsim::core
