#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace pinsim::core {

/// MXoE-like wire protocol. Packets are serialized to real bytes inside
/// Ethernet frames (little-endian, bounds-checked decode), so protocol tests
/// exercise an actual wire format rather than passing objects around.
///
/// Large-message flow (paper Figure 2): RNDV announces a pinned/declared
/// send region; the receiver pulls blocks with PULL, the sender answers with
/// PULL_REPLY frames read straight out of the pinned region; NOTIFY releases
/// the sender. EAGER carries small (< 32 kB) messages inline.
enum class PacketType : std::uint8_t {
  kEager = 1,
  kEagerAck = 2,
  kRndv = 3,
  kPull = 4,
  kPullReply = 5,
  kNotify = 6,
  kNotifyAck = 7,
  kAbort = 8,
};

[[nodiscard]] const char* packet_type_name(PacketType t) noexcept;

/// Endpoint demultiplexing within a node (like an MX endpoint id).
struct PacketHeader {
  PacketType type{};
  std::uint8_t src_ep = 0;
  std::uint8_t dst_ep = 0;
};

/// Small message fragment. `seq` identifies the message per
/// (node, src_ep, dst_ep) flow for reassembly, acknowledgement and
/// duplicate suppression.
struct EagerBody {
  std::uint64_t match = 0;
  std::uint32_t msg_len = 0;
  std::uint32_t frag_offset = 0;
  std::uint32_t seq = 0;
  std::vector<std::byte> data;
};

struct EagerAckBody {
  std::uint32_t seq = 0;
};

/// Rendezvous: "message `seq`, `msg_len` bytes, readable from my region
/// `region`". The sender's buffer may not be pinned yet (overlapped mode).
struct RndvBody {
  std::uint64_t match = 0;
  std::uint64_t msg_len = 0;
  std::uint32_t region = 0;
  std::uint32_t seq = 0;
};

/// Receiver-driven block request against the sender's region.
struct PullBody {
  std::uint32_t region = 0;  // sender's region id
  std::uint32_t handle = 0;  // receiver's pull-state id, echoed in replies
  std::uint64_t offset = 0;  // absolute message offset
  std::uint32_t len = 0;     // block length
  std::uint32_t seq = 0;     // sender's request seq (acks the RNDV)
};

struct PullReplyBody {
  std::uint32_t handle = 0;
  std::uint64_t offset = 0;  // absolute message offset of this frame
  std::vector<std::byte> data;
};

/// Transfer complete: sender may release its resources.
struct NotifyBody {
  std::uint32_t seq = 0;     // sender's request seq (from the RNDV)
  std::uint32_t handle = 0;  // receiver's pull handle (for the ack)
};

struct NotifyAckBody {
  std::uint32_t handle = 0;
};

/// Sender aborts a rendezvous (e.g. pinning failed on an invalid segment).
struct AbortBody {
  std::uint32_t seq = 0;
};

using PacketBody =
    std::variant<EagerBody, EagerAckBody, RndvBody, PullBody, PullReplyBody,
                 NotifyBody, NotifyAckBody, AbortBody>;

struct Packet {
  PacketHeader header;
  PacketBody body;

  [[nodiscard]] PacketType type() const noexcept { return header.type; }
};

class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what)
      : std::runtime_error("wire format: " + what) {}
};

/// The frame checksum did not match: the payload was corrupted in flight.
/// Distinct from a plain parse error so the driver can count checksum drops
/// separately (the retransmission machinery recovers either way).
class WireChecksumError : public WireFormatError {
 public:
  WireChecksumError() : WireFormatError("checksum mismatch") {}
};

/// Trailing frame checksum appended by encode() and verified by decode().
inline constexpr std::size_t kChecksumBytes = 4;

/// CRC-32 (IEEE 802.3 polynomial) over `bytes`. Exposed so tests and fault
/// tooling can craft or verify frames by hand.
[[nodiscard]] std::uint32_t frame_checksum(
    std::span<const std::byte> bytes) noexcept;

/// Serializes a packet (header + body + payload + trailing CRC-32) into
/// frame payload bytes. The header's `type` field is taken from the body
/// alternative.
[[nodiscard]] std::vector<std::byte> encode(const Packet& p);

/// Parses frame payload bytes. Throws WireChecksumError when the trailing
/// CRC does not match, and WireFormatError on truncated or malformed input.
[[nodiscard]] Packet decode(std::span<const std::byte> bytes);

/// Serialized size of a packet with `data_bytes` of payload, for MTU math.
/// Includes the trailing checksum.
[[nodiscard]] std::size_t encoded_overhead(PacketType t) noexcept;

}  // namespace pinsim::core
