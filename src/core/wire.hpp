#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "mem/pool.hpp"
#include "net/frame.hpp"

namespace pinsim::core {

/// Process-wide recycling pool for frame payload buffers. encode() draws
/// its output vector from here and DataChunk returns its backing on
/// destruction, so steady-state traffic stops allocating per frame. The
/// simulator is single-threaded; the pool is not synchronized.
[[nodiscard]] mem::BufferPool& frame_buffers();

/// Owning view of a packet's bulk data: a backing buffer plus an
/// (offset, length) window into it.
///
/// The receive path used to copy every EAGER/PULL_REPLY payload out of the
/// frame bytes into a fresh vector during decode. A DataChunk instead
/// *adopts* the whole frame payload and points at the data bytes inside it
/// (the CRC trailer makes the window trustworthy), so the only remaining
/// copy on the hot receive path is the one the simulated DMA semantics
/// require (Region::copy_in). The vector-like surface (resize/assign/
/// operator[]/iterators) keeps packet-crafting tests and the send path,
/// which still materialize their own bytes, unchanged.
///
/// The backing buffer is returned to frame_buffers() on destruction.
class DataChunk {
 public:
  DataChunk() = default;
  /// Wraps a whole buffer (offset 0). Implicit so `body.data = vector` at
  /// packet-crafting sites keeps working.
  DataChunk(std::vector<std::byte> bytes)  // NOLINT(google-explicit-constructor)
      : backing_(std::move(bytes)), len_(backing_.size()) {}
  /// `n` copies of `value` (vector's fill constructor, for packet crafting).
  DataChunk(std::size_t n, std::byte value) { assign(n, value); }

  /// Takes ownership of `backing` and views `[off, off + len)` of it.
  [[nodiscard]] static DataChunk adopt(std::vector<std::byte>&& backing,
                                       std::size_t off, std::size_t len) {
    DataChunk c;
    c.backing_ = std::move(backing);
    c.off_ = off;
    c.len_ = len;
    return c;
  }

  ~DataChunk() { recycle(); }

  /// Copies duplicate only the viewed window, not the whole frame.
  DataChunk(const DataChunk& other) { assign_span(other.span()); }
  DataChunk& operator=(const DataChunk& other) {
    if (this != &other) assign_span(other.span());
    return *this;
  }

  DataChunk(DataChunk&& other) noexcept
      : backing_(std::move(other.backing_)), off_(other.off_), len_(other.len_) {
    other.backing_.clear();
    other.off_ = 0;
    other.len_ = 0;
  }
  DataChunk& operator=(DataChunk&& other) noexcept {
    if (this != &other) {
      recycle();
      backing_ = std::move(other.backing_);
      off_ = other.off_;
      len_ = other.len_;
      other.backing_.clear();
      other.off_ = 0;
      other.len_ = 0;
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] const std::byte* data() const noexcept {
    return backing_.data() + off_;
  }
  [[nodiscard]] std::byte* data() noexcept { return backing_.data() + off_; }
  [[nodiscard]] const std::byte* begin() const noexcept { return data(); }
  [[nodiscard]] const std::byte* end() const noexcept { return data() + len_; }
  [[nodiscard]] std::byte* begin() noexcept { return data(); }
  [[nodiscard]] std::byte* end() noexcept { return data() + len_; }
  [[nodiscard]] const std::byte& operator[](std::size_t i) const noexcept {
    return backing_[off_ + i];
  }
  [[nodiscard]] std::byte& operator[](std::size_t i) noexcept {
    return backing_[off_ + i];
  }

  [[nodiscard]] std::span<const std::byte> span() const noexcept {
    return {data(), len_};
  }
  operator std::span<const std::byte>() const noexcept {  // NOLINT
    return span();
  }
  operator std::span<std::byte>() noexcept {  // NOLINT
    return {data(), len_};
  }

  /// Grows/shrinks the window; compacts an adopted view first so indices
  /// stay zero-based. New bytes are value-initialized.
  void resize(std::size_t n) {
    compact();
    backing_.resize(n);
    len_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(last - first);
    if (n == 0) {
      recycle();
      return;
    }
    assign_span({&*first, n});
  }
  void assign(std::size_t n, std::byte value) {
    recycle();
    backing_ = frame_buffers().acquire(n);
    std::fill(backing_.begin(), backing_.end(), value);
    off_ = 0;
    len_ = n;
  }

  friend bool operator==(const DataChunk& a, const DataChunk& b) {
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void assign_span(std::span<const std::byte> src) {
    // Self-assignment-safe only because callers never alias; recycle first
    // would invalidate src, so stage through a pool buffer.
    std::vector<std::byte> fresh = frame_buffers().acquire(src.size());
    std::copy(src.begin(), src.end(), fresh.begin());
    recycle();
    backing_ = std::move(fresh);
    off_ = 0;
    len_ = backing_.size();
  }
  void compact() {
    if (off_ == 0) {
      backing_.resize(len_);
      return;
    }
    std::copy(backing_.begin() + static_cast<std::ptrdiff_t>(off_),
              backing_.begin() + static_cast<std::ptrdiff_t>(off_ + len_),
              backing_.begin());
    backing_.resize(len_);
    off_ = 0;
  }
  void recycle() {
    if (!backing_.empty() || backing_.capacity() != 0) {
      frame_buffers().release(std::move(backing_));
      backing_.clear();
    }
    off_ = 0;
    len_ = 0;
  }

  std::vector<std::byte> backing_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

/// MXoE-like wire protocol. Packets are serialized to real bytes inside
/// Ethernet frames (little-endian, bounds-checked decode), so protocol tests
/// exercise an actual wire format rather than passing objects around.
///
/// Large-message flow (paper Figure 2): RNDV announces a pinned/declared
/// send region; the receiver pulls blocks with PULL, the sender answers with
/// PULL_REPLY frames read straight out of the pinned region; NOTIFY releases
/// the sender. EAGER carries small (< 32 kB) messages inline.
enum class PacketType : std::uint8_t {
  kEager = 1,
  kEagerAck = 2,
  kRndv = 3,
  kPull = 4,
  kPullReply = 5,
  kNotify = 6,
  kNotifyAck = 7,
  kAbort = 8,
};

[[nodiscard]] const char* packet_type_name(PacketType t) noexcept;

/// Endpoint demultiplexing within a node (like an MX endpoint id), plus the
/// incarnation epochs that fence frames across endpoint crash/restart
/// cycles: `src_epoch` is the sender's current incarnation (endpoints are
/// born at epoch 1 and every close bumps the slot's epoch), `dst_epoch` the
/// sender's belief about the destination's incarnation. 0 means "unknown" —
/// a frame with dst_epoch 0 is never fenced (first contact), and any other
/// mismatch against the receiver's live epoch is stale pre-crash traffic
/// dropped at the driver.
struct PacketHeader {
  PacketType type{};
  std::uint8_t src_ep = 0;
  std::uint8_t dst_ep = 0;
  std::uint8_t src_epoch = 0;
  std::uint8_t dst_epoch = 0;
};

/// Small message fragment. `seq` identifies the message per
/// (node, src_ep, dst_ep) flow for reassembly, acknowledgement and
/// duplicate suppression.
struct EagerBody {
  std::uint64_t match = 0;
  std::uint32_t msg_len = 0;
  std::uint32_t frag_offset = 0;
  std::uint32_t seq = 0;
  DataChunk data;
};

struct EagerAckBody {
  std::uint32_t seq = 0;
};

/// Rendezvous: "message `seq`, `msg_len` bytes, readable from my region
/// `region`". The sender's buffer may not be pinned yet (overlapped mode).
struct RndvBody {
  std::uint64_t match = 0;
  std::uint64_t msg_len = 0;
  std::uint32_t region = 0;
  std::uint32_t seq = 0;
};

/// Receiver-driven block request against the sender's region.
struct PullBody {
  std::uint32_t region = 0;  // sender's region id
  std::uint32_t handle = 0;  // receiver's pull-state id, echoed in replies
  std::uint64_t offset = 0;  // absolute message offset
  std::uint32_t len = 0;     // block length
  std::uint32_t seq = 0;     // sender's request seq (acks the RNDV)
};

struct PullReplyBody {
  std::uint32_t handle = 0;
  std::uint64_t offset = 0;  // absolute message offset of this frame
  DataChunk data;
};

/// Transfer complete: sender may release its resources.
struct NotifyBody {
  std::uint32_t seq = 0;     // sender's request seq (from the RNDV)
  std::uint32_t handle = 0;  // receiver's pull handle (for the ack)
};

struct NotifyAckBody {
  std::uint32_t handle = 0;
};

/// Sender aborts a rendezvous (e.g. pinning failed on an invalid segment).
struct AbortBody {
  std::uint32_t seq = 0;
};

using PacketBody =
    std::variant<EagerBody, EagerAckBody, RndvBody, PullBody, PullReplyBody,
                 NotifyBody, NotifyAckBody, AbortBody>;

struct Packet {
  PacketHeader header;
  PacketBody body;

  [[nodiscard]] PacketType type() const noexcept { return header.type; }
};

class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what)
      : std::runtime_error("wire format: " + what) {}
};

/// The frame checksum did not match: the payload was corrupted in flight.
/// Distinct from a plain parse error so the driver can count checksum drops
/// separately (the retransmission machinery recovers either way).
class WireChecksumError : public WireFormatError {
 public:
  WireChecksumError() : WireFormatError("checksum mismatch") {}
};

/// Trailing frame checksum appended by encode() and verified by decode().
inline constexpr std::size_t kChecksumBytes = 4;

/// CRC-32 (IEEE 802.3 polynomial) over `bytes`. Exposed so tests and fault
/// tooling can craft or verify frames by hand.
[[nodiscard]] std::uint32_t frame_checksum(
    std::span<const std::byte> bytes) noexcept;

/// Serializes a packet (header + body + payload + trailing CRC-32) into
/// frame payload bytes. The header's `type` field is taken from the body
/// alternative.
[[nodiscard]] std::vector<std::byte> encode(const Packet& p);

/// Parses frame payload bytes. Throws WireChecksumError when the trailing
/// CRC does not match, and WireFormatError on truncated or malformed input.
/// Bulk data (EAGER/PULL_REPLY) is copied out of `bytes`; the receive hot
/// path uses decode_frame() instead to avoid that copy.
[[nodiscard]] Packet decode(std::span<const std::byte> bytes);

/// Like decode(), but zero-copy for bulk data: on success the frame's
/// payload vector is adopted as the DataChunk backing of an EAGER or
/// PULL_REPLY body (recycled into frame_buffers() for the other packet
/// types), leaving `frame.payload` empty. On throw the payload is left
/// intact so the caller can still attribute the drop from the raw bytes.
[[nodiscard]] Packet decode_frame(net::Frame& frame);

/// Serialized size of a packet with `data_bytes` of payload, for MTU math.
/// Includes the trailing checksum.
[[nodiscard]] std::size_t encoded_overhead(PacketType t) noexcept;

}  // namespace pinsim::core
