#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/types.hpp"

namespace pinsim::core {

using RegionId = std::uint32_t;
inline constexpr RegionId kInvalidRegion = ~RegionId{0};

/// One contiguous piece of a (possibly vectorial) user region.
struct Segment {
  mem::VirtAddr addr = 0;
  std::size_t len = 0;

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Driver-side state of a declared user region (paper §3.1).
///
/// Declaration only records the segment list; whether pages are pinned is
/// the driver's private business. Pages pin strictly in address order, so a
/// single frontier describes progress — the property overlapped pinning
/// leans on: in-order pull traffic touches offsets behind the frontier.
///
/// Data accessors go straight to the pinned frames (the kernel's direct
/// mapping), never through the page table: if a page is not pinned the
/// access *fails* with kNotPinned and the caller drops the packet. That is
/// the paper's §3.3 drop-on-miss design, and it is also what makes the
/// accessors safe from interrupt context.
class Region {
 public:
  enum class PinState { kUnpinned, kPinning, kPinned, kFailed };
  enum class AccessResult { kOk, kNotPinned };

  Region(RegionId id, mem::AddressSpace& as, std::vector<Segment> segments);

  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  [[nodiscard]] RegionId id() const noexcept { return id_; }
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] std::size_t total_length() const noexcept { return total_; }
  [[nodiscard]] std::size_t page_count() const noexcept {
    return slots_.size();
  }

  [[nodiscard]] PinState state() const noexcept { return state_; }
  void set_state(PinState s) noexcept { state_ = s; }
  [[nodiscard]] bool fully_pinned() const noexcept {
    return frontier_ == slots_.size();
  }
  [[nodiscard]] std::size_t pinned_pages() const noexcept { return frontier_; }
  [[nodiscard]] std::size_t unpinned_pages() const noexcept {
    return slots_.size() - frontier_;
  }

  /// Virtual address of the next page to pin (frontier page). Precondition:
  /// !fully_pinned().
  [[nodiscard]] mem::VirtAddr next_unpinned_va() const;

  /// Virtual address of page slot `idx`. Slots are not VA-contiguous across
  /// segments of a vectorial region.
  [[nodiscard]] mem::VirtAddr page_va_at(std::size_t idx) const;

  /// Records that the next `frames.size()` pages (from the frontier, in
  /// order) are now pinned with these frames.
  void commit_pins(std::span<const mem::FrameId> frames);

  /// Forgets every pin and returns the (va, frame) pairs so the caller can
  /// release them through the address space. Used on memory pressure and
  /// undeclare.
  [[nodiscard]] std::vector<std::pair<mem::VirtAddr, mem::FrameId>>
  take_all_pins();

  /// Range-granular variant for MMU-notifier invalidation: forgets the pins
  /// of slots [slot, frontier) and truncates the frontier to `slot`, keeping
  /// every pin below it valid (pages pin strictly in order, so the
  /// contiguous-frontier invariant survives). No-op when `slot` is at or
  /// past the frontier.
  [[nodiscard]] std::vector<std::pair<mem::VirtAddr, mem::FrameId>>
  take_pins_from(std::size_t slot);

  /// Lowest slot whose page intersects [start, end), or npos.
  [[nodiscard]] std::size_t first_slot_overlapping(mem::VirtAddr start,
                                                   mem::VirtAddr end) const;
  static constexpr std::size_t npos = ~std::size_t{0};

  /// True if [start, end) intersects any page of this region.
  [[nodiscard]] bool overlaps(mem::VirtAddr start, mem::VirtAddr end) const;

  /// Copies region bytes [offset, offset+dst.size()) into `dst` (send path:
  /// region -> wire). Fails with kNotPinned if any touched page is not
  /// pinned; nothing is copied in that case.
  [[nodiscard]] AccessResult copy_out(std::size_t offset,
                                      std::span<std::byte> dst) const;

  /// Copies `src` into region bytes at `offset` (receive path: wire ->
  /// region). All-or-nothing like copy_out.
  [[nodiscard]] AccessResult copy_in(std::size_t offset,
                                     std::span<const std::byte> src);

  [[nodiscard]] bool range_pinned(std::size_t offset, std::size_t len) const;

  /// Page-table-based accessors for PinMode::kNone (the QsNet-style no-pin
  /// bound): translations are resolved through the address space on every
  /// access, faulting pages in; they never miss.
  void copy_out_paged(std::size_t offset, std::span<std::byte> dst);
  void copy_in_paged(std::size_t offset, std::span<const std::byte> src);

  /// Active communications currently using this region. The cache never
  /// evicts and pressure never unpins a region in use.
  void add_use() noexcept { ++use_count_; }
  void drop_use() noexcept { --use_count_; }
  [[nodiscard]] std::uint32_t use_count() const noexcept { return use_count_; }

  [[nodiscard]] mem::AddressSpace& address_space() noexcept { return as_; }

 private:
  struct Slot {
    mem::VirtAddr page_va = 0;
    mem::FrameId frame = mem::kInvalidFrame;
    bool pinned = false;
  };

  /// Maps a region offset to (slot index, offset inside that page, bytes
  /// available in this page within the segment).
  struct Location {
    std::size_t slot;
    std::size_t page_off;
    std::size_t chunk;  // contiguous bytes available at this location
  };
  [[nodiscard]] Location locate(std::size_t offset,
                                std::size_t remaining) const;

  RegionId id_;
  mem::AddressSpace& as_;
  std::vector<Segment> segments_;
  std::vector<std::size_t> seg_offset_;     // cumulative start offset per segment
  std::vector<std::size_t> seg_slot_base_;  // first slot index per segment
  std::vector<Slot> slots_;
  std::size_t total_ = 0;
  std::size_t frontier_ = 0;  // slots_[0..frontier_) are pinned
  PinState state_ = PinState::kUnpinned;
  std::uint32_t use_count_ = 0;
};

}  // namespace pinsim::core
