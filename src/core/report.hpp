#pragma once

#include <string>

#include "core/host.hpp"

namespace pinsim::core {

/// Human-readable diagnostic block for one process: protocol counters,
/// pinning activity, region-cache behaviour and the core's time breakdown.
/// Examples and ad-hoc experiments print this instead of hand-rolling
/// printf choreography.
[[nodiscard]] std::string format_report(Host::Process& process, Host& host);

/// One-line summary (throughput-style dashboards).
[[nodiscard]] std::string format_summary_line(Host::Process& process);

/// Machine-readable twin of `format_report`: one JSON object with the same
/// counters, suitable for embedding in a run report next to the obs-layer
/// latency histograms. The string is a complete object (no trailing comma).
[[nodiscard]] std::string format_json_report(Host::Process& process,
                                             Host& host);

}  // namespace pinsim::core
