#include "core/report.hpp"

#include <cstdarg>
#include <cstdio>
#include <limits>
#include <string_view>

#include "obs/json.hpp"

namespace pinsim::core {

namespace {

void line(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

}  // namespace

std::string format_report(Host::Process& p, Host& host) {
  const Counters& c = p.lib.counters();
  const auto& cache = p.lib.cache().stats();
  const auto& core_stats = p.core.stats();

  std::string out;
  line(out, "endpoint %u @ node %u", static_cast<unsigned>(p.ep.id()),
       static_cast<unsigned>(p.addr().node));
  line(out, "  protocol: eager=%llu rndv=%llu pulls=%llu replies=%llu "
            "notifies=%llu",
       static_cast<unsigned long long>(c.eager_sent),
       static_cast<unsigned long long>(c.rndv_sent),
       static_cast<unsigned long long>(c.pulls_sent),
       static_cast<unsigned long long>(c.pull_replies_sent),
       static_cast<unsigned long long>(c.notifies_sent));
  line(out, "  receive side: eager_done=%llu rndv_rx=%llu",
       static_cast<unsigned long long>(c.eager_completed),
       static_cast<unsigned long long>(c.rndv_received));
  line(out, "  reliability: rerequests=%llu timeouts=%llu dups=%llu "
            "aborts=%llu",
       static_cast<unsigned long long>(c.pull_rerequests),
       static_cast<unsigned long long>(c.retransmit_timeouts),
       static_cast<unsigned long long>(c.duplicate_frames),
       static_cast<unsigned long long>(c.aborts));
  line(out, "  faults: corrupted=%llu checksum_drops=%llu dup_suppressed=%llu "
            "retry_exhausted=%llu miss_drops=%llu",
       static_cast<unsigned long long>(c.frames_corrupted),
       static_cast<unsigned long long>(c.checksum_drops),
       static_cast<unsigned long long>(c.duplicates_suppressed),
       static_cast<unsigned long long>(c.retry_exhausted),
       static_cast<unsigned long long>(c.frames_dropped_on_miss));
  line(out, "  pinning: ops=%llu pages=%llu unpins=%llu pages_unpinned=%llu "
            "repins=%llu failures=%llu",
       static_cast<unsigned long long>(c.pin_ops),
       static_cast<unsigned long long>(c.pages_pinned),
       static_cast<unsigned long long>(c.unpin_ops),
       static_cast<unsigned long long>(c.pages_unpinned),
       static_cast<unsigned long long>(c.repins),
       static_cast<unsigned long long>(c.pin_failures));
  line(out, "  invalidations: notifier=%llu pressure=%llu",
       static_cast<unsigned long long>(c.notifier_invalidations),
       static_cast<unsigned long long>(c.pressure_unpins));
  line(out, "  pressure: denied=%llu retries=%llu retry_exhausted=%llu "
            "shrinks=%llu failed_resets=%llu inval_restarts=%llu",
       static_cast<unsigned long long>(c.pins_denied),
       static_cast<unsigned long long>(c.pin_retries),
       static_cast<unsigned long long>(c.pin_retry_exhausted),
       static_cast<unsigned long long>(c.pin_chunk_shrinks),
       static_cast<unsigned long long>(c.pin_fail_resets),
       static_cast<unsigned long long>(c.pin_inval_restarts));
  line(out, "  overlap: accesses=%llu misses=%llu (rate %.2e)",
       static_cast<unsigned long long>(c.region_accesses),
       static_cast<unsigned long long>(c.overlap_misses),
       c.overlap_miss_rate());
  line(out, "  lifecycle: crashes=%llu restarts=%llu reclaimed_pages=%llu "
            "fenced=%llu hb_timeouts=%llu",
       static_cast<unsigned long long>(c.lifecycle_crashes),
       static_cast<unsigned long long>(c.lifecycle_restarts),
       static_cast<unsigned long long>(c.lifecycle_reclaimed_pages),
       static_cast<unsigned long long>(c.fenced_stale_frames),
       static_cast<unsigned long long>(c.heartbeat_timeouts));
  line(out, "  tenant: arb_requests=%llu arb_grants=%llu sheds_suffered=%llu "
            "floor_protected=%llu",
       static_cast<unsigned long long>(c.tenant_arb_requests),
       static_cast<unsigned long long>(c.tenant_arb_grants),
       static_cast<unsigned long long>(c.tenant_sheds_suffered),
       static_cast<unsigned long long>(c.tenant_floor_protected));
  line(out, "  region cache: hits=%llu misses=%llu evictions=%llu live=%zu",
       static_cast<unsigned long long>(cache.hits),
       static_cast<unsigned long long>(cache.misses),
       static_cast<unsigned long long>(cache.evictions),
       p.lib.cache().size());
  line(out, "  core '%s': bh=%.1fus kernel=%.1fus user=%.1fus idleq=%.1fus "
            "(util %.1f%%)",
       p.core.name().c_str(), sim::to_usec(core_stats.busy[0]),
       sim::to_usec(core_stats.busy[1]), sim::to_usec(core_stats.busy[2]),
       sim::to_usec(core_stats.busy[3]), p.core.utilization() * 100.0);
  if (host.memory().pin_quota() !=
      std::numeric_limits<std::size_t>::max()) {
    line(out, "  host pinned pages now: %zu (quota %zu, denials %llu)",
         host.memory().pinned_pages(), host.memory().pin_quota(),
         static_cast<unsigned long long>(host.memory().quota_denials()));
  } else {
    line(out, "  host pinned pages now: %zu", host.memory().pinned_pages());
  }
  line(out, "  fabric drops: fault=%llu congestion=%llu",
       static_cast<unsigned long long>(host.nic().fabric().fault_dropped()),
       static_cast<unsigned long long>(
           host.nic().fabric().congestion_dropped()));
  return out;
}

std::string format_json_report(Host::Process& p, Host& host) {
  const Counters& c = p.lib.counters();
  const auto& cache = p.lib.cache().stats();

  // All emission goes through the obs/json.hpp helpers — the one escaping
  // and number-formatting authority — so a host or core name containing
  // `"` or `\` cannot produce invalid JSON.
  std::string out = "{";
  bool first = true;
  const auto field = [&out, &first](const char* key, std::uint64_t v) {
    if (!first) out += ',';
    first = false;
    out += obs::json_str(key);
    out += ':';
    out += obs::json_num(v);
  };
  const auto str_field = [&out, &first](const char* key,
                                        std::string_view v) {
    if (!first) out += ',';
    first = false;
    out += obs::json_str(key);
    out += ':';
    out += obs::json_str(v);
  };
  field("endpoint", p.ep.id());
  field("node", p.addr().node);
  str_field("host", host.config().name);
  str_field("core", p.core.name());
  field("eager_sent", c.eager_sent);
  field("eager_completed", c.eager_completed);
  field("rndv_sent", c.rndv_sent);
  field("rndv_received", c.rndv_received);
  field("pulls_sent", c.pulls_sent);
  field("pull_replies_sent", c.pull_replies_sent);
  field("notifies_sent", c.notifies_sent);
  field("pull_rerequests", c.pull_rerequests);
  field("retransmit_timeouts", c.retransmit_timeouts);
  field("duplicate_frames", c.duplicate_frames);
  field("aborts", c.aborts);
  field("frames_corrupted", c.frames_corrupted);
  field("checksum_drops", c.checksum_drops);
  field("duplicates_suppressed", c.duplicates_suppressed);
  field("retry_exhausted", c.retry_exhausted);
  field("frames_dropped_on_miss", c.frames_dropped_on_miss);
  field("pin_ops", c.pin_ops);
  field("pages_pinned", c.pages_pinned);
  field("unpin_ops", c.unpin_ops);
  field("pages_unpinned", c.pages_unpinned);
  field("repins", c.repins);
  field("pin_failures", c.pin_failures);
  field("notifier_invalidations", c.notifier_invalidations);
  field("pressure_unpins", c.pressure_unpins);
  field("pins_denied", c.pins_denied);
  field("pin_retries", c.pin_retries);
  field("pin_retry_exhausted", c.pin_retry_exhausted);
  field("pin_chunk_shrinks", c.pin_chunk_shrinks);
  field("pin_fail_resets", c.pin_fail_resets);
  field("pin_inval_restarts", c.pin_inval_restarts);
  field("region_accesses", c.region_accesses);
  field("overlap_misses", c.overlap_misses);
  field("lifecycle_crashes", c.lifecycle_crashes);
  field("lifecycle_restarts", c.lifecycle_restarts);
  field("lifecycle_reclaimed_pages", c.lifecycle_reclaimed_pages);
  field("fenced_stale_frames", c.fenced_stale_frames);
  field("heartbeat_timeouts", c.heartbeat_timeouts);
  field("tenant_arb_requests", c.tenant_arb_requests);
  field("tenant_arb_grants", c.tenant_arb_grants);
  field("tenant_sheds_suffered", c.tenant_sheds_suffered);
  field("tenant_floor_protected", c.tenant_floor_protected);
  field("cache_hits", cache.hits);
  field("cache_misses", cache.misses);
  field("cache_evictions", cache.evictions);
  field("host_pinned_pages", host.memory().pinned_pages());
  if (host.memory().pin_quota() != std::numeric_limits<std::size_t>::max()) {
    field("host_pin_quota", host.memory().pin_quota());
    field("host_quota_denials", host.memory().quota_denials());
  }
  field("fabric_fault_dropped", host.nic().fabric().fault_dropped());
  field("fabric_congestion_dropped",
        host.nic().fabric().congestion_dropped());
  out += '}';
  return out;
}

std::string format_summary_line(Host::Process& p) {
  const Counters& c = p.lib.counters();
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "ep%u: %llu msgs (%llu rndv), %llu pages pinned, "
                "%llu misses, cache %llu/%llu",
                static_cast<unsigned>(p.ep.id()),
                static_cast<unsigned long long>(c.eager_sent + c.rndv_sent),
                static_cast<unsigned long long>(c.rndv_sent),
                static_cast<unsigned long long>(c.pages_pinned),
                static_cast<unsigned long long>(c.overlap_misses),
                static_cast<unsigned long long>(p.lib.cache().stats().hits),
                static_cast<unsigned long long>(
                    p.lib.cache().stats().misses));
  return buf;
}

}  // namespace pinsim::core
