#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/counters.hpp"
#include "core/region.hpp"
#include "cpu/core.hpp"
#include "cpu/cpu_model.hpp"
#include "mem/pin_arbiter.hpp"
#include "mem/pool.hpp"
#include "obs/event.hpp"
#include "obs/relay.hpp"
#include "sim/engine.hpp"
#include "sim/flat_map.hpp"

namespace pinsim::core {

/// Driver-side pinning engine (paper §3.1/§3.3): pins declared regions on
/// demand, strictly in address order, charging Table-1-calibrated costs to
/// the owning process's core at kernel priority; unpins on MMU-notifier
/// invalidation, memory pressure or undeclare; repins transparently on next
/// use.
///
/// `ensure_pinned` is the single entry point communications use:
///  * non-overlapped: the completion fires once the whole region is pinned
///    (the communication start waits — Figure 2);
///  * overlapped: the completion fires after only `sync_prepin_pages` are
///    pinned (default 0, i.e. immediately) and the rest keeps pinning in the
///    background while the rendezvous round-trip runs (Figure 5).
///
/// On multi-tenant hosts the manager doubles as one tenant of the host's
/// `mem::PinArbiter`: it joins arbitration lazily on first quota contact,
/// answers shed requests with its own LRU walk, and asks the arbiter for
/// headroom (shedding over-floor tenants) when the shared quota denies it.
class PinManager : public mem::PinArbiter::TenantOps {
 public:
  /// done(ok): ok=false means a segment was invalid (or went away) and the
  /// region is PinState::kFailed; the caller aborts its request.
  using Completion = std::function<void(bool ok)>;

  /// `relay` (optional) is the typed observability emission point; it must
  /// outlive the manager (the Endpoint passes its Driver's relay, whose
  /// address is stable). Tracer/bus attachment happens on the relay, so a
  /// sink attached after construction is still picked up.
  PinManager(sim::Engine& eng, cpu::Core& core, const cpu::CpuModel& cpu,
             const PinningConfig& cfg, Counters& counters,
             const obs::Relay* relay = nullptr);

  void set_relay(const obs::Relay* relay) noexcept { relay_ = relay; }
  /// (node, endpoint) stamped onto emitted events.
  void set_identity(std::uint32_t node, std::uint8_t ep) noexcept {
    node_ = node;
    ep_ = ep;
  }

  PinManager(const PinManager&) = delete;
  PinManager& operator=(const PinManager&) = delete;
  ~PinManager() override;

  /// Tracks a declared region for LRU/pressure management.
  void register_region(Region& r);
  /// Stops tracking (undeclare). Any pins are released first.
  void unregister_region(Region& r);

  /// Makes sure `r` is pinned according to the configured mode, then calls
  /// `done`. Safe to call concurrently for the same region; completions
  /// queue. Counted as a repin if the region had been pinned before and lost
  /// its pages (invalidation/pressure).
  void ensure_pinned(Region& r, Completion done);

  /// Per-request override of the overlap decision (§6: "only enabling
  /// decoupled/overlapped pinning for blocking operations").
  void ensure_pinned(Region& r, bool overlapped, Completion done);

  /// Releases every pin of `r` (charging the unpin cost) without
  /// undeclaring it. Next ensure_pinned repins.
  void unpin(Region& r);

  /// MMU-notifier path: the VM is invalidating [start, end). Every tracked
  /// region overlapping it loses its pins *now* (before the VM proceeds);
  /// in-flight asynchronous pinning of it is cancelled.
  void invalidate_range(mem::VirtAddr start, mem::VirtAddr end);

  /// Marks `r` recently used (for LRU eviction under pressure).
  void touch(Region& r);

  /// Invoked when asynchronous pinning fails after the communication already
  /// started (overlapped mode): the driver aborts the affected requests.
  void set_failure_handler(std::function<void(Region&)> h) {
    failure_handler_ = std::move(h);
  }

  [[nodiscard]] const PinningConfig& config() const noexcept { return cfg_; }

 private:
  struct PinJob {
    std::uint64_t generation = 0;
    std::vector<Completion> full_waiters;   // run when fully pinned
    std::vector<Completion> early_waiters;  // run at the overlap threshold
    std::size_t early_threshold = 0;        // pages pinned before early release
    bool charged_base = false;
    bool active = false;
    int retries = 0;        // consecutive zero-progress chunk attempts
    int inval_restarts = 0; // notifier invalidations absorbed by this job
  };

  /// Everything the manager knows about one region, keyed by the region's
  /// stable id in an *ordered* flat map: iteration order (notifier
  /// invalidation, LRU shedding ties) is then part of the deterministic
  /// contract instead of hash-of-pointer happenstance (pinlint D1/D2). The
  /// Region pointer is re-validated against the tracked entry before any
  /// deref from a timer callback, so a region destroyed during a backoff
  /// cannot be touched. Entries live in pooled nodes so references survive
  /// reentrant completions that insert into the map, and churn (declare/
  /// undeclare cycles) stops allocating at steady state.
  struct Tracked {
    Region* region = nullptr;
    sim::Time last_use = 0;
    bool registered = false;  // register_region() called: visible to the
                              // LRU shedder and the MMU-notifier path
    bool was_pinned = false;  // pinned at least once (repin counting)
    PinJob job;
  };

  /// The tracked entry for `r`, created on first use (a region pinned
  /// without register_region() still needs job state, but stays invisible
  /// to the LRU/notifier paths until registered).
  Tracked& track(Region& r);
  /// The entry for `rid` iff it still tracks the exact object `expected` —
  /// the timer-callback guard (undeclare + id reuse cannot alias).
  Tracked* find_alive(RegionId rid, const Region* expected);

  void start_or_join(Region& r, bool wait_full, Completion done);
  void schedule_chunk(Region& r);
  void retry_or_fail(Region& r);
  [[nodiscard]] sim::Time retry_backoff(int retries) const;
  void finish(Region& r, bool ok);
  void release_early_waiters(Region& r, bool ok);
  void shed_pins_if_needed(mem::PhysicalMemory& pm,
                           std::size_t incoming_pages);
  bool shed_one_victim();

  // Cross-tenant arbitration (mem::PinArbiter::TenantOps).
  [[nodiscard]] std::size_t arb_pinned_pages() const override;
  bool arb_shed_idle() override;
  void arb_note_floor_protected() override;
  /// Registers with the host arbiter on first quota contact (idempotent).
  void maybe_join_arbitration(mem::PhysicalMemory& pm);
  /// Asks the arbiter to shed another tenant below us. True when headroom
  /// exists on return.
  bool arbitrate_headroom();
  void do_unpin(Region& r, std::uint64_t& op_counter);
  void do_unpin_from(Region& r, std::size_t first_slot,
                     std::uint64_t& op_counter);

  sim::Engine& eng_;
  cpu::Core& core_;
  const cpu::CpuModel& cpu_;
  PinningConfig cfg_;
  Counters& counters_;
  // Pool declared before the map: map entries hold pool nodes, so the pool
  // must outlive them on destruction.
  mem::ObjectPool<Tracked> tracked_pool_;
  sim::FlatMap<RegionId, mem::ObjectPool<Tracked>::Ptr> tracked_;
  std::function<void(Region&)> failure_handler_;
  const obs::Relay* relay_ = nullptr;
  std::uint32_t node_ = 0;
  std::uint8_t ep_ = 0;
  mem::PinArbiter* arbiter_ = nullptr;  // joined lazily; not owned
  std::uint32_t arb_id_ = 0;
  bool arb_registered_ = false;
  // Liveness token for engine timers (retry backoff): a timer may fire after
  // the endpoint (and its PinManager) is destroyed; captured weakly.
  std::shared_ptr<char> alive_ = std::make_shared<char>('p');

  /// Emits a pin event carrying the region's current frontier/total pages.
  /// `what` must have static storage duration.
  void emit(obs::EventKind kind, Region& r, const char* what);
  /// Range-invalidation event: `cut` is the first invalidated slot, the
  /// frontier snapshot in `offset` must already be post-truncation so the
  /// invariant `offset <= cut` is checkable.
  void emit_invalidate(Region& r, std::size_t cut);
};

}  // namespace pinsim::core
