#include "core/region.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace pinsim::core {

using mem::kPageSize;
using mem::page_index;
using mem::page_offset;
using mem::pages_spanned;

Region::Region(RegionId id, mem::AddressSpace& as,
               std::vector<Segment> segments)
    : id_(id), as_(as), segments_(std::move(segments)) {
  if (segments_.empty()) throw std::invalid_argument("region with no segments");
  seg_offset_.reserve(segments_.size());
  seg_slot_base_.reserve(segments_.size());
  for (const Segment& seg : segments_) {
    if (seg.len == 0) throw std::invalid_argument("zero-length segment");
    seg_offset_.push_back(total_);
    seg_slot_base_.push_back(slots_.size());
    total_ += seg.len;
    const std::size_t pages = pages_spanned(seg.addr, seg.len);
    for (std::size_t i = 0; i < pages; ++i) {
      Slot slot;
      slot.page_va = mem::page_floor(seg.addr) +
                     static_cast<mem::VirtAddr>(i) * kPageSize;
      slots_.push_back(slot);
    }
  }
}

mem::VirtAddr Region::next_unpinned_va() const {
  assert(frontier_ < slots_.size());
  return slots_[frontier_].page_va;
}

mem::VirtAddr Region::page_va_at(std::size_t idx) const {
  assert(idx < slots_.size());
  return slots_[idx].page_va;
}

void Region::commit_pins(std::span<const mem::FrameId> frames) {
  assert(frontier_ + frames.size() <= slots_.size());
  for (mem::FrameId f : frames) {
    slots_[frontier_].frame = f;
    slots_[frontier_].pinned = true;
    ++frontier_;
  }
  if (frontier_ == slots_.size()) state_ = PinState::kPinned;
}

std::vector<std::pair<mem::VirtAddr, mem::FrameId>> Region::take_all_pins() {
  std::vector<std::pair<mem::VirtAddr, mem::FrameId>> out = take_pins_from(0);
  state_ = PinState::kUnpinned;
  return out;
}

std::vector<std::pair<mem::VirtAddr, mem::FrameId>> Region::take_pins_from(
    std::size_t slot) {
  std::vector<std::pair<mem::VirtAddr, mem::FrameId>> out;
  if (slot >= frontier_) return out;  // nothing pinned at or above `slot`
  out.reserve(frontier_ - slot);
  for (std::size_t i = slot; i < frontier_; ++i) {
    out.emplace_back(slots_[i].page_va, slots_[i].frame);
    slots_[i].pinned = false;
    slots_[i].frame = mem::kInvalidFrame;
  }
  frontier_ = slot;
  state_ = PinState::kUnpinned;
  return out;
}

std::size_t Region::first_slot_overlapping(mem::VirtAddr start,
                                           mem::VirtAddr end) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const mem::VirtAddr va = slots_[i].page_va;
    if (va < end && va + kPageSize > start) return i;
  }
  return npos;
}

bool Region::overlaps(mem::VirtAddr start, mem::VirtAddr end) const {
  for (const Segment& seg : segments_) {
    const mem::VirtAddr seg_lo = mem::page_floor(seg.addr);
    const mem::VirtAddr seg_hi = mem::page_ceil(seg.addr + seg.len);
    if (seg_lo < end && start < seg_hi) return true;
  }
  return false;
}

Region::Location Region::locate(std::size_t offset,
                                std::size_t remaining) const {
  if (offset >= total_) throw std::out_of_range("region offset");
  // Find the segment containing `offset`.
  auto it = std::upper_bound(seg_offset_.begin(), seg_offset_.end(), offset);
  const std::size_t s = static_cast<std::size_t>(
      std::distance(seg_offset_.begin(), it)) - 1;
  const Segment& seg = segments_[s];
  const std::size_t off_in_seg = offset - seg_offset_[s];
  const mem::VirtAddr va = seg.addr + off_in_seg;

  Location loc;
  loc.slot = seg_slot_base_[s] +
             static_cast<std::size_t>(page_index(va) - page_index(seg.addr));
  loc.page_off = page_offset(va);
  loc.chunk = std::min({remaining, kPageSize - loc.page_off,
                        seg.len - off_in_seg});
  return loc;
}

bool Region::range_pinned(std::size_t offset, std::size_t len) const {
  std::size_t done = 0;
  while (done < len) {
    const Location loc = locate(offset + done, len - done);
    if (!slots_[loc.slot].pinned) return false;
    done += loc.chunk;
  }
  return true;
}

Region::AccessResult Region::copy_out(std::size_t offset,
                                      std::span<std::byte> dst) const {
  if (offset + dst.size() > total_) throw std::out_of_range("copy_out range");
  if (!range_pinned(offset, dst.size())) return AccessResult::kNotPinned;
  std::size_t done = 0;
  auto& pm = as_.physical();
  while (done < dst.size()) {
    const Location loc = locate(offset + done, dst.size() - done);
    const auto frame = pm.data(slots_[loc.slot].frame);
    std::memcpy(dst.data() + done, frame.data() + loc.page_off, loc.chunk);
    done += loc.chunk;
  }
  return AccessResult::kOk;
}

void Region::copy_out_paged(std::size_t offset, std::span<std::byte> dst) {
  if (offset + dst.size() > total_) throw std::out_of_range("copy_out range");
  std::size_t done = 0;
  while (done < dst.size()) {
    const Location loc = locate(offset + done, dst.size() - done);
    as_.read(slots_[loc.slot].page_va + loc.page_off,
             dst.subspan(done, loc.chunk));
    done += loc.chunk;
  }
}

void Region::copy_in_paged(std::size_t offset,
                           std::span<const std::byte> src) {
  if (offset + src.size() > total_) throw std::out_of_range("copy_in range");
  std::size_t done = 0;
  while (done < src.size()) {
    const Location loc = locate(offset + done, src.size() - done);
    as_.write(slots_[loc.slot].page_va + loc.page_off,
              src.subspan(done, loc.chunk));
    done += loc.chunk;
  }
}

Region::AccessResult Region::copy_in(std::size_t offset,
                                     std::span<const std::byte> src) {
  if (offset + src.size() > total_) throw std::out_of_range("copy_in range");
  if (!range_pinned(offset, src.size())) return AccessResult::kNotPinned;
  std::size_t done = 0;
  auto& pm = as_.physical();
  while (done < src.size()) {
    const Location loc = locate(offset + done, src.size() - done);
    auto frame = pm.data(slots_[loc.slot].frame);
    std::memcpy(frame.data() + loc.page_off, src.data() + done, loc.chunk);
    done += loc.chunk;
  }
  return AccessResult::kOk;
}

}  // namespace pinsim::core
