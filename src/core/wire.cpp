#include "core/wire.hpp"

#include <cstring>

namespace pinsim::core {

namespace {

class Writer {
 public:
  explicit Writer(std::size_t reserve)
      : out_(frame_buffers().acquire_reserved(reserve)) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(std::span<const std::byte> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(out_); }

 private:
  std::vector<std::byte> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> in) : in_(in) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::vector<std::byte> rest() {
    std::vector<std::byte> out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               in_.end());
    pos_ = in_.size();
    return out;
  }
  /// Position of the next unread byte; with skip_rest(), lets decode_frame
  /// compute the (offset, length) window of the trailing data bytes without
  /// materializing them.
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  std::size_t skip_rest() noexcept {
    const std::size_t n = in_.size() - pos_;
    pos_ = in_.size();
    return n;
  }
  void expect_end() const {
    if (pos_ != in_.size()) throw WireFormatError("trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > in_.size()) throw WireFormatError("truncated packet");
  }
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

// type, src_ep, dst_ep, src_epoch, dst_epoch. The epoch bytes sit AFTER
// dst_ep: the dst_ep byte's fixed offset (payload[2]) is load-bearing for
// NIC flow steering and drop attribution.
constexpr std::size_t kHeaderBytes = 5;

PacketType body_type(const PacketBody& b) noexcept {
  return static_cast<PacketType>(b.index() + 1);
}

struct Crc32Table {
  constexpr Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
  std::uint32_t entries[256] = {};
};

constexpr Crc32Table kCrc32;

}  // namespace

std::uint32_t frame_checksum(std::span<const std::byte> bytes) noexcept {
  std::uint32_t crc = 0xffffffffu;
  for (const std::byte b : bytes) {
    crc = kCrc32.entries[(crc ^ static_cast<std::uint8_t>(b)) & 0xffu] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

const char* packet_type_name(PacketType t) noexcept {
  switch (t) {
    case PacketType::kEager:
      return "EAGER";
    case PacketType::kEagerAck:
      return "EAGER_ACK";
    case PacketType::kRndv:
      return "RNDV";
    case PacketType::kPull:
      return "PULL";
    case PacketType::kPullReply:
      return "PULL_REPLY";
    case PacketType::kNotify:
      return "NOTIFY";
    case PacketType::kNotifyAck:
      return "NOTIFY_ACK";
    case PacketType::kAbort:
      return "ABORT";
  }
  return "UNKNOWN";
}

std::size_t encoded_overhead(PacketType t) noexcept {
  switch (t) {
    case PacketType::kEager:
      return kHeaderBytes + 8 + 4 + 4 + 4 + kChecksumBytes;
    case PacketType::kEagerAck:
      return kHeaderBytes + 4 + kChecksumBytes;
    case PacketType::kRndv:
      return kHeaderBytes + 8 + 8 + 4 + 4 + kChecksumBytes;
    case PacketType::kPull:
      return kHeaderBytes + 4 + 4 + 8 + 4 + 4 + kChecksumBytes;
    case PacketType::kPullReply:
      return kHeaderBytes + 4 + 8 + kChecksumBytes;
    case PacketType::kNotify:
      return kHeaderBytes + 4 + 4 + kChecksumBytes;
    case PacketType::kNotifyAck:
      return kHeaderBytes + 4 + kChecksumBytes;
    case PacketType::kAbort:
      return kHeaderBytes + 4 + kChecksumBytes;
  }
  return kHeaderBytes + kChecksumBytes;
}

std::vector<std::byte> encode(const Packet& p) {
  const PacketType t = body_type(p.body);
  std::size_t data_len = 0;
  if (const auto* e = std::get_if<EagerBody>(&p.body)) data_len = e->data.size();
  if (const auto* r = std::get_if<PullReplyBody>(&p.body)) {
    data_len = r->data.size();
  }
  Writer w(encoded_overhead(t) + data_len);
  w.u8(static_cast<std::uint8_t>(t));
  w.u8(p.header.src_ep);
  w.u8(p.header.dst_ep);
  w.u8(p.header.src_epoch);
  w.u8(p.header.dst_epoch);

  std::visit(
      [&w](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, EagerBody>) {
          w.u64(body.match);
          w.u32(body.msg_len);
          w.u32(body.frag_offset);
          w.u32(body.seq);
          w.bytes(body.data);
        } else if constexpr (std::is_same_v<T, EagerAckBody>) {
          w.u32(body.seq);
        } else if constexpr (std::is_same_v<T, RndvBody>) {
          w.u64(body.match);
          w.u64(body.msg_len);
          w.u32(body.region);
          w.u32(body.seq);
        } else if constexpr (std::is_same_v<T, PullBody>) {
          w.u32(body.region);
          w.u32(body.handle);
          w.u64(body.offset);
          w.u32(body.len);
          w.u32(body.seq);
        } else if constexpr (std::is_same_v<T, PullReplyBody>) {
          w.u32(body.handle);
          w.u64(body.offset);
          w.bytes(body.data);
        } else if constexpr (std::is_same_v<T, NotifyBody>) {
          w.u32(body.seq);
          w.u32(body.handle);
        } else if constexpr (std::is_same_v<T, NotifyAckBody>) {
          w.u32(body.handle);
        } else if constexpr (std::is_same_v<T, AbortBody>) {
          w.u32(body.seq);
        }
      },
      p.body);
  std::vector<std::byte> out = w.take();
  // Trailing CRC-32 over everything before it. At the end (not the front) so
  // the dst_ep byte keeps its fixed offset for NIC flow steering.
  const std::uint32_t crc = frame_checksum(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>(crc >> (8 * i)));
  }
  return out;
}

namespace {

/// Shared decode body. When `owner` is non-null it is the vector `bytes`
/// views, and bulk data is adopted out of it zero-copy (the vector is left
/// unspecified-but-valid afterwards); when null, bulk data is copied.
Packet decode_impl(std::span<const std::byte> bytes,
                   std::vector<std::byte>* owner) {
  if (bytes.size() < kHeaderBytes + kChecksumBytes) {
    throw WireFormatError("truncated packet");
  }
  const std::span<const std::byte> body =
      bytes.first(bytes.size() - kChecksumBytes);
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < kChecksumBytes; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[body.size() + i]) << (8 * i);
  }
  if (frame_checksum(body) != stored) throw WireChecksumError();

  // Takes the trailing data bytes: adopting the owning vector when there is
  // one (the CRC above already vouched for the window), copying otherwise.
  const auto take_rest = [&](Reader& r) -> DataChunk {
    if (owner == nullptr) return DataChunk(r.rest());
    const std::size_t off = r.pos();
    const std::size_t n = r.skip_rest();
    return DataChunk::adopt(std::move(*owner), off, n);
  };

  Reader r(body);
  Packet p;
  const auto raw_type = r.u8();
  if (raw_type < 1 || raw_type > 8) throw WireFormatError("bad packet type");
  p.header.type = static_cast<PacketType>(raw_type);
  p.header.src_ep = r.u8();
  p.header.dst_ep = r.u8();
  p.header.src_epoch = r.u8();
  p.header.dst_epoch = r.u8();

  switch (p.header.type) {
    case PacketType::kEager: {
      EagerBody b;
      b.match = r.u64();
      b.msg_len = r.u32();
      b.frag_offset = r.u32();
      b.seq = r.u32();
      // Bounds check BEFORE adopting: on throw the caller's payload vector
      // must still be intact for drop attribution.
      if (b.frag_offset + (body.size() - r.pos()) > b.msg_len) {
        throw WireFormatError("eager fragment out of bounds");
      }
      b.data = take_rest(r);
      p.body = std::move(b);
      break;
    }
    case PacketType::kEagerAck: {
      EagerAckBody b;
      b.seq = r.u32();
      r.expect_end();
      p.body = b;
      break;
    }
    case PacketType::kRndv: {
      RndvBody b;
      b.match = r.u64();
      b.msg_len = r.u64();
      b.region = r.u32();
      b.seq = r.u32();
      r.expect_end();
      p.body = b;
      break;
    }
    case PacketType::kPull: {
      PullBody b;
      b.region = r.u32();
      b.handle = r.u32();
      b.offset = r.u64();
      b.len = r.u32();
      b.seq = r.u32();
      r.expect_end();
      p.body = b;
      break;
    }
    case PacketType::kPullReply: {
      PullReplyBody b;
      b.handle = r.u32();
      b.offset = r.u64();
      b.data = take_rest(r);
      p.body = std::move(b);
      break;
    }
    case PacketType::kNotify: {
      NotifyBody b;
      b.seq = r.u32();
      b.handle = r.u32();
      r.expect_end();
      p.body = b;
      break;
    }
    case PacketType::kNotifyAck: {
      NotifyAckBody b;
      b.handle = r.u32();
      r.expect_end();
      p.body = b;
      break;
    }
    case PacketType::kAbort: {
      AbortBody b;
      b.seq = r.u32();
      r.expect_end();
      p.body = b;
      break;
    }
  }
  return p;
}

}  // namespace

mem::BufferPool& frame_buffers() {
  static mem::BufferPool pool;
  return pool;
}

Packet decode(std::span<const std::byte> bytes) {
  return decode_impl(bytes, nullptr);
}

Packet decode_frame(net::Frame& frame) {
  Packet p = decode_impl(frame.payload, &frame.payload);
  if (!frame.payload.empty()) {
    // Not adopted (no bulk data in this packet type): recycle the capacity.
    frame_buffers().release(std::move(frame.payload));
  }
  frame.payload.clear();
  return p;
}

}  // namespace pinsim::core
