#include "core/library.hpp"

#include "core/driver.hpp"

namespace pinsim::core {

Library::Library(Endpoint& ep)
    : ep_(ep),
      eng_(ep.driver().engine()),
      cache_(ep.driver().config().cache,
             [this](const std::vector<Segment>& segs) {
               // Declaration is a syscall; its cost lands on the process
               // core ahead of the communication that triggered it.
               ep_.process_core().consume(
                   cpu::Priority::kKernel,
                   ep_.driver().config().protocol.syscall_cost);
               return ep_.declare_region(segs);
             },
             [this](RegionId id) { ep_.undeclare_region(id); }) {}

Library::~Library() = default;

std::size_t Library::total_length(
    const std::vector<Segment>& segments) noexcept {
  std::size_t total = 0;
  for (const Segment& s : segments) total += s.len;
  return total;
}

void Library::submit_send(Request* r, EndpointAddr dest, std::uint64_t match,
                          std::vector<Segment> segments,
                          bool blocking_hint) {
  const auto& proto = ep_.driver().config().protocol;
  cpu::Core& core = ep_.process_core();
  const std::size_t total = total_length(segments);
  r->kind_ = Request::Kind::kSend;

  if (total <= proto.eager_threshold) {
    core.submit(cpu::Priority::kKernel, proto.syscall_cost,
                [this, alive = std::weak_ptr<void>(alive_), dest, match,
                 segs = std::move(segments), r]() mutable {
                  if (alive.expired()) return;  // library died mid-queue
                  if (r->cancel_requested_) {
                    r->complete(Status{false, false, 0});
                    return;
                  }
                  r->submitted_ = true;
                  r->send_seq_ = ep_.isend_eager(
                      dest, match, std::move(segs),
                      [r](Status st) { r->complete(st); });
                });
    return;
  }

  // User-space region-cache lookup, then the send ioctl.
  core.submit(
      cpu::Priority::kUser, kCacheLookupCost,
      [this, alive = std::weak_ptr<void>(alive_), dest, match,
       segs = std::move(segments), total, r, &core, &proto,
       blocking_hint]() mutable {
        if (alive.expired()) return;  // library died mid-queue
        if (r->cancel_requested_) {
          r->complete(Status{false, false, 0});
          return;
        }
        const RegionId rid = cache_.acquire(segs);
        r->region_ = rid;
        core.submit(cpu::Priority::kKernel, proto.syscall_cost,
                    [this, alive, dest, match, rid, total, r, blocking_hint] {
                      if (alive.expired()) return;
                      if (r->cancel_requested_) {
                        cache_.release(rid);
                        r->complete(Status{false, false, 0});
                        return;
                      }
                      r->submitted_ = true;
                      r->send_seq_ = ep_.isend_rndv(
                          dest, match, rid, total,
                          [this, r](Status st) {
                            cache_.release(r->region_);
                            r->complete(st);
                          },
                          blocking_hint);
                    });
      });
}

void Library::submit_recv(Request* r, std::uint64_t match, std::uint64_t mask,
                          std::vector<Segment> segments,
                          bool blocking_hint) {
  const auto& proto = ep_.driver().config().protocol;
  cpu::Core& core = ep_.process_core();
  const std::size_t total = total_length(segments);
  r->kind_ = Request::Kind::kRecv;

  if (total <= proto.eager_threshold) {
    core.submit(cpu::Priority::kKernel, proto.syscall_cost,
                [this, alive = std::weak_ptr<void>(alive_), match, mask,
                 segs = std::move(segments), r]() mutable {
                  if (alive.expired()) return;  // library died mid-queue
                  if (r->cancel_requested_) {
                    r->complete(Status{false, false, 0});
                    return;
                  }
                  r->submitted_ = true;
                  r->recv_id_ =
                      ep_.irecv(match, mask, std::move(segs), kInvalidRegion,
                                [r](Status st) { r->complete(st); });
                });
    return;
  }

  core.submit(
      cpu::Priority::kUser, kCacheLookupCost,
      [this, alive = std::weak_ptr<void>(alive_), match, mask,
       segs = std::move(segments), r, &core, &proto,
       blocking_hint]() mutable {
        if (alive.expired()) return;  // library died mid-queue
        if (r->cancel_requested_) {
          r->complete(Status{false, false, 0});
          return;
        }
        const RegionId rid = cache_.acquire(segs);
        r->region_ = rid;
        core.submit(cpu::Priority::kKernel, proto.syscall_cost,
                    [this, alive, match, mask, segs = std::move(segs), rid, r,
                     blocking_hint]() mutable {
                      if (alive.expired()) return;
                      if (r->cancel_requested_) {
                        cache_.release(rid);
                        r->complete(Status{false, false, 0});
                        return;
                      }
                      r->submitted_ = true;
                      r->recv_id_ = ep_.irecv(
                          match, mask, std::move(segs), rid,
                          [this, r](Status st) {
                            cache_.release(r->region_);
                            r->complete(st);
                          },
                          blocking_hint);
                    });
      });
}

RequestPtr Library::isend(EndpointAddr dest, std::uint64_t match,
                          mem::VirtAddr buf, std::size_t len,
                          bool blocking_hint) {
  std::vector<Segment> segs;
  if (len > 0) segs.push_back(Segment{buf, len});
  return isendv(dest, match, std::move(segs), blocking_hint);
}

RequestPtr Library::isendv(EndpointAddr dest, std::uint64_t match,
                           std::vector<Segment> segments,
                           bool blocking_hint) {
  // The watchdog already declared this node dead: fail fast in the caller's
  // context instead of spending the whole retry budget against silence.
  if (ep_.driver().peer_dead(dest.node)) throw PeerDeadError(dest.node);
  auto req = std::make_unique<Request>(eng_);
  submit_send(req.get(), dest, match, std::move(segments), blocking_hint);
  return req;
}

RequestPtr Library::irecv(std::uint64_t match, std::uint64_t mask,
                          mem::VirtAddr buf, std::size_t len,
                          bool blocking_hint) {
  std::vector<Segment> segs;
  if (len > 0) segs.push_back(Segment{buf, len});
  return irecvv(match, mask, std::move(segs), blocking_hint);
}

RequestPtr Library::irecvv(std::uint64_t match, std::uint64_t mask,
                           std::vector<Segment> segments,
                           bool blocking_hint) {
  auto req = std::make_unique<Request>(eng_);
  submit_recv(req.get(), match, mask, std::move(segments), blocking_hint);
  return req;
}

bool Library::cancel(Request& req) {
  if (req.completed()) return false;
  if (!req.submitted_) {
    // Still queued behind the syscall: the submission stage will observe the
    // flag and complete the request with ok == false.
    req.cancel_requested_ = true;
    return true;
  }
  if (req.kind_ == Request::Kind::kRecv) {
    return ep_.cancel_recv(req.recv_id_);
  }
  return ep_.cancel_send(req.send_seq_);
}

sim::Task<Status> Library::send(EndpointAddr dest, std::uint64_t match,
                                mem::VirtAddr buf, std::size_t len) {
  auto req = isend(dest, match, buf, len, /*blocking_hint=*/true);
  co_await req->wait();
  co_return req->status();
}

sim::Task<Status> Library::recv(std::uint64_t match, std::uint64_t mask,
                                mem::VirtAddr buf, std::size_t len) {
  auto req = irecv(match, mask, buf, len, /*blocking_hint=*/true);
  co_await req->wait();
  co_return req->status();
}

}  // namespace pinsim::core
