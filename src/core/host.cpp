#include "core/host.hpp"

#include <stdexcept>

namespace pinsim::core {

net::Nic::Config Host::nic_config(const Config& cfg) {
  net::Nic::Config nic = cfg.nic;
  nic.rx_frame_overhead = cfg.cpu.rx_frame_overhead;
  return nic;
}

Host::Host(sim::Engine& eng, net::Fabric& fabric, Config cfg,
           StackConfig stack)
    : eng_(eng),
      cfg_(std::move(cfg)),
      pm_(cfg_.memory_frames),
      cores_([&] {
        std::vector<std::unique_ptr<cpu::Core>> cores;
        if (cfg_.cores == 0) throw std::invalid_argument("host needs cores");
        for (std::size_t i = 0; i < cfg_.cores; ++i) {
          cores.push_back(std::make_unique<cpu::Core>(
              eng, cfg_.name + "/cpu" + std::to_string(i)));
        }
        return cores;
      }()),
      nic_(eng, fabric, *cores_[0], nic_config(cfg_)),
      dma_(cfg_.with_ioat ? std::make_unique<ioat::DmaEngine>(eng, cfg_.ioat)
                          : nullptr),
      driver_(eng, nic_, cfg_.cpu, dma_.get(), stack) {}

Host::Process::Process(Host& host, cpu::Core& bound_core)
    : as(host.pm_),
      heap(as),
      core(bound_core),
      holder_(host.driver_, as, bound_core),
      ep(holder_.ep),
      lib(ep) {}

Host::Process& Host::spawn_process() {
  std::size_t idx = 0;
  if (cores_.size() > 1) {
    idx = next_core_;
    next_core_ = next_core_ + 1 >= cores_.size() ? 1 : next_core_ + 1;
  }
  return spawn_process_on(idx);
}

Host::Process& Host::spawn_process_on(std::size_t core_idx) {
  processes_.push_back(
      std::make_unique<Process>(*this, *cores_.at(core_idx)));
  return *processes_.back();
}

}  // namespace pinsim::core
