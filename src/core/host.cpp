#include "core/host.hpp"

#include <stdexcept>

namespace pinsim::core {

net::Nic::Config Host::nic_config(const Config& cfg) {
  net::Nic::Config nic = cfg.nic;
  nic.rx_frame_overhead = cfg.cpu.rx_frame_overhead;
  return nic;
}

Host::Host(sim::Engine& eng, net::Fabric& fabric, Config cfg,
           StackConfig stack)
    : eng_(eng),
      cfg_(std::move(cfg)),
      pm_(cfg_.memory_frames),
      cores_([&] {
        std::vector<std::unique_ptr<cpu::Core>> cores;
        if (cfg_.cores == 0) throw std::invalid_argument("host needs cores");
        for (std::size_t i = 0; i < cfg_.cores; ++i) {
          cores.push_back(std::make_unique<cpu::Core>(
              eng, cfg_.name + "/cpu" + std::to_string(i)));
        }
        return cores;
      }()),
      nic_(eng, fabric, *cores_[0], nic_config(cfg_)),
      dma_(cfg_.with_ioat ? std::make_unique<ioat::DmaEngine>(eng, cfg_.ioat)
                          : nullptr),
      driver_(eng, nic_, cfg_.cpu, dma_.get(), stack) {}

Host::Process::Process(Host& host, cpu::Core& bound_core)
    : as(host.pm_),
      heap(as),
      core(bound_core),
      holder_(host.driver_, as, bound_core),
      ep(holder_.ep),
      lib(ep) {}

Host::Process& Host::spawn_process() {
  std::size_t idx = 0;
  if (cores_.size() > 1) {
    idx = next_core_;
    next_core_ = next_core_ + 1 >= cores_.size() ? 1 : next_core_ + 1;
  }
  return spawn_process_on(idx);
}

Host::Process& Host::spawn_process_on(std::size_t core_idx) {
  processes_.push_back(
      std::make_unique<Process>(*this, *cores_.at(core_idx)));
  process_core_.push_back(core_idx);
  return *processes_.back();
}

void Host::kill_process(std::size_t i) {
  Process& p = *processes_.at(i);
  const std::uint8_t ep_id = p.ep.id();

  // Pinned-page accounting for the kLifeCrash proof: what the host holds
  // now, and how much of it belongs to the victim.
  const std::uint64_t before = pm_.pinned_pages();
  const std::uint64_t victim_pins = p.as.stats().pins - p.as.stats().unpins;

  // 1. Every in-flight request dies locally. No abort packets leave — the
  //    process is gone; peers find out via retry exhaustion or watchdog.
  p.ep.fail_all_inflight();

  // 2. The library's region cache is flushed so cached (idle) regions
  //    undeclare and release their pins through the normal ioctl path.
  p.lib.cache().clear();

  // 3. exit()-style address-space teardown: the MMU notifiers fire for every
  //    VMA, and the pin manager reclaims what is still pinned — the paper's
  //    core claim that a dying process never has to unpin anything itself.
  p.as.release_all();

  const std::uint64_t after = pm_.pinned_pages();
  driver_.note_crash(ep_id, /*reclaimed=*/before - after, /*pinned_after=*/after,
                     /*baseline=*/before - victim_pins);

  // 4. Destroy the process object; ~EndpointHolder closes the endpoint,
  //    which bumps the slot epoch for fencing.
  processes_[i].reset();
}

Host::Process& Host::restart_process(std::size_t i) {
  if (processes_.at(i) != nullptr) {
    throw std::logic_error("restarting a live process");
  }
  processes_[i] =
      std::make_unique<Process>(*this, *cores_.at(process_core_.at(i)));
  return *processes_[i];
}

net::Watchdog& Host::enable_watchdog(net::Watchdog::Config cfg) {
  watchdog_ = std::make_unique<net::Watchdog>(eng_, nic_, cfg);
  driver_.attach_watchdog(*watchdog_);
  return *watchdog_;
}

mem::PinArbiter& Host::enable_pin_arbitration() {
  if (arbiter_ == nullptr) {
    arbiter_ = std::make_unique<mem::PinArbiter>(pm_);
    pm_.set_arbiter(arbiter_.get());
  }
  return *arbiter_;
}

}  // namespace pinsim::core
