#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "sim/time.hpp"

namespace pinsim::core {

/// How the driver manages pinning of user regions. Together with
/// `PinningConfig::overlapped` this spans every configuration evaluated in
/// the paper's Figures 6 and 7.
enum class PinMode {
  /// Pin the whole region synchronously when a communication uses it, unpin
  /// when the region is undeclared right after. With the region cache
  /// disabled this is Figure 6/7's "Pin once per Communication" / "Regular
  /// Pinning" baseline.
  kPerCommunication,

  /// Pin at declaration time and never unpin until undeclare. Figure 6's
  /// "Permanent Pinning" upper bound (unsafe in real life without
  /// invalidation — here the MMU notifier still protects it).
  kPermanent,

  /// The paper's model: declaration does not pin; the driver pins on demand
  /// at first use, keeps pages pinned, and unpins on MMU-notifier
  /// invalidation or memory pressure, repinning transparently later.
  kOnDemand,

  /// §6's long-term idea, after QsNet: no pinning at all — the "NIC"
  /// resolves translations through the page table on every access (which a
  /// heavily modified VM plus an advanced NIC MMU made possible on
  /// Quadrics). Modelled as an idealized upper bound: accesses fault pages
  /// in and never miss.
  kNone,
};

/// Driver-side pinning behaviour.
struct PinningConfig {
  PinMode mode = PinMode::kOnDemand;

  /// §3.3: initiate the communication *before* pinning and pin
  /// asynchronously in address order while the rendezvous round-trip runs.
  /// Accesses to not-yet-pinned pages drop the packet (an overlap miss) and
  /// rely on retransmission.
  bool overlapped = false;

  /// Pages pinned per kernel work quantum during asynchronous pinning; keeps
  /// bottom halves responsive (the simulated core is non-preemptive, while
  /// real get_user_pages in process context is preempted by softirqs — a
  /// small quantum approximates that).
  std::size_t pin_chunk_pages = 16;

  /// §4.3 mitigation under evaluation in the paper: synchronously pin the
  /// first few pages before sending the initiating message so the earliest
  /// packets never miss. 0 disables.
  std::size_t sync_prepin_pages = 0;

  /// §6: "only enabling decoupled/overlapped pinning for blocking
  /// operations". Overlap-aware applications that post nonblocking requests
  /// and compute meanwhile gain nothing from overlapped pinning (the CPU is
  /// busy anyway), so those requests pin synchronously and skip the
  /// overlap machinery's overhead.
  bool overlap_blocking_only = false;

  /// Driver sheds pins (LRU idle region first) when the host exceeds this
  /// many pinned pages (§3.1 "if there are too many pinned pages").
  std::size_t max_pinned_pages = std::numeric_limits<std::size_t>::max();

  /// Transient pin-failure handling. get_user_pages returning -ENOMEM under
  /// memory pressure (or a PhysicalMemory pin quota refusing the chunk) is
  /// retried with exponential backoff instead of failing the region; the
  /// budget counts consecutive chunk attempts that made *zero* progress, so
  /// a slowly advancing frontier never exhausts it but a permanently starved
  /// pin ends in a clean ok=false abort rather than a hang.
  int pin_retry_budget = 16;
  sim::Time pin_retry_backoff = 50 * sim::kMicrosecond;
  sim::Time pin_retry_backoff_max = 5 * sim::kMillisecond;

  /// Weight of this process in cross-tenant pin arbitration (see
  /// mem/pin_arbiter.hpp). A tenant's fair-share floor is its weight's
  /// proportion of the host pin quota; weight 2 is entitled to twice the
  /// pinned pages of weight 1. Only consulted on hosts that enabled an
  /// arbiter; must be >= 1.
  std::uint32_t tenant_weight = 1;
};

/// User-space region cache behaviour (§3.2).
struct CacheConfig {
  bool enabled = true;
  /// Maximum cached declarations; least recently used idle regions are
  /// undeclared beyond this.
  std::size_t capacity = 64;
};

/// MXoE-protocol tunables.
struct ProtocolConfig {
  /// Messages up to this size are sent eagerly (MXoE spec: 32 kB).
  std::size_t eager_threshold = 32 * 1024;

  /// Data bytes per frame for eager fragments and pull replies (fits a 9000
  /// MTU with headers).
  std::size_t frame_payload = 8192;

  /// Bytes per pull block request (MXoE uses 32 kB blocks).
  std::size_t pull_block = 32 * 1024;

  /// Pull blocks kept outstanding by the receiver.
  std::size_t pull_window = 2;

  /// Base retransmission timeout for control traffic (paper footnote: 1 s
  /// before a lost packet is re-requested pessimistically). Consecutive
  /// timeouts of the same request back off exponentially from this value.
  sim::Time retransmit_timeout = sim::kSecond;

  /// Cap for the exponential retransmit backoff: the per-request timeout
  /// doubles on every retry but never exceeds this.
  sim::Time retransmit_backoff_max = 8 * sim::kSecond;

  /// Retransmit attempts per send request (eager resend / RNDV resend /
  /// passive wait) before the request aborts gracefully with ok=false.
  int retry_budget = 64;

  /// NOTIFY retransmissions before the receiver abandons the handshake (the
  /// data already arrived; only the sender-side release is at stake).
  int notify_retry_budget = 100;

  /// Consecutive progress-free pull-retry ticks before the receiver aborts
  /// the transfer and tells the sender. Bounds how long a dead sender can
  /// hold receiver state: budget x pull_retry_timeout of silence.
  int pull_stall_budget = 256;

  /// Per-block pull retry period. Overlap misses always drop the *tail* of
  /// a block (pages pin in order), which gap detection cannot see, so the
  /// receiver re-pulls incomplete blocks on this much finer timer — as the
  /// Open-MX pull handler does. This is what bounds the §4.3 degradation to
  /// tens of MB/s instead of one message per second.
  sim::Time pull_retry_timeout = 10 * sim::kMillisecond;

  /// Footnote 4: when frames with higher offsets are received while an
  /// earlier block is incomplete, the missing data is re-requested
  /// immediately instead of waiting for the timeout.
  bool optimistic_rerequest = true;

  /// Minimum gap between optimistic re-requests of the same block, so a
  /// burst of later frames does not trigger a re-request storm.
  sim::Time rerequest_cooldown = 30 * sim::kMicrosecond;

  /// Cost charged to the process core for entering the kernel (ioctl).
  sim::Time syscall_cost = 150;

  /// Use the I/OAT DMA engine for receive-side copies when available.
  bool use_ioat = false;

  /// RSS/MSI-X-style flow steering: each endpoint's receive bottom halves
  /// run on its process's core ("one process per core" with distributed
  /// interrupt load — the paper's regular configuration). Disable to bind
  /// all interrupts to core 0, the §4.3 overload scenario.
  bool distribute_interrupts = true;
};

/// Observability knobs (see src/obs/). The typed event bus is attached at
/// runtime via Driver::set_bus; this only sizes the legacy string tracer.
struct TraceConfig {
  /// Ring capacity applied to a tracer attached via Driver::set_tracer.
  std::size_t tracer_capacity = 65536;
};

/// Everything the stack needs to know, grouped.
struct StackConfig {
  PinningConfig pinning;
  CacheConfig cache;
  ProtocolConfig protocol;
  TraceConfig trace;
};

/// Named presets matching the paper's figure legends.
[[nodiscard]] StackConfig regular_pinning_config();         // Fig 7 "Regular"
[[nodiscard]] StackConfig overlapped_pinning_config();      // Fig 7 "Overlapped"
[[nodiscard]] StackConfig pinning_cache_config();           // Fig 7 "Cache"
[[nodiscard]] StackConfig overlapped_cache_config();        // Fig 7 "Overlapped Cache"
[[nodiscard]] StackConfig permanent_pinning_config();       // Fig 6 upper bound
[[nodiscard]] StackConfig qsnet_ideal_config();             // §6 no-pin bound

}  // namespace pinsim::core
