#include "core/endpoint.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "core/driver.hpp"

namespace pinsim::core {

namespace {

/// Notifier registered on the process address space when the endpoint opens
/// (paper §3.1). All it does is forward invalidations to the pin manager —
/// the user-space library never hears about them.
struct EndpointNotifier final : mem::MmuNotifier {
  explicit EndpointNotifier(Endpoint& e) : ep(&e) {}
  void invalidate_range(mem::VirtAddr start, mem::VirtAddr end) override {
    ep->pin_manager().invalidate_range(start, end);
  }
  void release() override { address_space_alive = false; }
  Endpoint* ep;
  bool address_space_alive = true;
};

constexpr std::size_t kCompletedMemory = 8192;

/// Shorthand for building a typed event at an emission site.
obs::Event ev(obs::EventKind kind) {
  obs::Event e;
  e.kind = kind;
  return e;
}

}  // namespace

Endpoint::Endpoint(Driver& driver, std::uint8_t id, mem::AddressSpace& as,
                   cpu::Core& process_core)
    : driver_(driver),
      id_(id),
      as_(as),
      process_core_(process_core),
      pins_(driver.engine(), process_core, driver.cpu(),
            driver.config().pinning, counters_, &driver.relay()) {
  pins_.set_identity(driver.node(), id_);
  auto notifier = std::make_unique<EndpointNotifier>(*this);
  as_.register_notifier(notifier.get());
  notifier_ = std::move(notifier);

  pins_.set_failure_handler([this](Region& r) {
    // Abort every in-flight request still using this region. The tables
    // iterate in ascending seq order (flat maps), which is the order the
    // abort packets and their event emissions must leave in for replays to
    // be bit-exact; collect the keys first because fail_send/destroy_pull
    // erase entries mid-walk.
    std::vector<std::uint32_t> dead_sends;
    for (auto& [seq, req] : sends_) {
      if (!req->eager && req->region == r.id()) dead_sends.push_back(seq);
    }
    for (std::uint32_t seq : dead_sends) fail_send(seq, /*send_abort=*/true);

    std::vector<std::uint32_t> dead_pulls;
    for (auto& [handle, ps] : pulls_) {
      if (ps->region == &r && !ps->done) dead_pulls.push_back(handle);
    }
    for (std::uint32_t handle : dead_pulls) {
      auto it = pulls_.find(handle);
      if (it == pulls_.end()) continue;  // torn down by an earlier abort
      PullState& ps = *it->second;
      ++counters_.aborts;
      send_packet({ps.peer_node, ps.peer_ep}, AbortBody{ps.sender_seq},
                  cpu::Priority::kKernel);
      ps.region->drop_use();
      obs::Event e = ev(obs::EventKind::kRecvAbort);
      e.seq = handle;
      e.offset = ps.sender_seq;
      e.peer = ps.peer_node;
      e.peer_ep = ps.peer_ep;
      obs_emit(e);
      complete_recv(ps.recv, Status{false, false, 0});
      destroy_pull(handle);
    }
  });
}

Endpoint::~Endpoint() {
  // Disarm every guarded() closure still sitting in the engine's event
  // queue or a core's run queue, then drop the timers we know about. An
  // endpoint closed mid-transfer otherwise leaves retransmit timers and
  // queued bottom halves pointing at freed memory.
  alive_.reset();
  for (auto& [seq, req] : sends_) driver_.engine().cancel(req->rto);
  for (auto& [handle, ps] : pulls_) driver_.engine().cancel(ps->rto);

  // Regions still declared (an endpoint closed mid-transfer, or one driven
  // without a Library): cancel in-flight pin jobs and release their pins so
  // the pin manager never holds a pointer into the freed region table.
  // Unregistering emits unpin events; the flat map iterates in ascending-id
  // order, which is the order replays expect.
  for (auto& [id, region] : regions_) pins_.unregister_region(*region);
  regions_.clear();

  // If the address space died first, its destructor already fired the
  // notifier's release() — touching it again would be use-after-free.
  auto* notifier = static_cast<EndpointNotifier*>(notifier_.get());
  if (notifier->address_space_alive) as_.unregister_notifier(notifier);
}

EndpointAddr Endpoint::addr() const noexcept {
  return EndpointAddr{driver_.node(), id_};
}

bool Endpoint::overlap_for(bool blocking_hint) const {
  const auto& p = driver_.config().pinning;
  return p.overlapped && (!p.overlap_blocking_only || blocking_hint);
}

cpu::Core& Endpoint::bh_core() noexcept {
  return driver_.config().protocol.distribute_interrupts
             ? process_core_
             : driver_.nic().irq_core();
}

std::size_t Endpoint::inflight() const noexcept {
  return sends_.size() + pulls_.size() + posted_.size();
}

// --- regions -----------------------------------------------------------------

RegionId Endpoint::declare_region(std::vector<Segment> segments) {
  const RegionId id = next_region_++;
  auto region = std::make_unique<Region>(id, as_, std::move(segments));
  pins_.register_region(*region);
  Region& ref = *region;
  regions_.emplace(id, std::move(region));
  if (driver_.config().pinning.mode == PinMode::kPermanent) {
    pins_.ensure_pinned(ref, [](bool) {});
  }
  return id;
}

void Endpoint::undeclare_region(RegionId id) {
  auto it = regions_.find(id);
  if (it == regions_.end()) throw std::invalid_argument("unknown region");
  assert(it->second->use_count() == 0 && "undeclaring a region in use");
  pins_.unregister_region(*it->second);
  regions_.erase(it);
}

Region* Endpoint::find_region(RegionId id) {
  auto it = regions_.find(id);
  return it == regions_.end() ? nullptr : it->second.get();
}

// --- eager send ----------------------------------------------------------------

std::uint32_t Endpoint::isend_eager(EndpointAddr dest, std::uint64_t match,
                                    mem::VirtAddr buf, std::size_t len,
                                    Completion done) {
  std::vector<Segment> segs;
  if (len > 0) segs.push_back(Segment{buf, len});
  return isend_eager(dest, match, std::move(segs), std::move(done));
}

std::uint32_t Endpoint::isend_eager(EndpointAddr dest, std::uint64_t match,
                                    std::vector<Segment> segments,
                                    Completion done) {
  const std::uint32_t seq = next_send_seq_++;
  auto node = send_pool_.acquire();
  SendRequest& req = *node;
  req.seq = seq;
  req.dest = dest;
  req.match = match;
  req.eager = true;
  req.done = std::move(done);
  // Gather the (possibly vectorial) user data into the kernel staging copy.
  try {
    for (const Segment& s : segments) {
      const std::size_t off = req.eager_data.size();
      req.eager_data.resize(off + s.len);
      as_.read(s.addr, std::span<std::byte>(req.eager_data.data() + off,
                                            s.len));  // copy_from_user
    }
  } catch (const mem::InvalidAddressError&) {
    req.done(Status{false, false, 0});
    return seq;
  }
  req.len = req.eager_data.size();
  const std::size_t len = req.len;
  ++counters_.eager_sent;
  {
    obs::Event e = ev(obs::EventKind::kEagerPost);
    e.seq = seq;
    e.peer = dest.node;
    e.peer_ep = dest.ep;
    e.len = len;
    obs_emit(e);
  }
  sends_.emplace(seq, std::move(node));
  // The kernel-side copy into frames costs CPU on the submitting core.
  process_core_.submit(cpu::Priority::kKernel, driver_.cpu().copy_cost(len),
                       guarded([this, seq] {
                         if (sends_.count(seq) != 0) transmit_eager(seq);
                       }));
  return seq;
}

void Endpoint::transmit_eager(std::uint32_t seq) {
  SendRequest& req = *sends_.at(seq);
  req.transmitted = true;
  const std::size_t chunk = driver_.config().protocol.frame_payload;
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(chunk, req.len - off);
    EagerBody body;
    body.match = req.match;
    body.msg_len = static_cast<std::uint32_t>(req.len);
    body.frag_offset = static_cast<std::uint32_t>(off);
    body.seq = seq;
    body.data.assign(req.eager_data.begin() + static_cast<std::ptrdiff_t>(off),
                     req.eager_data.begin() +
                         static_cast<std::ptrdiff_t>(off + n));
    send_packet(req.dest, std::move(body), cpu::Priority::kKernel);
    off += n;
  } while (off < req.len);
  arm_send_rto(req);
}

// --- rendezvous send -----------------------------------------------------------

std::uint32_t Endpoint::isend_rndv(EndpointAddr dest, std::uint64_t match,
                                   RegionId region_id, std::size_t len,
                                   Completion done, bool blocking_hint) {
  Region* region = find_region(region_id);
  if (region == nullptr) throw std::invalid_argument("isend on unknown region");
  if (len > region->total_length()) {
    throw std::invalid_argument("isend length exceeds region");
  }
  const std::uint32_t seq = next_send_seq_++;
  auto node = send_pool_.acquire();
  SendRequest& req = *node;
  req.seq = seq;
  req.dest = dest;
  req.match = match;
  req.len = len;
  req.eager = false;
  req.region = region_id;
  req.done = std::move(done);
  region->add_use();
  ++counters_.rndv_sent;
  {
    obs::Event e = ev(obs::EventKind::kRndvPost);
    e.seq = seq;
    e.peer = dest.node;
    e.peer_ep = dest.ep;
    e.region = region_id;
    e.len = len;
    obs_emit(e);
  }
  sends_.emplace(seq, std::move(node));

  // Pin per configuration: with overlapping the completion fires right away
  // (or after the pre-pin threshold) and the RNDV leaves before the region
  // is fully pinned (Figure 5); otherwise it waits (Figure 2).
  pins_.ensure_pinned(*region, overlap_for(blocking_hint),
                      guarded([this, seq](bool ok) {
    auto it = sends_.find(seq);
    if (it == sends_.end()) return;  // already failed/aborted
    if (!ok) {
      fail_send(seq, /*send_abort=*/it->second->rndv_sent);
      return;
    }
    if (!it->second->rndv_sent) send_rndv_frame(*it->second);
  }));
  return seq;
}

void Endpoint::send_rndv_frame(SendRequest& req) {
  req.rndv_sent = true;
  req.transmitted = true;
  RndvBody body;
  body.match = req.match;
  body.msg_len = req.len;
  body.region = req.region;
  body.seq = req.seq;
  send_packet(req.dest, body, cpu::Priority::kKernel);
  arm_send_rto(req);
}

sim::Time Endpoint::backoff_timeout(int retries) const {
  const auto& proto = driver_.config().protocol;
  sim::Time t = proto.retransmit_timeout;
  for (int i = 0; i < retries && t < proto.retransmit_backoff_max; ++i) {
    t *= 2;
  }
  return std::min(t, proto.retransmit_backoff_max);
}

void Endpoint::arm_send_rto(SendRequest& req) {
  const auto seq = req.seq;
  req.rto = driver_.engine().schedule_after(
      backoff_timeout(req.retries), guarded([this, seq] {
        auto it = sends_.find(seq);
        if (it == sends_.end()) return;
        SendRequest& r = *it->second;
        ++counters_.retransmit_timeouts;
        ++r.retries;
        {
          obs::Event e = ev(obs::EventKind::kRetransmit);
          e.seq = seq;
          e.peer = r.dest.node;
          e.peer_ep = r.dest.ep;
          e.offset = static_cast<std::uint64_t>(r.retries);
          obs_emit(e);
        }
        if (r.retries > driver_.config().protocol.retry_budget) {
          // Budget exhausted: give up gracefully instead of hammering a
          // peer that is clearly not answering.
          ++counters_.retry_exhausted;
          fail_send(seq, /*send_abort=*/!r.eager && r.rndv_sent);
          return;
        }
        if (r.eager) {
          transmit_eager(seq);  // re-arms the timer
        } else if (!r.pull_seen) {
          send_rndv_frame(r);  // RNDV itself was probably lost
        } else {
          arm_send_rto(r);  // passive: receiver drives; just keep waiting
        }
      }),
      {"core", "send_rto"});
}

void Endpoint::fail_send(std::uint32_t seq, bool send_abort, bool peer_dead) {
  auto it = sends_.find(seq);
  if (it == sends_.end()) return;
  // Move the pooled node out before erasing: the entry must be gone before
  // the completion runs, and the node recycles when this frame returns.
  auto node = std::move(it->second);
  sends_.erase(it);
  SendRequest& req = *node;
  driver_.engine().cancel(req.rto);
  ++counters_.aborts;
  {
    obs::Event e = ev(obs::EventKind::kSendAbort);
    e.seq = seq;
    e.peer = req.dest.node;
    e.peer_ep = req.dest.ep;
    obs_emit(e);
  }
  if (send_abort) {
    send_packet(req.dest, AbortBody{seq}, cpu::Priority::kKernel);
  }
  if (!req.eager) {
    if (Region* r = find_region(req.region); r != nullptr) r->drop_use();
  }
  req.done(Status{false, false, 0, peer_dead});
}

void Endpoint::fail_pull(std::uint32_t handle, bool peer_dead) {
  auto it = pulls_.find(handle);
  if (it == pulls_.end()) return;
  PullState& p = *it->second;
  if (p.done) {
    // Data already delivered and completed; only the NOTIFY handshake was
    // still retransmitting. Just free the handle.
    destroy_pull(handle);
    return;
  }
  ++counters_.aborts;
  if (p.region != nullptr) p.region->drop_use();
  obs::Event e = ev(obs::EventKind::kRecvAbort);
  e.seq = handle;
  e.offset = p.sender_seq;
  e.peer = p.peer_node;
  e.peer_ep = p.peer_ep;
  obs_emit(e);
  complete_recv(p.recv, Status{false, false, 0, peer_dead});
  destroy_pull(handle);
}

void Endpoint::fail_all_inflight() {
  // Ascending-id walks with the keys collected first: fail_send/fail_pull
  // erase entries and run user completions that may re-enter the tables.
  std::vector<std::uint32_t> seqs;
  for (const auto& [seq, req] : sends_) seqs.push_back(seq);
  for (std::uint32_t seq : seqs) fail_send(seq, /*send_abort=*/false);

  std::vector<std::uint32_t> handles;
  for (const auto& [handle, ps] : pulls_) handles.push_back(handle);
  for (std::uint32_t handle : handles) fail_pull(handle, /*peer_dead=*/false);

  while (!posted_.empty()) {
    RecvRequest recv = std::move(posted_.front());
    posted_.pop_front();
    complete_recv(recv, Status{false, false, 0});
  }
  inbound_.clear();
}

void Endpoint::fail_requests_to(net::NodeId node, int peer_ep) {
  std::vector<std::uint32_t> seqs;
  for (const auto& [seq, req] : sends_) {
    if (req->dest.node == node &&
        (peer_ep < 0 || req->dest.ep == static_cast<std::uint8_t>(peer_ep))) {
      seqs.push_back(seq);
    }
  }
  for (std::uint32_t seq : seqs) {
    fail_send(seq, /*send_abort=*/false, /*peer_dead=*/true);
  }
  std::vector<std::uint32_t> handles;
  for (const auto& [handle, ps] : pulls_) {
    if (ps->peer_node == node &&
        (peer_ep < 0 || ps->peer_ep == static_cast<std::uint8_t>(peer_ep))) {
      handles.push_back(handle);
    }
  }
  for (std::uint32_t handle : handles) fail_pull(handle, /*peer_dead=*/true);
}

void Endpoint::on_peer_restarted(net::NodeId node, std::uint8_t peer_ep) {
  fail_requests_to(node, peer_ep);
  // Reassembly records from the dead incarnation: unbound ones evaporate,
  // bound ones fail their receive.
  for (auto it = inbound_.begin(); it != inbound_.end();) {
    if (it->peer_node != node || it->peer_ep != peer_ep) {
      ++it;
      continue;
    }
    if (it->bound) complete_recv(it->recv, Status{false, false, 0, true});
    it = inbound_.erase(it);
  }
  // Duplicate-suppression memory keyed by the old incarnation's seq space:
  // the new incarnation reuses seqs from 1, so stale "already completed"
  // records would silently swallow its messages. inbound_key packs node/ep
  // into disjoint bit ranges, so prefix filtering is exact.
  const auto from_peer = [node, peer_ep](std::uint64_t key) {
    return (key >> 41) == node && ((key >> 33) & 0xff) == peer_ep;
  };
  std::vector<std::uint64_t> stale;
  for (std::uint64_t key : completed_) {
    if (from_peer(key)) stale.push_back(key);
  }
  for (std::uint64_t key : stale) completed_.erase(key);
  std::erase_if(completed_fifo_, from_peer);
}

// --- receive posting -----------------------------------------------------------

std::uint64_t Endpoint::irecv(std::uint64_t match, std::uint64_t mask,
                              mem::VirtAddr buf, std::size_t len,
                              RegionId region, Completion done,
                              bool blocking_hint) {
  std::vector<Segment> segs;
  if (len > 0) segs.push_back(Segment{buf, len});
  return irecv(match, mask, std::move(segs), region, std::move(done),
               blocking_hint);
}

std::uint64_t Endpoint::irecv(std::uint64_t match, std::uint64_t mask,
                              std::vector<Segment> segments, RegionId region,
                              Completion done, bool blocking_hint) {
  RecvRequest recv;
  recv.match = match;
  recv.mask = mask;
  recv.segments = std::move(segments);
  for (const Segment& s : recv.segments) recv.total_len += s.len;
  recv.region = region;
  recv.id = next_recv_id_++;
  recv.blocking_hint = blocking_hint;
  const std::uint64_t id = recv.id;
  recv.done = std::move(done);

  // Warm the pin before the rendezvous arrives (Figure 3: MPI_Recv -> pin).
  if (Region* r = find_region(region); r != nullptr) {
    pins_.ensure_pinned(*r, overlap_for(blocking_hint), [](bool) {});
  }

  // Match already-arrived messages in arrival order (MPI non-overtaking).
  for (auto it = inbound_.begin(); it != inbound_.end(); ++it) {
    if (it->bound || !match_ok(recv, it->match)) continue;
    if (it->rndv) {
      InboundMsg msg = std::move(*it);
      inbound_.erase(it);
      start_pull(std::move(msg), std::move(recv));
    } else {
      it->bound = true;
      it->recv = std::move(recv);
      if (it->bytes_received >= it->msg_len) finish_eager_inbound(*it);
    }
    return id;
  }
  posted_.push_back(std::move(recv));
  return id;
}

bool Endpoint::cancel_recv(std::uint64_t recv_id) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->id != recv_id) continue;
    RecvRequest recv = std::move(*it);
    posted_.erase(it);
    complete_recv(recv, Status{false, false, 0});
    return true;
  }
  return false;  // already matched (or completed): too late
}

bool Endpoint::cancel_send(std::uint32_t seq) {
  auto it = sends_.find(seq);
  if (it == sends_.end() || it->second->transmitted) return false;
  fail_send(seq, /*send_abort=*/false);
  return true;
}

// --- packet dispatch -----------------------------------------------------------

void Endpoint::handle_packet(net::NodeId src_node, Packet&& pkt) {
  const std::uint8_t src_ep = pkt.header.src_ep;
  std::visit(
      [&](auto&& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, EagerBody>) {
          on_eager(src_node, src_ep, std::move(body));
        } else if constexpr (std::is_same_v<T, EagerAckBody>) {
          on_eager_ack(src_node, src_ep, body);
        } else if constexpr (std::is_same_v<T, RndvBody>) {
          on_rndv(src_node, src_ep, body);
        } else if constexpr (std::is_same_v<T, PullBody>) {
          on_pull(src_node, src_ep, body);
        } else if constexpr (std::is_same_v<T, PullReplyBody>) {
          on_pull_reply(src_node, src_ep, std::move(body));
        } else if constexpr (std::is_same_v<T, NotifyBody>) {
          on_notify(src_node, src_ep, body);
        } else if constexpr (std::is_same_v<T, NotifyAckBody>) {
          on_notify_ack(body);
        } else if constexpr (std::is_same_v<T, AbortBody>) {
          on_abort(src_node, src_ep, body);
        }
      },
      std::move(pkt.body));
}

// --- eager receive ---------------------------------------------------------------

void Endpoint::on_eager(net::NodeId src, std::uint8_t src_ep,
                        EagerBody&& body) {
  const std::uint64_t key = inbound_key(src, src_ep, body.seq, false);
  if (is_completed(key)) {
    // Retransmission of a message we already delivered: re-ack (the ack was
    // probably lost) but never touch the user buffer again.
    ++counters_.duplicate_frames;
    ++counters_.duplicates_suppressed;
    send_packet({src, src_ep}, EagerAckBody{body.seq},
                cpu::Priority::kBottomHalf);
    return;
  }

  // Find (or create) the reassembly record; matching happens on the first
  // fragment so message order is fixed by arrival order.
  InboundMsg* msg = nullptr;
  for (auto& m : inbound_) {
    if (!m.rndv && m.peer_node == src && m.peer_ep == src_ep &&
        m.seq == body.seq) {
      msg = &m;
      break;
    }
  }
  if (msg == nullptr) {
    InboundMsg m;
    m.rndv = false;
    m.peer_node = src;
    m.peer_ep = src_ep;
    m.seq = body.seq;
    m.match = body.match;
    m.msg_len = body.msg_len;
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (match_ok(*it, body.match)) {
        m.bound = true;
        m.recv = std::move(*it);
        posted_.erase(it);
        break;
      }
    }
    if (!m.bound) m.kernel_buffer.resize(m.msg_len);
    inbound_.push_back(std::move(m));
    msg = &inbound_.back();
  }

  if (msg->frags_seen.count(body.frag_offset) != 0) {
    ++counters_.duplicate_frames;
    ++counters_.duplicates_suppressed;
    return;
  }
  msg->frags_seen.insert(body.frag_offset);
  eager_deliver_frag(*msg, body.frag_offset, std::move(body.data));
}

void Endpoint::eager_deliver_frag(InboundMsg& msg, std::uint32_t frag_offset,
                                  DataChunk&& data) {
  const std::size_t n = data.size();
  const std::uint32_t seq = msg.seq;
  const net::NodeId peer = msg.peer_node;
  const std::uint8_t peer_ep = msg.peer_ep;
  charge_rx_copy(n, [this, peer, peer_ep, seq, frag_offset,
                     data = std::move(data)]() mutable {
    // Re-find the record: it may have completed/vanished while the copy
    // cost was accruing (e.g. duplicate path).
    for (auto& m : inbound_) {
      if (m.rndv || m.peer_node != peer || m.peer_ep != peer_ep ||
          m.seq != seq) {
        continue;
      }
      if (m.bound && m.kernel_buffer.empty()) {
        // Matched before the first fragment arrived: copy directly into the
        // user buffer (bounded by the posted size).
        scatter_to_user(m.recv, frag_offset, data);
      } else {
        // Started as unexpected: every fragment stays in the kernel staging
        // buffer, even if an irecv bound the message mid-reassembly, so the
        // final staged copy delivers a consistent whole. A zero-length
        // message has no bytes (and a null data pointer) to copy.
        if (!data.empty()) {
          std::memcpy(m.kernel_buffer.data() + frag_offset, data.data(),
                      data.size());
        }
      }
      m.bytes_received += data.size();
      if (m.bytes_received >= m.msg_len) finish_eager_inbound(m);
      return;
    }
  });
}

void Endpoint::finish_eager_inbound(InboundMsg& msg) {
  if (!msg.acked) {
    msg.acked = true;
    send_packet({msg.peer_node, msg.peer_ep}, EagerAckBody{msg.seq},
                cpu::Priority::kBottomHalf);
  }

  if (msg.bound) {
    const bool trunc = msg.msg_len > msg.recv.total_len;
    const std::size_t delivered = std::min(msg.msg_len, msg.recv.total_len);
    if (!msg.kernel_buffer.empty()) {
      // Was unexpected when it started arriving: one more copy from the
      // kernel staging buffer into the user buffer.
      const RecvRequest recv = msg.recv;
      std::vector<std::byte> staged = std::move(msg.kernel_buffer);
      remember_completed(
          inbound_key(msg.peer_node, msg.peer_ep, msg.seq, false));
      erase_inbound(msg);
      charge_rx_copy(delivered,
                     [this, recv, staged = std::move(staged), delivered,
                      trunc]() mutable {
                       scatter_to_user(recv, 0,
                                       std::span<const std::byte>(
                                           staged.data(), delivered));
                       complete_recv(recv, Status{true, trunc, delivered});
                     });
      return;
    }
    const RecvRequest recv = msg.recv;
    remember_completed(
        inbound_key(msg.peer_node, msg.peer_ep, msg.seq, false));
    erase_inbound(msg);
    complete_recv(recv, Status{true, trunc, delivered});
    return;
  }
  // Unexpected and complete: wait in the inbound list for a matching irecv.
  // (finish runs again, on the bound path, when irecv binds it.)
}

void Endpoint::scatter_to_user(const RecvRequest& recv, std::size_t offset,
                               std::span<const std::byte> data) {
  if (offset >= recv.total_len) return;
  std::size_t remaining = std::min(data.size(), recv.total_len - offset);
  std::size_t cur = offset;   // message offset being written
  std::size_t src_off = 0;    // consumed bytes of `data`
  std::size_t seg_base = 0;   // message offset where this segment starts
  for (const Segment& s : recv.segments) {
    if (remaining == 0) break;
    const std::size_t seg_end = seg_base + s.len;
    if (cur < seg_end) {
      const std::size_t in_off = cur - seg_base;
      const std::size_t chunk = std::min(remaining, s.len - in_off);
      as_.write(s.addr + in_off, data.subspan(src_off, chunk));
      cur += chunk;
      src_off += chunk;
      remaining -= chunk;
    }
    seg_base = seg_end;
  }
}

void Endpoint::erase_inbound(InboundMsg& msg) {
  for (auto it = inbound_.begin(); it != inbound_.end(); ++it) {
    if (&*it == &msg) {
      inbound_.erase(it);
      return;
    }
  }
}

void Endpoint::complete_recv(const RecvRequest& recv, Status st) {
  ++counters_.eager_completed;
  if (recv.done) recv.done(st);
}

void Endpoint::on_eager_ack(net::NodeId, std::uint8_t,
                            const EagerAckBody& body) {
  auto it = sends_.find(body.seq);
  if (it == sends_.end()) {
    ++counters_.duplicates_suppressed;  // duplicate ack
    return;
  }
  auto node = std::move(it->second);
  sends_.erase(it);
  SendRequest& req = *node;
  driver_.engine().cancel(req.rto);
  {
    obs::Event e = ev(obs::EventKind::kSendDone);
    e.seq = body.seq;
    e.peer = req.dest.node;
    e.peer_ep = req.dest.ep;
    e.len = req.len;
    obs_emit(e);
  }
  req.done(Status{true, false, req.len});
}

// --- rendezvous receive ----------------------------------------------------------

void Endpoint::on_rndv(net::NodeId src, std::uint8_t src_ep,
                       const RndvBody& body) {
  ++counters_.rndv_received;
  const std::uint64_t key = inbound_key(src, src_ep, body.seq, true);
  if (is_completed(key)) {
    ++counters_.duplicates_suppressed;  // stale duplicate
    return;
  }
  for (const auto& [handle, ps] : pulls_) {
    if (ps->peer_node == src && ps->peer_ep == src_ep &&
        ps->sender_seq == body.seq) {
      ++counters_.duplicates_suppressed;  // dup of an in-progress transfer
      return;
    }
  }
  for (const auto& m : inbound_) {
    if (m.rndv && m.peer_node == src && m.peer_ep == src_ep &&
        m.seq == body.seq) {
      ++counters_.duplicates_suppressed;  // dup of an unmatched rendezvous
      return;
    }
  }

  InboundMsg msg;
  msg.rndv = true;
  msg.peer_node = src;
  msg.peer_ep = src_ep;
  msg.seq = body.seq;
  msg.match = body.match;
  msg.msg_len = body.msg_len;
  msg.sender_region = body.region;

  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (match_ok(*it, body.match)) {
      RecvRequest recv = std::move(*it);
      posted_.erase(it);
      start_pull(std::move(msg), std::move(recv));
      return;
    }
  }
  inbound_.push_back(std::move(msg));
}

void Endpoint::start_pull(InboundMsg&& rndv_msg, RecvRequest recv) {
  const std::size_t wanted = std::min(rndv_msg.msg_len, recv.total_len);
  Region* region = find_region(recv.region);
  if (region == nullptr && wanted > 0) {
    // No region to land the data in (severe posted-size mismatch): abort.
    ++counters_.aborts;
    send_packet({rndv_msg.peer_node, rndv_msg.peer_ep},
                AbortBody{rndv_msg.seq}, cpu::Priority::kBottomHalf);
    complete_recv(recv, Status{false, true, 0});
    return;
  }

  auto state = pull_pool_.acquire();
  PullState& ps = *state;
  ps.handle = next_pull_handle_++;
  ps.peer_node = rndv_msg.peer_node;
  ps.peer_ep = rndv_msg.peer_ep;
  ps.sender_seq = rndv_msg.seq;
  ps.sender_region = rndv_msg.sender_region;
  ps.full_len = rndv_msg.msg_len;
  ps.msg_len = wanted;
  ps.recv = std::move(recv);
  ps.region = region;

  const auto& proto = driver_.config().protocol;
  for (std::size_t off = 0; off < wanted; off += proto.pull_block) {
    PullBlock blk;
    blk.offset = off;
    blk.len = std::min(proto.pull_block, wanted - off);
    blk.frame_seen.assign(
        (blk.len + proto.frame_payload - 1) / proto.frame_payload, false);
    ps.blocks.push_back(std::move(blk));
  }

  // `ps` stays valid across the emplace: the pooled node's address is
  // stable even as the table itself shifts.
  const std::uint32_t handle = ps.handle;
  pulls_.emplace(handle, std::move(state));
  {
    obs::Event e = ev(obs::EventKind::kPullStart);
    e.seq = handle;
    e.offset = ps.sender_seq;
    e.len = wanted;
    e.peer = ps.peer_node;
    e.peer_ep = ps.peer_ep;
    e.region = ps.recv.region;
    obs_emit(e);
  }

  if (wanted == 0) {
    finish_pull(ps);
    return;
  }

  region->add_use();
  arm_pull_rto(ps);
  pins_.ensure_pinned(*region, overlap_for(ps.recv.blocking_hint),
                      guarded([this, handle](bool ok) {
    auto it = pulls_.find(handle);
    if (it == pulls_.end()) return;
    PullState& p = *it->second;
    if (!ok) {
      ++counters_.aborts;
      send_packet({p.peer_node, p.peer_ep}, AbortBody{p.sender_seq},
                  cpu::Priority::kKernel);
      p.region->drop_use();
      obs::Event e = ev(obs::EventKind::kRecvAbort);
      e.seq = handle;
      e.offset = p.sender_seq;
      e.peer = p.peer_node;
      e.peer_ep = p.peer_ep;
      obs_emit(e);
      complete_recv(p.recv, Status{false, false, 0});
      destroy_pull(handle);
      return;
    }
    if (!p.started) begin_pull_requests(p);
  }));
}

void Endpoint::begin_pull_requests(PullState& ps) {
  ps.started = true;
  pump_pull_window(ps);
}

void Endpoint::pump_pull_window(PullState& ps) {
  const auto& proto = driver_.config().protocol;
  while (ps.requested_incomplete < proto.pull_window &&
         ps.next_block < ps.blocks.size()) {
    request_block(ps, ps.next_block++);
  }
}

void Endpoint::request_block(PullState& ps, std::size_t block_idx) {
  PullBlock& blk = ps.blocks[block_idx];
  if (blk.complete) return;
  if (!blk.requested) {
    blk.requested = true;
    ++ps.requested_incomplete;
  }
  blk.last_request = driver_.engine().now();
  ++counters_.pulls_sent;
  {
    obs::Event e = ev(obs::EventKind::kPullBlockReq);
    e.seq = ps.handle;
    e.offset = blk.offset;
    e.len = blk.len;
    e.peer = ps.peer_node;
    e.peer_ep = ps.peer_ep;
    obs_emit(e);
  }
  PullBody body;
  body.region = ps.sender_region;
  body.handle = ps.handle;
  body.offset = blk.offset;
  body.len = static_cast<std::uint32_t>(blk.len);
  body.seq = ps.sender_seq;
  send_packet({ps.peer_node, ps.peer_ep}, body, cpu::Priority::kBottomHalf);
}

// Sender side: serve a pull request straight from the (pinned) region.
void Endpoint::on_pull(net::NodeId src, std::uint8_t src_ep,
                       const PullBody& body) {
  if (auto it = sends_.find(body.seq); it != sends_.end()) {
    it->second->pull_seen = true;  // the RNDV clearly arrived
  }
  Region* region = find_region(body.region);
  if (region == nullptr) return;  // undeclared (aborted): ignore
  pins_.touch(*region);

  // A pull must stay inside the region it names; a request that escapes it
  // (corrupted-but-parseable, or hostile) is dropped, never served.
  if (body.offset > region->total_length() ||
      body.len > region->total_length() - body.offset) {
    ++counters_.checksum_drops;
    return;
  }

  const auto& proto = driver_.config().protocol;
  const std::size_t end = body.offset + body.len;
  for (std::size_t off = body.offset; off < end;
       off += proto.frame_payload) {
    const std::size_t n = std::min(proto.frame_payload, end - off);
    ++counters_.region_accesses;
    PullReplyBody reply;
    reply.handle = body.handle;
    reply.offset = off;
    reply.data.resize(n);
    // Zero-copy send: the NIC reads the pinned pages during serialization;
    // no CPU copy cost is charged. If the page is not pinned yet this is an
    // overlap miss and the frame is simply not sent (paper §3.3).
    if (driver_.config().pinning.mode == PinMode::kNone) {
      region->copy_out_paged(off, reply.data);  // NIC-MMU walk, never misses
    } else if (region->copy_out(off, reply.data) !=
               Region::AccessResult::kOk) {
      ++counters_.overlap_misses;
      ++counters_.frames_dropped_on_miss;
      {
        obs::Event e = ev(obs::EventKind::kOverlapMissSend);
        e.region = body.region;
        e.offset = off;
        e.len = n;
        e.seq = body.seq;
        e.peer = src;
        e.peer_ep = src_ep;
        obs_emit(e);
      }
      arm_sender_fast_retry(src, src_ep, body);
      continue;
    }
    {
      obs::Event e = ev(obs::EventKind::kCopyOut);
      e.region = body.region;
      e.offset = off;
      e.len = n;
      e.seq = body.seq;  // binds the copy to its send chain for attribution
      e.peer = src;
      e.peer_ep = src_ep;
      obs_emit(e);
    }
    ++counters_.pull_replies_sent;
    send_packet({src, src_ep}, std::move(reply), cpu::Priority::kBottomHalf);
  }
}

void Endpoint::on_pull_reply(net::NodeId, std::uint8_t,
                             PullReplyBody&& body) {
  auto it = pulls_.find(body.handle);
  if (it == pulls_.end()) {
    ++counters_.duplicate_frames;  // stale reply for a finished transfer
    ++counters_.duplicates_suppressed;
    return;
  }
  PullState& ps = *it->second;
  const auto& proto = driver_.config().protocol;
  // Validate the frame against this pull state before touching any memory:
  // the offset must land on a frame boundary inside a known block and the
  // payload must be exactly the frame the protocol would send for that slot.
  // Anything else is a corrupted-but-parseable or hostile frame — drop it
  // and let retransmission recover; never scribble into the region.
  if (body.offset >= ps.msg_len) {
    ++counters_.checksum_drops;
    return;
  }
  const std::size_t block_idx = body.offset / proto.pull_block;
  if (block_idx >= ps.blocks.size()) {
    ++counters_.checksum_drops;
    return;
  }
  PullBlock& blk = ps.blocks[block_idx];
  const std::size_t in_block = body.offset - blk.offset;
  if (in_block % proto.frame_payload != 0 || in_block >= blk.len) {
    ++counters_.checksum_drops;
    return;
  }
  const std::size_t frame_idx = in_block / proto.frame_payload;
  if (body.data.size() != std::min(proto.frame_payload, blk.len - in_block)) {
    ++counters_.checksum_drops;
    return;
  }
  if (blk.frame_seen[frame_idx]) {
    ++counters_.duplicate_frames;
    ++counters_.duplicates_suppressed;
    return;
  }

  // The paper's cheap test on the region descriptor: not pinned yet ->
  // overlap miss -> drop the packet, retransmission recovers (§3.3).
  ++counters_.region_accesses;
  const bool paged = driver_.config().pinning.mode == PinMode::kNone;
  if (!paged && !ps.region->range_pinned(body.offset, body.data.size())) {
    ++counters_.overlap_misses;
    ++counters_.frames_dropped_on_miss;
    {
      obs::Event e = ev(obs::EventKind::kOverlapMissRecv);
      e.offset = body.offset;
      e.len = body.data.size();
      e.region = ps.region->id();
      e.seq = ps.handle;
      e.peer = ps.peer_node;
      e.peer_ep = ps.peer_ep;
      obs_emit(e);
    }
    arm_receiver_fast_retry(ps, block_idx);
    maybe_optimistic_rerequest(ps, block_idx);
    return;
  }

  blk.frame_seen[frame_idx] = true;
  ++blk.frames_received;
  const std::uint32_t handle = ps.handle;
  const std::size_t n = body.data.size();
  charge_rx_copy(n, [this, handle, block_idx, paged,
                     body = std::move(body)]() mutable {
    auto pit = pulls_.find(handle);
    if (pit == pulls_.end()) return;
    PullState& p = *pit->second;
    if (paged) {
      p.region->copy_in_paged(body.offset, body.data);
    } else if (p.region->copy_in(body.offset, body.data) !=
               Region::AccessResult::kOk) {
      // Invalidated between the check and the copy: count it as a miss and
      // let the re-request machinery recover (after a repin).
      ++counters_.overlap_misses;
      ++counters_.frames_dropped_on_miss;
      {
        obs::Event e = ev(obs::EventKind::kOverlapMissRecv);
        e.offset = body.offset;
        e.len = body.data.size();
        e.region = p.region->id();
        e.seq = p.handle;
        e.peer = p.peer_node;
        e.peer_ep = p.peer_ep;
        obs_emit(e);
      }
      PullBlock& b = p.blocks[block_idx];
      const std::size_t fi = (body.offset - b.offset) /
                             driver_.config().protocol.frame_payload;
      b.frame_seen[fi] = false;
      --b.frames_received;
      pins_.ensure_pinned(*p.region, [](bool) {});
      return;
    }
    {
      obs::Event e = ev(obs::EventKind::kCopyIn);
      e.region = p.region->id();
      e.offset = body.offset;
      e.len = body.data.size();
      e.seq = p.handle;  // binds the copy to its pull chain for attribution
      e.peer = p.peer_node;
      e.peer_ep = p.peer_ep;
      obs_emit(e);
    }
    PullBlock& b = p.blocks[block_idx];
    if (++b.frames_done == b.frame_seen.size()) {
      b.complete = true;
      --p.requested_incomplete;
      ++p.blocks_done;
      if (p.blocks_done == p.blocks.size()) {
        finish_pull(p);
        return;
      }
      pump_pull_window(p);
    }
  });
  maybe_optimistic_rerequest(ps, block_idx);
}

void Endpoint::arm_receiver_fast_retry(PullState& ps, std::size_t block_idx) {
  PullBlock& blk = ps.blocks[block_idx];
  if (blk.fast_retry) return;
  blk.fast_retry = true;
  const auto& proto = driver_.config().protocol;
  const std::uint32_t handle = ps.handle;
  const sim::Time deadline =
      driver_.engine().now() + proto.pull_retry_timeout;

  // Poll the region descriptor until the block's pages are pinned, then
  // re-pull it; past the deadline the coarse retry timer owns recovery.
  // The pending engine event owns the closure; the closure only keeps a
  // weak reference to itself for rescheduling (no ownership cycle).
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, handle, block_idx, deadline,
           weak = std::weak_ptr<std::function<void()>>(poll)] {
    auto it = pulls_.find(handle);
    if (it == pulls_.end()) return;
    PullState& p = *it->second;
    PullBlock& b = p.blocks[block_idx];
    if (p.done || b.complete) {
      b.fast_retry = false;
      return;
    }
    if (p.region->range_pinned(b.offset, b.len)) {
      b.fast_retry = false;
      ++counters_.pull_rerequests;
      request_block(p, block_idx);
      return;
    }
    if (driver_.engine().now() >= deadline) {
      b.fast_retry = false;
      return;
    }
    if (auto self = weak.lock()) {
      driver_.engine().schedule_after(
          driver_.config().protocol.rerequest_cooldown,
          guarded([self] { (*self)(); }), {"core", "pull_retry"});
    }
  };
  driver_.engine().schedule_after(proto.rerequest_cooldown,
                                  guarded([poll] { (*poll)(); }),
                                  {"core", "pull_retry"});
}

void Endpoint::arm_sender_fast_retry(net::NodeId src, std::uint8_t src_ep,
                                     const PullBody& body) {
  // At most one poll per (handle, offset): on_pull retries re-enter here.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(body.handle) << 32) ^
      (body.offset / driver_.config().protocol.pull_block);
  if (!pending_pull_retries_.insert(key).second) return;

  const auto& proto = driver_.config().protocol;
  const sim::Time deadline =
      driver_.engine().now() + proto.pull_retry_timeout;

  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, src, src_ep, body, key, deadline,
           weak = std::weak_ptr<std::function<void()>>(poll)] {
    Region* region = find_region(body.region);
    if (region == nullptr) {
      pending_pull_retries_.erase(key);
      return;
    }
    const std::size_t len =
        std::min<std::size_t>(body.len, region->total_length() - body.offset);
    if (region->range_pinned(body.offset, len)) {
      pending_pull_retries_.erase(key);
      // Re-serve the whole request; the receiver discards duplicates.
      on_pull(src, src_ep, body);
      return;
    }
    if (driver_.engine().now() >= deadline) {
      pending_pull_retries_.erase(key);
      return;
    }
    if (auto self = weak.lock()) {
      driver_.engine().schedule_after(
          driver_.config().protocol.rerequest_cooldown,
          guarded([self] { (*self)(); }), {"core", "pull_retry"});
    }
  };
  driver_.engine().schedule_after(proto.rerequest_cooldown,
                                  guarded([poll] { (*poll)(); }),
                                  {"core", "pull_retry"});
}

void Endpoint::maybe_optimistic_rerequest(PullState& ps,
                                          std::size_t arrived_block) {
  const auto& proto = driver_.config().protocol;
  if (!proto.optimistic_rerequest) return;
  // Data for a later block implies earlier requests were (partly) lost:
  // re-request the oldest incomplete block, rate-limited (footnote 4).
  // "Lost" means missing on the wire — a block whose frames all arrived and
  // are merely queued behind the copy engine is fine.
  for (std::size_t i = 0; i < arrived_block; ++i) {
    PullBlock& blk = ps.blocks[i];
    if (!blk.requested || blk.complete ||
        blk.frames_received == blk.frame_seen.size()) {
      continue;
    }
    if (driver_.engine().now() - blk.last_request <
        proto.rerequest_cooldown) {
      return;
    }
    ++counters_.pull_rerequests;
    request_block(ps, i);
    return;
  }
}

void Endpoint::finish_pull(PullState& ps) {
  ps.done = true;
  driver_.engine().cancel(ps.rto);
  const bool trunc = ps.full_len > ps.msg_len;
  if (ps.region != nullptr) {
    ps.region->drop_use();
  }
  {
    obs::Event e = ev(obs::EventKind::kRecvDone);
    e.seq = ps.handle;
    e.offset = ps.sender_seq;
    e.len = ps.msg_len;
    e.peer = ps.peer_node;
    e.peer_ep = ps.peer_ep;
    obs_emit(e);
  }
  remember_completed(
      inbound_key(ps.peer_node, ps.peer_ep, ps.sender_seq, true));
  complete_recv(ps.recv, Status{true, trunc, ps.msg_len});
  send_notify(ps);
}

void Endpoint::send_notify(PullState& ps) {
  ++counters_.notifies_sent;
  send_packet({ps.peer_node, ps.peer_ep},
              NotifyBody{ps.sender_seq, ps.handle},
              cpu::Priority::kBottomHalf);
  const std::uint32_t handle = ps.handle;
  ps.rto = driver_.engine().schedule_after(
      backoff_timeout(ps.notify_retries), guarded([this, handle] {
        auto it = pulls_.find(handle);
        if (it == pulls_.end()) return;
        PullState& p = *it->second;
        if (++p.notify_retries >
            driver_.config().protocol.notify_retry_budget) {
          // The data is safely delivered; only the sender-side release is
          // lost. Stop retransmitting and free the handle.
          ++counters_.retry_exhausted;
          destroy_pull(handle);
          return;
        }
        ++counters_.retransmit_timeouts;
        send_notify(p);
      }),
      {"core", "notify_rto"});
}

void Endpoint::arm_pull_rto(PullState& ps) {
  const std::uint32_t handle = ps.handle;
  ps.rto = driver_.engine().schedule_after(
      driver_.config().protocol.pull_retry_timeout, guarded([this, handle] {
        auto it = pulls_.find(handle);
        if (it == pulls_.end()) return;
        PullState& p = *it->second;
        if (p.done) return;
        // Only a transfer that made no progress since the last tick is
        // stalled (tail-dropped by an overlap miss, or lost on the wire);
        // one that is merely streaming must not be re-pulled.
        const std::size_t progress = p.frames_received_total();
        if (p.started && progress == p.last_progress) {
          if (++p.stall_ticks > driver_.config().protocol.pull_stall_budget) {
            // The sender has been silent for the whole budget: stop holding
            // receiver state for it, tell it we gave up, fail the receive.
            ++counters_.retry_exhausted;
            ++counters_.aborts;
            send_packet({p.peer_node, p.peer_ep}, AbortBody{p.sender_seq},
                        cpu::Priority::kKernel);
            if (p.region != nullptr) p.region->drop_use();
            obs::Event e = ev(obs::EventKind::kRecvAbort);
            e.seq = handle;
            e.offset = p.sender_seq;
            e.peer = p.peer_node;
            e.peer_ep = p.peer_ep;
            obs_emit(e);
            complete_recv(p.recv, Status{false, false, 0});
            destroy_pull(handle);
            return;
          }
          ++counters_.retransmit_timeouts;
          {
            obs::Event e = ev(obs::EventKind::kPullRetry);
            e.seq = handle;
            e.offset = p.sender_seq;
            e.len = static_cast<std::uint64_t>(p.stall_ticks);
            e.peer = p.peer_node;
            e.peer_ep = p.peer_ep;
            obs_emit(e);
          }
          for (std::size_t i = 0; i < p.blocks.size(); ++i) {
            PullBlock& blk = p.blocks[i];
            if (blk.requested && !blk.complete) request_block(p, i);
          }
        } else {
          p.stall_ticks = 0;
        }
        p.last_progress = progress;
        arm_pull_rto(p);
      }),
      {"core", "pull_rto"});
}

void Endpoint::destroy_pull(std::uint32_t handle) {
  auto it = pulls_.find(handle);
  if (it == pulls_.end()) return;
  driver_.engine().cancel(it->second->rto);
  pulls_.erase(it);
}

// Sender: the receiver has everything; release and complete.
void Endpoint::on_notify(net::NodeId src, std::uint8_t src_ep,
                         const NotifyBody& body) {
  // Always ack: the notify may be a retransmission after our ack was lost.
  send_packet({src, src_ep}, NotifyAckBody{body.handle},
              cpu::Priority::kBottomHalf);
  auto it = sends_.find(body.seq);
  if (it == sends_.end()) {
    ++counters_.duplicates_suppressed;  // notify retransmission
    return;
  }
  auto node = std::move(it->second);
  sends_.erase(it);
  SendRequest& req = *node;
  driver_.engine().cancel(req.rto);
  if (Region* r = find_region(req.region); r != nullptr) r->drop_use();
  {
    obs::Event e = ev(obs::EventKind::kSendDone);
    e.seq = body.seq;
    e.peer = src;
    e.peer_ep = src_ep;
    e.len = req.len;
    obs_emit(e);
  }
  req.done(Status{true, false, req.len});
}

void Endpoint::on_notify_ack(const NotifyAckBody& body) {
  if (pulls_.find(body.handle) == pulls_.end()) {
    ++counters_.duplicates_suppressed;  // ack for an already-freed handle
    return;
  }
  destroy_pull(body.handle);
}

void Endpoint::on_abort(net::NodeId src, std::uint8_t src_ep,
                        const AbortBody& body) {
  // Receiver side: the sender gave up on (src, seq). At most one in-progress
  // pull matches (on_rndv suppresses duplicates), so scan order cannot leak.
  for (auto& [handle, ps] : pulls_) {
    if (ps->peer_node == src && ps->peer_ep == src_ep &&
        ps->sender_seq == body.seq && !ps->done) {
      // Copy the key and pin the pooled node: complete_recv runs a user
      // completion that may insert into pulls_, shifting the flat map the
      // structured bindings point into.
      const std::uint32_t h = handle;
      PullState& p = *ps;
      ++counters_.aborts;
      if (p.region != nullptr) p.region->drop_use();
      obs::Event e = ev(obs::EventKind::kRecvAbort);
      e.seq = h;
      e.offset = p.sender_seq;
      e.peer = src;
      e.peer_ep = src_ep;
      obs_emit(e);
      complete_recv(p.recv, Status{false, false, 0});
      destroy_pull(h);
      return;
    }
  }
  for (auto it = inbound_.begin(); it != inbound_.end(); ++it) {
    if (it->rndv && it->peer_node == src && it->peer_ep == src_ep &&
        it->seq == body.seq) {
      inbound_.erase(it);
      return;
    }
  }
  // Sender side: the receiver aborted our request.
  if (auto it = sends_.find(body.seq);
      it != sends_.end() && it->second->dest.node == src &&
      it->second->dest.ep == src_ep) {
    fail_send(body.seq, /*send_abort=*/false);
  }
}

// --- plumbing ---------------------------------------------------------------------

void Endpoint::charge_rx_copy(std::size_t bytes, sim::UniqueFunction raw) {
  // The continuation captures `this` and runs after an arbitrary queueing
  // delay (CPU run queue or DMA channel) — guard it against endpoint close.
  sim::UniqueFunction after = guarded(std::move(raw));
  cpu::Core& irq = bh_core();
  ioat::DmaEngine* dma = driver_.dma();
  if (driver_.config().protocol.use_ioat && dma != nullptr) {
    // Bottom half only writes the descriptor; the engine moves the data.
    const sim::Time cpu_cost = driver_.cpu().copy_cost(bytes);
    irq.submit(cpu::Priority::kBottomHalf, 300,
               // pinlint: allow(D7: dma and irq are host hardware owned by
               // the Driver, which outlives every endpoint; the endpoint
               // state itself rides inside `after`, already guarded above)
               [dma, bytes, cpu_cost, after = std::move(after),
                &irq]() mutable {
                 if (dma->full()) {
                   // Descriptor ring full: fall back to a CPU copy.
                   irq.submit(cpu::Priority::kBottomHalf, cpu_cost,
                              std::move(after));
                   return;
                 }
                 dma->copy(bytes, [] {}, std::move(after));
               });
    return;
  }
  irq.submit(cpu::Priority::kBottomHalf, driver_.cpu().copy_cost(bytes),
             std::move(after));
}

void Endpoint::obs_emit(obs::Event e) {
  const obs::Relay& relay = driver_.relay();
  if (!relay.active()) return;
  e.node = driver_.node();
  e.ep = id_;
  relay.emit(e);
}

void Endpoint::send_packet(EndpointAddr dest, PacketBody body,
                           cpu::Priority priority, sim::Time extra_cost) {
  {
    obs::Event e = ev(obs::EventKind::kPktTx);
    e.pkt = static_cast<std::uint8_t>(body.index() + 1);
    e.label = packet_type_name(static_cast<PacketType>(body.index() + 1));
    e.peer = dest.node;
    e.peer_ep = dest.ep;
    obs_emit(e);
  }
  Packet pkt;
  pkt.header.type = static_cast<PacketType>(body.index() + 1);
  pkt.header.src_ep = id_;
  pkt.header.dst_ep = dest.ep;
  // Incarnation fencing: our epoch, and the destination's as far as we have
  // learned it (0 = unknown, never fenced — first contact always lands).
  pkt.header.src_epoch = epoch_;
  pkt.header.dst_epoch = driver_.peer_epoch(dest.node, dest.ep);
  pkt.body = std::move(body);

  net::Frame frame;
  frame.dst = dest.node;
  frame.payload = encode(pkt);

  cpu::Core& core = priority == cpu::Priority::kBottomHalf
                        ? bh_core()
                        : process_core_;
  const sim::Time cost = driver_.cpu().tx_frame_overhead + extra_cost;
  core.submit(priority, cost, guarded([this, f = std::move(frame)]() mutable {
    driver_.nic().send(std::move(f));
  }));
}

void Endpoint::remember_completed(std::uint64_t key) {
  completed_.insert(key);
  completed_fifo_.push_back(key);
  while (completed_fifo_.size() > kCompletedMemory) {
    completed_.erase(completed_fifo_.front());
    completed_fifo_.pop_front();
  }
}

bool Endpoint::is_completed(std::uint64_t key) const {
  return completed_.count(key) != 0;
}

std::uint64_t Endpoint::inbound_key(net::NodeId node, std::uint8_t ep,
                                    std::uint32_t seq, bool rndv) {
  return (static_cast<std::uint64_t>(node) << 41) ^
         (static_cast<std::uint64_t>(ep) << 33) ^
         (static_cast<std::uint64_t>(rndv ? 1 : 0) << 32) ^
         static_cast<std::uint64_t>(seq);
}

}  // namespace pinsim::core
