#include "core/driver.hpp"

#include <stdexcept>

#include "core/wire.hpp"
#include "net/watchdog.hpp"
#include "obs/event.hpp"

namespace pinsim::core {

Driver::Driver(sim::Engine& eng, net::Nic& nic, const cpu::CpuModel& cpu,
               ioat::DmaEngine* dma, StackConfig config)
    : eng_(eng), nic_(nic), cpu_(cpu), dma_(dma), config_(config) {
  nic_.set_rx_handler([this](net::Frame&& f) { on_frame(std::move(f)); });
  if (config_.protocol.distribute_interrupts) {
    // Flow steering: the destination endpoint id sits at a fixed offset in
    // the MXoE header (type, src_ep, dst_ep), so the "hardware" can hash on
    // it without a full decode.
    nic_.set_rx_core_selector([this](const net::Frame& f) -> cpu::Core& {
      if (f.payload.size() >= 3) {
        const auto ep_id = static_cast<std::uint8_t>(f.payload[2]);
        if (Endpoint* ep = endpoint(ep_id); ep != nullptr) {
          return ep->process_core();
        }
      }
      return nic_.irq_core();
    });
  }
}

Endpoint& Driver::open_endpoint(mem::AddressSpace& as,
                                cpu::Core& process_core) {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i] == nullptr) {
      endpoints_[i] = std::make_unique<Endpoint>(
          *this, static_cast<std::uint8_t>(i), as, process_core);
      Endpoint& ep = *endpoints_[i];
      SlotLifecycle& sl = slots_[i];
      ep.set_epoch(sl.epoch);
      if (sl.crashed) {
        sl.crashed = false;
        ++sl.restarts;
        if (relay_.active()) {
          obs::Event e;
          e.kind = obs::EventKind::kLifeRestart;
          e.node = node();
          e.ep = static_cast<std::uint8_t>(i);
          e.seq = sl.epoch;
          relay_.emit(e);
        }
      }
      // Crash history survives the endpoint object: the new incarnation's
      // counters start from the slot's running totals.
      Counters& c = ep.counters();
      c.lifecycle_crashes = sl.crashes;
      c.lifecycle_restarts = sl.restarts;
      c.lifecycle_reclaimed_pages = sl.reclaimed_pages;
      return ep;
    }
  }
  throw std::runtime_error("no free endpoint slot");
}

void Driver::close_endpoint(std::uint8_t id) {
  if (id >= endpoints_.size() || endpoints_[id] == nullptr) return;
  endpoints_[id].reset();
  // Bump the incarnation so frames addressed to the dead instance are
  // fenced once the slot reopens. 0 stays reserved for "unknown".
  SlotLifecycle& sl = slots_[id];
  sl.epoch = static_cast<std::uint8_t>(sl.epoch == 255 ? 1 : sl.epoch + 1);
}

void Driver::note_crash(std::uint8_t id, std::uint64_t reclaimed,
                        std::uint64_t pinned_after, std::uint64_t baseline) {
  if (id >= slots_.size()) return;
  SlotLifecycle& sl = slots_[id];
  ++sl.crashes;
  sl.reclaimed_pages += reclaimed;
  sl.crashed = true;
  if (Endpoint* ep = endpoint(id); ep != nullptr) {
    ++ep->counters().lifecycle_crashes;
    ep->counters().lifecycle_reclaimed_pages += reclaimed;
  }
  if (relay_.active()) {
    obs::Event e;
    e.kind = obs::EventKind::kLifeCrash;
    e.node = node();
    e.ep = id;
    e.seq = sl.epoch;         // the incarnation that just died
    e.region = static_cast<std::uint32_t>(reclaimed);  // pages swept back
    e.offset = pinned_after;  // host-wide pinned pages after the sweep
    e.len = baseline;         // expected non-tenant baseline
    relay_.emit(e);
  }
}

std::uint8_t Driver::peer_epoch(net::NodeId node, std::uint8_t ep) const {
  auto it = peer_epochs_.find(peer_key(node, ep));
  return it == peer_epochs_.end() ? 0 : it->second;
}

void Driver::set_bus(obs::Bus* bus) noexcept {
  relay_.set_bus(bus);
  if (watchdog_ != nullptr) watchdog_->set_bus(bus);
}

void Driver::attach_watchdog(net::Watchdog& wd) {
  watchdog_ = &wd;
  wd.set_bus(relay_.bus());
  wd.set_announcement_provider([this] { return announcement_blob(); });
  wd.set_announcement_handler(
      [this](net::NodeId peer, std::span<const std::byte> blob) {
        on_announcement(peer, blob);
      });
  wd.set_peer_status_handler(
      [this](net::NodeId peer, bool alive) { on_peer_status(peer, alive); });
}

std::vector<std::byte> Driver::announcement_blob() const {
  // One byte per slot: the current epoch for open slots, 0 for empty ones —
  // a peer seeing a slot go nonzero -> 0 knows that endpoint closed.
  std::vector<std::byte> blob(kMaxEndpoints);
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    blob[i] = std::byte{endpoints_[i] != nullptr ? slots_[i].epoch
                                                 : std::uint8_t{0}};
  }
  return blob;
}

void Driver::on_peer_epoch_change(net::NodeId node, std::uint8_t ep) {
  for (auto& slot : endpoints_) {
    if (slot != nullptr) slot->on_peer_restarted(node, ep);
  }
}

void Driver::on_announcement(net::NodeId peer,
                             std::span<const std::byte> blob) {
  for (std::size_t s = 0; s < blob.size() && s < kMaxEndpoints; ++s) {
    const auto announced = static_cast<std::uint8_t>(blob[s]);
    const std::uint64_t key = peer_key(peer, static_cast<std::uint8_t>(s));
    auto it = peer_epochs_.find(key);
    const std::uint8_t known = it == peer_epochs_.end() ? 0 : it->second;
    if (announced == 0) {
      // Slot empty over there. If we knew an incarnation, it is gone: fail
      // what is still outstanding to it, once per closure (announcements
      // repeat every beat). Keep the last known epoch so stale frames from
      // the dead incarnation still compare as such.
      if (known != 0 && closed_peer_slots_.insert(key).second) {
        on_peer_epoch_change(peer, static_cast<std::uint8_t>(s));
      }
      continue;
    }
    closed_peer_slots_.erase(key);
    if (known == 0) {
      peer_epochs_.emplace(key, announced);
    } else if (announced != known && epoch_newer(announced, known)) {
      it->second = announced;
      on_peer_epoch_change(peer, static_cast<std::uint8_t>(s));
    }
  }
}

void Driver::on_peer_status(net::NodeId peer, bool alive) {
  if (alive) {
    dead_peers_.erase(peer);
    return;
  }
  dead_peers_.insert(peer);
  for (auto& slot : endpoints_) {
    if (slot == nullptr) continue;
    ++slot->counters().heartbeat_timeouts;
    slot->fail_requests_to(peer);
  }
}

void Driver::on_frame(net::Frame&& frame) {
  // Watchdog control traffic never enters the MXoE decoder (its first byte
  // is outside the PacketType range and would throw).
  if (watchdog_ != nullptr && net::Watchdog::is_heartbeat(frame)) {
    watchdog_->on_heartbeat(frame);
    return;
  }
  Packet pkt;
  try {
    // Zero-copy decode: bulk data adopts the frame's payload vector; on
    // throw the payload is untouched for the attribution paths below.
    pkt = decode_frame(frame);
  } catch (const WireChecksumError&) {
    // Bit-flipped in flight. The header may itself be corrupted, so the
    // dst_ep lookup for counter attribution is best-effort only — the frame
    // is dropped either way and retransmission recovers.
    if (relay_.active()) {
      obs::Event e;
      e.kind = obs::EventKind::kPktChecksumDrop;
      e.node = node();
      e.peer = frame.src;
      relay_.emit(e);
    }
    if (frame.payload.size() >= 3) {
      const auto ep_id = static_cast<std::uint8_t>(frame.payload[2]);
      if (Endpoint* ep = endpoint(ep_id); ep != nullptr) {
        ++ep->counters().frames_corrupted;
        ++ep->counters().checksum_drops;
      }
    }
    return;
  } catch (const WireFormatError&) {
    if (relay_.active()) {
      obs::Event e;
      e.kind = obs::EventKind::kPktMalformed;
      e.node = node();
      e.peer = frame.src;
      relay_.emit(e);
    }
    if (frame.payload.size() >= 3) {
      const auto ep_id = static_cast<std::uint8_t>(frame.payload[2]);
      if (Endpoint* ep = endpoint(ep_id); ep != nullptr) {
        ++ep->counters().frames_corrupted;
      }
    }
    return;  // malformed frame: dropped, retransmission recovers
  }
  if (relay_.active()) {
    obs::Event e;
    e.kind = obs::EventKind::kPktRx;
    e.node = node();
    e.ep = pkt.header.dst_ep;
    e.peer = frame.src;
    e.peer_ep = pkt.header.src_ep;
    e.pkt = static_cast<std::uint8_t>(pkt.type());
    e.label = packet_type_name(pkt.type());
    relay_.emit(e);
  }
  Endpoint* ep = endpoint(pkt.header.dst_ep);
  if (ep == nullptr) return;  // stale traffic to a closed endpoint
  // Epoch fencing is part of the watchdog/recovery layer: without it the
  // epoch table never fills, dst_epoch stays 0 on the wire, and behaviour is
  // bit-identical to the pre-lifecycle stack.
  if (watchdog_ != nullptr) {
    const PacketHeader& h = pkt.header;
    // A frame addressed to an incarnation this slot no longer is: the sender
    // learned our epoch before a close/restart. Drop it — the data, seq and
    // handle spaces all restarted with the new incarnation.
    if (h.dst_epoch != 0 && h.dst_epoch != slots_[h.dst_ep].epoch) {
      ++ep->counters().fenced_stale_frames;
      if (relay_.active()) {
        obs::Event e;
        e.kind = obs::EventKind::kLifeFence;
        e.node = node();
        e.ep = h.dst_ep;
        e.peer = frame.src;
        e.peer_ep = h.src_ep;
        e.seq = h.dst_epoch;
        relay_.emit(e);
      }
      return;
    }
    // Learn the sender's incarnation; fence frames from one we know died.
    if (h.src_epoch != 0) {
      const std::uint64_t key = peer_key(frame.src, h.src_ep);
      auto it = peer_epochs_.find(key);
      if (it == peer_epochs_.end()) {
        peer_epochs_.emplace(key, h.src_epoch);
      } else if (h.src_epoch != it->second) {
        if (epoch_newer(h.src_epoch, it->second)) {
          it->second = h.src_epoch;
          closed_peer_slots_.erase(key);
          on_peer_epoch_change(frame.src, h.src_ep);
        } else {
          ++ep->counters().fenced_stale_frames;
          if (relay_.active()) {
            obs::Event e;
            e.kind = obs::EventKind::kLifeFence;
            e.node = node();
            e.ep = h.dst_ep;
            e.peer = frame.src;
            e.peer_ep = h.src_ep;
            e.seq = h.src_epoch;
            relay_.emit(e);
          }
          return;
        }
      }
    }
  }
  ep->handle_packet(frame.src, std::move(pkt));
}

}  // namespace pinsim::core
