#include "core/driver.hpp"

#include <stdexcept>

#include "core/wire.hpp"
#include "obs/event.hpp"

namespace pinsim::core {

Driver::Driver(sim::Engine& eng, net::Nic& nic, const cpu::CpuModel& cpu,
               ioat::DmaEngine* dma, StackConfig config)
    : eng_(eng), nic_(nic), cpu_(cpu), dma_(dma), config_(config) {
  nic_.set_rx_handler([this](net::Frame&& f) { on_frame(std::move(f)); });
  if (config_.protocol.distribute_interrupts) {
    // Flow steering: the destination endpoint id sits at a fixed offset in
    // the MXoE header (type, src_ep, dst_ep), so the "hardware" can hash on
    // it without a full decode.
    nic_.set_rx_core_selector([this](const net::Frame& f) -> cpu::Core& {
      if (f.payload.size() >= 3) {
        const auto ep_id = static_cast<std::uint8_t>(f.payload[2]);
        if (Endpoint* ep = endpoint(ep_id); ep != nullptr) {
          return ep->process_core();
        }
      }
      return nic_.irq_core();
    });
  }
}

Endpoint& Driver::open_endpoint(mem::AddressSpace& as,
                                cpu::Core& process_core) {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i] == nullptr) {
      endpoints_[i] = std::make_unique<Endpoint>(
          *this, static_cast<std::uint8_t>(i), as, process_core);
      return *endpoints_[i];
    }
  }
  throw std::runtime_error("no free endpoint slot");
}

void Driver::close_endpoint(std::uint8_t id) {
  if (id < endpoints_.size()) endpoints_[id].reset();
}

void Driver::on_frame(net::Frame&& frame) {
  Packet pkt;
  try {
    // Zero-copy decode: bulk data adopts the frame's payload vector; on
    // throw the payload is untouched for the attribution paths below.
    pkt = decode_frame(frame);
  } catch (const WireChecksumError&) {
    // Bit-flipped in flight. The header may itself be corrupted, so the
    // dst_ep lookup for counter attribution is best-effort only — the frame
    // is dropped either way and retransmission recovers.
    if (relay_.active()) {
      obs::Event e;
      e.kind = obs::EventKind::kPktChecksumDrop;
      e.node = node();
      e.peer = frame.src;
      relay_.emit(e);
    }
    if (frame.payload.size() >= 3) {
      const auto ep_id = static_cast<std::uint8_t>(frame.payload[2]);
      if (Endpoint* ep = endpoint(ep_id); ep != nullptr) {
        ++ep->counters().frames_corrupted;
        ++ep->counters().checksum_drops;
      }
    }
    return;
  } catch (const WireFormatError&) {
    if (relay_.active()) {
      obs::Event e;
      e.kind = obs::EventKind::kPktMalformed;
      e.node = node();
      e.peer = frame.src;
      relay_.emit(e);
    }
    if (frame.payload.size() >= 3) {
      const auto ep_id = static_cast<std::uint8_t>(frame.payload[2]);
      if (Endpoint* ep = endpoint(ep_id); ep != nullptr) {
        ++ep->counters().frames_corrupted;
      }
    }
    return;  // malformed frame: dropped, retransmission recovers
  }
  if (relay_.active()) {
    obs::Event e;
    e.kind = obs::EventKind::kPktRx;
    e.node = node();
    e.ep = pkt.header.dst_ep;
    e.peer = frame.src;
    e.peer_ep = pkt.header.src_ep;
    e.pkt = static_cast<std::uint8_t>(pkt.type());
    e.label = packet_type_name(pkt.type());
    relay_.emit(e);
  }
  Endpoint* ep = endpoint(pkt.header.dst_ep);
  if (ep == nullptr) return;  // stale traffic to a closed endpoint
  ep->handle_packet(frame.src, std::move(pkt));
}

}  // namespace pinsim::core
