#include "core/config.hpp"

namespace pinsim::core {

StackConfig regular_pinning_config() {
  StackConfig cfg;
  cfg.pinning.mode = PinMode::kPerCommunication;
  cfg.pinning.overlapped = false;
  cfg.cache.enabled = false;
  return cfg;
}

StackConfig overlapped_pinning_config() {
  StackConfig cfg;
  cfg.pinning.mode = PinMode::kOnDemand;
  cfg.pinning.overlapped = true;
  cfg.cache.enabled = false;
  return cfg;
}

StackConfig pinning_cache_config() {
  StackConfig cfg;
  cfg.pinning.mode = PinMode::kOnDemand;
  cfg.pinning.overlapped = false;
  cfg.cache.enabled = true;
  return cfg;
}

StackConfig overlapped_cache_config() {
  StackConfig cfg;
  cfg.pinning.mode = PinMode::kOnDemand;
  cfg.pinning.overlapped = true;
  cfg.cache.enabled = true;
  return cfg;
}

StackConfig permanent_pinning_config() {
  StackConfig cfg;
  cfg.pinning.mode = PinMode::kPermanent;
  cfg.pinning.overlapped = false;
  cfg.cache.enabled = true;
  return cfg;
}

StackConfig qsnet_ideal_config() {
  StackConfig cfg;
  cfg.pinning.mode = PinMode::kNone;
  cfg.pinning.overlapped = false;
  cfg.cache.enabled = true;  // declarations still map segments to ids
  return cfg;
}

}  // namespace pinsim::core
