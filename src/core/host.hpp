#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/library.hpp"
#include "cpu/core.hpp"
#include "cpu/cpu_model.hpp"
#include "ioat/dma_engine.hpp"
#include "mem/address_space.hpp"
#include "mem/malloc_sim.hpp"
#include "mem/physical_memory.hpp"
#include "mem/pin_arbiter.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/watchdog.hpp"
#include "sim/engine.hpp"

namespace pinsim::core {

/// One simulated machine: physical memory, cores, a 10G NIC (interrupts
/// bound to core 0), an optional I/OAT engine, the Open-MX driver, and the
/// processes running on it. This is the unit the benchmarks instantiate two
/// of (the paper's testbed is a pair of hosts on a Myri-10G Ethernet).
class Host {
 public:
  struct Config {
    cpu::CpuModel cpu = cpu::xeon_e5460();
    std::size_t cores = 4;             // quad-core like the E5460 testbed
    std::size_t memory_frames = 32768; // 128 MiB of 4 kB frames
    bool with_ioat = false;
    ioat::DmaEngine::Config ioat = {};
    net::Nic::Config nic = {};         // rx overhead filled from `cpu`
    std::string name = "host";
  };

  Host(sim::Engine& eng, net::Fabric& fabric, Config cfg, StackConfig stack);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// A process: its own address space and heap, one core, one endpoint, one
  /// library instance.
  ///
  /// Member order is load-bearing for teardown: the library (which
  /// undeclares cached regions through the endpoint) dies first, then the
  /// endpoint (which unregisters its MMU notifier from the address space),
  /// and only then the address space itself.
  struct Process {
    Process(Host& host, cpu::Core& bound_core);

    mem::AddressSpace as;
    mem::MallocSim heap;
    cpu::Core& core;

   private:
    struct EndpointHolder {
      EndpointHolder(Driver& d, mem::AddressSpace& a, cpu::Core& c)
          : driver(d), ep(d.open_endpoint(a, c)) {}
      ~EndpointHolder() { driver.close_endpoint(ep.id()); }
      Driver& driver;
      Endpoint& ep;
    };
    EndpointHolder holder_;

   public:
    Endpoint& ep;
    Library lib;

    [[nodiscard]] EndpointAddr addr() const noexcept { return ep.addr(); }
  };

  /// Spawns a process on the next free core (round-robin over cores 1..N-1,
  /// keeping core 0 — the interrupt core — free when there is more than one
  /// core; the paper's §4.3 pathology binds a process there on purpose).
  Process& spawn_process();

  /// Spawns a process bound to a specific core.
  Process& spawn_process_on(std::size_t core_idx);

  // --- crash/restart lifecycle ----------------------------------------------

  /// Kills process `i` the way a SIGKILL mid-transfer would: every in-flight
  /// request fails locally (no wire traffic — a dead process sends no
  /// aborts), the region cache is flushed, and the address space is torn
  /// down exit()-style so the MMU notifiers reclaim every pinned page and
  /// cancel in-flight pin jobs. The driver records the crash (kLifeCrash
  /// carries the pinned-page baseline proof) and the slot's epoch bumps when
  /// the endpoint closes, fencing stale frames off the next incarnation.
  /// The process slot stays empty until restart_process(i).
  void kill_process(std::size_t i);

  /// Respawns a killed process on the core it died on. Fresh address space,
  /// fresh endpoint (same slot if free, stamped with the bumped epoch),
  /// fresh library. Emits kLifeRestart.
  Process& restart_process(std::size_t i);

  [[nodiscard]] bool process_alive(std::size_t i) const {
    return i < processes_.size() && processes_[i] != nullptr;
  }

  /// Creates the node-liveness watchdog and wires it into the driver (epoch
  /// announcements, heartbeat interception, dead-peer request failure).
  /// Callers still pick the peers (add_peer) and start() it.
  net::Watchdog& enable_watchdog(net::Watchdog::Config cfg);
  [[nodiscard]] net::Watchdog* watchdog() noexcept { return watchdog_.get(); }

  /// Creates the cross-tenant pin arbiter and installs it on this host's
  /// physical memory; every process's pin manager joins it lazily on first
  /// quota contact. Idempotent. Enable *before* setting a pin quota low
  /// enough to contend, so tenants register before the first denial.
  mem::PinArbiter& enable_pin_arbitration();
  [[nodiscard]] mem::PinArbiter* pin_arbiter() noexcept {
    return arbiter_.get();
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] net::Nic& nic() noexcept { return nic_; }
  [[nodiscard]] Driver& driver() noexcept { return driver_; }
  [[nodiscard]] mem::PhysicalMemory& memory() noexcept { return pm_; }
  [[nodiscard]] cpu::Core& core(std::size_t i) { return *cores_.at(i); }
  [[nodiscard]] std::size_t core_count() const noexcept {
    return cores_.size();
  }
  [[nodiscard]] ioat::DmaEngine* dma() noexcept { return dma_.get(); }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] Process& process(std::size_t i) { return *processes_.at(i); }
  [[nodiscard]] std::size_t process_count() const noexcept {
    return processes_.size();
  }

 private:
  static net::Nic::Config nic_config(const Config& cfg);

  sim::Engine& eng_;
  Config cfg_;
  mem::PhysicalMemory pm_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;
  net::Nic nic_;
  std::unique_ptr<ioat::DmaEngine> dma_;
  Driver driver_;
  std::unique_ptr<net::Watchdog> watchdog_;
  // Before processes_: pin managers unregister from the arbiter on teardown.
  std::unique_ptr<mem::PinArbiter> arbiter_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::size_t> process_core_;  // core index, for restart
  std::size_t next_core_ = 1;
};

}  // namespace pinsim::core
