#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/counters.hpp"
#include "core/pin_manager.hpp"
#include "core/region.hpp"
#include "core/wire.hpp"
#include "cpu/core.hpp"
#include "cpu/cpu_model.hpp"
#include "ioat/dma_engine.hpp"
#include "mem/address_space.hpp"
#include "mem/mmu_notifier.hpp"
#include "mem/pool.hpp"
#include "net/frame.hpp"
#include "obs/event.hpp"
#include "sim/engine.hpp"
#include "sim/flat_map.hpp"

namespace pinsim::core {

class Driver;

/// Network-wide endpoint address, like an MX (board, endpoint) pair.
struct EndpointAddr {
  net::NodeId node = net::kInvalidNode;
  std::uint8_t ep = 0;

  friend bool operator==(const EndpointAddr&, const EndpointAddr&) = default;
};

/// Completion status delivered to the user library.
struct Status {
  bool ok = true;
  bool truncated = false;
  std::size_t len = 0;  // bytes actually transferred
  bool peer_dead = false;  // failed because the remote endpoint/node died
};

using Completion = std::function<void(Status)>;

/// One Open-MX endpoint: the driver-side object holding the region table,
/// the pin manager, and the MXoE protocol state machines (paper §2.2, §3).
///
/// All packet handling runs in bottom-half context on the NIC's interrupt
/// core — the stack is interrupt-driven, which is exactly why buffers must
/// be pinned (§2.2: "many incoming packets are not processed in the context
/// of the target process"). Submission paths (`isend*`, `irecv`) are entered
/// from process context; the library charges the syscall cost before calling
/// them.
class Endpoint {
 public:
  Endpoint(Driver& driver, std::uint8_t id, mem::AddressSpace& as,
           cpu::Core& process_core);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // --- region ioctls (called by the user-space library) --------------------

  /// Declares a (possibly vectorial) region. Never pins by itself except in
  /// PinMode::kPermanent. Declaration of invalid segments *succeeds*; the
  /// failure surfaces at communication time (paper §3.1).
  [[nodiscard]] RegionId declare_region(std::vector<Segment> segments);

  /// Destroys a declared region, dropping any pins it still holds.
  void undeclare_region(RegionId id);

  [[nodiscard]] Region* find_region(RegionId id);

  // --- communication ioctls -------------------------------------------------

  /// Small-message send: data is gathered out of the (possibly vectorial)
  /// user buffer into frames at submission (through the page table; no
  /// pinning). A zero-length message is an empty segment list. Returns the
  /// send sequence id usable with cancel_send().
  std::uint32_t isend_eager(EndpointAddr dest, std::uint64_t match,
                            std::vector<Segment> segments, Completion done);
  std::uint32_t isend_eager(EndpointAddr dest, std::uint64_t match,
                            mem::VirtAddr buf, std::size_t len,
                            Completion done);

  /// Large-message send over the rendezvous/pull protocol. The region must
  /// be declared; pinning follows the configured PinningConfig.
  /// `blocking_hint` tells the driver whether the application will block on
  /// this request (§6: overlap may be restricted to blocking operations).
  /// Returns the send sequence id usable with cancel_send().
  std::uint32_t isend_rndv(EndpointAddr dest, std::uint64_t match,
                           RegionId region, std::size_t len, Completion done,
                           bool blocking_hint = true);

  /// Posts a receive into a (possibly vectorial) buffer. `region` is the
  /// declared region backing it for large messages (kInvalidRegion when the
  /// caller expects only eager traffic). An incoming message matches when
  /// (incoming & mask) == (match & mask). Returns a request id usable with
  /// cancel_recv().
  std::uint64_t irecv(std::uint64_t match, std::uint64_t mask,
                      std::vector<Segment> segments, RegionId region,
                      Completion done, bool blocking_hint = true);
  std::uint64_t irecv(std::uint64_t match, std::uint64_t mask,
                      mem::VirtAddr buf, std::size_t len, RegionId region,
                      Completion done, bool blocking_hint = true);

  /// Cancels a posted receive that has not matched yet (MX semantics: a
  /// matched receive is too late to cancel). On success the completion fires
  /// with ok=false and len=0, and true is returned.
  bool cancel_recv(std::uint64_t recv_id);

  /// Cancels a send whose first frame has not left yet (still pinning or
  /// queued behind the copy). Too late once anything was transmitted.
  bool cancel_send(std::uint32_t seq);

  // --- driver-internal entry points ----------------------------------------

  /// Packet dispatch; runs in BH context on the irq core.
  void handle_packet(net::NodeId src_node, Packet&& pkt);

  // --- crash/restart lifecycle ----------------------------------------------

  /// Crash teardown, called by Host::kill_process before the MMU-notifier
  /// sweep: every in-flight send, pull, posted receive and reassembly record
  /// dies right here, completions fire with ok=false, and nothing touches
  /// the wire — a dead process sends no aborts. Normal destruction stays
  /// silent; only the explicit crash path emits.
  void fail_all_inflight();

  /// Fails outstanding sends/pulls whose peer is `node` (all its endpoints
  /// when `peer_ep` is negative) with Status::peer_dead. Driven by the
  /// watchdog's missed-heartbeat verdict and by epoch-change detection.
  void fail_requests_to(net::NodeId node, int peer_ep = -1);

  /// A remote endpoint was reincarnated (or closed): fail what is still
  /// outstanding to the old incarnation and flush its duplicate-suppression
  /// and reassembly state — the new incarnation restarts its seq space, so
  /// stale "already completed" records would wrongly suppress fresh traffic.
  void on_peer_restarted(net::NodeId node, std::uint8_t peer_ep);

  /// Incarnation number stamped into every outgoing frame (src_epoch);
  /// assigned by the driver when the slot opens.
  void set_epoch(std::uint8_t e) noexcept { epoch_ = e; }
  [[nodiscard]] std::uint8_t epoch() const noexcept { return epoch_; }

  [[nodiscard]] std::uint8_t id() const noexcept { return id_; }
  [[nodiscard]] EndpointAddr addr() const noexcept;
  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] PinManager& pin_manager() noexcept { return pins_; }
  [[nodiscard]] cpu::Core& process_core() noexcept { return process_core_; }

  /// Core this endpoint's bottom halves run on: the process core under
  /// distributed interrupts, otherwise the NIC's irq core.
  [[nodiscard]] cpu::Core& bh_core() noexcept;
  [[nodiscard]] mem::AddressSpace& address_space() noexcept { return as_; }
  [[nodiscard]] Driver& driver() noexcept { return driver_; }

  /// Number of in-flight send/recv requests (drained == 0); used by tests.
  [[nodiscard]] std::size_t inflight() const noexcept;

 private:
  // ---- send side -----------------------------------------------------------

  struct SendRequest {
    std::uint32_t seq = 0;
    EndpointAddr dest;
    std::uint64_t match = 0;
    std::size_t len = 0;
    bool transmitted = false;  // any frame already left (limits cancel)
    Completion done;
    // Eager state.
    bool eager = false;
    std::vector<std::byte> eager_data;  // kernel copy, for retransmission
    // Rendezvous state.
    RegionId region = kInvalidRegion;
    bool rndv_sent = false;
    bool pull_seen = false;  // first PULL acks the RNDV
    int retries = 0;
    sim::Engine::EventId rto{};
  };

  // ---- receive side ---------------------------------------------------------

  struct RecvRequest {
    std::uint64_t match = 0;
    std::uint64_t mask = 0;
    std::vector<Segment> segments;  // vectorial user buffer
    std::size_t total_len = 0;      // sum of segment lengths
    RegionId region = kInvalidRegion;
    std::uint64_t id = 0;  // for cancellation
    bool blocking_hint = true;
    Completion done;
  };

  /// Reassembly / matching record for a message whose first packet arrived.
  /// Matching is decided at first-packet arrival to preserve MPI ordering.
  struct InboundMsg {
    bool rndv = false;
    net::NodeId peer_node = net::kInvalidNode;
    std::uint8_t peer_ep = 0;
    std::uint32_t seq = 0;
    std::uint64_t match = 0;
    std::size_t msg_len = 0;
    // Eager-specific.
    std::size_t bytes_received = 0;
    sim::FlatSet<std::uint32_t> frags_seen; // offsets, for dup suppression
    std::vector<std::byte> kernel_buffer;   // only when unexpected
    bool bound = false;                     // matched to a posted recv
    bool acked = false;                     // EAGER_ACK already sent
    RecvRequest recv;                       // valid when bound
    // Rendezvous-specific.
    std::uint32_t sender_region = kInvalidRegion;
  };

  struct PullBlock {
    std::size_t offset = 0;  // absolute message offset
    std::size_t len = 0;
    std::vector<bool> frame_seen;
    std::size_t frames_received = 0;  // arrived on the wire (copy may pend)
    std::size_t frames_done = 0;      // copied into the region
    bool requested = false;
    bool complete = false;
    bool fast_retry = false;  // local-drop recovery poll armed
    sim::Time last_request = 0;
  };

  /// Receiver-side large-message transfer (one per matched rendezvous).
  struct PullState {
    std::uint32_t handle = 0;
    net::NodeId peer_node = net::kInvalidNode;
    std::uint8_t peer_ep = 0;
    std::uint32_t sender_seq = 0;
    std::uint32_t sender_region = kInvalidRegion;
    std::size_t msg_len = 0;     // bytes actually pulled (after truncation)
    std::size_t full_len = 0;    // sender's message length
    RecvRequest recv;
    Region* region = nullptr;
    std::vector<PullBlock> blocks;
    std::size_t next_block = 0;
    std::size_t blocks_done = 0;
    std::size_t requested_incomplete = 0;
    bool started = false;  // pulls flowing (pin gate passed)
    bool done = false;     // data complete, NOTIFY (re)transmitting
    int notify_retries = 0;
    int stall_ticks = 0;   // consecutive progress-free pull-retry ticks
    std::size_t last_progress = 0;  // frames received at the last rto tick
    sim::Engine::EventId rto{};

    [[nodiscard]] std::size_t frames_received_total() const {
      std::size_t n = 0;
      for (const PullBlock& b : blocks) n += b.frames_received;
      return n;
    }
  };

  friend struct EndpointNotifier;

  // Submission helpers.
  void transmit_eager(std::uint32_t seq);
  void start_rndv(SendRequest& req);
  void send_rndv_frame(SendRequest& req);
  void arm_send_rto(SendRequest& req);
  void fail_send(std::uint32_t seq, bool send_abort, bool peer_dead = false);

  /// Aborts one in-progress pull locally: drops the region use, emits
  /// kRecvAbort, completes the receive with ok=false, destroys the state.
  /// Never sends an abort packet (callers that want one send it first).
  void fail_pull(std::uint32_t handle, bool peer_dead);

  /// Exponential backoff: base retransmit timeout doubled per retry already
  /// burned, capped at `retransmit_backoff_max`.
  [[nodiscard]] sim::Time backoff_timeout(int retries) const;

  // Packet handlers (BH context).
  void on_eager(net::NodeId src, std::uint8_t src_ep, EagerBody&& body);
  void on_eager_ack(net::NodeId src, std::uint8_t src_ep,
                    const EagerAckBody& body);
  void on_rndv(net::NodeId src, std::uint8_t src_ep, const RndvBody& body);
  void on_pull(net::NodeId src, std::uint8_t src_ep, const PullBody& body);
  void on_pull_reply(net::NodeId src, std::uint8_t src_ep,
                     PullReplyBody&& body);
  void on_notify(net::NodeId src, std::uint8_t src_ep, const NotifyBody& body);
  void on_notify_ack(const NotifyAckBody& body);
  void on_abort(net::NodeId src, std::uint8_t src_ep, const AbortBody& body);

  // Eager receive plumbing.
  /// Writes `data` at message offset `offset` into the request's (possibly
  /// vectorial) buffer through the page table, clipped to the posted size.
  void scatter_to_user(const RecvRequest& recv, std::size_t offset,
                       std::span<const std::byte> data);
  void eager_deliver_frag(InboundMsg& msg, std::uint32_t frag_offset,
                          DataChunk&& data);
  void finish_eager_inbound(InboundMsg& msg);
  void erase_inbound(InboundMsg& msg);
  void complete_recv(const RecvRequest& recv, Status st);

  // Pull machinery.
  void start_pull(InboundMsg&& rndv_msg, RecvRequest recv);
  void begin_pull_requests(PullState& ps);
  void request_block(PullState& ps, std::size_t block_idx);
  void pump_pull_window(PullState& ps);
  void maybe_optimistic_rerequest(PullState& ps, std::size_t arrived_block);

  /// §3.3 drop-on-miss recovery, fast path: the side that dropped a packet
  /// because its own page was not pinned yet *knows* it did, so it watches
  /// its pin frontier and retries as soon as the range is pinned ("it is
  /// resent almost immediately most of the times", §4.3). The coarse pull
  /// retry timer stays as the backstop when pinning itself is starved.
  void arm_receiver_fast_retry(PullState& ps, std::size_t block_idx);
  void arm_sender_fast_retry(net::NodeId src, std::uint8_t src_ep,
                             const PullBody& body);
  void finish_pull(PullState& ps);
  void send_notify(PullState& ps);
  void arm_pull_rto(PullState& ps);
  void destroy_pull(std::uint32_t handle);

  // Copy-charging helpers: run `after` once the copy cost has been paid
  // (CPU bottom half or I/OAT channel).
  void charge_rx_copy(std::size_t bytes, sim::UniqueFunction after);

  // Frame assembly/transmission. `priority` is BH for packet-driven sends
  // and kernel for process-context submissions.
  void send_packet(EndpointAddr dest, PacketBody body, cpu::Priority priority,
                   sim::Time extra_cost = 0);

  /// Stamps (node, ep) onto `e` and hands it to the driver's observability
  /// relay; a no-op (one pointer compare) with no tracer or bus attached.
  void obs_emit(obs::Event e);

  [[nodiscard]] bool match_ok(const RecvRequest& r, std::uint64_t match) const {
    return (r.match & r.mask) == (match & r.mask);
  }

  /// Whether this request's pinning overlaps with communication, combining
  /// the global config with the §6 per-request blocking hint.
  [[nodiscard]] bool overlap_for(bool blocking_hint) const;

  /// Remembers a completed inbound message id for duplicate suppression
  /// (bounded memory).
  void remember_completed(std::uint64_t key);
  [[nodiscard]] bool is_completed(std::uint64_t key) const;

  /// Wraps a timer/core-queue callback so it turns into a no-op once this
  /// endpoint is destroyed. Closures capturing `this` can outlive the
  /// endpoint inside the engine's event queue or a core's run queue; an
  /// endpoint closed mid-transfer must not let them fire into freed memory.
  template <typename F>
  [[nodiscard]] auto guarded(F f) {
    return [weak = std::weak_ptr<void>(alive_),
            fn = std::move(f)](auto&&... args) mutable {
      if (weak.expired()) return;
      fn(std::forward<decltype(args)>(args)...);
    };
  }
  [[nodiscard]] static std::uint64_t inbound_key(net::NodeId node,
                                                 std::uint8_t ep,
                                                 std::uint32_t seq,
                                                 bool rndv);

  /// Liveness token for guarded() closures; reset first thing in ~Endpoint.
  std::shared_ptr<void> alive_ = std::make_shared<char>();

  Driver& driver_;
  std::uint8_t id_;
  std::uint8_t epoch_ = 1;  // stamped by the driver at open
  mem::AddressSpace& as_;
  cpu::Core& process_core_;
  Counters counters_;
  PinManager pins_;
  std::unique_ptr<mem::MmuNotifier> notifier_;

  // Request tables are sorted flat maps (deterministic ascending iteration,
  // no per-entry allocation) over pooled nodes: a SendRequest/PullState must
  // keep a stable address across reentrant completions that insert into the
  // table, and the pools recycle the nodes so steady-state traffic stops
  // allocating. Pools are declared before the tables that hold their nodes.
  mem::ObjectPool<SendRequest> send_pool_;
  mem::ObjectPool<PullState> pull_pool_;

  sim::FlatMap<RegionId, std::unique_ptr<Region>> regions_;
  RegionId next_region_ = 1;

  sim::FlatMap<std::uint32_t, mem::ObjectPool<SendRequest>::Ptr> sends_;
  std::uint32_t next_send_seq_ = 1;

  std::list<RecvRequest> posted_;
  std::uint64_t next_recv_id_ = 1;
  std::list<InboundMsg> inbound_;  // unmatched or in-progress inbound msgs
  sim::FlatMap<std::uint32_t, mem::ObjectPool<PullState>::Ptr> pulls_;
  std::uint32_t next_pull_handle_ = 1;

  sim::FlatSet<std::uint64_t> completed_;
  std::deque<std::uint64_t> completed_fifo_;
  sim::FlatSet<std::uint64_t> pending_pull_retries_;  // sender fast-retry polls
};

}  // namespace pinsim::core
