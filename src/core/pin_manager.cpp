#include "core/pin_manager.hpp"

#include <algorithm>
#include <cassert>

#include "mem/types.hpp"

namespace pinsim::core {

PinManager::PinManager(sim::Engine& eng, cpu::Core& core,
                       const cpu::CpuModel& cpu, const PinningConfig& cfg,
                       Counters& counters, TracerProvider tracer)
    : eng_(eng),
      core_(core),
      cpu_(cpu),
      cfg_(cfg),
      counters_(counters),
      tracer_(std::move(tracer)) {}

void PinManager::trace(const char* category, Region& r, const char* what) {
  if (!tracer_) return;
  sim::Tracer* t = tracer_();
  if (t == nullptr) return;
  t->record(category, "region " + std::to_string(r.id()) + " " + what +
                          " (" + std::to_string(r.pinned_pages()) + "/" +
                          std::to_string(r.page_count()) + " pages)");
}

void PinManager::register_region(Region& r) { lru_[&r] = eng_.now(); }

void PinManager::unregister_region(Region& r) {
  // Cancel any in-flight pinning and release pins before forgetting it.
  if (auto it = jobs_.find(&r); it != jobs_.end() && it->second.active) {
    ++it->second.generation;
    it->second.active = false;
  }
  unpin(r);
  jobs_.erase(&r);
  lru_.erase(&r);
  was_pinned_.erase(&r);
}

void PinManager::touch(Region& r) {
  if (auto it = lru_.find(&r); it != lru_.end()) it->second = eng_.now();
}

void PinManager::ensure_pinned(Region& r, Completion done) {
  ensure_pinned(r, cfg_.overlapped, std::move(done));
}

void PinManager::ensure_pinned(Region& r, bool overlapped, Completion done) {
  touch(r);
  if (cfg_.mode == PinMode::kNone) {
    done(true);  // QsNet-style: nothing to pin, ever
    return;
  }
  if (r.fully_pinned()) {
    done(true);
    return;
  }
  start_or_join(r, /*wait_full=*/!overlapped, std::move(done));
}

void PinManager::start_or_join(Region& r, bool wait_full, Completion done) {
  PinJob& job = jobs_[&r];

  if (!wait_full) {
    // Overlapped: the communication proceeds once the synchronous pre-pin
    // threshold is reached (0 pages by default — proceed immediately).
    const std::size_t threshold =
        std::min(cfg_.sync_prepin_pages, r.page_count());
    if (r.pinned_pages() >= threshold && job.active) {
      // Background pinning already past the threshold.
      done(true);
    } else if (r.pinned_pages() >= threshold && !job.active &&
               threshold == 0) {
      done(true);
    } else {
      job.early_threshold = threshold;
      job.early_waiters.push_back(std::move(done));
      done = nullptr;
    }
  } else {
    job.full_waiters.push_back(std::move(done));
    done = nullptr;
  }

  if (!job.active) {
    job.active = true;
    job.charged_base = false;
    ++counters_.pin_ops;
    if (was_pinned_.count(&r) != 0 && was_pinned_[&r]) ++counters_.repins;
    r.set_state(Region::PinState::kPinning);
    trace("pin.start", r, "pinning");
    schedule_chunk(r);
  }
}

void PinManager::schedule_chunk(Region& r) {
  PinJob& job = jobs_[&r];
  assert(job.active);
  if (r.fully_pinned()) {
    finish(r, true);
    return;
  }
  const std::size_t chunk =
      std::min(cfg_.pin_chunk_pages, r.unpinned_pages());
  shed_pins_if_needed(chunk);

  sim::Time cost = static_cast<sim::Time>(chunk) *
                   (cpu_.pin_cost(1) - cpu_.pin_cost(0));
  if (!job.charged_base) {
    cost += cpu_.pin_cost(0);
    job.charged_base = true;
  }

  const std::uint64_t gen = job.generation;
  core_.submit(cpu::Priority::kKernel, cost, [this, &r, gen, chunk] {
    auto it = jobs_.find(&r);
    if (it == jobs_.end() || !it->second.active ||
        it->second.generation != gen) {
      return;  // invalidated or undeclared while the cost was accruing
    }
    // The work time has been paid; take the page references now.
    std::vector<mem::FrameId> frames;
    frames.reserve(chunk);
    bool failed = false;
    auto& as = r.address_space();
    const std::size_t base_slot = r.pinned_pages();
    for (std::size_t i = 0; i < chunk; ++i) {
      try {
        frames.push_back(as.pin_page(r.page_va_at(base_slot + i)));
      } catch (const mem::InvalidAddressError&) {
        failed = true;  // the paper's invalid-segment-at-pin-time case
        break;
      } catch (const mem::OutOfMemoryError&) {
        // Physical frames exhausted: direct reclaim. Shed an idle region's
        // pins (making its pages reclaimable) and swap out unpinned pages
        // until the allocation can proceed; with nothing reclaimable the
        // request fails like get_user_pages returning -ENOMEM.
        (void)shed_one_victim();
        std::size_t freed = 0;
        for (mem::VirtAddr va : as.resident_unpinned_pages()) {
          if (freed >= chunk - i + 8) break;
          if (as.swap_out(va)) ++freed;
        }
        if (freed == 0) {
          failed = true;
          break;
        }
        --i;  // retry this page
      }
    }
    r.commit_pins(frames);
    counters_.pages_pinned += frames.size();
    if (failed) {
      ++counters_.pin_failures;
      finish(r, false);
      return;
    }
    release_early_waiters(r, true);
    schedule_chunk(r);
  });
}

void PinManager::release_early_waiters(Region& r, bool ok) {
  PinJob& job = jobs_[&r];
  if (job.early_waiters.empty()) return;
  if (ok && r.pinned_pages() < job.early_threshold && !r.fully_pinned()) {
    return;
  }
  std::vector<Completion> waiters;
  waiters.swap(job.early_waiters);
  for (auto& w : waiters) w(ok);
}

void PinManager::finish(Region& r, bool ok) {
  PinJob& job = jobs_[&r];
  job.active = false;
  ++job.generation;
  was_pinned_[&r] = was_pinned_[&r] || ok;
  trace(ok ? "pin.done" : "pin.fail", r, ok ? "fully pinned" : "failed");

  if (!ok) {
    r.set_state(Region::PinState::kFailed);
    // Give back whatever partial pins we hold; a failed region holds none.
    do_unpin(r, counters_.unpin_ops);
    r.set_state(Region::PinState::kFailed);
  }

  release_early_waiters(r, ok);
  std::vector<Completion> waiters;
  waiters.swap(job.full_waiters);
  for (auto& w : waiters) w(ok);
  // Requests that proceeded on an earlier early-release and are now mid-
  // communication need an abort path when pinning later fails.
  if (!ok && failure_handler_) failure_handler_(r);
}

void PinManager::unpin(Region& r) {
  if (auto it = jobs_.find(&r); it != jobs_.end() && it->second.active) {
    ++it->second.generation;
    it->second.active = false;
  }
  do_unpin(r, counters_.unpin_ops);
}

void PinManager::do_unpin(Region& r, std::uint64_t& op_counter) {
  auto pins = r.take_all_pins();
  if (pins.empty()) return;
  auto& as = r.address_space();
  for (auto& [va, frame] : pins) as.unpin_page(va, frame);
  ++op_counter;
  counters_.pages_unpinned += pins.size();
  // In per-communication mode the unpin is part of the undeclare ioctl and
  // blocks the caller (it precedes whatever the application does next). In
  // the decoupled modes the driver releases pages in deferred context —
  // new syscalls overtake it, so it stays off the critical path. This is
  // half of what Figures 6-7 measure: the paper's model hides the unpin as
  // well as the pin. Charged in small quanta: the real page-release loop is
  // preemptible and must not block bottom halves for hundreds of µs.
  const auto prio = cfg_.mode == PinMode::kPerCommunication
                        ? cpu::Priority::kKernel
                        : cpu::Priority::kIdle;
  const sim::Time per_page = cpu_.unpin_cost(1) - cpu_.unpin_cost(0);
  std::size_t remaining = pins.size();
  core_.consume(prio, cpu_.unpin_cost(0));
  while (remaining > 0) {
    const std::size_t chunk = std::min(cfg_.pin_chunk_pages, remaining);
    core_.consume(prio, static_cast<sim::Time>(chunk) * per_page);
    remaining -= chunk;
  }
}

void PinManager::invalidate_range(mem::VirtAddr start, mem::VirtAddr end) {
  for (auto& [region, last_use] : lru_) {
    (void)last_use;
    Region& r = *region;
    if (!r.overlaps(start, end)) continue;
    ++counters_.notifier_invalidations;
    trace("pin.invalidate", r, "mmu notifier");

    bool aborted_active_pin = false;
    if (auto it = jobs_.find(&r); it != jobs_.end() && it->second.active) {
      ++it->second.generation;
      it->second.active = false;
      aborted_active_pin = true;
    }
    do_unpin(r, counters_.unpin_ops);

    if (aborted_active_pin) {
      // Anyone waiting on this pin loses the race with the invalidation.
      PinJob& job = jobs_[&r];
      r.set_state(Region::PinState::kFailed);
      std::vector<Completion> early;
      early.swap(job.early_waiters);
      std::vector<Completion> full;
      full.swap(job.full_waiters);
      for (auto& w : full) w(false);
      for (auto& w : early) w(false);
      if (failure_handler_) failure_handler_(r);
      r.set_state(Region::PinState::kUnpinned);
    }
  }
}

bool PinManager::shed_one_victim() {
  Region* victim = nullptr;
  sim::Time oldest = 0;
  for (auto& [region, last_use] : lru_) {
    if (region->use_count() != 0 || region->pinned_pages() == 0) continue;
    if (auto it = jobs_.find(region); it != jobs_.end() && it->second.active) {
      continue;
    }
    if (victim == nullptr || last_use < oldest) {
      victim = region;
      oldest = last_use;
    }
  }
  if (victim == nullptr) return false;  // nothing evictable
  ++counters_.pressure_unpins;
  trace("pin.shed", *victim, "memory pressure");
  do_unpin(*victim, counters_.unpin_ops);
  return true;
}

void PinManager::shed_pins_if_needed(std::size_t incoming_pages) {
  if (lru_.empty()) return;
  auto& pm = lru_.begin()->first->address_space().physical();
  while (pm.pinned_pages() + incoming_pages > cfg_.max_pinned_pages) {
    if (!shed_one_victim()) return;
  }
}

}  // namespace pinsim::core
