#include "core/pin_manager.hpp"

#include <algorithm>
#include <cassert>

#include "mem/types.hpp"

namespace pinsim::core {

PinManager::PinManager(sim::Engine& eng, cpu::Core& core,
                       const cpu::CpuModel& cpu, const PinningConfig& cfg,
                       Counters& counters, const obs::Relay* relay)
    : eng_(eng),
      core_(core),
      cpu_(cpu),
      cfg_(cfg),
      counters_(counters),
      relay_(relay) {}

PinManager::~PinManager() {
  if (arb_registered_) arbiter_->unregister_tenant(arb_id_);
}

void PinManager::maybe_join_arbitration(mem::PhysicalMemory& pm) {
  if (arb_registered_ || pm.arbiter() == nullptr) return;
  arbiter_ = pm.arbiter();
  arb_id_ = arbiter_->register_tenant(this, cfg_.tenant_weight);
  arb_registered_ = true;
}

bool PinManager::arbitrate_headroom() {
  if (!arb_registered_) return false;
  ++counters_.tenant_arb_requests;
  if (!arbiter_->request_headroom(this)) return false;
  ++counters_.tenant_arb_grants;
  return true;
}

std::size_t PinManager::arb_pinned_pages() const {
  std::size_t total = 0;
  for (const auto& [rid, t] : tracked_) {
    (void)rid;
    if (t->region != nullptr) total += t->region->pinned_pages();
  }
  return total;
}

bool PinManager::arb_shed_idle() {
  if (!shed_one_victim()) return false;
  ++counters_.tenant_sheds_suffered;
  return true;
}

void PinManager::arb_note_floor_protected() {
  ++counters_.tenant_floor_protected;
}

void PinManager::emit(obs::EventKind kind, Region& r, const char* what) {
  if (relay_ == nullptr || !relay_->active()) return;
  obs::Event e;
  e.kind = kind;
  e.node = node_;
  e.ep = ep_;
  e.region = r.id();
  e.offset = r.pinned_pages();
  e.len = r.page_count();
  e.label = what;
  relay_->emit(e);
}

void PinManager::emit_invalidate(Region& r, std::size_t cut) {
  if (relay_ == nullptr || !relay_->active()) return;
  obs::Event e;
  e.kind = obs::EventKind::kPinInvalidate;
  e.node = node_;
  e.ep = ep_;
  e.region = r.id();
  e.seq = static_cast<std::uint32_t>(cut);
  e.offset = r.pinned_pages();
  e.len = r.page_count();
  e.label = "mmu notifier";
  relay_->emit(e);
}

PinManager::Tracked& PinManager::track(Region& r) {
  auto it = tracked_.find(r.id());
  if (it == tracked_.end()) {
    it = tracked_.emplace(r.id(), tracked_pool_.acquire()).first;
  }
  Tracked& t = *it->second;
  t.region = &r;
  return t;
}

PinManager::Tracked* PinManager::find_alive(RegionId rid,
                                            const Region* expected) {
  auto it = tracked_.find(rid);
  if (it == tracked_.end() || it->second->region != expected) return nullptr;
  return it->second.get();
}

void PinManager::register_region(Region& r) {
  Tracked& t = track(r);
  t.registered = true;
  t.last_use = eng_.now();
}

void PinManager::unregister_region(Region& r) {
  // Cancel any in-flight pinning and release pins before forgetting it.
  if (Tracked* t = find_alive(r.id(), &r); t != nullptr && t->job.active) {
    ++t->job.generation;
    t->job.active = false;
  }
  unpin(r);
  tracked_.erase(r.id());
}

void PinManager::touch(Region& r) {
  if (Tracked* t = find_alive(r.id(), &r)) t->last_use = eng_.now();
}

void PinManager::ensure_pinned(Region& r, Completion done) {
  ensure_pinned(r, cfg_.overlapped, std::move(done));
}

void PinManager::ensure_pinned(Region& r, bool overlapped, Completion done) {
  touch(r);
  if (cfg_.mode == PinMode::kNone) {
    done(true);  // QsNet-style: nothing to pin, ever
    return;
  }
  if (r.fully_pinned()) {
    done(true);
    return;
  }
  // kFailed is retryable, not terminal (§3.1: the region "stays declared,
  // repinned at next communication"): a past pin failure — memory pressure,
  // a then-invalid segment since remapped — must not poison the declaration.
  if (r.state() == Region::PinState::kFailed) {
    Tracked* t = find_alive(r.id(), &r);
    if (t == nullptr || !t->job.active) {
      r.set_state(Region::PinState::kUnpinned);
      ++counters_.pin_fail_resets;
      emit(obs::EventKind::kPinReset, r, "failed region retried");
    }
  }
  start_or_join(r, /*wait_full=*/!overlapped, std::move(done));
}

void PinManager::start_or_join(Region& r, bool wait_full, Completion done) {
  Tracked& t = track(r);
  PinJob& job = t.job;

  if (!wait_full) {
    // Overlapped: the communication proceeds once the synchronous pre-pin
    // threshold is reached (0 pages by default — proceed immediately).
    const std::size_t threshold =
        std::min(cfg_.sync_prepin_pages, r.page_count());
    if (r.pinned_pages() >= threshold && job.active) {
      // Background pinning already past the threshold.
      done(true);
    } else if (r.pinned_pages() >= threshold && !job.active &&
               threshold == 0) {
      done(true);
    } else {
      job.early_threshold = threshold;
      job.early_waiters.push_back(std::move(done));
      done = nullptr;
    }
  } else {
    job.full_waiters.push_back(std::move(done));
    done = nullptr;
  }

  if (!job.active) {
    job.active = true;
    job.charged_base = false;
    job.retries = 0;
    job.inval_restarts = 0;
    ++counters_.pin_ops;
    if (t.was_pinned) ++counters_.repins;
    r.set_state(Region::PinState::kPinning);
    emit(obs::EventKind::kPinStart, r, "pinning");
    schedule_chunk(r);
  }
}

void PinManager::schedule_chunk(Region& r) {
  PinJob& job = track(r).job;
  assert(job.active);
  if (r.fully_pinned()) {
    finish(r, true);
    return;
  }
  auto& pm = r.address_space().physical();
  maybe_join_arbitration(pm);
  std::size_t chunk = std::min(cfg_.pin_chunk_pages, r.unpinned_pages());
  shed_pins_if_needed(pm, chunk);

  // Graceful degradation under a pinned-page quota: when the full chunk
  // cannot fit even after shedding idle regions, pin what fits — a smaller
  // frontier advance beats a failed one. With zero headroom nothing can pin
  // at all; first ask the host arbiter (if any) to shed an over-floor
  // tenant for us, then back off and retry so a transient squeeze (another
  // endpoint releasing pages, the quota being raised) heals, and a
  // permanent one ends in a clean ok=false abort once the budget runs out.
  std::size_t headroom = pm.pin_headroom();
  if (headroom == 0 && arbitrate_headroom()) headroom = pm.pin_headroom();
  if (headroom == 0) {
    ++counters_.pins_denied;
    pm.count_quota_denial();
    retry_or_fail(r);
    return;
  }
  if (chunk > headroom) {
    chunk = headroom;
    ++counters_.pin_chunk_shrinks;
    emit(obs::EventKind::kPinShrink, r, "chunk shrunk to quota headroom");
  }

  sim::Time cost = static_cast<sim::Time>(chunk) *
                   (cpu_.pin_cost(1) - cpu_.pin_cost(0));
  if (!job.charged_base) {
    cost += cpu_.pin_cost(0);
    job.charged_base = true;
  }

  const std::uint64_t gen = job.generation;
  const RegionId rid = r.id();
  std::weak_ptr<char> alive = alive_;
  core_.submit(cpu::Priority::kKernel, cost, [this, rid, rp = &r, gen,
                                              chunk, alive] {
    if (alive.expired()) return;  // the manager died while the cost accrued
    Tracked* t = find_alive(rid, rp);
    if (t == nullptr || !t->job.active || t->job.generation != gen) {
      return;  // invalidated or undeclared while the cost was accruing
    }
    Region& r = *t->region;
    // The work time has been paid; take the page references now.
    std::vector<mem::FrameId> frames;
    frames.reserve(chunk);
    bool hard_failed = false;   // the page can never pin (invalid segment)
    bool denied = false;        // transient: retry with backoff
    auto& as = r.address_space();
    const std::size_t base_slot = r.pinned_pages();
    for (std::size_t i = 0; i < chunk; ++i) {
      try {
        frames.push_back(as.pin_page(r.page_va_at(base_slot + i)));
      } catch (const mem::InvalidAddressError&) {
        hard_failed = true;  // the paper's invalid-segment-at-pin-time case
        break;
      } catch (const mem::PinDeniedError& e) {
        ++counters_.pins_denied;
        if (e.reason() == mem::PinDeniedError::Reason::kQuota &&
            (shed_one_victim() || arbitrate_headroom())) {
          --i;  // freed quota headroom; retry this page now
          continue;
        }
        denied = true;
        break;
      } catch (const mem::OutOfMemoryError&) {
        // Physical frames exhausted: direct reclaim. Shed an idle region's
        // pins (making its pages reclaimable) and swap out unpinned pages
        // until the allocation can proceed; with nothing reclaimable this
        // attempt is over — like get_user_pages returning -ENOMEM — and the
        // chunk is retried after a backoff.
        (void)shed_one_victim();
        std::size_t freed = 0;
        for (mem::VirtAddr va : as.resident_unpinned_pages()) {
          if (freed >= chunk - i + 8) break;
          if (as.swap_out(va)) ++freed;
        }
        if (freed == 0) {
          denied = true;
          break;
        }
        --i;  // retry this page
      }
    }
    r.commit_pins(frames);
    counters_.pages_pinned += frames.size();
    if (!frames.empty()) emit(obs::EventKind::kPinPages, r, "pages pinned");
    if (hard_failed) {
      ++counters_.pin_failures;
      finish(r, false);
      return;
    }
    // Any forward progress resets the budget: only a *stalled* frontier
    // counts against it, so sustained-but-survivable pressure cannot
    // starve a big region that pins a few pages per round.
    if (!frames.empty()) t->job.retries = 0;
    release_early_waiters(r, true);
    if (denied && frames.empty()) {
      retry_or_fail(r);
      return;
    }
    schedule_chunk(r);
  });
}

sim::Time PinManager::retry_backoff(int retries) const {
  sim::Time t = cfg_.pin_retry_backoff;
  for (int i = 1; i < retries && t < cfg_.pin_retry_backoff_max; ++i) {
    t *= 2;
  }
  return std::min(t, cfg_.pin_retry_backoff_max);
}

void PinManager::retry_or_fail(Region& r) {
  PinJob& job = track(r).job;
  if (job.retries >= cfg_.pin_retry_budget) {
    ++counters_.pin_retry_exhausted;
    ++counters_.pin_failures;
    emit(obs::EventKind::kPinFail, r, "retry budget exhausted");
    finish(r, false);
    return;
  }
  ++job.retries;
  ++counters_.pin_retries;
  const std::uint64_t gen = job.generation;
  emit(obs::EventKind::kPinRetry, r, "transient pin denial, backing off");
  std::weak_ptr<char> alive = alive_;
  const RegionId rid = r.id();
  eng_.schedule_after(
      retry_backoff(job.retries),
      [this, rid, rp = &r, gen, alive] {
        if (alive.expired()) return;  // the manager died while we slept
        Tracked* t = find_alive(rid, rp);
        if (t == nullptr || !t->job.active || t->job.generation != gen) {
          return;  // invalidated or undeclared during the backoff
        }
        schedule_chunk(*t->region);
      },
      {"pin", "retry_backoff"});
}

void PinManager::release_early_waiters(Region& r, bool ok) {
  PinJob& job = track(r).job;
  if (job.early_waiters.empty()) return;
  if (ok && r.pinned_pages() < job.early_threshold && !r.fully_pinned()) {
    return;
  }
  std::vector<Completion> waiters;
  waiters.swap(job.early_waiters);
  for (auto& w : waiters) w(ok);
}

void PinManager::finish(Region& r, bool ok) {
  Tracked& t = track(r);
  PinJob& job = t.job;
  job.active = false;
  ++job.generation;
  t.was_pinned = t.was_pinned || ok;
  if (ok) {
    emit(obs::EventKind::kPinDone, r, "fully pinned");
  } else {
    emit(obs::EventKind::kPinFail, r, "failed");
  }

  if (!ok) {
    r.set_state(Region::PinState::kFailed);
    // Give back whatever partial pins we hold; a failed region holds none.
    do_unpin(r, counters_.unpin_ops);
    r.set_state(Region::PinState::kFailed);
  }

  release_early_waiters(r, ok);
  std::vector<Completion> waiters;
  waiters.swap(job.full_waiters);
  for (auto& w : waiters) w(ok);
  // Requests that proceeded on an earlier early-release and are now mid-
  // communication need an abort path when pinning later fails.
  if (!ok && failure_handler_) failure_handler_(r);
}

void PinManager::unpin(Region& r) {
  if (Tracked* t = find_alive(r.id(), &r); t != nullptr && t->job.active) {
    ++t->job.generation;
    t->job.active = false;
  }
  do_unpin(r, counters_.unpin_ops);
}

void PinManager::do_unpin(Region& r, std::uint64_t& op_counter) {
  const bool had_pins = r.pinned_pages() > 0;
  do_unpin_from(r, 0, op_counter);
  r.set_state(Region::PinState::kUnpinned);
  if (had_pins) emit(obs::EventKind::kPinUnpin, r, "unpinned");
}

void PinManager::do_unpin_from(Region& r, std::size_t first_slot,
                               std::uint64_t& op_counter) {
  auto pins = r.take_pins_from(first_slot);
  if (pins.empty()) return;
  auto& as = r.address_space();
  for (auto& [va, frame] : pins) as.unpin_page(va, frame);
  ++op_counter;
  counters_.pages_unpinned += pins.size();
  // In per-communication mode the unpin is part of the undeclare ioctl and
  // blocks the caller (it precedes whatever the application does next). In
  // the decoupled modes the driver releases pages in deferred context —
  // new syscalls overtake it, so it stays off the critical path. This is
  // half of what Figures 6-7 measure: the paper's model hides the unpin as
  // well as the pin. Charged in small quanta: the real page-release loop is
  // preemptible and must not block bottom halves for hundreds of µs.
  const auto prio = cfg_.mode == PinMode::kPerCommunication
                        ? cpu::Priority::kKernel
                        : cpu::Priority::kIdle;
  const sim::Time per_page = cpu_.unpin_cost(1) - cpu_.unpin_cost(0);
  std::size_t remaining = pins.size();
  core_.consume(prio, cpu_.unpin_cost(0));
  while (remaining > 0) {
    const std::size_t chunk = std::min(cfg_.pin_chunk_pages, remaining);
    core_.consume(prio, static_cast<sim::Time>(chunk) * per_page);
    remaining -= chunk;
  }
}

void PinManager::invalidate_range(mem::VirtAddr start, mem::VirtAddr end) {
  // Collect overlapping regions first, then process: a job that fails its
  // restart budget runs the failure handler, which may unregister regions
  // (erasing from tracked_) mid-walk. Processing in ascending-id order is
  // part of the deterministic contract.
  std::vector<std::pair<RegionId, Region*>> hits;
  for (const auto& [rid, t] : tracked_) {
    if (t->registered && t->region->overlaps(start, end)) {
      hits.emplace_back(rid, t->region);
    }
  }
  for (const auto& [rid, rp] : hits) {
    Tracked* t = find_alive(rid, rp);
    if (t == nullptr) continue;  // unregistered by an earlier iteration
    Region& r = *t->region;
    ++counters_.notifier_invalidations;

    // Range-granular response, like a real MMU-notifier driver: only pins
    // at or above the first invalidated page have stale translations.
    // Pages pin strictly in address order, so truncating the frontier at
    // that slot keeps every pin below it valid and DMA-visible. An
    // invalidation wholly ahead of the frontier — the swap daemon
    // reclaiming a page the pin job has not reached yet, the most common
    // storm event — costs no pins at all.
    const std::size_t cut = r.first_slot_overlapping(start, end);
    if (cut >= r.pinned_pages()) {
      emit_invalidate(r, cut);
      continue;
    }

    const bool mid_pin = t->job.active;
    if (mid_pin) ++t->job.generation;  // discard the chunk in flight
    do_unpin_from(r, cut, counters_.unpin_ops);
    // Emitted post-truncation so sinks see the frontier the VM now relies
    // on; the invariant checker asserts it sits at or below the cut slot.
    emit_invalidate(r, cut);
    if (!mid_pin) continue;

    // An invalidation landing on an in-flight pin job restarts the job
    // (after a backoff) instead of failing its waiters: the overlapped
    // protocol already drops-and-retransmits frames that raced the unpin,
    // so a notifier storm must only *delay* the transfer, never abort it.
    // The restart budget bounds pathological storms — a job invalidated
    // over and over with no completion in between eventually fails cleanly
    // (the endpoint aborts) rather than live-locking the pin/unpin loop.
    PinJob& job = t->job;
    if (job.inval_restarts >= cfg_.pin_retry_budget) {
      ++counters_.pin_retry_exhausted;
      ++counters_.pin_failures;
      emit(obs::EventKind::kPinFail, r, "invalidation restart budget exhausted");
      finish(r, false);
      continue;
    }
    ++job.inval_restarts;
    ++counters_.pin_inval_restarts;
    r.set_state(Region::PinState::kPinning);
    emit(obs::EventKind::kPinRestart, r, "invalidated mid-pin, restarting");
    const std::uint64_t gen = job.generation;
    std::weak_ptr<char> alive = alive_;
    eng_.schedule_after(
        retry_backoff(job.inval_restarts),
        [this, rid, rp, gen, alive] {
          if (alive.expired()) return;  // the manager died during the backoff
          Tracked* t2 = find_alive(rid, rp);
          if (t2 == nullptr || !t2->job.active || t2->job.generation != gen) {
            return;  // invalidated again or undeclared during the backoff
          }
          schedule_chunk(*t2->region);
        },
        {"pin", "restart_backoff"});
  }
}

bool PinManager::shed_one_victim() {
  // Ascending-id walk of the ordered map: a last_use tie deterministically
  // picks the lowest region id (strict < keeps the first candidate).
  Region* victim = nullptr;
  sim::Time oldest = 0;
  for (const auto& [rid, t] : tracked_) {
    (void)rid;
    if (!t->registered) continue;
    Region* region = t->region;
    if (region->use_count() != 0 || region->pinned_pages() == 0) continue;
    if (t->job.active) continue;
    if (victim == nullptr || t->last_use < oldest) {
      victim = region;
      oldest = t->last_use;
    }
  }
  if (victim == nullptr) return false;  // nothing evictable
  ++counters_.pressure_unpins;
  emit(obs::EventKind::kPinShed, *victim, "memory pressure");
  do_unpin(*victim, counters_.unpin_ops);
  return true;
}

void PinManager::shed_pins_if_needed(mem::PhysicalMemory& pm,
                                     std::size_t incoming_pages) {
  // Two ceilings bound the host's pinned pages: the driver's own policy
  // (cfg_.max_pinned_pages) and the PhysicalMemory quota (the
  // RLIMIT_MEMLOCK analogue). Shed LRU idle regions until the incoming
  // chunk fits under both — or nothing evictable remains, in which case the
  // caller shrinks the chunk to the headroom or backs off.
  const std::size_t limit = std::min(cfg_.max_pinned_pages, pm.pin_quota());
  while (pm.pinned_pages() + incoming_pages > limit) {
    if (!shed_one_victim()) return;
  }
}

}  // namespace pinsim::core
