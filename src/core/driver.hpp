#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/endpoint.hpp"
#include "cpu/cpu_model.hpp"
#include "ioat/dma_engine.hpp"
#include "net/nic.hpp"
#include "obs/relay.hpp"
#include "sim/engine.hpp"
#include "sim/flat_map.hpp"
#include "sim/trace.hpp"

namespace pinsim::net {
class Watchdog;
}

namespace pinsim::core {

/// The per-host Open-MX driver: owns the endpoints, demultiplexes incoming
/// frames to them (in BH context), and carries the host-wide pieces every
/// endpoint needs (NIC, CPU model, optional I/OAT channel, stack config).
class Driver {
 public:
  static constexpr std::size_t kMaxEndpoints = 16;

  Driver(sim::Engine& eng, net::Nic& nic, const cpu::CpuModel& cpu,
         ioat::DmaEngine* dma, StackConfig config);

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Opens an endpoint for a process. The MMU notifier is attached to the
  /// process address space here, exactly once per endpoint (paper §3.1:
  /// "attaching a notifier to the process address space when an Open-MX
  /// endpoint is open").
  [[nodiscard]] Endpoint& open_endpoint(mem::AddressSpace& as,
                                        cpu::Core& process_core);

  void close_endpoint(std::uint8_t id);

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] net::Nic& nic() noexcept { return nic_; }
  [[nodiscard]] const cpu::CpuModel& cpu() const noexcept { return cpu_; }
  [[nodiscard]] ioat::DmaEngine* dma() noexcept { return dma_; }
  [[nodiscard]] const StackConfig& config() const noexcept { return config_; }
  [[nodiscard]] net::NodeId node() const noexcept { return nic_.node_id(); }
  [[nodiscard]] Endpoint* endpoint(std::uint8_t id) noexcept {
    return id < endpoints_.size() ? endpoints_[id].get() : nullptr;
  }

  /// Attaches a protocol tracer (nullptr detaches). The stack records
  /// packet, pinning and invalidation events into it; see sim/trace.hpp.
  /// The tracer must outlive the driver (teardown still emits — cached
  /// regions unpin during endpoint destruction) or be detached first.
  /// Internally this is one sink of the typed event relay — typed emission
  /// renders the same legacy strings (obs/legacy.hpp) so old tests hold.
  void set_tracer(sim::Tracer* t) noexcept {
    if (t != nullptr) t->set_capacity(config_.trace.tracer_capacity);
    relay_.set_tracer(t);
  }
  [[nodiscard]] sim::Tracer* tracer() noexcept { return relay_.tracer(); }

  /// Attaches a typed event bus (nullptr detaches); see obs/bus.hpp. The
  /// stack emits obs::Events into it alongside the legacy tracer. The
  /// watchdog (if attached) shares the bus so lifecycle events interleave
  /// with protocol events in one deterministic stream.
  void set_bus(obs::Bus* bus) noexcept;
  [[nodiscard]] obs::Relay& relay() noexcept { return relay_; }

  // --- crash/restart lifecycle ----------------------------------------------

  /// Records a crash on endpoint slot `id` (called by Host::kill_process
  /// after the MMU-notifier sweep, while the dying endpoint still exists).
  /// `reclaimed` is the pinned pages the sweep took back; `pinned_after` the
  /// host-wide pinned-page count once the sweep finished; `baseline` the
  /// expected non-tenant count (pre-crash total minus the victim's pins).
  /// Emits kLifeCrash carrying all three so obs::InvariantChecker can prove
  /// pinned_after == baseline — no leaks, no double-unpins.
  void note_crash(std::uint8_t id, std::uint64_t reclaimed,
                  std::uint64_t pinned_after, std::uint64_t baseline);

  /// Current incarnation number of an endpoint slot. Slots are born at
  /// epoch 1 and bump on every close (wrapping 255 -> 1, skipping 0: epoch 0
  /// on the wire means "unknown" and is never fenced).
  [[nodiscard]] std::uint8_t slot_epoch(std::uint8_t id) const noexcept {
    return id < slots_.size() ? slots_[id].epoch : 0;
  }

  /// Last incarnation learned for a remote (node, endpoint) — from the
  /// src_epoch of its frames and from watchdog announcements. 0 = unknown.
  [[nodiscard]] std::uint8_t peer_epoch(net::NodeId node,
                                        std::uint8_t ep) const;

  /// Wires a node-liveness watchdog into the rx path: heartbeat frames are
  /// intercepted before wire decode, the per-slot epoch table rides in the
  /// announcement blob, and a peer that misses the threshold has every
  /// outstanding request to it failed with Status::peer_dead.
  void attach_watchdog(net::Watchdog& wd);
  [[nodiscard]] net::Watchdog* watchdog() noexcept { return watchdog_; }

  /// True while the watchdog has `node` declared dead. The user-space
  /// library turns this into a synchronous PeerDeadError on submission.
  [[nodiscard]] bool peer_dead(net::NodeId node) const {
    return dead_peers_.count(node) != 0;
  }

 private:
  /// Per-slot state that must survive the endpoint object itself: the
  /// incarnation number peers fence against, and crash-history totals the
  /// next incarnation's counters are stamped from at open_endpoint.
  struct SlotLifecycle {
    std::uint8_t epoch = 1;
    bool crashed = false;  // pending restart (set by note_crash)
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t reclaimed_pages = 0;
  };

  void on_frame(net::Frame&& frame);

  /// Wrap-safe "is incarnation a newer than b" (serial-number arithmetic on
  /// the 1..255 epoch ring; both args nonzero).
  [[nodiscard]] static bool epoch_newer(std::uint8_t a,
                                        std::uint8_t b) noexcept {
    return static_cast<std::int8_t>(a - b) > 0;
  }

  [[nodiscard]] static std::uint64_t peer_key(net::NodeId node,
                                              std::uint8_t ep) noexcept {
    return (static_cast<std::uint64_t>(node) << 8) | ep;
  }

  /// A remote slot changed incarnation: flush per-peer duplicate-suppression
  /// state and fail requests outstanding to the dead incarnation.
  void on_peer_epoch_change(net::NodeId node, std::uint8_t ep);

  /// Watchdog plumbing.
  void on_announcement(net::NodeId peer, std::span<const std::byte> blob);
  void on_peer_status(net::NodeId peer, bool alive);
  [[nodiscard]] std::vector<std::byte> announcement_blob() const;

  sim::Engine& eng_;
  net::Nic& nic_;
  const cpu::CpuModel& cpu_;
  ioat::DmaEngine* dma_;
  StackConfig config_;
  obs::Relay relay_;
  std::array<std::unique_ptr<Endpoint>, kMaxEndpoints> endpoints_;
  std::array<SlotLifecycle, kMaxEndpoints> slots_;
  sim::FlatMap<std::uint64_t, std::uint8_t> peer_epochs_;
  sim::FlatSet<std::uint64_t> closed_peer_slots_;  // announced 0 after nonzero
  sim::FlatSet<net::NodeId> dead_peers_;
  net::Watchdog* watchdog_ = nullptr;
};

}  // namespace pinsim::core
