#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "core/endpoint.hpp"
#include "cpu/cpu_model.hpp"
#include "ioat/dma_engine.hpp"
#include "net/nic.hpp"
#include "obs/relay.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace pinsim::core {

/// The per-host Open-MX driver: owns the endpoints, demultiplexes incoming
/// frames to them (in BH context), and carries the host-wide pieces every
/// endpoint needs (NIC, CPU model, optional I/OAT channel, stack config).
class Driver {
 public:
  static constexpr std::size_t kMaxEndpoints = 16;

  Driver(sim::Engine& eng, net::Nic& nic, const cpu::CpuModel& cpu,
         ioat::DmaEngine* dma, StackConfig config);

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Opens an endpoint for a process. The MMU notifier is attached to the
  /// process address space here, exactly once per endpoint (paper §3.1:
  /// "attaching a notifier to the process address space when an Open-MX
  /// endpoint is open").
  [[nodiscard]] Endpoint& open_endpoint(mem::AddressSpace& as,
                                        cpu::Core& process_core);

  void close_endpoint(std::uint8_t id);

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] net::Nic& nic() noexcept { return nic_; }
  [[nodiscard]] const cpu::CpuModel& cpu() const noexcept { return cpu_; }
  [[nodiscard]] ioat::DmaEngine* dma() noexcept { return dma_; }
  [[nodiscard]] const StackConfig& config() const noexcept { return config_; }
  [[nodiscard]] net::NodeId node() const noexcept { return nic_.node_id(); }
  [[nodiscard]] Endpoint* endpoint(std::uint8_t id) noexcept {
    return id < endpoints_.size() ? endpoints_[id].get() : nullptr;
  }

  /// Attaches a protocol tracer (nullptr detaches). The stack records
  /// packet, pinning and invalidation events into it; see sim/trace.hpp.
  /// The tracer must outlive the driver (teardown still emits — cached
  /// regions unpin during endpoint destruction) or be detached first.
  /// Internally this is one sink of the typed event relay — typed emission
  /// renders the same legacy strings (obs/legacy.hpp) so old tests hold.
  void set_tracer(sim::Tracer* t) noexcept {
    if (t != nullptr) t->set_capacity(config_.trace.tracer_capacity);
    relay_.set_tracer(t);
  }
  [[nodiscard]] sim::Tracer* tracer() noexcept { return relay_.tracer(); }

  /// Attaches a typed event bus (nullptr detaches); see obs/bus.hpp. The
  /// stack emits obs::Events into it alongside the legacy tracer.
  void set_bus(obs::Bus* bus) noexcept { relay_.set_bus(bus); }
  [[nodiscard]] obs::Relay& relay() noexcept { return relay_; }

 private:
  void on_frame(net::Frame&& frame);

  sim::Engine& eng_;
  net::Nic& nic_;
  const cpu::CpuModel& cpu_;
  ioat::DmaEngine* dma_;
  StackConfig config_;
  obs::Relay relay_;
  std::array<std::unique_ptr<Endpoint>, kMaxEndpoints> endpoints_;
};

}  // namespace pinsim::core
