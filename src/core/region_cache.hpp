#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/region.hpp"

namespace pinsim::core {

/// User-space cache of region *declarations* (paper §3.2).
///
/// It maps a segment list to the integer descriptor the driver understands,
/// so a reused buffer needs no new declaration syscall. Crucially it caches
/// only declarations, never pin state: the driver may have unpinned a cached
/// region behind our back (MMU notifier, memory pressure) and will repin on
/// use — so this cache needs no invalidation channel from the kernel, which
/// is the paper's main simplification over classic registration caches.
///
/// Eviction is LRU over idle entries (an entry with in-flight communications
/// is never evicted). With `enabled == false` every acquire declares and the
/// matching release undeclares — the "pin once per communication" baseline.
class RegionCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  using DeclareFn = std::function<RegionId(const std::vector<Segment>&)>;
  using UndeclareFn = std::function<void(RegionId)>;

  RegionCache(CacheConfig cfg, DeclareFn declare, UndeclareFn undeclare);

  RegionCache(const RegionCache&) = delete;
  RegionCache& operator=(const RegionCache&) = delete;
  ~RegionCache();

  /// Returns the region id for `segments`, declaring on miss. The entry is
  /// marked in use until the matching release().
  [[nodiscard]] RegionId acquire(const std::vector<Segment>& segments);

  /// Marks one use of `id` finished. Cache disabled: undeclares immediately.
  void release(RegionId id);

  /// Undeclares every idle entry (e.g. at finalize). Entries in use are
  /// kept; they drain at release time.
  void clear();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Key {
    std::vector<Segment> segments;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    RegionId id = kInvalidRegion;
    std::uint32_t uses = 0;
    std::list<Key>::iterator lru_pos;  // valid iff uses == 0
    bool in_lru = false;
  };

  void evict_down_to(std::size_t target);

  CacheConfig cfg_;
  DeclareFn declare_;
  UndeclareFn undeclare_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::unordered_map<RegionId, Key> by_id_;
  std::list<Key> lru_;  // front = most recent; only idle entries live here
  Stats stats_;
};

}  // namespace pinsim::core
