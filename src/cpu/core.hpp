#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace pinsim::cpu {

/// Work priority on a core. Lower value runs first. Mirrors the split the
/// paper's §4.3 failure analysis depends on: receive bottom-half processing
/// is "strongly privileged" and can starve everything else on the core —
/// including the asynchronous pinning that overlapped mode relies on.
enum class Priority : int {
  kBottomHalf = 0,  // NIC interrupt/softirq work
  kKernel = 1,      // syscall-context driver work (pinning, copies)
  kUser = 2,        // application compute
  kIdle = 3,        // deferred cleanup (page release workqueues)
};

inline constexpr int kPriorityCount = 4;

/// A CPU core as a non-preemptive prioritized work queue.
///
/// `submit()` enqueues a job that occupies the core for `duration`; when it
/// finishes, its completion callback runs and the next job is picked —
/// always from the highest-priority non-empty queue. Jobs are not preempted,
/// so submitters model long operations as chains of short quanta (the pin
/// manager pins in bounded page batches for exactly this reason).
class Core {
 public:
  struct Stats {
    std::array<std::uint64_t, kPriorityCount> jobs{};
    std::array<sim::Time, kPriorityCount> busy{};

    [[nodiscard]] sim::Time total_busy() const noexcept {
      sim::Time t = 0;
      for (auto b : busy) t += b;
      return t;
    }
  };

  Core(sim::Engine& eng, std::string name);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Enqueues `duration` of work at priority `p`; `done` fires when the work
  /// completes (at the simulated instant the core finishes it). A zero
  /// duration is allowed and still round-trips through the queue.
  void submit(Priority p, sim::Time duration, sim::UniqueFunction done);

  /// Convenience for fire-and-forget time consumption.
  void consume(Priority p, sim::Time duration) {
    submit(p, duration, [] {});
  }

  [[nodiscard]] bool busy() const noexcept { return running_; }
  [[nodiscard]] std::size_t queued() const noexcept;
  [[nodiscard]] std::size_t queued_at(Priority p) const noexcept {
    return queues_[static_cast<std::size_t>(p)].size();
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }

  /// Fraction of [0, now] this core spent executing work.
  [[nodiscard]] double utilization() const noexcept;

 private:
  struct Job {
    sim::Time duration;
    sim::UniqueFunction done;
  };

  void dispatch();

  sim::Engine& eng_;
  std::string name_;
  std::array<std::deque<Job>, kPriorityCount> queues_;
  bool running_ = false;
  Stats stats_;
};

}  // namespace pinsim::cpu
