#include "cpu/cpu_model.hpp"

#include <stdexcept>

#include "mem/types.hpp"

namespace pinsim::cpu {

namespace {

/// Reference machine for frequency scaling: the Xeon E5460 host all of the
/// paper's Figure 6/7 experiments ran on.
constexpr double kRefGhz = 3.16;
// Cold-cache kernel memcpy of receive payloads on the FSB-era Xeon. At
// 2.2 GB/s the per-frame bottom-half work fills ~70% of the 10G per-frame
// budget: enough slack for asynchronous pinning to overlap with traffic on
// the same core (the paper's normal case), while the copy latency still
// gives I/OAT offload a visible edge at small-to-mid message sizes.
constexpr double kRefMemcpyGbps = 2.2;
constexpr sim::Time kRefRxOverhead = 1000;  // ns per received frame
constexpr sim::Time kRefTxOverhead = 600;   // ns per transmitted frame

CpuModel make_model(std::string name, double ghz, double base_us,
                    double per_page_ns) {
  CpuModel m;
  m.name = std::move(name);
  m.ghz = ghz;
  m.pin_base = sim::from_usec(base_us);
  m.pin_per_page = static_cast<sim::Time>(per_page_ns);
  const double scale = ghz / kRefGhz;
  m.memcpy_gbps = kRefMemcpyGbps * scale;
  m.rx_frame_overhead =
      static_cast<sim::Time>(static_cast<double>(kRefRxOverhead) / scale);
  m.tx_frame_overhead =
      static_cast<sim::Time>(static_cast<double>(kRefTxOverhead) / scale);
  return m;
}

}  // namespace

double CpuModel::pin_throughput_gbps() const noexcept {
  if (pin_per_page == 0) return 0.0;
  // bytes per nanosecond == GB/s.
  return static_cast<double>(mem::kPageSize) /
         static_cast<double>(pin_per_page);
}

sim::Time CpuModel::copy_cost(std::size_t bytes) const noexcept {
  if (memcpy_gbps <= 0.0) return 0;
  return static_cast<sim::Time>(static_cast<double>(bytes) / memcpy_gbps +
                                0.5);
}

// Table 1 of the paper: processor, GHz, base µs, ns/page.
const CpuModel& opteron265() {
  static const CpuModel m = make_model("opteron265", 1.8, 4.2, 720);
  return m;
}

const CpuModel& opteron8347() {
  static const CpuModel m = make_model("opteron8347", 1.9, 2.2, 330);
  return m;
}

const CpuModel& xeon_e5435() {
  static const CpuModel m = make_model("xeon-e5435", 2.33, 2.3, 250);
  return m;
}

const CpuModel& xeon_e5460() {
  static const CpuModel m = make_model("xeon-e5460", 3.16, 1.3, 150);
  return m;
}

const std::vector<CpuModel>& all_cpu_models() {
  static const std::vector<CpuModel> models = {opteron265(), opteron8347(),
                                               xeon_e5435(), xeon_e5460()};
  return models;
}

const CpuModel& cpu_model_by_name(std::string_view name) {
  for (const CpuModel& m : all_cpu_models()) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("unknown CPU model: " + std::string(name));
}

}  // namespace pinsim::cpu
