#include "cpu/core.hpp"

#include <utility>

namespace pinsim::cpu {

Core::Core(sim::Engine& eng, std::string name)
    : eng_(eng), name_(std::move(name)) {}

void Core::submit(Priority p, sim::Time duration, sim::UniqueFunction done) {
  queues_[static_cast<std::size_t>(p)].push_back(
      Job{duration, std::move(done)});
  if (!running_) dispatch();
}

std::size_t Core::queued() const noexcept {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

double Core::utilization() const noexcept {
  const sim::Time now = eng_.now();
  if (now == 0) return 0.0;
  return static_cast<double>(stats_.total_busy()) / static_cast<double>(now);
}

namespace {

constexpr const char* kPriorityLabel[] = {"bottom_half", "kernel", "user",
                                          "idle"};

}  // namespace

void Core::dispatch() {
  for (std::size_t p = 0; p < queues_.size(); ++p) {
    auto& q = queues_[p];
    if (q.empty()) continue;
    Job job = std::move(q.front());
    q.pop_front();
    running_ = true;
    ++stats_.jobs[p];
    stats_.busy[p] += job.duration;
    eng_.schedule_after(
        job.duration,
        // pinlint: allow(D7: the core is host hardware owned by Driver for
        // the life of the engine; jobs never outlive the machine they run on)
        [this, done = std::move(job.done)]() mutable {
          running_ = false;
          done();
          // The completion may have submitted follow-up work; if it started
          // the core itself (submit() when idle dispatches immediately),
          // running_ is already true again and this dispatch finds nothing
          // extra to do wrong.
          if (!running_) dispatch();
        },
        {"cpu", kPriorityLabel[p]});
    return;
  }
}

}  // namespace pinsim::cpu
