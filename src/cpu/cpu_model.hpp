#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace pinsim::cpu {

/// Host processor model. The pin costs are calibrated directly from Table 1
/// of the paper (base µs and ns/page for a pin+unpin pair, measured on
/// Open-MX); everything else scales with clock frequency from the Xeon E5460
/// reference machine the paper's Figures 6-7 were measured on.
struct CpuModel {
  std::string name;
  double ghz = 0.0;

  /// Table 1: fixed overhead of one pin+unpin pair.
  sim::Time pin_base = 0;
  /// Table 1: per-page overhead of a pin+unpin pair.
  sim::Time pin_per_page = 0;

  /// How the pair splits between the pin and the unpin half. The paper only
  /// reports the pair; faulting+locking dominates, so pinning gets the larger
  /// share. Only the pin half sits on (or overlaps with) the critical path.
  static constexpr double kPinShare = 0.6;

  /// CPU copy bandwidth (receive-side memcpy of incoming frames).
  double memcpy_gbps = 0.0;

  /// Per-frame receive bottom-half cost excluding the data copy (interrupt,
  /// MXoE protocol handling).
  sim::Time rx_frame_overhead = 0;
  /// Per-frame transmit-path cost (syscall share, driver, descriptor setup).
  sim::Time tx_frame_overhead = 0;

  [[nodiscard]] sim::Time pin_cost(std::size_t pages) const noexcept {
    return scaled(pin_base, kPinShare) +
           static_cast<sim::Time>(pages) * scaled(pin_per_page, kPinShare);
  }
  [[nodiscard]] sim::Time unpin_cost(std::size_t pages) const noexcept {
    return scaled(pin_base, 1.0 - kPinShare) +
           static_cast<sim::Time>(pages) *
               scaled(pin_per_page, 1.0 - kPinShare);
  }
  /// Full pair, as Table 1 reports it.
  [[nodiscard]] sim::Time pin_unpin_cost(std::size_t pages) const noexcept {
    return pin_base + static_cast<sim::Time>(pages) * pin_per_page;
  }

  /// Pinning throughput in GB/s (Table 1 last column): bytes pinnable per
  /// second at the asymptotic per-page rate.
  [[nodiscard]] double pin_throughput_gbps() const noexcept;

  /// Time for the CPU to copy `bytes` (memcpy on the receive path).
  [[nodiscard]] sim::Time copy_cost(std::size_t bytes) const noexcept;

 private:
  [[nodiscard]] static sim::Time scaled(sim::Time t, double f) noexcept {
    return static_cast<sim::Time>(static_cast<double>(t) * f + 0.5);
  }
};

/// The four processors of Table 1.
[[nodiscard]] const CpuModel& opteron265();
[[nodiscard]] const CpuModel& opteron8347();
[[nodiscard]] const CpuModel& xeon_e5435();
[[nodiscard]] const CpuModel& xeon_e5460();

[[nodiscard]] const std::vector<CpuModel>& all_cpu_models();

/// Lookup by name ("opteron265", "xeon-e5460", ...); throws
/// std::invalid_argument for unknown names.
[[nodiscard]] const CpuModel& cpu_model_by_name(std::string_view name);

}  // namespace pinsim::cpu
