// A real application on the stack: 2-D Jacobi heat diffusion with halo
// exchange across 4 ranks on 2 hosts, verified against a serial reference,
// timed under each pinning configuration.
//
// Blocking halo exchanges are exactly the pattern §5 of the paper says
// benefits most from overlapped pinning: the rank blocks on its neighbours
// every iteration, so hidden pin time is wall time saved.
//
//   $ ./stencil_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "core/host.hpp"
#include "mpi/communicator.hpp"
#include "workloads/stencil.hpp"

using namespace pinsim;

namespace {

struct NamedConfig {
  const char* name;
  core::StackConfig stack;
};

double run_once(const NamedConfig& cfg, bool print_verify) {
  sim::Engine eng;
  net::Fabric fabric(eng);
  core::Host::Config hc;
  hc.memory_frames = 24576;
  core::Host host_a(eng, fabric, hc, cfg.stack);
  core::Host host_b(eng, fabric, hc, cfg.stack);
  std::vector<core::Host::Process*> procs;
  for (int r = 0; r < 4; ++r) {
    procs.push_back(r % 2 == 0 ? &host_a.spawn_process()
                               : &host_b.spawn_process());
  }
  mpi::Communicator comm(procs);

  workloads::StencilConfig scfg;
  scfg.nx = 16384;        // 128 kB ghost rows: rendezvous-sized halos
  scfg.rows_per_rank = 24;
  scfg.iterations = 8;
  auto r = workloads::run_stencil(comm, scfg);
  if (print_verify) {
    std::printf("grid %zux%zu, %d iterations, checksum %.6e, verified: %s\n",
                scfg.nx, scfg.rows_per_rank * 4, scfg.iterations, r.checksum,
                r.verified ? "yes" : "NO");
  }
  return sim::to_usec(r.elapsed);
}

}  // namespace

int main() {
  std::printf("Jacobi stencil, 4 ranks on 2 hosts, halo rows of 128 kB:\n");
  const NamedConfig configs[] = {
      {"regular", core::regular_pinning_config()},
      {"overlapped", core::overlapped_pinning_config()},
      {"cache", core::pinning_cache_config()},
      {"overlap+cache", core::overlapped_cache_config()},
  };
  double baseline = 0.0;
  bool first = true;
  for (const auto& cfg : configs) {
    const double us = run_once(cfg, first);
    if (first) baseline = us;
    std::printf("  %-14s %10.1f us per run   %+5.1f%% vs regular\n", cfg.name,
                us, (baseline / us - 1.0) * 100.0);
    first = false;
  }
  return 0;
}
