// Collectives over the simulated cluster: 4 MPI ranks on 2 hosts run an
// allreduce and a ring allgatherv under each pinning configuration, with
// element-wise verification — a small version of what the Table 2 harness
// measures.
//
//   $ ./collectives
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/host.hpp"
#include "mpi/communicator.hpp"

using namespace pinsim;

namespace {

struct NamedConfig {
  const char* name;
  core::StackConfig stack;
};

void run_config(const NamedConfig& cfg) {
  sim::Engine eng;
  net::Fabric fabric(eng);
  core::Host::Config hc;
  hc.memory_frames = 24576;
  core::Host host_a(eng, fabric, hc, cfg.stack);
  core::Host host_b(eng, fabric, hc, cfg.stack);
  std::vector<core::Host::Process*> procs;
  for (int r = 0; r < 4; ++r) {
    procs.push_back(r % 2 == 0 ? &host_a.spawn_process()
                               : &host_b.spawn_process());
  }
  mpi::Communicator comm(procs);

  constexpr std::size_t kCount = 256 * 1024;  // 1 MiB of int32 per rank
  std::vector<mem::VirtAddr> src(4), dst(4), gat(4);
  for (int r = 0; r < 4; ++r) {
    auto& p = comm.process(r);
    const auto ri = static_cast<std::size_t>(r);
    src[ri] = p.heap.malloc(kCount * 4);
    dst[ri] = p.heap.malloc(kCount * 4);
    gat[ri] = p.heap.malloc(4 * kCount * 4);
    std::vector<std::int32_t> vals(kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      vals[i] = static_cast<std::int32_t>(i % 1000) + r;
    }
    std::vector<std::byte> raw(kCount * 4);
    std::memcpy(raw.data(), vals.data(), raw.size());
    p.as.write(src[ri], raw);
  }

  std::vector<std::size_t> counts(4, kCount * 4), displs(4);
  for (std::size_t i = 0; i < 4; ++i) displs[i] = i * kCount * 4;

  const sim::Time elapsed = mpi::run_ranks(eng, 4, [&](int me) -> sim::Task<> {
    const auto mi = static_cast<std::size_t>(me);
    co_await comm.allreduce(me, src[mi], dst[mi], kCount,
                            mpi::Datatype::kInt32, mpi::Op::kSum);
    co_await comm.allgatherv(me, src[mi], gat[mi], counts, displs);
  });

  // Verify on rank 0: allreduce sum = 4*(i%1000) + 0+1+2+3.
  bool ok = true;
  {
    std::vector<std::byte> raw(kCount * 4);
    comm.process(0).as.read(dst[0], raw);
    std::vector<std::int32_t> vals(kCount);
    std::memcpy(vals.data(), raw.data(), raw.size());
    for (std::size_t i = 0; i < kCount; i += 1234) {
      if (vals[i] != static_cast<std::int32_t>(i % 1000) * 4 + 6) ok = false;
    }
    // allgatherv block b starts with b (i=0 element of rank b).
    comm.process(0).as.read(gat[0] + displs[2], raw);
    std::memcpy(vals.data(), raw.data(), 4);
    if (vals[0] != 2) ok = false;
  }

  std::uint64_t pins = 0;
  for (int r = 0; r < 4; ++r) pins += comm.process(r).lib.counters().pin_ops;
  std::printf("%-16s  allreduce+allgatherv: %8.1f us   verified: %-3s  "
              "pin ops: %llu\n",
              cfg.name, sim::to_usec(elapsed), ok ? "yes" : "NO",
              static_cast<unsigned long long>(pins));
}

}  // namespace

int main() {
  std::printf("4 ranks on 2 hosts, 1 MiB per rank, all pinning configs:\n\n");
  const NamedConfig configs[] = {
      {"regular", core::regular_pinning_config()},
      {"overlapped", core::overlapped_pinning_config()},
      {"cache", core::pinning_cache_config()},
      {"overlap+cache", core::overlapped_cache_config()},
      {"permanent", core::permanent_pinning_config()},
  };
  for (const auto& cfg : configs) run_config(cfg);
  std::printf(
      "\nNote how the cached configurations do a fraction of the pin work\n"
      "of the per-communication baseline.\n");
  return 0;
}
