// The §4.3 pathology as a runnable story: what happens to overlapped
// pinning when receive bottom halves own the core the receiver pins from.
//
//   $ ./overloaded_core [duty]   (duty in [0,1), default 0.95)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/host.hpp"
#include "sim/task.hpp"

using namespace pinsim;

int main(int argc, char** argv) {
  const double duty = argc > 1 ? std::atof(argv[1]) : 0.95;
  if (duty < 0.0 || duty >= 1.0) {
    std::fprintf(stderr, "duty must be in [0, 1)\n");
    return 1;
  }

  sim::Engine eng;
  net::Fabric fabric(eng);

  // Interrupts bound to core 0 (no flow steering) — the paper's bad case.
  core::StackConfig stack = core::overlapped_pinning_config();
  stack.protocol.distribute_interrupts = false;

  core::Host::Config hc;
  core::Host host_a(eng, fabric, hc, stack);
  core::Host host_b(eng, fabric, hc, stack);
  auto& sender = host_a.spawn_process();           // core 1, unbothered
  auto& receiver = host_b.spawn_process_on(0);     // shares core 0 with IRQs

  // Synthetic interrupt flood on the receiver's core.
  const sim::Time period = 100 * sim::kMicrosecond;
  const auto busy = static_cast<sim::Time>(duty * static_cast<double>(period));
  struct Flood {
    sim::Engine& eng;
    cpu::Core& core;
    sim::Time busy, period;
    void tick() {
      if (busy == 0) return;
      core.consume(cpu::Priority::kBottomHalf, busy);
      eng.schedule_after(period, [this] { tick(); });
    }
  } flood{eng, host_b.core(0), busy, period};
  flood.tick();

  constexpr std::size_t kLen = 1024 * 1024;
  constexpr int kMessages = 8;
  const mem::VirtAddr src = sender.heap.malloc(kLen);
  std::vector<mem::VirtAddr> dsts;  // rotate so each message repins
  for (int i = 0; i < 4; ++i) dsts.push_back(receiver.heap.malloc(kLen));

  bool s_done = false;
  bool r_done = false;
  sim::spawn(eng, [](core::Host::Process& p, core::EndpointAddr to,
                     mem::VirtAddr buf, bool& flag) -> sim::Task<> {
    for (int i = 0; i < kMessages; ++i) {
      (void)co_await p.lib.send(to, 9, buf, kLen);
    }
    flag = true;
  }(sender, receiver.addr(), src, s_done));
  sim::spawn(eng, [](core::Host::Process& p, std::vector<mem::VirtAddr> bufs,
                     bool& flag) -> sim::Task<> {
    for (int i = 0; i < kMessages; ++i) {
      (void)co_await p.lib.recv(9, ~std::uint64_t{0},
                                bufs[static_cast<std::size_t>(i) % 4], kLen);
    }
    flag = true;
  }(receiver, dsts, r_done));

  while ((!s_done || !r_done) && eng.step()) {
  }
  eng.rethrow_task_failures();

  const double mbps = kMessages * (kLen / 1e6) / sim::to_seconds(eng.now());
  const auto& c = receiver.lib.counters();
  std::printf("interrupt duty on receiver core: %.1f%%\n", duty * 100);
  std::printf("throughput:       %8.1f MB/s (idle-core reference ~1150)\n",
              mbps);
  std::printf("overlap misses:   %8llu of %llu region accesses (%.2e)\n",
              static_cast<unsigned long long>(c.overlap_misses),
              static_cast<unsigned long long>(c.region_accesses),
              c.overlap_miss_rate());
  std::printf("frames dropped:   %8llu, pull retries: %llu\n",
              static_cast<unsigned long long>(c.frames_dropped_on_miss),
              static_cast<unsigned long long>(
                  c.pull_rerequests + c.retransmit_timeouts));
  std::printf(
      "\nTry: ./overloaded_core 0      (idle: no misses, full speed)\n"
      "     ./overloaded_core 0.99   (the paper's collapse to ~tens of "
      "MB/s)\n");
  return 0;
}
