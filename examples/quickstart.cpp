// Quickstart: the smallest complete program on the pinsim stack.
//
// Builds two simulated hosts on a 10G Ethernet fabric, sends one large
// message from A to B through the Open-MX-like rendezvous protocol with the
// paper's decoupled pinning (on-demand + overlapped + region cache), and
// verifies the bytes arrived intact.
//
//   $ ./quickstart
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/host.hpp"
#include "sim/task.hpp"

using namespace pinsim;

int main() {
  // 1. The world: one event engine, one switched 10G fabric.
  sim::Engine engine;
  net::Fabric fabric(engine);

  // 2. Two quad-core Xeon E5460 hosts (the paper's testbed), running the
  //    stack in its full configuration: on-demand pinning, overlapped with
  //    communication, declarations cached in user space.
  core::Host::Config host_cfg;  // defaults: xeon-e5460, 4 cores, 128 MiB
  core::Host host_a(engine, fabric, host_cfg, core::overlapped_cache_config());
  core::Host host_b(engine, fabric, host_cfg, core::overlapped_cache_config());

  // 3. One process per host. Each process owns an address space, a heap,
  //    an Open-MX endpoint and the user-space library.
  auto& sender = host_a.spawn_process();
  auto& receiver = host_b.spawn_process();

  // 4. Application buffers come from the simulated malloc; bytes are real.
  constexpr std::size_t kLen = 4 * 1024 * 1024;
  const mem::VirtAddr src = sender.heap.malloc(kLen);
  const mem::VirtAddr dst = receiver.heap.malloc(kLen);
  std::vector<std::byte> payload(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    payload[i] = static_cast<std::byte>((i * 2654435761u) >> 24);
  }
  sender.as.write(src, payload);

  // 5. Rank programs are coroutines; blocking calls co_await completion.
  sim::spawn(engine, [](core::Host::Process& p, core::EndpointAddr to,
                        mem::VirtAddr buf) -> sim::Task<> {
    const core::Status st = co_await p.lib.send(to, /*match=*/42, buf, kLen);
    std::printf("[sender]   send %s, %zu bytes\n", st.ok ? "ok" : "FAILED",
                st.len);
  }(sender, receiver.addr(), src));

  sim::spawn(engine, [](core::Host::Process& p, mem::VirtAddr buf,
                        sim::Engine& eng) -> sim::Task<> {
    const core::Status st =
        co_await p.lib.recv(/*match=*/42, ~std::uint64_t{0}, buf, kLen);
    std::printf("[receiver] recv %s, %zu bytes at t=%.1f us\n",
                st.ok ? "ok" : "FAILED", st.len, sim::to_usec(eng.now()));
  }(receiver, dst, engine));

  // 6. Run the simulation to completion.
  engine.run();
  engine.rethrow_task_failures();

  // 7. Verify the data and show what the stack did.
  std::vector<std::byte> got(kLen);
  receiver.as.read(dst, got);
  std::printf("payload intact: %s\n",
              std::memcmp(got.data(), payload.data(), kLen) == 0 ? "yes"
                                                                 : "NO");
  const double mibps = (kLen / (1024.0 * 1024.0)) /
                       sim::to_seconds(engine.now());
  std::printf("throughput: %.1f MiB/s over the simulated 10G wire\n", mibps);

  const auto& cs = sender.lib.counters();
  const auto& cr = receiver.lib.counters();
  std::printf(
      "sender:   %llu rndv, %llu pull replies served, %llu pages pinned\n",
      static_cast<unsigned long long>(cs.rndv_sent),
      static_cast<unsigned long long>(cs.pull_replies_sent),
      static_cast<unsigned long long>(cs.pages_pinned));
  std::printf(
      "receiver: %llu pulls sent, %llu pages pinned, %llu overlap misses\n",
      static_cast<unsigned long long>(cr.pulls_sent),
      static_cast<unsigned long long>(cr.pages_pinned),
      static_cast<unsigned long long>(cr.overlap_misses));
  return 0;
}
