// The life of a declared region, narrated — the scenario of the paper's
// Figure 3:
//
//   malloc -> MPI_Send  : cache miss, declare, pin, send
//   MPI_Send again      : cache hit, already pinned
//   free                : MMU notifier unpins; the declaration stays cached
//   malloc (same addr)  : cache hit again!
//   MPI_Send            : driver repins transparently, data is the new data
//
// No user-space invalidation handshake anywhere: the kernel notifier is the
// only party that ever learns about the free.
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/host.hpp"
#include "core/report.hpp"
#include "sim/task.hpp"

using namespace pinsim;

namespace {

void show(const char* stage, core::Host::Process& p, core::Host& host) {
  const auto& c = p.lib.counters();
  const auto& cache = p.lib.cache().stats();
  std::printf(
      "%-34s | pins=%llu unpins=%llu repins=%llu notifier=%llu | cache "
      "h/m=%llu/%llu | pinned pages=%zu\n",
      stage, static_cast<unsigned long long>(c.pin_ops),
      static_cast<unsigned long long>(c.unpin_ops),
      static_cast<unsigned long long>(c.repins),
      static_cast<unsigned long long>(c.notifier_invalidations),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      host.memory().pinned_pages());
}

void send_and_drain(sim::Engine& eng, core::Host::Process& sender,
                    core::Host::Process& receiver, mem::VirtAddr src,
                    mem::VirtAddr dst, std::size_t len) {
  sim::spawn(eng, [](core::Host::Process& s, core::EndpointAddr to,
                     mem::VirtAddr buf, std::size_t n) -> sim::Task<> {
    (void)co_await s.lib.send(to, 7, buf, n);
  }(sender, receiver.addr(), src, len));
  sim::spawn(eng, [](core::Host::Process& r, mem::VirtAddr buf,
                     std::size_t n) -> sim::Task<> {
    (void)co_await r.lib.recv(7, ~std::uint64_t{0}, buf, n);
  }(receiver, dst, len));
  eng.run();
  eng.rethrow_task_failures();
}

}  // namespace

int main() {
  sim::Engine eng;
  net::Fabric fabric(eng);
  core::Host::Config hc;
  core::Host host_a(eng, fabric, hc, core::pinning_cache_config());
  core::Host host_b(eng, fabric, hc, core::pinning_cache_config());
  auto& sender = host_a.spawn_process();
  auto& receiver = host_b.spawn_process();

  constexpr std::size_t kLen = 1024 * 1024;
  const mem::VirtAddr dst = receiver.heap.malloc(kLen);

  std::printf("--- Figure 3 walkthrough (1 MiB buffer, pinning cache) ---\n");

  mem::VirtAddr src = sender.heap.malloc(kLen);
  show("malloc(1MB)", sender, host_a);

  sender.as.fill(src, kLen, std::byte{0xA1});
  send_and_drain(eng, sender, receiver, src, dst, kLen);
  show("MPI_Send #1 (declare+pin)", sender, host_a);

  send_and_drain(eng, sender, receiver, src, dst, kLen);
  show("MPI_Send #2 (cache hit, no pin)", sender, host_a);

  sender.heap.free(src);
  show("free() -> MMU notifier unpins", sender, host_a);

  const mem::VirtAddr src2 = sender.heap.malloc(kLen);
  std::printf("realloc returned the same address: %s\n",
              src2 == src ? "yes" : "no");

  sender.as.fill(src2, kLen, std::byte{0xB2});
  send_and_drain(eng, sender, receiver, src2, dst, kLen);
  show("MPI_Send #3 (hit + silent repin)", sender, host_a);

  // Prove the receiver got the *new* bytes, not a stale snapshot.
  std::vector<std::byte> got(16);
  receiver.as.read(dst, got);
  std::printf("receiver sees generation-2 bytes: %s\n",
              got[0] == std::byte{0xB2} ? "yes" : "NO (stale!)");

  std::printf("\n--- full sender diagnostics ---\n%s",
              core::format_report(sender, host_a).c_str());
  return 0;
}
