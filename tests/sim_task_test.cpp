#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pinsim::sim {
namespace {

TEST(Task, SpawnedTaskRunsAtCurrentTimeNotSynchronously) {
  Engine eng;
  bool ran = false;
  spawn(eng, [](bool& flag) -> Task<void> {
    flag = true;
    co_return;
  }(ran));
  EXPECT_FALSE(ran);  // deferred until the engine dispatches
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(eng.now(), 0u);
}

TEST(Task, DelayAdvancesSimulatedTime) {
  Engine eng;
  Time finished = 0;
  spawn(eng, [](Engine& e, Time& out) -> Task<void> {
    co_await delay(e, 100);
    co_await delay(e, 250);
    out = e.now();
  }(eng, finished));
  eng.run();
  EXPECT_EQ(finished, 350u);
}

Task<int> add_later(Engine& eng, int a, int b) {
  co_await delay(eng, 10);
  co_return a + b;
}

TEST(Task, NestedTasksReturnValues) {
  Engine eng;
  int result = 0;
  spawn(eng, [](Engine& e, int& out) -> Task<void> {
    const int x = co_await add_later(e, 2, 3);
    const int y = co_await add_later(e, x, 10);
    out = y;
  }(eng, result));
  eng.run();
  eng.rethrow_task_failures();
  EXPECT_EQ(result, 15);
  EXPECT_EQ(eng.now(), 20u);
}

Task<int> thrower(Engine& eng) {
  co_await delay(eng, 5);
  throw std::runtime_error("kaboom");
}

TEST(Task, ExceptionsPropagateThroughCoAwait) {
  Engine eng;
  bool caught = false;
  spawn(eng, [](Engine& e, bool& flag) -> Task<void> {
    try {
      (void)co_await thrower(e);
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(eng, caught));
  eng.run();
  eng.rethrow_task_failures();
  EXPECT_TRUE(caught);
}

TEST(Task, UncaughtExceptionIsReportedToEngineNotTerminate) {
  Engine eng;
  spawn(eng, [](Engine& e) -> Task<void> {
    co_await delay(e, 1);
    throw std::logic_error("unhandled");
  }(eng));
  eng.run();
  ASSERT_EQ(eng.task_failures().size(), 1u);
  EXPECT_THROW(eng.rethrow_task_failures(), std::logic_error);
}

TEST(Task, ManyTasksInterleaveDeterministically) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    spawn(eng, [](Engine& e, std::vector<int>& log, int id) -> Task<void> {
      for (int step = 0; step < 3; ++step) {
        co_await delay(e, 10);
        log.push_back(id * 10 + step);
      }
    }(eng, order, i));
  }
  eng.run();
  // All tasks wake at the same instants; spawn order breaks ties.
  ASSERT_EQ(order.size(), 12u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 10);
  EXPECT_EQ(order[2], 20);
  EXPECT_EQ(order[3], 30);
  EXPECT_EQ(order[4], 1);
}

TEST(Gate, WaitersReleaseOnOpen) {
  Engine eng;
  Gate gate(eng);
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    spawn(eng, [](Gate& g, std::vector<int>& log, int id) -> Task<void> {
      co_await g.wait();
      log.push_back(id);
    }(gate, woke, i));
  }
  spawn(eng, [](Engine& e, Gate& g) -> Task<void> {
    co_await delay(e, 500);
    g.open();
  }(eng, gate));
  eng.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(eng.now(), 500u);
}

TEST(Gate, WaitOnOpenGateDoesNotSuspend) {
  Engine eng;
  Gate gate(eng);
  gate.open();
  Time when = 1;
  spawn(eng, [](Engine& e, Gate& g, Time& out) -> Task<void> {
    co_await g.wait();
    out = e.now();
  }(eng, gate, when));
  eng.run();
  EXPECT_EQ(when, 0u);
}

TEST(Gate, DoubleOpenIsIdempotent) {
  Engine eng;
  Gate gate(eng);
  gate.open();
  gate.open();
  EXPECT_TRUE(gate.is_open());
}

TEST(Latch, ReleasesAfterCountDowns) {
  Engine eng;
  Latch latch(eng, 3);
  bool released = false;
  spawn(eng, [](Latch& l, bool& flag) -> Task<void> {
    co_await l.wait();
    flag = true;
  }(latch, released));
  for (int i = 0; i < 3; ++i) {
    spawn(eng, [](Engine& e, Latch& l, int id) -> Task<void> {
      co_await delay(e, static_cast<Time>(100 * (id + 1)));
      l.count_down();
    }(eng, latch, i));
  }
  eng.run();
  EXPECT_TRUE(released);
  EXPECT_EQ(eng.now(), 300u);
  EXPECT_EQ(latch.remaining(), 0u);
}

TEST(Latch, ZeroCountIsImmediatelyOpen) {
  Engine eng;
  Latch latch(eng, 0);
  bool released = false;
  spawn(eng, [](Latch& l, bool& flag) -> Task<void> {
    co_await l.wait();
    flag = true;
  }(latch, released));
  eng.run();
  EXPECT_TRUE(released);
}

// A long chain of zero-delay awaits must not blow the native stack
// (each await yields through the event loop, not recursion).
TEST(Task, DeepZeroDelayChainDoesNotRecurse) {
  Engine eng;
  int steps = 0;
  spawn(eng, [](Engine& e, int& n) -> Task<void> {
    for (int i = 0; i < 100'000; ++i) {
      co_await delay(e, 0);
      ++n;
    }
  }(eng, steps));
  eng.run();
  EXPECT_EQ(steps, 100'000);
}

}  // namespace
}  // namespace pinsim::sim
