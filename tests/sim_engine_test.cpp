#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pinsim::sim {
namespace {

TEST(Engine, StartsAtTimeZeroWithEmptyQueue) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_FALSE(eng.step());
  EXPECT_EQ(eng.run(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(eng.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, SameTimeEventsFireInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine eng;
  Time seen = 0;
  eng.schedule_at(100, [&] {
    eng.schedule_after(50, [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, SchedulingInThePastClampsToNow) {
  Engine eng;
  Time seen = 0;
  eng.schedule_at(100, [&] {
    eng.schedule_at(10, [&] { seen = eng.now(); });  // "earlier" than now
  });
  eng.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  auto id = eng.schedule_at(10, [&] { fired = true; });
  EXPECT_EQ(eng.pending(), 1u);
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_EQ(eng.pending(), 0u);
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine eng;
  auto id = eng.schedule_at(10, [] {});
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id));
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine eng;
  auto id = eng.schedule_at(10, [] {});
  eng.run();
  EXPECT_FALSE(eng.cancel(id));
}

TEST(Engine, CancelInvalidIdReturnsFalse) {
  Engine eng;
  EXPECT_FALSE(eng.cancel(Engine::EventId{}));
}

TEST(Engine, StopHaltsRun) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule_at(static_cast<Time>(i), [&] {
      if (++count == 3) eng.stop();
    });
  }
  EXPECT_EQ(eng.run(), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(eng.pending(), 7u);
  // run() clears the stop flag and resumes.
  EXPECT_EQ(eng.run(), 7u);
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunUntilProcessesOnlyDueEventsAndAdvancesClock) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] { ++fired; });
  eng.schedule_at(20, [&] { ++fired; });
  eng.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(eng.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 20u);
  EXPECT_EQ(eng.pending(), 1u);
  EXPECT_EQ(eng.run_until(25), 0u);
  EXPECT_EQ(eng.now(), 25u);
  EXPECT_EQ(eng.run_until(100), 1u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(eng.now(), 100u);
}

TEST(Engine, RunUntilSkipsCancelledHead) {
  Engine eng;
  bool fired = false;
  auto id = eng.schedule_at(5, [&] { fired = true; });
  eng.schedule_at(50, [] {});
  eng.cancel(id);
  EXPECT_EQ(eng.run_until(10), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(eng.now(), 10u);
}

// Regression for the run_until/stop() contract (ISSUE 6): a stopped run
// leaves now() parked at the interrupting event's timestamp — NOT advanced
// to the deadline — and the remaining events in the window stay queued, so
// a subsequent run_until(deadline) resumes the unfinished window instead of
// silently skipping it.
TEST(Engine, StopDuringRunUntilParksClockAndResumes) {
  Engine eng;
  std::vector<Time> fired_at;
  eng.schedule_at(10, [&] { fired_at.push_back(eng.now()); });
  eng.schedule_at(20, [&] {
    fired_at.push_back(eng.now());
    eng.stop();
  });
  eng.schedule_at(30, [&] { fired_at.push_back(eng.now()); });
  eng.schedule_at(40, [&] { fired_at.push_back(eng.now()); });

  EXPECT_EQ(eng.run_until(100), 2u);
  EXPECT_TRUE(eng.stop_requested());
  // Clock parked at the stopping event, not at the deadline.
  EXPECT_EQ(eng.now(), 20u);
  EXPECT_EQ(eng.pending(), 2u);

  // Resuming with the same deadline finishes the window and only then
  // advances the clock to the deadline.
  EXPECT_EQ(eng.run_until(100), 2u);
  EXPECT_FALSE(eng.stop_requested());
  EXPECT_EQ(eng.now(), 100u);
  EXPECT_EQ(fired_at, (std::vector<Time>{10, 20, 30, 40}));
}

TEST(Engine, StopBetweenSameTimeEventsKeepsRestOfBatch) {
  Engine eng;
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    eng.schedule_at(50, [&] {
      if (++fired == 2) eng.stop();
    });
  }
  EXPECT_EQ(eng.run_until(90), 2u);
  EXPECT_EQ(eng.now(), 50u);
  EXPECT_EQ(eng.pending(), 4u);
  // The rest of the 50 ns batch fires on resume, in original order.
  EXPECT_EQ(eng.run_until(90), 4u);
  EXPECT_EQ(fired, 6);
  EXPECT_EQ(eng.now(), 90u);
}

TEST(Engine, RunUntilIdleStillAdvancesClockWhenNotStopped) {
  Engine eng;
  EXPECT_EQ(eng.run_until(1234), 0u);
  EXPECT_EQ(eng.now(), 1234u);
  // A stop requested before the run (not during it) is cleared on entry,
  // exactly like run(): the idle run still advances to the deadline.
  eng.stop();
  EXPECT_EQ(eng.run_until(9999), 0u);
  EXPECT_FALSE(eng.stop_requested());
  EXPECT_EQ(eng.now(), 9999u);
}

TEST(Engine, EventsScheduledInsideCallbackAtSameTimeStillRun) {
  Engine eng;
  int depth = 0;
  eng.schedule_at(10, [&] {
    eng.schedule_after(0, [&] {
      ++depth;
      eng.schedule_after(0, [&] { ++depth; });
    });
  });
  eng.run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(eng.now(), 10u);
}

TEST(Engine, ProcessedCounterAccumulates) {
  Engine eng;
  for (int i = 0; i < 5; ++i) eng.schedule_at(static_cast<Time>(i), [] {});
  eng.run();
  EXPECT_EQ(eng.processed(), 5u);
}

TEST(Engine, MoveOnlyCallbackPayloadsAreSupported) {
  Engine eng;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  eng.schedule_at(1, [p = std::move(payload), &got] { got = *p + 1; });
  eng.run();
  EXPECT_EQ(got, 42);
}

TEST(Engine, TaskFailureReporting) {
  Engine eng;
  EXPECT_NO_THROW(eng.rethrow_task_failures());
  eng.report_task_failure(
      std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW(eng.rethrow_task_failures(), std::runtime_error);
}

// Randomized ordering property: N events with random timestamps always
// observe a non-decreasing clock, and all fire exactly once.
TEST(Engine, RandomizedOrderingProperty) {
  Engine eng;
  Rng rng(1234);
  constexpr int kEvents = 5000;
  int fired = 0;
  Time last = 0;
  bool monotonic = true;
  for (int i = 0; i < kEvents; ++i) {
    eng.schedule_at(rng.uniform(0, 10'000), [&] {
      if (eng.now() < last) monotonic = false;
      last = eng.now();
      ++fired;
    });
  }
  eng.run();
  EXPECT_EQ(fired, kEvents);
  EXPECT_TRUE(monotonic);
}

// Cancellation under churn: schedule/cancel at random, verify only the
// surviving events fire.
TEST(Engine, RandomizedCancellationProperty) {
  Engine eng;
  Rng rng(99);
  constexpr int kEvents = 2000;
  std::vector<Engine::EventId> ids;
  std::vector<bool> fired(kEvents, false);
  std::vector<bool> expect(kEvents, true);
  ids.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    ids.push_back(eng.schedule_at(rng.uniform(0, 1000),
                                  [&fired, i] { fired[static_cast<size_t>(i)] = true; }));
  }
  for (int i = 0; i < kEvents; ++i) {
    if (rng.bernoulli(0.4)) {
      EXPECT_TRUE(eng.cancel(ids[static_cast<size_t>(i)]));
      expect[static_cast<size_t>(i)] = false;
    }
  }
  eng.run();
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(eng.pending(), 0u);
}

// Mass-cancel torture (ISSUE 6): the old scheduler let cancelled entries
// linger in the heap until popped, so pending() could disagree with live
// occupancy after a retry-timer storm. Interleave schedule/cancel/run_until
// at scale and audit the full accounting invariant with self_check() — which
// walks the wheel, the due batch and the free list — at every phase.
TEST(Engine, MassCancelTortureKeepsAccountingExact) {
  Engine eng;
  Rng rng(0xc4a05);
  std::string why;
  std::vector<Engine::EventId> live_ids;
  std::size_t fired = 0;
  std::size_t expected = 0;
  constexpr int kRounds = 200;
  constexpr int kBatch = 64;
  for (int round = 0; round < kRounds; ++round) {
    // Burst of schedules across several wheel levels (retry timers, frame
    // hops, and long watchdogs all at once).
    for (int i = 0; i < kBatch; ++i) {
      const Time delay = rng.bernoulli(0.7)   ? rng.uniform(0, 2'000)
                         : rng.bernoulli(0.8) ? rng.uniform(2'000, 200'000)
                                              : rng.uniform(200'000, 50'000'000);
      live_ids.push_back(eng.schedule_after(delay, [&] { ++fired; }));
      ++expected;
    }
    // Mass-cancel sweep: kill roughly half of everything still pending,
    // including events already extracted into the current due batch.
    for (auto& id : live_ids) {
      if (id.valid() && rng.bernoulli(0.5) && eng.cancel(id)) {
        --expected;
        id = Engine::EventId{};
      }
    }
    std::erase_if(live_ids, [](Engine::EventId id) { return !id.valid(); });
    const std::size_t before = eng.pending();
    const std::size_t ran = eng.run_until(eng.now() + 5'000);
    EXPECT_EQ(eng.pending(), before - ran);
    // pending() must equal live occupancy exactly — no lazily-dead entries.
    ASSERT_TRUE(eng.self_check(&why)) << "round " << round << ": " << why;
  }
  eng.run();
  ASSERT_TRUE(eng.self_check(&why)) << "after drain: " << why;
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_EQ(eng.processed(), fired);
}

// Cancelling events that are already in the extracted due batch must not
// leave stale entries behind or corrupt the batch cursor.
TEST(Engine, CancelInsideSameTimeBatchIsExact) {
  Engine eng;
  std::string why;
  std::vector<Engine::EventId> ids;
  int fired = 0;
  // First event of the batch cancels three later same-time events from
  // inside its callback — after extract_next has already moved the whole
  // batch into the due list, so the cancels hit kDue nodes.
  eng.schedule_at(10, [&] {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(eng.cancel(ids[static_cast<size_t>(i)]));
    }
  });
  for (int i = 0; i < 8; ++i) {
    ids.push_back(eng.schedule_at(10, [&] { ++fired; }));
  }
  eng.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(eng.pending(), 0u);
  ASSERT_TRUE(eng.self_check(&why)) << why;
}

TEST(Engine, SelfCheckPassesOnFreshAndDrainedEngine) {
  Engine eng;
  std::string why;
  ASSERT_TRUE(eng.self_check(&why)) << why;
  for (int i = 0; i < 100; ++i) {
    eng.schedule_at(static_cast<Time>(i * 17 % 50), [] {});
  }
  ASSERT_TRUE(eng.self_check(&why)) << why;
  eng.run();
  ASSERT_TRUE(eng.self_check(&why)) << why;
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyMatches) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.2);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(from_usec(1.0), kMicrosecond);
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(-1.0), 0u);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_usec(kMicrosecond), 1.0);
}

}  // namespace
}  // namespace pinsim::sim
