#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace pinsim::sim {
namespace {

TEST(Engine, StartsAtTimeZeroWithEmptyQueue) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_FALSE(eng.step());
  EXPECT_EQ(eng.run(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(eng.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, SameTimeEventsFireInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine eng;
  Time seen = 0;
  eng.schedule_at(100, [&] {
    eng.schedule_after(50, [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, SchedulingInThePastClampsToNow) {
  Engine eng;
  Time seen = 0;
  eng.schedule_at(100, [&] {
    eng.schedule_at(10, [&] { seen = eng.now(); });  // "earlier" than now
  });
  eng.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  auto id = eng.schedule_at(10, [&] { fired = true; });
  EXPECT_EQ(eng.pending(), 1u);
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_EQ(eng.pending(), 0u);
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine eng;
  auto id = eng.schedule_at(10, [] {});
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id));
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine eng;
  auto id = eng.schedule_at(10, [] {});
  eng.run();
  EXPECT_FALSE(eng.cancel(id));
}

TEST(Engine, CancelInvalidIdReturnsFalse) {
  Engine eng;
  EXPECT_FALSE(eng.cancel(Engine::EventId{}));
}

TEST(Engine, StopHaltsRun) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule_at(static_cast<Time>(i), [&] {
      if (++count == 3) eng.stop();
    });
  }
  EXPECT_EQ(eng.run(), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(eng.pending(), 7u);
  // run() clears the stop flag and resumes.
  EXPECT_EQ(eng.run(), 7u);
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunUntilProcessesOnlyDueEventsAndAdvancesClock) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] { ++fired; });
  eng.schedule_at(20, [&] { ++fired; });
  eng.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(eng.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 20u);
  EXPECT_EQ(eng.pending(), 1u);
  EXPECT_EQ(eng.run_until(25), 0u);
  EXPECT_EQ(eng.now(), 25u);
  EXPECT_EQ(eng.run_until(100), 1u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(eng.now(), 100u);
}

TEST(Engine, RunUntilSkipsCancelledHead) {
  Engine eng;
  bool fired = false;
  auto id = eng.schedule_at(5, [&] { fired = true; });
  eng.schedule_at(50, [] {});
  eng.cancel(id);
  EXPECT_EQ(eng.run_until(10), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(eng.now(), 10u);
}

TEST(Engine, EventsScheduledInsideCallbackAtSameTimeStillRun) {
  Engine eng;
  int depth = 0;
  eng.schedule_at(10, [&] {
    eng.schedule_after(0, [&] {
      ++depth;
      eng.schedule_after(0, [&] { ++depth; });
    });
  });
  eng.run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(eng.now(), 10u);
}

TEST(Engine, ProcessedCounterAccumulates) {
  Engine eng;
  for (int i = 0; i < 5; ++i) eng.schedule_at(static_cast<Time>(i), [] {});
  eng.run();
  EXPECT_EQ(eng.processed(), 5u);
}

TEST(Engine, MoveOnlyCallbackPayloadsAreSupported) {
  Engine eng;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  eng.schedule_at(1, [p = std::move(payload), &got] { got = *p + 1; });
  eng.run();
  EXPECT_EQ(got, 42);
}

TEST(Engine, TaskFailureReporting) {
  Engine eng;
  EXPECT_NO_THROW(eng.rethrow_task_failures());
  eng.report_task_failure(
      std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW(eng.rethrow_task_failures(), std::runtime_error);
}

// Randomized ordering property: N events with random timestamps always
// observe a non-decreasing clock, and all fire exactly once.
TEST(Engine, RandomizedOrderingProperty) {
  Engine eng;
  Rng rng(1234);
  constexpr int kEvents = 5000;
  int fired = 0;
  Time last = 0;
  bool monotonic = true;
  for (int i = 0; i < kEvents; ++i) {
    eng.schedule_at(rng.uniform(0, 10'000), [&] {
      if (eng.now() < last) monotonic = false;
      last = eng.now();
      ++fired;
    });
  }
  eng.run();
  EXPECT_EQ(fired, kEvents);
  EXPECT_TRUE(monotonic);
}

// Cancellation under churn: schedule/cancel at random, verify only the
// surviving events fire.
TEST(Engine, RandomizedCancellationProperty) {
  Engine eng;
  Rng rng(99);
  constexpr int kEvents = 2000;
  std::vector<Engine::EventId> ids;
  std::vector<bool> fired(kEvents, false);
  std::vector<bool> expect(kEvents, true);
  ids.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    ids.push_back(eng.schedule_at(rng.uniform(0, 1000),
                                  [&fired, i] { fired[static_cast<size_t>(i)] = true; }));
  }
  for (int i = 0; i < kEvents; ++i) {
    if (rng.bernoulli(0.4)) {
      EXPECT_TRUE(eng.cancel(ids[static_cast<size_t>(i)]));
      expect[static_cast<size_t>(i)] = false;
    }
  }
  eng.run();
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyMatches) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.2);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(from_usec(1.0), kMicrosecond);
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(-1.0), 0u);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_usec(kMicrosecond), 1.0);
}

}  // namespace
}  // namespace pinsim::sim
