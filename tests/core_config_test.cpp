// The named presets must match the paper's figure legends exactly — a
// mislabeled preset would silently invalidate every benchmark.
#include "core/config.hpp"

#include <gtest/gtest.h>

namespace pinsim::core {
namespace {

TEST(Config, RegularPinningIsPerCommunicationWithoutCache) {
  const auto cfg = regular_pinning_config();
  EXPECT_EQ(cfg.pinning.mode, PinMode::kPerCommunication);
  EXPECT_FALSE(cfg.pinning.overlapped);
  EXPECT_FALSE(cfg.cache.enabled);
}

TEST(Config, OverlappedPinningIsOnDemandWithoutCache) {
  const auto cfg = overlapped_pinning_config();
  EXPECT_EQ(cfg.pinning.mode, PinMode::kOnDemand);
  EXPECT_TRUE(cfg.pinning.overlapped);
  EXPECT_FALSE(cfg.cache.enabled);
}

TEST(Config, PinningCacheIsOnDemandWithCacheNoOverlap) {
  const auto cfg = pinning_cache_config();
  EXPECT_EQ(cfg.pinning.mode, PinMode::kOnDemand);
  EXPECT_FALSE(cfg.pinning.overlapped);
  EXPECT_TRUE(cfg.cache.enabled);
}

TEST(Config, OverlappedCacheEnablesBoth) {
  const auto cfg = overlapped_cache_config();
  EXPECT_EQ(cfg.pinning.mode, PinMode::kOnDemand);
  EXPECT_TRUE(cfg.pinning.overlapped);
  EXPECT_TRUE(cfg.cache.enabled);
}

TEST(Config, PermanentPinsAtDeclaration) {
  const auto cfg = permanent_pinning_config();
  EXPECT_EQ(cfg.pinning.mode, PinMode::kPermanent);
  EXPECT_TRUE(cfg.cache.enabled);
}

TEST(Config, QsnetIdealNeverPins) {
  const auto cfg = qsnet_ideal_config();
  EXPECT_EQ(cfg.pinning.mode, PinMode::kNone);
}

TEST(Config, ProtocolDefaultsMatchTheMxoeSpecAndPaper) {
  const ProtocolConfig p;
  EXPECT_EQ(p.eager_threshold, 32u * 1024);        // MXoE spec (§2.2)
  EXPECT_EQ(p.pull_block, 32u * 1024);             // MXoE pull blocks
  EXPECT_EQ(p.retransmit_timeout, sim::kSecond);   // paper footnote 4
  EXPECT_TRUE(p.optimistic_rerequest);             // paper footnote 4
  EXPECT_TRUE(p.distribute_interrupts);            // "one process per core"
  EXPECT_GT(p.pull_window, 0u);
  EXPECT_GT(p.frame_payload, 0u);
  EXPECT_LE(p.frame_payload + 64, 9000u);  // fits the jumbo MTU with headers
}

TEST(Config, PinningDefaultsAreTheDecoupledModel) {
  const PinningConfig p;
  EXPECT_EQ(p.mode, PinMode::kOnDemand);
  EXPECT_GT(p.pin_chunk_pages, 0u);
  EXPECT_EQ(p.sync_prepin_pages, 0u);  // §4.3 mitigation off by default
}

}  // namespace
}  // namespace pinsim::core
