#include "ioat/dma_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace pinsim::ioat {
namespace {

TEST(DmaEngine, CopyCompletesAfterSetupPlusTransfer) {
  sim::Engine eng;
  DmaEngine::Config cfg;
  cfg.bandwidth_gbps = 2.0;  // 2 bytes per ns
  cfg.setup_cost = 100;
  DmaEngine dma(eng, cfg);
  sim::Time done_at = 0;
  bool performed = false;
  ASSERT_TRUE(dma.copy(
      1000, [&] { performed = true; }, [&] { done_at = eng.now(); }));
  EXPECT_TRUE(dma.copy(0, [] {}, [] {}));
  eng.run();
  EXPECT_TRUE(performed);
  EXPECT_EQ(done_at, 600u);  // 100 setup + 1000/2
}

TEST(DmaEngine, PerformRunsBeforeDone) {
  sim::Engine eng;
  DmaEngine dma(eng);
  std::vector<int> order;
  ASSERT_TRUE(dma.copy(
      64, [&] { order.push_back(1); }, [&] { order.push_back(2); }));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(DmaEngine, RequestsSerializeOnTheChannel) {
  sim::Engine eng;
  DmaEngine::Config cfg;
  cfg.bandwidth_gbps = 1.0;
  cfg.setup_cost = 0;
  DmaEngine dma(eng, cfg);
  std::vector<sim::Time> completions;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dma.copy(1000, [] {}, [&] { completions.push_back(eng.now()); }));
  }
  eng.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 1000u);
  EXPECT_EQ(completions[1], 2000u);
  EXPECT_EQ(completions[2], 3000u);
  EXPECT_TRUE(dma.idle());
}

TEST(DmaEngine, DataMovesAtCompletionTimeNotSubmitTime) {
  // A late mutation of the source before DMA completion is what the engine
  // ships (the hardware reads memory when the descriptor executes).
  sim::Engine eng;
  DmaEngine::Config cfg;
  cfg.bandwidth_gbps = 1.0;
  cfg.setup_cost = 0;
  DmaEngine dma(eng, cfg);
  int src = 1;
  int dst = 0;
  ASSERT_TRUE(dma.copy(1000, [&] { dst = src; }, [] {}));
  eng.schedule_at(500, [&] { src = 2; });
  eng.run();
  EXPECT_EQ(dst, 2);
}

TEST(DmaEngine, QueueOverflowRejects) {
  sim::Engine eng;
  DmaEngine::Config cfg;
  cfg.max_queue = 2;
  DmaEngine dma(eng, cfg);
  EXPECT_TRUE(dma.copy(10, [] {}, [] {}));   // starts immediately
  EXPECT_TRUE(dma.copy(10, [] {}, [] {}));   // queued
  EXPECT_TRUE(dma.copy(10, [] {}, [] {}));   // queued
  EXPECT_FALSE(dma.copy(10, [] {}, [] {}));  // ring full
  EXPECT_EQ(dma.stats().rejected, 1u);
  eng.run();
  EXPECT_EQ(dma.stats().copies, 3u);
}

TEST(DmaEngine, StatsAccumulate) {
  sim::Engine eng;
  DmaEngine dma(eng);
  ASSERT_TRUE(dma.copy(4096, [] {}, [] {}));
  ASSERT_TRUE(dma.copy(8192, [] {}, [] {}));
  eng.run();
  EXPECT_EQ(dma.stats().copies, 2u);
  EXPECT_EQ(dma.stats().bytes, 12288u);
  EXPECT_GT(dma.stats().busy, 0u);
}

TEST(DmaEngine, InvalidBandwidthThrows) {
  sim::Engine eng;
  DmaEngine::Config cfg;
  cfg.bandwidth_gbps = -1.0;
  EXPECT_THROW(DmaEngine(eng, cfg), std::invalid_argument);
}

TEST(DmaEngine, FasterThanCpuForLargeCopies) {
  // Sanity of the calibration: the engine beats a 2.6 GB/s CPU memcpy on
  // large blocks despite its setup cost.
  sim::Engine eng;
  DmaEngine dma(eng);
  const auto dma_time = dma.transfer_time(64 * 1024);
  const auto cpu_time =
      static_cast<sim::Time>(static_cast<double>(64 * 1024) / 2.6);
  EXPECT_LT(dma_time, cpu_time);
}

}  // namespace
}  // namespace pinsim::ioat
