// MetricsSampler edge cases: interval catch-up across idle gaps, gauge
// carry-forward vs per-interval counter reset, gauge resets on unpin and
// completion, pair-merge compaction, trailing-partial flush.
#include <gtest/gtest.h>

#include <string>

#include "obs/event.hpp"
#include "obs/metrics.hpp"

namespace pinsim::obs {
namespace {

Event at(sim::Time t, EventKind kind) {
  Event e;
  e.time = t;
  e.kind = kind;
  e.node = 1;
  return e;
}

Event pin(sim::Time t, EventKind kind, std::uint32_t region,
          std::uint64_t frontier) {
  Event e = at(t, kind);
  e.region = region;
  e.offset = frontier;
  return e;
}

TEST(MetricsSampler, GaugesCarryForwardCountersReset) {
  MetricsSampler m(/*interval=*/1000);
  m.on_event(pin(100, EventKind::kPinStart, 1, 0));
  m.on_event(pin(200, EventKind::kPinPages, 1, 4));
  Event rx = at(300, EventKind::kRetransmit);
  rx.seq = 9;
  m.on_event(rx);
  // Crossing into the next interval closes [0,1000): counters captured.
  m.on_event(pin(1500, EventKind::kPinPages, 1, 8));
  // And [1000,2000): no retransmit this time — the counter must have reset.
  m.on_event(pin(2500, EventKind::kPinPages, 1, 12));
  m.finalize();

  ASSERT_GE(m.samples().size(), 3u);
  const auto& s0 = m.samples()[0];
  EXPECT_EQ(s0.t, 1000u);
  EXPECT_EQ(s0.pinned_pages, 4u);
  EXPECT_EQ(s0.inflight_pin_jobs, 1u);
  EXPECT_EQ(s0.retransmits, 1u);
  const auto& s1 = m.samples()[1];
  EXPECT_EQ(s1.t, 2000u);
  EXPECT_EQ(s1.pinned_pages, 8u);   // gauge carried + updated
  EXPECT_EQ(s1.retransmits, 0u);    // counter reset at the boundary
}

TEST(MetricsSampler, IdleGapEmitsAtMostTwoSamples) {
  MetricsSampler m(/*interval=*/1000);
  m.on_event(at(100, EventKind::kEagerPost));
  // 100 intervals of silence: no 100-sample flood, just the closing sample
  // and one flat carry-forward sample before the event's own interval.
  m.on_event(at(100500, EventKind::kSendDone));
  m.finalize();

  ASSERT_EQ(m.samples().size(), 3u);
  EXPECT_EQ(m.samples()[0].t, 1000u);
  EXPECT_EQ(m.samples()[0].open_sends, 1u);
  EXPECT_EQ(m.samples()[1].t, 100000u);
  EXPECT_EQ(m.samples()[1].open_sends, 1u);  // carried through the gap
  EXPECT_EQ(m.samples()[2].t, 101000u);      // finalize flushes the tail
  EXPECT_EQ(m.samples()[2].open_sends, 0u);
}

TEST(MetricsSampler, GaugeResetsOnUnpinAndCompletion) {
  MetricsSampler m(/*interval=*/1000);
  m.on_event(pin(0, EventKind::kPinStart, 3, 0));
  m.on_event(pin(100, EventKind::kPinPages, 3, 16));
  m.on_event(pin(200, EventKind::kPinDone, 3, 16));
  Event post = at(300, EventKind::kRndvPost);
  post.seq = 5;
  m.on_event(post);
  Event pull = at(400, EventKind::kPullStart);
  pull.node = 2;
  pull.seq = 77;
  m.on_event(pull);
  // Everything winds down inside the second interval.
  m.on_event(pin(1100, EventKind::kPinUnpin, 3, 0));
  Event rdone = at(1200, EventKind::kRecvDone);
  rdone.node = 2;
  rdone.seq = 77;
  m.on_event(rdone);
  Event sdone = at(1300, EventKind::kSendDone);
  sdone.seq = 5;
  m.on_event(sdone);
  m.finalize();

  ASSERT_GE(m.samples().size(), 2u);
  const auto& busy = m.samples()[0];
  EXPECT_EQ(busy.pinned_pages, 16u);
  EXPECT_EQ(busy.inflight_pin_jobs, 0u);  // done before the boundary
  EXPECT_EQ(busy.open_sends, 1u);
  EXPECT_EQ(busy.open_pulls, 1u);
  const auto& idle = m.samples().back();
  EXPECT_EQ(idle.pinned_pages, 0u);
  EXPECT_EQ(idle.open_sends, 0u);
  EXPECT_EQ(idle.open_pulls, 0u);
}

TEST(MetricsSampler, CompactionDoublesIntervalAndPreservesCounters) {
  MetricsSampler m(/*interval=*/100, /*max_samples=*/4);
  std::uint32_t total_misses = 0;
  for (int i = 0; i < 10; ++i) {
    Event e = at(static_cast<sim::Time>(i) * 100 + 50,
                 EventKind::kOverlapMissRecv);
    m.on_event(e);
    ++total_misses;
  }
  m.finalize();

  EXPECT_GE(m.compactions(), 1u);
  EXPECT_GT(m.interval(), 100u);
  EXPECT_LT(m.samples().size(), 10u);
  std::uint32_t seen = 0;
  for (const auto& s : m.samples()) seen += s.overlap_misses;
  EXPECT_EQ(seen, total_misses);  // merging never loses counter mass
}

TEST(MetricsSampler, CopiedBytesAndDenialsAccumulate) {
  MetricsSampler m(/*interval=*/1000);
  Event c1 = at(100, EventKind::kCopyIn);
  c1.len = 4096;
  m.on_event(c1);
  Event c2 = at(200, EventKind::kCopyIn);
  c2.len = 8192;
  m.on_event(c2);
  m.on_event(at(300, EventKind::kPressureDeny));
  m.on_event(at(1500, EventKind::kPktTx));
  m.finalize();

  ASSERT_GE(m.samples().size(), 1u);
  EXPECT_EQ(m.samples()[0].copied_bytes, 12288u);
  EXPECT_EQ(m.samples()[0].pressure_denials, 1u);
}

TEST(MetricsSampler, FinalizeWithoutEventsIsEmpty) {
  MetricsSampler m;
  m.finalize();
  EXPECT_TRUE(m.samples().empty());
  const std::string j = m.json();
  EXPECT_NE(j.find("\"count\":0"), std::string::npos);
}

TEST(MetricsSampler, JsonIsColumnar) {
  MetricsSampler m(/*interval=*/1000);
  m.on_event(pin(100, EventKind::kPinStart, 1, 0));
  m.on_event(pin(1200, EventKind::kPinDone, 1, 4));
  m.finalize();

  const std::string j = m.json();
  EXPECT_NE(j.find("\"interval_ns\":1000"), std::string::npos);
  EXPECT_NE(j.find("\"t_ns\":[1000,2000]"), std::string::npos);
  EXPECT_NE(j.find("\"pinned_pages\":[0,4]"), std::string::npos);
  EXPECT_NE(j.find("\"inflight_pin_jobs\":[1,0]"), std::string::npos);
}

}  // namespace
}  // namespace pinsim::obs
