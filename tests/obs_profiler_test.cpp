// Dispatch-level self-profiler against hand-built engine schedules: tag
// accumulation, schedule->dispatch sim lag, the untagged bucket, and the
// determinism contract — without wall-clock capture, json() is a pure
// function of the schedule and must be byte-identical across runs.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "sim/engine.hpp"

namespace pinsim::obs {
namespace {

constexpr sim::TaskTag kTxTag{"net", "tx"};
constexpr sim::TaskTag kRtoTag{"core", "rto"};

TEST(Profiler, AccumulatesPerTagCountsAndSimLag) {
  sim::Engine eng;
  Profiler prof;
  prof.attach(eng);
  ASSERT_EQ(eng.dispatch_observer(), &prof);

  // Three tx dispatches with 10/20/30 ns schedule->dispatch lag, one rto
  // with 5 ns. All filed at t=0, so the lag is exactly the delay.
  for (sim::Time d : {10, 20, 30}) {
    eng.schedule_after(d, [] {}, kTxTag);
  }
  eng.schedule_after(5, [] {}, kRtoTag);
  eng.run();

  EXPECT_EQ(prof.total_dispatches(), 4u);
  const auto stats = prof.stats();
  ASSERT_EQ(stats.size(), 2u);
  // stats() sorts by name: core/rto before net/tx.
  EXPECT_EQ(stats[0].name, "core/rto");
  EXPECT_EQ(stats[0].dispatches, 1u);
  EXPECT_EQ(stats[0].sim_lag_ns, 5u);
  EXPECT_EQ(stats[1].name, "net/tx");
  EXPECT_EQ(stats[1].dispatches, 3u);
  EXPECT_EQ(stats[1].sim_lag_ns, 60u);
  // No wall-clock capture: self time must stay exactly zero.
  EXPECT_EQ(stats[0].self_ns, 0u);
  EXPECT_EQ(stats[1].self_ns, 0u);
}

TEST(Profiler, UntaggedDispatchesLandInTheOtherBucket) {
  sim::Engine eng;
  Profiler prof;
  prof.attach(eng);
  eng.schedule_after(1, [] {});
  eng.schedule_after(2, [] {});
  eng.run();
  const auto stats = prof.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "other/untagged");
  EXPECT_EQ(stats[0].dispatches, 2u);
}

TEST(Profiler, MergesSameTagTextReachingViaDifferentAddresses) {
  // The hot path keys on string pointers; stats() must merge slots whose
  // text is identical but whose addresses differ (same literal tag used
  // from different translation units).
  static const char comp_a[] = "net";
  static const char comp_b[] = "net";
  static const char label_a[] = "tx";
  static const char label_b[] = "tx";
  ASSERT_NE(static_cast<const void*>(comp_a),
            static_cast<const void*>(comp_b));

  sim::Engine eng;
  Profiler prof;
  prof.attach(eng);
  eng.schedule_after(1, [] {}, sim::TaskTag{comp_a, label_a});
  eng.schedule_after(2, [] {}, sim::TaskTag{comp_b, label_b});
  eng.run();
  const auto stats = prof.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "net/tx");
  EXPECT_EQ(stats[0].dispatches, 2u);
}

std::string run_tagged_schedule_json() {
  sim::Engine eng;
  Profiler prof(/*wall_clock=*/false);
  prof.attach(eng);
  eng.schedule_after(10, [] {}, kTxTag);
  eng.schedule_after(10, [] {}, kRtoTag);
  eng.schedule_after(25, [] {}, kTxTag);
  eng.schedule_after(40, [] {});
  eng.run();
  return prof.json();
}

TEST(Profiler, JsonWithoutWallClockIsByteStableAndValid) {
  const std::string a = run_tagged_schedule_json();
  const std::string b = run_tagged_schedule_json();
  // The determinism surface: identical schedules must render identical
  // bytes — this is what lets the profile section ride inside the
  // byte-compared ObsRig report on untraced runs.
  EXPECT_EQ(a, b);
  EXPECT_TRUE(json_valid(a)) << a;
  // None of the wall-clock host-noise fields may leak in.
  EXPECT_EQ(a.find("self_ms"), std::string::npos) << a;
  EXPECT_EQ(a.find("events_per_sec"), std::string::npos) << a;
  EXPECT_EQ(a.find("\"top\""), std::string::npos) << a;
  EXPECT_NE(a.find("\"total_dispatches\":4"), std::string::npos) << a;
  EXPECT_NE(a.find("\"sim_lag_ns\""), std::string::npos) << a;
}

TEST(Profiler, WallClockModeAddsSelfTimeFieldsAndTopList) {
  sim::Engine eng;
  Profiler prof(/*wall_clock=*/true);
  prof.attach(eng);
  eng.schedule_after(1, [] {}, kTxTag);
  eng.schedule_after(2, [] {}, kRtoTag);
  eng.run();
  const std::string j = prof.json(/*top_k=*/1);
  EXPECT_TRUE(json_valid(j)) << j;
  EXPECT_NE(j.find("self_ms"), std::string::npos) << j;
  EXPECT_NE(j.find("\"top\":["), std::string::npos) << j;
  // top_k caps the hot list: two tags, one entry.
  const auto top = j.find("\"top\":[");
  const auto close = j.find(']', top);
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(j.substr(top, close - top).find(','), std::string::npos) << j;
}

TEST(Profiler, SpeedscopeJsonIsValidInBothModes) {
  for (bool wall : {false, true}) {
    sim::Engine eng;
    Profiler prof(wall);
    prof.attach(eng);
    eng.schedule_after(1, [] {}, kTxTag);
    eng.schedule_after(2, [] {}, kTxTag);
    eng.schedule_after(3, [] {}, kRtoTag);
    eng.run();
    const std::string flame = prof.speedscope_json("unit-test");
    EXPECT_TRUE(json_valid(flame)) << flame;
    EXPECT_NE(flame.find("speedscope.app/file-format-schema.json"),
              std::string::npos);
    EXPECT_NE(flame.find("\"type\":\"sampled\""), std::string::npos);
    EXPECT_NE(flame.find("net/tx"), std::string::npos);
    // Counts mode weighs frames by dispatches; wall mode by self ms.
    EXPECT_NE(flame.find(wall ? "\"milliseconds\"" : "\"none\""),
              std::string::npos)
        << flame;
  }
}

TEST(Profiler, DetachStopsCountingAndClearsTheEngineHook) {
  sim::Engine eng;
  Profiler prof;
  prof.attach(eng);
  eng.schedule_after(1, [] {}, kTxTag);
  eng.run();
  EXPECT_EQ(prof.total_dispatches(), 1u);
  prof.detach();
  EXPECT_EQ(eng.dispatch_observer(), nullptr);
  eng.schedule_after(1, [] {}, kTxTag);
  eng.run();
  EXPECT_EQ(prof.total_dispatches(), 1u);
}

TEST(Profiler, DetachLeavesAForeignObserverAlone) {
  // Replacing the observer then destroying the old profiler must not
  // detach the new one (detach only clears the hook if it still owns it).
  sim::Engine eng;
  Profiler second;
  {
    Profiler first;
    first.attach(eng);
    second.attach(eng);
    ASSERT_EQ(eng.dispatch_observer(), &second);
  }  // first's dtor runs detach()
  EXPECT_EQ(eng.dispatch_observer(), &second);
}

}  // namespace
}  // namespace pinsim::obs
