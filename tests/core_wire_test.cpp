#include "core/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pinsim::core {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

Packet round_trip(Packet p) {
  auto wire = encode(p);
  return decode(wire);
}

TEST(Wire, EagerRoundTrip) {
  Packet p;
  p.header.src_ep = 3;
  p.header.dst_ep = 7;
  EagerBody b;
  b.match = 0xdeadbeefcafef00dULL;
  b.msg_len = 100;
  b.frag_offset = 10;
  b.seq = 42;
  b.data = bytes_of("hello eager world");
  p.body = b;

  Packet q = round_trip(p);
  EXPECT_EQ(q.type(), PacketType::kEager);
  EXPECT_EQ(q.header.src_ep, 3);
  EXPECT_EQ(q.header.dst_ep, 7);
  const auto& eb = std::get<EagerBody>(q.body);
  EXPECT_EQ(eb.match, b.match);
  EXPECT_EQ(eb.msg_len, 100u);
  EXPECT_EQ(eb.frag_offset, 10u);
  EXPECT_EQ(eb.seq, 42u);
  EXPECT_EQ(eb.data, b.data);
}

TEST(Wire, EagerEmptyPayload) {
  Packet p;
  EagerBody b;
  b.msg_len = 0;
  p.body = b;
  Packet q = round_trip(p);
  EXPECT_TRUE(std::get<EagerBody>(q.body).data.empty());
}

TEST(Wire, RndvRoundTrip) {
  Packet p;
  RndvBody b;
  b.match = 77;
  b.msg_len = 16ull * 1024 * 1024;
  b.region = 5;
  b.seq = 1234;
  p.body = b;
  Packet q = round_trip(p);
  const auto& rb = std::get<RndvBody>(q.body);
  EXPECT_EQ(rb.msg_len, b.msg_len);
  EXPECT_EQ(rb.region, 5u);
  EXPECT_EQ(rb.seq, 1234u);
}

TEST(Wire, PullRoundTrip) {
  Packet p;
  PullBody b;
  b.region = 9;
  b.handle = 3;
  b.offset = 0x123456789aULL;
  b.len = 32768;
  b.seq = 55;
  p.body = b;
  Packet q = round_trip(p);
  const auto& pb = std::get<PullBody>(q.body);
  EXPECT_EQ(pb.region, 9u);
  EXPECT_EQ(pb.handle, 3u);
  EXPECT_EQ(pb.offset, 0x123456789aULL);
  EXPECT_EQ(pb.len, 32768u);
  EXPECT_EQ(pb.seq, 55u);
}

TEST(Wire, PullReplyCarriesData) {
  Packet p;
  PullReplyBody b;
  b.handle = 11;
  b.offset = 8192;
  b.data.assign(8192, std::byte{0x5a});
  p.body = b;
  auto wire = encode(p);
  EXPECT_EQ(wire.size(), encoded_overhead(PacketType::kPullReply) + 8192);
  Packet q = decode(wire);
  const auto& rb = std::get<PullReplyBody>(q.body);
  EXPECT_EQ(rb.data.size(), 8192u);
  EXPECT_EQ(rb.data[100], std::byte{0x5a});
}

TEST(Wire, ControlPacketsRoundTrip) {
  {
    Packet p;
    p.body = EagerAckBody{99};
    EXPECT_EQ(std::get<EagerAckBody>(round_trip(p).body).seq, 99u);
  }
  {
    Packet p;
    p.body = NotifyBody{7, 8};
    auto q = round_trip(p);
    EXPECT_EQ(std::get<NotifyBody>(q.body).seq, 7u);
    EXPECT_EQ(std::get<NotifyBody>(q.body).handle, 8u);
  }
  {
    Packet p;
    p.body = NotifyAckBody{13};
    EXPECT_EQ(std::get<NotifyAckBody>(round_trip(p).body).handle, 13u);
  }
  {
    Packet p;
    p.body = AbortBody{21};
    EXPECT_EQ(std::get<AbortBody>(round_trip(p).body).seq, 21u);
  }
}

TEST(Wire, HeaderTypeMatchesBodyAlternative) {
  Packet p;
  p.body = PullBody{};
  auto wire = encode(p);
  EXPECT_EQ(static_cast<PacketType>(std::to_integer<int>(wire[0])),
            PacketType::kPull);
}

TEST(Wire, TruncatedPacketThrows) {
  Packet p;
  RndvBody b;
  p.body = b;
  auto wire = encode(p);
  wire.resize(wire.size() - 1);
  EXPECT_THROW(decode(wire), WireFormatError);
}

TEST(Wire, EmptyBufferThrows) {
  EXPECT_THROW(decode(std::span<const std::byte>{}), WireFormatError);
}

TEST(Wire, BadTypeThrows) {
  std::vector<std::byte> wire(16, std::byte{0});
  wire[0] = std::byte{0xff};
  EXPECT_THROW(decode(wire), WireFormatError);
}

TEST(Wire, TrailingBytesOnFixedSizePacketThrow) {
  Packet p;
  p.body = NotifyBody{1, 2};
  auto wire = encode(p);
  wire.push_back(std::byte{0});
  EXPECT_THROW(decode(wire), WireFormatError);
}

TEST(Wire, EagerFragmentBeyondMessageLengthThrows) {
  Packet p;
  EagerBody b;
  b.msg_len = 4;
  b.frag_offset = 0;
  b.data = bytes_of("too much data");
  p.body = b;
  auto wire = encode(p);
  EXPECT_THROW(decode(wire), WireFormatError);
}

TEST(Wire, ChecksumCatchesSingleBitFlip) {
  Packet p;
  EagerBody b;
  b.match = 0x1234;
  b.msg_len = 64;
  b.seq = 7;
  b.data.assign(64, std::byte{0xa5});
  p.body = b;
  auto wire = encode(p);
  // Flip one bit in every byte position (header, body, payload, CRC itself):
  // decode must reject each damaged frame.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto damaged = wire;
    damaged[i] ^= std::byte{0x10};
    EXPECT_THROW(decode(damaged), WireChecksumError) << "byte " << i;
  }
  // The pristine frame still decodes.
  EXPECT_EQ(decode(wire).type(), PacketType::kEager);
}

TEST(Wire, ChecksumIsLittleEndianTrailerOverPrecedingBytes) {
  Packet p;
  p.body = EagerAckBody{4711};
  auto wire = encode(p);
  ASSERT_GT(wire.size(), kChecksumBytes);
  const auto body = std::span<const std::byte>(wire).first(
      wire.size() - kChecksumBytes);
  const std::uint32_t crc = frame_checksum(body);
  const std::size_t t = wire.size() - kChecksumBytes;
  EXPECT_EQ(wire[t + 0], std::byte(crc & 0xff));
  EXPECT_EQ(wire[t + 1], std::byte((crc >> 8) & 0xff));
  EXPECT_EQ(wire[t + 2], std::byte((crc >> 16) & 0xff));
  EXPECT_EQ(wire[t + 3], std::byte((crc >> 24) & 0xff));
}

TEST(Wire, ChecksumIsDeterministicAndContentSensitive) {
  std::vector<std::byte> a(100, std::byte{0x11});
  std::vector<std::byte> b(100, std::byte{0x11});
  EXPECT_EQ(frame_checksum(a), frame_checksum(b));
  b[50] = std::byte{0x12};
  EXPECT_NE(frame_checksum(a), frame_checksum(b));
  // CRC-32 (IEEE) of "123456789" is the classic check value.
  const char* check = "123456789";
  std::vector<std::byte> v(9);
  std::memcpy(v.data(), check, 9);
  EXPECT_EQ(frame_checksum(v), 0xcbf43926u);
}

TEST(Wire, ChecksumErrorIsDistinctFromFormatError) {
  Packet p;
  p.body = AbortBody{1};
  auto wire = encode(p);
  wire.back() ^= std::byte{0xff};
  bool caught_checksum = false;
  try {
    (void)decode(wire);
  } catch (const WireChecksumError&) {
    caught_checksum = true;
  }
  EXPECT_TRUE(caught_checksum);
}

TEST(Wire, PacketTypeNames) {
  EXPECT_STREQ(packet_type_name(PacketType::kEager), "EAGER");
  EXPECT_STREQ(packet_type_name(PacketType::kPullReply), "PULL_REPLY");
  EXPECT_STREQ(packet_type_name(static_cast<PacketType>(99)), "UNKNOWN");
}

}  // namespace
}  // namespace pinsim::core
