#!/usr/bin/env python3
"""Well-formedness gate for every observability artifact a quick
instrumented bench run emits: each `.trace.json` / `.flight.json` must be
valid Chrome Trace Event JSON with in-order span timestamps, and each
`.report.json` must be a valid JSON object carrying the report sections.

The C++ side has json_valid() unit coverage; this test closes the loop on
the files as actually written — truncated writes, a stray comma from a
hand-rolled serializer, or a sink flushing events out of order all surface
here, on exactly the artifacts ci.sh archives when a tier fails.

Usage: trace_wellformed_test.py --bench <path-to-fig6-binary>
Runs the bench with --quick --trace-out into a temp dir and checks
everything it left behind. Exits 0 when every artifact is well-formed.
Stdlib only.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Phases that carry no (meaningful) timestamp or that legitimately appear
# outside the time-ordered stream.
UNTIMED_PHASES = {"M"}


def fail(path, msg):
    print(f"FAIL {os.path.basename(path)}: {msg}", file=sys.stderr)
    return False


def check_trace(path):
    """Chrome-trace JSON: parseable, and span/instant timestamps in order."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"malformed JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "no traceEvents array")

    ok = True
    last_ts = None
    open_spans = {}  # (cat, id, ph-family) -> stack of begin timestamps
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            ok = fail(path, f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            ok = fail(path, f"event {i} has no phase")
            continue
        if ph in UNTIMED_PHASES:
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            ok = fail(path, f"event {i} ({ev.get('name')}) bad ts {ts!r}")
            continue
        # Both writers render events in simulated-time order; a regression
        # there shows up as a backwards jump in the flat ts sequence.
        if last_ts is not None and ts < last_ts:
            ok = fail(path, f"event {i} ({ev.get('name')}) ts {ts} after "
                            f"{last_ts}: out of order")
        last_ts = max(ts, last_ts) if last_ts is not None else ts
        # Async spans ("b"/"e", matched by (cat, id)) and duration spans
        # ("B"/"E", matched per pid/tid) must nest with begin <= end.
        if ph in ("b", "B"):
            key = (ev.get("cat"), ev.get("id"), ev.get("pid"),
                   ev.get("tid"), ph)
            open_spans.setdefault(key, []).append(ts)
        elif ph in ("e", "E"):
            key = (ev.get("cat"), ev.get("id"), ev.get("pid"),
                   ev.get("tid"), "b" if ph == "e" else "B")
            stack = open_spans.get(key, [])
            if not stack:
                ok = fail(path, f"event {i} ({ev.get('name')}) span end "
                                "with no open begin")
            elif ts < stack[-1]:
                ok = fail(path, f"event {i} ({ev.get('name')}) span end ts "
                                f"{ts} before its begin {stack[-1]}")
            if stack:
                stack.pop()
    return ok


def check_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"malformed JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "report is not a JSON object")
    missing = [k for k in ("invariant_violations", "profile", "flight")
               if k not in doc]
    if missing:
        return fail(path, f"report missing sections: {missing}")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="instrumentable bench binary (fig6)")
    args = parser.parse_args()
    bench = os.path.abspath(args.bench)

    with tempfile.TemporaryDirectory(prefix="pinsim-wellformed-") as tmp:
        proc = subprocess.run(
            [bench, "--quick", f"--trace-out={os.path.join(tmp, 'wf')}"],
            cwd=tmp, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"FAIL: {bench} exited {proc.returncode}",
                  file=sys.stderr)
            return 1

        checked = 0
        ok = True
        for name in sorted(os.listdir(tmp)):
            path = os.path.join(tmp, name)
            if name.endswith((".trace.json", ".flight.json")):
                ok &= check_trace(path)
                checked += 1
            elif name.endswith(".report.json"):
                ok &= check_report(path)
                checked += 1
            elif name.endswith(".flame.json"):
                try:
                    with open(path) as f:
                        json.load(f)
                except (OSError, json.JSONDecodeError) as e:
                    ok = fail(path, f"malformed JSON: {e}")
                checked += 1
        # The instrumented run must have produced at least the trace, the
        # report and the flame file; zero artifacts means the harness broke.
        if checked < 3:
            print(f"FAIL: expected >=3 artifacts, found {checked} in {tmp}",
                  file=sys.stderr)
            return 1
        if not ok:
            return 1
        print(f"OK: {checked} artifacts well-formed")
        return 0


if __name__ == "__main__":
    sys.exit(main())
