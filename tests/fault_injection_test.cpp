// The FaultInjector itself (determinism, loss rates, Gilbert-Elliott bursts,
// corruption, duplication, reorder, per-link plans) and its integration with
// the frame checksum: corrupted and duplicated frames must never reach user
// buffers, and every transfer must still complete bit-exact.
#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "core/host.hpp"
#include "net/fault.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace pinsim::net {
namespace {

Frame test_frame(NodeId src, NodeId dst, std::size_t bytes = 128) {
  Frame f;
  f.src = src;
  f.dst = dst;
  f.payload.assign(bytes, std::byte{0});
  return f;
}

TEST(FaultInjector, InactiveByDefault) {
  FaultInjector fi;
  EXPECT_FALSE(fi.enabled());
  Frame f = test_frame(0, 1);
  const auto v = fi.inspect(f);
  EXPECT_FALSE(v.drop);
  EXPECT_FALSE(v.duplicate);
  EXPECT_FALSE(v.corrupted);
  EXPECT_EQ(v.extra_latency, 0);
}

TEST(FaultInjector, SameSeedSameVerdicts) {
  FaultPlan plan;
  plan.loss = 0.3;
  plan.corrupt = 0.2;
  plan.duplicate = 0.2;
  plan.reorder = 0.2;
  FaultInjector a(42), b(42);
  a.set_plan(plan);
  b.set_plan(plan);
  for (int i = 0; i < 500; ++i) {
    Frame fa = test_frame(0, 1);
    Frame fb = test_frame(0, 1);
    const auto va = a.inspect(fa);
    const auto vb = b.inspect(fb);
    ASSERT_EQ(va.drop, vb.drop) << i;
    ASSERT_EQ(va.duplicate, vb.duplicate) << i;
    ASSERT_EQ(va.corrupted, vb.corrupted) << i;
    ASSERT_EQ(va.extra_latency, vb.extra_latency) << i;
    ASSERT_EQ(fa.payload, fb.payload) << i;
  }
}

TEST(FaultInjector, IndependentLossTracksConfiguredRate) {
  FaultPlan plan;
  plan.loss = 0.25;
  FaultInjector fi(7);
  fi.set_plan(plan);
  constexpr int kFrames = 4000;
  for (int i = 0; i < kFrames; ++i) {
    Frame f = test_frame(0, 1);
    (void)fi.inspect(f);
  }
  const double rate =
      static_cast<double>(fi.stats().drops) / static_cast<double>(kFrames);
  EXPECT_NEAR(rate, 0.25, 0.05);
  EXPECT_EQ(fi.stats().frames_seen, static_cast<std::uint64_t>(kFrames));
}

TEST(FaultInjector, GilbertElliottDropsComeInBursts) {
  FaultPlan plan;
  plan.burst_enter = 0.05;
  plan.burst_exit = 0.3;
  plan.burst_loss = 1.0;
  FaultInjector fi(11);
  fi.set_plan(plan);

  // Count runs of consecutive drops: with burst_loss=1 every bad-state frame
  // drops, so mean run length should approximate 1/burst_exit (~3.3), far
  // above what independent loss at the same overall rate would produce.
  int runs = 0;
  std::uint64_t dropped = 0;
  bool in_run = false;
  for (int i = 0; i < 4000; ++i) {
    Frame f = test_frame(0, 1);
    const bool drop = fi.inspect(f).drop;
    if (drop) {
      ++dropped;
      if (!in_run) ++runs;
    }
    in_run = drop;
  }
  ASSERT_GT(fi.stats().burst_drops, 0u);
  EXPECT_EQ(fi.stats().burst_drops, dropped);
  EXPECT_EQ(fi.stats().drops, 0u);  // only the chain drops, no independent loss
  const double mean_run =
      static_cast<double>(dropped) / static_cast<double>(runs);
  EXPECT_GT(mean_run, 2.0);
}

TEST(FaultInjector, CorruptionFlipsPayloadBitsInPlace) {
  FaultPlan plan;
  plan.corrupt = 1.0;
  FaultInjector fi(3);
  fi.set_plan(plan);
  Frame f = test_frame(0, 1, 256);
  const auto v = fi.inspect(f);
  EXPECT_TRUE(v.corrupted);
  EXPECT_FALSE(v.drop);
  int flipped = 0;
  for (const std::byte b : f.payload) {
    flipped += std::popcount(static_cast<unsigned>(b));
  }
  EXPECT_GT(flipped, 0);
  EXPECT_LE(flipped, plan.corrupt_bits);
  EXPECT_EQ(fi.stats().corruptions, 1u);
}

TEST(FaultInjector, DuplicateAndReorderVerdicts) {
  FaultPlan plan;
  plan.duplicate = 1.0;
  FaultInjector fi(5);
  fi.set_plan(plan);
  Frame f = test_frame(0, 1);
  EXPECT_TRUE(fi.inspect(f).duplicate);
  EXPECT_EQ(fi.stats().duplicates, 1u);

  FaultPlan reorder;
  reorder.reorder = 1.0;
  reorder.reorder_jitter = 10 * sim::kMicrosecond;
  FaultInjector fj(6);
  fj.set_plan(reorder);
  Frame g = test_frame(0, 1);
  const auto v = fj.inspect(g);
  EXPECT_GT(v.extra_latency, 0);
  EXPECT_LE(v.extra_latency, reorder.reorder_jitter);
  EXPECT_EQ(fj.stats().reorders, 1u);
}

TEST(FaultInjector, LinkPlanOverridesOnlyThatDirection) {
  FaultInjector fi(8);
  FaultPlan kill;
  kill.loss = 1.0;
  fi.set_link_plan(0, 1, kill);
  EXPECT_TRUE(fi.enabled());
  for (int i = 0; i < 50; ++i) {
    Frame fwd = test_frame(0, 1);
    EXPECT_TRUE(fi.inspect(fwd).drop);
    Frame rev = test_frame(1, 0);
    EXPECT_FALSE(fi.inspect(rev).drop);
  }
  fi.clear_link_plans();
  EXPECT_FALSE(fi.enabled());
  Frame fwd = test_frame(0, 1);
  EXPECT_FALSE(fi.inspect(fwd).drop);
}

}  // namespace
}  // namespace pinsim::net

// --- stack integration -------------------------------------------------------

namespace pinsim::core {
namespace {

constexpr std::uint64_t kAll = ~std::uint64_t{0};

struct Rig {
  explicit Rig(StackConfig stack) {
    fabric = std::make_unique<net::Fabric>(eng);
    Host::Config hc;
    hc.memory_frames = 24576;
    a = std::make_unique<Host>(eng, *fabric, hc, stack);
    b = std::make_unique<Host>(eng, *fabric, hc, stack);
    pa = &a->spawn_process();
    pb = &b->spawn_process();
  }

  sim::Engine eng;
  std::unique_ptr<net::Fabric> fabric;
  std::unique_ptr<Host> a, b;
  Host::Process* pa = nullptr;
  Host::Process* pb = nullptr;
};

StackConfig fast_retry_stack() {
  StackConfig stack = overlapped_cache_config();
  stack.protocol.retransmit_timeout = 300 * sim::kMicrosecond;
  stack.protocol.pull_retry_timeout = 300 * sim::kMicrosecond;
  return stack;
}

std::vector<std::byte> pattern(std::size_t n, std::uint32_t salt) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 2654435761u + salt) >> 13);
  }
  return v;
}

/// One verified transfer pa -> pb of `size` bytes under the given plan.
void transfer_and_verify(Rig& rig, net::FaultPlan plan, std::size_t size) {
  rig.fabric->faults().set_plan(plan);
  const auto src = rig.pa->heap.malloc(size);
  const auto dst = rig.pb->heap.malloc(size);
  const auto data = pattern(size, static_cast<std::uint32_t>(size));
  rig.pa->as.write(src, data);

  Status r_st;
  sim::spawn(rig.eng, [](Library& lib, EndpointAddr to, mem::VirtAddr buf,
                         std::size_t n) -> sim::Task<> {
    (void)co_await lib.send(to, 3, buf, n);
  }(rig.pa->lib, rig.pb->addr(), src, size));
  sim::spawn(rig.eng, [](Library& lib, mem::VirtAddr buf, std::size_t n,
                         Status& out) -> sim::Task<> {
    out = co_await lib.recv(3, kAll, buf, n);
  }(rig.pb->lib, dst, size, r_st));
  rig.eng.run();
  rig.eng.rethrow_task_failures();

  ASSERT_TRUE(r_st.ok);
  ASSERT_EQ(r_st.len, size);
  std::vector<std::byte> got(size);
  rig.pb->as.read(dst, got);
  ASSERT_EQ(got, data);
  EXPECT_EQ(rig.pa->ep.inflight(), 0u);
  EXPECT_EQ(rig.pb->ep.inflight(), 0u);
}

TEST(FaultStack, CorruptedFramesAreDroppedByChecksumAndRetransmitted) {
  Rig rig(fast_retry_stack());
  net::FaultPlan plan;
  plan.corrupt = 0.2;
  transfer_and_verify(rig, plan, 256 * 1024);
  ASSERT_GT(rig.fabric->faults().stats().corruptions, 0u);
  // Every corruption was caught by the CRC and counted on some endpoint.
  const auto corrupted = rig.pa->lib.counters().frames_corrupted +
                         rig.pb->lib.counters().frames_corrupted;
  const auto drops = rig.pa->lib.counters().checksum_drops +
                     rig.pb->lib.counters().checksum_drops;
  EXPECT_GT(corrupted, 0u);
  EXPECT_GT(drops, 0u);
}

TEST(FaultStack, DuplicatedFramesAreSuppressedSideEffectFree) {
  Rig rig(fast_retry_stack());
  net::FaultPlan plan;
  plan.duplicate = 1.0;  // every frame delivered twice
  transfer_and_verify(rig, plan, 256 * 1024);
  ASSERT_GT(rig.fabric->faults().stats().duplicates, 0u);
  const auto suppressed = rig.pa->lib.counters().duplicates_suppressed +
                          rig.pb->lib.counters().duplicates_suppressed;
  EXPECT_GT(suppressed, 0u);
}

TEST(FaultStack, ReorderedFramesStillAssembleBitExact) {
  Rig rig(fast_retry_stack());
  net::FaultPlan plan;
  plan.reorder = 0.5;
  plan.reorder_jitter = 40 * sim::kMicrosecond;
  transfer_and_verify(rig, plan, 256 * 1024);
  EXPECT_GT(rig.fabric->faults().stats().reorders, 0u);
}

TEST(FaultStack, BurstyLossRecoversEndToEnd) {
  Rig rig(fast_retry_stack());
  net::FaultPlan plan;
  plan.burst_enter = 0.02;
  plan.burst_exit = 0.25;
  plan.burst_loss = 1.0;
  transfer_and_verify(rig, plan, 256 * 1024);
  EXPECT_GT(rig.fabric->faults().stats().burst_drops, 0u);
}

TEST(FaultStack, FaultDecisionsAreTraced) {
  Rig rig(fast_retry_stack());
  sim::Tracer tracer(rig.eng, 4096);
  rig.fabric->faults().set_tracer(&tracer);
  net::FaultPlan plan;
  plan.loss = 0.1;
  plan.corrupt = 0.1;
  transfer_and_verify(rig, plan, 128 * 1024);

  bool saw_drop = false, saw_corrupt = false;
  for (const auto& ev : tracer.records()) {
    if (ev.category == "fault.drop") saw_drop = true;
    if (ev.category == "fault.corrupt") saw_corrupt = true;
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_corrupt);
}

}  // namespace
}  // namespace pinsim::core
