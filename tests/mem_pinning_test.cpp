// Pinning + MMU-notifier interplay: the invariants the paper's driver-side
// pinning model depends on.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/mmu_notifier.hpp"
#include "mem/physical_memory.hpp"

namespace pinsim::mem {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

/// Records invalidations; optionally auto-unpins like the Open-MX hook.
class RecordingNotifier : public MmuNotifier {
 public:
  struct Range {
    VirtAddr start;
    VirtAddr end;
  };
  void invalidate_range(VirtAddr start, VirtAddr end) override {
    ranges.push_back({start, end});
    if (on_invalidate) on_invalidate(start, end);
  }
  void release() override { released = true; }

  std::vector<Range> ranges;
  bool released = false;
  std::function<void(VirtAddr, VirtAddr)> on_invalidate;
};

class PinningTest : public ::testing::Test {
 protected:
  PhysicalMemory pm_{1024};
  AddressSpace as_{pm_};
};

TEST_F(PinningTest, PinFaultsPagesInAndCounts) {
  const VirtAddr a = as_.mmap(4 * 4096);
  EXPECT_FALSE(as_.is_present(a));
  auto frames = as_.pin_range(a, 4 * 4096);
  ASSERT_EQ(frames.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(as_.is_present(a + static_cast<VirtAddr>(i) * 4096));
    EXPECT_TRUE(as_.is_pinned(a + static_cast<VirtAddr>(i) * 4096));
  }
  EXPECT_EQ(pm_.pinned_pages(), 4u);
  for (int i = 0; i < 4; ++i) {
    as_.unpin_page(a + static_cast<VirtAddr>(i) * 4096,
                   frames[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(pm_.pinned_pages(), 0u);
  EXPECT_FALSE(as_.is_pinned(a));
}

TEST_F(PinningTest, PinRangeCoversPartialPages) {
  const VirtAddr a = as_.mmap(3 * 4096);
  // 2 bytes straddling a page boundary pin both pages.
  auto frames = as_.pin_range(a + 4095, 2);
  EXPECT_EQ(frames.size(), 2u);
  as_.unpin_page(a, frames[0]);
  as_.unpin_page(a + 4096, frames[1]);
}

TEST_F(PinningTest, PinOfInvalidRangeThrowsAndRollsBack) {
  const VirtAddr a = as_.mmap(2 * 4096);
  // Third page is unmapped: the paper's "declaration succeeds, pinning fails
  // at communication time" case.
  EXPECT_THROW((void)as_.pin_range(a, 3 * 4096), InvalidAddressError);
  EXPECT_EQ(pm_.pinned_pages(), 0u);
  EXPECT_FALSE(as_.is_pinned(a));
}

TEST_F(PinningTest, PinnedFrameSurvivesMunmap) {
  const VirtAddr a = as_.mmap(4096);
  as_.write(a, bytes_of("still-here"));
  auto frames = as_.pin_range(a, 4096);
  const FrameId f = frames[0];
  EXPECT_EQ(pm_.refcount(f), 2u);  // mapping + pin
  as_.munmap(a, 4096);             // no notifier subscriber unpins
  EXPECT_EQ(pm_.refcount(f), 1u);  // orphaned but alive through the pin
  char buf[10];
  std::memcpy(buf, pm_.data(f).data(), 10);
  EXPECT_EQ(std::memcmp(buf, "still-here", 10), 0);
  as_.unpin_page(a, f);
  EXPECT_EQ(pm_.used_frames(), 0u);
}

TEST_F(PinningTest, UnpinAfterRemapDoesNotCorruptNewPage) {
  const VirtAddr a = as_.mmap(4096);
  auto frames = as_.pin_range(a, 4096);
  as_.munmap(a, 4096);
  const VirtAddr b = as_.mmap(4096);
  ASSERT_EQ(b, a);  // same VA reused
  auto frames2 = as_.pin_range(b, 4096);
  EXPECT_NE(frames2[0], frames[0]);
  // Late unpin of the *old* frame must not touch the new page's pin count.
  as_.unpin_page(a, frames[0]);
  EXPECT_TRUE(as_.is_pinned(b));
  as_.unpin_page(b, frames2[0]);
  EXPECT_FALSE(as_.is_pinned(b));
}

TEST_F(PinningTest, DoublePinRequiresDoubleUnpin) {
  const VirtAddr a = as_.mmap(4096);
  auto f1 = as_.pin_range(a, 4096);
  auto f2 = as_.pin_range(a, 4096);
  EXPECT_EQ(f1[0], f2[0]);
  as_.unpin_page(a, f1[0]);
  EXPECT_TRUE(as_.is_pinned(a));
  as_.unpin_page(a, f2[0]);
  EXPECT_FALSE(as_.is_pinned(a));
}

TEST_F(PinningTest, PinBreaksCow) {
  const VirtAddr a = as_.mmap(4096);
  as_.write(a, bytes_of("shared"));
  auto snap = as_.cow_snapshot(a, 4096);
  const FrameId shared = as_.frame_of(a);
  auto frames = as_.pin_range(a, 4096);  // write-mode: must break COW
  EXPECT_NE(frames[0], shared);
  // DMA into the pinned frame must not be visible in the snapshot.
  auto page = pm_.data(frames[0]);
  std::memcpy(page.data(), "DMAWRITE", 8);
  std::vector<std::byte> out(6);
  snap.read(a, out);
  EXPECT_EQ(std::memcmp(out.data(), "shared", 6), 0);
  as_.unpin_page(a, frames[0]);
}

TEST_F(PinningTest, NotifierFiresBeforeTeardownOnMunmap) {
  RecordingNotifier notifier;
  as_.register_notifier(&notifier);
  const VirtAddr a = as_.mmap(2 * 4096);
  as_.touch(a, 2 * 4096);
  bool page_was_still_present = false;
  notifier.on_invalidate = [&](VirtAddr start, VirtAddr) {
    page_was_still_present = as_.is_present(start);
  };
  as_.munmap(a, 2 * 4096);
  ASSERT_EQ(notifier.ranges.size(), 1u);
  EXPECT_EQ(notifier.ranges[0].start, a);
  EXPECT_EQ(notifier.ranges[0].end, a + 2 * 4096);
  EXPECT_TRUE(page_was_still_present);  // Linux ordering
  as_.unregister_notifier(&notifier);
}

TEST_F(PinningTest, NotifierFiresOnSwapMigrationAndCow) {
  RecordingNotifier notifier;
  as_.register_notifier(&notifier);
  const VirtAddr a = as_.mmap(4096);
  as_.touch(a, 4096);

  EXPECT_TRUE(as_.swap_out(a));
  ASSERT_EQ(notifier.ranges.size(), 1u);

  as_.touch(a, 4096);  // fault back in
  EXPECT_TRUE(as_.migrate(a));
  ASSERT_EQ(notifier.ranges.size(), 2u);

  auto snap = as_.cow_snapshot(a, 4096);
  as_.write(a, bytes_of("w"));  // COW break
  ASSERT_EQ(notifier.ranges.size(), 3u);
  for (const auto& r : notifier.ranges) {
    EXPECT_EQ(r.start, a);
    EXPECT_EQ(r.end, a + 4096);
  }
  as_.unregister_notifier(&notifier);
}

TEST_F(PinningTest, NotifierDrivenUnpinOnFree) {
  // The Open-MX pattern: subscriber unpins inside invalidate_range so the
  // frames are released exactly when the application frees the buffer.
  const VirtAddr a = as_.mmap(4 * 4096);
  auto frames = as_.pin_range(a, 4 * 4096);

  RecordingNotifier notifier;
  notifier.on_invalidate = [&](VirtAddr start, VirtAddr end) {
    for (VirtAddr va = start; va < end; va += 4096) {
      const auto idx = static_cast<std::size_t>((va - a) / 4096);
      as_.unpin_page(va, frames[idx]);
    }
  };
  as_.register_notifier(&notifier);
  as_.munmap(a, 4 * 4096);
  EXPECT_EQ(pm_.pinned_pages(), 0u);
  EXPECT_EQ(pm_.used_frames(), 0u);  // nothing orphaned
  as_.unregister_notifier(&notifier);
}

TEST_F(PinningTest, UnregisteredNotifierStopsReceiving) {
  RecordingNotifier notifier;
  as_.register_notifier(&notifier);
  const VirtAddr a = as_.mmap(4096);
  as_.touch(a, 4096);
  as_.unregister_notifier(&notifier);
  as_.munmap(a, 4096);
  EXPECT_TRUE(notifier.ranges.empty());
}

TEST_F(PinningTest, ReleaseFiresOnAddressSpaceDestruction) {
  RecordingNotifier notifier;
  {
    AddressSpace dying(pm_);
    dying.register_notifier(&notifier);
  }
  EXPECT_TRUE(notifier.released);
}

TEST_F(PinningTest, NotifierMayUnregisterItselfDuringCallback) {
  RecordingNotifier notifier;
  notifier.on_invalidate = [&](VirtAddr, VirtAddr) {
    as_.unregister_notifier(&notifier);
  };
  as_.register_notifier(&notifier);
  const VirtAddr a = as_.mmap(2 * 4096);
  as_.touch(a, 2 * 4096);
  as_.munmap(a, 4096);
  as_.munmap(a + 4096, 4096);  // must not re-notify or crash
  EXPECT_EQ(notifier.ranges.size(), 1u);
}

TEST_F(PinningTest, StaleTranslationScenario) {
  // The corruption a *user-space* registration cache risks (paper §2.1/§5):
  // cache keeps (va -> frame), app frees + reallocates, new data lands in a
  // new frame, cached frame serves stale bytes.
  const VirtAddr a = as_.mmap(4096);
  as_.write(a, bytes_of("GENERATION-1"));
  auto cached = as_.pin_range(a, 4096);  // "NIC table" keeps this frame
  as_.munmap(a, 4096);                   // free not intercepted
  const VirtAddr b = as_.mmap(4096);
  ASSERT_EQ(b, a);
  as_.write(b, bytes_of("GENERATION-2"));
  // Sending from the cached translation reads generation-1 bytes:
  char wire[12];
  std::memcpy(wire, pm_.data(cached[0]).data(), 12);
  EXPECT_EQ(std::memcmp(wire, "GENERATION-1", 12), 0);
  // whereas the application's buffer now holds generation-2: corruption.
  std::vector<std::byte> app(12);
  as_.read(b, app);
  EXPECT_EQ(std::memcmp(app.data(), "GENERATION-2", 12), 0);
  as_.unpin_page(a, cached[0]);
}

TEST_F(PinningTest, PinnedPagesAccounting) {
  const VirtAddr a = as_.mmap(8 * 4096);
  auto f1 = as_.pin_range(a, 4 * 4096);
  auto f2 = as_.pin_range(a + 4 * 4096, 4 * 4096);
  EXPECT_EQ(pm_.pinned_pages(), 8u);
  EXPECT_EQ(as_.stats().pins, 8u);
  for (int i = 0; i < 4; ++i) {
    as_.unpin_page(a + static_cast<VirtAddr>(i) * 4096,
                   f1[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(pm_.pinned_pages(), 4u);
  for (int i = 0; i < 4; ++i) {
    as_.unpin_page(a + static_cast<VirtAddr>(4 + i) * 4096,
                   f2[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(pm_.pinned_pages(), 0u);
  EXPECT_EQ(as_.stats().unpins, 8u);
}

}  // namespace
}  // namespace pinsim::mem
