// The tracer itself, and the protocol's use of it: a traced transfer must
// show the causal order the paper's Figures 2/5 draw.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/host.hpp"
#include "sim/task.hpp"

namespace pinsim {
namespace {

TEST(Tracer, RecordsAndFilters) {
  sim::Engine eng;
  sim::Tracer tracer(eng);
  eng.schedule_at(100, [&] { tracer.record("pkt.rx", "RNDV"); });
  eng.schedule_at(200, [&] { tracer.record("pin.start", "region 1"); });
  eng.schedule_at(300, [&] { tracer.record("pkt.tx", "PULL"); });
  eng.run();

  ASSERT_EQ(tracer.records().size(), 3u);
  EXPECT_EQ(tracer.records()[0].time, 100u);
  EXPECT_EQ(tracer.records()[1].category, "pin.start");
  EXPECT_EQ(tracer.filter("pkt").size(), 2u);
  EXPECT_EQ(tracer.filter("pin").size(), 1u);
  EXPECT_EQ(tracer.filter("nope").size(), 0u);
  EXPECT_LT(tracer.find_first("pkt.rx"), tracer.find_first("pkt.tx"));
  EXPECT_EQ(tracer.find_first("missing"), static_cast<std::size_t>(-1));
}

TEST(Tracer, RingDropsOldestBeyondCapacity) {
  sim::Engine eng;
  sim::Tracer tracer(eng, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.record("x", std::to_string(i));
  }
  EXPECT_EQ(tracer.records().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.records().front().detail, "6");
  tracer.clear();
  EXPECT_EQ(tracer.records().size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, SetCapacityTrimsOldestAndCountsThemDropped) {
  sim::Engine eng;
  sim::Tracer tracer(eng, /*capacity=*/8);
  for (int i = 0; i < 6; ++i) tracer.record("x", std::to_string(i));
  EXPECT_EQ(tracer.capacity(), 8u);

  tracer.set_capacity(3);
  EXPECT_EQ(tracer.capacity(), 3u);
  EXPECT_EQ(tracer.records().size(), 3u);
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(tracer.records().front().detail, "3");

  // Zero clamps to one rather than becoming an unusable ring.
  tracer.set_capacity(0);
  EXPECT_EQ(tracer.capacity(), 1u);
  EXPECT_EQ(tracer.records().size(), 1u);

  // Growing never drops.
  tracer.set_capacity(64);
  const std::size_t dropped = tracer.dropped();
  tracer.record("x", "new");
  EXPECT_EQ(tracer.dropped(), dropped);
}

TEST(Tracer, QueriesWarnOnceAfterOverflow) {
  sim::Engine eng;
  sim::Tracer tracer(eng, /*capacity=*/2);
  tracer.record("a", "1");
  EXPECT_FALSE(tracer.warned_dropped());
  (void)tracer.filter("a");
  EXPECT_FALSE(tracer.warned_dropped());  // nothing dropped, no warning

  tracer.record("a", "2");
  tracer.record("a", "3");  // overflows the ring
  EXPECT_EQ(tracer.dropped(), 1u);
  (void)tracer.find_first("a");
  EXPECT_TRUE(tracer.warned_dropped());  // warned exactly once
  (void)tracer.filter("a");
  EXPECT_TRUE(tracer.warned_dropped());

  tracer.clear();
  EXPECT_FALSE(tracer.warned_dropped());  // fresh ring warns again if needed
}

TEST(Tracer, CapacityComesFromStackConfig) {
  sim::Engine eng;
  net::Fabric fabric(eng);
  core::StackConfig stack = core::overlapped_cache_config();
  stack.trace.tracer_capacity = 7;
  core::Host::Config hc;
  hc.memory_frames = 8192;
  core::Host host(eng, fabric, hc, stack);
  sim::Tracer tracer(eng);  // default 65536
  host.driver().set_tracer(&tracer);
  EXPECT_EQ(tracer.capacity(), 7u);
}

TEST(Tracer, DumpIsHumanReadable) {
  sim::Engine eng;
  sim::Tracer tracer(eng);
  eng.schedule_at(1500, [&] { tracer.record("pkt.rx", "EAGER from node 1"); });
  eng.run();
  std::ostringstream os;
  tracer.dump(os);
  EXPECT_NE(os.str().find("1.5us] pkt.rx EAGER from node 1"),
            std::string::npos);
}

TEST(Tracer, TracedTransferShowsTheFigure5Order) {
  sim::Engine eng;
  net::Fabric fabric(eng);
  core::Host::Config hc;
  hc.memory_frames = 16384;
  // Tracers before the hosts: they must outlive the drivers, whose teardown
  // (region-cache eviction unpinning cached regions) still emits into them.
  sim::Tracer sender_trace(eng);
  sim::Tracer receiver_trace(eng);
  core::Host a(eng, fabric, hc, core::overlapped_cache_config());
  core::Host b(eng, fabric, hc, core::overlapped_cache_config());
  auto& pa = a.spawn_process();
  auto& pb = b.spawn_process();

  a.driver().set_tracer(&sender_trace);
  b.driver().set_tracer(&receiver_trace);

  const std::size_t len = 256 * 1024;
  const auto src = pa.heap.malloc(len);
  const auto dst = pb.heap.malloc(len);
  sim::spawn(eng, [](core::Library& lib, core::EndpointAddr to,
                     mem::VirtAddr buf, std::size_t n) -> sim::Task<> {
    (void)co_await lib.send(to, 1, buf, n);
  }(pa.lib, pb.addr(), src, len));
  sim::spawn(eng, [](core::Library& lib, mem::VirtAddr buf,
                     std::size_t n) -> sim::Task<> {
    (void)co_await lib.recv(1, ~std::uint64_t{0}, buf, n);
  }(pb.lib, dst, len));
  eng.run();
  eng.rethrow_task_failures();

  // Sender: Figure 5's defining property — the RNDV leaves *before* the
  // region is fully pinned (overlapped mode).
  const auto rndv_tx = sender_trace.find_first("pkt.tx", "RNDV");
  const auto pin_start = sender_trace.find_first("pin.start");
  const auto pin_done = sender_trace.find_first("pin.done");
  ASSERT_NE(rndv_tx, static_cast<std::size_t>(-1));
  ASSERT_NE(pin_start, static_cast<std::size_t>(-1));
  ASSERT_NE(pin_done, static_cast<std::size_t>(-1));
  EXPECT_LT(rndv_tx, pin_done);  // the RNDV overtakes the pin completion

  // Receiver: RNDV arrives, pulls go out, data flows back.
  const auto rndv_rx = receiver_trace.find_first("pkt.rx", "RNDV");
  const auto pull_tx = receiver_trace.find_first("pkt.tx", "PULL to");
  const auto reply_rx = receiver_trace.find_first("pkt.rx", "PULL_REPLY");
  const auto notify_tx = receiver_trace.find_first("pkt.tx", "NOTIFY");
  ASSERT_NE(rndv_rx, static_cast<std::size_t>(-1));
  EXPECT_LT(rndv_rx, pull_tx);
  EXPECT_LT(pull_tx, reply_rx);
  EXPECT_LT(reply_rx, notify_tx);

  // Freeing the buffer shows up as an invalidation event.
  pa.heap.free(src);
  EXPECT_NE(sender_trace.find_first("pin.invalidate"),
            static_cast<std::size_t>(-1));
}

TEST(Tracer, OverlapBlockingOnlyRestrictsOverlapToBlockingRequests) {
  // §6: "only enabling decoupled/overlapped pinning for blocking
  // operations". A nonblocking isend must pin synchronously (RNDV after
  // pin.done); a blocking send must overlap (RNDV before pin.done).
  core::StackConfig stack = core::overlapped_pinning_config();
  stack.pinning.overlap_blocking_only = true;

  sim::Engine eng;
  net::Fabric fabric(eng);
  core::Host::Config hc;
  hc.memory_frames = 16384;
  sim::Tracer tracer(eng);  // outlives the hosts (teardown emits)
  core::Host a(eng, fabric, hc, stack);
  core::Host b(eng, fabric, hc, stack);
  auto& pa = a.spawn_process();
  auto& pb = b.spawn_process();
  a.driver().set_tracer(&tracer);

  const std::size_t len = 1024 * 1024;
  const auto src = pa.heap.malloc(len);
  const auto dst = pb.heap.malloc(len);

  // Nonblocking send (hint defaults to false): sync pin.
  {
    auto sreq = pa.lib.isend(pb.addr(), 1, src, len);
    auto rreq = pb.lib.irecv(1, ~std::uint64_t{0}, dst, len);
    eng.run();
    eng.rethrow_task_failures();
    ASSERT_TRUE(sreq->status().ok);
    const auto pin_done = tracer.find_first("pin.done");
    const auto rndv_tx = tracer.find_first("pkt.tx", "RNDV");
    ASSERT_NE(pin_done, static_cast<std::size_t>(-1));
    ASSERT_NE(rndv_tx, static_cast<std::size_t>(-1));
    EXPECT_LT(pin_done, rndv_tx);  // pin completed before the RNDV left
  }

  tracer.clear();
  // No cache in this config, so the region repins; a *blocking* send
  // overlaps as usual.
  {
    bool done = false;
    sim::spawn(eng, [](core::Library& lib, core::EndpointAddr to,
                       mem::VirtAddr buf, std::size_t n,
                       bool& flag) -> sim::Task<> {
      (void)co_await lib.send(to, 2, buf, n);
      flag = true;
    }(pa.lib, pb.addr(), src, len, done));
    sim::spawn(eng, [](core::Library& lib, mem::VirtAddr buf,
                       std::size_t n) -> sim::Task<> {
      (void)co_await lib.recv(2, ~std::uint64_t{0}, buf, n);
    }(pb.lib, dst, len));
    eng.run();
    eng.rethrow_task_failures();
    ASSERT_TRUE(done);
    const auto pin_done = tracer.find_first("pin.done");
    const auto rndv_tx = tracer.find_first("pkt.tx", "RNDV");
    ASSERT_NE(pin_done, static_cast<std::size_t>(-1));
    ASSERT_NE(rndv_tx, static_cast<std::size_t>(-1));
    EXPECT_LT(rndv_tx, pin_done);  // overlapped: RNDV overtakes the pin
  }
}

}  // namespace
}  // namespace pinsim
